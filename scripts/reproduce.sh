#!/usr/bin/env bash
# Builds the project, runs the full test suite, regenerates every paper
# table/figure plus the ablations, and (optionally) renders the figures
# with gnuplot. Artifacts land in ./reproduction/.
#
# Usage: scripts/reproduce.sh [--quick] [--sanitize]
#   --quick     use 40 trials per bar instead of the paper's 200/400
#   --sanitize  additionally build with ASan+UBSan (-DMLCK_SANITIZE=ON)
#               in build-asan/ and run the full test suite under the
#               sanitizers before the reproduction sweep
set -euo pipefail
cd "$(dirname "$0")/.."

TRIALS_FLAG=""
SANITIZE=0
for arg in "$@"; do
  case "$arg" in
    --quick)    TRIALS_FLAG="--trials=40" ;;
    --sanitize) SANITIZE=1 ;;
    *) echo "unknown option: $arg" >&2; exit 2 ;;
  esac
done

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

if [[ "$SANITIZE" == 1 ]]; then
  echo "== sanitized test run (ASan + UBSan) =="
  cmake -B build-asan -G Ninja -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DMLCK_SANITIZE=ON
  cmake --build build-asan
  ctest --test-dir build-asan --output-on-failure
fi

mkdir -p reproduction
run() {
  local name="$1"; shift
  echo "== ${name} =="
  "./build/bench/${name}" "$@" | tee "reproduction/${name}.txt"
}

run table1_systems
run fig2_technique_comparison ${TRIALS_FLAG} --plot=reproduction/fig2
run fig3_time_breakdown       ${TRIALS_FLAG}
run fig4_exascale_scaling     ${TRIALS_FLAG} --plot=reproduction/fig4
run fig5_short_application    ${TRIALS_FLAG} --plot=reproduction/fig5
run fig6_prediction_error     ${TRIALS_FLAG} --plot=reproduction/fig6
run ablation_failed_events    ${TRIALS_FLAG}
run ablation_restart_semantics ${TRIALS_FLAG}
run ablation_level_skipping   ${TRIALS_FLAG}
run ablation_failure_distribution ${TRIALS_FLAG}
run ablation_interval_vs_pattern  ${TRIALS_FLAG}
run ablation_energy_objective ${TRIALS_FLAG}
run ablation_adaptive_horizon ${TRIALS_FLAG}

if command -v gnuplot >/dev/null 2>&1; then
  for gp in reproduction/*.gp; do
    [[ -e "$gp" ]] && (cd reproduction && gnuplot "$(basename "$gp")")
  done
  echo "figures rendered to reproduction/*.png"
else
  echo "gnuplot not found; .dat/.gp files left in reproduction/"
fi
echo "done."

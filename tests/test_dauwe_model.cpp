#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/dauwe_model.h"
#include "math/exponential.h"
#include "models/daly.h"
#include "sim/simulator.h"
#include "systems/test_systems.h"

namespace mlck::core {
namespace {

systems::SystemConfig toy(double mtbf, std::vector<double> severity,
                          std::vector<double> cost, double base_time) {
  const int levels = static_cast<int>(severity.size());
  return systems::SystemConfig::from_table_row(
      "toy", levels, mtbf, std::move(severity), std::move(cost), base_time);
}

TEST(DauweModel, NoOverheadMeansBaseTimeExactly) {
  // Zero checkpoint cost and (practically) no failures: the hierarchical
  // recursion must telescope to exactly T_B — this pins the paper's
  // ambiguous top-level multiplicity convention (DESIGN.md).
  const auto sys = toy(1e15, {0.6, 0.4}, {0.0, 0.0}, 1000.0);
  const DauweModel model;
  const auto plan = CheckpointPlan::full_hierarchy(10.0, {4});
  EXPECT_NEAR(model.expected_time(sys, plan), 1000.0, 1e-6);
}

TEST(DauweModel, FailureFreeRunCostsBaseTimePlusCheckpoints) {
  // T_B = 100, tau0 = 10, pattern {4}: 2 top periods; per period 4
  // standalone level-1 checkpoints; N_L - 1 = 1 level-2 checkpoint (the
  // run ends after the second period instead of checkpointing it, exactly
  // as the simulator behaves).
  const auto sys = toy(1e15, {0.6, 0.4}, {0.25, 1.5}, 100.0);
  const DauweModel model;
  const auto plan = CheckpointPlan::full_hierarchy(10.0, {4});
  const double expected = 100.0 + 8 * 0.25 + 1 * 1.5;
  EXPECT_NEAR(model.expected_time(sys, plan), expected, 1e-6);

  const Prediction p = model.predict(sys, plan);
  EXPECT_NEAR(p.breakdown.checkpoint_ok, 8 * 0.25 + 1 * 1.5, 1e-6);
  EXPECT_NEAR(p.breakdown.compute, 100.0, 1e-9);
  EXPECT_NEAR(p.breakdown.restart_ok, 0.0, 1e-9);
  EXPECT_NEAR(p.efficiency, 100.0 / expected, 1e-9);
}

TEST(DauweModel, FailureFreeRunMatchesSimulatorExactly) {
  // With no failures the model and the event simulator describe the same
  // deterministic schedule; totals must agree to round-off.
  // tau0 chosen so T_B is a whole number of pattern periods (the model's
  // N_L is continuous; fractional periods are its only failure-free
  // deviation from the discrete schedule).
  const auto sys = toy(1e15, {0.5, 0.3, 0.2}, {0.25, 1.0, 4.0}, 360.0);
  const DauweModel model;
  struct Case {
    double tau0;
    std::vector<int> counts;
  };
  for (const auto& c : {Case{5.0, {2, 1}},    // period 30, 12 periods
                        Case{4.5, {4, 0}},    // period 22.5, 16 periods
                        Case{5.0, {0, 3}}}) { // period 20, 18 periods
    const auto plan = CheckpointPlan::full_hierarchy(c.tau0, c.counts);
    sim::ScriptedFailureSource no_failures({});
    const auto trial = sim::simulate(sys, plan, no_failures);
    EXPECT_NEAR(model.expected_time(sys, plan), trial.total_time, 1e-6)
        << plan.to_string();
  }
}

TEST(DauweModel, BreakdownSumsToExpectedTime) {
  const auto sys = systems::table1_system("D3");
  const DauweModel model;
  const auto plan = CheckpointPlan::full_hierarchy(2.0, {5});
  const Prediction p = model.predict(sys, plan);
  EXPECT_TRUE(std::isfinite(p.expected_time));
  EXPECT_NEAR(p.breakdown.total(), p.expected_time,
              1e-9 * p.expected_time);
  EXPECT_GT(p.breakdown.checkpoint_failed, 0.0);
  EXPECT_GT(p.breakdown.restart_ok, 0.0);
  EXPECT_GT(p.breakdown.rework_compute, 0.0);
}

TEST(DauweModel, InfeasibleWhenPatternExceedsBaseTime) {
  const auto sys = systems::table1_system("D1");
  const DauweModel model;
  // tau0 * (N+1) = 800 * 2 > 1440.
  const auto plan = CheckpointPlan::full_hierarchy(800.0, {1});
  EXPECT_TRUE(std::isinf(model.expected_time(sys, plan)));
  const Prediction p = model.predict(sys, plan);
  EXPECT_EQ(p.efficiency, 0.0);
}

TEST(DauweModel, ExpectedTimeGrowsAsMtbfShrinks) {
  const DauweModel model;
  const auto plan = CheckpointPlan::full_hierarchy(5.0, {3});
  double previous = 0.0;
  for (const double mtbf : {200.0, 100.0, 50.0, 25.0, 12.0}) {
    const auto sys = toy(mtbf, {0.8, 0.2}, {0.3, 1.0}, 720.0);
    const double t = model.expected_time(sys, plan);
    EXPECT_GT(t, previous) << "mtbf=" << mtbf;
    previous = t;
  }
}

TEST(DauweModel, ExpectedTimeGrowsWithCheckpointCost) {
  const DauweModel model;
  const auto plan = CheckpointPlan::full_hierarchy(5.0, {3});
  double previous = 0.0;
  for (const double cost : {0.1, 0.5, 1.0, 3.0}) {
    const auto sys = toy(50.0, {0.8, 0.2}, {0.1, cost}, 720.0);
    const double t = model.expected_time(sys, plan);
    EXPECT_GT(t, previous) << "cost=" << cost;
    previous = t;
  }
}

TEST(DauweModel, IgnoringCheckpointFailuresIsOptimistic) {
  const auto sys = systems::table1_system("D8");  // harsh: MTBF ~ delta_2
  const auto plan = CheckpointPlan::full_hierarchy(1.5, {4});
  const DauweModel full;
  DauweOptions no_ck;
  no_ck.checkpoint_failures = false;
  const DauweModel ablated{no_ck};
  EXPECT_LT(ablated.expected_time(sys, plan), full.expected_time(sys, plan));
}

TEST(DauweModel, IgnoringRestartFailuresIsOptimistic) {
  const auto sys = systems::table1_system("D8");
  const auto plan = CheckpointPlan::full_hierarchy(1.5, {4});
  const DauweModel full;
  DauweOptions no_rs;
  no_rs.restart_failures = false;
  const DauweModel ablated{no_rs};
  EXPECT_LT(ablated.expected_time(sys, plan), full.expected_time(sys, plan));
}

TEST(DauweModel, AblationGapGrowsWithDifficulty) {
  // Sec. IV-D: the cost of ignoring failed C/R events grows non-linearly
  // as MTBF approaches the checkpoint/restart times.
  DauweOptions off;
  off.checkpoint_failures = false;
  off.restart_failures = false;
  const DauweModel full, ablated{off};
  const auto plan = CheckpointPlan::full_hierarchy(1.5, {4});
  double previous_gap = 0.0;
  for (const char* name : {"D1", "D3", "D5", "D8"}) {
    const auto sys = systems::table1_system(name);
    const double gap = full.expected_time(sys, plan) /
                       ablated.expected_time(sys, plan);
    EXPECT_GE(gap, previous_gap * 0.999) << name;
    previous_gap = gap;
  }
  EXPECT_GT(previous_gap, 1.05);  // the D8 gap is material
}

TEST(DauweModel, SingleLevelAgreesWithDalyClosedForm) {
  // On a single-level problem the recursion models the same process as
  // Daly's exact formula; they should agree to a few percent.
  const auto sys = toy(100.0, {1.0}, {2.0}, 1000.0);
  const DauweModel model;
  for (const double tau : {10.0, 20.0, 40.0}) {
    const auto plan = CheckpointPlan::single_level(tau, 0);
    const double ours = model.expected_time(sys, plan);
    const double daly =
        models::daly_expected_time(1000.0, tau, 2.0, 2.0, 100.0);
    EXPECT_NEAR(ours / daly, 1.0, 0.02) << "tau=" << tau;
  }
}

TEST(DauweModel, ScratchWrapMatchesRetryAlgebra) {
  // Plan covering only severity 0 of a two-level system: severity-1
  // failures rerun the whole application. The breakdown separates the
  // scratch reruns, so the wrap algebra can be checked self-consistently:
  // scratch_rework == expm1(lambda_1 T') * E(T', lambda_1), where T' is
  // the expected time without the unrecoverable severity.
  const auto sys = toy(50.0, {0.9, 0.1}, {0.2, 5.0}, 200.0);
  const DauweModel model;

  CheckpointPlan covered;
  covered.tau0 = 5.0;
  covered.levels = {0};

  const Prediction p = model.predict(sys, covered);
  ASSERT_TRUE(std::isfinite(p.expected_time));
  EXPECT_GT(p.breakdown.scratch_rework, 0.0);
  const double inner = p.expected_time - p.breakdown.scratch_rework;
  const double lambda1 = sys.lambda(1);
  const double expected_rework =
      std::expm1(lambda1 * inner) * math::truncated_mean(inner, lambda1);
  EXPECT_NEAR(p.breakdown.scratch_rework, expected_rework,
              1e-9 * expected_rework);
  EXPECT_GT(inner, sys.base_time);
}

TEST(DauweModel, SeverityRenormalizationFlagChangesEqnTenWeighting) {
  const auto sys = systems::table1_system("B");
  const auto plan = CheckpointPlan::full_hierarchy(2.0, {3, 2, 1});
  const DauweModel printed;
  DauweOptions renorm;
  renorm.renormalize_severity_shares = true;
  const DauweModel normalized{renorm};
  const double a = printed.expected_time(sys, plan);
  const double b = normalized.expected_time(sys, plan);
  EXPECT_TRUE(std::isfinite(a));
  EXPECT_TRUE(std::isfinite(b));
  EXPECT_NE(a, b);
  // Renormalizing can only increase the per-event weights (divides by a
  // smaller rate sum), so the prediction grows.
  EXPECT_GT(b, a);
}

TEST(DauweModel, HopelessCheckpointGoesInfinite) {
  // Checkpoint 100x the MTBF: essentially never completes; the model must
  // blow up rather than return a finite fantasy.
  const auto sys = toy(1.0, {1.0}, {5000.0}, 100.0);
  const DauweModel model;
  const auto plan = CheckpointPlan::single_level(10.0, 0);
  EXPECT_TRUE(std::isinf(model.expected_time(sys, plan)));
}

TEST(DauweModel, SubsetPlanFeasible) {
  const auto sys = systems::table1_system("B");
  const DauweModel model;
  CheckpointPlan plan;
  plan.tau0 = 3.0;
  plan.levels = {0, 1, 2};  // skip the PFS level
  plan.counts = {2, 2};
  const double t = model.expected_time(sys, plan);
  EXPECT_TRUE(std::isfinite(t));
  EXPECT_GT(t, sys.base_time);
}

}  // namespace
}  // namespace mlck::core

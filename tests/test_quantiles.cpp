#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "stats/quantiles.h"
#include "util/rng.h"

namespace mlck::stats {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(Quantile, EmptySampleIsNaN) {
  // "No data" propagates as NaN instead of masquerading as 0.
  EXPECT_TRUE(std::isnan(quantile({}, 0.5)));
  const Quantiles q = summary_quantiles({});
  EXPECT_TRUE(std::isnan(q.p05));
  EXPECT_TRUE(std::isnan(q.median));
  EXPECT_TRUE(std::isnan(q.p95));
}

TEST(Quantile, NanSamplesAreIgnored) {
  // NaN carries no order information; sorting it is UB, so it is
  // filtered out and the quantiles come from the finite values alone.
  const std::vector<double> xs{kNaN, 4.0, 1.0, kNaN, 3.0, 2.0, kNaN};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  const Quantiles q = summary_quantiles(xs);
  EXPECT_DOUBLE_EQ(q.median, 2.5);
}

TEST(Quantile, AllNanSampleIsNaN) {
  const std::vector<double> xs{kNaN, kNaN, kNaN};
  EXPECT_TRUE(std::isnan(quantile(xs, 0.5)));
  EXPECT_TRUE(std::isnan(summary_quantiles(xs).median));
}

TEST(Quantile, SingleElement) {
  const std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(quantile(one, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(quantile(one, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(quantile(one, 1.0), 7.0);
}

TEST(Quantile, LinearInterpolationType7) {
  // NumPy reference: np.quantile([1,2,3,4], [0, .25, .5, .75, 1])
  //                  -> [1, 1.75, 2.5, 3.25, 4]
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};  // unsorted on purpose
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 1.75);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.75), 3.25);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
}

TEST(Quantile, ClampedOutOfRangeProbabilities) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(xs, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.5), 3.0);
}

TEST(SummaryQuantiles, OrderedAndConsistentWithQuantile) {
  util::Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.uniform());
  const Quantiles q = summary_quantiles(xs);
  EXPECT_LT(q.p05, q.p25);
  EXPECT_LT(q.p25, q.median);
  EXPECT_LT(q.median, q.p75);
  EXPECT_LT(q.p75, q.p95);
  EXPECT_DOUBLE_EQ(q.median, quantile(xs, 0.5));
  EXPECT_DOUBLE_EQ(q.p95, quantile(xs, 0.95));
  // Uniform sample: quantiles land near their probabilities.
  EXPECT_NEAR(q.median, 0.5, 0.05);
  EXPECT_NEAR(q.p05, 0.05, 0.03);
}

TEST(SummaryQuantiles, UntouchedInput) {
  const std::vector<double> xs{3.0, 1.0, 2.0};
  const std::vector<double> copy = xs;
  (void)summary_quantiles(xs);
  EXPECT_EQ(xs, copy);  // works on a sorted copy
}

}  // namespace
}  // namespace mlck::stats

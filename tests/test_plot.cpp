#include <gtest/gtest.h>

#include <sstream>

#include "exp/plot.h"
#include "models/registry.h"
#include "systems/test_systems.h"

namespace mlck::exp {
namespace {

std::vector<ScenarioResult> tiny_rows() {
  ExperimentOptions opts;
  opts.trials = 8;
  opts.seed = 99;
  const auto techniques = models::multilevel_techniques();
  std::vector<ScenarioResult> rows;
  rows.push_back(run_scenario(systems::table1_system("D2"), "D2",
                              techniques, opts));
  rows.push_back(run_scenario(systems::table1_system("D3"), "D3",
                              techniques, opts));
  return rows;
}

TEST(Plot, EfficiencyDatHasOneLinePerScenario) {
  const auto rows = tiny_rows();
  std::ostringstream os;
  write_efficiency_dat(os, rows);
  const std::string text = os.str();
  EXPECT_NE(text.find("# scenario"), std::string::npos);
  EXPECT_NE(text.find("\"Dauwe et al. sim\""), std::string::npos);
  EXPECT_NE(text.find("0 \"D2\""), std::string::npos);
  EXPECT_NE(text.find("1 \"D3\""), std::string::npos);
  // Header + 2 data lines.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
}

TEST(Plot, EfficiencyDatColumnsParseAsNumbers) {
  const auto rows = tiny_rows();
  std::ostringstream os;
  write_efficiency_dat(os, rows);
  std::istringstream in(os.str());
  std::string header;
  std::getline(in, header);
  int index;
  std::string label;
  double sim, sd, pred;
  in >> index >> label;
  for (int t = 0; t < 3; ++t) {
    in >> sim >> sd >> pred;
    EXPECT_GT(sim, 0.0);
    EXPECT_GE(sd, 0.0);
    EXPECT_GT(pred, 0.0);
    EXPECT_LE(pred, 1.0);
  }
  EXPECT_TRUE(in.good());
}

TEST(Plot, EfficiencyScriptReferencesDataAndTechniques) {
  std::ostringstream os;
  write_efficiency_gp(os, "fig2.dat", "Figure 2",
                      {"Dauwe et al.", "Di et al."}, "fig2.png");
  const std::string gp = os.str();
  EXPECT_NE(gp.find("set output \"fig2.png\""), std::string::npos);
  EXPECT_NE(gp.find("\"fig2.dat\""), std::string::npos);
  EXPECT_NE(gp.find("histogram errorbars"), std::string::npos);
  EXPECT_NE(gp.find("Dauwe et al. predicted"), std::string::npos);
  EXPECT_NE(gp.find("using 3:4:xtic(2)"), std::string::npos);
  EXPECT_NE(gp.find("using 6:7:xtic(2)"), std::string::npos);
}

TEST(Plot, PredictionErrorDatSortedByChosenTechnique) {
  const auto rows = tiny_rows();
  std::ostringstream os;
  write_prediction_error_dat(os, rows, "Moody et al.");
  std::istringstream in(os.str());
  std::string header;
  std::getline(in, header);
  double previous = -1.0;
  for (int line = 0; line < 2; ++line) {
    int index;
    std::string label;
    double dauwe, di, moody;
    in >> index >> label >> dauwe >> di >> moody;
    EXPECT_EQ(index, line + 1);
    EXPECT_GE(std::abs(moody), previous);
    previous = std::abs(moody);
  }
}

TEST(Plot, PredictionErrorScriptHasZeroLine) {
  std::ostringstream os;
  write_prediction_error_gp(os, "fig6.dat", "Figure 6",
                            {"Dauwe et al.", "Di et al.", "Moody et al."});
  const std::string gp = os.str();
  EXPECT_NE(gp.find("zero(x)"), std::string::npos);
  EXPECT_NE(gp.find("with linespoints"), std::string::npos);
  EXPECT_NE(gp.find("Moody et al."), std::string::npos);
}

TEST(Plot, QuotingStripsEmbeddedQuotes) {
  std::ostringstream os;
  write_efficiency_gp(os, "a\"b.dat", "t", {"x"});
  EXPECT_EQ(os.str().find("a\"b.dat"), std::string::npos);
  EXPECT_NE(os.str().find("\"ab.dat\""), std::string::npos);
}

}  // namespace
}  // namespace mlck::exp

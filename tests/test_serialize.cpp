#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/serialize.h"
#include "systems/test_systems.h"

namespace mlck::core {
namespace {

TEST(SerializeSystem, RoundTripPreservesEveryField) {
  for (const auto& original : systems::table1_systems()) {
    const auto restored = system_from_json(to_json(original));
    EXPECT_EQ(restored.name, original.name);
    EXPECT_DOUBLE_EQ(restored.mtbf, original.mtbf);
    EXPECT_EQ(restored.severity_probability, original.severity_probability);
    EXPECT_EQ(restored.checkpoint_cost, original.checkpoint_cost);
    EXPECT_EQ(restored.restart_cost, original.restart_cost);
    EXPECT_DOUBLE_EQ(restored.base_time, original.base_time);
  }
}

TEST(SerializeSystem, RestartCostDefaultsToCheckpointCost) {
  const auto doc = util::Json::parse(R"({
    "mtbf": 50, "base_time": 100,
    "severity_probability": [0.8, 0.2],
    "checkpoint_cost": [0.5, 2.0]
  })");
  const auto sys = system_from_json(doc);
  EXPECT_EQ(sys.restart_cost, sys.checkpoint_cost);
  EXPECT_EQ(sys.name, "unnamed");
}

TEST(SerializeSystem, InvalidDocumentsRejected) {
  // Missing mandatory key.
  EXPECT_THROW(system_from_json(util::Json::parse(R"({"mtbf": 50})")),
               util::JsonError);
  // Fails SystemConfig::validate (severities do not sum to 1).
  EXPECT_THROW(system_from_json(util::Json::parse(R"({
    "mtbf": 50, "base_time": 100,
    "severity_probability": [0.5, 0.2],
    "checkpoint_cost": [0.5, 2.0]
  })")),
               std::invalid_argument);
}

TEST(SerializePlan, RoundTrip) {
  CheckpointPlan plan;
  plan.tau0 = 1.9221704227164327;
  plan.levels = {0, 2, 3};
  plan.counts = {4, 1};
  const auto restored = plan_from_json(to_json(plan));
  EXPECT_DOUBLE_EQ(restored.tau0, plan.tau0);
  EXPECT_EQ(restored.levels, plan.levels);
  EXPECT_EQ(restored.counts, plan.counts);
}

TEST(SerializePlan, CountsOptionalForSingleLevel) {
  const auto plan = plan_from_json(
      util::Json::parse(R"({"tau0": 5.5, "levels": [1]})"));
  EXPECT_DOUBLE_EQ(plan.tau0, 5.5);
  EXPECT_TRUE(plan.counts.empty());
}

TEST(SerializeIntervalSchedule, RoundTrip) {
  IntervalSchedule schedule;
  schedule.levels = {0, 1};
  schedule.periods = {4.25, 17.0};
  const auto restored = interval_schedule_from_json(to_json(schedule));
  EXPECT_EQ(restored.levels, schedule.levels);
  EXPECT_EQ(restored.periods, schedule.periods);
}

TEST(Files, WriteThenReadBack) {
  const auto path =
      std::filesystem::temp_directory_path() / "mlck_serialize_test.json";
  write_file(path.string(), "{\"x\": 1}\n");
  EXPECT_EQ(read_file(path.string()), "{\"x\": 1}\n");
  std::filesystem::remove(path);
}

TEST(Files, MissingFileThrowsWithPath) {
  try {
    read_file("/nonexistent/mlck/nope.json");
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("nope.json"), std::string::npos);
  }
}

TEST(LoadSystem, ResolvesTableNamesAndFiles) {
  EXPECT_EQ(load_system("D5").name, "D5");
  const auto path =
      std::filesystem::temp_directory_path() / "mlck_load_test.json";
  write_file(path.string(), to_json(systems::table1_system("B")).dump(2));
  const auto from_file = load_system(path.string());
  EXPECT_EQ(from_file.name, "B");
  EXPECT_EQ(from_file.levels(), 4);
  std::filesystem::remove(path);
  EXPECT_THROW(load_system("no-such-system"), std::runtime_error);
}

}  // namespace
}  // namespace mlck::core

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "app/commands.h"
#include "core/serialize.h"

namespace mlck::app {
namespace {

struct CommandResult {
  int code = 0;
  std::string out;
  std::string err;
};

CommandResult run(std::vector<std::string> args) {
  std::ostringstream out, err;
  CommandResult r;
  r.code = run_command(args, out, err);
  r.out = out.str();
  r.err = err.str();
  return r;
}

TEST(Commands, NoArgumentsPrintsUsage) {
  const auto r = run({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST(Commands, UnknownCommandRejected) {
  const auto r = run({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Commands, SystemsListsTableOne) {
  const auto r = run({"systems"});
  EXPECT_EQ(r.code, 0);
  for (const char* name : {"M", "B", "D1", "D9"}) {
    EXPECT_NE(r.out.find(name), std::string::npos) << name;
  }
}

TEST(Commands, ShowEmitsParseableJson) {
  const auto r = run({"show", "--system=D4"});
  ASSERT_EQ(r.code, 0);
  const auto doc = util::Json::parse(r.out);
  EXPECT_EQ(doc.at("name").as_string(), "D4");
  EXPECT_DOUBLE_EQ(doc.at("mtbf").as_number(), 6.0);
}

TEST(Commands, MissingSystemIsUsageError) {
  const auto r = run({"show"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--system"), std::string::npos);
}

TEST(Commands, NonexistentSystemFileIsRuntimeError) {
  const auto r = run({"show", "--system=/no/such/file.json"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("file.json"), std::string::npos);
}

TEST(Commands, OptimizeWritesALoadablePlan) {
  const auto path =
      (std::filesystem::temp_directory_path() / "mlck_cmd_plan.json")
          .string();
  const auto r =
      run({"optimize", "--system=D5", "--out=" + path});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("Dauwe et al."), std::string::npos);
  EXPECT_NE(r.out.find("predicted efficiency"), std::string::npos);
  const auto plan = core::plan_from_json(
      util::Json::parse(core::read_file(path)));
  EXPECT_GT(plan.tau0, 0.0);
  std::filesystem::remove(path);
}

TEST(Commands, PredictOnSavedPlan) {
  const auto path =
      (std::filesystem::temp_directory_path() / "mlck_cmd_predict.json")
          .string();
  ASSERT_EQ(run({"optimize", "--system=D3", "--out=" + path}).code, 0);
  const auto r = run({"predict", "--system=D3", "--plan=" + path});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("efficiency"), std::string::npos);
  // Cross-model prediction on the same plan.
  const auto di = run({"predict", "--system=D3", "--plan=" + path,
                       "--model=di"});
  EXPECT_EQ(di.code, 0);
  std::filesystem::remove(path);
}

TEST(Commands, PredictRequiresPlan) {
  const auto r = run({"predict", "--system=D3"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--plan"), std::string::npos);
}

TEST(Commands, SimulateWithTechniqueSelection) {
  const auto r = run({"simulate", "--system=D6", "--technique=daly",
                      "--trials=20", "--seed=9"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("efficiency mean"), std::string::npos);
  EXPECT_NE(r.out.find("time shares"), std::string::npos);
  EXPECT_NE(r.out.find("useful work"), std::string::npos);
}

TEST(Commands, SimulateDeterministicForSeed) {
  const auto a = run({"simulate", "--system=D2", "--trials=15", "--seed=3"});
  const auto b = run({"simulate", "--system=D2", "--trials=15", "--seed=3"});
  EXPECT_EQ(a.out, b.out);
}

TEST(Commands, SimulateRejectsBadPolicy) {
  const auto r = run({"simulate", "--system=D2", "--policy=chaos"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--policy"), std::string::npos);
}

TEST(Commands, CompareCoversAllSixTechniques) {
  const auto r = run({"compare", "--system=D7", "--trials=10"});
  ASSERT_EQ(r.code, 0) << r.err;
  for (const char* name : {"Dauwe et al.", "Di et al.", "Moody et al.",
                           "Benoit et al.", "Daly", "Young"}) {
    EXPECT_NE(r.out.find(name), std::string::npos) << name;
  }
}

TEST(Commands, TraceShowsTimeline) {
  const auto r = run({"trace", "--system=D3", "--max-events=10"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("compute"), std::string::npos);
  EXPECT_NE(r.out.find("checkpoint"), std::string::npos);
  EXPECT_NE(r.out.find("efficiency"), std::string::npos);
}

TEST(Commands, TraceAuditPassesOnCapturedTrials) {
  const auto r = run({"trace", "--system=B", "--trials=3", "--audit"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("trial 0: audit ok"), std::string::npos);
  EXPECT_NE(r.out.find("trial 2: audit ok"), std::string::npos);
  EXPECT_EQ(r.out.find("FAILED"), std::string::npos);
}

TEST(Commands, TraceChromeFormatWritesLoadableJson) {
  const auto path =
      (std::filesystem::temp_directory_path() / "mlck_cmd_trace.json")
          .string();
  const auto r = run({"trace", "--system=D3", "--format=chrome",
                      "--out=" + path});
  ASSERT_EQ(r.code, 0) << r.err;
  const auto doc = util::Json::parse(core::read_file(path));
  EXPECT_FALSE(doc.at("traceEvents").as_array().empty());
  std::filesystem::remove(path);
}

TEST(Commands, TraceJsonlFormatStreamsParseableLines) {
  const auto r = run({"trace", "--system=D3", "--format=jsonl"});
  ASSERT_EQ(r.code, 0) << r.err;
  std::istringstream lines(r.out);
  std::string line;
  std::size_t parsed = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_NO_THROW(util::Json::parse(line)) << line;
    ++parsed;
  }
  EXPECT_GT(parsed, 0u);
}

TEST(Commands, TraceRejectsUnknownFormat) {
  const auto r = run({"trace", "--system=D3", "--format=xml"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--format"), std::string::npos);
}

TEST(Commands, OptimizeAndPredictMetricsSidecar) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto metrics = (dir / "mlck_cmd_opt_metrics.json").string();
  const auto plan = (dir / "mlck_cmd_opt_metrics_plan.json").string();
  const auto opt = run({"optimize", "--system=D5", "--out=" + plan,
                        "--metrics=" + metrics});
  ASSERT_EQ(opt.code, 0) << opt.err;
  const auto doc = util::Json::parse(core::read_file(metrics));
  EXPECT_GT(doc.at("counters").at("optimizer.plans_swept").as_number(), 0.0);

  const auto pred = run({"predict", "--system=D5", "--plan=" + plan,
                         "--metrics=" + metrics});
  ASSERT_EQ(pred.code, 0) << pred.err;
  const auto pdoc = util::Json::parse(core::read_file(metrics));
  EXPECT_GT(pdoc.at("counters").at("engine.evaluations").as_number(), 0.0);
  std::filesystem::remove(metrics);
  std::filesystem::remove(plan);
}

TEST(Commands, OptimizeWithMetricsKeepsPlanIdentical) {
  // Observe-only: instrumentation must not change the selected plan.
  const auto bare = run({"optimize", "--system=D6"});
  const auto traced = run({"optimize", "--system=D6", "--metrics"});
  ASSERT_EQ(bare.code, 0);
  ASSERT_EQ(traced.code, 0);
  // The instrumented run appends metric tables; the report prefix (plan,
  // prediction) must be byte-identical.
  EXPECT_EQ(traced.out.substr(0, bare.out.size()), bare.out);
}

TEST(Commands, ScenarioLawFlagOverridesSpecFailureSection) {
  // Precedence contract: --law beats the spec's "failure" section (the
  // flag is the more specific, per-invocation intent), and the override
  // is announced on stderr so the spec's law never silently stops
  // mattering.
  const auto dir = std::filesystem::temp_directory_path();
  const auto spec = (dir / "mlck_cmd_scn_law_spec.json").string();
  ASSERT_EQ(run({"scenario", "--system=B", "--emit-spec=" + spec}).code, 0);

  const auto bare = run({"scenario", "--spec=" + spec, "--trials=10",
                         "--seed=7"});
  ASSERT_EQ(bare.code, 0) << bare.err;
  EXPECT_EQ(bare.err.find("takes precedence"), std::string::npos);

  const auto flagged = run({"scenario", "--spec=" + spec, "--trials=10",
                            "--seed=7", "--law=weibull:shape=0.7"});
  ASSERT_EQ(flagged.code, 0) << flagged.err;
  EXPECT_NE(flagged.err.find("--law=weibull:shape=0.7"), std::string::npos)
      << flagged.err;
  EXPECT_NE(flagged.err.find("takes precedence"), std::string::npos)
      << flagged.err;
  // The report reflects the flag's law, not the spec's exponential.
  EXPECT_NE(flagged.out.find("weibull"), std::string::npos) << flagged.out;
  EXPECT_NE(bare.out, flagged.out);
  std::filesystem::remove(spec);
}

TEST(Commands, ScenarioOpenMetricsAndTimelineExports) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto spec = (dir / "mlck_cmd_scn_obs_spec.json").string();
  const auto om = (dir / "mlck_cmd_scn_obs.om").string();
  const auto tl = (dir / "mlck_cmd_scn_obs.jsonl").string();
  ASSERT_EQ(run({"scenario", "--system=B", "--emit-spec=" + spec}).code, 0);
  const auto bare =
      run({"scenario", "--spec=" + spec, "--trials=20", "--seed=5"});
  ASSERT_EQ(bare.code, 0) << bare.err;
  const auto exported = run({"scenario", "--spec=" + spec, "--trials=20",
                             "--seed=5", "--openmetrics=" + om,
                             "--timeline=" + tl, "--sample-period-ms=1"});
  ASSERT_EQ(exported.code, 0) << exported.err;
  // Observe-only: the exports only append notices after the report.
  EXPECT_EQ(exported.out.substr(0, bare.out.size()), bare.out);

  const std::string text = core::read_file(om);
  EXPECT_NE(text.find("# TYPE mlck_sim_trials counter"), std::string::npos);
  EXPECT_NE(text.find("mlck_sim_trials_total"), std::string::npos);
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");

  const std::string jsonl = core::read_file(tl);
  const auto nl = jsonl.find('\n');
  ASSERT_NE(nl, std::string::npos);
  const auto meta = util::Json::parse(jsonl.substr(0, nl));
  EXPECT_EQ(meta.at("kind").as_string(), "timeline_meta");
  EXPECT_GE(meta.at("ticks").as_number(), 1.0);
  std::filesystem::remove(spec);
  std::filesystem::remove(om);
  std::filesystem::remove(tl);
}

TEST(Commands, ExportFlagsRequireAPath) {
  const auto r = run({"optimize", "--system=B", "--openmetrics"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--openmetrics"), std::string::npos);
}

TEST(Commands, ReportJoinsSpansWithCounters) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto spec = (dir / "mlck_cmd_report_spec.json").string();
  const auto json = (dir / "mlck_cmd_report.json").string();
  ASSERT_EQ(run({"scenario", "--system=B", "--emit-spec=" + spec}).code, 0);
  const auto r = run({"report", "--spec=" + spec, "--trials=20", "--seed=5",
                      "--json=" + json});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("cost attribution"), std::string::npos);
  EXPECT_NE(r.out.find("scenario.simulate"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("plan "), std::string::npos);

  const auto doc = util::Json::parse(core::read_file(json));
  const auto& phases = doc.at("phases").as_array();
  ASSERT_FALSE(phases.empty());
  // Every phase splits total into self + children, in microseconds.
  for (const auto& p : phases) {
    EXPECT_NEAR(p.at("total_us").as_number(),
                p.at("self_us").as_number() + p.at("child_us").as_number(),
                1e-6);
  }
  EXPECT_GE(doc.at("meta").at("schema_version").as_number(), 2.0);
  std::filesystem::remove(spec);
  std::filesystem::remove(json);
}

TEST(Commands, ReportRequiresSpec) {
  const auto r = run({"report"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--spec"), std::string::npos);
}

TEST(Commands, ScenarioTraceWritesChromeFileAndKeepsResults) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto spec = (dir / "mlck_cmd_scn_spec.json").string();
  const auto trace = (dir / "mlck_cmd_scn_trace.json").string();
  ASSERT_EQ(run({"scenario", "--system=B", "--emit-spec=" + spec}).code, 0);
  const auto bare =
      run({"scenario", "--spec=" + spec, "--trials=20", "--seed=5"});
  ASSERT_EQ(bare.code, 0) << bare.err;
  const auto traced = run({"scenario", "--spec=" + spec, "--trials=20",
                           "--seed=5", "--trace=" + trace,
                           "--trace-trials=2"});
  ASSERT_EQ(traced.code, 0) << traced.err;
  // Bit-identical report (tracing is observe-only); the traced run only
  // appends the trace-file notice.
  EXPECT_EQ(traced.out.substr(0, bare.out.size()), bare.out);
  EXPECT_NE(traced.out.find("2 captured trials"), std::string::npos);
  const auto doc = util::Json::parse(core::read_file(trace));
  EXPECT_FALSE(doc.at("traceEvents").as_array().empty());
  std::filesystem::remove(spec);
  std::filesystem::remove(trace);
}

TEST(Commands, SimulateAdaptiveFlag) {
  const auto r = run({"simulate", "--system=D4", "--adaptive",
                      "--trials=15", "--seed=2"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("efficiency mean"), std::string::npos);
}

TEST(Commands, SimulateIntervalSchedule) {
  const auto path =
      (std::filesystem::temp_directory_path() / "mlck_cmd_intervals.json")
          .string();
  core::write_file(path, R"({"levels": [0, 1], "periods": [3.0, 12.0]})");
  const auto r = run({"simulate", "--system=D4", "--intervals=" + path,
                      "--trials=15"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("L1:3"), std::string::npos);
  EXPECT_NE(r.out.find("efficiency mean"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Commands, EnergyComparesObjectives) {
  const auto r = run({"energy", "--system=D4", "--trials=10"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("time"), std::string::npos);
  EXPECT_NE(r.out.find("EDP"), std::string::npos);
  EXPECT_NE(r.out.find("sim energy/run"), std::string::npos);
}

TEST(Commands, EnergyRejectsNegativePower) {
  const auto r = run({"energy", "--system=D4", "--checkpoint-power=-1"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("power"), std::string::npos);
}

TEST(Commands, SensitivitySweepIsPeakedAtTheOptimum) {
  const auto r = run({"sensitivity", "--system=D5"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("tau0 factor"), std::string::npos);
  // The factor-1.00 row is the reference: "0.00%".
  EXPECT_NE(r.out.find("0.00%"), std::string::npos);
  // Every other row is at or below it (negative deltas).
  EXPECT_NE(r.out.find("-"), std::string::npos);
}

TEST(Commands, SelftestSmallRunPasses) {
  const auto r = run({"selftest", "--cases=5", "--welch-systems=0",
                      "--seed=7"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("selftest PASSED"), std::string::npos);
  EXPECT_NE(r.out.find("5 cases"), std::string::npos);
}

TEST(Commands, SelftestWritesParseableJsonReport) {
  const auto path =
      (std::filesystem::temp_directory_path() / "mlck_cmd_selftest.json")
          .string();
  const auto r = run({"selftest", "--cases=4", "--welch-systems=0",
                      "--out=" + path});
  ASSERT_EQ(r.code, 0) << r.err;
  const auto doc = util::Json::parse(core::read_file(path));
  EXPECT_DOUBLE_EQ(doc.at("cases_run").as_number(), 4.0);
  EXPECT_TRUE(doc.at("passed").as_bool());
  EXPECT_EQ(doc.at("seed").as_string(), "0x2a");
  std::filesystem::remove(path);
}

TEST(Commands, SelftestSingleCaseReplay) {
  const auto r = run({"selftest", "--cases=10", "--case=3"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("selftest PASSED"), std::string::npos);
  EXPECT_NE(r.out.find("1 case"), std::string::npos);
}

TEST(Commands, UnrecognizedOptionWarns) {
  const auto r = run({"systems", "--bogus=1"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.err.find("--bogus"), std::string::npos);
}

}  // namespace
}  // namespace mlck::app

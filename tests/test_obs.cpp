#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/registry.h"

namespace mlck::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetOverwritesSetMaxKeepsHighWater) {
  Gauge g;
  g.set(5.0);
  g.set(3.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.set_max(7.0);
  g.set_max(2.0);  // below the high-water mark: ignored
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

TEST(Histogram, ExactTotalsAndEmptyDefaults) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.max(), -std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  h.record(2.0);
  h.record(10.0);
  h.record(0.5);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 12.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  EXPECT_NEAR(h.mean(), 12.5 / 3.0, 1e-12);
}

TEST(Histogram, LogLinearBucketPlacement) {
  // Bucket i, i >= 1, covers (2^((i-1)/4), 2^(i/4)]; bucket 0 catches
  // <= 1 (and junk).
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(-3.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(
                std::numeric_limits<double>::quiet_NaN()),
            0u);
  EXPECT_EQ(Histogram::bucket_index(1.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1.5), 3u);    // (2^(1/2), 2^(3/4)]
  EXPECT_EQ(Histogram::bucket_index(2.0), 4u);    // exact powers inclusive
  EXPECT_EQ(Histogram::bucket_index(2.0001), 5u);
  EXPECT_EQ(Histogram::bucket_index(4.0), 8u);
  EXPECT_EQ(Histogram::bucket_index(1024.0), 40u);
  // Huge values saturate into the open-ended last bucket.
  EXPECT_EQ(Histogram::bucket_index(1e300), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::bucket_index(
                std::numeric_limits<double>::infinity()),
            Histogram::kBuckets - 1);
  // Upper bounds line up with the placement rule: every value sits at or
  // below its own bucket's bound and above the previous bucket's bound.
  EXPECT_DOUBLE_EQ(Histogram::bucket_upper_bound(0), 1.0);
  EXPECT_DOUBLE_EQ(Histogram::bucket_upper_bound(2), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(Histogram::bucket_upper_bound(40), 1024.0);
  EXPECT_EQ(Histogram::bucket_upper_bound(Histogram::kBuckets - 1),
            std::numeric_limits<double>::infinity());
  for (double v : {1.0001, 1.2, 1.5, 2.0, 3.0, 7.77, 1000.0, 1e9}) {
    const std::size_t i = Histogram::bucket_index(v);
    EXPECT_LE(v, Histogram::bucket_upper_bound(i)) << v;
    ASSERT_GE(i, 1u) << v;
    EXPECT_GT(v, Histogram::bucket_upper_bound(i - 1)) << v;
  }
}

TEST(Histogram, QuantileEstimateEmptyIsNaN) {
  Histogram h;
  EXPECT_TRUE(std::isnan(h.quantile_estimate(0.5)));
}

TEST(Histogram, QuantileEstimateExactWhenAllSamplesEqual) {
  // The clamps collapse the target bucket to [v, v], so any quantile is
  // exactly v.
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(6.5);
  EXPECT_DOUBLE_EQ(h.quantile_estimate(0.0), 6.5);
  EXPECT_DOUBLE_EQ(h.quantile_estimate(0.5), 6.5);
  EXPECT_DOUBLE_EQ(h.quantile_estimate(0.99), 6.5);
  EXPECT_DOUBLE_EQ(h.quantile_estimate(1.0), 6.5);
}

TEST(Histogram, QuantileEstimateSingleSampleIsThatSample) {
  Histogram h;
  h.record(37.0);
  EXPECT_DOUBLE_EQ(h.quantile_estimate(0.5), 37.0);
  EXPECT_DOUBLE_EQ(h.quantile_estimate(0.99), 37.0);
}

TEST(Histogram, QuantileEstimateWithinNineteenPercent) {
  // Uniform 1..1000: the estimate and the true quantile land in the same
  // log-linear bucket, so the ratio is bounded by the bucket's edge
  // ratio of 2^(1/4) ~ 1.19 (docs/OBSERVABILITY.md).
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  for (double q : {0.50, 0.90, 0.99}) {
    const double truth = std::ceil(q * 1000.0);  // nearest-rank on 1..1000
    const double est = h.quantile_estimate(q);
    EXPECT_GT(est, truth / 1.19) << q;
    EXPECT_LT(est, truth * 1.19) << q;
    EXPECT_GE(est, h.min());
    EXPECT_LE(est, h.max());
  }
}

TEST(Histogram, QuantileEstimateMonotonicInQ) {
  Histogram h;
  for (int i = 0; i < 500; ++i) h.record(std::pow(1.013, i));
  double prev = h.quantile_estimate(0.0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    const double cur = h.quantile_estimate(q);
    EXPECT_GE(cur, prev) << q;
    prev = cur;
  }
  EXPECT_DOUBLE_EQ(h.quantile_estimate(1.0), h.max());
}

TEST(Histogram, QuantileEstimateClampsOutOfRangeQ) {
  Histogram h;
  h.record(2.0);
  h.record(8.0);
  EXPECT_DOUBLE_EQ(h.quantile_estimate(-0.5), h.quantile_estimate(0.0));
  EXPECT_DOUBLE_EQ(h.quantile_estimate(1.5), h.quantile_estimate(1.0));
}

TEST(ScopedTimer, NullHistogramIsANoop) {
  { ScopedTimer t(nullptr); }  // must not crash or record anything
  Histogram h;
  { ScopedTimer t(&h); }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.min(), 0.0);
}

TEST(MetricsRegistry, CreateOnFirstUseReturnsStableInstances) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x.hits");
  a.add(3);
  Counter& b = reg.counter("x.hits");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);
}

TEST(MetricsRegistry, NameKindCollisionThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("x"), std::invalid_argument);
  reg.gauge("y");
  EXPECT_THROW(reg.counter("y"), std::invalid_argument);
}

TEST(MetricsRegistry, JsonSnapshotShape) {
  MetricsRegistry reg;
  reg.counter("sim.trials").add(8);
  reg.gauge("pool.queue_depth_high_water").set(5.0);
  reg.histogram("sim.trial_time_minutes").record(3.0);
  reg.histogram("sim.trial_time_minutes").record(100.0);

  const util::Json doc = reg.to_json();
  EXPECT_DOUBLE_EQ(doc.at("counters").at("sim.trials").as_number(), 8.0);
  EXPECT_DOUBLE_EQ(
      doc.at("gauges").at("pool.queue_depth_high_water").as_number(), 5.0);
  const util::Json& h =
      doc.at("histograms").at("sim.trial_time_minutes");
  EXPECT_DOUBLE_EQ(h.at("count").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(h.at("sum").as_number(), 103.0);
  EXPECT_DOUBLE_EQ(h.at("min").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(h.at("max").as_number(), 100.0);
  // Bucket-estimated quantiles ride along for non-empty histograms: the
  // rank-1 sample (3.0) estimates as its bucket edge 2^(7/4) ~ 3.364; the
  // rank-2 sample (100.0) is pinned exactly by the max clamp.
  EXPECT_DOUBLE_EQ(h.at("p50").as_number(),
                   Histogram::bucket_upper_bound(
                       Histogram::bucket_index(3.0)));
  EXPECT_DOUBLE_EQ(h.at("p99").as_number(), 100.0);
  // Only non-zero buckets are emitted, with their sub-bucket upper edges.
  const auto& buckets = h.at("buckets").as_array();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_DOUBLE_EQ(buckets[0].at("le").as_number(),
                   Histogram::bucket_upper_bound(
                       Histogram::bucket_index(3.0)));
  EXPECT_DOUBLE_EQ(buckets[0].at("count").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(buckets[1].at("le").as_number(),
                   Histogram::bucket_upper_bound(
                       Histogram::bucket_index(100.0)));

  // Round-trips through the parser (valid JSON text).
  EXPECT_NO_THROW(util::Json::parse(doc.dump(2)));
}

TEST(MetricsRegistry, EmptyRegistryEmitsEmptyObject) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.to_json().dump(), "{}");
}

TEST(MetricsRegistry, PrintRendersTables) {
  MetricsRegistry reg;
  reg.counter("a.count").add(7);
  reg.gauge("b.depth").set(2.0);
  std::ostringstream os;
  reg.print(os);
  EXPECT_NE(os.str().find("a.count"), std::string::npos);
  EXPECT_NE(os.str().find("b.depth"), std::string::npos);
  EXPECT_NE(os.str().find("7"), std::string::npos);
}

TEST(MetricsRegistry, ConcurrentUpdatesAreExact) {
  // Stress the lock-free primitives and concurrent create-on-first-use
  // from many threads; totals must come out exact (run under the asan
  // preset this also exercises the thread-safety of the registry maps).
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      Counter& hits = reg.counter("stress.hits");
      Histogram& lat = reg.histogram("stress.latency");
      Gauge& depth = reg.gauge("stress.depth");
      for (int i = 0; i < kPerThread; ++i) {
        hits.add();
        lat.record(static_cast<double>(i % 7) + 0.5);
        depth.set_max(static_cast<double>(t * kPerThread + i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.counter("stress.hits").value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const Histogram& lat = reg.histogram("stress.latency");
  EXPECT_EQ(lat.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(lat.min(), 0.5);
  EXPECT_DOUBLE_EQ(lat.max(), 6.5);
  // Sum of (i % 7 + 0.5) over each thread's kPerThread iterations.
  double per_thread = 0.0;
  for (int i = 0; i < kPerThread; ++i) per_thread += i % 7 + 0.5;
  EXPECT_DOUBLE_EQ(lat.sum(), per_thread * kThreads);
  EXPECT_DOUBLE_EQ(reg.gauge("stress.depth").value(),
                   static_cast<double>(kThreads * kPerThread - 1));
}

TEST(HistogramBatch, FlushMatchesDirectRecording) {
  Histogram direct;
  Histogram batched;
  HistogramBatch batch;
  const double samples[] = {0.5, 1.0, 1.5, 2.0, 3.75, 100.0, 1e9, 3.75};
  for (double v : samples) {
    direct.record(v);
    batch.record(v);
  }
  EXPECT_EQ(batch.count(), 8u);
  batch.flush(&batched);
  EXPECT_EQ(batched.count(), direct.count());
  EXPECT_DOUBLE_EQ(batched.sum(), direct.sum());
  EXPECT_DOUBLE_EQ(batched.min(), direct.min());
  EXPECT_DOUBLE_EQ(batched.max(), direct.max());
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(batched.bucket_count(i), direct.bucket_count(i)) << i;
  }
}

TEST(HistogramBatch, FlushResetsAndMergesIncrementally) {
  Histogram h;
  h.record(4.0);  // flushing must merge, not overwrite
  HistogramBatch batch;
  batch.record(2.0);
  batch.flush(&h);
  EXPECT_EQ(batch.count(), 0u);  // reset for reuse
  batch.flush(&h);               // empty flush is a no-op
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.sum(), 6.0);
  EXPECT_DOUBLE_EQ(h.min(), 2.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
  batch.record(1.0);
  batch.flush(nullptr);  // null-safe, still resets
  EXPECT_EQ(batch.count(), 0u);
}

TEST(MetricsRegistry, ParallelFirstUseResolvesOneInstance) {
  // All threads racing to create the same name must get the same
  // instance, and every update must land on it.
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  std::vector<Counter*> resolved(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, &resolved, t] {
      Counter& c = reg.counter("race.first_use");
      c.add();
      resolved[static_cast<std::size_t>(t)] = &c;
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(resolved[0], resolved[t]);
  EXPECT_EQ(reg.counter("race.first_use").value(),
            static_cast<std::uint64_t>(kThreads));
}

TEST(MetricsRegistry, KindMismatchRaceHasOneWinner) {
  // Threads race to claim the same name as different kinds: whichever
  // kind claims first wins, the entire other side throws, and the
  // registry stays consistent (never two metrics under one name).
  MetricsRegistry reg;
  constexpr int kPerKind = 4;
  std::atomic<int> counter_ok{0};
  std::atomic<int> gauge_ok{0};
  std::vector<std::thread> threads;
  threads.reserve(2 * kPerKind);
  for (int t = 0; t < kPerKind; ++t) {
    threads.emplace_back([&] {
      try {
        reg.counter("race.kind");
        counter_ok.fetch_add(1);
      } catch (const std::invalid_argument&) {
      }
    });
    threads.emplace_back([&] {
      try {
        reg.gauge("race.kind");
        gauge_ok.fetch_add(1);
      } catch (const std::invalid_argument&) {
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE((counter_ok == kPerKind && gauge_ok == 0) ||
              (counter_ok == 0 && gauge_ok == kPerKind))
      << "counter_ok=" << counter_ok << " gauge_ok=" << gauge_ok;
  // The snapshot sees exactly one metric under the contested name.
  const RegistrySnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.metric_count(), 1u);
}

TEST(MetricsRegistry, SnapshotWhileUpdatingSeesNoTornPairs) {
  // A writer hammers a histogram and counter with a fixed sample while
  // readers snapshot concurrently: because record() publishes count last
  // (release) and the snapshot loads it first (acquire), every snapshot
  // must satisfy sum >= count * v and buckets >= count — a count whose
  // sum or buckets are still missing is a torn pair.
  MetricsRegistry reg;
  constexpr double kSample = 2.5;
  Histogram& h = reg.histogram("torn.hist");
  Counter& c = reg.counter("torn.count");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      h.record(kSample);
      c.add();
    }
  });
  for (int i = 0; i < 2000; ++i) {
    const RegistrySnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.histograms.size(), 1u);
    const HistogramSnapshot& hs = snap.histograms[0].second;
    // Sums of 2.5 are exact in double far past any count reachable here.
    EXPECT_GE(hs.sum, static_cast<double>(hs.count) * kSample);
    std::uint64_t in_buckets = 0;
    for (const auto& [le, n] : hs.buckets) {
      EXPECT_GE(le, kSample);
      in_buckets += n;
    }
    EXPECT_GE(in_buckets, hs.count);
    if (hs.count > 0) {
      EXPECT_DOUBLE_EQ(hs.min, kSample);
      EXPECT_DOUBLE_EQ(hs.max, kSample);
      EXPECT_DOUBLE_EQ(hs.p50, kSample);  // clamps pin all-equal samples
    }
  }
  stop.store(true);
  writer.join();
  // Final quiesced snapshot: totals agree exactly.
  const RegistrySnapshot snap = reg.snapshot();
  const HistogramSnapshot& hs = snap.histograms[0].second;
  EXPECT_DOUBLE_EQ(hs.sum, static_cast<double>(hs.count) * kSample);
}

TEST(MetricsRegistry, SnapshotSortsNamesAndCountsMetrics) {
  MetricsRegistry reg;
  reg.counter("b.second").add(2);
  reg.counter("a.first").add(1);
  reg.gauge("g.depth").set(4.0);
  reg.histogram("h.lat").record(3.0);
  const RegistrySnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.metric_count(), 4u);
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a.first");
  EXPECT_EQ(snap.counters[0].second, 1u);
  EXPECT_EQ(snap.counters[1].first, "b.second");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 4.0);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count, 1u);
  EXPECT_DOUBLE_EQ(snap.histograms[0].second.mean(), 3.0);
}

}  // namespace
}  // namespace mlck::obs

#include <gtest/gtest.h>

#include <cmath>

#include "core/dauwe_model.h"
#include "core/optimizer.h"
#include "energy/power_model.h"
#include "sim/trial_runner.h"
#include "systems/test_systems.h"

namespace mlck::energy {
namespace {

TEST(PowerModel, EnergyFromSimBreakdownByHand) {
  PowerModel power;
  power.compute = 2.0;
  power.checkpoint = 1.0;
  power.restart = 0.5;
  sim::SimBreakdown b;
  b.useful = 10.0;
  b.rework_compute = 2.0;
  b.rework_checkpoint = 1.0;
  b.rework_restart = 1.0;
  b.checkpoint_ok = 3.0;
  b.checkpoint_failed = 1.0;
  b.restart_ok = 2.0;
  b.restart_failed = 2.0;
  // compute time 14, checkpoint time 4, restart time 4.
  EXPECT_DOUBLE_EQ(power.energy(b), 2.0 * 14.0 + 1.0 * 4.0 + 0.5 * 4.0);
}

TEST(PowerModel, EnergyFromModelBreakdownByHand) {
  PowerModel power;
  power.compute = 1.5;
  power.checkpoint = 0.5;
  power.restart = 0.25;
  core::ModelBreakdown b;
  b.compute = 100.0;
  b.rework_compute = 10.0;
  b.rework_checkpoint = 5.0;
  b.scratch_rework = 5.0;
  b.checkpoint_ok = 8.0;
  b.checkpoint_failed = 2.0;
  b.restart_ok = 4.0;
  b.restart_failed = 4.0;
  EXPECT_DOUBLE_EQ(power.energy(b),
                   1.5 * 120.0 + 0.5 * 10.0 + 0.25 * 8.0);
}

TEST(PowerModel, UniformPowerMakesEnergyProportionalToTime) {
  const PowerModel uniform{1.0, 1.0, 1.0};
  const auto sys = systems::table1_system("D3");
  const auto plan = core::CheckpointPlan::full_hierarchy(2.0, {4});
  const auto stats = sim::run_trials(sys, plan, 20, 3);
  // Energy per trial == total time per trial, so aggregate shares match.
  sim::SimBreakdown minutes = stats.time_shares;  // shares sum to 1
  EXPECT_NEAR(uniform.energy(minutes), 1.0, 1e-9);
}

TEST(PowerModel, ValidateRejectsNegativeDraw) {
  PowerModel bad;
  bad.checkpoint = -0.1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(EnergyObjective, TimeObjectiveDelegates) {
  const core::DauweModel base;
  const EnergyObjectiveModel model(base, {}, Objective::kTime);
  const auto sys = systems::table1_system("D4");
  const auto plan = core::CheckpointPlan::full_hierarchy(1.5, {3});
  EXPECT_DOUBLE_EQ(model.expected_time(sys, plan),
                   base.expected_time(sys, plan));
}

TEST(EnergyObjective, EnergyMatchesPredictionBreakdown) {
  const core::DauweModel base;
  PowerModel power;
  power.checkpoint = 0.5;
  power.restart = 0.5;
  const EnergyObjectiveModel model(base, power, Objective::kEnergy);
  const auto sys = systems::table1_system("D4");
  const auto plan = core::CheckpointPlan::full_hierarchy(1.5, {3});
  const auto prediction = base.predict(sys, plan);
  EXPECT_NEAR(model.expected_time(sys, plan),
              power.energy(prediction.breakdown),
              1e-9 * prediction.expected_time);
  // Checkpoint/restart time is billed at half price, so energy is below
  // the plain time.
  EXPECT_LT(model.expected_time(sys, plan), prediction.expected_time);
}

TEST(EnergyObjective, EdpIsEnergyTimesTime) {
  const core::DauweModel base;
  PowerModel power;
  power.checkpoint = 0.7;
  const EnergyObjectiveModel energy(base, power, Objective::kEnergy);
  const EnergyObjectiveModel edp(base, power, Objective::kEdp);
  const auto sys = systems::table1_system("D5");
  const auto plan = core::CheckpointPlan::full_hierarchy(2.5, {4});
  EXPECT_NEAR(edp.expected_time(sys, plan),
              energy.expected_time(sys, plan) *
                  base.expected_time(sys, plan),
              1e-6 * edp.expected_time(sys, plan));
}

TEST(EnergyObjective, InfeasiblePlansStayInfeasible) {
  const core::DauweModel base;
  const EnergyObjectiveModel model(base, {}, Objective::kEnergy);
  const auto sys = systems::table1_system("D1");
  const auto plan = core::CheckpointPlan::full_hierarchy(800.0, {1});
  EXPECT_TRUE(std::isinf(model.expected_time(sys, plan)));
}

TEST(EnergyObjective, OptimizerFindsEnergyOptimalPlan) {
  // With cheap checkpoints (power-wise), the energy optimum checkpoints
  // at least as eagerly as the time optimum, and by definition its
  // predicted energy is no worse.
  const auto sys = systems::table1_system("D5");
  const core::DauweModel base;
  PowerModel power;
  power.checkpoint = 0.3;
  power.restart = 0.3;
  const EnergyObjectiveModel objective(base, power, Objective::kEnergy);

  const auto time_optimal = core::optimize_intervals(base, sys);
  const auto energy_optimal = core::optimize_intervals(objective, sys);

  const double energy_of_time_plan =
      power.energy(base.predict(sys, time_optimal.plan).breakdown);
  const double energy_of_energy_plan =
      power.energy(base.predict(sys, energy_optimal.plan).breakdown);
  EXPECT_LE(energy_of_energy_plan, energy_of_time_plan * (1.0 + 1e-9));

  const double time_of_time_plan =
      base.expected_time(sys, time_optimal.plan);
  const double time_of_energy_plan =
      base.expected_time(sys, energy_optimal.plan);
  EXPECT_LE(time_of_time_plan, time_of_energy_plan * (1.0 + 1e-9));
}

TEST(EnergyObjective, SimulatedEnergyTracksPredictedEnergy) {
  const auto sys = systems::table1_system("D3");
  const core::DauweModel base;
  PowerModel power;
  power.checkpoint = 0.6;
  power.restart = 0.5;
  const auto plan = core::CheckpointPlan::full_hierarchy(2.0, {4});
  const auto prediction = base.predict(sys, plan);
  const double predicted_energy = power.energy(prediction.breakdown);

  // Mean simulated energy over trials.
  double total_energy = 0.0;
  const int trials = 60;
  for (int k = 0; k < trials; ++k) {
    sim::RandomFailureSource src(
        sys, util::Rng(util::derive_stream_seed(77, std::uint64_t(k))));
    const auto r = sim::simulate(sys, plan, src);
    total_energy += power.energy(r.breakdown);
  }
  EXPECT_NEAR(total_energy / trials / predicted_energy, 1.0, 0.05);
}

TEST(PowerModel, ZeroDrawsAreValidAndYieldZeroEnergy) {
  // All-zero draws are a legal boundary (validate rejects only negative
  // draws) and must zero the energy of any breakdown.
  const PowerModel dark{0.0, 0.0, 0.0};
  EXPECT_NO_THROW(dark.validate());
  sim::SimBreakdown sb;
  sb.useful = 10.0;
  sb.checkpoint_ok = 3.0;
  sb.restart_failed = 2.0;
  EXPECT_DOUBLE_EQ(dark.energy(sb), 0.0);
  core::ModelBreakdown mb;
  mb.compute = 100.0;
  mb.checkpoint_ok = 8.0;
  mb.restart_ok = 4.0;
  EXPECT_DOUBLE_EQ(dark.energy(mb), 0.0);
}

TEST(EnergyObjective, SingleLevelSystemMatchesPredictionBreakdown) {
  // Degenerate hierarchy: one level, so the plan has no counts and the
  // model's only stage is the top one.
  const auto sys = systems::SystemConfig::from_table_row(
      "solo", 1, 500.0, {1.0}, {2.0}, 100.0);
  const core::DauweModel base;
  PowerModel power;
  power.checkpoint = 0.4;
  power.restart = 0.3;
  const EnergyObjectiveModel model(base, power, Objective::kEnergy);
  const auto plan = core::CheckpointPlan::full_hierarchy(25.0, {});
  const auto prediction = base.predict(sys, plan);
  ASSERT_TRUE(std::isfinite(prediction.expected_time));
  EXPECT_NEAR(model.expected_time(sys, plan),
              power.energy(prediction.breakdown),
              1e-9 * prediction.expected_time);
}

TEST(EnergyObjective, VanishingFailureRateApproachesFailureFreeEnergy) {
  // lambda -> 0 limit: no rework or restarts survive, so the energy of a
  // plan collapses to compute draw * T_B plus checkpoint draw * the
  // failure-free checkpoint overhead.
  const auto sys = systems::SystemConfig::from_table_row(
      "calm", 1, 1e12, {1.0}, {2.0}, 100.0);
  const core::DauweModel base;
  PowerModel power;
  power.compute = 1.2;
  power.checkpoint = 0.4;
  power.restart = 0.9;
  const EnergyObjectiveModel model(base, power, Objective::kEnergy);
  // tau0 = 25 on T_B = 100: four periods, three interior checkpoints.
  const auto plan = core::CheckpointPlan::full_hierarchy(25.0, {});
  const double expected = 1.2 * 100.0 + 0.4 * (3.0 * 2.0);
  EXPECT_NEAR(model.expected_time(sys, plan), expected, 1e-6 * expected);
}

}  // namespace
}  // namespace mlck::energy

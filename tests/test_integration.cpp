#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "exp/experiments.h"
#include "exp/report.h"
#include "models/registry.h"
#include "systems/scaling.h"
#include "systems/test_systems.h"

namespace mlck::exp {
namespace {

ExperimentOptions quick_options(std::size_t trials = 60) {
  ExperimentOptions opts;
  opts.trials = trials;
  opts.seed = 20180521;  // IPDPSW 2018
  return opts;
}

TEST(Integration, DauweModelPredictsItsOwnSimulatedPerformance) {
  // The headline claim: optimizing with the Dauwe model yields plans whose
  // *predicted* efficiency tracks the *simulated* efficiency closely on
  // moderate systems.
  const auto technique = models::make_technique("dauwe");
  for (const char* name : {"D1", "D3"}) {
    const auto sys = systems::table1_system(name);
    const TechniqueOutcome out =
        evaluate_technique(*technique, sys, quick_options());
    EXPECT_NEAR(out.predicted_efficiency, out.sim.efficiency.mean, 0.05)
        << name;
    EXPECT_GT(out.sim.efficiency.mean, 0.0);
  }
}

TEST(Integration, DalyPredictionHighlyAccurate) {
  // Sec. IV-C: Daly's equations are highly accurate for traditional C/R.
  const auto technique = models::make_technique("daly");
  const auto sys = systems::table1_system("D2");
  const TechniqueOutcome out =
      evaluate_technique(*technique, sys, quick_options());
  EXPECT_NEAR(out.predicted_efficiency, out.sim.efficiency.mean, 0.04);
}

TEST(Integration, MultilevelBeatsTraditionalOnHardSystems) {
  // Figure 2's first trend: multilevel checkpointing outperforms Daly's
  // single-level C/R, increasingly so on harder systems.
  const auto dauwe = models::make_technique("dauwe");
  const auto daly = models::make_technique("daly");
  const auto sys = systems::table1_system("D5");
  const auto opts = quick_options();
  const double ml = evaluate_technique(*dauwe, sys, opts).sim.efficiency.mean;
  const double sl = evaluate_technique(*daly, sys, opts).sim.efficiency.mean;
  EXPECT_GT(ml, sl + 0.03);
}

TEST(Integration, ShortApplicationGainsFromSkippingThePfsLevel) {
  // Figure 5's effect, at one grid point: on a 30-minute application with
  // 20-minute PFS checkpoints, Dauwe (level skipping) beats Moody (always
  // all levels).
  const auto sys = systems::scaled_system_b(9.0, 20.0, 30.0);
  const auto dauwe = models::make_technique("dauwe");
  const auto moody = models::make_technique("moody");
  ExperimentOptions opts = quick_options(120);
  const TechniqueOutcome d = evaluate_technique(*dauwe, sys, opts);
  const TechniqueOutcome m = evaluate_technique(*moody, sys, opts);
  EXPECT_LT(d.plan.top_system_level(), 3);
  EXPECT_EQ(m.plan.top_system_level(), 3);
  EXPECT_GT(d.sim.efficiency.mean, m.sim.efficiency.mean);
}

TEST(Integration, RunScenarioCollectsEveryTechnique) {
  const auto sys = systems::table1_system("D2");
  const auto techniques = models::multilevel_techniques();
  const ScenarioResult result =
      run_scenario(sys, "D2", techniques, quick_options(20));
  ASSERT_EQ(result.outcomes.size(), 3u);
  EXPECT_EQ(result.label, "D2");
  for (const auto& o : result.outcomes) {
    EXPECT_GT(o.sim.efficiency.mean, 0.0);
    EXPECT_LE(o.sim.efficiency.max, 1.0);
    EXPECT_GT(o.predicted_efficiency, 0.0);
    EXPECT_EQ(o.sim.trials, 20u);
  }
  EXPECT_EQ(result.outcome("Moody et al.").technique, "Moody et al.");
  EXPECT_THROW(result.outcome("nope"), std::out_of_range);
}

TEST(Integration, ScaledGridShapes) {
  const auto grid = scaled_b_grid(1440.0, systems::figure4_pfs_cost_grid());
  EXPECT_EQ(grid.size(), 20u);  // 4 PFS costs x 5 MTBFs
  EXPECT_EQ(grid.front().pfs_cost, 10.0);
  EXPECT_EQ(grid.front().mtbf, 26.0);
  EXPECT_EQ(grid.back().pfs_cost, 40.0);
  EXPECT_EQ(grid.back().mtbf, 3.0);
  for (const auto& sc : grid) {
    EXPECT_NO_THROW(sc.system.validate());
    EXPECT_EQ(sc.system.base_time, 1440.0);
  }
}

TEST(Integration, ReportsRenderAllSections) {
  const auto sys = systems::table1_system("D2");
  const auto techniques = models::multilevel_techniques();
  std::vector<ScenarioResult> rows;
  rows.push_back(run_scenario(sys, "D2", techniques, quick_options(10)));

  std::ostringstream eff;
  print_efficiency_table(eff, "Efficiency", rows);
  EXPECT_NE(eff.str().find("Dauwe et al. sim"), std::string::npos);
  EXPECT_NE(eff.str().find("D2"), std::string::npos);
  EXPECT_NE(eff.str().find('%'), std::string::npos);

  std::ostringstream brk;
  print_breakdown_table(brk, "Breakdown", rows);
  EXPECT_NE(brk.str().find("ckpt fail"), std::string::npos);

  std::ostringstream err;
  print_prediction_error_table(err, "Errors", rows, "Moody et al.");
  EXPECT_NE(err.str().find("Moody et al. err"), std::string::npos);

  std::ostringstream csv;
  write_efficiency_csv(csv, rows);
  EXPECT_NE(csv.str().find("sim_efficiency_mean"), std::string::npos);
  EXPECT_NE(csv.str().find("Di et al."), std::string::npos);
}

TEST(Integration, PredictionErrorSignsMatchThePaperOnHardScenarios) {
  // Figure 6: Di et al. over-estimates efficiency, the full Dauwe model
  // stays closer to zero error, on a hard exascale-like scenario.
  const auto sys = systems::scaled_system_b(9.0, 20.0, 1440.0);
  ExperimentOptions opts = quick_options(60);
  const auto di = models::make_technique("di");
  const auto dauwe = models::make_technique("dauwe");
  const TechniqueOutcome di_out = evaluate_technique(*di, sys, opts);
  const TechniqueOutcome dauwe_out = evaluate_technique(*dauwe, sys, opts);
  EXPECT_GT(di_out.prediction_error(), 0.0);
  EXPECT_LT(std::abs(dauwe_out.prediction_error()),
            std::abs(di_out.prediction_error()) + 0.05);
}

}  // namespace
}  // namespace mlck::exp

// Property tests for the prefix-incremental sweep cursor
// (core::DauweKernel::Cursor) and the staged optimizer path built on it.
// The cursor's contract is *bit*-identity with the per-plan entry points,
// so every comparison here is EXPECT_EQ on doubles, not a tolerance.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <random>
#include <vector>

#include "core/dauwe_kernel.h"
#include "core/dauwe_model.h"
#include "core/optimizer.h"
#include "prop_support.h"
#include "systems/system_config.h"

namespace mlck::core {
namespace {

constexpr std::uint64_t kSeed = 20180521;  // paper submission date; fixed

systems::SystemConfig random_system(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> levels_dist(1, 5);
  const int L = levels_dist(rng);
  std::uniform_real_distribution<double> mtbf_dist(30.0, 20000.0);
  std::uniform_real_distribution<double> share_dist(0.05, 1.0);
  std::uniform_real_distribution<double> cost_dist(0.005, 30.0);
  std::uniform_real_distribution<double> base_dist(200.0, 5000.0);

  std::vector<double> severity(static_cast<std::size_t>(L));
  double total = 0.0;
  for (double& s : severity) total += (s = share_dist(rng));
  for (double& s : severity) s /= total;
  std::vector<double> cost(static_cast<std::size_t>(L));
  for (double& c : cost) c = cost_dist(rng);
  return systems::SystemConfig::from_table_row(
      "rand", L, mtbf_dist(rng), severity, cost, base_dist(rng));
}

/// Random non-empty ascending subset of the system's levels.
std::vector<int> random_subset(std::mt19937_64& rng, int levels) {
  std::vector<int> subset;
  while (subset.empty()) {
    for (int l = 0; l < levels; ++l) {
      if (std::bernoulli_distribution(0.6)(rng)) subset.push_back(l);
    }
  }
  return subset;
}

DauweOptions random_options(std::mt19937_64& rng) {
  DauweOptions opt;
  opt.checkpoint_failures = std::bernoulli_distribution(0.8)(rng);
  opt.restart_failures = std::bernoulli_distribution(0.8)(rng);
  opt.renormalize_severity_shares = std::bernoulli_distribution(0.5)(rng);
  return opt;
}

double pattern_of(const std::vector<int>& counts) {
  double p = 1.0;
  for (const int n : counts) p *= static_cast<double>(n + 1);
  return p;
}

TEST(StagedSweep, CursorBitMatchesPerPlanPathOnRandomSystems) {
  const std::uint64_t seed = testprop::suite_seed(kSeed);
  SCOPED_TRACE(testprop::repro(
      "StagedSweep.CursorBitMatchesPerPlanPathOnRandomSystems", seed));
  std::mt19937_64 rng(seed);
  int feasible = 0;
  int infeasible = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const auto sys = random_system(rng);
    const auto subset = random_subset(rng, sys.levels());
    const DauweOptions opt = random_options(rng);
    const DauweKernel kernel(sys, subset, opt);
    const DauweModel model(opt);
    const std::size_t dims = subset.size() - 1;

    // One cursor reused across several plans of this subset, exercising
    // the sibling-sharing paths the sweep relies on: full re-begin,
    // partial re-push from a random depth, and stale deeper stages.
    auto cursor = kernel.cursor();
    std::uniform_real_distribution<double> tau_dist(1e-4, 0.999);
    // Counts up to 40 make tau0 * prod(N+1) > T_B reasonably common, so
    // both feasible and infeasible leaves are exercised.
    std::uniform_int_distribution<int> count_dist(0, 40);
    std::vector<int> counts(dims, 0);
    double tau0 = tau_dist(rng) * sys.base_time;
    cursor.begin(tau0);
    for (std::size_t d = 0; d < dims; ++d) {
      counts[d] = count_dist(rng);
      cursor.push_stage(static_cast<int>(d), counts[d]);
    }

    for (int plan_i = 0; plan_i < 6; ++plan_i) {
      const double staged = cursor.finish_expected_time(pattern_of(counts));
      const double fresh = kernel.expected_time(tau0, counts);
      ASSERT_EQ(staged, fresh)
          << "trial " << trial << " plan " << plan_i << " tau0 " << tau0;
      if (std::isfinite(fresh)) {
        ++feasible;
        // And the kernel itself is an exact factoring of the model.
        CheckpointPlan plan;
        plan.tau0 = tau0;
        plan.levels = subset;
        plan.counts = counts;
        ASSERT_EQ(fresh, model.expected_time(sys, plan));
      } else {
        ++infeasible;
        ASSERT_EQ(staged, std::numeric_limits<double>::infinity());
      }

      // Mutate the plan for the next round: usually a partial re-push
      // from a random depth (the sweep's sibling step), sometimes a
      // fresh tau0 (the sweep's next slice).
      if (dims > 0 && std::bernoulli_distribution(0.7)(rng)) {
        const auto d = static_cast<std::size_t>(std::uniform_int_distribution<
            int>(0, static_cast<int>(dims) - 1)(rng));
        for (std::size_t k = d; k < dims; ++k) {
          counts[k] = count_dist(rng);
          cursor.push_stage(static_cast<int>(k), counts[k]);
        }
      } else {
        tau0 = tau_dist(rng) * sys.base_time;
        cursor.begin(tau0);
        for (std::size_t k = 0; k < dims; ++k) {
          counts[k] = count_dist(rng);
          cursor.push_stage(static_cast<int>(k), counts[k]);
        }
      }
    }
  }
  // The generator must actually cover both outcomes, or the test is
  // silently weaker than it claims.
  EXPECT_GT(feasible, 100);
  EXPECT_GT(infeasible, 100);
}

TEST(StagedSweep, StagedOptimizeBitMatchesGenericOnRandomSystems) {
  const std::uint64_t seed = testprop::suite_seed(kSeed ^ 0x5747454Eu);
  SCOPED_TRACE(testprop::repro(
      "StagedSweep.StagedOptimizeBitMatchesGenericOnRandomSystems", seed));
  std::mt19937_64 rng(seed);
  OptimizerOptions opts;  // shrunk grid: exactness is per-plan, not scale
  opts.coarse_tau_points = 16;
  opts.max_count = 12;
  opts.refine_rounds = 4;
  // Structural identity (same leaves in the same order, equal evaluation
  // counts) holds for the plain staged cursor; the lane-batched pruned
  // sweep is covered by WinnerSurvivesLaneBatchingAndPruning below.
  opts.lane_batch = false;
  opts.prune = false;
  for (int trial = 0; trial < 12; ++trial) {
    const auto sys = random_system(rng);
    const DauweOptions model_opt = random_options(rng);
    const DauweModel model(model_opt);

    std::vector<std::unique_ptr<const DauweKernel>> kernels;
    const auto factory =
        [&](const std::vector<int>& levels) -> const DauweKernel& {
      kernels.push_back(
          std::make_unique<const DauweKernel>(sys, levels, model_opt));
      return *kernels.back();
    };

    const auto generic = optimize_intervals(model, sys, opts);
    const auto staged = optimize_intervals_staged(factory, sys, opts);
    EXPECT_EQ(generic.plan.tau0, staged.plan.tau0) << "trial " << trial;
    EXPECT_EQ(generic.plan.levels, staged.plan.levels) << "trial " << trial;
    EXPECT_EQ(generic.plan.counts, staged.plan.counts) << "trial " << trial;
    EXPECT_EQ(generic.expected_time, staged.expected_time)
        << "trial " << trial;
    EXPECT_EQ(generic.efficiency, staged.efficiency) << "trial " << trial;
    EXPECT_EQ(generic.evaluations, staged.evaluations) << "trial " << trial;
  }
}

TEST(StagedSweep, WinnerSurvivesLaneBatchingAndPruning) {
  // The default staged path (8-lane batching + admissible subtree
  // pruning) gives up sweep-order identity but NOT winner identity: the
  // incumbent cut is strict, so every minimum-achieving leaf survives
  // and the tie-broken winner is the same bit for bit. Evaluation counts
  // shrink instead, and the difference must be exactly accounted by the
  // two prune counters.
  const std::uint64_t seed = testprop::suite_seed(kSeed ^ 0x4C414E45u);
  SCOPED_TRACE(testprop::repro(
      "StagedSweep.WinnerSurvivesLaneBatchingAndPruning", seed));
  std::mt19937_64 rng(seed);
  OptimizerOptions exact;
  exact.coarse_tau_points = 16;
  exact.max_count = 12;
  exact.refine_rounds = 4;
  exact.lane_batch = false;
  exact.prune = false;
  OptimizerOptions pruned = exact;
  pruned.lane_batch = true;
  pruned.prune = true;

  const std::size_t rungs = count_ladder(exact.max_count).size();
  std::size_t bound_cuts = 0;
  for (int trial = 0; trial < 12; ++trial) {
    const auto sys = random_system(rng);
    const DauweOptions model_opt = random_options(rng);

    std::vector<std::unique_ptr<const DauweKernel>> kernels;
    const auto factory =
        [&](const std::vector<int>& levels) -> const DauweKernel& {
      kernels.push_back(
          std::make_unique<const DauweKernel>(sys, levels, model_opt));
      return *kernels.back();
    };

    const auto a = optimize_intervals_staged(factory, sys, exact);
    const auto b = optimize_intervals_staged(factory, sys, pruned);
    EXPECT_EQ(a.plan.tau0, b.plan.tau0) << "trial " << trial;
    EXPECT_EQ(a.plan.levels, b.plan.levels) << "trial " << trial;
    EXPECT_EQ(a.plan.counts, b.plan.counts) << "trial " << trial;
    EXPECT_EQ(a.expected_time, b.expected_time) << "trial " << trial;
    EXPECT_EQ(a.efficiency, b.efficiency) << "trial " << trial;
    EXPECT_LE(b.evaluations, a.evaluations) << "trial " << trial;

    std::size_t lattice = 0;
    for (int dims = 0; dims < sys.levels(); ++dims) {
      std::size_t leaves = 1;
      for (int d = 0; d < dims; ++d) leaves *= rungs;
      lattice += static_cast<std::size_t>(exact.coarse_tau_points) * leaves;
    }
    EXPECT_EQ(b.coarse_evaluations + b.pruned_feasibility + b.pruned_bound,
              lattice)
        << "trial " << trial;
    bound_cuts += b.pruned_bound;
  }
  // The bound must actually fire somewhere, or this test is vacuous.
  EXPECT_GT(bound_cuts, 0u);
}

}  // namespace
}  // namespace mlck::core

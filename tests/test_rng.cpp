#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "util/rng.h"

namespace mlck::util {
namespace {

TEST(SplitMix, DeterministicAndAdvancesState) {
  std::uint64_t s1 = 42;
  std::uint64_t s2 = 42;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
  EXPECT_NE(s1, 42u);  // state advanced
  EXPECT_NE(splitmix64(s1), splitmix64(s2) + 1);  // still in lockstep
}

TEST(DeriveStreamSeed, DistinctStreamsDistinctSeeds) {
  std::array<std::uint64_t, 64> seeds{};
  for (std::uint64_t k = 0; k < seeds.size(); ++k) {
    seeds[k] = derive_stream_seed(123, k);
  }
  for (std::size_t a = 0; a < seeds.size(); ++a) {
    for (std::size_t b = a + 1; b < seeds.size(); ++b) {
      EXPECT_NE(seeds[a], seeds[b]);
    }
  }
}

TEST(Rng, ReproducibleForEqualSeeds) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(7), b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformInHalfOpenUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformPosNeverZero) {
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform_pos();
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(Rng, UniformMomentsMatch) {
  Rng rng(3);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, ExponentialMeanAndMemorylessTail) {
  Rng rng(4);
  const double rate = 0.25;
  const int n = 200000;
  double sum = 0.0;
  int beyond = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(rate);
    EXPECT_GT(x, 0.0);
    sum += x;
    if (x > 4.0) ++beyond;  // P(X > 1/rate) = e^{-1}
  }
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.05);
  EXPECT_NEAR(static_cast<double>(beyond) / n, std::exp(-1.0), 0.01);
}

TEST(Rng, DiscreteFromCdfFrequencies) {
  Rng rng(5);
  const std::vector<double> cdf{0.2, 0.7, 1.0};
  std::array<int, 3> hits{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits[rng.discrete_from_cdf(cdf)]++;
  }
  EXPECT_NEAR(hits[0] / double(n), 0.2, 0.01);
  EXPECT_NEAR(hits[1] / double(n), 0.5, 0.01);
  EXPECT_NEAR(hits[2] / double(n), 0.3, 0.01);
}

TEST(Rng, DiscreteFromCdfDegenerate) {
  Rng rng(6);
  const std::vector<double> point{1.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.discrete_from_cdf(point), 0u);
}

TEST(Rng, DiscreteFromCdfTopBucketReachableWhenCdfFallsShortOfOne) {
  // u ~ 1 edge: the lookup never compares against the final entry, so a
  // running sum that lands a hair below 1.0 (before sim::severity_cdf's
  // pinning) must still resolve to the top bucket, never out of range.
  Rng rng(8);
  const std::vector<double> short_cdf{0.25, 0.5, 0.99999999999999989};
  bool top_hit = false;
  for (int i = 0; i < 100000; ++i) {
    const auto v = rng.discrete_from_cdf(short_cdf);
    ASSERT_LT(v, short_cdf.size());
    if (v == 2u) top_hit = true;
  }
  EXPECT_TRUE(top_hit);
  // Pathological underflow: every entry ~0 still yields the last index
  // for essentially every draw (the fall-through branch).
  const std::vector<double> tiny{1e-300, 2e-300};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.discrete_from_cdf(tiny), 1u);
  }
}

TEST(Rng, BelowStaysInRangeAndCoversValues) {
  Rng rng(7);
  std::array<int, 5> hits{};
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.below(5);
    ASSERT_LT(v, 5u);
    hits[v]++;
  }
  for (const int h : hits) EXPECT_GT(h, 700);
}

TEST(Rng, StreamsFromDerivedSeedsUncorrelated) {
  Rng a(derive_stream_seed(99, 0));
  Rng b(derive_stream_seed(99, 1));
  // Crude independence check: correlation of consecutive uniforms ~ 0.
  const int n = 50000;
  double sa = 0, sb = 0, sab = 0, saa = 0, sbb = 0;
  for (int i = 0; i < n; ++i) {
    const double x = a.uniform();
    const double y = b.uniform();
    sa += x; sb += y; sab += x * y; saa += x * x; sbb += y * y;
  }
  const double cov = sab / n - (sa / n) * (sb / n);
  const double corr = cov / std::sqrt((saa / n - (sa / n) * (sa / n)) *
                                      (sbb / n - (sb / n) * (sb / n)));
  EXPECT_LT(std::abs(corr), 0.02);
}

}  // namespace
}  // namespace mlck::util

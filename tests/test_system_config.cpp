#include <gtest/gtest.h>

#include <stdexcept>

#include "systems/scaling.h"
#include "systems/system_config.h"
#include "systems/test_systems.h"

namespace mlck::systems {
namespace {

SystemConfig simple_two_level() {
  return SystemConfig::from_table_row("toy", 2, 100.0, {0.8, 0.2},
                                      {0.5, 2.0}, 1000.0);
}

TEST(SystemConfig, LambdaAccessors) {
  const SystemConfig cfg = simple_two_level();
  EXPECT_EQ(cfg.levels(), 2);
  EXPECT_DOUBLE_EQ(cfg.lambda_total(), 0.01);
  EXPECT_DOUBLE_EQ(cfg.lambda(0), 0.008);
  EXPECT_DOUBLE_EQ(cfg.lambda(1), 0.002);
  EXPECT_DOUBLE_EQ(cfg.lambda_cumulative(0), 0.008);
  EXPECT_DOUBLE_EQ(cfg.lambda_cumulative(1), 0.01);
}

TEST(SystemConfig, ValidateRejectsBadMtbf) {
  SystemConfig cfg = simple_two_level();
  cfg.mtbf = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(SystemConfig, ValidateRejectsBadBaseTime) {
  SystemConfig cfg = simple_two_level();
  cfg.base_time = -5.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(SystemConfig, ValidateRejectsSizeMismatch) {
  SystemConfig cfg = simple_two_level();
  cfg.checkpoint_cost.push_back(1.0);
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(SystemConfig, ValidateRejectsUnnormalizedSeverities) {
  SystemConfig cfg = simple_two_level();
  cfg.severity_probability = {0.5, 0.2};
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(SystemConfig, ValidateRejectsNegativeCosts) {
  SystemConfig cfg = simple_two_level();
  cfg.restart_cost[0] = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(SystemConfig, FromTableRowRejectsLevelMismatch) {
  EXPECT_THROW(SystemConfig::from_table_row("bad", 3, 100.0, {0.8, 0.2},
                                            {0.5, 2.0}, 1000.0),
               std::invalid_argument);
}

TEST(TestSystems, ElevenSystemsInPaperOrder) {
  const auto all = table1_systems();
  ASSERT_EQ(all.size(), 11u);
  const char* expected[] = {"M",  "B",  "D1", "D2", "D3", "D4",
                            "D5", "D6", "D7", "D8", "D9"};
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].name, expected[i]);
  }
}

TEST(TestSystems, AllRowsValid) {
  for (const auto& cfg : table1_systems()) {
    EXPECT_NO_THROW(cfg.validate()) << cfg.name;
  }
}

TEST(TestSystems, TranscribedValuesMatchTableOne) {
  const SystemConfig m = table1_system("M");
  EXPECT_EQ(m.levels(), 3);
  EXPECT_DOUBLE_EQ(m.mtbf, 6944.45);
  EXPECT_DOUBLE_EQ(m.severity_probability[1], 0.75);
  EXPECT_DOUBLE_EQ(m.checkpoint_cost[2], 17.53);
  EXPECT_DOUBLE_EQ(m.base_time, 1440.0);

  const SystemConfig b = table1_system("B");
  EXPECT_EQ(b.levels(), 4);
  EXPECT_DOUBLE_EQ(b.mtbf, 333.33);
  EXPECT_DOUBLE_EQ(b.severity_probability[3], 0.027);
  EXPECT_DOUBLE_EQ(b.checkpoint_cost[3], 2.5);

  const SystemConfig d9 = table1_system("D9");
  EXPECT_DOUBLE_EQ(d9.mtbf, 3.13);
  EXPECT_DOUBLE_EQ(d9.base_time, 180.0);
  EXPECT_DOUBLE_EQ(d9.checkpoint_cost[1], 5.0);
}

TEST(TestSystems, DifficultyOrderingMonotone) {
  // The paper orders systems by increasing resilience difficulty. MTBF
  // alone is not monotone (D5 trades MTBF for costlier checkpoints); the
  // PFS-cost-to-MTBF ratio — how many MTBFs one top-level checkpoint
  // burns — is, across all eleven systems.
  const auto all = table1_systems();
  double previous = 0.0;
  for (const auto& sys : all) {
    const double ratio = sys.checkpoint_cost.back() / sys.mtbf;
    EXPECT_GE(ratio, previous) << sys.name;
    previous = ratio;
  }
}

TEST(TestSystems, UnknownNameThrows) {
  EXPECT_THROW(table1_system("Z9"), std::out_of_range);
}

TEST(Scaling, OverridesOnlyPfsLevelAndMtbf) {
  const SystemConfig base = table1_system("B");
  const SystemConfig scaled = scaled_system_b(15.0, 30.0, 1440.0);
  EXPECT_DOUBLE_EQ(scaled.mtbf, 15.0);
  EXPECT_DOUBLE_EQ(scaled.checkpoint_cost.back(), 30.0);
  EXPECT_DOUBLE_EQ(scaled.restart_cost.back(), 30.0);
  for (int l = 0; l + 1 < base.levels(); ++l) {
    EXPECT_DOUBLE_EQ(scaled.checkpoint_cost[std::size_t(l)],
                     base.checkpoint_cost[std::size_t(l)]);
  }
  EXPECT_EQ(scaled.severity_probability, base.severity_probability);
}

TEST(Scaling, PaperGrids) {
  EXPECT_EQ(figure4_mtbf_grid().size(), 5u);
  EXPECT_EQ(figure4_mtbf_grid().front(), 26.0);
  EXPECT_EQ(figure4_mtbf_grid().back(), 3.0);
  EXPECT_EQ(figure4_pfs_cost_grid(), (std::vector<double>{10, 20, 30, 40}));
  EXPECT_EQ(figure5_pfs_cost_grid(), (std::vector<double>{10, 20}));
}

}  // namespace
}  // namespace mlck::systems

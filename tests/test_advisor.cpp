#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "runtime/advisor.h"
#include "sim/simulator.h"
#include "systems/test_systems.h"
#include "util/rng.h"

namespace mlck::runtime {
namespace {

using core::CheckpointPlan;

systems::SystemConfig toy_system() {
  return systems::SystemConfig::from_table_row("toy", 2, 100.0, {0.8, 0.2},
                                               {1.0, 4.0}, 30.0);
}

TEST(Advisor, FollowsThePatternGrid) {
  const auto sys = toy_system();
  CheckpointAdvisor advisor(sys, CheckpointPlan::full_hierarchy(5.0, {2}));
  // Pattern: j=1,2 -> level 0; j=3 -> level 1; ...; nothing at j=6=T_B.
  const auto first = advisor.next_checkpoint(0.0);
  ASSERT_TRUE(first.has_value());
  EXPECT_DOUBLE_EQ(first->work, 5.0);
  EXPECT_EQ(first->system_level, 0);
  const auto third = advisor.next_checkpoint(11.0);
  ASSERT_TRUE(third.has_value());
  EXPECT_DOUBLE_EQ(third->work, 15.0);
  EXPECT_EQ(third->system_level, 1);
  EXPECT_FALSE(advisor.next_checkpoint(25.0).has_value());
}

TEST(Advisor, RecordCheckpointRefreshesLowerLevels) {
  const auto sys = toy_system();
  CheckpointAdvisor advisor(sys, CheckpointPlan::full_hierarchy(5.0, {2}));
  advisor.record_checkpoint(15.0, /*system_level=*/1);
  const auto prot = advisor.protected_work();
  ASSERT_EQ(prot.size(), 2u);
  EXPECT_DOUBLE_EQ(prot[0].value(), 15.0);
  EXPECT_DOUBLE_EQ(prot[1].value(), 15.0);
}

TEST(Advisor, FailureDestroysLowerStorageAndPicksCoveringLevel) {
  const auto sys = toy_system();
  CheckpointAdvisor advisor(sys, CheckpointPlan::full_hierarchy(5.0, {2}));
  advisor.record_checkpoint(15.0, 1);
  advisor.record_checkpoint(20.0, 0);  // level 0 now newer than level 1
  const auto rec0 = advisor.on_failure(0);
  EXPECT_FALSE(rec0.from_scratch);
  EXPECT_EQ(rec0.system_level, 0);
  EXPECT_DOUBLE_EQ(rec0.restored_work, 20.0);

  // A severity-1 failure wipes level-0 storage; level 1 still holds 15.
  const auto rec1 = advisor.on_failure(1);
  EXPECT_FALSE(rec1.from_scratch);
  EXPECT_EQ(rec1.system_level, 1);
  EXPECT_DOUBLE_EQ(rec1.restored_work, 15.0);
  EXPECT_FALSE(advisor.protected_work()[0].has_value());
}

TEST(Advisor, ScratchWhenNothingCovers) {
  const auto sys = toy_system();
  CheckpointAdvisor advisor(sys, CheckpointPlan::full_hierarchy(5.0, {2}));
  advisor.record_checkpoint(5.0, 0);
  const auto rec = advisor.on_failure(1);  // destroys the level-0 copy
  EXPECT_TRUE(rec.from_scratch);
  EXPECT_DOUBLE_EQ(rec.restored_work, 0.0);
  for (const auto& p : advisor.protected_work()) {
    EXPECT_FALSE(p.has_value());
  }
}

TEST(Advisor, RestartFailureRetriesOrRetargets) {
  const auto sys = toy_system();
  CheckpointAdvisor advisor(sys, CheckpointPlan::full_hierarchy(5.0, {2}));
  advisor.record_checkpoint(15.0, 1);
  const auto rec = advisor.on_failure(1);
  ASSERT_EQ(rec.system_level, 1);
  // Lower or equal severity during the restart: same target.
  const auto retry = advisor.on_restart_failure(rec, 0);
  EXPECT_EQ(retry.system_level, 1);
  EXPECT_DOUBLE_EQ(retry.restored_work, 15.0);
  const auto retry_same = advisor.on_restart_failure(rec, 1);
  EXPECT_EQ(retry_same.system_level, 1);
}

TEST(Advisor, AdaptiveModeTrimsTheTail) {
  const auto sys = systems::SystemConfig::from_table_row(
      "tail", 2, 50.0, {0.5, 0.5}, {1.0, 8.0}, 100.0);
  const auto plan = CheckpointPlan::full_hierarchy(10.0, {1});
  CheckpointAdvisor advisor(sys, core::make_adaptive(sys, plan));
  // Early: the pattern's level-1 point at 20 keeps its level.
  EXPECT_EQ(advisor.next_checkpoint(15.0)->system_level, 1);
  // Near the end the level-1 point at 80 downgrades to level 0
  // (cutoff_1 = 40 > remaining 20), and 90 is skipped entirely.
  EXPECT_EQ(advisor.next_checkpoint(75.0)->system_level, 0);
  EXPECT_FALSE(advisor.next_checkpoint(80.0).has_value());
}

// ---------------------------------------------------------------------
// Cross-validation: an application driver that owns its own clock but
// delegates every decision to the advisor must reproduce the simulator's
// trajectory event-for-event on the same failure stream.
// ---------------------------------------------------------------------

double drive_with_advisor(const systems::SystemConfig& sys,
                          const CheckpointPlan& plan,
                          sim::FailureSource& failures) {
  CheckpointAdvisor advisor(sys, plan);
  double now = 0.0;
  double work = 0.0;
  double next_failure = 0.0;
  int severity = -1;
  const auto advance = [&] {
    const auto ev = failures.next();
    next_failure += ev.interarrival;
    severity = ev.severity;
  };
  advance();
  // Runs a phase of the given duration; returns the interrupting
  // severity or -1 on completion.
  const auto run_phase = [&](double duration) {
    if (now + duration <= next_failure) {
      now += duration;
      return -1;
    }
    now = next_failure;
    const int s = severity;
    advance();
    return s;
  };
  const auto recover = [&](CheckpointAdvisor::Recovery rec) {
    for (;;) {
      if (rec.from_scratch) {
        work = 0.0;
        return;
      }
      const int s = run_phase(
          sys.restart_cost[static_cast<std::size_t>(rec.system_level)]);
      if (s < 0) {
        work = rec.restored_work;
        return;
      }
      rec = advisor.on_restart_failure(rec, s);
    }
  };

  while (work < sys.base_time) {
    const auto next = advisor.next_checkpoint(work);
    const double target =
        next ? std::min(next->work, sys.base_time) : sys.base_time;
    int s = run_phase(target - work);
    if (s >= 0) {
      recover(advisor.on_failure(s));
      continue;
    }
    work = target;
    if (work >= sys.base_time - 1e-9) break;
    s = run_phase(
        sys.checkpoint_cost[static_cast<std::size_t>(next->system_level)]);
    if (s >= 0) {
      recover(advisor.on_failure(s));
      continue;
    }
    advisor.record_checkpoint(work, next->system_level);
  }
  return now;
}

TEST(Advisor, DriverReproducesSimulatorTrajectories) {
  for (const char* name : {"D2", "D5", "B"}) {
    const auto sys = systems::table1_system(name);
    const auto plan =
        sys.levels() == 2
            ? CheckpointPlan::full_hierarchy(3.0, {3})
            : CheckpointPlan::full_hierarchy(6.0, {1, 1, 2});
    for (std::uint64_t seed = 0; seed < 15; ++seed) {
      sim::RandomFailureSource a(
          sys, util::Rng(util::derive_stream_seed(123, seed)));
      sim::RandomFailureSource b(
          sys, util::Rng(util::derive_stream_seed(123, seed)));
      const auto simulated = sim::simulate(sys, plan, a);
      const double driven = drive_with_advisor(sys, plan, b);
      ASSERT_NEAR(driven, simulated.total_time,
                  1e-9 * (1.0 + simulated.total_time))
          << name << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace mlck::runtime

#include <gtest/gtest.h>

#include <cmath>

#include "core/interval_schedule.h"
#include "core/plan.h"
#include "core/dauwe_model.h"
#include "models/interval_baseline.h"
#include "models/interval_tuner.h"
#include "sim/simulator.h"
#include "sim/trial_runner.h"
#include "systems/test_systems.h"

namespace mlck::core {
namespace {

using Script = std::vector<sim::ScriptedFailureSource::AbsoluteFailure>;

systems::SystemConfig toy_system() {
  return systems::SystemConfig::from_table_row("toy", 2, 100.0, {0.8, 0.2},
                                               {1.0, 2.0}, 20.0);
}

IntervalSchedule toy_schedule() {
  IntervalSchedule s;
  s.levels = {0, 1};
  s.periods = {5.0, 7.0};
  return s;
}

TEST(IntervalSchedule, GridMergesLevelsAndOrdersPoints) {
  const auto s = toy_schedule();
  // Grid within T_B = 20: L0 at 5,10,15; L1 at 7,14. Merged sequence:
  // 5(L0) 7(L1) 10(L0) 14(L1) 15(L0).
  struct Expected {
    double work;
    int used_index;
  };
  const Expected seq[] = {{5, 0}, {7, 1}, {10, 0}, {14, 1}, {15, 0}};
  double w = 0.0;
  for (const auto& e : seq) {
    const auto next = s.next_checkpoint(w, 20.0);
    ASSERT_TRUE(next.has_value());
    EXPECT_DOUBLE_EQ(next->work, e.work);
    EXPECT_EQ(next->used_index, e.used_index);
    w = next->work;
  }
  EXPECT_FALSE(s.next_checkpoint(w, 20.0).has_value());  // next is 20 = T_B
}

TEST(IntervalSchedule, CollisionTakesTheHighestLevel) {
  IntervalSchedule s;
  s.levels = {0, 1, 2};
  s.periods = {2.0, 4.0, 8.0};
  const auto sys = systems::table1_system("M");
  s.validate(sys);
  EXPECT_EQ(s.next_checkpoint(0.0, 100.0)->used_index, 0);  // work 2
  EXPECT_EQ(s.next_checkpoint(2.0, 100.0)->used_index, 1);  // work 4
  EXPECT_EQ(s.next_checkpoint(6.0, 100.0)->used_index, 2);  // work 8
}

TEST(IntervalSchedule, OnGridPointAdvancesToTheNextOne) {
  const auto s = toy_schedule();
  // Exactly on 5 (or within epsilon): the next trigger is 7, not 5 again.
  EXPECT_DOUBLE_EQ(s.next_checkpoint(5.0, 20.0)->work, 7.0);
  EXPECT_DOUBLE_EQ(
      s.next_checkpoint(5.0 - IntervalSchedule::kWorkEpsilon / 2, 20.0)->work,
      7.0);
}

TEST(IntervalSchedule, ValidateRejectsMalformed) {
  const auto sys = toy_system();
  IntervalSchedule empty;
  EXPECT_THROW(empty.validate(sys), std::invalid_argument);

  IntervalSchedule mismatch;
  mismatch.levels = {0, 1};
  mismatch.periods = {1.0};
  EXPECT_THROW(mismatch.validate(sys), std::invalid_argument);

  IntervalSchedule bad_period;
  bad_period.levels = {0};
  bad_period.periods = {0.0};
  EXPECT_THROW(bad_period.validate(sys), std::invalid_argument);

  IntervalSchedule bad_level;
  bad_level.levels = {5};
  bad_level.periods = {1.0};
  EXPECT_THROW(bad_level.validate(sys), std::invalid_argument);
}

TEST(IntervalSchedule, FromPlanReproducesThePatternGrid) {
  const auto plan = CheckpointPlan::full_hierarchy(3.0, {2, 1});
  const auto s = IntervalSchedule::from_plan(plan);
  ASSERT_EQ(s.periods.size(), 3u);
  EXPECT_DOUBLE_EQ(s.periods[0], 3.0);
  EXPECT_DOUBLE_EQ(s.periods[1], 9.0);
  EXPECT_DOUBLE_EQ(s.periods[2], 18.0);
  // Every pattern checkpoint point and level must coincide.
  double w = 0.0;
  for (long long j = 1; j <= 11; ++j) {
    const auto next = s.next_checkpoint(w, 1e9);
    ASSERT_TRUE(next.has_value());
    EXPECT_NEAR(next->work, 3.0 * static_cast<double>(j), 1e-12);
    EXPECT_EQ(next->used_index, plan.checkpoint_after_interval(j)) << j;
    w = next->work;
  }
}

TEST(IntervalSchedule, ToStringIsReadable) {
  const auto s = toy_schedule();
  EXPECT_NE(s.to_string().find("L1:5"), std::string::npos);
  EXPECT_NE(s.to_string().find("L2:7"), std::string::npos);
}

TEST(IntervalSim, FailureFreeTimeline) {
  const auto sys = toy_system();
  const auto s = toy_schedule();
  sim::ScriptedFailureSource src({});
  const auto r = sim::simulate(sys, s, src);
  // 20 work + checkpoints at 5,10,15 (L0, 1 min) and 7,14 (L1, 2 min).
  EXPECT_DOUBLE_EQ(r.total_time, 20.0 + 3.0 + 4.0);
  EXPECT_EQ(r.checkpoints_completed, 5);
  EXPECT_DOUBLE_EQ(r.breakdown.useful, 20.0);
}

TEST(IntervalSim, SeverityOneRestoresFromTheIndependentLevelOneGrid) {
  const auto sys = toy_system();
  const auto s = toy_schedule();
  // Timeline: work[0,5] ck0[5,6] work[6,8] ck1[8,10] work[10,13] ...
  // At t=11 the work position is 7 + (11 - 10) = 8; a severity-1 failure
  // restores from the level-1 checkpoint holding work 7.
  sim::ScriptedFailureSource src({{11.0, 1}});
  const auto r = sim::simulate(sys, s, src);
  EXPECT_EQ(r.restarts_completed, 1);
  EXPECT_DOUBLE_EQ(r.breakdown.restart_ok, 2.0);
  EXPECT_DOUBLE_EQ(r.breakdown.rework_compute, 1.0);  // work 8 -> 7
  EXPECT_DOUBLE_EQ(r.breakdown.useful, 20.0);
  EXPECT_FALSE(r.capped);
}

TEST(IntervalSim, PatternEquivalentScheduleGivesIdenticalTrajectories) {
  // The pattern engine and the interval engine must agree event-for-event
  // when fed the same failure stream and an equivalent schedule.
  const auto sys = systems::table1_system("D3");
  const auto plan = CheckpointPlan::full_hierarchy(2.5, {3});
  const auto equivalent = IntervalSchedule::from_plan(plan);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    sim::RandomFailureSource a(sys,
                               util::Rng(util::derive_stream_seed(3, seed)));
    sim::RandomFailureSource b(sys,
                               util::Rng(util::derive_stream_seed(3, seed)));
    const auto ra = sim::simulate(sys, plan, a);
    const auto rb = sim::simulate(sys, equivalent, b);
    EXPECT_DOUBLE_EQ(ra.total_time, rb.total_time) << seed;
    EXPECT_EQ(ra.failures, rb.failures);
    EXPECT_EQ(ra.checkpoints_completed, rb.checkpoints_completed);
    EXPECT_EQ(ra.restarts_completed, rb.restarts_completed);
    EXPECT_DOUBLE_EQ(ra.breakdown.rework_compute, rb.breakdown.rework_compute);
  }
}

TEST(IntervalSim, RunTrialsOverloadAggregates) {
  const auto sys = systems::table1_system("D2");
  const auto s = models::relaxed_interval_schedule(sys);
  const auto stats = sim::run_trials(sys, s, 30, 5);
  EXPECT_EQ(stats.trials, 30u);
  EXPECT_GT(stats.efficiency.mean, 0.3);
  EXPECT_LE(stats.efficiency.max, 1.0);
  EXPECT_NEAR(stats.time_shares.total(), 1.0, 1e-9);
}

TEST(RelaxedIntervalSchedule, ClosedFormPeriods) {
  const auto sys = systems::table1_system("D1");  // MTBF 51.42
  const auto s = models::relaxed_interval_schedule(sys);
  ASSERT_EQ(s.periods.size(), 2u);
  EXPECT_NEAR(s.periods[0],
              std::sqrt(2.0 * 0.333 / sys.lambda(0)), 1e-9);
  EXPECT_NEAR(s.periods[1],
              std::sqrt(2.0 * 0.833 / sys.lambda(1)), 1e-9);
  EXPECT_NO_THROW(s.validate(sys));
}

TEST(RelaxedIntervalSchedule, PeriodsClampedForShortApplications) {
  auto sys = systems::table1_system("D1");
  sys.base_time = 10.0;
  const auto s = models::relaxed_interval_schedule(sys);
  for (const double p : s.periods) EXPECT_LE(p, 5.0);
}

TEST(IntervalTuner, ImprovesOrMatchesTheRelaxedStart) {
  const auto sys = systems::table1_system("D4");
  models::IntervalTunerOptions opts;
  opts.trials = 24;
  opts.max_rounds = 6;
  const auto tuned = models::tune_interval_schedule(sys, opts);
  // The tuner's estimate at its own seed can never be below the start
  // point's (it only accepts improvements).
  const auto start = models::relaxed_interval_schedule(sys);
  const auto start_eff =
      sim::run_trials(sys, start, opts.trials, opts.seed).efficiency.mean;
  EXPECT_GE(tuned.efficiency, start_eff - 1e-12);
  EXPECT_GT(tuned.evaluations, 1u);
  EXPECT_NO_THROW(tuned.schedule.validate(sys));
}

TEST(IntervalTuner, DeterministicForFixedOptions) {
  const auto sys = systems::table1_system("D3");
  models::IntervalTunerOptions opts;
  opts.trials = 16;
  opts.max_rounds = 4;
  const auto a = models::tune_interval_schedule(sys, opts);
  const auto b = models::tune_interval_schedule(sys, opts);
  EXPECT_EQ(a.schedule.periods, b.schedule.periods);
  EXPECT_DOUBLE_EQ(a.efficiency, b.efficiency);
}

TEST(IntervalTuner, PeriodsStayWithinBounds) {
  const auto sys = systems::table1_system("D8");
  models::IntervalTunerOptions opts;
  opts.trials = 16;
  opts.max_rounds = 8;
  const auto tuned = models::tune_interval_schedule(sys, opts);
  for (const double p : tuned.schedule.periods) {
    EXPECT_GE(p, sys.base_time * 1e-4);
    EXPECT_LE(p, sys.base_time / 2.0);
  }
}

TEST(Trace, RecordsTheFullTimeline) {
  const auto sys = toy_system();
  const auto s = toy_schedule();
  std::vector<sim::TraceEvent> trace;
  sim::SimOptions opts;
  opts.trace = &trace;
  sim::ScriptedFailureSource src({{11.0, 0}});
  const auto r = sim::simulate(sys, s, src, opts);
  ASSERT_FALSE(trace.empty());
  // Wall-clock continuity: events abut (scratch restarts are zero-width).
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(trace[i].start, trace[i - 1].end);
  }
  EXPECT_DOUBLE_EQ(trace.front().start, 0.0);
  EXPECT_DOUBLE_EQ(trace.back().end, r.total_time);
  // The severity-0 failure at t=11 interrupts a compute phase and is
  // followed by a level-0 restart.
  bool found_failure = false;
  for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
    if (!trace[i].completed && trace[i].failure_severity == 0) {
      found_failure = true;
      EXPECT_EQ(trace[i].kind, sim::TraceEvent::Kind::kCompute);
      EXPECT_EQ(trace[i + 1].kind, sim::TraceEvent::Kind::kRestart);
      EXPECT_EQ(trace[i + 1].system_level, 0);
    }
  }
  EXPECT_TRUE(found_failure);
}

TEST(Trace, CheckpointEventsCarryLevels) {
  const auto sys = toy_system();
  const auto plan = CheckpointPlan::full_hierarchy(5.0, {1});
  std::vector<sim::TraceEvent> trace;
  sim::SimOptions opts;
  opts.trace = &trace;
  sim::ScriptedFailureSource src({});
  sim::simulate(sys, plan, src, opts);
  std::vector<int> ckpt_levels;
  for (const auto& ev : trace) {
    if (ev.kind == sim::TraceEvent::Kind::kCheckpoint) {
      ckpt_levels.push_back(ev.system_level);
    }
  }
  // T_B = 20, tau0 = 5, pattern {1}: checkpoints after intervals 1..3 at
  // levels 0, 1, 0 (interval 4 completes the run).
  EXPECT_EQ(ckpt_levels, (std::vector<int>{0, 1, 0}));
}

TEST(RenewalSource, ExponentialRenewalMatchesPoissonMoments) {
  const auto sys = systems::table1_system("D2");
  const math::Exponential law(sys.lambda_total());
  sim::RenewalFailureSource renewal(sys, law, util::Rng(5));
  double sum = 0.0;
  std::vector<int> severities(2, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const auto ev = renewal.next();
    sum += ev.interarrival;
    severities[static_cast<std::size_t>(ev.severity)]++;
  }
  EXPECT_NEAR(sum / n, sys.mtbf, 0.3);
  EXPECT_NEAR(severities[0] / double(n), 0.833, 0.01);
  EXPECT_NEAR(severities[1] / double(n), 0.167, 0.01);
}

TEST(RenewalSource, WeibullBreaksTheExponentialPrediction) {
  // Same mean time between failures, bursty clustering (shape < 1): the
  // realized efficiency moves away from what the exponential-based model
  // predicts — the exponential renewal stays on the prediction. (The
  // direction is non-obvious: bursts waste little *extra* work because it
  // was already lost, while the long quiet gaps between bursts are nearly
  // failure-free, so same-mean heavy tails actually help a little.)
  const auto sys = systems::table1_system("D4");
  const auto plan = CheckpointPlan::full_hierarchy(1.3, {3});
  const math::Exponential expo(sys.lambda_total());
  const math::Weibull bursty = math::Weibull::with_mean(sys.mtbf, 0.6);
  const auto base =
      sim::run_trials_with_distribution(sys, plan, expo, 120, 21);
  const auto heavy =
      sim::run_trials_with_distribution(sys, plan, bursty, 120, 21);
  const double predicted =
      sys.base_time / DauweModel{}.expected_time(sys, plan);
  EXPECT_LT(std::abs(base.efficiency.mean - predicted), 0.02);
  EXPECT_GT(std::abs(heavy.efficiency.mean - predicted),
            std::abs(base.efficiency.mean - predicted));
}

}  // namespace
}  // namespace mlck::core

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/plan.h"
#include "systems/test_systems.h"

namespace mlck::core {
namespace {

TEST(Plan, IntervalPeriodsFollowPattern) {
  // Fig. 1 pattern: two level-1 checkpoints before each level-2, one
  // level-2 before each level-3.
  const CheckpointPlan plan = CheckpointPlan::full_hierarchy(10.0, {2, 1});
  EXPECT_EQ(plan.used_levels(), 3);
  EXPECT_EQ(plan.interval_period(0), 1);
  EXPECT_EQ(plan.interval_period(1), 3);
  EXPECT_EQ(plan.interval_period(2), 6);
  EXPECT_EQ(plan.pattern_period(), 6);
  EXPECT_DOUBLE_EQ(plan.work_per_top_period(), 60.0);
}

TEST(Plan, CheckpointLevelSequenceMatchesFigureOne) {
  const CheckpointPlan plan = CheckpointPlan::full_hierarchy(10.0, {2, 1});
  // Intervals:      1  2  3  4  5  6
  // Checkpoint lvl: 0  0  1  0  0  2   (0-based used indices)
  const int expected[] = {0, 0, 1, 0, 0, 2};
  for (long long j = 1; j <= 6; ++j) {
    EXPECT_EQ(plan.checkpoint_after_interval(j), expected[j - 1]) << j;
  }
  // The pattern repeats.
  for (long long j = 1; j <= 6; ++j) {
    EXPECT_EQ(plan.checkpoint_after_interval(j + 6), expected[j - 1]);
  }
}

TEST(Plan, ZeroCountMergesLevelIntoTheOneAbove) {
  // N_1 = 0: no standalone level-1 checkpoints; every checkpoint is
  // level-2 (which subsumes level-1).
  const CheckpointPlan plan = CheckpointPlan::full_hierarchy(5.0, {0});
  for (long long j = 1; j <= 4; ++j) {
    EXPECT_EQ(plan.checkpoint_after_interval(j), 1);
  }
}

TEST(Plan, TopPeriodsIsPaperN_L) {
  const CheckpointPlan plan = CheckpointPlan::full_hierarchy(10.0, {2, 1});
  EXPECT_DOUBLE_EQ(plan.top_periods(1440.0), 24.0);
  EXPECT_DOUBLE_EQ(plan.top_periods(30.0), 0.5);
}

TEST(Plan, RestartLevelForSeverity) {
  CheckpointPlan plan;
  plan.tau0 = 1.0;
  plan.levels = {0, 1, 3};
  plan.counts = {2, 2};
  EXPECT_EQ(plan.restart_level_for_severity(0).value(), 0);
  EXPECT_EQ(plan.restart_level_for_severity(1).value(), 1);
  EXPECT_EQ(plan.restart_level_for_severity(2).value(), 3);  // gap -> higher
  EXPECT_EQ(plan.restart_level_for_severity(3).value(), 3);
  EXPECT_FALSE(plan.restart_level_for_severity(4).has_value());
}

TEST(Plan, SingleLevelHelper) {
  const CheckpointPlan plan = CheckpointPlan::single_level(42.0, 3);
  EXPECT_EQ(plan.used_levels(), 1);
  EXPECT_EQ(plan.top_system_level(), 3);
  EXPECT_TRUE(plan.counts.empty());
  EXPECT_EQ(plan.pattern_period(), 1);
}

TEST(Plan, ValidateAcceptsSubsetPlans) {
  const auto sys = systems::table1_system("B");  // 4 levels
  CheckpointPlan plan;
  plan.tau0 = 3.0;
  plan.levels = {0, 2, 3};
  plan.counts = {4, 2};
  EXPECT_NO_THROW(plan.validate(sys));
}

TEST(Plan, ValidateRejectsMalformedPlans) {
  const auto sys = systems::table1_system("D1");  // 2 levels

  CheckpointPlan bad_tau = CheckpointPlan::full_hierarchy(0.0, {3});
  EXPECT_THROW(bad_tau.validate(sys), std::invalid_argument);

  CheckpointPlan no_levels;
  no_levels.tau0 = 1.0;
  EXPECT_THROW(no_levels.validate(sys), std::invalid_argument);

  CheckpointPlan out_of_range = CheckpointPlan::single_level(1.0, 5);
  EXPECT_THROW(out_of_range.validate(sys), std::invalid_argument);

  CheckpointPlan not_ascending;
  not_ascending.tau0 = 1.0;
  not_ascending.levels = {1, 0};
  not_ascending.counts = {1};
  EXPECT_THROW(not_ascending.validate(sys), std::invalid_argument);

  CheckpointPlan count_mismatch;
  count_mismatch.tau0 = 1.0;
  count_mismatch.levels = {0, 1};
  EXPECT_THROW(count_mismatch.validate(sys), std::invalid_argument);

  CheckpointPlan negative_count;
  negative_count.tau0 = 1.0;
  negative_count.levels = {0, 1};
  negative_count.counts = {-1};
  EXPECT_THROW(negative_count.validate(sys), std::invalid_argument);
}

TEST(Plan, ToStringIsReadable) {
  const CheckpointPlan plan = CheckpointPlan::full_hierarchy(2.5, {3, 1});
  const std::string s = plan.to_string();
  EXPECT_NE(s.find("tau0=2.5"), std::string::npos);
  EXPECT_NE(s.find("levels=[0,1,2]"), std::string::npos);
  EXPECT_NE(s.find("counts=[3,1]"), std::string::npos);
}

}  // namespace
}  // namespace mlck::core

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "math/distribution.h"
#include "math/failure_law.h"
#include "math/tabulated_law.h"
#include "prop_support.h"
#include "util/rng.h"

// Accuracy and draw-stream contracts of the inverse-CDF sampling tables
// (math::TabulatedLaw::quantile / inverse_survival / sample), the opt-in
// fast lane behind FailureLaw::sampling_distribution. Tolerances follow
// docs/MODELS.md: the tables carry ~1e-4 relative accuracy over the
// central probability range; the direct central sampling grid is
// self-validated at build time to 2e-5 against the log-space inverse, so
// nothing here should be anywhere near the bounds.

namespace mlck::math {
namespace {

std::vector<double> probe_grid() {
  // Log-spaced toward both endpoints plus a uniform central sweep: covers
  // the slow-lane tails, both lane seams, and the central lattice.
  std::vector<double> us;
  for (double u = 1e-6; u < 0.5; u *= 3.0) us.push_back(u);
  for (double u = 0.02; u < 0.98; u += 0.01) us.push_back(u);
  for (double s = 1e-6; s < 0.5; s *= 3.0) us.push_back(1.0 - s);
  return us;
}

TEST(TabulatedSampling, RoundTripConsistencyOnTheDocumentedDomain) {
  const std::unique_ptr<FailureDistribution> laws[] = {
      std::make_unique<Weibull>(Weibull::with_mean(1.0, 0.7)),
      std::make_unique<Weibull>(Weibull::with_mean(1.0, 1.5)),
      std::make_unique<LogNormal>(LogNormal::with_mean(1.0, 1.0))};
  for (const auto& law : laws) {
    const TabulatedLaw table(*law);
    for (const double u : probe_grid()) {
      const double x = table.quantile(u);
      SCOPED_TRACE(::testing::Message()
                   << table.describe() << " u=" << u << " x=" << x);
      ASSERT_TRUE(std::isfinite(x));
      // Consistency against the table's own forward direction: the
      // precision-carrying side (CDF below the median, survival above).
      if (u < 0.5) {
        EXPECT_NEAR(table.cdf(x), u, 1e-3 * u + 1e-12);
      } else {
        EXPECT_NEAR(table.survival(x), 1.0 - u, 1e-3 * (1.0 - u) + 1e-12);
      }
    }
  }
}

TEST(TabulatedSampling, QuantileMatchesTheTrueLawsClosedFormCdf) {
  const std::unique_ptr<FailureDistribution> laws[] = {
      std::make_unique<Weibull>(Weibull::with_mean(1.0, 0.7)),
      std::make_unique<Weibull>(Weibull::with_mean(1.0, 1.5)),
      std::make_unique<LogNormal>(LogNormal::with_mean(1.0, 1.0)),
      std::make_unique<LogNormal>(LogNormal::with_mean(1.0, 1.8))};
  for (const auto& law : laws) {
    const TabulatedLaw table(*law);
    for (const double u : probe_grid()) {
      if (u < 1e-4 || u > 1.0 - 1e-4) continue;  // documented domain
      const double x = table.quantile(u);
      SCOPED_TRACE(::testing::Message()
                   << law->describe() << " u=" << u << " x=" << x);
      // Against the *law's* exact CDF, not the table's: bounds the full
      // error chain (forward tabulation + inverse + central lattice).
      if (u < 0.5) {
        EXPECT_NEAR(law->cdf(x), u, 2e-3 * u);
      } else {
        EXPECT_NEAR(law->survival(x), 1.0 - u, 2e-3 * (1.0 - u));
      }
    }
  }
}

TEST(TabulatedSampling, QuantileIsMonotoneAcrossTheLaneSeams) {
  const auto wb = Weibull::with_mean(1.0, 0.7);
  const TabulatedLaw table(wb);
  double prev = 0.0;
  for (int i = 1; i < 40000; ++i) {
    const double u = static_cast<double>(i) / 40000.0;
    const double x = table.quantile(u);
    ASSERT_GE(x, prev * (1.0 - 1e-12))
        << "quantile dipped at u=" << u << " (lane seam regression)";
    prev = x;
  }
}

TEST(TabulatedSampling, InverseSurvivalAndQuantileAgree) {
  const LogNormal ln = LogNormal::with_mean(1.0, 1.0);
  const TabulatedLaw table(ln);
  for (const double s : {1e-8, 1e-4, 0.05, 0.3, 0.5, 0.7, 0.95, 0.9999}) {
    const double a = table.inverse_survival(s);
    const double b = table.quantile(1.0 - s);
    // Identical in the central lane; within table accuracy in the tails
    // (the two sides read different precision-carrying logs there).
    EXPECT_NEAR(a, b, 1e-3 * a) << "s=" << s;
  }
  EXPECT_EQ(table.inverse_survival(1.0), 0.0);
  EXPECT_EQ(table.quantile(0.0), 0.0);
  EXPECT_TRUE(std::isinf(table.inverse_survival(0.0)));
  EXPECT_TRUE(std::isinf(table.quantile(1.0)));
}

TEST(TabulatedSampling, RandomizedRoundTripProperty) {
  const std::uint64_t seed = testprop::suite_seed(0x7ab5eedull);
  SCOPED_TRACE(
      testprop::repro("TabulatedSampling.RandomizedRoundTripProperty", seed));
  util::Rng rng(seed);
  const auto wb = Weibull::with_mean(1.0, 0.7);
  const TabulatedLaw table(wb);
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform_pos();
    const double x = table.quantile(u);
    const double err = u < 0.5 ? std::abs(table.cdf(x) - u) / u
                               : std::abs(table.survival(x) - (1.0 - u)) /
                                     (1.0 - u);
    ASSERT_LE(err, 1e-3) << "u=" << u << " x=" << x;
  }
}

TEST(TabulatedSampling, SampleMeanConvergesToTheLawMean) {
  const std::uint64_t seed = testprop::suite_seed(0xd4a3ull);
  SCOPED_TRACE(
      testprop::repro("TabulatedSampling.SampleMeanConvergesToTheLawMean",
                      seed));
  for (const auto& law : {FailureLaw::weibull(0.7), FailureLaw::lognormal(1.0)}) {
    const auto dist = law->sampling_distribution(100.0);
    util::Rng rng(seed);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) sum += dist->sample(rng);
    EXPECT_NEAR(sum / n, 100.0, 2.0) << law->describe();
  }
}

// ---------------------------------------------------------------------------
// Draw-stream pinning: the simulator's reproducibility story depends on
// every sampler's uniform budget and draw order staying fixed (trial k
// replays stream derive_stream_seed(seed, k) draw for draw).

void expect_uniform_budget(const FailureDistribution& dist, int budget) {
  const std::uint64_t seed = 0xb4d9e7ull;
  util::Rng sampled(seed);
  static_cast<void>(dist.sample(sampled));
  util::Rng skipped(seed);
  for (int i = 0; i < budget; ++i) static_cast<void>(skipped.uniform());
  // If the sampler consumed exactly `budget` uniforms, both streams are
  // now aligned and must agree bit for bit.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(sampled.uniform(), skipped.uniform()) << dist.describe();
  }
}

TEST(TabulatedSampling, SamplersConsumeTheirDocumentedUniformBudgets) {
  expect_uniform_budget(
      *FailureLaw::exponential()->distribution(100.0), 1);
  expect_uniform_budget(*FailureLaw::weibull(0.7)->distribution(100.0), 1);
  expect_uniform_budget(*FailureLaw::lognormal(1.0)->distribution(100.0), 2);
  expect_uniform_budget(
      *FailureLaw::weibull(0.7)->sampling_distribution(100.0), 1);
  expect_uniform_budget(
      *FailureLaw::lognormal(1.0)->sampling_distribution(100.0), 1);
}

TEST(TabulatedSampling, GoldenDrawStreamsAreStable) {
  // First six draws of each sampler on seed 0x51ab5eed, recorded when the
  // central sampling lattice landed. A change here means seeded
  // simulations no longer replay historic results — that is a breaking
  // change and must be a deliberate one.
  struct Golden {
    std::unique_ptr<FailureDistribution> dist;
    std::vector<double> draws;
  };
  const Golden goldens[] = {
      {FailureLaw::exponential()->distribution(100.0),
       {37.521486502239519, 133.72471870328749, 154.00376245607484,
        17.744049318752076, 183.44300005563616, 13.969167705938503}},
      {FailureLaw::weibull(0.7)->distribution(100.0),
       {19.474013475525926, 119.65456229192921, 146.39584323353645,
        6.6810548616752632, 187.95637046447138, 4.7472476536765056}},
      {FailureLaw::lognormal(1.0)->distribution(100.0),
       {56.646886974584881, 151.61192188157892, 224.32325988738947,
        577.4562086677231, 244.47879911032743, 42.518580235015769}},
      {FailureLaw::weibull(0.7)->sampling_distribution(100.0),
       {19.4740132225396, 119.65456553714418, 146.39585583241842,
        6.6810546653563101, 187.9563775054244, 4.7472477427568149}},
      {FailureLaw::lognormal(1.0)->sampling_distribution(100.0),
       {37.240832313040961, 114.50519300831641, 133.82184971898926,
        22.67579167216854, 164.1602728290558, 19.698523653976665}},
  };
  for (const Golden& g : goldens) {
    util::Rng rng(0x51ab5eedULL);
    for (std::size_t i = 0; i < g.draws.size(); ++i) {
      const double draw = g.dist->sample(rng);
      EXPECT_NEAR(draw, g.draws[i], 1e-10 * g.draws[i])
          << g.dist->describe() << " draw " << i;
    }
  }
}

TEST(TabulatedSampling, TabulatedWeibullTracksTheClosedFormDrawForDraw) {
  // Same uniform convention (one uniform_pos, survival side), so on a
  // shared stream the table reproduces the closed-form draws to table
  // accuracy — the property bench_sim's tabulated lane leans on.
  const auto closed = FailureLaw::weibull(0.7)->distribution(250.0);
  const auto table = FailureLaw::weibull(0.7)->sampling_distribution(250.0);
  const std::uint64_t seed = testprop::suite_seed(0xacc7ull);
  SCOPED_TRACE(testprop::repro(
      "TabulatedSampling.TabulatedWeibullTracksTheClosedFormDrawForDraw",
      seed));
  util::Rng a(seed);
  util::Rng b(seed);
  for (int i = 0; i < 5000; ++i) {
    const double x = closed->sample(a);
    const double y = table->sample(b);
    ASSERT_NEAR(y, x, 2e-3 * x) << "draw " << i;
  }
}

}  // namespace
}  // namespace mlck::math

// Golden guarantees of the evaluation engine: every result that flows
// through src/engine — cached kernels, batched sweeps, the optimizer
// front-end, and full scenario runs — must be *bit-identical* to the
// direct DauweModel / optimize_intervals / run_trials path it replaced.
// These tests use exact EXPECT_EQ on doubles deliberately: the engine is
// an exact factoring of the same arithmetic, not an approximation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "app/commands.h"
#include "core/dauwe_kernel.h"
#include "core/dauwe_model.h"
#include "core/optimizer.h"
#include "core/serialize.h"
#include "engine/evaluation.h"
#include "engine/scenario.h"
#include "obs/registry.h"
#include "sim/trial_runner.h"
#include "systems/test_systems.h"
#include "util/json.h"
#include "util/thread_pool.h"

namespace mlck::engine {
namespace {

using core::CheckpointPlan;
using core::DauweModel;
using core::DauweOptions;

const char* const kAllSystems[] = {"M",  "B",  "D1", "D2", "D3", "D4",
                                   "D5", "D6", "D7", "D8", "D9"};

/// Deterministic random plans over a random level subset of @p system.
std::vector<CheckpointPlan> random_plans(const systems::SystemConfig& system,
                                         int n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> tau(0.05, 30.0);
  std::uniform_int_distribution<int> count(0, 12);
  std::vector<CheckpointPlan> plans;
  for (int i = 0; i < n; ++i) {
    CheckpointPlan plan;
    plan.tau0 = tau(rng);
    // Random non-empty ascending subset of the system's levels.
    for (int level = 0; level < system.levels(); ++level) {
      if (rng() % 2 == 0) plan.levels.push_back(level);
    }
    if (plan.levels.empty()) {
      plan.levels.push_back(static_cast<int>(rng() % system.levels()));
    }
    plan.counts.resize(plan.levels.size() - 1);
    for (auto& c : plan.counts) c = count(rng);
    plans.push_back(std::move(plan));
  }
  return plans;
}

TEST(EngineGolden, ExpectedTimeBitMatchesDauweModelOnAllSystems) {
  for (const char* name : kAllSystems) {
    const auto sys = systems::table1_system(name);
    const DauweModel model;
    const EvaluationEngine engine(sys);
    for (const auto& plan : random_plans(sys, 50, 42)) {
      const double direct = model.expected_time(sys, plan);
      const double cached = engine.expected_time(plan);
      if (std::isinf(direct)) {
        EXPECT_TRUE(std::isinf(cached)) << name << " " << plan.to_string();
      } else {
        EXPECT_EQ(direct, cached) << name << " " << plan.to_string();
      }
    }
  }
}

TEST(EngineGolden, ExpectedTimeBitMatchesUnderAllOptionVariants) {
  const auto sys = systems::table1_system("B");
  DauweOptions variants[4];
  variants[1].checkpoint_failures = false;
  variants[2].restart_failures = false;
  variants[3].renormalize_severity_shares = true;
  for (const auto& options : variants) {
    const DauweModel model(options);
    const EvaluationEngine engine(sys, options);
    for (const auto& plan : random_plans(sys, 40, 7)) {
      const double direct = model.expected_time(sys, plan);
      const double cached = engine.expected_time(plan);
      if (std::isinf(direct)) {
        EXPECT_TRUE(std::isinf(cached)) << plan.to_string();
      } else {
        EXPECT_EQ(direct, cached) << plan.to_string();
      }
    }
  }
}

TEST(EngineGolden, PredictBitMatchesDauweModelBreakdown) {
  for (const char* name : {"M", "B", "D5", "D9"}) {
    const auto sys = systems::table1_system(name);
    const DauweModel model;
    const EvaluationEngine engine(sys);
    for (const auto& plan : random_plans(sys, 20, 99)) {
      const auto direct = model.predict(sys, plan);
      if (std::isinf(direct.expected_time)) continue;
      const auto cached = engine.predict(plan);
      EXPECT_EQ(direct.expected_time, cached.expected_time) << name;
      EXPECT_EQ(direct.efficiency, cached.efficiency) << name;
      EXPECT_EQ(direct.breakdown.compute, cached.breakdown.compute);
      EXPECT_EQ(direct.breakdown.checkpoint_ok,
                cached.breakdown.checkpoint_ok);
      EXPECT_EQ(direct.breakdown.checkpoint_failed,
                cached.breakdown.checkpoint_failed);
      EXPECT_EQ(direct.breakdown.restart_ok, cached.breakdown.restart_ok);
      EXPECT_EQ(direct.breakdown.restart_failed,
                cached.breakdown.restart_failed);
      EXPECT_EQ(direct.breakdown.rework_compute,
                cached.breakdown.rework_compute);
      EXPECT_EQ(direct.breakdown.rework_checkpoint,
                cached.breakdown.rework_checkpoint);
      EXPECT_EQ(direct.breakdown.scratch_rework,
                cached.breakdown.scratch_rework);
    }
  }
}

TEST(EngineGolden, KernelMatchesModelDirectly) {
  const auto sys = systems::table1_system("D8");
  const DauweModel model;
  for (const auto& plan : random_plans(sys, 30, 5)) {
    const core::DauweKernel kernel(sys, plan.levels, model.options());
    const double direct = model.expected_time(sys, plan);
    const double viaKernel = kernel.expected_time(plan.tau0, plan.counts);
    if (std::isinf(direct)) {
      EXPECT_TRUE(std::isinf(viaKernel));
    } else {
      EXPECT_EQ(direct, viaKernel);
    }
  }
}

/// Reduced search so the all-systems optimizer comparison stays fast while
/// still exercising subsets, pruning, and refinement.
core::OptimizerOptions quick_search() {
  core::OptimizerOptions opts;
  opts.coarse_tau_points = 24;
  opts.max_count = 32;
  opts.refine_rounds = 8;
  return opts;
}

TEST(EngineGolden, OptimizeBitMatchesOptimizeIntervalsOnAllSystems) {
  for (const char* name : kAllSystems) {
    const auto sys = systems::table1_system(name);
    const DauweModel model;
    const EvaluationEngine engine(sys);
    const auto opts = quick_search();
    const auto direct = core::optimize_intervals(model, sys, opts);
    // The engine default (lane-batched pruned sweep) keeps the winner
    // bit-identical while evaluating fewer leaves.
    const auto pruned = engine.optimize(opts);
    EXPECT_EQ(direct.plan.tau0, pruned.plan.tau0) << name;
    EXPECT_EQ(direct.plan.counts, pruned.plan.counts) << name;
    EXPECT_EQ(direct.plan.levels, pruned.plan.levels) << name;
    EXPECT_EQ(direct.expected_time, pruned.expected_time) << name;
    EXPECT_EQ(direct.efficiency, pruned.efficiency) << name;
    EXPECT_LE(pruned.evaluations, direct.evaluations) << name;
    // With lanes and pruning off the staged path is structurally
    // identical, down to the evaluation count.
    auto exact_opts = opts;
    exact_opts.lane_batch = false;
    exact_opts.prune = false;
    const auto exact = engine.optimize(exact_opts);
    EXPECT_EQ(direct.plan.tau0, exact.plan.tau0) << name;
    EXPECT_EQ(direct.plan.counts, exact.plan.counts) << name;
    EXPECT_EQ(direct.plan.levels, exact.plan.levels) << name;
    EXPECT_EQ(direct.expected_time, exact.expected_time) << name;
    EXPECT_EQ(direct.efficiency, exact.efficiency) << name;
    EXPECT_EQ(direct.evaluations, exact.evaluations) << name;
  }
}

TEST(EngineGolden, OptimizeBitMatchesWithThreadPool) {
  const auto sys = systems::table1_system("B");
  const DauweModel model;
  const EvaluationEngine engine(sys);
  util::ThreadPool pool(3);
  const auto direct = core::optimize_intervals(model, sys, {}, &pool);
  const auto pruned = engine.optimize({}, &pool);
  EXPECT_EQ(direct.plan.tau0, pruned.plan.tau0);
  EXPECT_EQ(direct.plan.counts, pruned.plan.counts);
  EXPECT_EQ(direct.plan.levels, pruned.plan.levels);
  EXPECT_EQ(direct.expected_time, pruned.expected_time);
  EXPECT_LE(pruned.evaluations, direct.evaluations);
  core::OptimizerOptions exact_opts;
  exact_opts.lane_batch = false;
  exact_opts.prune = false;
  const auto exact = engine.optimize(exact_opts, &pool);
  EXPECT_EQ(direct.plan.tau0, exact.plan.tau0);
  EXPECT_EQ(direct.plan.counts, exact.plan.counts);
  EXPECT_EQ(direct.plan.levels, exact.plan.levels);
  EXPECT_EQ(direct.expected_time, exact.expected_time);
  EXPECT_EQ(direct.evaluations, exact.evaluations);
}

TEST(Engine, ContextsAreCachedAndReused) {
  const auto sys = systems::table1_system("B");
  const EvaluationEngine engine(sys);
  EXPECT_EQ(engine.cached_contexts(), 0u);
  const auto& first = engine.context({0, 1, 2, 3});
  const auto& again = engine.context({0, 1, 2, 3});
  EXPECT_EQ(&first, &again);  // same immutable context object
  EXPECT_EQ(engine.cached_contexts(), 1u);
  engine.context({0, 1});
  EXPECT_EQ(engine.cached_contexts(), 2u);
}

TEST(Engine, ConcurrentExpectedTimeIsLockFreeAfterFirstBuildAndExact) {
  // expected_time/predict must not serialize concurrent callers: the
  // context lookup is a lock-free list walk, with the mutex taken only to
  // build a subset's context the first time anyone asks for it. Hammer
  // the engine from many threads over plans spanning several subsets —
  // including subsets no thread has built yet — and require every value
  // to equal the serial answer and the cache to hold exactly one context
  // per distinct subset.
  const auto sys = systems::table1_system("B");
  EvaluationEngine engine(sys);
  obs::MetricsRegistry registry;
  EngineMetrics metrics;
  metrics.context_hits = &registry.counter("engine.context_cache.hits");
  metrics.context_misses = &registry.counter("engine.context_cache.misses");
  metrics.evaluations = &registry.counter("engine.evaluations");
  engine.attach_metrics(metrics);

  std::vector<CheckpointPlan> plans;
  for (unsigned seed = 1; seed <= 4; ++seed) {
    for (const auto& p : random_plans(sys, 64, seed)) plans.push_back(p);
  }
  const DauweModel model;
  std::vector<double> serial(plans.size());
  for (std::size_t i = 0; i < plans.size(); ++i) {
    serial[i] = model.expected_time(sys, plans[i]);
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  std::vector<std::vector<double>> got(
      kThreads, std::vector<double>(plans.size()));
  {
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        for (int round = 0; round < kRounds; ++round) {
          for (std::size_t i = 0; i < plans.size(); ++i) {
            got[static_cast<std::size_t>(t)][i] =
                engine.expected_time(plans[i]);
          }
        }
      });
    }
    for (auto& w : workers) w.join();
  }

  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(got[static_cast<std::size_t>(t)], serial) << "thread " << t;
  }
  // One context per distinct subset; every other lookup was a cache hit.
  std::size_t distinct = 0;
  std::vector<std::vector<int>> seen;
  for (const auto& p : plans) {
    if (std::find(seen.begin(), seen.end(), p.levels) == seen.end()) {
      seen.push_back(p.levels);
      ++distinct;
    }
  }
  EXPECT_EQ(engine.cached_contexts(), distinct);
  EXPECT_EQ(metrics.context_misses->value(), distinct);
  const auto total_calls =
      static_cast<std::uint64_t>(kThreads) * kRounds * plans.size();
  EXPECT_EQ(metrics.evaluations->value(), total_calls);
  EXPECT_EQ(metrics.context_hits->value(), total_calls - distinct);
}

TEST(Engine, BatchedExpectedTimesMatchScalarAndAreThreadInvariant) {
  const auto sys = systems::table1_system("D7");
  const EvaluationEngine engine(sys);
  const auto plans = random_plans(sys, 200, 1234);
  const auto serial = engine.expected_times(plans);
  util::ThreadPool pool(4);
  const auto parallel = engine.expected_times(plans, &pool);
  ASSERT_EQ(serial.size(), plans.size());
  ASSERT_EQ(parallel.size(), plans.size());
  for (std::size_t i = 0; i < plans.size(); ++i) {
    const double scalar = engine.expected_time(plans[i]);
    if (std::isinf(scalar)) {
      EXPECT_TRUE(std::isinf(serial[i]));
      EXPECT_TRUE(std::isinf(parallel[i]));
    } else {
      EXPECT_EQ(serial[i], scalar);
      EXPECT_EQ(parallel[i], scalar);
    }
  }
}

TEST(Engine, RejectsInvalidSystem) {
  systems::SystemConfig bad;  // no levels
  EXPECT_THROW(EvaluationEngine{bad}, std::invalid_argument);
}

TEST(ScenarioSpec, JsonRoundTripIsExact) {
  ScenarioSpec spec;
  spec.system = systems::table1_system("D5");
  spec.model = "dauwe";
  spec.model_options.renormalize_severity_shares = true;
  spec.distribution.kind = DistributionSpec::Kind::kWeibull;
  spec.distribution.shape = 1.5;
  spec.optimizer.coarse_tau_points = 17;
  spec.optimizer.restrict_levels = {0, 1};
  spec.trials = 33;
  spec.seed = 987654321;
  spec.sim.take_final_checkpoint = true;

  const auto doc = spec.to_json();
  const auto back = ScenarioSpec::from_json(doc);
  EXPECT_EQ(doc.dump(), back.to_json().dump());

  // And through actual text, as a file would round-trip.
  const auto reparsed =
      ScenarioSpec::from_json(util::Json::parse(doc.dump(2)));
  EXPECT_EQ(doc.dump(), reparsed.to_json().dump());
  EXPECT_EQ(reparsed.trials, 33u);
  EXPECT_EQ(reparsed.seed, 987654321u);
  EXPECT_EQ(reparsed.optimizer.restrict_levels, (std::vector<int>{0, 1}));
  EXPECT_EQ(reparsed.distribution.kind, DistributionSpec::Kind::kWeibull);
  EXPECT_EQ(reparsed.distribution.shape, 1.5);
}

TEST(ScenarioSpec, SystemRefRoundTripsAsName) {
  ScenarioSpec spec;
  spec.system = systems::table1_system("D3");
  spec.system_ref = "D3";
  const auto doc = spec.to_json();
  EXPECT_TRUE(doc.at("system").is_string());
  const auto back = ScenarioSpec::from_json(doc);
  EXPECT_EQ(back.system_ref, "D3");
  EXPECT_EQ(back.system.mtbf, spec.system.mtbf);
  EXPECT_EQ(back.system.levels(), spec.system.levels());
}

TEST(ScenarioSpec, ValidateRejectsEmptySystemAndBadTrials) {
  ScenarioSpec spec;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.system = systems::table1_system("D1");
  EXPECT_NO_THROW(spec.validate());
  spec.trials = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

// Injects @p key into @p section of a valid scenario document and
// asserts from_json rejects it with a message naming both the key and
// the section — a typo must never be silently ignored.
void expect_unknown_key_rejected(const char* section, const char* key) {
  ScenarioSpec spec;
  spec.system = systems::table1_system("D2");
  spec.system_ref = "D2";
  auto doc = spec.to_json();
  auto& root = doc.make_object();
  if (std::string(section) == "scenario") {
    root[key] = util::Json(1.0);
  } else {
    root[section].make_object()[key] = util::Json(1.0);
  }
  try {
    ScenarioSpec::from_json(doc);
    FAIL() << "unknown key \"" << key << "\" in " << section
           << " was silently accepted";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find(key), std::string::npos) << message;
    const std::string context = std::string(section) == "scenario"
                                    ? "scenario"
                                    : "scenario." + std::string(section);
    EXPECT_NE(message.find(context), std::string::npos) << message;
  }
}

TEST(ScenarioSpec, RejectsTypoedKeysNamingKeyAndSection) {
  expect_unknown_key_rejected("scenario", "trails");         // trials
  expect_unknown_key_rejected("scenario", "modle");          // model
  expect_unknown_key_rejected("model_options", "checkpoint_failure");
  expect_unknown_key_rejected("optimizer", "tau_mim");       // tau_min
  expect_unknown_key_rejected("optimizer", "coarse_points");
  expect_unknown_key_rejected("failure", "shap");            // shape
  expect_unknown_key_rejected("sim", "restart_polcy");
}

TEST(ScenarioSpec, LegacyDistributionSectionStillParses) {
  ScenarioSpec spec;
  spec.system = systems::table1_system("D2");
  spec.system_ref = "D2";
  spec.distribution.kind = DistributionSpec::Kind::kWeibull;
  spec.distribution.shape = 0.7;
  auto doc = spec.to_json();
  auto& root = doc.make_object();
  // Rewrite the canonical "failure" section as the legacy "distribution"
  // form ({kind, shape, sigma, mean}) an older spec file would carry.
  root.erase("failure");
  util::Json::Object legacy;
  legacy["kind"] = util::Json(std::string("weibull"));
  legacy["shape"] = util::Json(0.7);
  root["distribution"] = util::Json(std::move(legacy));

  const auto back = ScenarioSpec::from_json(doc);
  EXPECT_EQ(back.distribution.kind, DistributionSpec::Kind::kWeibull);
  EXPECT_EQ(back.distribution.shape, 0.7);
  // to_json always re-emits the canonical form.
  EXPECT_TRUE(back.to_json().at("failure").is_object());

  // A typo inside the legacy section is still named with its section.
  root["distribution"].make_object()["shap"] = util::Json(1.0);
  try {
    ScenarioSpec::from_json(doc);
    FAIL() << "typo in the legacy distribution section was accepted";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("shap"), std::string::npos) << message;
    EXPECT_NE(message.find("scenario.distribution"), std::string::npos)
        << message;
  }
}

TEST(ScenarioSpec, FailureAndLegacyDistributionTogetherAreRejected) {
  ScenarioSpec spec;
  spec.system = systems::table1_system("D2");
  spec.system_ref = "D2";
  auto doc = spec.to_json();  // carries the "failure" section
  util::Json::Object legacy;
  legacy["kind"] = util::Json(std::string("weibull"));
  doc.make_object()["distribution"] = util::Json(std::move(legacy));
  EXPECT_THROW(ScenarioSpec::from_json(doc), std::invalid_argument);
}

TEST(ScenarioSpec, StrictParsingStillAcceptsEveryKnownKey) {
  // The full to_json document exercises every recognized key in every
  // section; strict parsing must accept it unchanged.
  ScenarioSpec spec;
  spec.system = systems::table1_system("D4");
  spec.model_options.restart_failures = false;
  spec.distribution.kind = DistributionSpec::Kind::kLogNormal;
  spec.distribution.sigma = 1.2;
  spec.distribution.mean = 90.0;
  spec.optimizer.tau_min = 0.25;
  spec.optimizer.restrict_levels = {0};
  spec.sim.take_final_checkpoint = true;
  EXPECT_NO_THROW(ScenarioSpec::from_json(spec.to_json()));
}

TEST(RunScenario, DefaultExponentialBitMatchesDirectPipeline) {
  ScenarioSpec spec;
  spec.system = systems::table1_system("D5");
  spec.trials = 50;
  spec.seed = 3;
  const auto outcome = run_scenario(spec);

  // Direct pipeline: same optimizer, then the native simulator entry
  // point with the same seed.
  const DauweModel model;
  const auto selected = core::optimize_intervals(model, spec.system);
  EXPECT_EQ(outcome.selected.plan.tau0, selected.plan.tau0);
  EXPECT_EQ(outcome.selected.plan.counts, selected.plan.counts);
  EXPECT_EQ(outcome.selected.predicted_time, selected.expected_time);
  const auto stats = sim::run_trials(spec.system, selected.plan,
                                     spec.trials, spec.seed, spec.sim);
  EXPECT_EQ(outcome.stats.efficiency.mean, stats.efficiency.mean);
  EXPECT_EQ(outcome.stats.efficiency.stddev, stats.efficiency.stddev);
  EXPECT_EQ(outcome.stats.total_time.mean, stats.total_time.mean);
  EXPECT_EQ(outcome.stats.mean_failures, stats.mean_failures);
}

TEST(RunScenario, NonExponentialDistributionChangesModelAndDraws) {
  ScenarioSpec spec;
  spec.system = systems::table1_system("D5");
  spec.trials = 50;
  spec.seed = 3;
  const auto exponential = run_scenario(spec);
  spec.distribution.kind = DistributionSpec::Kind::kWeibull;
  spec.distribution.shape = 0.7;
  const auto weibull = run_scenario(spec);
  // Selection is law-aware: the Weibull model forecasts through the
  // tabulated family, so both the forecast and the simulated draws move.
  EXPECT_NE(exponential.selected.predicted_time,
            weibull.selected.predicted_time);
  EXPECT_NE(exponential.stats.efficiency.mean,
            weibull.stats.efficiency.mean);
}

TEST(RunScenario, NonDauweModelGoesThroughTechniqueRegistry) {
  ScenarioSpec spec;
  spec.system = systems::table1_system("D5");
  spec.model = "moody";
  spec.trials = 20;
  const auto outcome = run_scenario(spec);
  EXPECT_EQ(outcome.selected.technique, "Moody et al.");
  EXPECT_GT(outcome.stats.efficiency.mean, 0.0);
}

TEST(RunScenario, UnknownModelThrows) {
  ScenarioSpec spec;
  spec.system = systems::table1_system("D5");
  spec.model = "nonesuch";
  EXPECT_THROW(run_scenario(spec), std::out_of_range);
}

TEST(RunScenario, MetricsAttachmentDoesNotPerturbResults) {
  // The observability wiring is observe-only: with a registry attached
  // the scenario outcome stays bit-identical to the bare run.
  ScenarioSpec spec;
  spec.system = systems::table1_system("D5");
  spec.trials = 40;
  spec.seed = 3;
  const auto bare = run_scenario(spec);

  obs::MetricsRegistry registry;
  util::ThreadPool pool(4);
  pool.attach_metrics(pool_metrics(registry));
  const auto metered = run_scenario(spec, &pool, &registry);
  EXPECT_EQ(bare.selected.plan.tau0, metered.selected.plan.tau0);
  EXPECT_EQ(bare.selected.plan.counts, metered.selected.plan.counts);
  EXPECT_EQ(bare.selected.predicted_time, metered.selected.predicted_time);
  EXPECT_EQ(bare.stats.efficiency.mean, metered.stats.efficiency.mean);
  EXPECT_EQ(bare.stats.efficiency.stddev, metered.stats.efficiency.stddev);
  EXPECT_EQ(bare.stats.total_time.mean, metered.stats.total_time.mean);

  // ...while every instrumented layer actually counted something.
  EXPECT_GT(registry.counter("engine.context_cache.misses").value(), 0u);
  EXPECT_GT(registry.counter("engine.evaluations").value(), 0u);
  EXPECT_GT(registry.counter("optimizer.plans_swept").value(), 0u);
  EXPECT_EQ(registry.counter("sim.trials").value(), 40u);
  EXPECT_GT(registry.counter("pool.tasks_run").value(), 0u);
  EXPECT_EQ(registry.histogram("sim.trial_time_minutes").count(), 40u);
}

TEST(ScenarioCli, MetricsSidecarHasNonZeroCounters) {
  const std::string spec_path =
      ::testing::TempDir() + "mlck_metrics_spec.json";
  const std::string path = ::testing::TempDir() + "mlck_metrics.json";
  std::ostringstream emit_out, emit_err;
  ASSERT_EQ(app::run_command(
                {"scenario", "--system=D5", "--emit-spec=" + spec_path},
                emit_out, emit_err),
            0)
      << emit_err.str();
  std::ostringstream out, err;
  ASSERT_EQ(app::run_command({"scenario", "--spec=" + spec_path,
                              "--trials=20", "--seed=7",
                              "--metrics=" + path},
                             out, err),
            0)
      << err.str();
  const util::Json doc = util::Json::parse(core::read_file(path));
  const auto& counters = doc.at("counters");
  EXPECT_GT(counters.at("engine.context_cache.misses").as_number(), 0.0);
  EXPECT_GT(counters.at("engine.evaluations").as_number(), 0.0);
  EXPECT_GT(counters.at("optimizer.plans_swept").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(counters.at("sim.trials").as_number(), 20.0);
  EXPECT_GT(counters.at("pool.tasks_run").as_number(), 0.0);
  EXPECT_GT(doc.at("histograms")
                .at("sim.trial_time_minutes")
                .at("count")
                .as_number(),
            0.0);
  // The run itself still prints the normal report.
  EXPECT_NE(out.str().find("efficiency"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ScenarioCli, EmitSpecThenRunRoundTrip) {
  // `mlck scenario --system=D5 --emit-spec` writes a complete document...
  std::ostringstream out, err;
  const std::string path = ::testing::TempDir() + "mlck_scenario_spec.json";
  ASSERT_EQ(app::run_command(
                {"scenario", "--system=D5", "--emit-spec=" + path}, out, err),
            0)
      << err.str();

  // ...which the run mode consumes end to end.
  std::ostringstream run_out, run_err;
  ASSERT_EQ(app::run_command(
                {"scenario", "--spec=" + path, "--trials=20"}, run_out,
                run_err),
            0)
      << run_err.str();
  EXPECT_NE(run_out.str().find("efficiency"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mlck::engine

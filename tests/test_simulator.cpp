#include <gtest/gtest.h>

#include <cmath>

#include "core/plan.h"
#include "sim/simulator.h"
#include "systems/test_systems.h"
#include "util/rng.h"

namespace mlck::sim {
namespace {

using core::CheckpointPlan;
using Script = std::vector<ScriptedFailureSource::AbsoluteFailure>;

systems::SystemConfig toy_system() {
  // 2 levels, delta = R = {1, 4}, T_B = 30.
  return systems::SystemConfig::from_table_row("toy", 2, 100.0, {0.8, 0.2},
                                               {1.0, 4.0}, 30.0);
}

CheckpointPlan toy_plan() {
  // tau0 = 5, two level-1 checkpoints before each level-2 checkpoint.
  return CheckpointPlan::full_hierarchy(5.0, {2});
}

TrialResult run_script(Script script, const SimOptions& options = {}) {
  const auto sys = toy_system();
  const auto plan = toy_plan();
  ScriptedFailureSource src(std::move(script));
  return simulate(sys, plan, src, options);
}

void expect_accounting_consistent(const TrialResult& r) {
  EXPECT_NEAR(r.breakdown.total(), r.total_time,
              1e-9 * (1.0 + r.total_time));
}

TEST(Simulator, FailureFreeRunFollowsThePattern) {
  const TrialResult r = run_script({});
  // 6 intervals of 5; checkpoints after j=1..5: levels 0,0,1,0,0 -> cost
  // 1+1+4+1+1 = 8; no checkpoint after the final interval.
  EXPECT_FALSE(r.capped);
  EXPECT_DOUBLE_EQ(r.total_time, 38.0);
  EXPECT_DOUBLE_EQ(r.breakdown.useful, 30.0);
  EXPECT_DOUBLE_EQ(r.breakdown.checkpoint_ok, 8.0);
  EXPECT_EQ(r.checkpoints_completed, 5);
  EXPECT_EQ(r.failures, 0);
  EXPECT_NEAR(r.efficiency(), 30.0 / 38.0, 1e-12);
  expect_accounting_consistent(r);
}

TEST(Simulator, PartialFinalIntervalEndsTheRun) {
  auto sys = toy_system();
  sys.base_time = 12.0;  // intervals 5, 5, 2
  const auto plan = toy_plan();
  ScriptedFailureSource src({});
  const TrialResult r = simulate(sys, plan, src);
  EXPECT_DOUBLE_EQ(r.breakdown.useful, 12.0);
  EXPECT_EQ(r.checkpoints_completed, 2);  // after j=1 and j=2 only
  EXPECT_DOUBLE_EQ(r.total_time, 14.0);
  expect_accounting_consistent(r);
}

TEST(Simulator, EarlyFailureBeforeAnyCheckpointRestartsFromScratch) {
  const TrialResult r = run_script({{2.5, 0}});
  EXPECT_EQ(r.failures, 1);
  EXPECT_EQ(r.scratch_restarts, 1);
  EXPECT_DOUBLE_EQ(r.breakdown.rework_compute, 2.5);
  EXPECT_DOUBLE_EQ(r.total_time, 2.5 + 38.0);
  EXPECT_DOUBLE_EQ(r.breakdown.useful, 30.0);
  expect_accounting_consistent(r);
}

TEST(Simulator, FailureDuringCheckpointChargesPartialCheckpointTime) {
  // First level-1 checkpoint runs over [5, 6); failure at 5.5.
  const TrialResult r = run_script({{5.5, 0}});
  EXPECT_DOUBLE_EQ(r.breakdown.checkpoint_failed, 0.5);
  EXPECT_DOUBLE_EQ(r.breakdown.rework_checkpoint, 5.0);  // interval 1 lost
  EXPECT_EQ(r.scratch_restarts, 1);  // nothing checkpointed yet
  EXPECT_DOUBLE_EQ(r.total_time, 5.5 + 38.0);
  expect_accounting_consistent(r);
}

TEST(Simulator, SeverityZeroRestartsFromLocalCheckpoint) {
  // Level-0 checkpoint valid at t=6 (work 5); failure at t=7.
  const TrialResult r = run_script({{7.0, 0}});
  EXPECT_EQ(r.restarts_completed, 1);
  EXPECT_DOUBLE_EQ(r.breakdown.restart_ok, 1.0);
  EXPECT_DOUBLE_EQ(r.breakdown.rework_compute, 1.0);  // 1 min past ckpt
  EXPECT_DOUBLE_EQ(r.breakdown.useful, 30.0);
  // t=8 after restart; remaining 25 min work + 7 min checkpoints.
  EXPECT_DOUBLE_EQ(r.total_time, 40.0);
  expect_accounting_consistent(r);
}

TEST(Simulator, HighSeverityFailureDestroysLowerLevelCheckpoints) {
  // Severity-1 failure at t=7: the level-0 checkpoint from t=6 is wiped,
  // no level-1 checkpoint exists yet -> scratch restart.
  const TrialResult r = run_script({{7.0, 1}});
  EXPECT_EQ(r.scratch_restarts, 1);
  EXPECT_EQ(r.restarts_completed, 0);
  EXPECT_DOUBLE_EQ(r.breakdown.rework_compute, 6.0);
  EXPECT_DOUBLE_EQ(r.total_time, 7.0 + 38.0);
  expect_accounting_consistent(r);
}

TEST(Simulator, FailedRestartRetriesSameLevelByDefault) {
  // Restart of level 0 begins at t=7; a second severity-0 failure at 7.5
  // interrupts it; the checkpoint survives and the restart retries.
  const TrialResult r = run_script({{7.0, 0}, {7.5, 0}});
  EXPECT_EQ(r.restarts_failed, 1);
  EXPECT_EQ(r.restarts_completed, 1);
  EXPECT_DOUBLE_EQ(r.breakdown.restart_failed, 0.5);
  EXPECT_DOUBLE_EQ(r.breakdown.restart_ok, 1.0);
  EXPECT_DOUBLE_EQ(r.breakdown.rework_restart, 0.0);  // same restore point
  EXPECT_DOUBLE_EQ(r.total_time, 40.5);
  expect_accounting_consistent(r);
}

TEST(Simulator, HigherSeverityFailureDuringRestartEscalatesTarget) {
  // While restarting from level 0, a severity-1 failure destroys that
  // checkpoint; no level-1 checkpoint exists -> scratch, losing the
  // restore point's 5 minutes of work too.
  const TrialResult r = run_script({{7.0, 0}, {7.5, 1}});
  EXPECT_EQ(r.restarts_failed, 1);
  EXPECT_EQ(r.scratch_restarts, 1);
  EXPECT_DOUBLE_EQ(r.breakdown.rework_compute, 1.0);
  EXPECT_DOUBLE_EQ(r.breakdown.rework_restart, 5.0);
  EXPECT_DOUBLE_EQ(r.total_time, 7.5 + 38.0);
  expect_accounting_consistent(r);
}

TEST(Simulator, MoodyPolicyEscalatesOnSameSeverityRestartFailure) {
  // Both checkpoint levels hold work=15 after the level-2 checkpoint
  // completes at t=21. A severity-0 failure at t=22, then a second
  // severity-0 failure at t=22.5 during the level-0 restart.
  SimOptions moody;
  moody.restart_policy = RestartPolicy::kMoodyEscalate;
  const TrialResult escalated = run_script({{22.0, 0}, {22.5, 0}}, moody);
  const TrialResult retried = run_script({{22.0, 0}, {22.5, 0}});
  // Escalation loads the level-1 checkpoint (R=4) instead of retrying the
  // level-0 one (R=1): 3 minutes slower, same restore point.
  EXPECT_DOUBLE_EQ(escalated.breakdown.restart_ok, 4.0);
  EXPECT_DOUBLE_EQ(retried.breakdown.restart_ok, 1.0);
  EXPECT_DOUBLE_EQ(escalated.total_time, retried.total_time + 3.0);
  EXPECT_DOUBLE_EQ(escalated.breakdown.rework_restart, 0.0);
  expect_accounting_consistent(escalated);
}

TEST(Simulator, MoodyPolicyRetriesAtTopLevel) {
  // Single-level plan: the top level has nowhere to escalate; a repeated
  // same-severity failure retries.
  auto sys = toy_system();
  const auto plan = CheckpointPlan::single_level(5.0, 1);
  SimOptions moody;
  moody.restart_policy = RestartPolicy::kMoodyEscalate;
  // Level-1 checkpoint completes at t=9 (5 work + 4 ckpt). Failure at 10,
  // restart [10,14) interrupted at 11 by another severity-1 failure.
  ScriptedFailureSource src({{10.0, 1}, {11.0, 1}});
  const TrialResult r = simulate(sys, plan, src, moody);
  EXPECT_EQ(r.restarts_failed, 1);
  EXPECT_EQ(r.restarts_completed, 1);
  EXPECT_EQ(r.scratch_restarts, 0);
  expect_accounting_consistent(r);
}

TEST(Simulator, LowerSeverityDuringRestartRetriesUnderBothPolicies) {
  // Severity-1 failure at t=22 -> level-1 restart (R=4) over [22,26);
  // a severity-0 failure at 23 must retry level 1 under both policies.
  for (const auto policy :
       {RestartPolicy::kRetrySameLevel, RestartPolicy::kMoodyEscalate}) {
    SimOptions opts;
    opts.restart_policy = policy;
    const TrialResult r = run_script({{22.0, 1}, {23.0, 0}}, opts);
    EXPECT_EQ(r.restarts_failed, 1);
    EXPECT_EQ(r.restarts_completed, 1);
    EXPECT_DOUBLE_EQ(r.breakdown.restart_ok, 4.0);
    EXPECT_DOUBLE_EQ(r.breakdown.restart_failed, 1.0);
    expect_accounting_consistent(r);
  }
}

TEST(Simulator, FailureExactlyAtPhaseBoundaryHitsTheNextPhase) {
  // Failure stamped at t=5.0: the interval [0,5] completes; the failure
  // interrupts the checkpoint at its very start (zero elapsed).
  const TrialResult r = run_script({{5.0, 0}});
  EXPECT_DOUBLE_EQ(r.breakdown.checkpoint_failed, 0.0);
  EXPECT_DOUBLE_EQ(r.breakdown.rework_checkpoint, 5.0);
  EXPECT_EQ(r.scratch_restarts, 1);
  expect_accounting_consistent(r);
}

TEST(Simulator, FinalCheckpointOption) {
  auto sys = toy_system();
  sys.base_time = 10.0;
  const auto plan = CheckpointPlan::single_level(5.0, 1);
  SimOptions opts;
  opts.take_final_checkpoint = true;
  ScriptedFailureSource with({});
  const TrialResult r = simulate(sys, plan, with, opts);
  EXPECT_EQ(r.checkpoints_completed, 2);
  EXPECT_DOUBLE_EQ(r.total_time, 10.0 + 8.0);

  ScriptedFailureSource without({});
  const TrialResult r2 = simulate(sys, plan, without);
  EXPECT_EQ(r2.checkpoints_completed, 1);
  EXPECT_DOUBLE_EQ(r2.total_time, 10.0 + 4.0);
}

TEST(Simulator, HopelessSystemHitsTheTimeCap) {
  // MTBF far below the restart time: the first failure can never be
  // recovered from; the trial must cap out, not spin forever.
  auto sys = systems::SystemConfig::from_table_row(
      "doom", 1, 0.1, {1.0}, {10.0}, 100.0);
  const auto plan = CheckpointPlan::single_level(1.0, 0);
  SimOptions opts;
  opts.max_time_factor = 10.0;
  RandomFailureSource src(sys, util::Rng(1234));
  const TrialResult r = simulate(sys, plan, src, opts);
  EXPECT_TRUE(r.capped);
  EXPECT_GE(r.total_time, 1000.0);
  EXPECT_LT(r.efficiency(), 0.05);
}

TEST(Simulator, CappedTrialClampsAtExactlyTheCap) {
  // Regression: the cap used to be checked only between phases, so a
  // capped trial could overshoot by up to one phase (or one failure gap).
  auto sys = systems::SystemConfig::from_table_row(
      "doom", 1, 0.1, {1.0}, {10.0}, 100.0);
  const auto plan = CheckpointPlan::single_level(1.0, 0);
  SimOptions opts;
  opts.max_time_factor = 10.0;
  const double cap = opts.max_time_factor * sys.base_time;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    RandomFailureSource src(sys,
                            util::Rng(util::derive_stream_seed(9, seed)));
    const TrialResult r = simulate(sys, plan, src, opts);
    ASSERT_TRUE(r.capped);
    EXPECT_DOUBLE_EQ(r.total_time, cap);
    expect_accounting_consistent(r);
  }
}

TEST(Simulator, CapTruncationAttributionIsDeterministic) {
  // Toy system, cap mid-way through the second compute interval: the
  // truncated segment counts as useful work (it was performed and never
  // lost), and the clock stops exactly at the cap.
  auto sys = toy_system();
  const auto plan = toy_plan();
  SimOptions opts;
  opts.max_time_factor = 7.5 / sys.base_time;  // cap at t = 7.5
  ScriptedFailureSource src({});
  const TrialResult r = simulate(sys, plan, src, opts);
  EXPECT_TRUE(r.capped);
  EXPECT_DOUBLE_EQ(r.total_time, 7.5);
  // [0,5) compute, [5,6) level-1 checkpoint, [6,7.5) truncated compute.
  EXPECT_DOUBLE_EQ(r.breakdown.useful, 6.5);
  EXPECT_DOUBLE_EQ(r.breakdown.checkpoint_ok, 1.0);
  EXPECT_EQ(r.failures, 0);  // truncation is not a failure event
  expect_accounting_consistent(r);
}

TEST(Simulator, CapDuringCheckpointChargesTheFailedBucket) {
  // Cap at t = 5.5, halfway through the first checkpoint: the truncated
  // checkpoint time goes to checkpoint_failed without counting a failure.
  auto sys = toy_system();
  const auto plan = toy_plan();
  SimOptions opts;
  opts.max_time_factor = 5.5 / sys.base_time;
  ScriptedFailureSource src({});
  const TrialResult r = simulate(sys, plan, src, opts);
  EXPECT_TRUE(r.capped);
  EXPECT_DOUBLE_EQ(r.total_time, 5.5);
  EXPECT_DOUBLE_EQ(r.breakdown.useful, 5.0);
  EXPECT_DOUBLE_EQ(r.breakdown.checkpoint_failed, 0.5);
  EXPECT_EQ(r.failures, 0);
  EXPECT_EQ(r.checkpoints_completed, 0);
  expect_accounting_consistent(r);
}

TEST(Simulator, RandomRunAccountingAlwaysBalances) {
  const auto sys = systems::table1_system("D4");
  const auto plan = CheckpointPlan::full_hierarchy(2.0, {4});
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    RandomFailureSource src(sys, util::Rng(util::derive_stream_seed(7, seed)));
    const TrialResult r = simulate(sys, plan, src);
    EXPECT_FALSE(r.capped);
    EXPECT_NEAR(r.breakdown.total(), r.total_time, 1e-6 * r.total_time);
    EXPECT_DOUBLE_EQ(r.breakdown.useful, sys.base_time);
    EXPECT_GT(r.failures, 0);
    EXPECT_LE(r.efficiency(), 1.0);
  }
}

TEST(Simulator, RestartCostsComeFromTheRestartVectorNotCheckpoint) {
  auto sys = toy_system();
  sys.restart_cost = {0.5, 2.0};  // decouple from checkpoint costs
  const auto plan = toy_plan();
  ScriptedFailureSource src({{7.0, 0}});
  const TrialResult r = simulate(sys, plan, src);
  EXPECT_DOUBLE_EQ(r.breakdown.restart_ok, 0.5);
  expect_accounting_consistent(r);
}

TEST(Simulator, ScratchRestartWipesAllCheckpointSlots) {
  // After a scratch restart the old level-1 checkpoint must not be
  // reusable. Severity-1 failure at 22 (level-1 ckpt holds work 15),
  // then during the level-1 restart another severity-1 failure at 23,
  // destroying... nothing below 1 except level 0; level-1 data survives
  // and the restart retries. Contrast with a severity-1 failure while
  // *no* level-1 data exists (t=7): scratch, and a later severity-0
  // failure at t=7+2.5 (=9.5 wall clock, 2.5 into the rerun) must again
  // find no checkpoint (the rerun has not checkpointed yet).
  const TrialResult r = run_script({{7.0, 1}, {9.5, 0}});
  EXPECT_EQ(r.scratch_restarts, 2);
  EXPECT_EQ(r.restarts_completed, 0);
  expect_accounting_consistent(r);
}

}  // namespace
}  // namespace mlck::sim

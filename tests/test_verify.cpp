// Tests for the randomized verification harness itself (src/verify):
// generator determinism and validity, the quadrature oracle against the
// closed forms and the model, the invariant checkers' pass AND fail
// behavior (a checker that cannot fail verifies nothing), and the
// selftest driver's report/replay machinery.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <set>
#include <sstream>

#include "core/dauwe_model.h"
#include "math/exponential.h"
#include "math/retry.h"
#include "prop_support.h"
#include "systems/test_systems.h"
#include "util/rng.h"
#include "verify/generators.h"
#include "verify/invariants.h"
#include "verify/oracle.h"
#include "verify/selftest.h"

namespace mlck::verify {
namespace {

constexpr std::uint64_t kSeed = 0x5EEDC0DE;

TEST(Generators, CasesAreDeterministicAndIndexAddressable) {
  const VerifyCase a = make_case(kSeed, 17);
  const VerifyCase b = make_case(kSeed, 17);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.plan.tau0, b.plan.tau0);
  EXPECT_EQ(a.plan.levels, b.plan.levels);
  EXPECT_EQ(a.plan.counts, b.plan.counts);
  EXPECT_EQ(a.system.mtbf, b.system.mtbf);
  EXPECT_EQ(a.system.severity_probability, b.system.severity_probability);
  // Case k is generated from its own derived stream: case 17 is the same
  // whether or not cases 0..16 were generated first.
  EXPECT_EQ(a.seed, util::derive_stream_seed(kSeed, 17));
  EXPECT_NE(a.seed, make_case(kSeed, 18).seed);
  EXPECT_NE(a.seed, make_case(kSeed + 1, 17).seed);
}

TEST(Generators, SystemsAndPlansAreStructurallyValid) {
  const std::uint64_t seed = testprop::suite_seed(kSeed);
  SCOPED_TRACE(testprop::repro(
      "Generators.SystemsAndPlansAreStructurallyValid", seed));
  const GeneratorOptions opts;
  int feasible = 0;
  for (std::size_t i = 0; i < 300; ++i) {
    const VerifyCase c = make_case(seed, i, opts);
    // validate() throws on malformed input; reaching here is the check.
    c.system.validate();
    c.plan.validate(c.system);
    EXPECT_GE(c.system.levels(), opts.min_levels);
    EXPECT_LE(c.system.levels(), opts.max_levels);
    EXPECT_GE(c.system.mtbf, opts.mtbf_min);
    EXPECT_LE(c.system.mtbf, opts.mtbf_max);
    if (c.plan.top_periods(c.system.base_time) >= 1.0) ++feasible;
  }
  // The stream must cover both feasibility regimes or the +inf paths of
  // every consumer go untested.
  EXPECT_GT(feasible, 200);
  EXPECT_LT(feasible, 300);
}

TEST(Generators, SubsetsAreAscendingNonEmptyAndInRange) {
  const std::uint64_t seed = testprop::suite_seed(kSeed ^ 0x5b5e7);
  SCOPED_TRACE(testprop::repro(
      "Generators.SubsetsAreAscendingNonEmptyAndInRange", seed));
  util::Rng rng(seed);
  for (int round = 0; round < 200; ++round) {
    const int levels = 1 + static_cast<int>(rng.below(5));
    const auto subset = random_subset(rng, levels);
    ASSERT_FALSE(subset.empty());
    for (std::size_t k = 0; k < subset.size(); ++k) {
      ASSERT_GE(subset[k], 0);
      ASSERT_LT(subset[k], levels);
      if (k > 0) {
        ASSERT_LT(subset[k - 1], subset[k]);
      }
    }
  }
}

TEST(Oracle, PrimitivesMatchClosedFormsAcrossScales) {
  // Quadrature vs the expm1/series closed forms in src/math, over nine
  // decades of u = rate * t on both sides of 1.
  for (const double rate : {1e-4, 1e-2, 1.0, 10.0}) {
    for (const double u : {1e-5, 1e-2, 0.5, 1.0, 5.0, 30.0, 120.0, 400.0}) {
      const double t = u / rate;
      SCOPED_TRACE(testing::Message() << "rate=" << rate << " u=" << u);
      EXPECT_NEAR(oracle_failure_probability(t, rate),
                  math::failure_probability(t, rate),
                  1e-11 * std::min(1.0, u));
      const double s = math::survival(t, rate);
      EXPECT_NEAR(oracle_survival(t, rate), s, 1e-11 * s + 1e-300);
      EXPECT_NEAR(oracle_truncated_mean(t, rate), math::truncated_mean(t, rate),
                  1e-10 * math::truncated_mean(t, rate));
      const double r = math::expected_retries(t, rate);
      EXPECT_NEAR(oracle_expected_retries(t, rate), r, 1e-10 * r);
    }
  }
}

TEST(Oracle, PrimitiveEdgeCasesMatchProductionConventions) {
  EXPECT_EQ(oracle_failure_probability(0.0, 1.0), 0.0);
  EXPECT_EQ(oracle_failure_probability(5.0, 0.0), 0.0);
  EXPECT_EQ(oracle_survival(0.0, 1.0), 1.0);
  EXPECT_EQ(oracle_survival(5.0, 0.0), 1.0);
  EXPECT_EQ(oracle_truncated_mean(0.0, 1.0), 0.0);
  // rate -> 0 limit: failures (conditioned on one occurring) are uniform.
  EXPECT_NEAR(oracle_truncated_mean(8.0, 0.0), 4.0, 1e-12);
  EXPECT_NEAR(oracle_truncated_mean(8.0, 1e-9), 4.0, 1e-6);
  EXPECT_EQ(oracle_expected_retries(5.0, 0.0), 0.0);
  // Underflowed survival: infinite retries, like expm1 overflow upstream.
  EXPECT_EQ(oracle_survival(800.0, 1.0), 0.0);
  EXPECT_TRUE(std::isinf(oracle_expected_retries(800.0, 1.0)));
}

TEST(Oracle, TruncatedMeanSurvivesBoundaryLayerRegimes) {
  // Regression for the harness's own first catch: with t >> 1/rate the
  // integrand's mass hides between the first Simpson samples of [0, t]
  // and an uncapped quadrature terminates on an apparent-zero estimate
  // (selftest seed 42 case 123 returned 8.4e-9 instead of ~136.8).
  const double rate = 7.311932e-3;
  const double t = 16805.69965;
  EXPECT_NEAR(oracle_truncated_mean(t, rate), math::truncated_mean(t, rate),
              1e-9 * math::truncated_mean(t, rate));
  for (const double u : {1e3, 1e5, 1e8}) {
    const double big_t = u / rate;
    EXPECT_NEAR(oracle_truncated_mean(big_t, rate), 1.0 / rate,
                1e-9 / rate)
        << "u=" << u;
  }
}

TEST(Oracle, ExpectedTimeMatchesModelOnTableISystems) {
  const core::DauweModel model;
  for (const auto& sys : systems::table1_systems()) {
    std::vector<int> all(static_cast<std::size_t>(sys.levels()));
    for (int l = 0; l < sys.levels(); ++l) all[static_cast<std::size_t>(l)] = l;
    core::CheckpointPlan plan;
    plan.levels = all;
    plan.counts.assign(all.size() - 1, 2);
    plan.tau0 = sys.base_time /
                (static_cast<double>(plan.pattern_period()) * 4.0);
    double condition = 1.0;
    const double oracle =
        oracle_expected_time(sys, plan, {}, &condition);
    const double production = model.expected_time(sys, plan);
    const TolerancePolicy policy;
    EXPECT_TRUE(policy.within(production, oracle, condition))
        << sys.name << ": model " << production << " oracle " << oracle
        << " condition " << condition;
  }
}

TEST(Oracle, ExpectedTimeReportsInfeasibleExactlyLikeTheModel) {
  const auto sys = systems::table1_system("M");
  core::CheckpointPlan plan = core::CheckpointPlan::single_level(
      sys.base_time * 2.0, sys.levels() - 1);
  const core::DauweModel model;
  EXPECT_TRUE(std::isinf(oracle_expected_time(sys, plan)));
  EXPECT_TRUE(std::isinf(model.expected_time(sys, plan)));
}

TEST(Oracle, TolerancePolicyWidensWithConditionAndRejectsNan) {
  const TolerancePolicy policy;
  EXPECT_TRUE(policy.within(100.0, 100.0 * (1.0 + 1e-10)));
  EXPECT_FALSE(policy.within(100.0, 100.0 * (1.0 + 1e-6)));
  // Condition 1e4 widens the band to ~1e-5 relative.
  EXPECT_TRUE(policy.within(100.0, 100.0 * (1.0 + 1e-6), 1e4));
  // ...but never beyond rel_cap.
  EXPECT_FALSE(policy.within(100.0, 102.0, 1e300));
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(policy.within(inf, inf));
  EXPECT_FALSE(policy.within(inf, 100.0));
  EXPECT_FALSE(policy.within(std::nan(""), 100.0));
  EXPECT_FALSE(policy.within(100.0, std::nan("")));
}

TEST(Invariants, AllFamiliesPassOnAStreamOfGeneratedCases) {
  const std::uint64_t seed = testprop::suite_seed(kSeed ^ 0xca5e5);
  SCOPED_TRACE(testprop::repro(
      "Invariants.AllFamiliesPassOnAStreamOfGeneratedCases", seed));
  for (std::size_t i = 0; i < 60; ++i) {
    const VerifyCase c = make_case(seed, i);
    SCOPED_TRACE(testing::Message() << "case " << i << " seed 0x" << std::hex
                                    << c.seed);
    const CheckResult oracle = check_oracle_agreement(c);
    for (const auto& f : oracle.failures) {
      ADD_FAILURE() << f.check << ": " << f.detail;
    }
    const CheckResult bits = check_bit_identity(c);
    for (const auto& f : bits.failures) {
      ADD_FAILURE() << f.check << ": " << f.detail;
    }
    const CheckResult meta = check_metamorphic(c);
    for (const auto& f : meta.failures) {
      ADD_FAILURE() << f.check << ": " << f.detail;
    }
  }
}

TEST(Invariants, OracleAgreementDetectsAPerturbedModel) {
  // The checker must fail when the implementations genuinely disagree;
  // simulate a model bug by comparing against a perturbed system (same
  // plan, 0.1% cheaper checkpoints) through the bit-identity lens.
  const VerifyCase c = make_case(kSeed, 3);
  VerifyCase broken = c;
  for (double& d : broken.system.checkpoint_cost) d *= 1.001;
  const core::DauweModel model(c.options);
  const double t_good = model.expected_time(c.system, c.plan);
  const double t_bad = model.expected_time(broken.system, c.plan);
  if (std::isfinite(t_good) && std::isfinite(t_bad)) {
    const TolerancePolicy policy;
    EXPECT_FALSE(policy.within(t_bad, t_good, 1.0));
  }
}

TEST(Invariants, BitIdentityDetectsASingleUlpDifference) {
  CheckResult r;
  const VerifyCase c = make_case(kSeed, 5);
  r = check_bit_identity(c);
  EXPECT_TRUE(r.ok());
  // Self-check of the comparison itself: one ULP must not slip through.
  const double x = 1.0;
  const double y = std::nextafter(x, 2.0);
  TolerancePolicy loose;
  loose.rel = 1.0;  // a tolerance check would accept this
  EXPECT_TRUE(loose.within(x, y));
  // bit_identity's comparator is exercised indirectly: a CheckResult
  // merging a failure stays failed.
  CheckResult merged;
  merged.merge(std::move(r));
  EXPECT_TRUE(merged.ok());
  CheckResult bad;
  bad.fail("bit_identity", "injected");
  merged.merge(std::move(bad));
  EXPECT_FALSE(merged.ok());
  EXPECT_EQ(merged.failures.size(), 1u);
}

TEST(Invariants, MetamorphicCatchesANonMonotoneModel) {
  // Feed the metamorphic checker a case where we *swap* the direction by
  // checking a hand-built impossible pair through non_decreasing's
  // public effect: expected time below T_B must be flagged.
  VerifyCase c = make_case(kSeed, 8);
  // Degenerate system: model time is finite and >= T_B by construction,
  // so the checker passes on real input...
  EXPECT_TRUE(check_metamorphic(c).ok());
  // ...and the oracle-agreement checker fails when handed an absurd
  // tolerance policy (zero band, nonzero quadrature noise), proving the
  // failure path is reachable.
  TolerancePolicy zero;
  zero.rel = 0.0;
  zero.abs = 0.0;
  zero.rel_cap = 0.0;
  bool any_failure = false;
  for (std::size_t i = 0; i < 10 && !any_failure; ++i) {
    any_failure =
        !check_oracle_agreement(make_case(kSeed, i), zero).ok();
  }
  EXPECT_TRUE(any_failure);
}

TEST(Invariants, DominanceHoldsOnGeneratedSystems) {
  const std::uint64_t seed = testprop::suite_seed(kSeed ^ 0xd0a1);
  SCOPED_TRACE(
      testprop::repro("Invariants.DominanceHoldsOnGeneratedSystems", seed));
  core::OptimizerOptions grid;
  grid.coarse_tau_points = 10;
  grid.max_count = 6;
  grid.refine_rounds = 2;
  for (std::size_t i = 0; i < 8; ++i) {
    const VerifyCase c = make_case(seed, i);
    const CheckResult r = check_optimizer_dominance(c, grid);
    for (const auto& f : r.failures) {
      ADD_FAILURE() << "case " << i << " " << f.check << ": " << f.detail;
    }
  }
}

TEST(Selftest, SmallRunPassesAndCountsEveryPhase) {
  SelftestOptions options;
  options.cases = 24;
  options.seed = 42;
  options.welch_systems = 2;
  options.trials = 60;
  options.dominance_stride = 8;
  std::ostringstream log;
  const SelftestReport report = run_selftest(options, nullptr, &log);
  EXPECT_TRUE(report.passed()) << log.str();
  EXPECT_EQ(report.cases_run, 24u);
  EXPECT_EQ(report.oracle_checked, 24u);
  EXPECT_EQ(report.bit_identity_checked, 24u);
  EXPECT_EQ(report.metamorphic_checked, 24u);
  EXPECT_EQ(report.dominance_checked, 3u);  // cases 0, 8, 16
  EXPECT_EQ(report.welch.size(), 2u);
  EXPECT_GT(report.max_oracle_error, 0.0);
  EXPECT_LT(report.max_oracle_error, 1.0);  // within the documented band
  EXPECT_NE(log.str().find("selftest"), std::string::npos);
}

TEST(Selftest, OnlyCaseReplaysExactlyOneCase) {
  SelftestOptions options;
  options.cases = 50;
  options.seed = 42;
  options.only_case = 17;
  options.welch_systems = 4;  // must be skipped in replay mode
  const SelftestReport report = run_selftest(options);
  EXPECT_EQ(report.cases_run, 1u);
  EXPECT_TRUE(report.welch.empty());
  EXPECT_TRUE(report.passed());
}

TEST(Selftest, ReportJsonCarriesSeedsAsHexStrings) {
  SelftestOptions options;
  options.cases = 4;
  options.seed = 0xDEADBEEFCAFEF00D;  // would lose precision as a double
  options.welch_systems = 1;
  options.trials = 40;
  const SelftestReport report = run_selftest(options);
  const util::Json doc = report.to_json();
  EXPECT_EQ(doc.at("seed").as_string(), "0xdeadbeefcafef00d");
  EXPECT_EQ(doc.at("cases_run").as_number(), 4.0);
  EXPECT_EQ(doc.at("checked").at("oracle").as_number(), 4.0);
  EXPECT_TRUE(doc.at("failures").is_array());
  EXPECT_TRUE(doc.at("welch").is_array());
  EXPECT_EQ(doc.at("passed").as_bool(), report.passed());
  // dump() must produce parseable JSON (no bare inf/nan leaked).
  const util::Json reparsed = util::Json::parse(doc.dump(2));
  EXPECT_EQ(reparsed, doc);
}

TEST(Selftest, WelchValidationIsDeterministic) {
  SelftestOptions options;
  options.cases = 0;
  options.welch_systems = 2;
  options.trials = 50;
  options.seed = 7;
  const SelftestReport a = run_selftest(options);
  const SelftestReport b = run_selftest(options);
  ASSERT_EQ(a.welch.size(), b.welch.size());
  for (std::size_t i = 0; i < a.welch.size(); ++i) {
    EXPECT_EQ(a.welch[i].seed, b.welch[i].seed);
    EXPECT_EQ(a.welch[i].predicted_time, b.welch[i].predicted_time);
    EXPECT_EQ(a.welch[i].sim_mean, b.welch[i].sim_mean);
    EXPECT_EQ(a.welch[i].p_two_sided, b.welch[i].p_two_sided);
    EXPECT_EQ(a.welch[i].skipped, b.welch[i].skipped);
  }
  EXPECT_EQ(a.welch_rejections, b.welch_rejections);
}

TEST(Selftest, FailureRecordsCarryReplayCommands) {
  // Force failures with an impossible tolerance and verify the replay
  // metadata (the contract docs/TESTING.md promises).
  SelftestOptions options;
  options.cases = 6;
  options.seed = 42;
  options.welch_systems = 0;
  options.dominance_stride = 0;
  options.tolerance.rel = 0.0;
  options.tolerance.abs = 0.0;
  options.tolerance.rel_cap = 0.0;
  const SelftestReport report = run_selftest(options);
  ASSERT_FALSE(report.failures.empty());
  EXPECT_FALSE(report.passed());
  for (const auto& f : report.failures) {
    EXPECT_EQ(f.case_seed, util::derive_stream_seed(42, f.case_index));
    std::ostringstream expected;
    expected << "mlck selftest --seed=42 --cases=6 --case=" << f.case_index;
    EXPECT_EQ(f.repro, expected.str());
  }
}

}  // namespace
}  // namespace mlck::verify

#include <gtest/gtest.h>

#include <cmath>

#include "sim/trial_runner.h"
#include "systems/test_systems.h"

namespace mlck::sim {
namespace {

using core::CheckpointPlan;

TEST(TrialRunner, ReproducibleForEqualSeeds) {
  const auto sys = systems::table1_system("D2");
  const auto plan = CheckpointPlan::full_hierarchy(3.0, {4});
  const TrialStats a = run_trials(sys, plan, 40, 777);
  const TrialStats b = run_trials(sys, plan, 40, 777);
  EXPECT_DOUBLE_EQ(a.efficiency.mean, b.efficiency.mean);
  EXPECT_DOUBLE_EQ(a.efficiency.stddev, b.efficiency.stddev);
  EXPECT_DOUBLE_EQ(a.total_time.mean, b.total_time.mean);
  EXPECT_DOUBLE_EQ(a.mean_failures, b.mean_failures);
}

TEST(TrialRunner, DifferentSeedsDiffer) {
  const auto sys = systems::table1_system("D2");
  const auto plan = CheckpointPlan::full_hierarchy(3.0, {4});
  const TrialStats a = run_trials(sys, plan, 40, 777);
  const TrialStats b = run_trials(sys, plan, 40, 778);
  EXPECT_NE(a.efficiency.mean, b.efficiency.mean);
}

TEST(TrialRunner, PoolAndSerialExecutionAgreeExactly) {
  const auto sys = systems::table1_system("D3");
  const auto plan = CheckpointPlan::full_hierarchy(2.0, {5});
  const TrialStats serial = run_trials(sys, plan, 32, 99, {}, nullptr);
  util::ThreadPool pool(4);
  const TrialStats pooled = run_trials(sys, plan, 32, 99, {}, &pool);
  EXPECT_DOUBLE_EQ(serial.efficiency.mean, pooled.efficiency.mean);
  EXPECT_DOUBLE_EQ(serial.efficiency.stddev, pooled.efficiency.stddev);
  EXPECT_DOUBLE_EQ(serial.time_shares.useful, pooled.time_shares.useful);
}

TEST(TrialRunner, TimeSharesNormalizedToOne) {
  const auto sys = systems::table1_system("D6");
  const auto plan = CheckpointPlan::full_hierarchy(2.0, {4});
  const TrialStats stats = run_trials(sys, plan, 50, 5);
  EXPECT_NEAR(stats.time_shares.total(), 1.0, 1e-9);
  EXPECT_GT(stats.time_shares.useful, 0.0);
  EXPECT_GT(stats.time_shares.checkpoint_ok, 0.0);
}

TEST(TrialRunner, SummariesCarrySampleCount) {
  const auto sys = systems::table1_system("D1");
  const auto plan = CheckpointPlan::full_hierarchy(5.0, {3});
  const TrialStats stats = run_trials(sys, plan, 25, 1);
  EXPECT_EQ(stats.trials, 25u);
  EXPECT_EQ(stats.efficiency.count, 25u);
  EXPECT_GT(stats.efficiency.mean, 0.0);
  EXPECT_LE(stats.efficiency.max, 1.0);
  EXPECT_GT(stats.mean_failures, 1.0);  // MTBF 51 min, T_B 1440 min
}

TEST(TrialRunner, CapsHopelessRuns) {
  const auto sys = systems::SystemConfig::from_table_row(
      "doom", 1, 0.05, {1.0}, {20.0}, 50.0);
  const auto plan = CheckpointPlan::single_level(1.0, 0);
  SimOptions opts;
  opts.max_time_factor = 20.0;
  const TrialStats stats = run_trials(sys, plan, 8, 3, opts);
  EXPECT_EQ(stats.capped_trials, 8u);
  EXPECT_LT(stats.efficiency.mean, 0.05);
}

TEST(TrialRunner, EfficiencyVarianceShrinksForEasierSystems) {
  const auto plan = CheckpointPlan::full_hierarchy(10.0, {4});
  const auto easy = systems::table1_system("D1");   // MTBF 51.42
  const auto hard = systems::table1_system("D4");   // MTBF 6
  const TrialStats e = run_trials(easy, plan, 60, 11);
  const TrialStats h = run_trials(hard, plan, 60, 11);
  EXPECT_GT(e.efficiency.mean, h.efficiency.mean);
}

}  // namespace
}  // namespace mlck::sim

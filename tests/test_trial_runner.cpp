#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "sim/trial_runner.h"
#include "systems/test_systems.h"

namespace mlck::sim {
namespace {

using core::CheckpointPlan;

TEST(TrialRunner, ReproducibleForEqualSeeds) {
  const auto sys = systems::table1_system("D2");
  const auto plan = CheckpointPlan::full_hierarchy(3.0, {4});
  const TrialStats a = run_trials(sys, plan, 40, 777);
  const TrialStats b = run_trials(sys, plan, 40, 777);
  EXPECT_DOUBLE_EQ(a.efficiency.mean, b.efficiency.mean);
  EXPECT_DOUBLE_EQ(a.efficiency.stddev, b.efficiency.stddev);
  EXPECT_DOUBLE_EQ(a.total_time.mean, b.total_time.mean);
  EXPECT_DOUBLE_EQ(a.mean_failures, b.mean_failures);
}

TEST(TrialRunner, DifferentSeedsDiffer) {
  const auto sys = systems::table1_system("D2");
  const auto plan = CheckpointPlan::full_hierarchy(3.0, {4});
  const TrialStats a = run_trials(sys, plan, 40, 777);
  const TrialStats b = run_trials(sys, plan, 40, 778);
  EXPECT_NE(a.efficiency.mean, b.efficiency.mean);
}

TEST(TrialRunner, PoolAndSerialExecutionAgreeExactly) {
  const auto sys = systems::table1_system("D3");
  const auto plan = CheckpointPlan::full_hierarchy(2.0, {5});
  const TrialStats serial = run_trials(sys, plan, 32, 99, {}, nullptr);
  util::ThreadPool pool(4);
  const TrialStats pooled = run_trials(sys, plan, 32, 99, {}, &pool);
  EXPECT_DOUBLE_EQ(serial.efficiency.mean, pooled.efficiency.mean);
  EXPECT_DOUBLE_EQ(serial.efficiency.stddev, pooled.efficiency.stddev);
  EXPECT_DOUBLE_EQ(serial.time_shares.useful, pooled.time_shares.useful);
}

TEST(TrialRunner, TimeSharesNormalizedToOne) {
  const auto sys = systems::table1_system("D6");
  const auto plan = CheckpointPlan::full_hierarchy(2.0, {4});
  const TrialStats stats = run_trials(sys, plan, 50, 5);
  EXPECT_NEAR(stats.time_shares.total(), 1.0, 1e-9);
  EXPECT_GT(stats.time_shares.useful, 0.0);
  EXPECT_GT(stats.time_shares.checkpoint_ok, 0.0);
}

TEST(TrialRunner, SummariesCarrySampleCount) {
  const auto sys = systems::table1_system("D1");
  const auto plan = CheckpointPlan::full_hierarchy(5.0, {3});
  const TrialStats stats = run_trials(sys, plan, 25, 1);
  EXPECT_EQ(stats.trials, 25u);
  EXPECT_EQ(stats.efficiency.count, 25u);
  EXPECT_GT(stats.efficiency.mean, 0.0);
  EXPECT_LE(stats.efficiency.max, 1.0);
  EXPECT_GT(stats.mean_failures, 1.0);  // MTBF 51 min, T_B 1440 min
}

TEST(TrialRunner, CapsHopelessRuns) {
  const auto sys = systems::SystemConfig::from_table_row(
      "doom", 1, 0.05, {1.0}, {20.0}, 50.0);
  const auto plan = CheckpointPlan::single_level(1.0, 0);
  SimOptions opts;
  opts.max_time_factor = 20.0;
  const TrialStats stats = run_trials(sys, plan, 8, 3, opts);
  EXPECT_EQ(stats.capped_trials, 8u);
  EXPECT_LT(stats.efficiency.mean, 0.05);
}

TEST(TrialRunner, NoCappedTrialExceedsTheCap) {
  // Regression: capped trials used to overshoot the cap by up to one
  // phase; total_time must now respect max_time_factor * base_time.
  const auto sys = systems::SystemConfig::from_table_row(
      "doom", 1, 0.05, {1.0}, {20.0}, 50.0);
  const auto plan = CheckpointPlan::single_level(1.0, 0);
  SimOptions opts;
  opts.max_time_factor = 20.0;
  const double cap = opts.max_time_factor * sys.base_time;
  const TrialStats stats = run_trials(sys, plan, 64, 3, opts);
  EXPECT_EQ(stats.capped_trials, 64u);
  // All trials capped => every per-trial total_time is exactly the cap.
  EXPECT_DOUBLE_EQ(stats.total_time.max, cap);
  EXPECT_DOUBLE_EQ(stats.total_time.min, cap);
}

TEST(TrialRunner, ThrowingTrialBodySurfacesAsException) {
  // Regression: an exception inside a pooled trial used to escape the
  // worker thread and call std::terminate. plan.validate() runs inside
  // each trial, so an invalid plan exercises exactly that path.
  const auto sys = systems::table1_system("D2");
  CheckpointPlan bad = CheckpointPlan::full_hierarchy(3.0, {4});
  bad.tau0 = -1.0;  // validate() throws std::invalid_argument
  util::ThreadPool pool(4);
  EXPECT_THROW(run_trials(sys, bad, 16, 1, {}, &pool),
               std::invalid_argument);
  // The pool survived; a well-formed batch still runs on it.
  const auto plan = CheckpointPlan::full_hierarchy(3.0, {4});
  const TrialStats pooled = run_trials(sys, plan, 16, 1, {}, &pool);
  const TrialStats serial = run_trials(sys, plan, 16, 1, {}, nullptr);
  EXPECT_DOUBLE_EQ(pooled.efficiency.mean, serial.efficiency.mean);
}

TEST(TrialRunner, EfficiencyVarianceShrinksForEasierSystems) {
  const auto plan = CheckpointPlan::full_hierarchy(10.0, {4});
  const auto easy = systems::table1_system("D1");   // MTBF 51.42
  const auto hard = systems::table1_system("D4");   // MTBF 6
  const TrialStats e = run_trials(easy, plan, 60, 11);
  const TrialStats h = run_trials(hard, plan, 60, 11);
  EXPECT_GT(e.efficiency.mean, h.efficiency.mean);
}

}  // namespace
}  // namespace mlck::sim

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/attribution.h"
#include "obs/exposition.h"
#include "obs/registry.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "util/json.h"

namespace mlck::obs {
namespace {

std::vector<std::string> fake_argv() {
  return {"mlck", "scenario", "--trials=100"};
}

/// Splits @p text into lines (dropping the trailing empty line).
std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(OpenMetricsName, MapsDotsAndJunkToUnderscores) {
  EXPECT_EQ(openmetrics_name("engine.context_cache.hits"),
            "mlck_engine_context_cache_hits");
  EXPECT_EQ(openmetrics_name("pool.task_latency_ns"),
            "mlck_pool_task_latency_ns");
  EXPECT_EQ(openmetrics_name("weird-name with:chars"),
            "mlck_weird_name_with_chars");
}

TEST(OpenMetricsText, RendersCountersGaugesAndHistograms) {
  MetricsRegistry reg;
  reg.counter("sim.trials").add(7);
  reg.gauge("pool.queue_depth_high_water").set(3.0);
  Histogram& h = reg.histogram("sim.trial_time_minutes");
  h.record(3.0);
  h.record(100.0);
  const std::string text = openmetrics_text(reg.snapshot());

  EXPECT_NE(text.find("# TYPE mlck_sim_trials counter"), std::string::npos);
  EXPECT_NE(text.find("mlck_sim_trials_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE mlck_pool_queue_depth_high_water gauge"),
            std::string::npos);
  EXPECT_NE(text.find("mlck_pool_queue_depth_high_water 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE mlck_sim_trial_time_minutes histogram"),
            std::string::npos);
  // Cumulative buckets close with +Inf carrying the total count, and the
  // _sum/_count samples follow.
  EXPECT_NE(text.find("mlck_sim_trial_time_minutes_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("mlck_sim_trial_time_minutes_sum 103"),
            std::string::npos);
  EXPECT_NE(text.find("mlck_sim_trial_time_minutes_count 2"),
            std::string::npos);
  // Mandatory terminator, exactly at the end.
  const auto all = lines_of(text);
  ASSERT_FALSE(all.empty());
  EXPECT_EQ(all.back(), "# EOF");
}

TEST(OpenMetricsText, BucketsAreCumulativeAndOrdered) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat");
  h.record(1.5);
  h.record(1.5);
  h.record(100.0);
  const std::string text = openmetrics_text(reg.snapshot());
  // Parse every _bucket line: le ascending, counts non-decreasing.
  double prev_le = -1.0;
  std::uint64_t prev_count = 0;
  std::uint64_t inf_count = 0;
  int buckets = 0;
  for (const std::string& line : lines_of(text)) {
    const std::string prefix = "mlck_lat_bucket{le=\"";
    if (line.rfind(prefix, 0) != 0) continue;
    ++buckets;
    const auto close = line.find('"', prefix.size());
    ASSERT_NE(close, std::string::npos);
    const std::string le = line.substr(prefix.size(), close - prefix.size());
    const std::uint64_t count =
        std::stoull(line.substr(line.find("} ") + 2));
    EXPECT_GE(count, prev_count);
    prev_count = count;
    if (le == "+Inf") {
      inf_count = count;
    } else {
      const double le_value = std::stod(le);
      EXPECT_GT(le_value, prev_le);
      prev_le = le_value;
    }
  }
  EXPECT_GE(buckets, 2);
  EXPECT_EQ(inf_count, 3u);  // +Inf carries the total count
}

TEST(OpenMetricsText, EmptySnapshotIsJustEof) {
  const std::string text = openmetrics_text(RegistrySnapshot{});
  EXPECT_EQ(text, "# EOF\n");
}

TEST(SidecarMeta, CarriesSchemaVersionArgvAndTimestamp) {
  const util::Json meta = sidecar_meta(fake_argv(), 12);
  EXPECT_DOUBLE_EQ(meta.at("schema_version").as_number(),
                   static_cast<double>(kSidecarSchemaVersion));
  EXPECT_DOUBLE_EQ(meta.at("metric_count").as_number(), 12.0);
  const auto& argv = meta.at("argv").as_array();
  ASSERT_EQ(argv.size(), 3u);
  EXPECT_EQ(argv[0].as_string(), "mlck");
  EXPECT_EQ(argv[2].as_string(), "--trials=100");
  // ISO-8601 UTC: "YYYY-MM-DDTHH:MM:SSZ".
  const std::string ts = meta.at("written_at").as_string();
  ASSERT_EQ(ts.size(), 20u);
  EXPECT_EQ(ts[4], '-');
  EXPECT_EQ(ts[10], 'T');
  EXPECT_EQ(ts.back(), 'Z');
}

TEST(SidecarJson, WrapsRegistrySectionsWithMeta) {
  MetricsRegistry reg;
  reg.counter("sim.trials").add(3);
  reg.gauge("pool.depth").set(1.0);
  const util::Json doc = sidecar_json(reg, fake_argv());
  EXPECT_DOUBLE_EQ(doc.at("meta").at("metric_count").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(doc.at("counters").at("sim.trials").as_number(), 3.0);
  EXPECT_NO_THROW(util::Json::parse(doc.dump(2)));
}

TEST(TimelineJsonl, MetaFirstThenOneJsonObjectPerPoint) {
  MetricsRegistry reg;
  Counter& work = reg.counter("work.items");
  TelemetrySampler sampler(reg);
  work.add(1);
  sampler.sample_now();
  work.add(4);
  sampler.sample_now();
  const std::string text = timeline_jsonl(sampler, fake_argv());
  const auto lines = lines_of(text);
  ASSERT_GE(lines.size(), 3u);  // meta + 2 work.items points (+ self-metrics)

  const util::Json meta = util::Json::parse(lines[0]);
  EXPECT_EQ(meta.at("kind").as_string(), "timeline_meta");
  EXPECT_DOUBLE_EQ(meta.at("schema_version").as_number(),
                   static_cast<double>(kSidecarSchemaVersion));
  EXPECT_DOUBLE_EQ(meta.at("ticks").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(meta.at("period_ms").as_number(), 50.0);

  int work_points = 0;
  double prev_value = -1.0;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const util::Json point = util::Json::parse(lines[i]);  // each line valid
    const std::string kind = point.at("kind").as_string();
    ASSERT_TRUE(kind == "point" || kind == "hist") << lines[i];
    if (kind == "point" && point.at("metric").as_string() == "work.items") {
      ++work_points;
      EXPECT_EQ(point.at("type").as_string(), "counter");
      EXPECT_GE(point.at("value").as_number(), prev_value);
      prev_value = point.at("value").as_number();
    }
  }
  EXPECT_EQ(work_points, 2);
  EXPECT_DOUBLE_EQ(prev_value, 5.0);
}

TEST(Attribution, JoinTableKnowsThePhaseCounters) {
  EXPECT_EQ(attribution_counter("optimizer.coarse_sweep"),
            "optimizer.plans_swept");
  EXPECT_EQ(attribution_counter("scenario.simulate"), "sim.trials");
  EXPECT_EQ(attribution_counter("pool.task"), "pool.tasks_run");
  EXPECT_EQ(attribution_counter("no.such.span"), "");
}

TEST(Attribution, SelfVsChildSplitChargesDirectParentOnly) {
  // Synthetic nesting on one thread:
  //   outer [0, 100] > middle [10, 60] > inner [20, 40]
  // middle is charged to outer, inner to middle — never inner to outer.
  std::vector<SpanEvent> spans;
  spans.push_back({"outer", "test", 0, 0.0, 100.0});
  spans.push_back({"middle", "test", 0, 10.0, 60.0});
  spans.push_back({"inner", "test", 0, 20.0, 40.0});
  // Same names on another thread must not nest across threads.
  spans.push_back({"outer", "test", 1, 0.0, 30.0});
  const auto phases = attribute_costs(spans, RegistrySnapshot{});
  ASSERT_EQ(phases.size(), 3u);
  EXPECT_EQ(phases[0].name, "outer");  // sorted by descending total
  EXPECT_EQ(phases[0].spans, 2u);
  EXPECT_DOUBLE_EQ(phases[0].total_us, 130.0);
  EXPECT_DOUBLE_EQ(phases[0].child_us, 50.0);  // middle only, thread 0
  EXPECT_DOUBLE_EQ(phases[0].self_us, 80.0);
  EXPECT_EQ(phases[1].name, "middle");
  EXPECT_DOUBLE_EQ(phases[1].child_us, 20.0);  // inner
  EXPECT_DOUBLE_EQ(phases[1].self_us, 30.0);
  EXPECT_EQ(phases[2].name, "inner");
  EXPECT_DOUBLE_EQ(phases[2].child_us, 0.0);
  EXPECT_DOUBLE_EQ(phases[2].self_us, 20.0);
}

TEST(Attribution, JoinsCountersAndDerivesThroughput) {
  std::vector<SpanEvent> spans;
  // 2 seconds of optimizer sweep.
  spans.push_back({"optimizer.coarse_sweep", "optimizer", 0, 0.0, 2.0e6});
  RegistrySnapshot snapshot;
  snapshot.counters.emplace_back("optimizer.plans_swept", 1000u);
  const auto phases = attribute_costs(spans, snapshot);
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].counter, "optimizer.plans_swept");
  EXPECT_EQ(phases[0].events, 1000u);
  EXPECT_DOUBLE_EQ(phases[0].events_per_sec, 500.0);
}

TEST(Attribution, JsonAndTableRender) {
  std::vector<SpanEvent> spans;
  spans.push_back({"pool.task", "pool", 0, 0.0, 50.0});
  RegistrySnapshot snapshot;
  snapshot.counters.emplace_back("pool.tasks_run", 1u);
  const auto phases = attribute_costs(spans, snapshot);
  const util::Json doc = attribution_json(phases);
  const auto& rows = doc.at("phases").as_array();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at("name").as_string(), "pool.task");
  EXPECT_DOUBLE_EQ(rows[0].at("total_us").as_number(), 50.0);
  EXPECT_NO_THROW(util::Json::parse(doc.dump(2)));
  std::ostringstream os;
  print_attribution(os, phases);
  EXPECT_NE(os.str().find("pool.task"), std::string::npos);
}

TEST(Attribution, EmptyInputsYieldEmptyReport) {
  const auto phases = attribute_costs({}, RegistrySnapshot{});
  EXPECT_TRUE(phases.empty());
  std::ostringstream os;
  print_attribution(os, phases);  // header-only table, no crash
}

}  // namespace
}  // namespace mlck::obs

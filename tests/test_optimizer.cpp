#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/dauwe_model.h"
#include "core/optimizer.h"
#include "engine/evaluation.h"
#include "models/daly.h"
#include "models/moody.h"
#include "systems/scaling.h"
#include "systems/test_systems.h"

namespace mlck::core {
namespace {

TEST(CountLadder, DenseLowEndGeometricTail) {
  const auto ladder = count_ladder(128);
  ASSERT_GE(ladder.size(), 10u);
  // Every small count is present exactly.
  for (int v = 0; v <= 8; ++v) EXPECT_EQ(ladder[std::size_t(v)], v);
  // Strictly ascending, bounded, with bounded relative gaps.
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_GT(ladder[i], ladder[i - 1]);
    EXPECT_LE(ladder[i], 128);
    EXPECT_LE(ladder[i], ladder[i - 1] * 5 / 4 + 1);
  }
}

TEST(CountLadder, TinyMax) {
  EXPECT_EQ(count_ladder(0), std::vector<int>{0});
  EXPECT_EQ(count_ladder(2), (std::vector<int>{0, 1, 2}));
}

TEST(Optimizer, SingleLevelRecoversDalyOptimum) {
  // On a pure single-level problem the Dauwe model is Daly-like, so the
  // optimizer's tau should be close to Daly's closed form and the
  // achieved expected time at least as good.
  const auto sys = systems::SystemConfig::from_table_row(
      "single", 1, 100.0, {1.0}, {2.0}, 1000.0);
  const DauweModel model;
  const auto result = optimize_intervals(model, sys);
  const double daly_tau = models::daly_optimal_interval(2.0, 100.0);
  EXPECT_NEAR(result.plan.tau0 / daly_tau, 1.0, 0.25);
  // The optimum is flat near tau*; expected time must be within 1% of the
  // model evaluated at Daly's tau.
  const auto daly_plan = CheckpointPlan::single_level(daly_tau, 0);
  EXPECT_LE(result.expected_time,
            model.expected_time(sys, daly_plan) * 1.01);
}

TEST(Optimizer, MatchesDenseBruteForceOnTwoLevels) {
  const auto sys = systems::table1_system("D3");
  const DauweModel model;
  const auto result = optimize_intervals(model, sys);

  // Dense reference sweep (feasible because L = 2).
  double best = std::numeric_limits<double>::infinity();
  for (int ti = 0; ti < 2000; ++ti) {
    const double tau = 0.05 + 0.02 * ti;  // 0.05 .. 40.05 min
    for (int n = 0; n <= 80; ++n) {
      const auto plan = CheckpointPlan::full_hierarchy(tau, {n});
      best = std::min(best, model.expected_time(sys, plan));
    }
  }
  EXPECT_LE(result.expected_time, best * 1.005);
}

TEST(Optimizer, ResultIsFeasibleAndConsistent) {
  const auto sys = systems::table1_system("B");
  const DauweModel model;
  const auto result = optimize_intervals(model, sys);
  EXPECT_NO_THROW(result.plan.validate(sys));
  EXPECT_TRUE(std::isfinite(result.expected_time));
  EXPECT_NEAR(result.expected_time,
              model.expected_time(sys, result.plan), 1e-9);
  EXPECT_NEAR(result.efficiency, sys.base_time / result.expected_time,
              1e-12);
  EXPECT_GT(result.evaluations, 1000u);
  // The pattern bound of Sec. III-C holds.
  EXPECT_LE(result.plan.work_per_top_period(), sys.base_time);
}

TEST(Optimizer, DeterministicAcrossThreadCounts) {
  const auto sys = systems::table1_system("D5");
  const DauweModel model;
  const auto serial = optimize_intervals(model, sys);
  util::ThreadPool pool(3);
  const auto parallel = optimize_intervals(model, sys, {}, &pool);
  EXPECT_DOUBLE_EQ(serial.expected_time, parallel.expected_time);
  EXPECT_DOUBLE_EQ(serial.plan.tau0, parallel.plan.tau0);
  EXPECT_EQ(serial.plan.counts, parallel.plan.counts);
  EXPECT_EQ(serial.plan.levels, parallel.plan.levels);
}

TEST(Optimizer, RestrictLevelsHonored) {
  const auto sys = systems::table1_system("B");
  const DauweModel model;
  OptimizerOptions opts;
  opts.restrict_levels = {2, 3};
  const auto result = optimize_intervals(model, sys, opts);
  EXPECT_EQ(result.plan.levels, (std::vector<int>{2, 3}));
  EXPECT_EQ(result.plan.counts.size(), 1u);
}

TEST(Optimizer, ShortApplicationDropsTheExpensiveTopLevel) {
  // Sec. IV-F: a 30-minute application on the scaled-B system with a
  // 20-minute PFS checkpoint should not take PFS checkpoints at all.
  const auto sys = systems::scaled_system_b(9.0, 20.0, 30.0);
  const DauweModel model;
  const auto result = optimize_intervals(model, sys);
  EXPECT_LT(result.plan.top_system_level(), 3);
}

TEST(Optimizer, SuffixSkippingCanBeDisabled) {
  const auto sys = systems::scaled_system_b(9.0, 20.0, 30.0);
  const DauweModel model;
  OptimizerOptions opts;
  opts.allow_suffix_skipping = false;
  const auto result = optimize_intervals(model, sys, opts);
  EXPECT_EQ(result.plan.top_system_level(), 3);
  EXPECT_EQ(result.plan.levels.size(), 4u);
}

TEST(Optimizer, SkippingNeverHurtsTheObjective) {
  for (const char* name : {"D1", "D8"}) {
    const auto sys = systems::table1_system(name);
    const DauweModel model;
    OptimizerOptions all_levels;
    all_levels.allow_suffix_skipping = false;
    const auto fixed = optimize_intervals(model, sys, all_levels);
    const auto free = optimize_intervals(model, sys);
    EXPECT_LE(free.expected_time, fixed.expected_time * (1.0 + 1e-9))
        << name;
  }
}

TEST(Optimizer, ThrowsWhenEveryPlanIsInfeasible) {
  // The Moody model rejects plans that leave severities uncovered; with
  // the level set pinned to the bottom level only, nothing is feasible.
  const auto sys = systems::table1_system("D1");
  const models::MoodyModel model;
  OptimizerOptions opts;
  opts.restrict_levels = {0};
  EXPECT_THROW(optimize_intervals(model, sys, opts), std::runtime_error);
}

TEST(Optimizer, FactoryOverloadMatchesModelOverloadExactly) {
  // optimize_intervals_with is the hook the engine layer uses; a factory
  // whose cost function simply calls the model must reproduce the model
  // overload bit for bit — same plan, same expected time, and the same
  // number of evaluations (proving identical sweep/pruning/refinement).
  for (const char* name : {"M", "B", "D5"}) {
    const auto sys = systems::table1_system(name);
    const DauweModel model;
    const SubsetEvaluatorFactory factory =
        [&](const std::vector<int>& levels) -> PlanCostFn {
      (void)levels;
      return [&](const CheckpointPlan& plan) {
        return model.expected_time(sys, plan);
      };
    };
    const auto direct = optimize_intervals(model, sys);
    const auto hooked = optimize_intervals_with(factory, sys);
    EXPECT_EQ(direct.plan.tau0, hooked.plan.tau0) << name;
    EXPECT_EQ(direct.plan.counts, hooked.plan.counts) << name;
    EXPECT_EQ(direct.plan.levels, hooked.plan.levels) << name;
    EXPECT_EQ(direct.expected_time, hooked.expected_time) << name;
    EXPECT_EQ(direct.evaluations, hooked.evaluations) << name;
  }
}

TEST(Optimizer, FactoryIsCalledOncePerLevelSubset) {
  const auto sys = systems::table1_system("B");  // 4 levels, suffix skipping
  const DauweModel model;
  std::vector<std::vector<int>> subsets;
  const SubsetEvaluatorFactory factory =
      [&](const std::vector<int>& levels) -> PlanCostFn {
    subsets.push_back(levels);
    return [&](const CheckpointPlan& plan) {
      return model.expected_time(sys, plan);
    };
  };
  optimize_intervals_with(factory, sys);
  // Full hierarchy plus each suffix-skipped subset, each visited once.
  EXPECT_EQ(subsets.size(), 4u);
  for (std::size_t i = 1; i < subsets.size(); ++i) {
    EXPECT_NE(subsets[i], subsets[i - 1]);
  }
}

TEST(Optimizer, SweptPlusPrunedCoversTheFullCoarseLattice) {
  // plans_pruned counts *leaf plans* eliminated by the feasibility bound,
  // so together with plans_swept it must account for every point of the
  // coarse lattice: tau points x ladder^dims, summed over level subsets.
  const auto sys = systems::table1_system("B");  // 4 levels, suffix skipping
  OptimizerOptions opts;
  opts.coarse_tau_points = 24;  // smaller grid, same invariant

  const std::size_t rungs = count_ladder(opts.max_count).size();
  std::size_t lattice = 0;
  for (int dims = 0; dims < sys.levels(); ++dims) {
    std::size_t leaves = 1;
    for (int d = 0; d < dims; ++d) leaves *= rungs;
    lattice += static_cast<std::size_t>(opts.coarse_tau_points) * leaves;
  }

  obs::Counter swept;
  obs::Counter pruned;
  OptimizerMetrics metrics;
  metrics.plans_swept = &swept;
  metrics.plans_pruned = &pruned;
  opts.metrics = &metrics;
  const DauweModel model;
  optimize_intervals(model, sys, opts);
  EXPECT_GT(swept.value(), 0u);
  EXPECT_GT(pruned.value(), 0u);
  EXPECT_EQ(swept.value() + pruned.value(), lattice);

  // The staged engine path accounts for the identical lattice.
  obs::Counter staged_swept;
  obs::Counter staged_pruned;
  metrics.plans_swept = &staged_swept;
  metrics.plans_pruned = &staged_pruned;
  const engine::EvaluationEngine eng(sys);
  eng.optimize(opts);
  EXPECT_EQ(staged_swept.value(), swept.value());
  EXPECT_EQ(staged_pruned.value(), pruned.value());
}

TEST(Optimizer, RefinementImprovesOnCoarsePass) {
  // With refinement disabled the objective can only be worse or equal.
  const auto sys = systems::table1_system("D7");
  const DauweModel model;
  OptimizerOptions no_refine;
  no_refine.refine_rounds = 0;
  const auto coarse = optimize_intervals(model, sys, no_refine);
  const auto refined = optimize_intervals(model, sys);
  EXPECT_LE(refined.expected_time, coarse.expected_time + 1e-9);
}

}  // namespace
}  // namespace mlck::core

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "core/dauwe_model.h"
#include "core/optimizer.h"
#include "engine/evaluation.h"
#include "models/daly.h"
#include "models/moody.h"
#include "systems/scaling.h"
#include "systems/test_systems.h"

namespace mlck::core {
namespace {

TEST(CountLadder, DenseLowEndGeometricTail) {
  const auto ladder = count_ladder(128);
  ASSERT_GE(ladder.size(), 10u);
  // Every small count is present exactly.
  for (int v = 0; v <= 8; ++v) EXPECT_EQ(ladder[std::size_t(v)], v);
  // Strictly ascending, bounded, with bounded relative gaps.
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_GT(ladder[i], ladder[i - 1]);
    EXPECT_LE(ladder[i], 128);
    EXPECT_LE(ladder[i], ladder[i - 1] * 5 / 4 + 1);
  }
}

TEST(CountLadder, TinyMax) {
  EXPECT_EQ(count_ladder(0), std::vector<int>{0});
  EXPECT_EQ(count_ladder(2), (std::vector<int>{0, 1, 2}));
}

TEST(Optimizer, SingleLevelRecoversDalyOptimum) {
  // On a pure single-level problem the Dauwe model is Daly-like, so the
  // optimizer's tau should be close to Daly's closed form and the
  // achieved expected time at least as good.
  const auto sys = systems::SystemConfig::from_table_row(
      "single", 1, 100.0, {1.0}, {2.0}, 1000.0);
  const DauweModel model;
  const auto result = optimize_intervals(model, sys);
  const double daly_tau = models::daly_optimal_interval(2.0, 100.0);
  EXPECT_NEAR(result.plan.tau0 / daly_tau, 1.0, 0.25);
  // The optimum is flat near tau*; expected time must be within 1% of the
  // model evaluated at Daly's tau.
  const auto daly_plan = CheckpointPlan::single_level(daly_tau, 0);
  EXPECT_LE(result.expected_time,
            model.expected_time(sys, daly_plan) * 1.01);
}

TEST(Optimizer, MatchesDenseBruteForceOnTwoLevels) {
  const auto sys = systems::table1_system("D3");
  const DauweModel model;
  const auto result = optimize_intervals(model, sys);

  // Dense reference sweep (feasible because L = 2).
  double best = std::numeric_limits<double>::infinity();
  for (int ti = 0; ti < 2000; ++ti) {
    const double tau = 0.05 + 0.02 * ti;  // 0.05 .. 40.05 min
    for (int n = 0; n <= 80; ++n) {
      const auto plan = CheckpointPlan::full_hierarchy(tau, {n});
      best = std::min(best, model.expected_time(sys, plan));
    }
  }
  EXPECT_LE(result.expected_time, best * 1.005);
}

TEST(Optimizer, ResultIsFeasibleAndConsistent) {
  const auto sys = systems::table1_system("B");
  const DauweModel model;
  const auto result = optimize_intervals(model, sys);
  EXPECT_NO_THROW(result.plan.validate(sys));
  EXPECT_TRUE(std::isfinite(result.expected_time));
  EXPECT_NEAR(result.expected_time,
              model.expected_time(sys, result.plan), 1e-9);
  EXPECT_NEAR(result.efficiency, sys.base_time / result.expected_time,
              1e-12);
  EXPECT_GT(result.evaluations, 1000u);
  // The pattern bound of Sec. III-C holds.
  EXPECT_LE(result.plan.work_per_top_period(), sys.base_time);
}

TEST(Optimizer, DeterministicAcrossThreadCounts) {
  const auto sys = systems::table1_system("D5");
  const DauweModel model;
  const auto serial = optimize_intervals(model, sys);
  util::ThreadPool pool(3);
  const auto parallel = optimize_intervals(model, sys, {}, &pool);
  EXPECT_DOUBLE_EQ(serial.expected_time, parallel.expected_time);
  EXPECT_DOUBLE_EQ(serial.plan.tau0, parallel.plan.tau0);
  EXPECT_EQ(serial.plan.counts, parallel.plan.counts);
  EXPECT_EQ(serial.plan.levels, parallel.plan.levels);
}

TEST(Optimizer, RestrictLevelsHonored) {
  const auto sys = systems::table1_system("B");
  const DauweModel model;
  OptimizerOptions opts;
  opts.restrict_levels = {2, 3};
  const auto result = optimize_intervals(model, sys, opts);
  EXPECT_EQ(result.plan.levels, (std::vector<int>{2, 3}));
  EXPECT_EQ(result.plan.counts.size(), 1u);
}

TEST(Optimizer, ShortApplicationDropsTheExpensiveTopLevel) {
  // Sec. IV-F: a 30-minute application on the scaled-B system with a
  // 20-minute PFS checkpoint should not take PFS checkpoints at all.
  const auto sys = systems::scaled_system_b(9.0, 20.0, 30.0);
  const DauweModel model;
  const auto result = optimize_intervals(model, sys);
  EXPECT_LT(result.plan.top_system_level(), 3);
}

TEST(Optimizer, SuffixSkippingCanBeDisabled) {
  const auto sys = systems::scaled_system_b(9.0, 20.0, 30.0);
  const DauweModel model;
  OptimizerOptions opts;
  opts.allow_suffix_skipping = false;
  const auto result = optimize_intervals(model, sys, opts);
  EXPECT_EQ(result.plan.top_system_level(), 3);
  EXPECT_EQ(result.plan.levels.size(), 4u);
}

TEST(Optimizer, SkippingNeverHurtsTheObjective) {
  for (const char* name : {"D1", "D8"}) {
    const auto sys = systems::table1_system(name);
    const DauweModel model;
    OptimizerOptions all_levels;
    all_levels.allow_suffix_skipping = false;
    const auto fixed = optimize_intervals(model, sys, all_levels);
    const auto free = optimize_intervals(model, sys);
    EXPECT_LE(free.expected_time, fixed.expected_time * (1.0 + 1e-9))
        << name;
  }
}

TEST(Optimizer, ThrowsWhenEveryPlanIsInfeasible) {
  // The Moody model rejects plans that leave severities uncovered; with
  // the level set pinned to the bottom level only, nothing is feasible.
  const auto sys = systems::table1_system("D1");
  const models::MoodyModel model;
  OptimizerOptions opts;
  opts.restrict_levels = {0};
  EXPECT_THROW(optimize_intervals(model, sys, opts), std::runtime_error);
}

TEST(Optimizer, FactoryOverloadMatchesModelOverloadExactly) {
  // optimize_intervals_with is the hook the engine layer uses; a factory
  // whose cost function simply calls the model must reproduce the model
  // overload bit for bit — same plan, same expected time, and the same
  // number of evaluations (proving identical sweep/pruning/refinement).
  for (const char* name : {"M", "B", "D5"}) {
    const auto sys = systems::table1_system(name);
    const DauweModel model;
    const SubsetEvaluatorFactory factory =
        [&](const std::vector<int>& levels) -> PlanCostFn {
      (void)levels;
      return [&](const CheckpointPlan& plan) {
        return model.expected_time(sys, plan);
      };
    };
    const auto direct = optimize_intervals(model, sys);
    const auto hooked = optimize_intervals_with(factory, sys);
    EXPECT_EQ(direct.plan.tau0, hooked.plan.tau0) << name;
    EXPECT_EQ(direct.plan.counts, hooked.plan.counts) << name;
    EXPECT_EQ(direct.plan.levels, hooked.plan.levels) << name;
    EXPECT_EQ(direct.expected_time, hooked.expected_time) << name;
    EXPECT_EQ(direct.evaluations, hooked.evaluations) << name;
  }
}

TEST(Optimizer, FactoryIsCalledOncePerLevelSubset) {
  const auto sys = systems::table1_system("B");  // 4 levels, suffix skipping
  const DauweModel model;
  std::vector<std::vector<int>> subsets;
  const SubsetEvaluatorFactory factory =
      [&](const std::vector<int>& levels) -> PlanCostFn {
    subsets.push_back(levels);
    return [&](const CheckpointPlan& plan) {
      return model.expected_time(sys, plan);
    };
  };
  optimize_intervals_with(factory, sys);
  // Full hierarchy plus each suffix-skipped subset, each visited once.
  EXPECT_EQ(subsets.size(), 4u);
  for (std::size_t i = 1; i < subsets.size(); ++i) {
    EXPECT_NE(subsets[i], subsets[i - 1]);
  }
}

TEST(Optimizer, SweptPlusPrunedCoversTheFullCoarseLattice) {
  // plans_pruned / plans_pruned_bound count *leaf plans* eliminated by
  // the feasibility cut and the admissible subtree bound, so together
  // with plans_swept they must account for every point of the coarse
  // lattice: tau points x ladder^dims, summed over level subsets.
  const auto sys = systems::table1_system("B");  // 4 levels, suffix skipping
  OptimizerOptions opts;
  opts.coarse_tau_points = 24;  // smaller grid, same invariant

  const std::size_t rungs = count_ladder(opts.max_count).size();
  std::size_t lattice = 0;
  for (int dims = 0; dims < sys.levels(); ++dims) {
    std::size_t leaves = 1;
    for (int d = 0; d < dims; ++d) leaves *= rungs;
    lattice += static_cast<std::size_t>(opts.coarse_tau_points) * leaves;
  }

  obs::Counter swept;
  obs::Counter pruned;
  obs::Counter pruned_bound;
  OptimizerMetrics metrics;
  metrics.plans_swept = &swept;
  metrics.plans_pruned = &pruned;
  metrics.plans_pruned_bound = &pruned_bound;
  opts.metrics = &metrics;
  const DauweModel model;
  const auto generic = optimize_intervals(model, sys, opts);
  EXPECT_GT(swept.value(), 0u);
  EXPECT_GT(pruned.value(), 0u);
  // The per-plan path never bound-prunes (no kernel to bound with).
  EXPECT_EQ(pruned_bound.value(), 0u);
  EXPECT_EQ(swept.value() + pruned.value(), lattice);
  // The result mirrors the counters.
  EXPECT_EQ(generic.coarse_evaluations, swept.value());
  EXPECT_EQ(generic.pruned_feasibility, pruned.value());
  EXPECT_EQ(generic.pruned_bound, 0u);

  // The structurally-identical staged path (lanes and pruning off)
  // accounts for the identical lattice with identical counters.
  OptimizerOptions exact = opts;
  exact.lane_batch = false;
  exact.prune = false;
  obs::Counter staged_swept;
  obs::Counter staged_pruned;
  obs::Counter staged_pruned_bound;
  metrics.plans_swept = &staged_swept;
  metrics.plans_pruned = &staged_pruned;
  metrics.plans_pruned_bound = &staged_pruned_bound;
  exact.metrics = &metrics;
  const engine::EvaluationEngine eng(sys);
  eng.optimize(exact);
  EXPECT_EQ(staged_swept.value(), swept.value());
  EXPECT_EQ(staged_pruned.value(), pruned.value());
  EXPECT_EQ(staged_pruned_bound.value(), 0u);

  // The default lane-batched pruned sweep trades evaluations for bound
  // cuts but still tiles the same lattice exactly — and returns the
  // identical winner.
  obs::Counter lane_swept;
  obs::Counter lane_pruned;
  obs::Counter lane_pruned_bound;
  metrics.plans_swept = &lane_swept;
  metrics.plans_pruned = &lane_pruned;
  metrics.plans_pruned_bound = &lane_pruned_bound;
  opts.metrics = &metrics;
  const auto lanes = eng.optimize(opts);
  EXPECT_GT(lane_pruned_bound.value(), 0u);
  EXPECT_LT(lane_swept.value(), swept.value());
  EXPECT_EQ(
      lane_swept.value() + lane_pruned.value() + lane_pruned_bound.value(),
      lattice);
  EXPECT_EQ(lanes.coarse_evaluations + lanes.pruned_feasibility +
                lanes.pruned_bound,
            lattice);
  EXPECT_EQ(lanes.plan.tau0, generic.plan.tau0);
  EXPECT_EQ(lanes.plan.levels, generic.plan.levels);
  EXPECT_EQ(lanes.plan.counts, generic.plan.counts);
  EXPECT_EQ(lanes.expected_time, generic.expected_time);
}

TEST(Optimizer, ValidatesOptionsUpFrontNamingTheOffendingField) {
  const auto sys = systems::table1_system("B");
  const DauweModel model;

  // tau_min at or above the grid's upper edge used to silently produce a
  // descending / duplicate-point log grid; now it must throw and name
  // both the field and the edge.
  OptimizerOptions opts;
  opts.tau_min = sys.base_time;
  try {
    optimize_intervals(model, sys, opts);
    FAIL() << "expected std::invalid_argument for degenerate tau grid";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("tau_min"), std::string::npos) << msg;
    EXPECT_NE(msg.find("base_time"), std::string::npos) << msg;
    EXPECT_NE(msg.find(sys.name), std::string::npos) << msg;
  }
  // The boundary itself is rejected too (equal lo/hi grid edges).
  opts.tau_min = sys.base_time * (1.0 - 1e-9);
  EXPECT_THROW(optimize_intervals(model, sys, opts),
               std::invalid_argument);

  opts = OptimizerOptions{};
  opts.coarse_tau_points = 0;
  EXPECT_THROW(optimize_intervals(model, sys, opts),
               std::invalid_argument);
  opts = OptimizerOptions{};
  opts.tau_min = 0.0;
  EXPECT_THROW(optimize_intervals(model, sys, opts),
               std::invalid_argument);
  opts = OptimizerOptions{};
  opts.max_count = -1;
  EXPECT_THROW(optimize_intervals(model, sys, opts),
               std::invalid_argument);
  opts = OptimizerOptions{};
  opts.refine_rounds = -1;
  EXPECT_THROW(optimize_intervals(model, sys, opts),
               std::invalid_argument);

  // The staged engine entry point validates identically.
  opts = OptimizerOptions{};
  opts.tau_min = sys.base_time * 2.0;
  const engine::EvaluationEngine eng(sys);
  EXPECT_THROW(eng.optimize(opts), std::invalid_argument);
}

/// Adversarial model for the refinement feasibility guard: finite and
/// strictly decreasing in every pattern count — even past the
/// tau0 * prod(N_j + 1) <= T_B bound, where honest models return +inf.
/// Nothing in the ExecutionTimeModel contract forbids this; only the
/// search's own guard keeps such a model from stepping refinement onto
/// an infeasible winner.
struct CountGreedyModel final : ExecutionTimeModel {
  double expected_time(const systems::SystemConfig& system,
                       const CheckpointPlan& plan) const override {
    double sum = 0.0;
    for (const int n : plan.counts) sum += n;
    // Monotone in the counts and independent of tau0: more checkpoints
    // of any level always "help", so refinement wants to walk up the
    // counts forever while tau0 stays pinned at the coarse winner
    // (tau steps never *strictly* improve).
    return system.base_time * (1.0 + 1.0 / (2.0 + sum));
  }
};

TEST(Optimizer, RefinementNeverStepsOntoAnInfeasiblePlan) {
  // Regression test for the unguarded refinement pass: the coarse sweep
  // enforces tau0 * prod(N_j + 1) <= T_B, but the count-stepping (and
  // tau-stepping) refinement loops did not, so with CountGreedyModel the
  // +1/+2/+4 steps marched past the boundary and the returned winner was
  // an infeasible plan (pattern period exceeding the base time). With
  // the guard, every stepped candidate passes the same bound as the
  // coarse sweep and the winner stays feasible.
  const auto sys = systems::SystemConfig::from_table_row(
      "guard", 2, 1000.0, {0.5, 0.5}, {0.5, 1.0}, 100.0);
  const CountGreedyModel model;
  OptimizerOptions opts;
  // A coarse grid whose lowest tau0 leaves the feasibility boundary well
  // below max_count: at tau0 = 2, only prod(N+1) <= 50 is feasible, so
  // the unguarded count steps have plenty of infeasible headroom to
  // "improve" into before hitting the max_count backstop.
  opts.tau_min = 2.0;
  opts.coarse_tau_points = 8;
  opts.max_count = 128;
  const auto result = optimize_intervals(model, sys, opts);
  EXPECT_LE(result.plan.work_per_top_period(),
            sys.base_time * (1.0 + 1e-12))
      << "refinement returned an infeasible plan: "
      << result.plan.to_string();
  EXPECT_TRUE(std::isfinite(result.expected_time));
}

TEST(Optimizer, RefinementImprovesOnCoarsePass) {
  // With refinement disabled the objective can only be worse or equal.
  const auto sys = systems::table1_system("D7");
  const DauweModel model;
  OptimizerOptions no_refine;
  no_refine.refine_rounds = 0;
  const auto coarse = optimize_intervals(model, sys, no_refine);
  const auto refined = optimize_intervals(model, sys);
  EXPECT_LE(refined.expected_time, coarse.expected_time + 1e-9);
}

}  // namespace
}  // namespace mlck::core

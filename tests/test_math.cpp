#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>

#include "math/exponential.h"
#include "math/retry.h"
#include "math/simd.h"

namespace mlck::math {
namespace {

TEST(FailureProbability, ZeroForNonPositiveInputs) {
  EXPECT_EQ(failure_probability(0.0, 1.0), 0.0);
  EXPECT_EQ(failure_probability(-1.0, 1.0), 0.0);
  EXPECT_EQ(failure_probability(1.0, 0.0), 0.0);
  EXPECT_EQ(failure_probability(1.0, -2.0), 0.0);
}

TEST(FailureProbability, MatchesClosedForm) {
  EXPECT_NEAR(failure_probability(1.0, 1.0), 1.0 - std::exp(-1.0), 1e-15);
  EXPECT_NEAR(failure_probability(2.5, 0.4), 1.0 - std::exp(-1.0), 1e-15);
  EXPECT_NEAR(failure_probability(10.0, 3.0), 1.0 - std::exp(-30.0), 1e-15);
}

TEST(FailureProbability, PreciseForTinyRates) {
  // 1 - e^{-u} ~= u for tiny u; the naive 1.0 - exp(-u) would round to 0.
  const double p = failure_probability(1.0, 1e-18);
  EXPECT_NEAR(p, 1e-18, 1e-33);
  EXPECT_GT(p, 0.0);
}

TEST(FailureProbability, MonotoneInDurationAndRate) {
  double prev = 0.0;
  for (double t = 0.1; t < 50.0; t *= 1.7) {
    const double p = failure_probability(t, 0.3);
    EXPECT_GT(p, prev);
    prev = p;
  }
  prev = 0.0;
  for (double rate = 1e-3; rate < 10.0; rate *= 2.0) {
    const double p = failure_probability(2.0, rate);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(Survival, ComplementsFailureProbability) {
  for (double t : {0.01, 0.5, 3.0, 40.0}) {
    for (double rate : {1e-4, 0.1, 2.0}) {
      EXPECT_NEAR(survival(t, rate) + failure_probability(t, rate), 1.0,
                  1e-12);
    }
  }
}

/// Numeric-integration oracle for the truncated-exponential mean:
/// integral of x f(x) over [0,t] divided by P(t).
double truncated_mean_oracle(double t, double rate) {
  const int n = 400000;
  const double h = t / n;
  double num = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = (i + 0.5) * h;
    num += x * rate * std::exp(-rate * x) * h;
  }
  return num / (1.0 - std::exp(-rate * t));
}

TEST(TruncatedMean, MatchesNumericIntegration) {
  for (double t : {0.5, 2.0, 10.0}) {
    for (double rate : {0.05, 0.5, 2.0}) {
      EXPECT_NEAR(truncated_mean(t, rate), truncated_mean_oracle(t, rate),
                  1e-6)
          << "t=" << t << " rate=" << rate;
    }
  }
}

TEST(TruncatedMean, UniformLimitForVanishingRate) {
  EXPECT_NEAR(truncated_mean(8.0, 0.0), 4.0, 1e-12);
  EXPECT_NEAR(truncated_mean(8.0, 1e-12), 4.0, 1e-6);
}

TEST(TruncatedMean, ApproachesFullMeanForLongWindows) {
  // As t -> inf the truncation becomes irrelevant: E -> 1/X.
  EXPECT_NEAR(truncated_mean(1e6, 0.5), 2.0, 1e-9);
}

TEST(TruncatedMean, AlwaysBelowHalfWindowNeverNegative) {
  // The exponential is front-loaded, so E(t, X) <= t/2 always.
  for (double t : {1e-6, 0.1, 1.0, 100.0}) {
    for (double rate : {1e-9, 1e-3, 1.0, 50.0}) {
      const double e = truncated_mean(t, rate);
      EXPECT_GE(e, 0.0);
      EXPECT_LE(e, t / 2.0 + 1e-12) << "t=" << t << " rate=" << rate;
    }
  }
}

TEST(TruncatedMean, SeriesBranchMatchesBernoulliExpansion) {
  // Below the u = 1e-4 switchover the implementation uses the series
  // E/t = 1/2 - u/12 + u^3/720; check it against the expansion evaluated
  // by hand, and check the closed-form branch just above the switchover
  // against the same expansion (where it is still accurate to ~1e-12).
  const double t = 1.0;
  for (const double u : {1e-6, 5e-5, 0.99e-4}) {
    const double series = 0.5 - u / 12.0 + u * u * u / 720.0;
    EXPECT_NEAR(truncated_mean(t, u), t * series, 1e-15);
  }
  const double u = 1.5e-4;
  const double series = 0.5 - u / 12.0 + u * u * u / 720.0;
  EXPECT_NEAR(truncated_mean(t, u), t * series, 1e-11);
}

TEST(TruncatedMean, ZeroWindow) {
  EXPECT_EQ(truncated_mean(0.0, 1.0), 0.0);
  EXPECT_EQ(truncated_mean(-1.0, 1.0), 0.0);
}

TEST(ExpectedRetries, MatchesGeometricQuotient) {
  // expm1(Xt) must equal P/(1-P) with P = 1 - e^{-Xt}.
  for (double t : {0.1, 1.0, 5.0}) {
    for (double rate : {0.01, 0.3, 1.5}) {
      const double p = failure_probability(t, rate);
      EXPECT_NEAR(expected_retries(t, rate), p / (1.0 - p), 1e-9);
    }
  }
}

TEST(ExpectedRetries, ZeroForSafeOperations) {
  EXPECT_EQ(expected_retries(0.0, 5.0), 0.0);
  EXPECT_EQ(expected_retries(5.0, 0.0), 0.0);
}

TEST(ExpectedRetries, ScalesLinearlyWithCount) {
  EXPECT_NEAR(expected_retries(2.0, 0.1, 7.0),
              7.0 * expected_retries(2.0, 0.1), 1e-12);
}

TEST(ExpectedRetries, DivergesForHopelessOperations) {
  // An operation lasting 1000 MTBFs essentially never completes.
  EXPECT_TRUE(std::isinf(expected_retries(1000.0, 1.0)));
}

// ---------------------------------------------------------------------
// simd.h — the 8-lane wrapper the pruned sweep's bound math runs on.
// Whatever backend compiled in (AVX2, NEON, scalar), every op must
// agree with plain scalar double arithmetic lane by lane; the sweep's
// winner bit-identity contract depends on the *mask* semantics only,
// but lane-exactness keeps the bound admissible on every backend.

Vec8d iota(double scale, double offset) {
  Vec8d v;
  for (int l = 0; l < kSimdLanes; ++l) {
    v.lane[l] = scale * static_cast<double>(l) + offset;
  }
  return v;
}

TEST(Simd, LanewiseOpsMatchScalarArithmeticExactly) {
  const Vec8d a = iota(1.7, -3.2);
  const Vec8d b = iota(-0.9, 5.5);
  const Vec8d c = v8_splat(0.625);
  const Vec8d sum = v8_add(a, b);
  const Vec8d prod = v8_mul(a, b);
  const Vec8d quot = v8_div(a, b);
  const Vec8d fma = v8_fma(a, b, c);
  for (int l = 0; l < kSimdLanes; ++l) {
    EXPECT_EQ(sum.lane[l], a.lane[l] + b.lane[l]) << "lane " << l;
    EXPECT_EQ(prod.lane[l], a.lane[l] * b.lane[l]) << "lane " << l;
    EXPECT_EQ(quot.lane[l], a.lane[l] / b.lane[l]) << "lane " << l;
    // FMA may legitimately fuse (one rounding); allow either contracted
    // or unfused, but nothing else.
    const double unfused = a.lane[l] * b.lane[l] + c.lane[l];
    const double fused = std::fma(a.lane[l], b.lane[l], c.lane[l]);
    EXPECT_TRUE(fma.lane[l] == unfused || fma.lane[l] == fused)
        << "lane " << l;
  }
}

TEST(Simd, SplatAndLoadFillEveryLane) {
  const Vec8d s = v8_splat(42.5);
  const double src[kSimdLanes] = {1, 2, 3, 4, 5, 6, 7, 8};
  const Vec8d v = v8_load(src);
  for (int l = 0; l < kSimdLanes; ++l) {
    EXPECT_EQ(s.lane[l], 42.5);
    EXPECT_EQ(v.lane[l], src[l]);
  }
}

TEST(Simd, GreaterThanMaskSetsExactlyTheStrictLanes) {
  Vec8d a = v8_splat(0.0);
  Vec8d b = v8_splat(0.0);
  a.lane[0] = 1.0;                  // >   -> set
  a.lane[1] = -1.0;                 // <   -> clear
  a.lane[2] = 0.0;                  // ==  -> clear (strict)
  a.lane[3] = 7.0;  b.lane[3] = 7.0;  // == -> clear
  a.lane[4] = 1e300;                // >   -> set
  a.lane[5] = std::numeric_limits<double>::infinity();  // > -> set
  a.lane[6] = -0.0;                 // -0 == +0 -> clear
  a.lane[7] = 2.0;  b.lane[7] = 3.0;  // < -> clear
  const LaneMask m = v8_gt(a, b);
  EXPECT_EQ(m, LaneMask{0b00110001});
  // The scalar-threshold overload agrees.
  EXPECT_EQ(v8_gt(a, 0.0),
            (LaneMask{0b00110001} | LaneMask{1u << 3} | LaneMask{1u << 7}));
}

TEST(Simd, GreaterThanIsNanQuiet) {
  // The pruned sweep relies on NaN lanes never comparing greater: a
  // dead lane whose bound degenerates to NaN must stay unpruned (it
  // evaluates to +inf harmlessly) rather than cut a subtree it never
  // actually bounded.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Vec8d a = v8_splat(5.0);
  a.lane[2] = nan;
  a.lane[6] = nan;
  Vec8d b = v8_splat(1.0);
  EXPECT_EQ(v8_gt(a, b), LaneMask{0b10111011});
  b = v8_splat(nan);
  EXPECT_EQ(v8_gt(a, b), LaneMask{0});
  EXPECT_EQ(v8_gt(a, nan), LaneMask{0});
}

}  // namespace
}  // namespace mlck::math

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "math/exponential.h"
#include "math/retry.h"

namespace mlck::math {
namespace {

TEST(FailureProbability, ZeroForNonPositiveInputs) {
  EXPECT_EQ(failure_probability(0.0, 1.0), 0.0);
  EXPECT_EQ(failure_probability(-1.0, 1.0), 0.0);
  EXPECT_EQ(failure_probability(1.0, 0.0), 0.0);
  EXPECT_EQ(failure_probability(1.0, -2.0), 0.0);
}

TEST(FailureProbability, MatchesClosedForm) {
  EXPECT_NEAR(failure_probability(1.0, 1.0), 1.0 - std::exp(-1.0), 1e-15);
  EXPECT_NEAR(failure_probability(2.5, 0.4), 1.0 - std::exp(-1.0), 1e-15);
  EXPECT_NEAR(failure_probability(10.0, 3.0), 1.0 - std::exp(-30.0), 1e-15);
}

TEST(FailureProbability, PreciseForTinyRates) {
  // 1 - e^{-u} ~= u for tiny u; the naive 1.0 - exp(-u) would round to 0.
  const double p = failure_probability(1.0, 1e-18);
  EXPECT_NEAR(p, 1e-18, 1e-33);
  EXPECT_GT(p, 0.0);
}

TEST(FailureProbability, MonotoneInDurationAndRate) {
  double prev = 0.0;
  for (double t = 0.1; t < 50.0; t *= 1.7) {
    const double p = failure_probability(t, 0.3);
    EXPECT_GT(p, prev);
    prev = p;
  }
  prev = 0.0;
  for (double rate = 1e-3; rate < 10.0; rate *= 2.0) {
    const double p = failure_probability(2.0, rate);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(Survival, ComplementsFailureProbability) {
  for (double t : {0.01, 0.5, 3.0, 40.0}) {
    for (double rate : {1e-4, 0.1, 2.0}) {
      EXPECT_NEAR(survival(t, rate) + failure_probability(t, rate), 1.0,
                  1e-12);
    }
  }
}

/// Numeric-integration oracle for the truncated-exponential mean:
/// integral of x f(x) over [0,t] divided by P(t).
double truncated_mean_oracle(double t, double rate) {
  const int n = 400000;
  const double h = t / n;
  double num = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = (i + 0.5) * h;
    num += x * rate * std::exp(-rate * x) * h;
  }
  return num / (1.0 - std::exp(-rate * t));
}

TEST(TruncatedMean, MatchesNumericIntegration) {
  for (double t : {0.5, 2.0, 10.0}) {
    for (double rate : {0.05, 0.5, 2.0}) {
      EXPECT_NEAR(truncated_mean(t, rate), truncated_mean_oracle(t, rate),
                  1e-6)
          << "t=" << t << " rate=" << rate;
    }
  }
}

TEST(TruncatedMean, UniformLimitForVanishingRate) {
  EXPECT_NEAR(truncated_mean(8.0, 0.0), 4.0, 1e-12);
  EXPECT_NEAR(truncated_mean(8.0, 1e-12), 4.0, 1e-6);
}

TEST(TruncatedMean, ApproachesFullMeanForLongWindows) {
  // As t -> inf the truncation becomes irrelevant: E -> 1/X.
  EXPECT_NEAR(truncated_mean(1e6, 0.5), 2.0, 1e-9);
}

TEST(TruncatedMean, AlwaysBelowHalfWindowNeverNegative) {
  // The exponential is front-loaded, so E(t, X) <= t/2 always.
  for (double t : {1e-6, 0.1, 1.0, 100.0}) {
    for (double rate : {1e-9, 1e-3, 1.0, 50.0}) {
      const double e = truncated_mean(t, rate);
      EXPECT_GE(e, 0.0);
      EXPECT_LE(e, t / 2.0 + 1e-12) << "t=" << t << " rate=" << rate;
    }
  }
}

TEST(TruncatedMean, SeriesBranchMatchesBernoulliExpansion) {
  // Below the u = 1e-4 switchover the implementation uses the series
  // E/t = 1/2 - u/12 + u^3/720; check it against the expansion evaluated
  // by hand, and check the closed-form branch just above the switchover
  // against the same expansion (where it is still accurate to ~1e-12).
  const double t = 1.0;
  for (const double u : {1e-6, 5e-5, 0.99e-4}) {
    const double series = 0.5 - u / 12.0 + u * u * u / 720.0;
    EXPECT_NEAR(truncated_mean(t, u), t * series, 1e-15);
  }
  const double u = 1.5e-4;
  const double series = 0.5 - u / 12.0 + u * u * u / 720.0;
  EXPECT_NEAR(truncated_mean(t, u), t * series, 1e-11);
}

TEST(TruncatedMean, ZeroWindow) {
  EXPECT_EQ(truncated_mean(0.0, 1.0), 0.0);
  EXPECT_EQ(truncated_mean(-1.0, 1.0), 0.0);
}

TEST(ExpectedRetries, MatchesGeometricQuotient) {
  // expm1(Xt) must equal P/(1-P) with P = 1 - e^{-Xt}.
  for (double t : {0.1, 1.0, 5.0}) {
    for (double rate : {0.01, 0.3, 1.5}) {
      const double p = failure_probability(t, rate);
      EXPECT_NEAR(expected_retries(t, rate), p / (1.0 - p), 1e-9);
    }
  }
}

TEST(ExpectedRetries, ZeroForSafeOperations) {
  EXPECT_EQ(expected_retries(0.0, 5.0), 0.0);
  EXPECT_EQ(expected_retries(5.0, 0.0), 0.0);
}

TEST(ExpectedRetries, ScalesLinearlyWithCount) {
  EXPECT_NEAR(expected_retries(2.0, 0.1, 7.0),
              7.0 * expected_retries(2.0, 0.1), 1e-12);
}

TEST(ExpectedRetries, DivergesForHopelessOperations) {
  // An operation lasting 1000 MTBFs essentially never completes.
  EXPECT_TRUE(std::isinf(expected_retries(1000.0, 1.0)));
}

}  // namespace
}  // namespace mlck::math

// End-to-end contract tests for mlckd: concurrent clients drive the
// daemon across the seven Table I example systems and all three failure
// laws, and every response must be byte-identical to the direct
// serve::evaluate path — cold, cache-warm, coalesced, or mid-drain.
// Also covers graceful shutdown (no dropped waiters, named rejection of
// new admissions) and the `mlck serve` / `--connect` CLI round trip.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "app/commands.h"
#include "core/serialize.h"
#include "obs/registry.h"
#include "serve/client.h"
#include "serve/request.h"
#include "serve/server.h"
#include "util/json.h"
#include "util/socket.h"

namespace mlck {
namespace {

using util::Json;

std::string test_socket(const char* tag) {
  return "/tmp/mlck_" + std::to_string(::getpid()) + "_" + tag + ".sock";
}

/// Table I coverage: the paper's two reference systems plus a spread of
/// the D-series scaling points.
const char* kSystems[] = {"B", "M", "D1", "D3", "D5", "D7", "D9"};

std::string failure_json(int law) {
  switch (law) {
    case 0: return "{\"law\":\"exponential\"}";
    case 1: return "{\"law\":\"weibull\",\"shape\":0.7}";
    default: return "{\"law\":\"lognormal\",\"sigma\":1.0}";
  }
}

/// Small sweep so 21 optimizer runs stay fast on one core; identity, not
/// plan quality, is under test.
const char* kOptimizer =
    "{\"coarse_tau_points\":16,\"max_count\":8,\"refine_rounds\":8}";

/// Builds the 7 x 3 request matrix, cycling the op so optimize, predict,
/// and scenario each cover every failure law and most systems.
std::vector<std::string> contract_requests() {
  std::vector<std::string> requests;
  int id = 0;
  for (std::size_t s = 0; s < std::size(kSystems); ++s) {
    for (int law = 0; law < 3; ++law) {
      const std::string system = kSystems[s];
      const std::string failure = failure_json(law);
      std::string body;
      switch ((static_cast<int>(s) + law) % 3) {
        case 0:
          body = "{\"op\":\"optimize\",\"id\":" + std::to_string(id) +
                 ",\"system\":\"" + system + "\",\"failure\":" + failure +
                 ",\"optimizer\":" + kOptimizer + "}";
          break;
        case 1:
          // levels=[0] counts=[] is valid for every system.
          body = "{\"op\":\"predict\",\"id\":" + std::to_string(id) +
                 ",\"system\":\"" + system + "\",\"failure\":" + failure +
                 ",\"plan\":{\"tau0\":60.0,\"levels\":[0],\"counts\":[]}}";
          break;
        default:
          body = "{\"op\":\"scenario\",\"id\":" + std::to_string(id) +
                 ",\"spec\":{\"system\":\"" + system +
                 "\",\"failure\":" + failure +
                 ",\"optimizer\":" + kOptimizer +
                 ",\"trials\":40,\"seed\":7}}";
          break;
      }
      requests.push_back(std::move(body));
      ++id;
    }
  }
  return requests;
}

/// The contract's right-hand side: what the daemon must answer, computed
/// without the daemon.
std::string direct_response(const std::string& request_text) {
  const serve::Request request =
      serve::Request::parse(Json::parse(request_text));
  return serve::ok_response(request.id, serve::evaluate(request));
}

TEST(ServeE2E, ConcurrentClientsMatchDirectEvaluationByteForByte) {
  const std::vector<std::string> requests = contract_requests();
  std::vector<std::string> expected(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    expected[i] = direct_response(requests[i]);
  }

  obs::MetricsRegistry registry;
  serve::ServerOptions options;
  options.socket_path = test_socket("e2e");
  options.threads = 1;
  options.registry = &registry;
  serve::Server server(options);

  // Cold phase: every request is sent twice, drawn from a shared work
  // list by 8 concurrent clients — duplicates either coalesce onto the
  // running job or hit the cache, and must be byte-identical either way.
  constexpr std::size_t kClients = 8;
  std::vector<std::size_t> work;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    work.push_back(i);
    work.push_back(i);
  }
  std::vector<std::string> responses(work.size());
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      serve::Client client(options.socket_path);
      for (std::size_t task = next.fetch_add(1); task < work.size();
           task = next.fetch_add(1)) {
        responses[task] = client.call_raw(requests[work[task]]);
      }
    });
  }
  for (auto& thread : clients) thread.join();
  for (std::size_t task = 0; task < work.size(); ++task) {
    SCOPED_TRACE("request " + requests[work[task]]);
    EXPECT_EQ(responses[task], expected[work[task]]);
  }

  // Warm phase: everything is cached now; replies must replay the cold
  // bytes exactly.
  {
    serve::Client client(options.socket_path);
    for (std::size_t i = 0; i < requests.size(); ++i) {
      SCOPED_TRACE("warm request " + requests[i]);
      EXPECT_EQ(client.call_raw(requests[i]), expected[i]);
    }
  }
  EXPECT_GE(registry.counter("serve.plan_cache.hits").value() +
                registry.counter("serve.coalesced").value(),
            requests.size());  // dups + warm pass never recompute
  EXPECT_LE(registry.counter("serve.jobs_executed").value(),
            requests.size());
  server.stop();
}

TEST(ServeE2E, DrainAnswersInFlightWorkAndRejectsNewAdmissions) {
  obs::MetricsRegistry registry;
  serve::ServerOptions options;
  options.socket_path = test_socket("drain");
  options.threads = 1;
  options.registry = &registry;
  serve::Server server(options);

  // A deliberately wide sweep so the job is still running when the drain
  // starts (the assertions hold either way — no timing dependence).
  const std::string long_request =
      "{\"op\":\"optimize\",\"id\":\"inflight\",\"system\":\"D9\","
      "\"optimizer\":{\"coarse_tau_points\":48,\"max_count\":32,"
      "\"refine_rounds\":16}}";
  std::string long_response;
  std::thread waiter([&] {
    serve::Client client(options.socket_path);
    long_response = client.call_raw(long_request);
  });

  // Admission is observable: the queue high-water mark moves when the
  // job is enqueued.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (registry.gauge("serve.queue_depth_high_water").value() < 1.0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "compute request was never admitted";
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  server.request_stop();
  EXPECT_TRUE(server.draining());

  // New compute admissions now fail with the named error; control ops
  // still answer.
  {
    serve::Client client(options.socket_path);
    const Json rejected = Json::parse(client.call_raw(
        "{\"op\":\"optimize\",\"id\":\"late\",\"system\":\"M\"}"));
    EXPECT_FALSE(rejected.at("ok").as_bool());
    EXPECT_EQ(rejected.at("error").at("code").as_string(), "shutting_down");
    EXPECT_EQ(rejected.at("id").as_string(), "late");
    const Json pong = Json::parse(client.call_raw("{\"op\":\"ping\"}"));
    EXPECT_TRUE(pong.at("ok").as_bool());
  }

  // The in-flight waiter is not dropped, and its answer still honors the
  // bit-identity contract.
  waiter.join();
  EXPECT_EQ(long_response, direct_response(long_request));

  // Cache hits bypass admission entirely, so a repeat of the drained
  // job's request is served even while shutting down.
  {
    serve::Client client(options.socket_path);
    EXPECT_EQ(client.call_raw(long_request), long_response);
  }
  EXPECT_EQ(registry.counter("serve.rejected_draining").value(), 1u);
  server.stop();  // must not deadlock; double stop must be harmless
  server.stop();
}

TEST(ServeE2E, ShutdownOpSignalsTheStopEventAndDrains) {
  serve::ServerOptions options;
  options.socket_path = test_socket("shutop");
  options.threads = 1;
  serve::Server server(options);

  serve::Client client(options.socket_path);
  const Json response =
      Json::parse(client.call_raw("{\"id\":9,\"op\":\"shutdown\"}"));
  EXPECT_TRUE(response.at("ok").as_bool());
  EXPECT_TRUE(response.at("result").at("stopping").as_bool());
  EXPECT_EQ(response.at("id").as_number(), 9.0);

  // The owning loop's wakeup fires, and the server reports draining.
  EXPECT_TRUE(util::wait_readable(server.stop_event_fd(), 5000));
  EXPECT_TRUE(server.draining());
  server.stop();
}

/// Joins the daemon thread even when an assertion or exception unwinds
/// the test body early: best-effort `shutdown` op first so the join
/// cannot hang, then join — a failing test reports as a failure instead
/// of std::terminate on a joinable thread.
struct DaemonGuard {
  std::thread thread;
  std::string socket;

  ~DaemonGuard() {
    if (!thread.joinable()) return;
    try {
      serve::Client client(socket);
      (void)client.call_raw("{\"op\":\"shutdown\"}");
    } catch (const std::exception&) {
      // Daemon already stopping (or never bound); the join settles it.
    }
    thread.join();
  }
};

TEST(ServeE2E, CliServeRoundTripsThinClientsAndStopsCleanly) {
  const std::string socket = test_socket("cli");
  std::ostringstream serve_out, serve_err;
  int serve_code = -1;
  DaemonGuard daemon{std::thread([&] {
                       serve_code = app::run_command(
                           {"serve", "--socket=" + socket}, serve_out,
                           serve_err);
                     }),
                     socket};

  // Wait for the daemon to bind.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (;;) {
    try {
      util::Fd probe = util::unix_connect(socket);
      break;
    } catch (const std::exception&) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "daemon never started listening";
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  // Thin-client optimize through the daemon vs the same command computed
  // locally: the written plan artifacts must be byte-identical.
  const std::string remote_plan =
      "/tmp/mlck_" + std::to_string(::getpid()) + "_remote_plan.json";
  const std::string local_plan =
      "/tmp/mlck_" + std::to_string(::getpid()) + "_local_plan.json";
  std::ostringstream remote_out, remote_err;
  const int remote_code = app::run_command(
      {"optimize", "--system=M", "--connect=" + socket,
       "--out=" + remote_plan},
      remote_out, remote_err);
  EXPECT_EQ(remote_code, 0) << remote_err.str();
  EXPECT_NE(remote_out.str().find("served by"), std::string::npos);

  std::ostringstream local_out, local_err;
  ASSERT_EQ(app::run_command({"optimize", "--system=M",
                              "--out=" + local_plan},
                             local_out, local_err),
            0)
      << local_err.str();
  EXPECT_EQ(core::read_file(remote_plan), core::read_file(local_plan));
  ::unlink(remote_plan.c_str());
  ::unlink(local_plan.c_str());

  // A client shutdown op takes the whole daemon down: exit 0, telemetry
  // epilogue printed, socket file removed.
  {
    serve::Client client(socket);
    const Json response = Json::parse(client.call_raw("{\"op\":\"shutdown\"}"));
    EXPECT_TRUE(response.at("ok").as_bool());
  }
  daemon.thread.join();
  EXPECT_EQ(serve_code, 0) << serve_err.str();
  EXPECT_NE(serve_out.str().find("mlckd listening on " + socket),
            std::string::npos);
  EXPECT_NE(serve_out.str().find("mlckd stopped"), std::string::npos);
  EXPECT_NE(::access(socket.c_str(), F_OK), 0);
}

}  // namespace
}  // namespace mlck

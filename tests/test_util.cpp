#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <sstream>
#include <vector>

#include "util/cli.h"
#include "util/csv.h"
#include "util/parallel.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace mlck::util {
namespace {

TEST(Table, AlignsColumnsAndFormatsNumbers) {
  Table t({"name", "value"});
  t.add_row({"alpha", Table::num(1.5, 2)});
  t.add_row({"beta-longer", Table::num(-12.126, 2)});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
  EXPECT_NE(s.find("-12.13"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(Table, PercentFormatting) {
  EXPECT_EQ(Table::pct(0.123456), "12.3%");
  EXPECT_EQ(Table::pct(1.0, 0), "100%");
  EXPECT_EQ(Table::pct(0.005, 2), "0.50%");
}

TEST(Table, NumericCellsRightAligned) {
  Table t({"label", "v"});
  t.add_row({"x", "1.0"});
  t.add_row({"y", "100.0"});
  const std::string s = t.to_string();
  // "1.0" must be padded on the left to align with "100.0".
  EXPECT_NE(s.find("  1.0"), std::string::npos);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(CsvWriter::escape("with\"quote"), "\"with\"\"quote\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesRows) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row({"a", "b,c", "d"});
  EXPECT_EQ(os.str(), "a,\"b,c\",d\n");
}

TEST(Cli, ParsesOptionsAndPositionals) {
  const char* argv[] = {"prog", "--trials=50", "--verbose", "input.txt",
                        "--ratio=2.5"};
  Cli cli(5, argv);
  EXPECT_EQ(cli.get_int("trials", 0), 50);
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_DOUBLE_EQ(cli.get_double("ratio", 0.0), 2.5);
  EXPECT_EQ(cli.get_string("missing", "dflt"), "dflt");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "input.txt");
}

TEST(Cli, ReportsUnrecognizedOptions) {
  const char* argv[] = {"prog", "--known=1", "--typo=2"};
  Cli cli(3, argv);
  (void)cli.get_int("known", 0);
  const auto unknown = cli.unrecognized();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(Cli, BoolValues) {
  const char* argv[] = {"prog", "--a=0", "--b=false", "--c=true", "--d"};
  Cli cli(5, argv);
  EXPECT_FALSE(cli.get_bool("a", true));
  EXPECT_FALSE(cli.get_bool("b", true));
  EXPECT_TRUE(cli.get_bool("c", false));
  EXPECT_TRUE(cli.get_bool("d", false));
  EXPECT_TRUE(cli.get_bool("absent", true));
}

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnFreshPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DefaultsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<int> hits(1000, 0);
  parallel_for(&pool, hits.size(), [&](std::size_t i) { hits[i]++; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, SequentialFallbackMatchesPool) {
  std::vector<int> serial(257, 0), pooled(257, 0);
  parallel_for(nullptr, serial.size(),
               [&](std::size_t i) { serial[i] = static_cast<int>(i * i); });
  ThreadPool pool(4);
  parallel_for(&pool, pooled.size(),
               [&](std::size_t i) { pooled[i] = static_cast<int>(i * i); });
  EXPECT_EQ(serial, pooled);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallel_for(&pool, 0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

}  // namespace
}  // namespace mlck::util

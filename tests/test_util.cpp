#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/cli.h"
#include "util/csv.h"
#include "util/parallel.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace mlck::util {
namespace {

TEST(Table, AlignsColumnsAndFormatsNumbers) {
  Table t({"name", "value"});
  t.add_row({"alpha", Table::num(1.5, 2)});
  t.add_row({"beta-longer", Table::num(-12.126, 2)});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
  EXPECT_NE(s.find("-12.13"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(Table, PercentFormatting) {
  EXPECT_EQ(Table::pct(0.123456), "12.3%");
  EXPECT_EQ(Table::pct(1.0, 0), "100%");
  EXPECT_EQ(Table::pct(0.005, 2), "0.50%");
}

TEST(Table, NumericCellsRightAligned) {
  Table t({"label", "v"});
  t.add_row({"x", "1.0"});
  t.add_row({"y", "100.0"});
  const std::string s = t.to_string();
  // "1.0" must be padded on the left to align with "100.0".
  EXPECT_NE(s.find("  1.0"), std::string::npos);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(CsvWriter::escape("with\"quote"), "\"with\"\"quote\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesRows) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row({"a", "b,c", "d"});
  EXPECT_EQ(os.str(), "a,\"b,c\",d\n");
}

TEST(Cli, ParsesOptionsAndPositionals) {
  const char* argv[] = {"prog", "input.txt", "--trials=50", "--ratio=2.5",
                        "--verbose"};
  Cli cli(5, argv);
  EXPECT_EQ(cli.get_int("trials", 0), 50);
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_DOUBLE_EQ(cli.get_double("ratio", 0.0), 2.5);
  EXPECT_EQ(cli.get_string("missing", "dflt"), "dflt");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "input.txt");
}

TEST(Cli, SpaceSeparatedValuesAttachToTheBareOption) {
  // "--key value" is the same as "--key=value"; a bare "--flag" stays a
  // flag when followed by another option or nothing.
  const char* argv[] = {"prog", "--cases", "200", "--seed", "42",
                        "--verbose", "--out=x.json"};
  Cli cli(7, argv);
  EXPECT_EQ(cli.get_int("cases", 0), 200);
  EXPECT_EQ(cli.get_int("seed", 0), 42);
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_EQ(cli.get_string("out", ""), "x.json");
  EXPECT_TRUE(cli.positional().empty());
  EXPECT_TRUE(cli.unrecognized().empty());
}

TEST(Cli, ReportsUnrecognizedOptions) {
  const char* argv[] = {"prog", "--known=1", "--typo=2"};
  Cli cli(3, argv);
  (void)cli.get_int("known", 0);
  const auto unknown = cli.unrecognized();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(Cli, BoolValues) {
  const char* argv[] = {"prog", "--a=0", "--b=false", "--c=true", "--d"};
  Cli cli(5, argv);
  EXPECT_FALSE(cli.get_bool("a", true));
  EXPECT_FALSE(cli.get_bool("b", true));
  EXPECT_TRUE(cli.get_bool("c", false));
  EXPECT_TRUE(cli.get_bool("d", false));
  EXPECT_TRUE(cli.get_bool("absent", true));
}

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnFreshPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DefaultsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, TaskExceptionSurfacesAtWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  pool.submit([] { throw std::runtime_error("task failed"); });
  for (int i = 0; i < 50; ++i) {
    pool.submit([&completed] { completed.fetch_add(1); });
  }
  // The first exception is rethrown; the remaining tasks still drained.
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(completed.load(), 50);

  // The exception was cleared: the pool is reusable afterwards.
  pool.submit([&completed] { completed.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(completed.load(), 51);
}

TEST(ThreadPool, FirstOfSeveralExceptionsWins) {
  ThreadPool pool(1);  // single worker => deterministic execution order
  pool.submit([] { throw std::runtime_error("first"); });
  pool.submit([] { throw std::logic_error("second"); });
  try {
    pool.wait_idle();
    FAIL() << "wait_idle() must rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  pool.wait_idle();  // later exceptions are dropped; pool idle and clean
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<int> hits(1000, 0);
  parallel_for(&pool, hits.size(), [&](std::size_t i) { hits[i]++; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, SequentialFallbackMatchesPool) {
  std::vector<int> serial(257, 0), pooled(257, 0);
  parallel_for(nullptr, serial.size(),
               [&](std::size_t i) { serial[i] = static_cast<int>(i * i); });
  ThreadPool pool(4);
  parallel_for(&pool, pooled.size(),
               [&](std::size_t i) { pooled[i] = static_cast<int>(i * i); });
  EXPECT_EQ(serial, pooled);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallel_for(&pool, 0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, DeterministicAcrossPoolSizes) {
  // Each index writes only its own slot, so the result must be
  // bit-identical no matter how the chunked schedule carves the range.
  const auto run = [](std::size_t workers) {
    std::vector<double> out(1237, 0.0);
    const auto body = [&out](std::size_t i) {
      const double x = static_cast<double>(i);
      out[i] = x * x + 0.5 * x;
    };
    if (workers == 0) {
      parallel_for(nullptr, out.size(), body);
    } else {
      ThreadPool pool(workers);
      parallel_for(&pool, out.size(), body);
    }
    return out;
  };
  const std::vector<double> sequential = run(0);
  EXPECT_EQ(run(1), sequential);
  EXPECT_EQ(run(2), sequential);
  EXPECT_EQ(run(8), sequential);
}

TEST(ParallelFor, BodyExceptionPropagatesAndFillsOtherSlots) {
  ThreadPool pool(4);
  std::vector<int> out(500, 0);
  EXPECT_THROW(parallel_for(&pool, out.size(),
                            [&out](std::size_t i) {
                              if (i == 250) throw std::runtime_error("boom");
                              out[i] = 1;
                            }),
               std::runtime_error);
  // The other chunks still ran; only the throwing chunk's tail is lost
  // (4 workers * 4 chunks each => chunks of ~31 indices).
  EXPECT_EQ(out[250], 0);
  EXPECT_EQ(out.front(), 1);
  EXPECT_EQ(out.back(), 1);
  EXPECT_GE(std::accumulate(out.begin(), out.end(), 0),
            static_cast<int>(out.size()) - 32);
  pool.wait_idle();  // pool stays usable, no stored exception remains
}

}  // namespace
}  // namespace mlck::util

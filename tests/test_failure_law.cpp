// Property and contract tests for the failure-law layer: the tabulated
// primitives against direct quadrature within the documented accuracy
// policy (docs/MODELS.md), the exponential fast path's bit-identity, the
// Weibull-shape metamorphic ordering of model forecasts, the CLI/JSON
// parse grammar, and the shared integration-domain policy.

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dauwe_model.h"
#include "core/optimizer.h"
#include "engine/scenario.h"
#include "math/distribution.h"
#include "math/exponential.h"
#include "math/failure_law.h"
#include "math/integrate.h"
#include "math/retry.h"
#include "prop_support.h"
#include "systems/system_config.h"
#include "systems/test_systems.h"
#include "util/rng.h"

namespace mlck {
namespace {

using math::FailureLaw;

// The documented accuracy policy for the tabulated interpolant, valid on
// the documented domain (window mass >= 1e-12, retry factor <= 1e10):
// measured worst-case errors are ~2e-5 (cdf, truncated mean) and ~2e-4
// (retries) at the default 64 points/decade, so these bands carry ~5x
// headroom. A change that breaks them is a real accuracy regression.
constexpr double kCdfTol = 1e-4;
constexpr double kTmeanTol = 1e-4;
constexpr double kRetriesTol = 1e-3;

/// Relative difference scaled to the reference magnitude (guarded at 0).
double rel_err(double value, double reference) {
  const double scale = std::max(std::abs(reference), 1e-300);
  return std::abs(value - reference) / scale;
}

struct LawFamilyUnderTest {
  std::shared_ptr<const FailureLaw> family;
  /// Reference distribution for a given mean, sharing nothing with the
  /// tabulation beyond libm (closed-form cdf/survival; quadrature
  /// truncated mean through the generic FailureDistribution path).
  std::unique_ptr<math::FailureDistribution> (*reference)(double mean);
};

std::unique_ptr<math::FailureDistribution> weibull_half(double mean) {
  return std::make_unique<math::Weibull>(math::Weibull::with_mean(mean, 0.5));
}
std::unique_ptr<math::FailureDistribution> weibull_07(double mean) {
  return std::make_unique<math::Weibull>(math::Weibull::with_mean(mean, 0.7));
}
std::unique_ptr<math::FailureDistribution> weibull_3(double mean) {
  return std::make_unique<math::Weibull>(math::Weibull::with_mean(mean, 3.0));
}
std::unique_ptr<math::FailureDistribution> lognormal_03(double mean) {
  return std::make_unique<math::LogNormal>(
      math::LogNormal::with_mean(mean, 0.3));
}
std::unique_ptr<math::FailureDistribution> lognormal_15(double mean) {
  return std::make_unique<math::LogNormal>(
      math::LogNormal::with_mean(mean, 1.5));
}

std::vector<LawFamilyUnderTest> families_under_test() {
  std::vector<LawFamilyUnderTest> laws;
  laws.push_back({FailureLaw::weibull(0.5), &weibull_half});
  laws.push_back({FailureLaw::weibull(0.7), &weibull_07});
  laws.push_back({FailureLaw::weibull(3.0), &weibull_3});
  laws.push_back({FailureLaw::lognormal(0.3), &lognormal_03});
  laws.push_back({FailureLaw::lognormal(1.5), &lognormal_15});
  return laws;
}

TEST(TabulatedLaw, MatchesDirectQuadratureOnTheDocumentedDomain) {
  const std::uint64_t seed = testprop::suite_seed(0x7ab1a7ed);
  SCOPED_TRACE(testprop::repro(
      "TabulatedLaw.MatchesDirectQuadratureOnTheDocumentedDomain", seed));
  util::Rng rng(seed);

  const auto laws = families_under_test();
  int checked = 0;
  while (checked < 400) {
    const auto& law = laws[rng.below(laws.size())];
    // Rates across the model's realistic span (MTBF minutes..weeks) and
    // windows from deep inside the mean to many means past it.
    const double rate = std::pow(10.0, -4.0 + 4.0 * rng.uniform());
    const double mean = 1.0 / rate;
    const double t = mean * std::pow(10.0, -3.0 + 4.0 * rng.uniform());

    const auto reference = law.reference(mean);
    const double f_ref = reference->cdf(t);
    const double s_ref = reference->survival(t);
    if (f_ref < 1e-12) continue;  // outside the documented domain
    const double retries_ref = f_ref / s_ref;
    if (!(retries_ref <= 1e10)) continue;
    ++checked;

    const auto primitive = law.family->primitive(rate);
    EXPECT_LE(rel_err(primitive->failure_probability(t), f_ref), kCdfTol)
        << primitive->describe() << " cdf at t=" << t << " rate=" << rate;
    // The conditional mean E[T | T <= t] divides by F(t); as the mass
    // approaches the 1e-12 domain floor the tabulation error in that tiny
    // denominator amplifies, while the model always multiplies E(t, X)
    // back by P = F(t), bounding the absolute contribution by t * F(t).
    // Hold the relative tolerance only where the mass is resolvable.
    if (f_ref >= 1e-8) {
      EXPECT_LE(rel_err(primitive->truncated_mean(t),
                        reference->truncated_mean(t)),
                kTmeanTol)
          << primitive->describe() << " truncated_mean at t=" << t
          << " rate=" << rate;
    }
    EXPECT_LE(rel_err(primitive->expected_retries(t), retries_ref),
              kRetriesTol)
        << primitive->describe() << " retries at t=" << t
        << " rate=" << rate;
  }
}

TEST(TabulatedLaw, ScaleFamilySharesOneUnitTable) {
  // primitive(rate) must mean "the family member with mean 1/rate":
  // P(t; rate) == P_unit(t * rate) exactly (a scaled view, not a fresh
  // tabulation), so serving many rates stays cheap and consistent.
  const auto family = FailureLaw::weibull(0.7);
  const auto a = family->primitive(0.01);
  const auto b = family->primitive(2.0);
  for (const double u : {0.05, 0.3, 1.0, 4.0}) {
    EXPECT_EQ(a->failure_probability(u / 0.01),
              b->failure_probability(u / 2.0));
    EXPECT_EQ(a->expected_retries(u / 0.01), b->expected_retries(u / 2.0));
    // Rescaling to unit time multiplies by different rates, so allow the
    // one-rounding difference of x/0.01*0.01 vs x/2.0*2.0.
    EXPECT_DOUBLE_EQ(a->truncated_mean(u / 0.01) * 0.01,
                     b->truncated_mean(u / 2.0) * 2.0);
  }
}

TEST(FailureLaw, ExponentialFamilyIsTheClosedFormBitForBit) {
  const auto family = FailureLaw::exponential();
  EXPECT_TRUE(math::is_exponential_family(family.get()));
  for (const double rate : {1e-4, 0.01, 0.3}) {
    const auto primitive = family->primitive(rate);
    for (const double t : {0.005, 0.5, 12.0, 900.0}) {
      EXPECT_EQ(primitive->expected_retries(t),
                math::expected_retries(t, rate));
      EXPECT_EQ(primitive->truncated_mean(t), math::truncated_mean(t, rate));
    }
  }
}

TEST(FailureLaw, NullAndExponentialModelsAreBitIdentical) {
  // The kernel must never build primitives for the exponential family:
  // a DauweModel holding FailureLaw::exponential() runs the exact same
  // closed-form arithmetic as the default model.
  const core::DauweModel bare;
  const core::DauweModel exponential({}, FailureLaw::exponential());
  for (const char* name : {"M", "B", "D3"}) {
    const auto system = systems::table1_system(name);
    const auto best = core::optimize_intervals(bare, system);
    EXPECT_EQ(bare.expected_time(system, best.plan),
              exponential.expected_time(system, best.plan))
        << name;
    const auto p_bare = bare.predict(system, best.plan);
    const auto p_exp = exponential.predict(system, best.plan);
    EXPECT_EQ(p_bare.expected_time, p_exp.expected_time) << name;
    EXPECT_EQ(p_bare.efficiency, p_exp.efficiency) << name;
  }
}

TEST(FailureLaw, ExpectedTimeIsMonotoneInWeibullShape) {
  // Metamorphic ordering: at a fixed plan and fixed per-severity means, a
  // smaller Weibull shape means burstier failures (heavier early mass),
  // which can only cost time; shape -> larger approaches the light-tailed
  // regime. Forecasts must be non-increasing across ascending shapes on
  // the paper's reference systems.
  const double shapes[] = {0.5, 0.7, 1.0, 1.5, 2.0, 3.0};
  for (const char* name : {"M", "B", "D3"}) {
    const auto system = systems::table1_system(name);
    const core::DauweModel bare;
    const auto plan = core::optimize_intervals(bare, system).plan;
    double previous = std::numeric_limits<double>::infinity();
    for (const double shape : shapes) {
      const core::DauweModel model({}, FailureLaw::weibull(shape));
      const double t = model.expected_time(system, plan);
      EXPECT_TRUE(std::isfinite(t)) << name << " shape " << shape;
      EXPECT_LE(t, previous * (1.0 + 1e-9))
          << name << ": shape " << shape << " worsened the forecast";
      previous = t;
    }
  }
}

TEST(FailureLaw, PrimitiveRejectsNonPositiveRates) {
  EXPECT_THROW(FailureLaw::weibull(0.7)->primitive(0.0),
               std::invalid_argument);
  EXPECT_THROW(FailureLaw::lognormal(1.0)->primitive(-1.0),
               std::invalid_argument);
}

TEST(DistributionSpec, ParseGrammarRoundTrips) {
  using engine::DistributionSpec;
  const auto weibull = DistributionSpec::parse("weibull:shape=0.7,scale=120");
  EXPECT_EQ(weibull.kind, DistributionSpec::Kind::kWeibull);
  EXPECT_EQ(weibull.shape, 0.7);
  EXPECT_EQ(weibull.scale, 120.0);
  EXPECT_EQ(weibull.mean, 0.0);
  EXPECT_EQ(DistributionSpec::parse(weibull.to_string()).to_string(),
            weibull.to_string());

  const auto lognormal = DistributionSpec::parse("lognormal:sigma=1.5");
  EXPECT_EQ(lognormal.kind, DistributionSpec::Kind::kLogNormal);
  EXPECT_EQ(lognormal.sigma, 1.5);
  EXPECT_EQ(DistributionSpec::parse(lognormal.to_string()).to_string(),
            lognormal.to_string());

  const auto exponential = DistributionSpec::parse("exponential");
  EXPECT_TRUE(exponential.is_default_exponential());
  EXPECT_EQ(exponential.to_string(), "exponential");

  // The JSON form round-trips through the same fields.
  const auto back = DistributionSpec::from_json(weibull.to_json());
  EXPECT_EQ(back.to_string(), weibull.to_string());
}

TEST(DistributionSpec, ParseRejectsMalformedSpecs) {
  using engine::DistributionSpec;
  EXPECT_THROW(DistributionSpec::parse("gamma"), std::invalid_argument);
  EXPECT_THROW(DistributionSpec::parse("weibull:form=0.7"),
               std::invalid_argument);
  EXPECT_THROW(DistributionSpec::parse("lognormal:shape=0.7"),
               std::invalid_argument);  // shape is Weibull-only
  EXPECT_THROW(DistributionSpec::parse("weibull:sigma=1"),
               std::invalid_argument);  // sigma is log-normal-only
  EXPECT_THROW(DistributionSpec::parse("weibull:shape=-1"),
               std::invalid_argument);
  EXPECT_THROW(DistributionSpec::parse("weibull:shape=0.7x"),
               std::invalid_argument);
  EXPECT_THROW(DistributionSpec::parse("weibull:mean=10,scale=10"),
               std::invalid_argument);  // mutually exclusive
  EXPECT_THROW(DistributionSpec::parse(""), std::invalid_argument);
}

TEST(DistributionSpec, ResolvedMeanFollowsScaleConventions) {
  using engine::DistributionSpec;
  const double mtbf = 240.0;

  auto spec = DistributionSpec::parse("weibull:shape=0.7");
  EXPECT_EQ(spec.resolved_mean(mtbf), mtbf);

  spec = DistributionSpec::parse("weibull:shape=0.7,mean=100");
  EXPECT_EQ(spec.resolved_mean(mtbf), 100.0);

  // Weibull scale lambda: mean = lambda * Gamma(1 + 1/shape).
  spec = DistributionSpec::parse("weibull:shape=0.7,scale=120");
  EXPECT_NEAR(spec.resolved_mean(mtbf), 120.0 * std::tgamma(1.0 + 1.0 / 0.7),
              1e-9);

  // Log-normal scale = median exp(mu): mean = median * exp(sigma^2 / 2).
  spec = DistributionSpec::parse("lognormal:sigma=1,scale=50");
  EXPECT_NEAR(spec.resolved_mean(mtbf), 50.0 * std::exp(0.5), 1e-9);
}

TEST(IntegrationDomain, CapsAndSplitsAroundTheMean) {
  const auto unbounded = math::integration_domain(5.0, 0.0);
  EXPECT_EQ(unbounded.cap, 5.0);
  EXPECT_EQ(unbounded.split, 5.0);

  const auto short_window = math::integration_domain(3.0, 1.0);
  EXPECT_EQ(short_window.cap, 3.0);  // t below the cap
  EXPECT_EQ(short_window.split, 3.0);

  const auto long_window = math::integration_domain(1e6, 1.0);
  EXPECT_EQ(long_window.cap, math::kDomainCapMultiple);
  EXPECT_EQ(long_window.split, math::kBulkSplitMultiple);
}

}  // namespace
}  // namespace mlck

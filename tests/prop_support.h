#pragma once

// Shared support for the randomized ("property") test suites: one place
// to resolve a suite's base seed and to format the seed + replay command
// that every randomized failure must carry (docs/TESTING.md).
//
// Usage:
//   const std::uint64_t seed = testprop::suite_seed(kDefaultSeed);
//   SCOPED_TRACE(testprop::repro("Suite.TestName", seed));
//   util::Rng rng(seed);
//
// SCOPED_TRACE attaches the line to every assertion in scope, so a CI
// log shows the failing seed and the exact command replaying it even
// when the assertion itself only prints two doubles.

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>

namespace mlck::testprop {

/// The suite's base seed: @p fallback unless MLCK_PROP_SEED is set in
/// the environment (decimal or 0x-prefixed hex), which replays a logged
/// failure without recompiling.
inline std::uint64_t suite_seed(std::uint64_t fallback) {
  if (const char* env = std::getenv("MLCK_PROP_SEED")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 0);
    if (end != env) return parsed;
  }
  return fallback;
}

/// One-line seed report + replay command for SCOPED_TRACE.
inline std::string repro(const char* test_name, std::uint64_t seed) {
  std::ostringstream out;
  out << "seed=0x" << std::hex << seed
      << " — replay: MLCK_PROP_SEED=0x" << seed
      << " ctest --test-dir build -R '" << std::dec << test_name << "'";
  return out.str();
}

}  // namespace mlck::testprop

#include <gtest/gtest.h>

#include "core/effective.h"
#include "systems/test_systems.h"

namespace mlck::core {
namespace {

TEST(Effective, FullHierarchyKeepsPerLevelRates) {
  const auto sys = systems::table1_system("B");
  const CheckpointPlan plan = CheckpointPlan::full_hierarchy(1.0, {1, 1, 1});
  const EffectiveSystem eff = make_effective(sys, plan);
  ASSERT_EQ(eff.level.size(), 4u);
  EXPECT_DOUBLE_EQ(eff.scratch_lambda, 0.0);
  for (int l = 0; l < 4; ++l) {
    EXPECT_DOUBLE_EQ(eff.level[std::size_t(l)].lambda, sys.lambda(l));
    EXPECT_DOUBLE_EQ(eff.level[std::size_t(l)].checkpoint_cost,
                     sys.checkpoint_cost[std::size_t(l)]);
    EXPECT_DOUBLE_EQ(eff.level[std::size_t(l)].severity_share,
                     sys.severity_probability[std::size_t(l)]);
  }
}

TEST(Effective, SkippedInteriorLevelRebinsSeverities) {
  const auto sys = systems::table1_system("B");
  CheckpointPlan plan;
  plan.tau0 = 1.0;
  plan.levels = {1, 3};  // skip levels 0 and 2
  plan.counts = {2};
  const EffectiveSystem eff = make_effective(sys, plan);
  ASSERT_EQ(eff.level.size(), 2u);
  // Severities 0 and 1 restart from used level 1; severities 2 and 3 from
  // used level 3.
  EXPECT_DOUBLE_EQ(eff.level[0].lambda, sys.lambda(0) + sys.lambda(1));
  EXPECT_DOUBLE_EQ(eff.level[1].lambda, sys.lambda(2) + sys.lambda(3));
  EXPECT_DOUBLE_EQ(eff.scratch_lambda, 0.0);
  EXPECT_DOUBLE_EQ(eff.level[0].checkpoint_cost, sys.checkpoint_cost[1]);
  EXPECT_DOUBLE_EQ(eff.level[1].restart_cost, sys.restart_cost[3]);
}

TEST(Effective, DroppedTopLevelsBecomeScratchRate) {
  const auto sys = systems::table1_system("B");
  CheckpointPlan plan;
  plan.tau0 = 1.0;
  plan.levels = {0, 1};  // severities 2, 3 unrecoverable
  plan.counts = {3};
  const EffectiveSystem eff = make_effective(sys, plan);
  ASSERT_EQ(eff.level.size(), 2u);
  EXPECT_DOUBLE_EQ(eff.scratch_lambda, sys.lambda(2) + sys.lambda(3));
  EXPECT_DOUBLE_EQ(eff.level[0].lambda + eff.level[1].lambda +
                       eff.scratch_lambda,
                   sys.lambda_total());
}

TEST(Effective, SeverityShareRelativeToFullSystemRate) {
  // The paper's S_k is lambda_k / lambda (all failures), even for plans
  // using a subset of levels.
  const auto sys = systems::table1_system("B");
  CheckpointPlan plan;
  plan.tau0 = 1.0;
  plan.levels = {2, 3};
  plan.counts = {1};
  const EffectiveSystem eff = make_effective(sys, plan);
  EXPECT_DOUBLE_EQ(eff.level[0].severity_share,
                   (sys.lambda(0) + sys.lambda(1) + sys.lambda(2)) /
                       sys.lambda_total());
  EXPECT_DOUBLE_EQ(eff.level[1].severity_share,
                   sys.lambda(3) / sys.lambda_total());
}

TEST(Effective, SingleLevelPlanAbsorbsEverything) {
  const auto sys = systems::table1_system("M");
  const CheckpointPlan plan = CheckpointPlan::single_level(10.0, 2);
  const EffectiveSystem eff = make_effective(sys, plan);
  ASSERT_EQ(eff.level.size(), 1u);
  EXPECT_NEAR(eff.level[0].lambda, sys.lambda_total(), 1e-15);
  EXPECT_NEAR(eff.level[0].severity_share, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(eff.scratch_lambda, 0.0);
}

}  // namespace
}  // namespace mlck::core

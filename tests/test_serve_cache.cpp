// Plan-cache and coalescing tests for the advisory daemon: canonical
// fingerprint stability (member order, named vs inline systems), LRU
// eviction order, and the multi-tenant guarantee that parallel first
// requests for one fingerprint trigger exactly one optimizer run.
#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "core/serialize.h"
#include "obs/registry.h"
#include "serve/client.h"
#include "serve/plan_cache.h"
#include "serve/request.h"
#include "serve/server.h"
#include "systems/test_systems.h"
#include "util/json.h"

namespace mlck {
namespace {

using util::Json;

std::string test_socket(const char* tag) {
  return "/tmp/mlck_" + std::to_string(::getpid()) + "_" + tag + ".sock";
}

serve::Request parse_request(const std::string& text) {
  return serve::Request::parse(Json::parse(text));
}

TEST(ServeFingerprint, KeyIsIndependentOfMemberOrder) {
  const auto a = parse_request(
      "{\"op\":\"optimize\",\"system\":\"D3\","
      "\"failure\":{\"law\":\"weibull\",\"shape\":0.7},"
      "\"optimizer\":{\"max_count\":16,\"coarse_tau_points\":24}}");
  const auto b = parse_request(
      "{\"optimizer\":{\"coarse_tau_points\":24,\"max_count\":16},"
      "\"failure\":{\"shape\":0.7,\"law\":\"weibull\"},"
      "\"system\":\"D3\",\"op\":\"optimize\"}");
  EXPECT_EQ(a.canonical_key(), b.canonical_key());
}

TEST(ServeFingerprint, NamedAndInlineSystemsShareAKey) {
  const auto named = parse_request("{\"op\":\"optimize\",\"system\":\"D3\"}");
  const std::string inline_doc =
      core::to_json(systems::table1_system("D3")).dump();
  const auto inlined = parse_request("{\"op\":\"optimize\",\"system\":" +
                                     inline_doc + "}");
  EXPECT_EQ(named.canonical_key(), inlined.canonical_key());
}

TEST(ServeFingerprint, KeySeparatesOpsSystemsAndOptions) {
  const auto base = parse_request("{\"op\":\"optimize\",\"system\":\"D3\"}");
  const auto other_system =
      parse_request("{\"op\":\"optimize\",\"system\":\"D5\"}");
  const auto other_law = parse_request(
      "{\"op\":\"optimize\",\"system\":\"D3\","
      "\"failure\":{\"law\":\"lognormal\"}}");
  const auto other_opts = parse_request(
      "{\"op\":\"optimize\",\"system\":\"D3\","
      "\"optimizer\":{\"max_count\":8}}");
  EXPECT_NE(base.canonical_key(), other_system.canonical_key());
  EXPECT_NE(base.canonical_key(), other_law.canonical_key());
  EXPECT_NE(base.canonical_key(), other_opts.canonical_key());
}

TEST(ServeFingerprint, ScenarioOnlyFieldsDoNotSplitOptimizeKeys) {
  // The id never reaches the key either: results are id-independent.
  const auto a = parse_request(
      "{\"op\":\"optimize\",\"id\":1,\"system\":\"D3\"}");
  const auto b = parse_request(
      "{\"op\":\"optimize\",\"id\":\"two\",\"system\":\"D3\"}");
  EXPECT_EQ(a.canonical_key(), b.canonical_key());
  // Scenario requests DO key on trials/seed — the simulation is part of
  // the answer there.
  const auto s1 = parse_request(
      "{\"op\":\"scenario\",\"spec\":{\"system\":\"D3\",\"trials\":50}}");
  const auto s2 = parse_request(
      "{\"op\":\"scenario\",\"spec\":{\"system\":\"D3\",\"trials\":60}}");
  EXPECT_NE(s1.canonical_key(), s2.canonical_key());
}

TEST(ServePlanCache, LruEvictsLeastRecentlyUsed) {
  serve::PlanCache cache(2);
  cache.put("a", "1");
  cache.put("b", "2");
  EXPECT_EQ(cache.get("a").value_or(""), "1");  // renews a
  cache.put("c", "3");                           // evicts b, not a
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_EQ(cache.get("a").value_or(""), "1");
  EXPECT_EQ(cache.get("c").value_or(""), "3");
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ServePlanCache, CountsHitsMissesEvictions) {
  obs::MetricsRegistry registry;
  serve::PlanCacheMetrics metrics;
  metrics.hits = &registry.counter("hits");
  metrics.misses = &registry.counter("misses");
  metrics.evictions = &registry.counter("evictions");
  metrics.size = &registry.gauge("size");
  serve::PlanCache cache(1);
  cache.attach_metrics(metrics);

  EXPECT_FALSE(cache.get("a").has_value());
  cache.put("a", "1");
  EXPECT_TRUE(cache.get("a").has_value());
  cache.put("b", "2");  // evicts a
  EXPECT_FALSE(cache.get("a").has_value());
  EXPECT_EQ(metrics.hits->value(), 1u);
  EXPECT_EQ(metrics.misses->value(), 2u);
  EXPECT_EQ(metrics.evictions->value(), 1u);
  EXPECT_EQ(metrics.size->value(), 1.0);
}

TEST(ServePlanCache, RefreshingAKeyKeepsOneEntry) {
  serve::PlanCache cache(4);
  cache.put("k", "old");
  cache.put("k", "new");
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.get("k").value_or(""), "new");
}

TEST(ServePlanCache, ZeroCapacityDisablesCaching) {
  serve::PlanCache cache(0);
  cache.put("k", "v");
  EXPECT_FALSE(cache.get("k").has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ServeCoalescing, ParallelFirstRequestsRunTheOptimizerOnce) {
  // Reference: one direct run's optimizer footprint for this request.
  const char* kRequest =
      "{\"op\":\"optimize\",\"system\":\"D3\","
      "\"optimizer\":{\"coarse_tau_points\":24,\"max_count\":16}}";
  obs::MetricsRegistry direct_registry;
  (void)serve::evaluate(parse_request(kRequest), nullptr, &direct_registry);
  const std::uint64_t one_run_subsets =
      direct_registry.counter("optimizer.subsets_searched").value();
  ASSERT_GT(one_run_subsets, 0u);

  obs::MetricsRegistry registry;
  serve::ServerOptions options;
  options.socket_path = test_socket("coal");
  options.threads = 1;
  options.registry = &registry;
  serve::Server server(options);

  // Eight tenants ask the same cold question at once. Coalescing (or a
  // second-chance cache hit for stragglers) must collapse them to one
  // optimizer invocation, and everyone gets the same answer.
  constexpr int kClients = 8;
  std::vector<std::string> responses(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      serve::Client client(options.socket_path);
      responses[static_cast<std::size_t>(i)] = client.call_raw(kRequest);
    });
  }
  for (auto& thread : clients) thread.join();

  for (int i = 1; i < kClients; ++i) {
    EXPECT_EQ(responses[static_cast<std::size_t>(i)], responses[0]);
  }
  EXPECT_TRUE(Json::parse(responses[0]).at("ok").as_bool());

  // Exactly one job executed, and the optimizer's own counters agree:
  // its total footprint equals a single run's.
  EXPECT_EQ(registry.counter("serve.jobs_executed").value(), 1u);
  EXPECT_EQ(registry.counter("optimizer.subsets_searched").value(),
            one_run_subsets);
  const std::uint64_t coalesced =
      registry.counter("serve.coalesced").value();
  const std::uint64_t cache_hits =
      registry.counter("serve.plan_cache.hits").value();
  EXPECT_EQ(coalesced + cache_hits,
            static_cast<std::uint64_t>(kClients - 1));
  server.stop();
}

}  // namespace
}  // namespace mlck

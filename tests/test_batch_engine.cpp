#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/adaptive.h"
#include "core/interval_schedule.h"
#include "core/plan.h"
#include "math/failure_law.h"
#include "prop_support.h"
#include "sim/compiled_schedule.h"
#include "sim/fast_forward.h"
#include "sim/reference_simulator.h"
#include "sim/simulator.h"
#include "sim/trial_runner.h"
#include "systems/test_systems.h"
#include "util/rng.h"
#include "util/thread_pool.h"

// The batch engine's contract (bench_sim's gate, docs/PERFORMANCE.md):
// byte-identical results to the frozen reference engine on equal seeds.
// These tests pin that contract — every comparison below is exact ==,
// never EXPECT_NEAR.

namespace mlck::sim {
namespace {

using core::CheckpointPlan;
using Script = std::vector<ScriptedFailureSource::AbsoluteFailure>;

systems::SystemConfig toy_system() {
  // 2 levels, delta = R = {1, 4}, T_B = 30 (same toy as test_simulator).
  return systems::SystemConfig::from_table_row("toy", 2, 100.0, {0.8, 0.2},
                                               {1.0, 4.0}, 30.0);
}

CheckpointPlan toy_plan() { return CheckpointPlan::full_hierarchy(5.0, {2}); }

void expect_same_result(const TrialResult& a, const TrialResult& b) {
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.capped, b.capped);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.checkpoints_completed, b.checkpoints_completed);
  EXPECT_EQ(a.restarts_completed, b.restarts_completed);
  EXPECT_EQ(a.restarts_failed, b.restarts_failed);
  EXPECT_EQ(a.scratch_restarts, b.scratch_restarts);
  EXPECT_EQ(a.breakdown.useful, b.breakdown.useful);
  EXPECT_EQ(a.breakdown.checkpoint_ok, b.breakdown.checkpoint_ok);
  EXPECT_EQ(a.breakdown.checkpoint_failed, b.breakdown.checkpoint_failed);
  EXPECT_EQ(a.breakdown.restart_ok, b.breakdown.restart_ok);
  EXPECT_EQ(a.breakdown.restart_failed, b.breakdown.restart_failed);
  EXPECT_EQ(a.breakdown.rework_compute, b.breakdown.rework_compute);
  EXPECT_EQ(a.breakdown.rework_checkpoint, b.breakdown.rework_checkpoint);
  EXPECT_EQ(a.breakdown.rework_restart, b.breakdown.rework_restart);
}

void expect_same_summary(const stats::Summary& a, const stats::Summary& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.stddev, b.stddev);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
}

void expect_same_stats(const TrialStats& a, const TrialStats& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.capped_trials, b.capped_trials);
  EXPECT_EQ(a.mean_failures, b.mean_failures);
  expect_same_summary(a.efficiency, b.efficiency);
  expect_same_summary(a.total_time, b.total_time);
  EXPECT_EQ(a.efficiency_quantiles.p05, b.efficiency_quantiles.p05);
  EXPECT_EQ(a.efficiency_quantiles.p25, b.efficiency_quantiles.p25);
  EXPECT_EQ(a.efficiency_quantiles.median, b.efficiency_quantiles.median);
  EXPECT_EQ(a.efficiency_quantiles.p75, b.efficiency_quantiles.p75);
  EXPECT_EQ(a.efficiency_quantiles.p95, b.efficiency_quantiles.p95);
  EXPECT_EQ(a.time_shares.useful, b.time_shares.useful);
  EXPECT_EQ(a.time_shares.checkpoint_ok, b.time_shares.checkpoint_ok);
  EXPECT_EQ(a.time_shares.restart_ok, b.time_shares.restart_ok);
  EXPECT_EQ(a.time_shares.rework_compute, b.time_shares.rework_compute);
}

// ---------------------------------------------------------------------------
// CompiledSchedule

TEST(CompiledSchedule, PlanCompilesToItsTriggerSequence) {
  const auto sys = toy_system();
  const auto compiled = CompiledSchedule::from_plan(sys, toy_plan());
  ASSERT_TRUE(compiled.compiled());
  // T_B = 30, tau0 = 5: triggers after 5..25 (none at 30, the run ends).
  ASSERT_EQ(compiled.trigger_count(), 5u);
  const auto& trig = compiled.triggers();
  for (std::size_t i = 0; i < trig.size(); ++i) {
    EXPECT_DOUBLE_EQ(trig[i].work, 5.0 * static_cast<double>(i + 1));
  }
  // Pattern {2}: levels 0,0,1 cycling -> trigger 3 (j=3) is the level-1.
  EXPECT_EQ(trig[2].used_index, 1);
  EXPECT_EQ(trig[0].used_index, 0);
}

TEST(CompiledSchedule, CursorRecoversAfterRollback) {
  const auto sys = toy_system();
  const auto compiled = CompiledSchedule::from_plan(sys, toy_plan());
  auto cursor = compiled.cursor();
  // Forward path to the end...
  for (int j = 1; j <= 5; ++j) {
    const auto p = cursor.next(5.0 * (j - 1));
    ASSERT_TRUE(p.has_value());
    EXPECT_DOUBLE_EQ(p->work, 5.0 * j);
  }
  EXPECT_FALSE(cursor.next(25.0).has_value());
  // ...then a rollback to scratch and to a mid-run checkpoint: the cursor
  // hint is far ahead, the uniform-grid arithmetic path must recover.
  auto after_scratch = cursor.next(0.0);
  ASSERT_TRUE(after_scratch.has_value());
  EXPECT_DOUBLE_EQ(after_scratch->work, 5.0);
  auto after_restore = cursor.next(15.0);
  ASSERT_TRUE(after_restore.has_value());
  EXPECT_DOUBLE_EQ(after_restore->work, 20.0);
}

TEST(CompiledSchedule, NonUniformGridRollbackUsesBinarySearch) {
  const auto sys = toy_system();
  core::IntervalSchedule schedule;
  schedule.levels = {0, 1};
  schedule.periods = {4.0, 9.0};  // collision-free, non-uniform triggers
  const auto compiled = CompiledSchedule::from_schedule(sys, schedule);
  ASSERT_TRUE(compiled.compiled());
  auto cursor = compiled.cursor();
  // Drain forward, then roll back several positions and re-query each.
  std::vector<core::CheckpointPoint> seen;
  double work = 0.0;
  for (auto p = cursor.next(work); p.has_value(); p = cursor.next(work)) {
    seen.push_back(*p);
    work = p->work;
  }
  ASSERT_GT(seen.size(), 3u);
  for (std::size_t k = seen.size(); k-- > 0;) {
    const double from = k == 0 ? 0.0 : seen[k - 1].work;
    const auto p = cursor.next(from);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->work, seen[k].work);
    EXPECT_EQ(p->used_index, seen[k].used_index);
  }
}

TEST(CompiledSchedule, AdaptiveStaysInCallbackMode) {
  const auto sys = toy_system();
  const auto adaptive = core::make_adaptive(sys, toy_plan());
  const auto compiled = CompiledSchedule::from_adaptive(sys, adaptive);
  EXPECT_FALSE(compiled.compiled());
  EXPECT_EQ(compiled.trigger_count(), 0u);
  // The callback path must serve the schedule's own query sequence.
  auto cursor = compiled.cursor();
  double work = 0.0;
  for (auto expected = adaptive.next_checkpoint(work); expected.has_value();
       expected = adaptive.next_checkpoint(work)) {
    const auto got = cursor.next(work);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->work, expected->work);
    EXPECT_EQ(got->used_index, expected->used_index);
    work = expected->work;
  }
  EXPECT_FALSE(cursor.next(work).has_value());
}

// ---------------------------------------------------------------------------
// NoFailureTrajectory

TEST(FastForward, FullSkipReproducesTheNoFailureTrial) {
  const auto sys = toy_system();
  const auto compiled = CompiledSchedule::from_plan(sys, toy_plan());
  const SimOptions options;
  const NoFailureTrajectory trajectory(sys, compiled, options);
  ASSERT_TRUE(trajectory.valid());
  ScriptedFailureSource none({});
  const TrialResult plain = simulate(sys, compiled, none, options);
  expect_same_result(trajectory.full_result(), plain);
  EXPECT_EQ(trajectory.final_end(), plain.total_time);
  // One full segment per trigger (the tail segment has no checkpoint).
  EXPECT_EQ(trajectory.segment_end().size(), compiled.trigger_count());
}

TEST(FastForward, MidRunJumpMatchesThePlainLoopExactly) {
  const auto sys = toy_system();
  const auto compiled = CompiledSchedule::from_plan(sys, toy_plan());
  const SimOptions options;
  const NoFailureTrajectory trajectory(sys, compiled, options);
  ASSERT_TRUE(trajectory.valid());
  // Sweep a first failure across the whole run — compute phases,
  // checkpoint phases, both severities — plus a second failure so the
  // post-jump state (slots, work, clock) is exercised, not just reported.
  for (double t = 0.25; t < 40.0; t += 0.46875) {
    for (int severity = 0; severity < 2; ++severity) {
      const Script script = {{t, severity}, {t + 7.3, 0}};
      ScriptedFailureSource with_fast(script);
      ScriptedFailureSource without(script);
      const TrialResult fast =
          simulate(sys, compiled, with_fast, options, &trajectory);
      const TrialResult slow = simulate(sys, compiled, without, options);
      SCOPED_TRACE(::testing::Message()
                   << "first failure t=" << t << " severity=" << severity);
      expect_same_result(fast, slow);
    }
  }
}

TEST(FastForward, CapBeforeTheEndInvalidatesTheTrajectory) {
  auto sys = toy_system();
  const auto compiled = CompiledSchedule::from_plan(sys, toy_plan());
  SimOptions options;
  options.max_time_factor = 1.0;  // cap = T_B < no-failure total time
  const NoFailureTrajectory trajectory(sys, compiled, options);
  EXPECT_FALSE(trajectory.valid());
  EXPECT_FALSE(trajectory.applicable(options));
}

TEST(FastForward, TracingAndOptionMismatchesSuppressTheFastPath) {
  const auto sys = toy_system();
  const auto compiled = CompiledSchedule::from_plan(sys, toy_plan());
  const SimOptions options;
  const NoFailureTrajectory trajectory(sys, compiled, options);
  ASSERT_TRUE(trajectory.applicable(options));
  SimOptions traced = options;
  std::vector<TraceEvent> events;
  traced.trace = &events;
  EXPECT_FALSE(trajectory.applicable(traced));
  SimOptions final_ckpt = options;
  final_ckpt.take_final_checkpoint = true;
  EXPECT_FALSE(trajectory.applicable(final_ckpt));
  SimOptions other_cap = options;
  other_cap.max_time_factor = options.max_time_factor * 2.0;
  EXPECT_FALSE(trajectory.applicable(other_cap));
}

TEST(FastForward, CallbackModeScheduleNeverValidates) {
  const auto sys = toy_system();
  const auto adaptive = core::make_adaptive(sys, toy_plan());
  const auto compiled = CompiledSchedule::from_adaptive(sys, adaptive);
  const NoFailureTrajectory trajectory(sys, compiled, SimOptions{});
  EXPECT_FALSE(trajectory.valid());
}

// ---------------------------------------------------------------------------
// Batch engine vs frozen reference engine

TEST(BatchIdentity, SimulateMatchesReferenceAcrossRandomTrials) {
  const std::uint64_t seed = testprop::suite_seed(0x9b5bull);
  SCOPED_TRACE(testprop::repro(
      "BatchIdentity.SimulateMatchesReferenceAcrossRandomTrials", seed));
  const auto systems = systems::table1_systems();
  for (const auto& sys : systems) {
    const auto plan =
        CheckpointPlan::full_hierarchy(sys.base_time / 96.0,
                                       std::vector<int>(
                                           static_cast<std::size_t>(
                                               sys.levels() - 1),
                                           2));
    for (std::uint64_t k = 0; k < 8; ++k) {
      const std::uint64_t trial_seed = util::derive_stream_seed(seed, k);
      RandomFailureSource a(sys, util::Rng(trial_seed));
      RandomFailureSource b(sys, util::Rng(trial_seed));
      SCOPED_TRACE(::testing::Message() << sys.name << " trial " << k);
      expect_same_result(simulate(sys, plan, a), reference::simulate(sys, plan, b));
    }
  }
}

TEST(BatchIdentity, RunTrialsMatchesReferenceFieldForField) {
  const auto sys = systems::table1_system("D3");
  const auto plan = CheckpointPlan::full_hierarchy(2.0, {4});
  const TrialStats batch = run_trials(sys, plan, 64, 20180521);
  const TrialStats ref = reference::run_trials(sys, plan, 64, 20180521);
  expect_same_stats(batch, ref);
}

TEST(BatchIdentity, PooledRunTrialsMatchesReferenceFieldForField) {
  const auto sys = systems::table1_system("D5");
  const auto plan = CheckpointPlan::full_hierarchy(2.0, {3});
  util::ThreadPool pool(4);
  const TrialStats batch = run_trials(sys, plan, 64, 42, {}, &pool);
  const TrialStats ref = reference::run_trials(sys, plan, 64, 42);
  expect_same_stats(batch, ref);
}

TEST(BatchIdentity, RenewalProcessMatchesReferenceFieldForField) {
  const auto sys = systems::table1_system("M");
  const auto plan = CheckpointPlan::full_hierarchy(20.0, {4});
  const auto law = math::FailureLaw::weibull(0.7);
  const auto dist = law->distribution(sys.mtbf);
  const TrialStats batch =
      run_trials_with_distribution(sys, plan, *dist, 48, 7);
  const TrialStats ref =
      reference::run_trials_with_distribution(sys, plan, *dist, 48, 7);
  expect_same_stats(batch, ref);
}

TEST(BatchIdentity, CaptureDoesNotPerturbResults) {
  const auto sys = systems::table1_system("D1");
  const auto plan = CheckpointPlan::full_hierarchy(3.0, {4});
  const TrialStats bare = run_trials(sys, plan, 32, 11);
  TrialTraceCapture capture;
  capture.max_trials = 4;
  SimOptions options;
  options.capture = &capture;
  const TrialStats captured = run_trials(sys, plan, 32, 11, options);
  expect_same_stats(bare, captured);
  ASSERT_EQ(capture.trials.size(), 4u);
  for (const TrialTrace& t : capture.trials) {
    EXPECT_FALSE(t.events.empty());
  }
}

// ---------------------------------------------------------------------------
// Failure-source guards

TEST(ScriptedFailureSource, RejectsNonIncreasingScripts) {
  EXPECT_THROW(ScriptedFailureSource({{5.0, 0}, {5.0, 1}}),
               std::invalid_argument);
  EXPECT_THROW(ScriptedFailureSource({{5.0, 0}, {4.0, 0}}),
               std::invalid_argument);
  EXPECT_THROW(ScriptedFailureSource({{0.0, 0}}), std::invalid_argument);
  EXPECT_THROW(
      ScriptedFailureSource({{std::numeric_limits<double>::infinity(), 0}}),
      std::invalid_argument);
  try {
    ScriptedFailureSource({{2.0, 0}, {1.0, 0}});
    FAIL() << "non-increasing script must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("script[1]"), std::string::npos)
        << e.what();
  }
}

TEST(SeverityCdf, TopBucketIsPinnedToExactlyOne) {
  auto sys = toy_system();
  // A mix whose running sum falls a few ulps short of 1.
  sys.severity_probability = {0.1, 0.2, 0.3, 0.15, 0.25};
  const std::vector<double> cdf = severity_cdf(sys);
  ASSERT_EQ(cdf.size(), 5u);
  EXPECT_EQ(cdf.back(), 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) EXPECT_GE(cdf[i], cdf[i - 1]);
}

TEST(SeverityCdf, RejectsBrokenMixesWithNamedErrors) {
  auto sys = toy_system();
  sys.severity_probability = {0.5, 0.4};  // sums to 0.9
  try {
    severity_cdf(sys);
    FAIL() << "non-normalized mix must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("severity_probability"),
              std::string::npos)
        << e.what();
  }
  sys.severity_probability = {1.2, -0.2};
  try {
    severity_cdf(sys);
    FAIL() << "negative entry must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("severity_probability[1]"),
              std::string::npos)
        << e.what();
  }
  sys.severity_probability = {};
  EXPECT_THROW(severity_cdf(sys), std::invalid_argument);
}

}  // namespace
}  // namespace mlck::sim

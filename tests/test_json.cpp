#include <gtest/gtest.h>

#include "util/json.h"

namespace mlck::util {
namespace {

TEST(Json, DefaultIsNull) {
  const Json j;
  EXPECT_TRUE(j.is_null());
  EXPECT_EQ(j.type(), Json::Type::kNull);
}

TEST(Json, ScalarConstructionAndAccess) {
  EXPECT_TRUE(Json(true).as_bool());
  EXPECT_DOUBLE_EQ(Json(2.5).as_number(), 2.5);
  EXPECT_DOUBLE_EQ(Json(7).as_number(), 7.0);
  EXPECT_EQ(Json("hi").as_string(), "hi");
  EXPECT_EQ(Json(std::string("ho")).as_string(), "ho");
}

TEST(Json, TypedAccessorsThrowWithTypeNames) {
  try {
    Json(1.0).as_string();
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("expected string"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("number"), std::string::npos);
  }
}

TEST(Json, ParseScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(Json::parse("-3.75e2").as_number(), -375.0);
  EXPECT_EQ(Json::parse("\"text\"").as_string(), "text");
}

TEST(Json, ParseNestedDocument) {
  const Json doc = Json::parse(R"({
    "name": "demo",
    "mtbf": 120.5,
    "levels": [1, 2, 3],
    "nested": {"flag": true, "items": []}
  })");
  EXPECT_EQ(doc.at("name").as_string(), "demo");
  EXPECT_DOUBLE_EQ(doc.at("mtbf").as_number(), 120.5);
  EXPECT_EQ(doc.at("levels").size(), 3u);
  EXPECT_DOUBLE_EQ(doc.at("levels").at(1).as_number(), 2.0);
  EXPECT_TRUE(doc.at("nested").at("flag").as_bool());
  EXPECT_EQ(doc.at("nested").at("items").size(), 0u);
}

TEST(Json, ParseStringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\"b\\c\/d\n\t")").as_string(), "a\"b\\c/d\n\t");
  // é = e-acute, two UTF-8 bytes; A = 'A'.
  EXPECT_EQ(Json::parse(R"("Aé")").as_string(), "A\xc3\xa9");
}

TEST(Json, ParseErrorsCarryPosition) {
  try {
    Json::parse("{\n  \"a\": 1,\n  \"b\": }\n");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    // The bad token is on line 3.
    EXPECT_NE(std::string(e.what()).find("3:"), std::string::npos);
  }
}

TEST(Json, ParseRejectsGarbage) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("[1] extra"), JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW(Json::parse("truly"), JsonError);
  EXPECT_THROW(Json::parse("nul"), JsonError);
  EXPECT_THROW(Json::parse("01a"), JsonError);
}

TEST(Json, ParseRejectsExcessiveNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_THROW(Json::parse(deep), JsonError);
}

TEST(Json, RoundTripThroughDump) {
  const Json doc = Json::parse(
      R"({"a": [1, 2.5, "x"], "b": {"c": null, "d": false}, "e": -0.125})");
  EXPECT_EQ(Json::parse(doc.dump()), doc);
  EXPECT_EQ(Json::parse(doc.dump(2)), doc);
}

TEST(Json, DumpIsDeterministicAndSorted) {
  Json::Object obj;
  obj["zebra"] = Json(1);
  obj["alpha"] = Json(2);
  const std::string text = Json(obj).dump();
  EXPECT_LT(text.find("alpha"), text.find("zebra"));
  EXPECT_EQ(text, Json(obj).dump());
}

TEST(Json, DumpCompactAndPretty) {
  const Json doc = Json::parse(R"({"a": [1, 2]})");
  EXPECT_EQ(doc.dump(), R"({"a":[1,2]})");
  const std::string pretty = doc.dump(2);
  EXPECT_NE(pretty.find("\n  \"a\": [\n"), std::string::npos);
}

TEST(Json, DumpNumbers) {
  EXPECT_EQ(Json(200.0).dump(), "200");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json(0.5).dump(), "0.5");
  // Full precision survives a round trip.
  const double value = 1.9221704227164327;
  EXPECT_DOUBLE_EQ(Json::parse(Json(value).dump()).as_number(), value);
}

TEST(Json, DumpEscapesStrings) {
  EXPECT_EQ(Json("a\"b\n").dump(), R"("a\"b\n")");
  EXPECT_EQ(Json(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(Json, FindAndAtOnObjects) {
  const Json doc = Json::parse(R"({"x": 5})");
  EXPECT_NE(doc.find("x"), nullptr);
  EXPECT_EQ(doc.find("y"), nullptr);
  try {
    doc.at("y");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("\"y\""), std::string::npos);
  }
}

TEST(Json, ArrayBoundsChecked) {
  const Json doc = Json::parse("[1, 2]");
  EXPECT_DOUBLE_EQ(doc.at(std::size_t{1}).as_number(), 2.0);
  EXPECT_THROW(doc.at(std::size_t{2}), JsonError);
}

TEST(Json, MakeContainersMutate) {
  Json j;
  j.make_object()["k"] = Json(1);
  EXPECT_DOUBLE_EQ(j.at("k").as_number(), 1.0);
  Json a;
  a.make_array().push_back(Json("v"));
  EXPECT_EQ(a.at(std::size_t{0}).as_string(), "v");
  EXPECT_THROW(a.make_object(), JsonError);
}

}  // namespace
}  // namespace mlck::util

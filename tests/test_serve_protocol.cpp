// Framing tests and a fuzz pass for the advisory daemon's wire protocol:
// truncated frames, oversized length headers, zero-length frames,
// malformed JSON, interleaved partial writes, and random garbage. The
// contract under attack (docs/SERVING.md): the server answers with a
// structured error or closes the connection cleanly — it never crashes,
// never hangs, and keeps serving well-formed clients afterwards.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <string>
#include <vector>

#include "prop_support.h"
#include "serve/client.h"
#include "serve/fingerprint.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/socket.h"

namespace mlck {
namespace {

using util::Json;

/// Unique socket path per (process, tag): ctest may run suites in
/// parallel, and sockaddr_un paths must stay short.
std::string test_socket(const char* tag) {
  return "/tmp/mlck_" + std::to_string(::getpid()) + "_" + tag + ".sock";
}

TEST(ServeProtocol, FrameHeaderRoundTrips) {
  for (const std::uint32_t length :
       {0u, 1u, 255u, 256u, 65536u,
        static_cast<std::uint32_t>(serve::kMaxFrameBytes)}) {
    unsigned char header[serve::kFrameHeaderBytes];
    serve::encode_frame_header(length, header);
    EXPECT_EQ(serve::decode_frame_header(header), length);
  }
  unsigned char header[serve::kFrameHeaderBytes];
  serve::encode_frame_header(0x01020304u, header);
  EXPECT_EQ(header[0], 0x01);  // big-endian on the wire
  EXPECT_EQ(header[1], 0x02);
  EXPECT_EQ(header[2], 0x03);
  EXPECT_EQ(header[3], 0x04);
}

TEST(ServeProtocol, EncodeFramePrefixesPayload) {
  const std::string frame = serve::encode_frame("abc");
  ASSERT_EQ(frame.size(), serve::kFrameHeaderBytes + 3);
  EXPECT_EQ(frame.substr(serve::kFrameHeaderBytes), "abc");
}

/// A pipe gives read_frame a real blocking fd with precise control over
/// what bytes arrive before EOF.
struct TestPipe {
  int fds[2] = {-1, -1};
  TestPipe() { EXPECT_EQ(::pipe(fds), 0); }
  ~TestPipe() {
    close_write();
    if (fds[0] >= 0) ::close(fds[0]);
  }
  void close_write() {
    if (fds[1] >= 0) {
      ::close(fds[1]);
      fds[1] = -1;
    }
  }
  void write_bytes(const void* data, std::size_t size) {
    ASSERT_TRUE(util::write_all(fds[1], data, size));
  }
};

TEST(ServeProtocol, ReadFrameHandlesCleanEof) {
  TestPipe pipe;
  pipe.close_write();
  std::string payload;
  EXPECT_EQ(serve::read_frame(pipe.fds[0], payload),
            serve::FrameStatus::kClosed);
}

TEST(ServeProtocol, ReadFrameHandlesTruncatedHeader) {
  TestPipe pipe;
  const unsigned char partial[2] = {0, 0};
  pipe.write_bytes(partial, sizeof partial);
  pipe.close_write();
  std::string payload;
  EXPECT_EQ(serve::read_frame(pipe.fds[0], payload),
            serve::FrameStatus::kTruncated);
}

TEST(ServeProtocol, ReadFrameHandlesTruncatedBody) {
  TestPipe pipe;
  unsigned char header[serve::kFrameHeaderBytes];
  serve::encode_frame_header(100, header);
  pipe.write_bytes(header, sizeof header);
  pipe.write_bytes("only ten b", 10);
  pipe.close_write();
  std::string payload;
  EXPECT_EQ(serve::read_frame(pipe.fds[0], payload),
            serve::FrameStatus::kTruncated);
  EXPECT_TRUE(payload.empty());
}

TEST(ServeProtocol, ReadFrameRejectsZeroLength) {
  TestPipe pipe;
  unsigned char header[serve::kFrameHeaderBytes] = {0, 0, 0, 0};
  pipe.write_bytes(header, sizeof header);
  std::string payload;
  EXPECT_EQ(serve::read_frame(pipe.fds[0], payload),
            serve::FrameStatus::kEmpty);
}

TEST(ServeProtocol, ReadFrameRejectsOversizedWithoutBuffering) {
  TestPipe pipe;
  unsigned char header[serve::kFrameHeaderBytes];
  serve::encode_frame_header(0xFFFFFFFFu, header);
  pipe.write_bytes(header, sizeof header);
  std::string payload;
  // Returns immediately from the header alone — no attempt to read (or
  // allocate) 4 GiB of body.
  EXPECT_EQ(serve::read_frame(pipe.fds[0], payload),
            serve::FrameStatus::kOversized);
  EXPECT_TRUE(payload.empty());
}

TEST(ServeProtocol, ReadFrameRoundTripsAPayload) {
  TestPipe pipe;
  const std::string frame = serve::encode_frame("{\"op\":\"ping\"}");
  pipe.write_bytes(frame.data(), frame.size());
  std::string payload;
  ASSERT_EQ(serve::read_frame(pipe.fds[0], payload),
            serve::FrameStatus::kOk);
  EXPECT_EQ(payload, "{\"op\":\"ping\"}");
}

TEST(ServeProtocol, FingerprintMatchesFnv1aReference) {
  // FNV-1a 64 reference values (offset basis, and the classic "a").
  EXPECT_EQ(serve::fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(serve::fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(serve::fingerprint_hex(""), "cbf29ce484222325");
  EXPECT_EQ(serve::fingerprint_hex("a"), "af63dc4c8601ec8c");
}

/// Sends one raw ping and expects a well-formed pong on the same
/// connection — the "still alive and in sync" probe the fuzz loop uses.
void expect_ping_ok(int fd) {
  ASSERT_TRUE(serve::write_frame(fd, "{\"id\":7,\"op\":\"ping\"}"));
  std::string payload;
  ASSERT_EQ(serve::read_frame(fd, payload), serve::FrameStatus::kOk);
  const Json response = Json::parse(payload);
  EXPECT_TRUE(response.at("ok").as_bool());
  EXPECT_EQ(response.at("id").as_number(), 7.0);
}

/// Reads one response and asserts it is a structured error envelope.
void expect_error_reply(int fd) {
  std::string payload;
  ASSERT_EQ(serve::read_frame(fd, payload), serve::FrameStatus::kOk);
  const Json response = Json::parse(payload);
  EXPECT_FALSE(response.at("ok").as_bool());
  EXPECT_FALSE(response.at("error").at("code").as_string().empty());
  EXPECT_FALSE(response.at("error").at("message").as_string().empty());
}

TEST(ServeProtocol, FuzzMalformedInputNeverKillsTheDaemon) {
  const std::uint64_t seed = testprop::suite_seed(0x5EEDF00Dull);
  SCOPED_TRACE(testprop::repro(
      "ServeProtocol.FuzzMalformedInputNeverKillsTheDaemon", seed));
  util::Rng rng(seed);

  serve::ServerOptions options;
  options.socket_path = test_socket("fuzz");
  options.threads = 1;
  serve::Server server(options);

  for (int iteration = 0; iteration < 48; ++iteration) {
    SCOPED_TRACE("iteration " + std::to_string(iteration));
    util::Fd fd = util::unix_connect(options.socket_path);
    ASSERT_TRUE(fd.valid());
    switch (rng.below(6)) {
      case 0: {
        // Valid frame, garbage payload: structured error (bad_json, or
        // bad_request when the bytes happen to parse), stream stays in
        // sync.
        std::string junk;
        const std::size_t size = 1 + rng.below(64);
        for (std::size_t i = 0; i < size; ++i) {
          junk.push_back(static_cast<char>(rng.below(256)));
        }
        ASSERT_TRUE(serve::write_frame(fd.get(), junk));
        expect_error_reply(fd.get());
        expect_ping_ok(fd.get());
        break;
      }
      case 1: {
        // Truncated frame: header promises more than ever arrives, then
        // the client vanishes. The server must just drop the connection.
        unsigned char header[serve::kFrameHeaderBytes];
        serve::encode_frame_header(64 + rng.below(1024), header);
        ASSERT_TRUE(util::write_all(fd.get(), header, sizeof header));
        const std::string partial(rng.below(32), 'x');
        if (!partial.empty()) {
          ASSERT_TRUE(
              util::write_all(fd.get(), partial.data(), partial.size()));
        }
        break;  // close without finishing the frame
      }
      case 2: {
        // Oversized length header: structured error, then the server
        // closes (the stream position is unknowable past this point).
        unsigned char header[serve::kFrameHeaderBytes];
        serve::encode_frame_header(
            serve::kMaxFrameBytes + 1 + rng.below(1u << 20), header);
        ASSERT_TRUE(util::write_all(fd.get(), header, sizeof header));
        expect_error_reply(fd.get());
        std::string rest;
        EXPECT_EQ(serve::read_frame(fd.get(), rest),
                  serve::FrameStatus::kClosed);
        break;
      }
      case 3: {
        // Zero-length frame: invalid but unambiguous — error reply and
        // the connection keeps working.
        const unsigned char header[serve::kFrameHeaderBytes] = {0, 0, 0, 0};
        ASSERT_TRUE(util::write_all(fd.get(), header, sizeof header));
        expect_error_reply(fd.get());
        expect_ping_ok(fd.get());
        break;
      }
      case 4: {
        // Interleaved partial writes: a valid request dribbled one byte
        // at a time must parse exactly like one write.
        const std::string frame =
            serve::encode_frame("{\"id\":\"slow\",\"op\":\"ping\"}");
        for (const char byte : frame) {
          ASSERT_TRUE(util::write_all(fd.get(), &byte, 1));
        }
        std::string payload;
        ASSERT_EQ(serve::read_frame(fd.get(), payload),
                  serve::FrameStatus::kOk);
        const Json response = Json::parse(payload);
        EXPECT_TRUE(response.at("ok").as_bool());
        EXPECT_EQ(response.at("id").as_string(), "slow");
        break;
      }
      case 5: {
        // Well-formed JSON, malformed request: wrong root type, unknown
        // op, or an op with junk keys — always a structured error.
        static const char* kBadRequests[] = {
            "[1,2,3]",
            "\"ping\"",
            "{\"op\":\"conquer\"}",
            "{\"op\":\"ping\",\"flux\":1}",
            "{\"op\":\"optimize\"}",
            "{\"op\":\"optimize\",\"system\":\"D3\",\"optimizer\":"
            "{\"warp\":9}}",
            "{\"op\":\"predict\",\"system\":\"D3\"}",
            "{\"op\":\"scenario\"}",
        };
        const char* request = kBadRequests[rng.below(std::size(kBadRequests))];
        ASSERT_TRUE(serve::write_frame(fd.get(), request));
        expect_error_reply(fd.get());
        expect_ping_ok(fd.get());
        break;
      }
      default:
        FAIL() << "unreachable fuzz mode";
    }
  }

  // Liveness after the storm: a fresh well-formed client gets service.
  serve::Client client(options.socket_path);
  Json::Object ping;
  ping["op"] = Json("ping");
  const Json response = client.call(Json(std::move(ping)));
  EXPECT_TRUE(response.at("ok").as_bool());
  server.stop();
}

}  // namespace
}  // namespace mlck

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/dauwe_model.h"
#include "models/benoit.h"
#include "models/daly.h"
#include "models/di.h"
#include "models/registry.h"
#include "models/young.h"
#include "systems/test_systems.h"

namespace mlck::models {
namespace {

using core::CheckpointPlan;

TEST(Young, IntervalFormula) {
  EXPECT_DOUBLE_EQ(young_optimal_interval(2.0, 100.0), 20.0);
  EXPECT_DOUBLE_EQ(young_optimal_interval(0.5, 400.0), 20.0);
}

TEST(Young, FirstOrderModelShape) {
  // h = delta/tau + lambda (tau/2 + R).
  const double t = young_expected_time(1000.0, 20.0, 2.0, 3.0, 100.0);
  EXPECT_NEAR(t, 1000.0 * (1.0 + 0.1 + 0.01 * 13.0), 1e-9);
}

TEST(Daly, ExpectedTimeReducesToCheckpointOverheadWithoutFailures) {
  // M -> infinity: T -> T_B (1 + delta/tau).
  const double t = daly_expected_time(1000.0, 20.0, 2.0, 3.0, 1e12);
  EXPECT_NEAR(t, 1000.0 * 1.1, 1e-3);
}

TEST(Daly, ExpectedTimeMonotoneInRestartAndCheckpointCosts) {
  const double base = daly_expected_time(1000.0, 20.0, 2.0, 3.0, 50.0);
  EXPECT_GT(daly_expected_time(1000.0, 20.0, 2.0, 9.0, 50.0), base);
  EXPECT_GT(daly_expected_time(1000.0, 20.0, 6.0, 3.0, 50.0), base);
  EXPECT_GT(daly_expected_time(1000.0, 20.0, 2.0, 3.0, 25.0), base);
}

TEST(Daly, OptimalIntervalMinimizesTheExactFormula) {
  const double delta = 5.0, restart = 5.0, mtbf = 500.0;
  const double tau_star = daly_optimal_interval(delta, mtbf);
  const double at_star =
      daly_expected_time(1000.0, tau_star, delta, restart, mtbf);
  double best = std::numeric_limits<double>::infinity();
  for (double tau = 1.0; tau < 400.0; tau += 0.25) {
    best = std::min(best,
                    daly_expected_time(1000.0, tau, delta, restart, mtbf));
  }
  EXPECT_NEAR(at_star / best, 1.0, 0.002);
}

TEST(Daly, HighFailureRegimeClampsIntervalToMtbf) {
  EXPECT_DOUBLE_EQ(daly_optimal_interval(10.0, 4.0), 4.0);
}

TEST(DalyModel, RejectsMultilevelPlans) {
  const auto sys = systems::table1_system("D1");
  const DalyModel model;
  const auto multi = CheckpointPlan::full_hierarchy(5.0, {3});
  EXPECT_TRUE(std::isinf(model.expected_time(sys, multi)));
  const auto single = CheckpointPlan::single_level(5.0, 1);
  EXPECT_TRUE(std::isfinite(model.expected_time(sys, single)));
}

TEST(DalyTechnique, UsesThePfsLevelOnly) {
  const auto sys = systems::table1_system("B");
  const DalyTechnique technique;
  const auto result = technique.select_plan(sys, nullptr);
  EXPECT_EQ(result.plan.levels, std::vector<int>{3});
  EXPECT_GT(result.predicted_efficiency, 0.0);
  EXPECT_LT(result.predicted_efficiency, 1.0);
  EXPECT_NEAR(result.plan.tau0,
              daly_optimal_interval(2.5, 333.33), 1e-12);
}

TEST(DiModel, EqualsDauweWithFailureTermsDisabled) {
  const auto sys = systems::table1_system("D4");
  const DiModel di;
  const core::DauweModel reference{di_model_options()};
  for (const double tau : {0.5, 2.0, 8.0}) {
    for (const int n : {0, 3, 10}) {
      const auto plan = CheckpointPlan::full_hierarchy(tau, {n});
      EXPECT_DOUBLE_EQ(di.expected_time(sys, plan),
                       reference.expected_time(sys, plan));
    }
  }
}

TEST(DiModel, OptimisticRelativeToFullModel) {
  const auto sys = systems::table1_system("D8");
  const DiModel di;
  const core::DauweModel full;
  const auto plan = CheckpointPlan::full_hierarchy(1.5, {4});
  EXPECT_LT(di.expected_time(sys, plan), full.expected_time(sys, plan));
}

TEST(DiTechnique, UsesTopTwoLevelsOnLargerSystems) {
  const auto sys = systems::table1_system("B");
  const DiTechnique technique;
  const auto result = technique.select_plan(sys, nullptr);
  // Either both top levels or, if the model prefers, just level L-1.
  const bool two_level = result.plan.levels == std::vector<int>({2, 3});
  const bool penultimate_only = result.plan.levels == std::vector<int>({2});
  EXPECT_TRUE(two_level || penultimate_only) << result.plan.to_string();
}

TEST(DiTechnique, UsesBothLevelsOfTwoLevelSystems) {
  const auto sys = systems::table1_system("D2");
  const DiTechnique technique;
  const auto result = technique.select_plan(sys, nullptr);
  EXPECT_EQ(result.plan.levels, (std::vector<int>{0, 1}));
  EXPECT_GT(result.predicted_efficiency, 0.0);
}

TEST(Benoit, OptimalFrequencyFormula) {
  EXPECT_DOUBLE_EQ(benoit_optimal_frequency(0.02, 1.0), 0.1);
  EXPECT_DOUBLE_EQ(benoit_optimal_frequency(0.08, 4.0), 0.1);
}

TEST(Benoit, WasteRateMatchesHandComputation) {
  // Single level: H = delta/tau + lambda (tau/2 + R).
  const auto sys = systems::SystemConfig::from_table_row(
      "single", 1, 100.0, {1.0}, {2.0}, 1000.0);
  const auto plan = CheckpointPlan::single_level(20.0, 0);
  EXPECT_NEAR(benoit_waste_rate(sys, plan),
              2.0 / 20.0 + 0.01 * (10.0 + 2.0), 1e-12);
  EXPECT_NEAR(BenoitModel{}.expected_time(sys, plan),
              1000.0 * (1.0 + 0.22), 1e-9);
}

TEST(Benoit, ClosedFormFrequencyMinimizesItsOwnWaste) {
  const auto sys = systems::SystemConfig::from_table_row(
      "single", 1, 100.0, {1.0}, {2.0}, 1000.0);
  const double x_star = benoit_optimal_frequency(0.01, 2.0);
  const double h_star =
      benoit_waste_rate(sys, CheckpointPlan::single_level(1.0 / x_star, 0));
  for (const double factor : {0.5, 0.8, 1.25, 2.0}) {
    const auto plan =
        CheckpointPlan::single_level(1.0 / (x_star * factor), 0);
    EXPECT_GE(benoit_waste_rate(sys, plan), h_star - 1e-12);
  }
  // H* = sqrt(2 lambda delta) + lambda R at the relaxed optimum.
  EXPECT_NEAR(h_star, std::sqrt(2.0 * 0.01 * 2.0) + 0.01 * 2.0, 1e-12);
}

TEST(BenoitTechnique, BuildsNestedPatternOverAllLevels) {
  const auto sys = systems::table1_system("M");
  const BenoitTechnique technique;
  const auto result = technique.select_plan(sys, nullptr);
  EXPECT_EQ(result.plan.levels, (std::vector<int>{0, 1, 2}));
  EXPECT_NO_THROW(result.plan.validate(sys));
  // The relaxed level-1 interval for M is sqrt(2 delta_1 / lambda_1)
  // ~ 36.6 minutes.
  EXPECT_NEAR(result.plan.tau0, 36.6, 2.0);
  EXPECT_GT(result.predicted_efficiency, 0.9);  // M is easy
}

TEST(BenoitTechnique, PredictionIsOptimisticOnHarshSystems) {
  // Its own first-order forecast of its plan must exceed what the full
  // Dauwe model forecasts for that same plan (it ignores failed C/R).
  const auto sys = systems::table1_system("D8");
  const BenoitTechnique technique;
  const auto result = technique.select_plan(sys, nullptr);
  const core::DauweModel full;
  const double full_eff =
      sys.base_time / full.expected_time(sys, result.plan);
  EXPECT_GT(result.predicted_efficiency, full_eff);
}

TEST(Registry, FigureTwoLineupAndNames) {
  const auto lineup = figure2_techniques();
  ASSERT_EQ(lineup.size(), 5u);
  EXPECT_EQ(lineup[0]->name(), "Dauwe et al.");
  EXPECT_EQ(lineup[1]->name(), "Di et al.");
  EXPECT_EQ(lineup[2]->name(), "Moody et al.");
  EXPECT_EQ(lineup[3]->name(), "Benoit et al.");
  EXPECT_EQ(lineup[4]->name(), "Daly");
  EXPECT_EQ(multilevel_techniques().size(), 3u);
}

TEST(Registry, MakeTechniqueByName) {
  EXPECT_EQ(make_technique("dauwe")->name(), "Dauwe et al.");
  EXPECT_EQ(make_technique("young")->name(), "Young");
  EXPECT_THROW(make_technique("unknown"), std::out_of_range);
}

}  // namespace
}  // namespace mlck::models

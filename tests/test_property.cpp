#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "core/dauwe_model.h"
#include "core/optimizer.h"
#include "models/daly.h"
#include "sim/trial_runner.h"
#include "systems/test_systems.h"

namespace mlck {
namespace {

using core::CheckpointPlan;
using core::DauweModel;

// ---------------------------------------------------------------------
// Property sweep: on single-level problems the Dauwe recursion and Daly's
// exact closed form model the same stochastic process, across a grid of
// regimes from benign to harsh.
// ---------------------------------------------------------------------

class SingleLevelAgreement
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(SingleLevelAgreement, DauweWithinThreePercentOfDaly) {
  const auto [mtbf, cost, tau] = GetParam();
  const auto sys = systems::SystemConfig::from_table_row(
      "single", 1, mtbf, {1.0}, {cost}, 1000.0);
  const DauweModel model;
  const auto plan = CheckpointPlan::single_level(tau, 0);
  const double ours = model.expected_time(sys, plan);
  const double daly = models::daly_expected_time(1000.0, tau, cost, cost, mtbf);
  EXPECT_NEAR(ours / daly, 1.0, 0.03)
      << "mtbf=" << mtbf << " cost=" << cost << " tau=" << tau;
}

INSTANTIATE_TEST_SUITE_P(
    RegimeGrid, SingleLevelAgreement,
    ::testing::Combine(::testing::Values(50.0, 200.0, 1000.0),
                       ::testing::Values(0.5, 2.0, 8.0),
                       ::testing::Values(5.0, 20.0, 80.0)));

// ---------------------------------------------------------------------
// Property sweep: model sanity on every Table I system.
// ---------------------------------------------------------------------

class TableOneProperties : public ::testing::TestWithParam<std::string> {};

TEST_P(TableOneProperties, ModelEfficiencyInUnitInterval) {
  const auto sys = systems::table1_system(GetParam());
  const DauweModel model;
  const auto plan = core::CheckpointPlan::full_hierarchy(
      2.0, std::vector<int>(std::size_t(sys.levels() - 1), 3));
  const auto p = model.predict(sys, plan);
  EXPECT_GT(p.efficiency, 0.0);
  EXPECT_LT(p.efficiency, 1.0);
  EXPECT_GE(p.expected_time, sys.base_time);
}

TEST_P(TableOneProperties, BreakdownComponentsNonNegativeAndComplete) {
  const auto sys = systems::table1_system(GetParam());
  const DauweModel model;
  const auto plan = core::CheckpointPlan::full_hierarchy(
      5.0, std::vector<int>(std::size_t(sys.levels() - 1), 2));
  const auto p = model.predict(sys, plan);
  const auto& b = p.breakdown;
  for (const double v :
       {b.compute, b.checkpoint_ok, b.checkpoint_failed, b.restart_ok,
        b.restart_failed, b.rework_compute, b.rework_checkpoint,
        b.scratch_rework}) {
    EXPECT_GE(v, 0.0);
  }
  EXPECT_NEAR(b.total(), p.expected_time, 1e-9 * p.expected_time);
}

TEST_P(TableOneProperties, SimulatedEfficiencyNeverExceedsOne) {
  const auto sys = systems::table1_system(GetParam());
  const auto plan = core::CheckpointPlan::full_hierarchy(
      2.0, std::vector<int>(std::size_t(sys.levels() - 1), 3));
  const auto stats = sim::run_trials(sys, plan, 10, 42);
  EXPECT_LE(stats.efficiency.max, 1.0);
  EXPECT_GT(stats.efficiency.min, 0.0);
}

TEST_P(TableOneProperties, LongerIntervalsLoseMoreWorkPerFailure) {
  // gamma E(tau) (N+1) grows with tau in the model: lost-work share rises
  // monotonically with the interval on any system.
  const auto sys = systems::table1_system(GetParam());
  const DauweModel model;
  double previous = -1.0;
  for (const double tau : {1.0, 3.0, 9.0, 27.0}) {
    const auto plan = core::CheckpointPlan::full_hierarchy(
        tau, std::vector<int>(std::size_t(sys.levels() - 1), 2));
    const auto p = model.predict(sys, plan);
    if (!std::isfinite(p.expected_time)) break;
    EXPECT_GT(p.breakdown.rework_compute, previous);
    previous = p.breakdown.rework_compute;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSystems, TableOneProperties,
                         ::testing::Values("M", "B", "D1", "D2", "D3", "D4",
                                           "D5", "D6", "D7", "D8", "D9"));

// ---------------------------------------------------------------------
// Property sweep: simulation accounting integrity across policies and
// difficulty levels.
// ---------------------------------------------------------------------

class SimulationIntegrity
    : public ::testing::TestWithParam<
          std::tuple<std::string, sim::RestartPolicy>> {};

TEST_P(SimulationIntegrity, EveryMinuteAccountedFor) {
  const auto [name, policy] = GetParam();
  const auto sys = systems::table1_system(name);
  const auto plan = core::CheckpointPlan::full_hierarchy(
      2.0, std::vector<int>(std::size_t(sys.levels() - 1), 4));
  sim::SimOptions opts;
  opts.restart_policy = policy;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    sim::RandomFailureSource src(
        sys, util::Rng(util::derive_stream_seed(31, seed)));
    const auto r = sim::simulate(sys, plan, src, opts);
    EXPECT_NEAR(r.breakdown.total(), r.total_time,
                1e-6 * (1.0 + r.total_time));
    if (!r.capped) {
      EXPECT_DOUBLE_EQ(r.breakdown.useful, sys.base_time);
    }
  }
}

TEST_P(SimulationIntegrity, EscalationPolicyNeverBeatsRetryOnAverage) {
  // Escalating to a slower checkpoint level can only cost time in this
  // simulator (same restore points, pricier restarts), so the mean total
  // time under escalation is >= retry up to sampling noise.
  const auto [name, policy] = GetParam();
  if (policy != sim::RestartPolicy::kMoodyEscalate) {
    GTEST_SKIP() << "comparison runs once, on the escalate parameter";
  }
  const auto sys = systems::table1_system(name);
  const auto plan = core::CheckpointPlan::full_hierarchy(
      2.0, std::vector<int>(std::size_t(sys.levels() - 1), 4));
  sim::SimOptions retry, escalate;
  escalate.restart_policy = sim::RestartPolicy::kMoodyEscalate;
  const auto r = sim::run_trials(sys, plan, 80, 7, retry);
  const auto e = sim::run_trials(sys, plan, 80, 7, escalate);
  EXPECT_GE(e.total_time.mean,
            r.total_time.mean - 2.0 * r.total_time.ci95_halfwidth())
      << name;
}

INSTANTIATE_TEST_SUITE_P(
    PolicyGrid, SimulationIntegrity,
    ::testing::Combine(::testing::Values("M", "B", "D2", "D4", "D7", "D9"),
                       ::testing::Values(sim::RestartPolicy::kRetrySameLevel,
                                         sim::RestartPolicy::kMoodyEscalate)));

// ---------------------------------------------------------------------
// Property sweep: the optimizer respects the solution-space bound and
// improves on naive plans everywhere.
// ---------------------------------------------------------------------

class OptimizerProperties : public ::testing::TestWithParam<std::string> {};

TEST_P(OptimizerProperties, BeatsAFixedNaivePlan) {
  const auto sys = systems::table1_system(GetParam());
  const DauweModel model;
  const auto best = core::optimize_intervals(model, sys);
  const auto naive = core::CheckpointPlan::full_hierarchy(
      10.0, std::vector<int>(std::size_t(sys.levels() - 1), 5));
  EXPECT_LE(best.expected_time,
            model.expected_time(sys, naive) * (1.0 + 1e-9));
  EXPECT_LE(best.plan.work_per_top_period(), sys.base_time);
  EXPECT_GT(best.plan.tau0, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllSystems, OptimizerProperties,
                         ::testing::Values("M", "B", "D1", "D3", "D5", "D7",
                                           "D9"));

}  // namespace
}  // namespace mlck

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/hypothesis.h"
#include "stats/summary.h"
#include "stats/welford.h"
#include "util/rng.h"

namespace mlck::stats {
namespace {

TEST(Welford, EmptyAndSingleObservation) {
  Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_EQ(w.variance(), 0.0);
  w.add(3.5);
  EXPECT_EQ(w.count(), 1u);
  EXPECT_DOUBLE_EQ(w.mean(), 3.5);
  EXPECT_EQ(w.variance(), 0.0);
  EXPECT_DOUBLE_EQ(w.min(), 3.5);
  EXPECT_DOUBLE_EQ(w.max(), 3.5);
}

TEST(Welford, MatchesNaiveTwoPass) {
  const std::vector<double> xs{1.0, 2.5, -3.0, 7.25, 0.0, 4.5, 4.5};
  Welford w;
  double sum = 0.0;
  for (const double x : xs) {
    w.add(x);
    sum += x;
  }
  const double mean = sum / double(xs.size());
  double ss = 0.0;
  for (const double x : xs) ss += (x - mean) * (x - mean);
  const double var = ss / double(xs.size() - 1);
  EXPECT_NEAR(w.mean(), mean, 1e-12);
  EXPECT_NEAR(w.variance(), var, 1e-12);
  EXPECT_NEAR(w.stddev(), std::sqrt(var), 1e-12);
  EXPECT_DOUBLE_EQ(w.min(), -3.0);
  EXPECT_DOUBLE_EQ(w.max(), 7.25);
}

TEST(Welford, StableForLargeOffsets) {
  // Sum-of-squares formulas lose all precision here; Welford must not.
  Welford w;
  const double offset = 1e12;
  for (const double x : {offset + 1.0, offset + 2.0, offset + 3.0}) w.add(x);
  EXPECT_NEAR(w.variance(), 1.0, 1e-6);
}

TEST(Welford, MergeEqualsSequential) {
  util::Rng rng(11);
  Welford all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform() * 10.0 - 5.0;
    all.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Welford, MergeWithEmptySides) {
  Welford a, b;
  a.add(1.0);
  a.add(3.0);
  Welford a_copy = a;
  a.merge(b);  // empty right
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a_copy);  // empty left
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Summary, ConfidenceIntervalShrinksWithN) {
  Welford small, large;
  util::Rng rng(13);
  for (int i = 0; i < 20; ++i) small.add(rng.uniform());
  for (int i = 0; i < 2000; ++i) large.add(rng.uniform());
  const Summary s = summarize(small);
  const Summary l = summarize(large);
  EXPECT_GT(s.ci95_halfwidth(), l.ci95_halfwidth());
  // Half width ~ 1.96 sd / sqrt(n).
  EXPECT_NEAR(l.ci95_halfwidth(),
              1.96 * l.stddev / std::sqrt(2000.0), 1e-12);
}

TEST(NormalCdf, KnownQuantiles) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-4);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-4);
  EXPECT_NEAR(normal_cdf(4.0), 0.9999683, 1e-6);
}

TEST(WelchTest, DetectsClearSeparation) {
  Welford a, b;
  util::Rng rng(17);
  for (int i = 0; i < 400; ++i) {
    a.add(0.60 + 0.05 * (rng.uniform() - 0.5));
    b.add(0.40 + 0.05 * (rng.uniform() - 0.5));
  }
  const WelchResult r = welch_test(summarize(a), summarize(b));
  EXPECT_GT(r.statistic, 10.0);
  EXPECT_TRUE(r.significant());
  EXPECT_LT(r.p_two_sided, 1e-6);
}

TEST(WelchTest, NoFalsePositiveOnIdenticalPopulations) {
  Welford a, b;
  util::Rng rng(19);
  for (int i = 0; i < 400; ++i) {
    a.add(rng.uniform());
    b.add(rng.uniform());
  }
  const WelchResult r = welch_test(summarize(a), summarize(b));
  EXPECT_LT(std::abs(r.statistic), 3.0);
}

TEST(WelchTest, DegenerateInputs) {
  Welford a, b;
  a.add(1.0);
  b.add(2.0);
  // Single observations: no variance estimate, test abstains (p = 1).
  const WelchResult r = welch_test(summarize(a), summarize(b));
  EXPECT_EQ(r.p_two_sided, 1.0);

  Welford c, d;
  for (int i = 0; i < 10; ++i) {
    c.add(5.0);
    d.add(5.0);
  }
  const WelchResult same = welch_test(summarize(c), summarize(d));
  EXPECT_EQ(same.p_two_sided, 1.0);
  for (int i = 0; i < 10; ++i) d.add(6.0);
  const WelchResult diff = welch_test(summarize(c), summarize(d));
  EXPECT_TRUE(diff.significant());
}

}  // namespace
}  // namespace mlck::stats

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "engine/scenario.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "sim/trial_runner.h"
#include "systems/test_systems.h"
#include "util/json.h"
#include "util/thread_pool.h"

namespace mlck::obs {
namespace {

using core::CheckpointPlan;

/// Full-hierarchy plan sized for the system's level count (Table I systems
/// range from 2 to 4 levels).
CheckpointPlan plan_for(const systems::SystemConfig& sys, double tau0) {
  std::vector<int> counts(static_cast<std::size_t>(sys.levels()) - 1, 2);
  return CheckpointPlan::full_hierarchy(tau0, counts);
}

/// Runs a captured Monte-Carlo batch and returns the capture.
sim::TrialTraceCapture capture_trials(const systems::SystemConfig& sys,
                                      const CheckpointPlan& plan,
                                      std::size_t trials, std::uint64_t seed,
                                      sim::SimOptions opts = {},
                                      util::ThreadPool* pool = nullptr) {
  sim::TrialTraceCapture capture;
  capture.max_trials = trials;
  opts.capture = &capture;
  sim::run_trials(sys, plan, trials, seed, opts, pool);
  return capture;
}

TEST(TraceSink, SpanRecordsOnTheCallingThreadsTrack) {
  TraceSink sink;
  sink.name_current_thread("main");
  {
    Span a(&sink, "phase.a", "test");
    Span b(&sink, "phase.b", "test");
  }
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 2u);
  // RAII order: b (inner) completes first.
  EXPECT_EQ(events[0].name, "phase.b");
  EXPECT_EQ(events[1].name, "phase.a");
  for (const auto& ev : events) {
    EXPECT_EQ(ev.category, "test");
    EXPECT_EQ(ev.thread_id, 0);  // first (only) thread seen
    EXPECT_GE(ev.start_us, 0.0);
    EXPECT_GE(ev.end_us, ev.start_us);
  }
  const auto names = sink.thread_names();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names.at(0), "main");
}

TEST(TraceSink, NullSinkSpansAreNoops) {
  Span s(nullptr, "never.recorded", "test");  // must not crash or allocate ids
}

TEST(TraceSink, FirstThreadNameWins) {
  TraceSink sink;
  sink.name_current_thread("first");
  sink.name_current_thread("second");
  EXPECT_EQ(sink.thread_names().at(0), "first");
}

TEST(TraceSink, PoolWorkersGetSeparateTracks) {
  TraceSink sink;
  util::ThreadPool pool(3);
  pool.attach_trace(&sink);
  const auto sys = systems::table1_system("D3");
  sim::run_trials(sys, plan_for(sys, 3.0), 24, 7, {}, &pool);
  EXPECT_GT(sink.size(), 0u);  // pool.task spans
  std::map<int, int> per_track;
  for (const auto& ev : sink.events()) {
    EXPECT_EQ(ev.name, "pool.task");
    ++per_track[ev.thread_id];
  }
  // All spans came from worker threads that named their tracks.
  for (const auto& [id, name] : sink.thread_names()) {
    EXPECT_NE(name.find("pool worker"), std::string::npos) << id;
  }
}

// ---- Auditor property suite ---------------------------------------------

TEST(TraceAudit, BreakdownBitForBitAcrossSystemsAndSeeds) {
  // Three Table I systems spanning 2-4 checkpoint levels, several seeds
  // each; every captured trial's event stream must tile [0, total_time]
  // and rebuild the breakdown exactly.
  std::size_t audited = 0;
  for (const char* name : {"M", "B", "D3"}) {
    const auto sys = systems::table1_system(name);
    const auto plan = plan_for(sys, name[0] == 'M' ? 30.0 : 3.0);
    for (std::uint64_t seed : {1u, 42u, 20180521u}) {
      const auto capture = capture_trials(sys, plan, 6, seed);
      ASSERT_EQ(capture.trials.size(), 6u);
      for (const auto& trial : capture.trials) {
        const auto report =
            audit_trial_trace(sys, trial.result, trial.events);
        EXPECT_TRUE(report.ok())
            << name << " seed " << seed << " trial " << trial.trial << ": "
            << (report.errors.empty() ? "" : report.errors.front());
        ++audited;
      }
    }
  }
  EXPECT_EQ(audited, 3u * 3u * 6u);
}

TEST(TraceAudit, ScratchRestartTrialsAuditClean) {
  // A level-0-only plan on the 4-level system B cannot restore after any
  // failure of severity >= 1, forcing restarts from scratch.
  const auto sys = systems::table1_system("B");
  const auto plan = CheckpointPlan::single_level(2.0, 0);
  const auto capture = capture_trials(sys, plan, 8, 11);
  long long scratches = 0;
  for (const auto& trial : capture.trials) {
    scratches += trial.result.scratch_restarts;
    const auto report = audit_trial_trace(sys, trial.result, trial.events);
    EXPECT_TRUE(report.ok())
        << "trial " << trial.trial << ": "
        << (report.errors.empty() ? "" : report.errors.front());
  }
  EXPECT_GT(scratches, 0) << "suite no longer exercises scratch restarts";
}

TEST(TraceAudit, CappedTrialMarksTruncationAndAuditsClean) {
  // A cap barely above one interval truncates the trial mid-flight: the
  // last event must carry the explicit truncated_by_cap flag and the
  // reconstruction must still match, including the cap attribution.
  const auto sys = systems::table1_system("D3");
  sim::SimOptions opts;
  opts.max_time_factor = 0.01;  // 14.4 of 1440 minutes: always caps
  const auto capture = capture_trials(sys, plan_for(sys, 3.0), 4, 5, opts);
  for (const auto& trial : capture.trials) {
    ASSERT_TRUE(trial.result.capped);
    ASSERT_FALSE(trial.events.empty());
    const auto& last = trial.events.back();
    EXPECT_TRUE(last.truncated_by_cap);
    EXPECT_FALSE(last.completed);
    EXPECT_EQ(last.failure_severity, -1);
    // No event other than the last may be truncated.
    for (std::size_t i = 0; i + 1 < trial.events.size(); ++i) {
      EXPECT_FALSE(trial.events[i].truncated_by_cap) << i;
    }
    const auto report = audit_trial_trace(sys, trial.result, trial.events);
    EXPECT_TRUE(report.ok())
        << (report.errors.empty() ? "" : report.errors.front());
  }
}

TEST(TraceAudit, TamperedStreamIsRejected) {
  const auto sys = systems::table1_system("D3");
  auto capture = capture_trials(sys, plan_for(sys, 3.0), 1, 3);
  ASSERT_EQ(capture.trials.size(), 1u);
  auto& trial = capture.trials.front();
  ASSERT_GT(trial.events.size(), 2u);
  ASSERT_TRUE(
      audit_trial_trace(sys, trial.result, trial.events).ok());

  // Stretch one event: the tiling check must flag the gap.
  auto gapped = trial.events;
  gapped[1].end += 0.5;
  EXPECT_FALSE(audit_trial_trace(sys, trial.result, gapped).ok());

  // Corrupt a work annotation: the breakdown reconstruction must diverge.
  auto miscredited = trial.events;
  miscredited.back().work += 1.0;
  EXPECT_FALSE(
      audit_trial_trace(sys, trial.result, miscredited).ok());

  // Drop the final event: the stream no longer reaches total_time.
  auto short_stream = trial.events;
  short_stream.pop_back();
  EXPECT_FALSE(
      audit_trial_trace(sys, trial.result, short_stream).ok());
}

// ---- Capture determinism & bit-identity ----------------------------------

TEST(TrialCapture, PoolAndSerialCapturesAreIdentical) {
  const auto sys = systems::table1_system("B");
  const auto plan = plan_for(sys, 3.0);
  const auto serial = capture_trials(sys, plan, 6, 99);
  util::ThreadPool pool(4);
  const auto pooled = capture_trials(sys, plan, 6, 99, {}, &pool);
  // Byte-identical event streams regardless of scheduling (compare via
  // the JSONL exporter, which dumps every event field).
  EXPECT_EQ(trace_jsonl(nullptr, &serial), trace_jsonl(nullptr, &pooled));
}

TEST(TrialCapture, CapturesOnlyTheFirstMaxTrialsByIndex) {
  const auto sys = systems::table1_system("D3");
  const auto plan = plan_for(sys, 3.0);
  sim::TrialTraceCapture capture;
  capture.max_trials = 3;
  sim::SimOptions opts;
  opts.capture = &capture;
  const auto stats = sim::run_trials(sys, plan, 10, 4, opts);
  EXPECT_EQ(stats.trials, 10u);
  ASSERT_EQ(capture.trials.size(), 3u);
  for (std::size_t k = 0; k < capture.trials.size(); ++k) {
    EXPECT_EQ(capture.trials[k].trial, k);
    EXPECT_FALSE(capture.trials[k].events.empty());
  }
}

TEST(TrialCapture, AttachingCaptureDoesNotPerturbResults) {
  const auto sys = systems::table1_system("B");
  const auto plan = plan_for(sys, 3.0);
  const auto bare = sim::run_trials(sys, plan, 30, 2018);
  sim::TrialTraceCapture capture;
  sim::SimOptions opts;
  opts.capture = &capture;
  const auto captured = sim::run_trials(sys, plan, 30, 2018, opts);
  EXPECT_EQ(bare.efficiency.mean, captured.efficiency.mean);
  EXPECT_EQ(bare.efficiency.stddev, captured.efficiency.stddev);
  EXPECT_EQ(bare.total_time.mean, captured.total_time.mean);
  EXPECT_EQ(bare.time_shares.useful, captured.time_shares.useful);
  EXPECT_EQ(bare.time_shares.rework_restart,
            captured.time_shares.rework_restart);
}

TEST(Scenario, TracingIsObserveOnlyBitIdentical) {
  // Golden bit-identity: a full scenario run with a TraceSink, a pool
  // trace, and trial capture attached must produce exactly the same
  // outcome as the bare run.
  engine::ScenarioSpec spec;
  spec.system = systems::table1_system("D4");
  spec.trials = 40;
  spec.seed = 77;
  const auto bare = engine::run_scenario(spec);

  TraceSink sink;
  sink.name_current_thread("main");
  util::ThreadPool pool(3);
  pool.attach_trace(&sink);
  sim::TrialTraceCapture capture;
  engine::ScenarioSpec traced = spec;
  traced.sim.capture = &capture;
  const auto outcome = engine::run_scenario(traced, &pool, nullptr, &sink);

  EXPECT_EQ(bare.selected.plan.tau0, outcome.selected.plan.tau0);
  EXPECT_EQ(bare.selected.plan.levels, outcome.selected.plan.levels);
  EXPECT_EQ(bare.selected.plan.counts, outcome.selected.plan.counts);
  EXPECT_EQ(bare.selected.predicted_efficiency,
            outcome.selected.predicted_efficiency);
  EXPECT_EQ(bare.stats.efficiency.mean, outcome.stats.efficiency.mean);
  EXPECT_EQ(bare.stats.efficiency.stddev, outcome.stats.efficiency.stddev);
  EXPECT_EQ(bare.stats.total_time.mean, outcome.stats.total_time.mean);
  EXPECT_EQ(bare.stats.time_shares.useful, outcome.stats.time_shares.useful);

  // ... and the instrumented run actually observed something.
  EXPECT_GT(sink.size(), 0u);
  EXPECT_FALSE(capture.trials.empty());
  std::vector<std::string> seen;
  for (const auto& ev : sink.events()) seen.push_back(ev.name);
  for (const char* expected :
       {"scenario.select_plan", "scenario.simulate",
        "optimizer.coarse_sweep", "engine.context_build"}) {
    EXPECT_NE(std::find(seen.begin(), seen.end(), expected), seen.end())
        << expected;
  }
}

// ---- Exporters -----------------------------------------------------------

TEST(TraceExport, ChromeJsonIsWellFormedAndMonotonicPerTrack) {
  const auto sys = systems::table1_system("B");
  const auto plan = plan_for(sys, 3.0);
  TraceSink sink;
  sink.name_current_thread("main");
  {
    Span s(&sink, "outer", "test");
    Span t(&sink, "inner", "test");
  }
  const auto capture = capture_trials(sys, plan, 3, 21);

  const util::Json doc = chrome_trace_json(&sink, &capture);
  // Round-trips through the parser.
  const util::Json parsed = util::Json::parse(doc.dump(2));
  EXPECT_EQ(parsed.at("displayTimeUnit").as_string(), "ms");
  const auto& events = parsed.at("traceEvents").as_array();
  ASSERT_GT(events.size(), 2u);

  std::map<std::pair<double, double>, double> last_ts;  // (pid,tid) -> ts
  bool saw_host = false, saw_sim = false, saw_metadata = false;
  for (const auto& ev : events) {
    const std::string ph = ev.at("ph").as_string();
    const double pid = ev.at("pid").as_number();
    const double tid = ev.at("tid").as_number();
    if (ph == "M") {
      saw_metadata = true;
      continue;
    }
    ASSERT_EQ(ph, "X");
    const double ts = ev.at("ts").as_number();
    EXPECT_GE(ev.at("dur").as_number(), 0.0);
    const auto key = std::make_pair(pid, tid);
    if (last_ts.count(key) > 0) {
      EXPECT_GE(ts, last_ts[key]);
    }
    last_ts[key] = ts;
    if (pid == 1.0) saw_host = true;
    if (pid == 2.0) {
      saw_sim = true;
      // Simulator events carry the raw fields as args.
      const auto& args = ev.at("args");
      EXPECT_NO_THROW(args.at("completed"));
      EXPECT_NO_THROW(args.at("work"));
      EXPECT_NO_THROW(args.at("truncated_by_cap"));
      EXPECT_LT(tid, 3.0);  // one track per captured trial index
    }
  }
  EXPECT_TRUE(saw_host);
  EXPECT_TRUE(saw_sim);
  EXPECT_TRUE(saw_metadata);
}

TEST(TraceExport, JsonlEveryLineParses) {
  const auto sys = systems::table1_system("D3");
  const auto capture = capture_trials(sys, plan_for(sys, 3.0), 2, 8);
  TraceSink sink;
  { Span s(&sink, "phase", "test"); }
  const std::string text = trace_jsonl(&sink, &capture);
  std::istringstream lines(text);
  std::string line;
  std::size_t spans = 0, sim_events = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    const util::Json row = util::Json::parse(line);
    const std::string type = row.at("type").as_string();
    if (type == "span") ++spans;
    if (type == "sim_event") ++sim_events;
  }
  EXPECT_EQ(spans, 1u);
  EXPECT_GT(sim_events, 0u);
}

TEST(TraceExport, NullInputsYieldEmptyTrace) {
  const util::Json doc = chrome_trace_json(nullptr, nullptr);
  EXPECT_TRUE(doc.at("traceEvents").as_array().empty());
  EXPECT_TRUE(trace_jsonl(nullptr, nullptr).empty());
}

}  // namespace
}  // namespace mlck::obs

#include <gtest/gtest.h>

#include <cmath>

#include "math/distribution.h"
#include "math/exponential.h"
#include "math/integrate.h"
#include "util/rng.h"

namespace mlck::math {
namespace {

TEST(Integrate, ExactForPolynomials) {
  // Simpson is exact through cubics; the adaptive wrapper must be too.
  EXPECT_NEAR(integrate([](double x) { return x * x * x; }, 0.0, 2.0), 4.0,
              1e-12);
  EXPECT_NEAR(integrate([](double x) { return 3.0 * x * x; }, -1.0, 1.0),
              2.0, 1e-12);
}

TEST(Integrate, KnownTranscendentals) {
  EXPECT_NEAR(integrate([](double x) { return std::sin(x); }, 0.0,
                        3.141592653589793),
              2.0, 1e-9);
  EXPECT_NEAR(integrate([](double x) { return std::exp(-x); }, 0.0, 50.0),
              1.0, 1e-9);
}

TEST(Integrate, DegenerateInterval) {
  EXPECT_EQ(integrate([](double x) { return x; }, 2.0, 2.0), 0.0);
  EXPECT_EQ(integrate([](double x) { return x; }, 3.0, 2.0), 0.0);
}

TEST(ExponentialDist, MatchesClosedFormKernels) {
  const Exponential d(0.25);
  for (const double t : {0.1, 1.0, 4.0, 20.0}) {
    EXPECT_NEAR(d.cdf(t), failure_probability(t, 0.25), 1e-15);
    EXPECT_NEAR(d.truncated_mean(t), truncated_mean(t, 0.25), 1e-15);
  }
  EXPECT_DOUBLE_EQ(d.mean(), 4.0);
  EXPECT_NE(d.describe().find("exponential"), std::string::npos);
}

TEST(ExponentialDist, SampleMoments) {
  const Exponential d(0.5);
  util::Rng rng(1);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(ExponentialDist, RejectsBadRate) {
  EXPECT_THROW(Exponential(0.0), std::invalid_argument);
  EXPECT_THROW(Exponential(-1.0), std::invalid_argument);
}

TEST(WeibullDist, ShapeOneIsExponential) {
  // Weibull(k=1, scale) == Exponential(rate=1/scale). This also
  // cross-validates the numeric default truncated_mean against the
  // exponential closed form.
  const Weibull w(1.0, 5.0);
  const Exponential e(0.2);
  for (const double t : {0.5, 2.0, 10.0, 40.0}) {
    EXPECT_NEAR(w.cdf(t), e.cdf(t), 1e-12);
    EXPECT_NEAR(w.truncated_mean(t), e.truncated_mean(t), 1e-7)
        << "t=" << t;
  }
  EXPECT_NEAR(w.mean(), 5.0, 1e-12);
}

TEST(WeibullDist, WithMeanHitsTheMean) {
  for (const double shape : {0.5, 0.7, 1.0, 1.5, 3.0}) {
    const Weibull w = Weibull::with_mean(10.0, shape);
    EXPECT_NEAR(w.mean(), 10.0, 1e-9) << "shape=" << shape;
    util::Rng rng(7);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) sum += w.sample(rng);
    // Heavy-tailed shapes need looser sampling tolerance.
    EXPECT_NEAR(sum / n, 10.0, 0.35) << "shape=" << shape;
  }
}

TEST(WeibullDist, SmallShapeHasHeavierTail) {
  const Weibull heavy = Weibull::with_mean(10.0, 0.7);
  const Weibull expo = Weibull::with_mean(10.0, 1.0);
  // Same mean, but more mass far out *and* more mass very early — the
  // failure-burst behaviour.
  EXPECT_LT(heavy.cdf(30.0), expo.cdf(30.0));
  EXPECT_GT(heavy.cdf(1.0), expo.cdf(1.0));
}

TEST(WeibullDist, TruncatedMeanBelowWindowAndMonotone) {
  const Weibull w = Weibull::with_mean(10.0, 0.7);
  double previous = 0.0;
  for (const double t : {1.0, 3.0, 9.0, 27.0, 81.0}) {
    const double e = w.truncated_mean(t);
    EXPECT_GT(e, previous);
    EXPECT_LT(e, t);
    previous = e;
  }
}

TEST(WeibullDist, RejectsBadParameters) {
  EXPECT_THROW(Weibull(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Weibull(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(Weibull::with_mean(-1.0, 1.0), std::invalid_argument);
}

TEST(LogNormalDist, MeanAndMedian) {
  const LogNormal d = LogNormal::with_mean(10.0, 0.8);
  EXPECT_NEAR(d.mean(), 10.0, 1e-9);
  // Median = exp(mu) = mean * exp(-sigma^2/2).
  const double median = 10.0 * std::exp(-0.32);
  EXPECT_NEAR(d.cdf(median), 0.5, 1e-9);
}

TEST(LogNormalDist, SampleMoments) {
  const LogNormal d = LogNormal::with_mean(6.0, 0.5);
  util::Rng rng(9);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = d.sample(rng);
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 6.0, 0.1);
}

TEST(LogNormalDist, NoMassAtOrBelowZero) {
  const LogNormal d(1.0, 0.5);
  EXPECT_EQ(d.cdf(0.0), 0.0);
  EXPECT_EQ(d.cdf(-3.0), 0.0);
}

TEST(LogNormalDist, RejectsBadSigma) {
  EXPECT_THROW(LogNormal(0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(LogNormal::with_mean(0.0, 1.0), std::invalid_argument);
}

TEST(GenericTruncatedMean, MatchesMonteCarloForWeibull) {
  const Weibull w = Weibull::with_mean(8.0, 1.4);
  const double window = 6.0;
  util::Rng rng(11);
  double sum = 0.0;
  int hits = 0;
  for (int i = 0; i < 400000; ++i) {
    const double x = w.sample(rng);
    if (x <= window) {
      sum += x;
      ++hits;
    }
  }
  ASSERT_GT(hits, 1000);
  EXPECT_NEAR(w.truncated_mean(window), sum / hits, 0.02);
}

}  // namespace
}  // namespace mlck::math

#include <gtest/gtest.h>

#include <cmath>

#include "core/adaptive.h"
#include "sim/simulator.h"
#include "sim/trial_runner.h"
#include "systems/scaling.h"
#include "systems/test_systems.h"

namespace mlck::core {
namespace {

TEST(Adaptive, CutoffsAreTheLevelYoungIntervals) {
  const auto sys = systems::table1_system("D1");
  const auto plan = CheckpointPlan::full_hierarchy(5.0, {3});
  const auto adaptive = make_adaptive(sys, plan);
  ASSERT_EQ(adaptive.cutoff_remaining.size(), 2u);
  EXPECT_NEAR(adaptive.cutoff_remaining[0],
              std::sqrt(2.0 * 0.333 / sys.lambda(0)), 1e-9);
  EXPECT_NEAR(adaptive.cutoff_remaining[1],
              std::sqrt(2.0 * 0.833 / sys.lambda(1)), 1e-9);
}

TEST(Adaptive, EarlyRunFollowsTheBasePattern) {
  const auto sys = systems::table1_system("D1");  // T_B = 1440
  const auto plan = CheckpointPlan::full_hierarchy(5.0, {3});
  const auto adaptive = make_adaptive(sys, plan);
  // Far from the end every pattern point keeps its level.
  for (long long j = 1; j <= 8; ++j) {
    const auto next = adaptive.next_checkpoint(5.0 * double(j - 1));
    ASSERT_TRUE(next.has_value());
    EXPECT_DOUBLE_EQ(next->work, 5.0 * double(j));
    EXPECT_EQ(next->used_index, plan.checkpoint_after_interval(j));
  }
}

TEST(Adaptive, TailDowngradesAndThenSkipsCheckpoints) {
  // A synthetic system with an expensive top level and long cutoffs so
  // the tail behaviour is easy to pin down. cutoff_0 = sqrt(2*1/0.01) ~ 14.1,
  // cutoff_1 = sqrt(2*8/0.01) = 40.
  const auto sys = systems::SystemConfig::from_table_row(
      "tail", 2, 50.0, {0.5, 0.5}, {1.0, 8.0}, 100.0);
  const auto plan = CheckpointPlan::full_hierarchy(10.0, {1});
  const auto adaptive = make_adaptive(sys, plan);
  // Pattern points: 10(L0) 20(L1) 30(L0) 40(L1) 50(L0) 60(L1) 70 80 90.
  // Level-1 points with remaining < 40 (i.e. work > 60) downgrade to L0;
  // level-0 points with remaining < ~14.1 (work > 85.9) are skipped.
  EXPECT_EQ(adaptive.next_checkpoint(55.0)->used_index, 1);  // 60: rem 40
  EXPECT_EQ(adaptive.next_checkpoint(75.0)->used_index, 0);  // 80 downgraded
  EXPECT_DOUBLE_EQ(adaptive.next_checkpoint(75.0)->work, 80.0);
  // After 80: the 90 point has remaining 10 < 14.1 -> skipped entirely.
  EXPECT_FALSE(adaptive.next_checkpoint(80.0).has_value());
}

TEST(Adaptive, ShortApplicationTakesNoTopLevelCheckpoints) {
  // The Sec. IV-F scenario expressed adaptively: a 30-minute app on
  // scaled B never reaches the PFS level's horizon.
  const auto sys = systems::scaled_system_b(9.0, 20.0, 30.0);
  const auto plan = CheckpointPlan::full_hierarchy(2.5, {1, 1, 1});
  const auto adaptive = make_adaptive(sys, plan);
  double work = 0.0;
  while (const auto next = adaptive.next_checkpoint(work)) {
    EXPECT_LT(next->used_index, 3) << "at work " << next->work;
    work = next->work;
  }
}

TEST(Adaptive, FailureFreeRunIsNeverSlowerThanStatic) {
  const auto sys = systems::SystemConfig::from_table_row(
      "tail", 2, 50.0, {0.5, 0.5}, {1.0, 8.0}, 100.0);
  const auto plan = CheckpointPlan::full_hierarchy(10.0, {1});
  const auto adaptive = make_adaptive(sys, plan);
  sim::ScriptedFailureSource none_a({});
  sim::ScriptedFailureSource none_b({});
  const auto static_run = sim::simulate(sys, plan, none_a);
  const auto adaptive_run = sim::simulate(sys, adaptive, none_b);
  EXPECT_LT(adaptive_run.total_time, static_run.total_time);
  EXPECT_LT(adaptive_run.checkpoints_completed,
            static_run.checkpoints_completed);
  EXPECT_DOUBLE_EQ(adaptive_run.breakdown.useful, 100.0);
}

TEST(Adaptive, ImprovesMeanEfficiencyUnderFailures) {
  // Mid-length application where the static optimizer keeps the PFS level
  // but the tail no longer earns it.
  const auto sys = systems::scaled_system_b(15.0, 20.0, 120.0);
  const auto plan = CheckpointPlan::full_hierarchy(3.0, {1, 1, 4});
  const auto adaptive = make_adaptive(sys, plan);
  const auto static_stats = sim::run_trials(sys, plan, 150, 9);
  const auto adaptive_stats = sim::run_trials(sys, adaptive, 150, 9);
  EXPECT_GT(adaptive_stats.efficiency.mean,
            static_stats.efficiency.mean - 0.01);
}

TEST(Adaptive, RunTrialsOverloadWorks) {
  const auto sys = systems::table1_system("D2");
  const auto plan = CheckpointPlan::full_hierarchy(4.0, {2});
  const auto adaptive = make_adaptive(sys, plan);
  const auto stats = sim::run_trials(sys, adaptive, 25, 4);
  EXPECT_EQ(stats.trials, 25u);
  EXPECT_GT(stats.efficiency.mean, 0.3);
  EXPECT_NEAR(stats.time_shares.total(), 1.0, 1e-9);
}

TEST(Adaptive, ZeroRateOrFreeLevelsGetZeroCutoff) {
  const auto sys = systems::SystemConfig::from_table_row(
      "free", 2, 1e12, {0.5, 0.5}, {0.0, 1.0}, 100.0);
  const auto plan = CheckpointPlan::full_hierarchy(10.0, {1});
  const auto adaptive = make_adaptive(sys, plan);
  // Free checkpoint -> cutoff 0 (always worth taking).
  EXPECT_DOUBLE_EQ(adaptive.cutoff_remaining[0], 0.0);
}

TEST(Adaptive, SingleLevelSystemKeepsItsOnlyLevelUntilCutoff) {
  // Degenerate hierarchy: one level, one cutoff. cutoff = sqrt(2*2/0.002)
  // ~ 44.7, so points up to work 50 keep level 0 and later ones vanish.
  const auto sys = systems::SystemConfig::from_table_row(
      "solo", 1, 500.0, {1.0}, {2.0}, 100.0);
  const auto plan = CheckpointPlan::full_hierarchy(10.0, {});
  const auto adaptive = make_adaptive(sys, plan);
  ASSERT_EQ(adaptive.cutoff_remaining.size(), 1u);
  EXPECT_NEAR(adaptive.cutoff_remaining[0],
              std::sqrt(2.0 * 2.0 / sys.lambda(0)), 1e-9);
  const auto early = adaptive.next_checkpoint(0.0);
  ASSERT_TRUE(early.has_value());
  EXPECT_DOUBLE_EQ(early->work, 10.0);
  EXPECT_EQ(early->used_index, 0);
  // Remaining at work 60 is 40 < 44.7: every later point is skipped.
  EXPECT_FALSE(adaptive.next_checkpoint(55.0).has_value());
}

TEST(Adaptive, VanishingFailureRateSkipsEveryCheckpoint) {
  // lambda -> 0 limit: the cutoffs sqrt(2*delta/lambda) dwarf T_B, so the
  // schedule degenerates to "never checkpoint" and a failure-free run is
  // pure useful work.
  const auto sys = systems::SystemConfig::from_table_row(
      "calm", 2, 1e15, {0.5, 0.5}, {1.0, 8.0}, 100.0);
  const auto plan = CheckpointPlan::full_hierarchy(10.0, {1});
  const auto adaptive = make_adaptive(sys, plan);
  for (const double cutoff : adaptive.cutoff_remaining) {
    EXPECT_GT(cutoff, sys.base_time);
  }
  EXPECT_FALSE(adaptive.next_checkpoint(0.0).has_value());
  sim::ScriptedFailureSource none({});
  const auto run = sim::simulate(sys, adaptive, none);
  EXPECT_DOUBLE_EQ(run.breakdown.useful, 100.0);
  EXPECT_EQ(run.checkpoints_completed, 0);
  EXPECT_DOUBLE_EQ(run.total_time, 100.0);
}

TEST(Adaptive, FreeLevelIsNeverSkippedEvenAtTheVeryEnd) {
  // Companion to ZeroRateOrFreeLevelsGetZeroCutoff: a zero-cost level's
  // cutoff of 0 means the last pattern point before the end is still
  // worth taking, and expensive levels downgrade onto it.
  const auto sys = systems::SystemConfig::from_table_row(
      "free", 2, 1e12, {0.5, 0.5}, {0.0, 1.0}, 100.0);
  const auto plan = CheckpointPlan::full_hierarchy(10.0, {1});
  const auto adaptive = make_adaptive(sys, plan);
  const auto last = adaptive.next_checkpoint(85.0);
  ASSERT_TRUE(last.has_value());
  EXPECT_DOUBLE_EQ(last->work, 90.0);
  EXPECT_EQ(last->used_index, 0);
  // Level-1 points (work 20, 40, ...) downgrade to the free level rather
  // than paying a cost whose horizon never arrives.
  const auto downgraded = adaptive.next_checkpoint(15.0);
  ASSERT_TRUE(downgraded.has_value());
  EXPECT_DOUBLE_EQ(downgraded->work, 20.0);
  EXPECT_EQ(downgraded->used_index, 0);
}

TEST(Quantiles, TrialStatsCarryDistributionTails) {
  const auto sys = systems::table1_system("D6");
  const auto plan = CheckpointPlan::full_hierarchy(1.5, {4});
  const auto stats = sim::run_trials(sys, plan, 100, 12);
  const auto& q = stats.efficiency_quantiles;
  EXPECT_LE(q.p05, q.p25);
  EXPECT_LE(q.p25, q.median);
  EXPECT_LE(q.median, q.p75);
  EXPECT_LE(q.p75, q.p95);
  EXPECT_GE(q.p05, stats.efficiency.min);
  EXPECT_LE(q.p95, stats.efficiency.max);
  EXPECT_NEAR(q.median, stats.efficiency.mean, 0.05);
}

}  // namespace
}  // namespace mlck::core

// Randomized invariant checks: hundreds of randomly generated systems,
// plans, and schedules pushed through the model and the simulator, with
// every structural invariant asserted. A cheap fuzzer that has caught
// real accounting bugs during development (rollback double-counting,
// stale-future checkpoints under escalation).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "core/adaptive.h"
#include "core/dauwe_model.h"
#include "core/interval_schedule.h"
#include "models/moody.h"
#include "sim/simulator.h"
#include "systems/system_config.h"
#include "prop_support.h"
#include "util/rng.h"

namespace mlck {
namespace {

/// Random but structurally valid system: 1-5 levels, MTBF spanning
/// harsh-to-benign, costs spanning trivial-to-painful.
systems::SystemConfig random_system(util::Rng& rng) {
  const int levels = 1 + static_cast<int>(rng.below(5));
  systems::SystemConfig sys;
  sys.name = "fuzz";
  sys.mtbf = 2.0 * std::pow(10.0, rng.uniform() * 3.0);  // 2 .. 2000 min
  double total = 0.0;
  for (int l = 0; l < levels; ++l) {
    const double weight = 0.05 + rng.uniform();
    sys.severity_probability.push_back(weight);
    total += weight;
  }
  for (auto& s : sys.severity_probability) s /= total;
  double cost = 0.01 * (1.0 + rng.uniform());
  for (int l = 0; l < levels; ++l) {
    sys.checkpoint_cost.push_back(cost);
    cost *= 1.5 + 3.0 * rng.uniform();  // ascending, realistic hierarchy
  }
  sys.restart_cost = sys.checkpoint_cost;
  sys.base_time = 30.0 * std::pow(10.0, rng.uniform() * 1.7);  // 30..1500
  sys.validate();
  return sys;
}

/// Random valid plan over a random subset of levels.
core::CheckpointPlan random_plan(util::Rng& rng,
                                 const systems::SystemConfig& sys) {
  core::CheckpointPlan plan;
  const int levels = sys.levels();
  // Non-empty random ascending subset.
  for (int l = 0; l < levels; ++l) {
    if (rng.uniform() < 0.7) plan.levels.push_back(l);
  }
  if (plan.levels.empty()) plan.levels.push_back(levels - 1);
  for (std::size_t k = 0; k + 1 < plan.levels.size(); ++k) {
    plan.counts.push_back(static_cast<int>(rng.below(6)));
  }
  // tau0 small enough that at least one pattern period fits.
  const double pattern = static_cast<double>(plan.pattern_period());
  plan.tau0 = sys.base_time / pattern *
              (0.02 + 0.9 * rng.uniform());
  plan.validate(sys);
  return plan;
}

TEST(FuzzInvariants, SimulatorAccountingAlwaysBalances) {
  const std::uint64_t seed = testprop::suite_seed(0xF00D);
  SCOPED_TRACE(testprop::repro("FuzzInvariants.SimulatorAccountingAlwaysBalances", seed));
  util::Rng rng(seed);
  for (int round = 0; round < 150; ++round) {
    const auto sys = random_system(rng);
    const auto plan = random_plan(rng, sys);
    sim::SimOptions opts;
    opts.max_time_factor = 50.0;  // keep doomed configs cheap
    if (round % 2 == 1) {
      opts.restart_policy = sim::RestartPolicy::kMoodyEscalate;
    }
    sim::RandomFailureSource src(sys, util::Rng(rng.next_u64()));
    const auto r = sim::simulate(sys, plan, src, opts);
    ASSERT_NEAR(r.breakdown.total(), r.total_time,
                1e-6 * (1.0 + r.total_time))
        << "round " << round << " " << plan.to_string();
    ASSERT_GE(r.breakdown.useful, 0.0);
    ASSERT_LE(r.breakdown.useful, sys.base_time + 1e-9);
    if (!r.capped) {
      ASSERT_DOUBLE_EQ(r.breakdown.useful, sys.base_time)
          << "round " << round;
    }
    ASSERT_LE(r.efficiency(), 1.0 + 1e-12);
  }
}

TEST(FuzzInvariants, ModelAlwaysFiniteOrInfeasibleNeverNan) {
  const std::uint64_t seed = testprop::suite_seed(0xBEEF);
  SCOPED_TRACE(testprop::repro("FuzzInvariants.ModelAlwaysFiniteOrInfeasibleNeverNan", seed));
  util::Rng rng(seed);
  const core::DauweModel dauwe;
  const models::MoodyModel moody;
  for (int round = 0; round < 300; ++round) {
    const auto sys = random_system(rng);
    const auto plan = random_plan(rng, sys);
    for (const core::ExecutionTimeModel* model :
         {static_cast<const core::ExecutionTimeModel*>(&dauwe),
          static_cast<const core::ExecutionTimeModel*>(&moody)}) {
      const double t = model->expected_time(sys, plan);
      ASSERT_FALSE(std::isnan(t)) << "round " << round;
      if (std::isfinite(t)) {
        ASSERT_GE(t, sys.base_time * 0.999) << "round " << round;
      }
    }
    const auto p = dauwe.predict(sys, plan);
    if (std::isfinite(p.expected_time)) {
      ASSERT_NEAR(p.breakdown.total(), p.expected_time,
                  1e-6 * p.expected_time);
    }
  }
}

TEST(FuzzInvariants, AdaptiveNeverChecksMoreThanStaticFailureFree) {
  const std::uint64_t seed = testprop::suite_seed(0xACE);
  SCOPED_TRACE(testprop::repro("FuzzInvariants.AdaptiveNeverChecksMoreThanStaticFailureFree", seed));
  util::Rng rng(seed);
  for (int round = 0; round < 80; ++round) {
    const auto sys = random_system(rng);
    const auto plan = random_plan(rng, sys);
    const auto adaptive = core::make_adaptive(sys, plan);
    sim::ScriptedFailureSource a({}), b({});
    const auto static_run = sim::simulate(sys, plan, a);
    const auto adaptive_run = sim::simulate(sys, adaptive, b);
    ASSERT_LE(adaptive_run.checkpoints_completed,
              static_run.checkpoints_completed)
        << "round " << round;
    ASSERT_LE(adaptive_run.total_time, static_run.total_time + 1e-9);
    ASSERT_DOUBLE_EQ(adaptive_run.breakdown.useful, sys.base_time);
  }
}

TEST(FuzzInvariants, IntervalGridAlwaysAdvances) {
  const std::uint64_t seed = testprop::suite_seed(0xD1CE);
  SCOPED_TRACE(testprop::repro("FuzzInvariants.IntervalGridAlwaysAdvances", seed));
  util::Rng rng(seed);
  for (int round = 0; round < 100; ++round) {
    const auto sys = random_system(rng);
    core::IntervalSchedule schedule;
    for (int l = 0; l < sys.levels(); ++l) {
      schedule.levels.push_back(l);
      schedule.periods.push_back(sys.base_time *
                                 (0.01 + 0.4 * rng.uniform()));
    }
    schedule.validate(sys);
    double work = 0.0;
    int steps = 0;
    while (const auto next = schedule.next_checkpoint(work, sys.base_time)) {
      ASSERT_GT(next->work, work) << "round " << round;
      ASSERT_LT(next->work, sys.base_time);
      ASSERT_GE(next->used_index, 0);
      ASSERT_LT(next->used_index, schedule.used_levels());
      work = next->work;
      if (++steps > 100000) FAIL() << "grid did not terminate";
    }
  }
}

}  // namespace
}  // namespace mlck

// Randomized property tests for the optimizer's two load-bearing search
// invariants, across random systems, ladder sizes, level subsets, and
// lane/prune configurations (tests/prop_support.h seed discipline):
//
//   1. Feasibility of the winner: whatever path selected it (coarse
//      sweep, lane-batched pruned sweep, refinement), the returned plan
//      satisfies tau0 * prod(N_j + 1) <= T_B. The refinement pass used
//      to violate this for models that stay finite past the bound.
//
//   2. Lattice accounting: coarse_evaluations + pruned_feasibility +
//      pruned_bound == tau_points x ladder^dims summed over the level
//      subsets searched, for every configuration — the invariant that
//      guarantees the pruned sweep skips subtrees it proved dominated
//      and nothing else.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <memory>
#include <random>
#include <vector>

#include "core/dauwe_kernel.h"
#include "core/dauwe_model.h"
#include "core/optimizer.h"
#include "prop_support.h"
#include "systems/system_config.h"

namespace mlck::core {
namespace {

constexpr std::uint64_t kSeed = 20180521;  // paper submission date; fixed

systems::SystemConfig random_system(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> levels_dist(1, 5);
  const int L = levels_dist(rng);
  std::uniform_real_distribution<double> mtbf_dist(30.0, 20000.0);
  std::uniform_real_distribution<double> share_dist(0.05, 1.0);
  std::uniform_real_distribution<double> cost_dist(0.005, 30.0);
  std::uniform_real_distribution<double> base_dist(200.0, 5000.0);

  std::vector<double> severity(static_cast<std::size_t>(L));
  double total = 0.0;
  for (double& s : severity) total += (s = share_dist(rng));
  for (double& s : severity) s /= total;
  std::vector<double> cost(static_cast<std::size_t>(L));
  for (double& c : cost) c = cost_dist(rng);
  return systems::SystemConfig::from_table_row(
      "rand", L, mtbf_dist(rng), severity, cost, base_dist(rng));
}

/// Random optimizer configuration: grid sizes spanning lane remainders
/// (tau points not divisible by 8), ladder sizes from trivial to deep,
/// and optional restriction to a random level subset.
OptimizerOptions random_opts(std::mt19937_64& rng, int levels) {
  OptimizerOptions opts;
  opts.coarse_tau_points = std::uniform_int_distribution<int>(1, 21)(rng);
  opts.max_count = std::uniform_int_distribution<int>(0, 24)(rng);
  opts.refine_rounds = std::uniform_int_distribution<int>(0, 4)(rng);
  if (std::bernoulli_distribution(0.4)(rng)) {
    std::vector<int> subset;
    for (int l = 0; l < levels; ++l) {
      if (std::bernoulli_distribution(0.6)(rng)) subset.push_back(l);
    }
    if (!subset.empty()) opts.restrict_levels = subset;
  }
  return opts;
}

/// Coarse lattice size for the subsets this configuration searches:
/// with restrict_levels only that subset, else the full hierarchy plus
/// each skipped suffix (dims = 0 .. levels-1).
std::size_t lattice_size(const systems::SystemConfig& sys,
                         const OptimizerOptions& opts) {
  const std::size_t rungs = count_ladder(opts.max_count).size();
  const auto tau_points = static_cast<std::size_t>(opts.coarse_tau_points);
  if (!opts.restrict_levels.empty()) {
    std::size_t leaves = 1;
    for (std::size_t d = 1; d < opts.restrict_levels.size(); ++d) {
      leaves *= rungs;
    }
    return tau_points * leaves;
  }
  std::size_t lattice = 0;
  for (int dims = 0; dims < sys.levels(); ++dims) {
    std::size_t leaves = 1;
    for (int d = 0; d < dims; ++d) leaves *= rungs;
    lattice += tau_points * leaves;
  }
  return lattice;
}

void check_result(const OptimizationResult& r,
                  const systems::SystemConfig& sys, std::size_t lattice,
                  int trial) {
  EXPECT_LE(r.plan.work_per_top_period(), sys.base_time * (1.0 + 1e-12))
      << "trial " << trial << ": infeasible winner " << r.plan.to_string();
  EXPECT_TRUE(std::isfinite(r.expected_time)) << "trial " << trial;
  EXPECT_EQ(r.coarse_evaluations + r.pruned_feasibility + r.pruned_bound,
            lattice)
      << "trial " << trial;
  // Refinement rides on top of the coarse lattice, never inside it.
  EXPECT_GE(r.evaluations, r.coarse_evaluations) << "trial " << trial;
}

TEST(OptimizerProp, WinnerFeasibleAndLatticeAccountedAcrossConfigs) {
  const std::uint64_t seed = testprop::suite_seed(kSeed ^ 0x50524F50u);
  SCOPED_TRACE(testprop::repro(
      "OptimizerProp.WinnerFeasibleAndLatticeAccountedAcrossConfigs",
      seed));
  std::mt19937_64 rng(seed);
  const DauweModel model;
  std::size_t bound_cuts = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const auto sys = random_system(rng);
    OptimizerOptions opts = random_opts(rng, sys.levels());
    const std::size_t lattice = lattice_size(sys, opts);

    // The generic per-plan path: feasibility invariant + accounting
    // with pruned_bound pinned at zero.
    const auto generic = optimize_intervals(model, sys, opts);
    check_result(generic, sys, lattice, trial);
    EXPECT_EQ(generic.pruned_bound, 0u) << "trial " << trial;

    // The staged kernel path in both configurations: exact mirror of
    // the generic sweep, then the lane-batched pruned default.
    const DauweOptions model_opt;
    std::vector<std::unique_ptr<const DauweKernel>> kernels;
    const auto factory =
        [&](const std::vector<int>& levels) -> const DauweKernel& {
      kernels.push_back(
          std::make_unique<const DauweKernel>(sys, levels, model_opt));
      return *kernels.back();
    };
    opts.lane_batch = false;
    opts.prune = false;
    const auto exact = optimize_intervals_staged(factory, sys, opts);
    check_result(exact, sys, lattice, trial);
    EXPECT_EQ(exact.pruned_bound, 0u) << "trial " << trial;

    opts.lane_batch = true;
    opts.prune = true;
    const auto pruned = optimize_intervals_staged(factory, sys, opts);
    check_result(pruned, sys, lattice, trial);
    EXPECT_EQ(pruned.plan.tau0, exact.plan.tau0) << "trial " << trial;
    EXPECT_EQ(pruned.plan.counts, exact.plan.counts) << "trial " << trial;
    EXPECT_EQ(pruned.expected_time, exact.expected_time)
        << "trial " << trial;
    bound_cuts += pruned.pruned_bound;
  }
  // Across 40 random configurations the bound must fire somewhere.
  EXPECT_GT(bound_cuts, 0u);
}

}  // namespace
}  // namespace mlck::core

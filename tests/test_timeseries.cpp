#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>

#include "obs/registry.h"
#include "obs/timeseries.h"
#include "util/json.h"

namespace mlck::obs {
namespace {

TelemetrySampler::Options fast_options() {
  TelemetrySampler::Options options;
  options.period = std::chrono::milliseconds(2);
  return options;
}

TEST(TelemetrySampler, RegistersSelfMetricsOnConstruction) {
  MetricsRegistry reg;
  TelemetrySampler sampler(reg);
  // The self-metrics exist before any tick, so they show up in exports
  // even for never-started samplers.
  EXPECT_EQ(reg.counter("obs.sampler.ticks").value(), 0u);
  EXPECT_EQ(reg.counter("obs.sampler.overruns").value(), 0u);
  EXPECT_FALSE(sampler.running());
  EXPECT_EQ(sampler.ticks(), 0u);
}

TEST(TelemetrySampler, SampleNowWorksWithoutThread) {
  MetricsRegistry reg;
  reg.counter("work.items").add(5);
  TelemetrySampler sampler(reg);
  sampler.sample_now();
  EXPECT_EQ(sampler.ticks(), 1u);
  const auto series = sampler.series();
  const auto it = series.find("work.items");
  ASSERT_NE(it, series.end());
  EXPECT_EQ(it->second.kind, MetricSeries::Kind::kCounter);
  ASSERT_EQ(it->second.points.size(), 1u);
  EXPECT_DOUBLE_EQ(it->second.points.back().value, 5.0);
  EXPECT_DOUBLE_EQ(it->second.points.back().rate, 0.0);  // first point
  EXPECT_EQ(reg.counter("obs.sampler.ticks").value(), 1u);
}

TEST(TelemetrySampler, CapturesMonotoneCounterSeriesWhileRunning) {
  MetricsRegistry reg;
  Counter& work = reg.counter("work.items");
  TelemetrySampler sampler(reg, fast_options());
  sampler.start();
  EXPECT_TRUE(sampler.running());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(50);
  while (std::chrono::steady_clock::now() < deadline) {
    work.add();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  EXPECT_GE(sampler.ticks(), 3u);
  const auto series = sampler.series();
  const auto it = series.find("work.items");
  ASSERT_NE(it, series.end());
  ASSERT_GE(it->second.points.size(), 2u);
  double prev_t = -1.0;
  double prev_v = -1.0;
  for (const SamplePoint& p : it->second.points) {
    EXPECT_GT(p.t, prev_t);       // strictly increasing timestamps
    EXPECT_GE(p.value, prev_v);   // counters never go down
    EXPECT_GE(p.rate, 0.0);
    prev_t = p.t;
    prev_v = p.value;
  }
  // The final stop() sample saw the finished workload.
  EXPECT_DOUBLE_EQ(it->second.points.back().value,
                   static_cast<double>(work.value()));
}

TEST(TelemetrySampler, DerivesCounterRates) {
  MetricsRegistry reg;
  Counter& work = reg.counter("work.items");
  TelemetrySampler sampler(reg);
  sampler.sample_now();
  work.add(100);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  sampler.sample_now();
  const auto series = sampler.series();
  const auto& points = series.at("work.items").points;
  ASSERT_EQ(points.size(), 2u);
  // 100 events over the elapsed window: rate is positive and consistent
  // with delta / dt.
  const double dt = points[1].t - points[0].t;
  ASSERT_GT(dt, 0.0);
  EXPECT_NEAR(points[1].rate, 100.0 / dt, 1e-6 * (100.0 / dt));
}

TEST(TelemetrySampler, GaugeAndHistogramSeries) {
  MetricsRegistry reg;
  reg.gauge("pool.depth").set(3.0);
  Histogram& lat = reg.histogram("task.latency");
  lat.record(4.0);
  lat.record(16.0);
  TelemetrySampler sampler(reg);
  sampler.sample_now();
  const auto series = sampler.series();
  const auto& g = series.at("pool.depth");
  EXPECT_EQ(g.kind, MetricSeries::Kind::kGauge);
  EXPECT_DOUBLE_EQ(g.points.back().value, 3.0);
  EXPECT_DOUBLE_EQ(g.points.back().rate, 0.0);  // gauges have no rate
  const auto hists = sampler.histogram_series();
  const auto& h = hists.at("task.latency");
  ASSERT_EQ(h.points.size(), 1u);
  EXPECT_EQ(h.points.back().count, 2u);
  EXPECT_DOUBLE_EQ(h.points.back().mean, 10.0);
  EXPECT_GT(h.points.back().p50, 0.0);
}

TEST(TelemetrySampler, RingBufferDropsOldestAtCapacity) {
  MetricsRegistry reg;
  Counter& work = reg.counter("work.items");
  TelemetrySampler::Options options;
  options.capacity = 4;
  TelemetrySampler sampler(reg, options);
  for (int i = 0; i < 10; ++i) {
    work.add();
    sampler.sample_now();
  }
  EXPECT_EQ(sampler.ticks(), 10u);
  const auto series = sampler.series();
  const auto& points = series.at("work.items").points;
  ASSERT_EQ(points.size(), 4u);  // bounded by capacity
  // The survivors are the newest points: values 7..10.
  EXPECT_DOUBLE_EQ(points.front().value, 7.0);
  EXPECT_DOUBLE_EQ(points.back().value, 10.0);
}

TEST(TelemetrySampler, StartStopIdempotentAndRestartable) {
  MetricsRegistry reg;
  TelemetrySampler sampler(reg, fast_options());
  sampler.stop();  // stop before start: no-op
  sampler.start();
  sampler.start();  // double start: no-op
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  sampler.stop();
  sampler.stop();  // double stop: no-op
  const std::uint64_t after_first = sampler.ticks();
  EXPECT_GE(after_first, 1u);
  sampler.start();  // restart resumes the same buffers
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  sampler.stop();
  EXPECT_GT(sampler.ticks(), after_first);
}

TEST(TelemetrySampler, ToJsonShape) {
  MetricsRegistry reg;
  reg.counter("work.items").add(2);
  reg.histogram("task.latency").record(8.0);
  TelemetrySampler sampler(reg);
  sampler.sample_now();
  const util::Json doc = sampler.to_json();
  EXPECT_DOUBLE_EQ(doc.at("period_ms").as_number(), 50.0);
  EXPECT_DOUBLE_EQ(doc.at("capacity").as_number(), 1024.0);
  EXPECT_DOUBLE_EQ(doc.at("ticks").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(doc.at("overruns").as_number(), 0.0);
  const util::Json& series = doc.at("series").at("work.items");
  EXPECT_EQ(series.at("kind").as_string(), "counter");
  ASSERT_EQ(series.at("points").as_array().size(), 1u);
  const util::Json& point = series.at("points").as_array()[0];
  EXPECT_DOUBLE_EQ(point.at("value").as_number(), 2.0);
  EXPECT_GE(point.at("t").as_number(), 0.0);
  const util::Json& hist = doc.at("histograms").at("task.latency");
  EXPECT_DOUBLE_EQ(
      hist.at("points").as_array()[0].at("count").as_number(), 1.0);
  // Self-metrics ride along as ordinary series.
  EXPECT_NO_THROW(doc.at("series").at("obs.sampler.ticks"));
  EXPECT_NO_THROW(util::Json::parse(doc.dump(2)));
}

TEST(TelemetrySampler, DestructorStopsRunningThread) {
  MetricsRegistry reg;
  {
    TelemetrySampler sampler(reg, fast_options());
    sampler.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }  // must join cleanly, no crash/leak (asan preset pins this)
  EXPECT_GE(reg.counter("obs.sampler.ticks").value(), 1u);
}

}  // namespace
}  // namespace mlck::obs

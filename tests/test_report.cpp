#include <gtest/gtest.h>

#include <sstream>

#include "exp/report.h"
#include "models/registry.h"
#include "systems/test_systems.h"

namespace mlck::exp {
namespace {

std::vector<ScenarioResult> sample_rows() {
  ExperimentOptions opts;
  opts.trials = 6;
  opts.seed = 42;
  const auto techniques = models::multilevel_techniques();
  std::vector<ScenarioResult> rows;
  rows.push_back(run_scenario(systems::table1_system("D1"), "D1",
                              techniques, opts));
  rows.push_back(run_scenario(systems::table1_system("D4"), "D4",
                              techniques, opts));
  return rows;
}

TEST(Report, EfficiencyTableListsEveryScenarioOnce) {
  const auto rows = sample_rows();
  std::ostringstream os;
  print_efficiency_table(os, "title-line", rows);
  const std::string text = os.str();
  EXPECT_EQ(text.find("title-line"), 0u);
  // Column triplet per technique.
  EXPECT_NE(text.find("Dauwe et al. sim"), std::string::npos);
  EXPECT_NE(text.find("Moody et al. sim"), std::string::npos);
  // One row per scenario (labels at line starts).
  EXPECT_NE(text.find("\nD1"), std::string::npos);
  EXPECT_NE(text.find("\nD4"), std::string::npos);
}

TEST(Report, EmptyRowsPrintOnlyTheTitle) {
  std::ostringstream os;
  print_efficiency_table(os, "empty", {});
  EXPECT_EQ(os.str(), "empty\n");
}

TEST(Report, BreakdownSharesRoughlySumToOneHundred) {
  const auto rows = sample_rows();
  std::ostringstream os;
  print_breakdown_table(os, "b", rows);
  // Parse the first data row's percentages and check they total ~100.
  std::istringstream in(os.str());
  std::string line;
  std::getline(in, line);  // title
  std::getline(in, line);  // header
  std::getline(in, line);  // separator
  std::getline(in, line);  // first data row
  double total = 0.0;
  std::size_t pos = 0;
  int cells = 0;
  while ((pos = line.find('%', pos)) != std::string::npos) {
    std::size_t start = line.rfind(' ', pos);
    total += std::stod(line.substr(start + 1, pos - start - 1));
    ++cells;
    ++pos;
  }
  EXPECT_EQ(cells, 8);
  EXPECT_NEAR(total, 100.0, 0.5);  // rounding of 8 cells
}

TEST(Report, PredictionErrorsSortedByMagnitude) {
  const auto rows = sample_rows();
  std::ostringstream os;
  print_prediction_error_table(os, "e", rows, "Dauwe et al.");
  const std::string text = os.str();
  EXPECT_NE(text.find("Dauwe et al. err"), std::string::npos);
  // Both scenarios appear, numbered 1 and 2.
  EXPECT_NE(text.find("\n1  "), std::string::npos);
  EXPECT_NE(text.find("\n2  "), std::string::npos);
}

TEST(Report, CsvHasHeaderAndOneLinePerOutcome) {
  const auto rows = sample_rows();
  std::ostringstream os;
  write_efficiency_csv(os, rows);
  const std::string text = os.str();
  // Header + 2 scenarios x 3 techniques.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 7);
  EXPECT_EQ(text.find("scenario,technique,plan"), 0u);
  EXPECT_NE(text.find("D1,Dauwe et al."), std::string::npos);
  EXPECT_NE(text.find("D4,Moody et al."), std::string::npos);
}

TEST(Report, CsvQuotesCommaLabels) {
  auto rows = sample_rows();
  rows[0].label = "MTBF=3, PFS=40";
  std::ostringstream os;
  write_efficiency_csv(os, rows);
  EXPECT_NE(os.str().find("\"MTBF=3, PFS=40\""), std::string::npos);
}

TEST(Outcome, PredictionErrorIsPredictedMinusSimulated) {
  TechniqueOutcome o;
  o.predicted_efficiency = 0.8;
  o.sim.efficiency.mean = 0.75;
  EXPECT_NEAR(o.prediction_error(), 0.05, 1e-12);
}

}  // namespace
}  // namespace mlck::exp

#include <gtest/gtest.h>

#include <cmath>

#include "core/dauwe_model.h"
#include "core/effective.h"
#include "math/exponential.h"
#include "models/moody.h"
#include "systems/scaling.h"
#include "systems/test_systems.h"

namespace mlck::models {
namespace {

using core::CheckpointPlan;

TEST(MoodyRecovery, TopLevelIsGeometricRetry) {
  // Single level: rho = R + (p/q) E with p = P(R, lambda), q = 1 - p.
  const auto sys = systems::SystemConfig::from_table_row(
      "single", 1, 50.0, {1.0}, {4.0}, 500.0);
  const auto plan = CheckpointPlan::single_level(10.0, 0);
  const auto eff = core::make_effective(sys, plan);
  const double lambda = 1.0 / 50.0;
  const double p = math::failure_probability(4.0, lambda);
  const double expected =
      4.0 + p / (1.0 - p) * math::truncated_mean(4.0, lambda);
  EXPECT_NEAR(MoodyModel::recovery_cost(eff, plan, 0), expected, 1e-12);
}

TEST(MoodyRecovery, NoFailuresMeansPlainRestartCost) {
  const auto sys = systems::SystemConfig::from_table_row(
      "calm", 2, 1e12, {0.5, 0.5}, {1.0, 8.0}, 500.0);
  const auto plan = CheckpointPlan::full_hierarchy(10.0, {3});
  const auto eff = core::make_effective(sys, plan);
  EXPECT_NEAR(MoodyModel::recovery_cost(eff, plan, 0), 1.0, 1e-6);
  EXPECT_NEAR(MoodyModel::recovery_cost(eff, plan, 1), 8.0, 1e-6);
}

TEST(MoodyRecovery, EscalationExceedsPlainRetry) {
  // Interior-level recovery must cost at least the geometric-retry value,
  // because escalations swap in a costlier restart plus lost work.
  const auto sys = systems::table1_system("D4");
  const auto plan = CheckpointPlan::full_hierarchy(2.0, {4});
  const auto eff = core::make_effective(sys, plan);
  const double rho0 = MoodyModel::recovery_cost(eff, plan, 0);
  const double lambda0 = eff.level[0].lambda;
  const double r0 = eff.level[0].restart_cost;
  const double p = math::failure_probability(r0, lambda0);
  const double plain_retry =
      r0 + p / (1.0 - p) * math::truncated_mean(r0, lambda0);
  EXPECT_GT(rho0, plain_retry);
}

TEST(MoodyModel, SteadyStateEfficiencyIndependentOfBaseTime) {
  auto sys_short = systems::table1_system("D3");
  auto sys_long = sys_short;
  sys_short.base_time = 60.0;
  sys_long.base_time = 6000.0;
  const MoodyModel model;
  const auto plan = CheckpointPlan::full_hierarchy(2.0, {5});
  EXPECT_NEAR(model.steady_state_efficiency(sys_short, plan),
              model.steady_state_efficiency(sys_long, plan), 1e-12);
  // Expected time therefore scales exactly linearly with T_B.
  EXPECT_NEAR(model.expected_time(sys_long, plan) /
                  model.expected_time(sys_short, plan),
              100.0, 1e-9);
}

TEST(MoodyModel, EfficiencyWithinUnitInterval) {
  const MoodyModel model;
  for (const char* name : {"M", "B", "D1", "D5", "D8"}) {
    const auto sys = systems::table1_system(name);
    const auto plan = CheckpointPlan::full_hierarchy(
        2.0, std::vector<int>(std::size_t(sys.levels() - 1), 3));
    const double e = model.steady_state_efficiency(sys, plan);
    EXPECT_GT(e, 0.0) << name;
    EXPECT_LT(e, 1.0) << name;
  }
}

TEST(MoodyModel, UncoveredSeveritiesAreInfeasible) {
  const auto sys = systems::table1_system("B");
  const MoodyModel model;
  CheckpointPlan partial;
  partial.tau0 = 2.0;
  partial.levels = {0, 1, 2};
  partial.counts = {3, 3};
  EXPECT_TRUE(std::isinf(model.expected_time(sys, partial)));
  EXPECT_EQ(model.steady_state_efficiency(sys, partial), 0.0);
}

TEST(MoodyModel, MorePessimisticThanDauweOnHarshSystems) {
  // Escalating restarts cost extra, so Moody's forecast of the same plan
  // should not be faster than Dauwe's (which retries in place).
  const core::DauweModel dauwe;
  const MoodyModel moody;
  for (const char* name : {"D5", "D7", "D8"}) {
    const auto sys = systems::table1_system(name);
    const auto plan = CheckpointPlan::full_hierarchy(2.0, {5});
    EXPECT_GE(moody.expected_time(sys, plan),
              dauwe.expected_time(sys, plan) * 0.98)
        << name;
  }
}

TEST(MoodyTechnique, AlwaysKeepsEveryLevel) {
  // Sec. IV-F: the 30-minute application where Dauwe/Di drop the PFS
  // level; Moody must keep it.
  const auto sys = systems::scaled_system_b(9.0, 20.0, 30.0);
  const MoodyTechnique technique;
  const auto result = technique.select_plan(sys, nullptr);
  EXPECT_EQ(result.plan.levels.size(), 4u);
  EXPECT_EQ(result.plan.top_system_level(), 3);
  EXPECT_GT(result.predicted_efficiency, 0.0);
}

TEST(MoodyTechnique, SelectionInsensitiveToBaseTime) {
  // Because the model is steady-state, doubling the application length
  // must leave the selected pattern's quality unchanged (the search grid
  // scales with T_B, so we compare achieved steady-state efficiency
  // rather than the raw decision variables).
  const auto long_app = systems::scaled_system_b(15.0, 10.0, 1440.0);
  const auto longer_app = systems::scaled_system_b(15.0, 10.0, 2880.0);
  const MoodyTechnique technique;
  const MoodyModel model;
  const auto a = technique.select_plan(long_app, nullptr);
  const auto b = technique.select_plan(longer_app, nullptr);
  EXPECT_NEAR(model.steady_state_efficiency(long_app, a.plan),
              model.steady_state_efficiency(longer_app, b.plan), 2e-3);
}

}  // namespace
}  // namespace mlck::models

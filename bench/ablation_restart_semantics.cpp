// Ablation for paper Sec. IV-G: the simulator's restart semantics. The
// paper's simulator assumes a repeated failure during a restart retries
// the same checkpoint level; Moody et al.'s model instead assumes it
// escalates to the next level. This driver simulates the *same* plans
// under both behaviours to quantify how much the escalation assumption
// costs — the wedge behind Moody's systematic efficiency under-estimation.
#include <iostream>

#include "bench_common.h"
#include "core/technique.h"
#include "sim/trial_runner.h"
#include "systems/test_systems.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const mlck::util::Cli cli(argc, argv);
  mlck::bench::BenchConfig cfg(cli, /*default_trials=*/200);
  mlck::bench::reject_unknown_flags(cli);

  using mlck::util::Table;
  const mlck::core::DauweTechnique technique;

  Table table({"system", "retry eff", "escalate eff", "gap",
               "retry restarts", "escalate restarts"});
  for (const auto& sys : mlck::systems::table1_systems()) {
    mlck::bench::progress("ablation restart-semantics: " + sys.name);
    const auto selected = technique.select_plan(sys, cfg.options.pool);

    mlck::sim::SimOptions retry;
    mlck::sim::SimOptions escalate;
    escalate.restart_policy = mlck::sim::RestartPolicy::kMoodyEscalate;
    const auto r = mlck::sim::run_trials(sys, selected.plan,
                                         cfg.options.trials,
                                         cfg.options.seed, retry,
                                         cfg.options.pool);
    const auto e = mlck::sim::run_trials(sys, selected.plan,
                                         cfg.options.trials,
                                         cfg.options.seed, escalate,
                                         cfg.options.pool);
    table.add_row({sys.name, Table::pct(r.efficiency.mean),
                   Table::pct(e.efficiency.mean),
                   Table::pct(r.efficiency.mean - e.efficiency.mean, 2),
                   Table::num(r.time_shares.restart_ok +
                                  r.time_shares.restart_failed, 4),
                   Table::num(e.time_shares.restart_ok +
                                  e.time_shares.restart_failed, 4)});
  }
  std::cout << "Ablation (Sec. IV-G): retry-same-level vs Moody escalation "
               "restart semantics, same Dauwe-selected plans\n";
  table.print(std::cout);
  std::cout << "\nExpected shape: escalation only hurts, and the gap grows "
               "with failure rate (it is the wedge that makes Moody's "
               "model under-predict efficiency).\n";
  return 0;
}

#pragma once

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "exp/experiments.h"
#include "exp/plot.h"
#include "util/cli.h"
#include "util/thread_pool.h"

namespace mlck::bench {

/// Options shared by every experiment driver. Defaults reproduce the
/// paper's settings; --trials/--seed/--threads override them for quick
/// runs (the README documents this).
struct BenchConfig {
  exp::ExperimentOptions options;
  std::unique_ptr<util::ThreadPool> pool;
  bool csv = false;
  std::string plot_prefix;  ///< --plot=prefix writes prefix.dat/.gp

  explicit BenchConfig(const util::Cli& cli, std::size_t default_trials) {
    options.trials = static_cast<std::size_t>(
        cli.get_int("trials", static_cast<int>(default_trials)));
    options.seed = static_cast<std::uint64_t>(
        cli.get_int("seed", 20180521));
    csv = cli.get_bool("csv", false);
    plot_prefix = cli.get_string("plot", "");
    const int threads = cli.get_int("threads", 0);
    pool = std::make_unique<util::ThreadPool>(
        static_cast<std::size_t>(threads));
    options.pool = pool.get();
  }

  /// Writes <prefix>.dat and <prefix>.gp so `gnuplot <prefix>.gp` renders
  /// the efficiency figure; no-op when --plot was not given.
  void emit_efficiency_plot(const std::vector<exp::ScenarioResult>& rows,
                            const std::string& title) const {
    if (plot_prefix.empty() || rows.empty()) return;
    std::vector<std::string> names;
    for (const auto& o : rows.front().outcomes) names.push_back(o.technique);
    std::ofstream dat(plot_prefix + ".dat");
    exp::write_efficiency_dat(dat, rows);
    std::ofstream gp(plot_prefix + ".gp");
    exp::write_efficiency_gp(gp, plot_prefix + ".dat", title, names,
                             plot_prefix + ".png");
    std::cerr << "[mlck] wrote " << plot_prefix << ".dat and "
              << plot_prefix << ".gp\n";
  }
};

/// Fails loudly on mistyped sweep parameters instead of running defaults.
inline void reject_unknown_flags(const util::Cli& cli) {
  const auto unknown = cli.unrecognized();
  if (!unknown.empty()) {
    std::cerr << "unknown option(s):";
    for (const auto& u : unknown) std::cerr << " --" << u;
    std::cerr << "\n";
    std::exit(2);
  }
}

/// Progress line to stderr so long sweeps are observable while stdout
/// stays a clean report.
inline void progress(const std::string& message) {
  std::cerr << "[mlck] " << message << "\n";
}

}  // namespace mlck::bench

#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>

#include "engine/scenario.h"
#include "exp/experiments.h"
#include "exp/plot.h"
#include "obs/exposition.h"
#include "obs/registry.h"
#include "obs/timeseries.h"
#include "util/cli.h"
#include "util/thread_pool.h"

namespace mlck::bench {

/// Options shared by every experiment driver, expressed as a declarative
/// engine::ScenarioSpec template (the system field is filled in per sweep
/// point by each driver). Defaults reproduce the paper's settings;
/// --trials/--seed/--threads/--dist override them for quick runs or
/// non-exponential stress studies, and --spec=file.json loads a whole
/// scenario document (CLI flags still win afterwards).
/// --metrics=file.json instruments the run (simulator + thread-pool
/// counters; docs/OBSERVABILITY.md) and writes the sidecar when the
/// config is destroyed, i.e. after the driver's sweep finishes.
/// --trace=file.json likewise records host-side spans (pool tasks, and
/// the optimizer/engine phases where the driver runs them through the
/// spec) into a Chrome trace-event file on destruction.
struct BenchConfig {
  engine::ScenarioSpec spec;
  std::unique_ptr<util::ThreadPool> pool;
  exp::ExperimentOptions options;  ///< derived from spec; what drivers use
  bool csv = false;
  std::string plot_prefix;  ///< --plot=prefix writes prefix.dat/.gp
  std::string metrics_path;  ///< --metrics=file writes the sidecar there
  std::string trace_path;    ///< --trace=file writes the Chrome trace there
  std::string timeline_path;     ///< --timeline=file writes sampled series
  std::string openmetrics_path;  ///< --openmetrics=file, exposition text
  std::vector<std::string> argv;  ///< original invocation, for `meta`
  std::unique_ptr<obs::MetricsRegistry> registry;
  std::unique_ptr<obs::TraceSink> trace_sink;
  std::unique_ptr<obs::TelemetrySampler> sampler;
  /// Keeps the metric pointers installed in spec.sim / spec.optimizer /
  /// the pool alive for the whole sweep.
  std::unique_ptr<engine::ScenarioMetrics> wiring_;

  explicit BenchConfig(const util::Cli& cli, std::size_t default_trials) {
    if (const auto path = cli.value("spec"); path && !path->empty()) {
      spec = engine::ScenarioSpec::load(*path);
    } else {
      spec.trials = default_trials;
      spec.seed = 20180521;
    }
    spec.trials = static_cast<std::size_t>(
        cli.get_int("trials", static_cast<int>(spec.trials)));
    spec.seed = static_cast<std::uint64_t>(
        cli.get_int("seed", static_cast<int>(spec.seed)));
    if (const auto dist = cli.value("dist"); dist && !dist->empty()) {
      spec.distribution = parse_distribution(*dist);
    }
    csv = cli.get_bool("csv", false);
    plot_prefix = cli.get_string("plot", "");
    metrics_path = cli.get_string("metrics", "");
    trace_path = cli.get_string("trace", "");
    timeline_path = cli.get_string("timeline", "");
    openmetrics_path = cli.get_string("openmetrics", "");
    argv = cli.raw_args();
    const bool wants_registry = !metrics_path.empty() ||
                                !timeline_path.empty() ||
                                !openmetrics_path.empty();
    const int threads = cli.get_int("threads", 0);
    std::size_t workers = static_cast<std::size_t>(std::max(threads, 0));
    if (workers == 0 && (wants_registry || !trace_path.empty())) {
      // At least two workers for instrumented runs: a one-worker pool
      // degrades to the sequential parallel_for path and would leave the
      // pool.* metrics (and the per-worker span tracks) at zero.
      workers = std::max(2u, std::thread::hardware_concurrency());
    }
    pool = std::make_unique<util::ThreadPool>(workers);
    if (wants_registry) {
      registry = std::make_unique<obs::MetricsRegistry>();
      wiring_ = std::make_unique<engine::ScenarioMetrics>(*registry);
      spec.sim.metrics = &wiring_->sim;
      spec.optimizer.metrics = &wiring_->optimizer;
      pool->attach_metrics(engine::pool_metrics(*registry));
    }
    if (!trace_path.empty()) {
      trace_sink = std::make_unique<obs::TraceSink>();
      trace_sink->name_current_thread("main");
      spec.optimizer.trace = trace_sink.get();
      pool->attach_trace(trace_sink.get());
    }
    if (!timeline_path.empty()) {
      obs::TelemetrySampler::Options sampling;
      sampling.period = std::chrono::milliseconds(
          std::max(1, cli.get_int("sample-period-ms", 50)));
      sampler = std::make_unique<obs::TelemetrySampler>(*registry, sampling);
      sampler->start();
    }

    options.trials = spec.trials;
    options.seed = spec.seed;
    options.sim = spec.sim;
    options.pool = pool.get();
    // Distribution instantiation needs a concrete system (the default
    // mean is the system MTBF); drivers that sweep systems call
    // options_for(system) per point instead.
  }

  ~BenchConfig() {
    // Best-effort sidecars; never fail the sweep's exit path.
    if (sampler != nullptr) {
      sampler->stop();
      try {
        std::ofstream out(timeline_path);
        out << obs::timeline_jsonl(*sampler, argv);
        std::cerr << "[mlck] wrote timeline " << timeline_path << " ("
                  << sampler->ticks() << " ticks)\n";
      } catch (...) {
      }
    }
    if (registry != nullptr && !openmetrics_path.empty()) {
      try {
        std::ofstream out(openmetrics_path);
        out << obs::openmetrics_text(registry->snapshot());
        std::cerr << "[mlck] wrote openmetrics " << openmetrics_path << "\n";
      } catch (...) {
      }
    }
    if (registry != nullptr && !metrics_path.empty()) {
      try {
        std::ofstream out(metrics_path);
        out << obs::sidecar_json(*registry, argv).dump(2) << "\n";
        std::cerr << "[mlck] wrote metrics sidecar " << metrics_path << "\n";
      } catch (...) {
      }
    }
    if (trace_sink != nullptr && !trace_path.empty()) {
      try {
        // The pool must stop before the sink dies: workers hold the sink
        // pointer and may be mid-span.
        pool.reset();
        std::ofstream out(trace_path);
        out << obs::chrome_trace_json(trace_sink.get(), nullptr).dump(2)
            << "\n";
        std::cerr << "[mlck] wrote trace " << trace_path << "\n";
      } catch (...) {
      }
    }
  }

  BenchConfig(const BenchConfig&) = delete;
  BenchConfig& operator=(const BenchConfig&) = delete;

  /// Experiment options for one concrete system, with the scenario's
  /// failure distribution materialized against that system's MTBF. The
  /// returned options borrow @p distribution_storage, which must outlive
  /// their use.
  exp::ExperimentOptions options_for(
      const systems::SystemConfig& system,
      std::unique_ptr<const math::FailureDistribution>& distribution_storage)
      const {
    engine::ScenarioSpec point = spec;
    point.system = system;
    point.system_ref.clear();
    return exp::options_from(point, pool.get(), distribution_storage);
  }

  /// Parses --dist=exponential | weibull[:shape] | lognormal[:sigma].
  static engine::DistributionSpec parse_distribution(
      const std::string& text) {
    engine::DistributionSpec dist;
    const auto colon = text.find(':');
    const std::string kind = text.substr(0, colon);
    const std::string param =
        colon == std::string::npos ? "" : text.substr(colon + 1);
    if (kind == "exponential") {
      dist.kind = engine::DistributionSpec::Kind::kExponential;
    } else if (kind == "weibull") {
      dist.kind = engine::DistributionSpec::Kind::kWeibull;
      if (!param.empty()) dist.shape = std::stod(param);
    } else if (kind == "lognormal") {
      dist.kind = engine::DistributionSpec::Kind::kLogNormal;
      if (!param.empty()) dist.sigma = std::stod(param);
    } else {
      throw std::invalid_argument(
          "unknown --dist (use exponential|weibull[:shape]|"
          "lognormal[:sigma]): " + text);
    }
    return dist;
  }

  /// Writes <prefix>.dat and <prefix>.gp so `gnuplot <prefix>.gp` renders
  /// the efficiency figure; no-op when --plot was not given.
  void emit_efficiency_plot(const std::vector<exp::ScenarioResult>& rows,
                            const std::string& title) const {
    if (plot_prefix.empty() || rows.empty()) return;
    std::vector<std::string> names;
    for (const auto& o : rows.front().outcomes) names.push_back(o.technique);
    std::ofstream dat(plot_prefix + ".dat");
    exp::write_efficiency_dat(dat, rows);
    std::ofstream gp(plot_prefix + ".gp");
    exp::write_efficiency_gp(gp, plot_prefix + ".dat", title, names,
                             plot_prefix + ".png");
    std::cerr << "[mlck] wrote " << plot_prefix << ".dat and "
              << plot_prefix << ".gp\n";
  }
};

/// Fails loudly on mistyped sweep parameters instead of running defaults.
inline void reject_unknown_flags(const util::Cli& cli) {
  const auto unknown = cli.unrecognized();
  if (!unknown.empty()) {
    std::cerr << "unknown option(s):";
    for (const auto& u : unknown) std::cerr << " --" << u;
    std::cerr << "\n";
    std::exit(2);
  }
}

/// Progress line to stderr so long sweeps are observable while stdout
/// stays a clean report.
inline void progress(const std::string& message) {
  std::cerr << "[mlck] " << message << "\n";
}

}  // namespace mlck::bench

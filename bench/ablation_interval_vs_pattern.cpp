// Extension experiment for the paper's Sec. II-C discussion: Di et al.
// report that *interval-based* multilevel checkpointing (independent
// per-level periods) can beat pattern-based scheduling, but note the open
// practical question of colliding checkpoints. This driver simulates, on
// every Table I system:
//   * the Dauwe-optimized SCR pattern,
//   * the interval schedule equivalent to that pattern (engine
//     cross-check: identical by construction),
//   * the relaxed first-order interval schedule with free-running periods
//     (collisions resolved by taking the highest due level).
#include <iostream>

#include "bench_common.h"
#include "core/interval_schedule.h"
#include "core/technique.h"
#include "models/interval_baseline.h"
#include "models/interval_tuner.h"
#include "sim/trial_runner.h"
#include "systems/test_systems.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const mlck::util::Cli cli(argc, argv);
  mlck::bench::BenchConfig cfg(cli, /*default_trials=*/200);
  mlck::bench::reject_unknown_flags(cli);

  using mlck::util::Table;
  const mlck::core::DauweTechnique technique;

  Table table({"system", "pattern eff", "sd", "pattern-as-intervals eff",
               "relaxed intervals eff", "sd", "tuned intervals eff",
               "relaxed schedule"});
  for (const auto& sys : mlck::systems::table1_systems()) {
    mlck::bench::progress("ablation interval-vs-pattern: " + sys.name);
    const auto selected = technique.select_plan(sys, cfg.options.pool);
    const auto pattern =
        mlck::sim::run_trials(sys, selected.plan, cfg.options.trials,
                              cfg.options.seed, cfg.options.sim,
                              cfg.options.pool);
    const auto as_intervals = mlck::sim::run_trials(
        sys, mlck::core::IntervalSchedule::from_plan(selected.plan),
        cfg.options.trials, cfg.options.seed, cfg.options.sim,
        cfg.options.pool);
    const auto relaxed_schedule = mlck::models::relaxed_interval_schedule(sys);
    const auto relaxed = mlck::sim::run_trials(
        sys, relaxed_schedule, cfg.options.trials, cfg.options.seed,
        cfg.options.sim, cfg.options.pool);
    // Simulation-tuned periods, then re-scored on the full trial budget
    // with a fresh seed (the tuner's own estimate is optimistically
    // biased by selection).
    const auto tuned = mlck::models::tune_interval_schedule(
        sys, {}, cfg.options.pool);
    const auto tuned_eval = mlck::sim::run_trials(
        sys, tuned.schedule, cfg.options.trials, cfg.options.seed,
        cfg.options.sim, cfg.options.pool);
    table.add_row({sys.name, Table::pct(pattern.efficiency.mean),
                   Table::pct(pattern.efficiency.stddev),
                   Table::pct(as_intervals.efficiency.mean),
                   Table::pct(relaxed.efficiency.mean),
                   Table::pct(relaxed.efficiency.stddev),
                   Table::pct(tuned_eval.efficiency.mean),
                   relaxed_schedule.to_string()});
  }
  std::cout << "Extension: pattern-based vs interval-based multilevel "
               "checkpointing (Dauwe pattern vs relaxed per-level periods)\n";
  table.print(std::cout);
  std::cout << "\nReading the table: column 4 must equal column 2 (same "
               "schedule, two engines). The relaxed intervals avoid the "
               "pattern's nesting/rounding constraints but lose the full "
               "model's failed-C/R awareness; where the two effects nearly "
               "cancel, the paper's pattern restriction costs little — its "
               "argument for keeping the practical pattern form.\n";
  return 0;
}

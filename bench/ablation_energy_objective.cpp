// Extension experiment (the paper's system B source, Balaprakash et al.
// [19], studies this trade-off): time-optimal vs energy-optimal vs
// EDP-optimal checkpoint intervals. Checkpoint/restart phases draw less
// power than computation (CPUs stall on I/O), so the objectives disagree
// exactly where checkpointing is frequent.
#include <iostream>

#include "bench_common.h"
#include "core/dauwe_model.h"
#include "core/optimizer.h"
#include "energy/power_model.h"
#include "sim/trial_runner.h"
#include "systems/test_systems.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const mlck::util::Cli cli(argc, argv);
  mlck::bench::BenchConfig cfg(cli, /*default_trials=*/200);
  const double ckpt_power = cli.get_double("checkpoint-power", 0.5);
  const double restart_power = cli.get_double("restart-power", 0.5);
  mlck::bench::reject_unknown_flags(cli);

  using mlck::util::Table;
  mlck::energy::PowerModel power;
  power.checkpoint = ckpt_power;
  power.restart = restart_power;
  power.validate();
  const mlck::core::DauweModel base;

  std::cout << "Extension: objective comparison (compute power 1.0, "
               "checkpoint "
            << ckpt_power << ", restart " << restart_power << ")\n";
  Table table({"system", "objective", "plan", "sim eff", "sim energy",
               "energy/compute-only"});
  for (const char* name : {"D2", "D4", "D6", "D8"}) {
    const auto sys = mlck::systems::table1_system(name);
    mlck::bench::progress("ablation energy: " + std::string(name));
    struct Variant {
      const char* label;
      mlck::energy::Objective objective;
    };
    const Variant variants[] = {
        {"time", mlck::energy::Objective::kTime},
        {"energy", mlck::energy::Objective::kEnergy},
        {"EDP", mlck::energy::Objective::kEdp}};
    for (const auto& variant : variants) {
      const mlck::energy::EnergyObjectiveModel objective(base, power,
                                                         variant.objective);
      const auto best =
          mlck::core::optimize_intervals(objective, sys, {},
                                         cfg.options.pool);
      const auto stats =
          mlck::sim::run_trials(sys, best.plan, cfg.options.trials,
                                cfg.options.seed, cfg.options.sim,
                                cfg.options.pool);
      // Mean simulated energy per run: shares * mean total time.
      mlck::sim::SimBreakdown minutes = stats.time_shares;
      const double mean_energy =
          power.energy(minutes) * stats.total_time.mean;
      table.add_row({name, variant.label, best.plan.to_string(),
                     Table::pct(stats.efficiency.mean),
                     Table::num(mean_energy, 1),
                     Table::num(mean_energy / sys.base_time, 3)});
    }
  }
  table.print(std::cout);
  std::cout << "\nReading the table: 'energy/compute-only' is the energy "
               "relative to a failure-free run at full power. The energy "
               "objective tolerates longer runs when the extra minutes are "
               "spent in low-power checkpoint I/O; EDP sits between.\n";
  return 0;
}

// Observability overhead budget: the cost of *attached* instrumentation
// (metrics registry wired into the optimizer, engine, simulator, and
// pool, plus a live TelemetrySampler snapshotting the registry) versus
// the same workload fully detached (every metric pointer null — one
// predictable branch per site).
//
// Two lanes, mirroring the hot paths the telemetry stack instruments:
//
//   optimizer — EvaluationEngine::optimize over the full staged sweep
//               (fresh engine per run, so cache state is equal in both
//               arms) on a parallel pool;
//   simulator — sim::run_trials Monte-Carlo batches on the same pool.
//
// The contract is twofold and gated:
//   * results must be BIT-IDENTICAL with and without instrumentation
//     (the observe-only contract, == on every aggregate field);
//   * attached wall time may exceed detached by at most --bound
//     (default 2%), measured best-of-repeats with the two arms
//     interleaved so clock drift and turbo state hit both equally.
//
// A third section checks the sampler is *live*: a short-period sampler
// attached to a running workload must complete >= 3 ticks and every
// counter series it captures must be monotone non-decreasing.
//
// Writes BENCH_obs.json (deterministic key order). Exit codes: 1 bit
// divergence, 3 overhead bound exceeded, 4 sampler not live. --smoke
// shrinks the workload for CI.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/optimizer.h"
#include "core/serialize.h"
#include "engine/evaluation.h"
#include "engine/scenario.h"
#include "obs/registry.h"
#include "obs/timeseries.h"
#include "sim/trial_runner.h"
#include "systems/test_systems.h"
#include "util/cli.h"
#include "util/json.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using mlck::util::Json;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool same_plan(const mlck::core::CheckpointPlan& a,
               const mlck::core::CheckpointPlan& b) {
  return a.tau0 == b.tau0 && a.levels == b.levels && a.counts == b.counts;
}

bool same_optimization(const mlck::core::OptimizationResult& a,
                       const mlck::core::OptimizationResult& b) {
  return same_plan(a.plan, b.plan) && a.expected_time == b.expected_time &&
         a.efficiency == b.efficiency;
}

bool same_summary(const mlck::stats::Summary& a,
                  const mlck::stats::Summary& b) {
  return a.count == b.count && a.mean == b.mean && a.stddev == b.stddev &&
         a.min == b.min && a.max == b.max;
}

bool same_breakdown(const mlck::sim::SimBreakdown& a,
                    const mlck::sim::SimBreakdown& b) {
  return a.useful == b.useful && a.checkpoint_ok == b.checkpoint_ok &&
         a.checkpoint_failed == b.checkpoint_failed &&
         a.restart_ok == b.restart_ok &&
         a.restart_failed == b.restart_failed &&
         a.rework_compute == b.rework_compute &&
         a.rework_checkpoint == b.rework_checkpoint &&
         a.rework_restart == b.rework_restart;
}

bool same_stats(const mlck::sim::TrialStats& a,
                const mlck::sim::TrialStats& b) {
  return same_summary(a.efficiency, b.efficiency) &&
         same_summary(a.total_time, b.total_time) &&
         same_breakdown(a.time_shares, b.time_shares) &&
         a.mean_failures == b.mean_failures && a.trials == b.trials &&
         a.capped_trials == b.capped_trials;
}

/// One measured lane: per-repeat paired timings of the detached and
/// attached arms, reduced to the *median* attached/detached ratio.
/// Within a repeat each arm runs `inner` times interleaved and keeps
/// its best (bursty noise — CPU steal, scheduler stalls — rarely spares
/// all inner runs of one arm); the two bests come from the same short
/// window, so slow drift in clock rate or machine load cancels in the
/// ratio; the median across repeats rejects windows where noise won
/// anyway. Plain min-of-each-arm across all runs proved flaky at the
/// +-3% level on shared machines because the two minima can come from
/// different load regimes; a single paired run per repeat flaked on
/// bursts. The per-repeat ratios are recorded in BENCH_obs.json for
/// diagnosing a failed gate.
struct Lane {
  std::string lane;
  double detached_seconds = 0.0;  ///< best observed, for reporting
  double attached_seconds = 0.0;  ///< best observed, for reporting
  std::vector<double> ratios;     ///< per-repeat attached/detached
  bool bit_identical = false;
  double overhead() const {
    std::vector<double> sorted = ratios;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t n = sorted.size();
    if (n == 0) return 0.0;
    const double median = n % 2 == 1
                              ? sorted[n / 2]
                              : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
    return median - 1.0;
  }
};

/// Times the steady-state cost of attachment: @p begin / @p end flip the
/// instrumentation on and off (pool wiring, sampler thread) *outside*
/// the timed windows — the budget covers instrumented hot paths, not the
/// one-time lifecycle of attaching.
template <typename DetachedFn, typename AttachedFn, typename BeginFn,
          typename EndFn>
void time_interleaved(int repeats, int inner, Lane& lane,
                      const DetachedFn& detached, const AttachedFn& attached,
                      const BeginFn& begin, const EndFn& end) {
  lane.detached_seconds = std::numeric_limits<double>::infinity();
  lane.attached_seconds = std::numeric_limits<double>::infinity();
  for (int r = 0; r < repeats; ++r) {
    double best_detached = std::numeric_limits<double>::infinity();
    double best_attached = std::numeric_limits<double>::infinity();
    const auto run_detached = [&] {
      const auto start = std::chrono::steady_clock::now();
      detached();
      best_detached = std::min(best_detached, seconds_since(start));
    };
    const auto run_attached = [&] {
      begin();
      const auto start = std::chrono::steady_clock::now();
      attached();
      best_attached = std::min(best_attached, seconds_since(start));
      end();
    };
    for (int k = 0; k < inner; ++k) {
      // Alternate the order so any second-runner advantage (warm
      // caches, ramped clocks) lands on both arms equally often.
      if ((r + k) % 2 == 0) {
        run_detached();
        run_attached();
      } else {
        run_attached();
        run_detached();
      }
    }
    lane.detached_seconds = std::min(lane.detached_seconds, best_detached);
    lane.attached_seconds = std::min(lane.attached_seconds, best_attached);
    lane.ratios.push_back(best_attached / best_detached);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const mlck::util::Cli cli(argc, argv);
  const bool smoke = cli.get_bool("smoke", false);
  const int repeats = cli.get_int("repeats", smoke ? 5 : 7);
  const int inner = cli.get_int("inner", 3);
  // Lanes must be long enough that a 2% delta clears timer and scheduler
  // noise (sub-50ms measurements flaked at the +-3% level); trials sizes
  // the simulator batch, iters repeats the optimizer sweep per
  // measurement.
  const int trials = cli.get_int("trials", smoke ? 300000 : 1000000);
  const int iters = cli.get_int("iters", smoke ? 150 : 300);
  const double bound = cli.get_double("bound", 0.02);
  // Diagnostic switches for a failed gate: drop one attachment at a time
  // to see which one carries the overhead.
  const bool with_sampler = cli.get_bool("with-sampler", true);
  const bool with_pool_metrics = cli.get_bool("with-pool-metrics", true);
  const std::string out = cli.get_string("out", "BENCH_obs.json");
  const int threads = cli.get_int("threads", 0);
  mlck::bench::reject_unknown_flags(cli);

  mlck::util::ThreadPool pool(
      threads > 0 ? static_cast<std::size_t>(threads)
                  : std::max(2u, std::thread::hardware_concurrency()));
  const std::uint64_t seed = 20180521;
  const auto sys = mlck::systems::table1_system("M");

  // The attached arm's full wiring: scenario metric names + pool metrics
  // + a live sampler at the default cadence. Created once; the pool's
  // metrics are attached/detached around each arm so both run on the
  // *same* pool.
  mlck::obs::MetricsRegistry registry;
  mlck::engine::ScenarioMetrics wiring(registry);
  const mlck::util::ThreadPoolMetrics pool_wiring =
      mlck::engine::pool_metrics(registry);
  mlck::obs::TelemetrySampler sampler(registry);

  mlck::core::OptimizerOptions optimizer_options;
  if (smoke) optimizer_options.coarse_tau_points = 24;

  Json::Array lanes_json;
  mlck::util::Table table(
      {"lane", "detached s", "attached s", "overhead", "identical"});
  bool all_identical = true;
  double max_overhead = 0.0;

  // ---- optimizer lane --------------------------------------------------
  Lane optimizer_lane;
  optimizer_lane.lane = "optimizer";
  {
    mlck::bench::progress("bench obs: optimizer lane");
    // Fresh engine per run: both arms pay identical context-build costs
    // (the cache never carries over between measurements).
    const auto one_detached = [&] {
      mlck::engine::EvaluationEngine eng(sys);
      return eng.optimize(optimizer_options, &pool);
    };
    const auto one_attached = [&] {
      mlck::engine::EvaluationEngine eng(sys);
      eng.attach_metrics(wiring.engine);
      mlck::core::OptimizerOptions opts = optimizer_options;
      opts.metrics = &wiring.optimizer;
      return eng.optimize(opts, &pool);
    };
    optimizer_lane.bit_identical =
        same_optimization(one_detached(), one_attached());
    time_interleaved(
        repeats, inner, optimizer_lane,
        [&] {
          for (int i = 0; i < iters; ++i) one_detached();
        },
        [&] {
          for (int i = 0; i < iters; ++i) one_attached();
        },
        [&] {
          if (with_pool_metrics) pool.attach_metrics(pool_wiring);
          if (with_sampler) sampler.start();
        },
        [&] {
          if (with_sampler) sampler.stop();
          if (with_pool_metrics) pool.attach_metrics({});
        });
  }

  // ---- simulator lane --------------------------------------------------
  Lane simulator_lane;
  simulator_lane.lane = "simulator";
  {
    mlck::bench::progress("bench obs: simulator lane");
    mlck::engine::EvaluationEngine eng(sys);
    const auto plan = eng.optimize(optimizer_options, &pool).plan;
    const auto n = static_cast<std::size_t>(trials);
    mlck::sim::SimOptions detached_options;
    mlck::sim::SimOptions attached_options;
    attached_options.metrics = &wiring.sim;
    const auto run_detached = [&] {
      return mlck::sim::run_trials(sys, plan, n, seed, detached_options,
                                   &pool);
    };
    const auto run_attached = [&] {
      return mlck::sim::run_trials(sys, plan, n, seed, attached_options,
                                   &pool);
    };
    simulator_lane.bit_identical = same_stats(run_detached(), run_attached());
    time_interleaved(
        repeats, inner, simulator_lane, run_detached, run_attached,
        [&] {
          if (with_pool_metrics) pool.attach_metrics(pool_wiring);
          if (with_sampler) sampler.start();
        },
        [&] {
          if (with_sampler) sampler.stop();
          if (with_pool_metrics) pool.attach_metrics({});
        });
  }

  // ---- sampler liveness ------------------------------------------------
  // A fast sampler over a real workload must actually tick, and the
  // series it captures must be monotone (counters never run backwards).
  std::uint64_t live_ticks = 0;
  bool monotone = true;
  bool sampler_live = false;
  {
    mlck::bench::progress("bench obs: sampler liveness");
    mlck::obs::MetricsRegistry live_registry;
    mlck::engine::ScenarioMetrics live_wiring(live_registry);
    mlck::obs::TelemetrySampler::Options fast;
    fast.period = std::chrono::milliseconds(2);
    mlck::obs::TelemetrySampler live_sampler(live_registry, fast);
    mlck::sim::SimOptions live_options;
    live_options.metrics = &live_wiring.sim;
    live_sampler.start();
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(50);
    std::uint64_t batch_seed = seed;
    mlck::engine::EvaluationEngine eng(sys);
    const auto plan = eng.optimize(optimizer_options, &pool).plan;
    do {
      mlck::sim::run_trials(sys, plan, static_cast<std::size_t>(trials),
                            batch_seed++, live_options, &pool);
    } while (std::chrono::steady_clock::now() < deadline);
    live_sampler.stop();
    live_ticks = live_sampler.ticks();
    for (const auto& [name, series] : live_sampler.series()) {
      if (series.kind != mlck::obs::MetricSeries::Kind::kCounter) continue;
      for (std::size_t i = 1; i < series.points.size(); ++i) {
        if (series.points[i].value < series.points[i - 1].value) {
          monotone = false;
          std::cerr << "FATAL: counter series " << name
                    << " ran backwards at point " << i << "\n";
        }
      }
    }
    sampler_live = live_ticks >= 3 && monotone;
  }

  for (const Lane* lane : {&optimizer_lane, &simulator_lane}) {
    if (!lane->bit_identical) {
      all_identical = false;
      std::cerr << "FATAL: attached instrumentation changed " << lane->lane
                << " results\n";
    }
    max_overhead = std::max(max_overhead, lane->overhead());
    table.add_row({lane->lane,
                   mlck::util::Table::num(lane->detached_seconds, 4),
                   mlck::util::Table::num(lane->attached_seconds, 4),
                   mlck::util::Table::pct(lane->overhead(), 2),
                   lane->bit_identical ? "yes" : "NO"});
    Json::Object row;
    row["lane"] = lane->lane;
    row["detached_seconds"] = lane->detached_seconds;
    row["attached_seconds"] = lane->attached_seconds;
    Json::Array ratios;
    for (double ratio : lane->ratios) ratios.emplace_back(ratio);
    row["ratios"] = std::move(ratios);
    row["overhead"] = lane->overhead();
    row["within_bound"] = lane->overhead() <= bound;
    row["bit_identical"] = lane->bit_identical;
    lanes_json.emplace_back(std::move(row));
  }
  const bool within_bound = max_overhead <= bound;

  Json::Object sampler_json;
  sampler_json["ticks"] = static_cast<double>(live_ticks);
  sampler_json["monotone"] = monotone;
  sampler_json["live"] = sampler_live;

  Json::Object doc;
  doc["benchmark"] = "observability_overhead";
  doc["trials"] = trials;
  doc["iters"] = iters;
  doc["repeats"] = repeats;
  doc["inner"] = inner;
  doc["threads"] = threads;
  doc["smoke"] = smoke;
  doc["bound"] = bound;
  doc["lanes"] = std::move(lanes_json);
  doc["max_overhead"] = max_overhead;
  doc["within_bound"] = within_bound;
  doc["bit_identical"] = all_identical;
  doc["sampler"] = std::move(sampler_json);
  mlck::core::write_file(out, Json(std::move(doc)).dump(2) + "\n");

  std::cout << "Observability overhead: attached (registry + sampler) vs "
               "detached (null metric pointers), bound "
            << mlck::util::Table::pct(bound, 0) << "\n";
  table.print(std::cout);
  std::cout << "sampler liveness: " << live_ticks << " ticks, counters "
            << (monotone ? "monotone" : "NOT MONOTONE") << "\n";
  std::cout << "\nwrote " << out << "\n";
  if (!all_identical) return 1;
  if (!within_bound) {
    std::cerr << "FATAL: attached overhead "
              << mlck::util::Table::pct(max_overhead, 2) << " exceeds bound "
              << mlck::util::Table::pct(bound, 2) << "\n";
    return 3;
  }
  if (!sampler_live) {
    std::cerr << "FATAL: sampler not live (ticks=" << live_ticks
              << ", monotone=" << (monotone ? "yes" : "no") << ")\n";
    return 4;
  }
  return 0;
}

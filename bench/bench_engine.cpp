// Engine baseline: optimizer throughput with and without the cached
// evaluation context. The direct path rebuilds every tau-independent
// per-level quantity (effective rates, severity shares, retry terms) on
// each model evaluation; the engine path builds them once per
// (system, level-subset) and reuses them across the whole sweep. Both
// paths drive the identical search, so the result check below is exact
// equality, not a tolerance.
//
// Writes BENCH_engine.json (deterministic key order via util::Json) so
// the speedup is a tracked artifact rather than a one-off observation.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/dauwe_model.h"
#include "core/optimizer.h"
#include "core/serialize.h"
#include "engine/evaluation.h"
#include "systems/test_systems.h"
#include "util/cli.h"
#include "util/json.h"
#include "util/table.h"

namespace {

using mlck::util::Json;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Best-of-repeats wall time of one optimizer run.
template <typename Fn>
double time_best(int repeats, const Fn& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    best = std::min(best, seconds_since(start));
  }
  return best;
}

bool identical(const mlck::core::OptimizationResult& a,
               const mlck::core::OptimizationResult& b) {
  return a.plan.tau0 == b.plan.tau0 && a.plan.counts == b.plan.counts &&
         a.plan.levels == b.plan.levels &&
         a.expected_time == b.expected_time &&
         a.evaluations == b.evaluations;
}

}  // namespace

int main(int argc, char** argv) {
  const mlck::util::Cli cli(argc, argv);
  const int repeats = cli.get_int("repeats", 3);
  const std::string out = cli.get_string("out", "BENCH_engine.json");
  const int threads = cli.get_int("threads", 0);
  mlck::bench::reject_unknown_flags(cli);
  mlck::util::ThreadPool pool(static_cast<std::size_t>(threads));

  mlck::util::Table table({"system", "evals", "direct s", "engine s",
                           "direct evals/s", "engine evals/s", "speedup"});
  Json::Array systems_json;
  double worst_speedup = std::numeric_limits<double>::infinity();

  for (const char* name : {"B", "D5", "D9"}) {
    mlck::bench::progress("bench engine: " + std::string(name));
    const auto sys = mlck::systems::table1_system(name);
    const mlck::core::DauweModel model;
    const mlck::engine::EvaluationEngine engine(sys);
    const mlck::core::OptimizerOptions opts;
    // This benchmark isolates the *kernel caching* gain (tier 1 vs
    // tier 2), so the engine side runs the structurally-identical sweep:
    // lane batching and bound pruning (the engine default; measured in
    // BENCH_optimizer.json) are turned off to keep the strict identity
    // check, evaluation count included.
    mlck::core::OptimizerOptions engine_opts = opts;
    engine_opts.lane_batch = false;
    engine_opts.prune = false;

    // One untimed warm-up each: populates the engine's context cache and
    // faults in code/data so both timed paths start warm.
    const auto direct = mlck::core::optimize_intervals(model, sys, opts,
                                                       &pool);
    const auto cached = engine.optimize(engine_opts, &pool);
    if (!identical(direct, cached)) {
      std::cerr << "FATAL: engine result diverges from direct model on "
                << name << "\n";
      return 1;
    }

    const double direct_s = time_best(repeats, [&] {
      mlck::core::optimize_intervals(model, sys, opts, &pool);
    });
    const double engine_s =
        time_best(repeats, [&] { engine.optimize(engine_opts, &pool); });

    const auto evals = static_cast<double>(direct.evaluations);
    const double speedup = direct_s / engine_s;
    worst_speedup = std::min(worst_speedup, speedup);
    table.add_row({name, std::to_string(direct.evaluations),
                   mlck::util::Table::num(direct_s, 4),
                   mlck::util::Table::num(engine_s, 4),
                   mlck::util::Table::num(evals / direct_s, 0),
                   mlck::util::Table::num(evals / engine_s, 0),
                   mlck::util::Table::num(speedup, 2) + "x"});

    Json::Object row;
    row["system"] = name;
    row["levels"] = sys.levels();
    row["evaluations"] = static_cast<double>(direct.evaluations);
    row["direct_seconds"] = direct_s;
    row["engine_seconds"] = engine_s;
    row["direct_evals_per_sec"] = evals / direct_s;
    row["engine_evals_per_sec"] = evals / engine_s;
    row["speedup"] = speedup;
    row["bit_identical"] = true;
    systems_json.emplace_back(std::move(row));
  }

  Json::Object doc;
  doc["benchmark"] = "engine_cached_context_vs_direct";
  doc["optimizer"] = "optimize_intervals default options";
  doc["repeats"] = repeats;
  doc["threads"] = threads;
  doc["systems"] = std::move(systems_json);
  doc["min_speedup"] = worst_speedup;
  mlck::core::write_file(out, Json(std::move(doc)).dump(2) + "\n");

  std::cout << "Engine benchmark: cached EvaluationContext vs direct "
               "DauweModel (identical search, exact-equal results)\n";
  table.print(std::cout);
  std::cout << "\nwrote " << out << "\n";
  return worst_speedup > 1.0 ? 0 : 3;
}

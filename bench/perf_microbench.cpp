// google-benchmark microbenchmarks for the performance-critical paths:
// the probability kernels, one model evaluation (the optimizer's inner
// loop), a full optimizer run, and a simulated trial. These are not paper
// artifacts; they guard the cost model documented in DESIGN.md (optimizer
// sweeps evaluate ~10^6 plans per system).
#include <benchmark/benchmark.h>

#include "core/adaptive.h"
#include "core/dauwe_kernel.h"
#include "core/dauwe_model.h"
#include "core/optimizer.h"
#include "core/serialize.h"
#include "engine/evaluation.h"
#include "math/distribution.h"
#include "math/exponential.h"
#include "models/interval_baseline.h"
#include "models/moody.h"
#include "sim/simulator.h"
#include "systems/test_systems.h"
#include "util/json.h"
#include "util/rng.h"

namespace {

using mlck::core::CheckpointPlan;
using mlck::core::DauweModel;

void BM_TruncatedMean(benchmark::State& state) {
  double t = 3.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlck::math::truncated_mean(t, 0.08));
    t += 1e-9;  // defeat constant folding
  }
}
BENCHMARK(BM_TruncatedMean);

void BM_RngExponential(benchmark::State& state) {
  mlck::util::Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.exponential(0.1));
  }
}
BENCHMARK(BM_RngExponential);

void BM_DauweEvalTwoLevel(benchmark::State& state) {
  const auto sys = mlck::systems::table1_system("D5");
  const DauweModel model;
  const auto plan = CheckpointPlan::full_hierarchy(2.0, {5});
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.expected_time(sys, plan));
  }
}
BENCHMARK(BM_DauweEvalTwoLevel);

void BM_DauweEvalFourLevel(benchmark::State& state) {
  const auto sys = mlck::systems::table1_system("B");
  const DauweModel model;
  const auto plan = CheckpointPlan::full_hierarchy(2.0, {3, 2, 2});
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.expected_time(sys, plan));
  }
}
BENCHMARK(BM_DauweEvalFourLevel);

// Same evaluation as BM_DauweEvalFourLevel but through a prebuilt
// DauweKernel: the tau-independent per-level terms are computed once
// instead of per call. The ratio of these two cases is the per-eval win
// the engine's context cache banks across an optimizer sweep.
void BM_DauweKernelEvalFourLevel(benchmark::State& state) {
  const auto sys = mlck::systems::table1_system("B");
  const auto plan = CheckpointPlan::full_hierarchy(2.0, {3, 2, 2});
  const mlck::core::DauweKernel kernel(sys, plan.levels, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.expected_time(plan.tau0, plan.counts));
  }
}
BENCHMARK(BM_DauweKernelEvalFourLevel);

void BM_MoodyEvalFourLevel(benchmark::State& state) {
  const auto sys = mlck::systems::table1_system("B");
  const mlck::models::MoodyModel model;
  const auto plan = CheckpointPlan::full_hierarchy(2.0, {3, 2, 2});
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.expected_time(sys, plan));
  }
}
BENCHMARK(BM_MoodyEvalFourLevel);

void BM_OptimizeTwoLevelSystem(benchmark::State& state) {
  const auto sys = mlck::systems::table1_system("D5");
  const DauweModel model;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlck::core::optimize_intervals(model, sys));
  }
}
BENCHMARK(BM_OptimizeTwoLevelSystem)->Unit(benchmark::kMillisecond);

// The same search through the engine's cached contexts (bit-identical
// result); compare against BM_OptimizeTwoLevelSystem for the sweep-level
// speedup.
void BM_OptimizeTwoLevelSystemCached(benchmark::State& state) {
  const auto sys = mlck::systems::table1_system("D5");
  const mlck::engine::EvaluationEngine engine(sys);
  engine.optimize();  // warm the context cache outside the timed loop
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.optimize());
  }
}
BENCHMARK(BM_OptimizeTwoLevelSystemCached)->Unit(benchmark::kMillisecond);

void BM_SimulateTrialD5(benchmark::State& state) {
  const auto sys = mlck::systems::table1_system("D5");
  const auto plan = CheckpointPlan::full_hierarchy(2.0, {5});
  std::uint64_t seed = 0;
  for (auto _ : state) {
    mlck::sim::RandomFailureSource src(sys, mlck::util::Rng(++seed));
    benchmark::DoNotOptimize(mlck::sim::simulate(sys, plan, src));
  }
}
BENCHMARK(BM_SimulateTrialD5)->Unit(benchmark::kMicrosecond);

void BM_SimulateTrialHarshD9(benchmark::State& state) {
  const auto sys = mlck::systems::table1_system("D9");
  const auto plan = CheckpointPlan::full_hierarchy(1.0, {6});
  std::uint64_t seed = 0;
  for (auto _ : state) {
    mlck::sim::RandomFailureSource src(sys, mlck::util::Rng(++seed));
    benchmark::DoNotOptimize(mlck::sim::simulate(sys, plan, src));
  }
}
BENCHMARK(BM_SimulateTrialHarshD9)->Unit(benchmark::kMicrosecond);

void BM_SimulateIntervalScheduleD5(benchmark::State& state) {
  const auto sys = mlck::systems::table1_system("D5");
  const auto schedule = mlck::models::relaxed_interval_schedule(sys);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    mlck::sim::RandomFailureSource src(sys, mlck::util::Rng(++seed));
    benchmark::DoNotOptimize(mlck::sim::simulate(sys, schedule, src));
  }
}
BENCHMARK(BM_SimulateIntervalScheduleD5)->Unit(benchmark::kMicrosecond);

void BM_SimulateAdaptiveD5(benchmark::State& state) {
  const auto sys = mlck::systems::table1_system("D5");
  const auto plan = CheckpointPlan::full_hierarchy(2.0, {5});
  const auto adaptive = mlck::core::make_adaptive(sys, plan);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    mlck::sim::RandomFailureSource src(sys, mlck::util::Rng(++seed));
    benchmark::DoNotOptimize(mlck::sim::simulate(sys, adaptive, src));
  }
}
BENCHMARK(BM_SimulateAdaptiveD5)->Unit(benchmark::kMicrosecond);

void BM_WeibullTruncatedMeanNumeric(benchmark::State& state) {
  const auto weibull = mlck::math::Weibull::with_mean(10.0, 0.7);
  double t = 5.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(weibull.truncated_mean(t));
    t += 1e-9;
  }
}
BENCHMARK(BM_WeibullTruncatedMeanNumeric)->Unit(benchmark::kMicrosecond);

void BM_JsonParseSystemDocument(benchmark::State& state) {
  const std::string doc =
      mlck::core::to_json(mlck::systems::table1_system("B")).dump(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlck::util::Json::parse(doc));
  }
}
BENCHMARK(BM_JsonParseSystemDocument);

}  // namespace

BENCHMARK_MAIN();

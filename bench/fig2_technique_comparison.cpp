// Reproduces paper Figure 2: efficiency of five checkpoint-interval
// optimization techniques (Dauwe, Di, Moody, Benoit, Daly) on the eleven
// Table I test systems. For each bar the driver prints the simulated
// efficiency mean and standard deviation over the Monte-Carlo trials plus
// the technique's own prediction (the figure's diamonds).
#include <iostream>

#include "bench_common.h"
#include "exp/report.h"
#include "models/registry.h"
#include "systems/test_systems.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const mlck::util::Cli cli(argc, argv);
  mlck::bench::BenchConfig cfg(cli, /*default_trials=*/200);
  mlck::bench::reject_unknown_flags(cli);

  const auto techniques = mlck::models::figure2_techniques();
  std::vector<mlck::exp::ScenarioResult> rows;
  for (const auto& sys : mlck::systems::table1_systems()) {
    mlck::bench::progress("figure 2: system " + sys.name);
    std::unique_ptr<const mlck::math::FailureDistribution> law;
    rows.push_back(mlck::exp::run_scenario(sys, sys.name, techniques,
                                           cfg.options_for(sys, law)));
  }

  mlck::exp::print_efficiency_table(
      std::cout,
      "Figure 2: technique efficiency on the Table I test systems (" +
          std::to_string(cfg.options.trials) + " trials per bar)",
      rows);

  std::cout << "\nSelected plans\n";
  mlck::util::Table plans({"system", "technique", "plan"});
  for (const auto& row : rows) {
    for (const auto& o : row.outcomes) {
      plans.add_row({row.label, o.technique, o.plan.to_string()});
    }
  }
  plans.print(std::cout);

  cfg.emit_efficiency_plot(rows, "Figure 2");

  if (cfg.csv) {
    std::cout << "\n";
    mlck::exp::write_efficiency_csv(std::cout, rows);
  }
  return 0;
}

// Reproduces paper Table I: the eleven test systems with their level
// counts, MTBFs, failure-severity distributions, checkpoint/restart
// costs, and baseline execution times.
#include <iostream>
#include <sstream>

#include "bench_common.h"
#include "systems/test_systems.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using mlck::util::Table;
  const mlck::util::Cli cli(argc, argv);
  mlck::bench::reject_unknown_flags(cli);

  Table table({"test system", "num. C/R levels", "MTBF (min)",
               "failure distribution", "C/R time (min per level)",
               "baseline execution (min)"});
  for (const auto& sys : mlck::systems::table1_systems()) {
    std::ostringstream sev, cost;
    sev << '(';
    cost << '(';
    for (int l = 0; l < sys.levels(); ++l) {
      if (l) {
        sev << ", ";
        cost << ", ";
      }
      sev << sys.severity_probability[static_cast<std::size_t>(l)];
      cost << sys.checkpoint_cost[static_cast<std::size_t>(l)];
    }
    sev << ')';
    cost << ')';
    table.add_row({sys.name, std::to_string(sys.levels()),
                   Table::num(sys.mtbf, 2), sev.str(), cost.str(),
                   Table::num(sys.base_time, 1)});
  }
  std::cout << "Table I: multilevel checkpointing test systems\n";
  table.print(std::cout);
  return 0;
}

// Simulation engine throughput, batch tier vs the frozen reference tier:
//
//   reference — the pre-rewrite engine preserved verbatim in
//               sim::reference: per-segment std::function schedule
//               dispatch, a virtual FailureSource::next() per event,
//               per-trial severity-CDF and checkpoint-slot allocations.
//   batch     — this PR's engine behind the same run_trials API:
//               CompiledSchedule trigger arrays with an O(1) cursor,
//               devirtualized failure draws, chunk-hoisted source setup,
//               reused capture arenas.
//   tabulated — the batch engine with the law's inverse-CDF sampling
//               table (FailureLaw::sampling_distribution): one uniform
//               per draw instead of the closed-form transcendentals.
//
// The contract mirrors bench_optimizer's: the batch tier must reproduce
// the reference tier's run_trials output BYTE FOR BYTE on equal seeds —
// every Summary/Quantiles/SimBreakdown field compared with == — for the
// exponential lane and the closed-form renewal lanes, on all seven
// Table-I systems. The tabulated lane draws different (same-law) samples
// by design, so it is timed but excluded from the bit gate.
//
// Writes BENCH_sim.json (deterministic key order via util::Json) so the
// trials/sec and the bit_identical flag are tracked artifacts. --smoke
// shrinks trials and the plan-selection grid for CI; --metrics=file.json
// writes the engine/pool counter sidecar (docs/OBSERVABILITY.md).
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/serialize.h"
#include "engine/evaluation.h"
#include "engine/scenario.h"
#include "math/failure_law.h"
#include "obs/registry.h"
#include "sim/reference_simulator.h"
#include "sim/trial_runner.h"
#include "systems/test_systems.h"
#include "util/cli.h"
#include "util/json.h"
#include "util/table.h"

namespace {

using mlck::util::Json;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Best-of-repeats wall time of one trial batch.
template <typename Fn>
double time_best(int repeats, const Fn& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    best = std::min(best, seconds_since(start));
  }
  return best;
}

bool same_summary(const mlck::stats::Summary& a,
                  const mlck::stats::Summary& b) {
  return a.count == b.count && a.mean == b.mean && a.stddev == b.stddev &&
         a.min == b.min && a.max == b.max;
}

bool same_breakdown(const mlck::sim::SimBreakdown& a,
                    const mlck::sim::SimBreakdown& b) {
  return a.useful == b.useful && a.checkpoint_ok == b.checkpoint_ok &&
         a.checkpoint_failed == b.checkpoint_failed &&
         a.restart_ok == b.restart_ok &&
         a.restart_failed == b.restart_failed &&
         a.rework_compute == b.rework_compute &&
         a.rework_checkpoint == b.rework_checkpoint &&
         a.rework_restart == b.rework_restart;
}

/// The bit-identity contract: every aggregate field equal with ==, no
/// tolerance. Quantiles come from the same sorted sample, Summary from
/// the same serial Welford order, so any engine divergence — one draw,
/// one trigger, one rounding difference — trips this.
bool same_stats(const mlck::sim::TrialStats& a,
                const mlck::sim::TrialStats& b) {
  return same_summary(a.efficiency, b.efficiency) &&
         same_summary(a.total_time, b.total_time) &&
         a.efficiency_quantiles.p05 == b.efficiency_quantiles.p05 &&
         a.efficiency_quantiles.p25 == b.efficiency_quantiles.p25 &&
         a.efficiency_quantiles.median == b.efficiency_quantiles.median &&
         a.efficiency_quantiles.p75 == b.efficiency_quantiles.p75 &&
         a.efficiency_quantiles.p95 == b.efficiency_quantiles.p95 &&
         same_breakdown(a.time_shares, b.time_shares) &&
         a.mean_failures == b.mean_failures && a.trials == b.trials &&
         a.capped_trials == b.capped_trials;
}

struct Lane {
  std::string law;          ///< "exponential" | "weibull(0.7)" | ...
  double reference_seconds = 0.0;
  double batch_seconds = 0.0;
  double tabulated_seconds = 0.0;  ///< 0 when the lane has no table
  bool bit_identical = false;      ///< batch vs reference, == on all fields
  double speedup() const { return reference_seconds / batch_seconds; }
  double tabulated_speedup() const {
    return tabulated_seconds > 0.0 ? reference_seconds / tabulated_seconds
                                   : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const mlck::util::Cli cli(argc, argv);
  const bool smoke = cli.get_bool("smoke", false);
  const int repeats = cli.get_int("repeats", smoke ? 1 : 5);
  const int trials = cli.get_int("trials", smoke ? 200 : 1000);
  const std::string out = cli.get_string("out", "BENCH_sim.json");
  const std::string metrics_path = cli.get_string("metrics", "");
  const int threads = cli.get_int("threads", 0);
  mlck::bench::reject_unknown_flags(cli);
  mlck::util::ThreadPool pool(
      static_cast<std::size_t>(std::max(threads, 0)));
  const std::uint64_t seed = 20180521;

  std::unique_ptr<mlck::obs::MetricsRegistry> registry;
  std::unique_ptr<mlck::engine::ScenarioMetrics> wiring;
  mlck::sim::SimOptions sim_options;
  if (!metrics_path.empty()) {
    registry = std::make_unique<mlck::obs::MetricsRegistry>();
    wiring = std::make_unique<mlck::engine::ScenarioMetrics>(*registry);
    sim_options.metrics = &wiring->sim;
    pool.attach_metrics(mlck::engine::pool_metrics(*registry));
  }

  // Plan selection is fixture setup, not the thing being measured: a
  // coarse grid picks one representative Dauwe plan per system.
  mlck::core::OptimizerOptions plan_opts;
  plan_opts.coarse_tau_points = 24;

  const auto weibull = mlck::math::FailureLaw::weibull(0.7);
  const auto lognormal = mlck::math::FailureLaw::lognormal(1.0);

  mlck::util::Table table({"system", "law", "ref s", "batch s", "tab s",
                           "batch x", "tab x", "identical"});
  Json::Array systems_json;
  double best_exponential = 0.0;
  double best_nonexponential = 0.0;
  bool all_identical = true;

  for (const char* name : {"B", "M", "D1", "D3", "D5", "D7", "D9"}) {
    mlck::bench::progress("bench sim: " + std::string(name));
    const auto sys = mlck::systems::table1_system(name);
    mlck::engine::EvaluationEngine engine(sys);
    const auto plan = engine.optimize(plan_opts, &pool).plan;
    const double mtbf = sys.mtbf;

    const auto n = static_cast<std::size_t>(trials);
    std::vector<Lane> lanes;

    // Exponential lane: the simulator's native Poisson source, the path
    // every validation run and scenario sweep exercises by default.
    {
      Lane lane;
      lane.law = "exponential";
      const auto ref =
          mlck::sim::reference::run_trials(sys, plan, n, seed, sim_options,
                                           &pool);
      const auto batch =
          mlck::sim::run_trials(sys, plan, n, seed, sim_options, &pool);
      lane.bit_identical = same_stats(ref, batch);
      lane.reference_seconds = time_best(repeats, [&] {
        mlck::sim::reference::run_trials(sys, plan, n, seed, sim_options,
                                         &pool);
      });
      lane.batch_seconds = time_best(repeats, [&] {
        mlck::sim::run_trials(sys, plan, n, seed, sim_options, &pool);
      });
      best_exponential = std::max(best_exponential, lane.speedup());
      lanes.push_back(lane);
    }

    // Renewal lanes: closed-form samplers (bit-gated) plus the
    // inverse-CDF table lane (timed only — different draws, same law).
    for (const auto* law : {weibull.get(), lognormal.get()}) {
      Lane lane;
      lane.law = law->describe();
      const auto closed = law->distribution(mtbf);
      const auto table_dist = law->sampling_distribution(mtbf);
      const auto ref = mlck::sim::reference::run_trials_with_distribution(
          sys, plan, *closed, n, seed, sim_options, &pool);
      const auto batch = mlck::sim::run_trials_with_distribution(
          sys, plan, *closed, n, seed, sim_options, &pool);
      lane.bit_identical = same_stats(ref, batch);
      lane.reference_seconds = time_best(repeats, [&] {
        mlck::sim::reference::run_trials_with_distribution(
            sys, plan, *closed, n, seed, sim_options, &pool);
      });
      lane.batch_seconds = time_best(repeats, [&] {
        mlck::sim::run_trials_with_distribution(sys, plan, *closed, n, seed,
                                                sim_options, &pool);
      });
      lane.tabulated_seconds = time_best(repeats, [&] {
        mlck::sim::run_trials_with_distribution(
            sys, plan, *table_dist, n, seed, sim_options, &pool);
      });
      best_nonexponential =
          std::max({best_nonexponential, lane.speedup(),
                    lane.tabulated_speedup()});
      lanes.push_back(lane);
    }

    for (const Lane& lane : lanes) {
      if (!lane.bit_identical) {
        all_identical = false;
        std::cerr << "FATAL: batch engine diverges from reference on "
                  << name << " under " << lane.law << "\n";
      }
      table.add_row(
          {name, lane.law, mlck::util::Table::num(lane.reference_seconds, 4),
           mlck::util::Table::num(lane.batch_seconds, 4),
           lane.tabulated_seconds > 0.0
               ? mlck::util::Table::num(lane.tabulated_seconds, 4)
               : "-",
           mlck::util::Table::num(lane.speedup(), 2) + "x",
           lane.tabulated_seconds > 0.0
               ? mlck::util::Table::num(lane.tabulated_speedup(), 2) + "x"
               : "-",
           lane.bit_identical ? "yes" : "NO"});

      Json::Object row;
      row["system"] = name;
      row["law"] = lane.law;
      row["trials"] = static_cast<double>(n);
      row["reference_seconds"] = lane.reference_seconds;
      row["batch_seconds"] = lane.batch_seconds;
      row["reference_trials_per_sec"] =
          static_cast<double>(n) / lane.reference_seconds;
      row["batch_trials_per_sec"] =
          static_cast<double>(n) / lane.batch_seconds;
      row["speedup"] = lane.speedup();
      if (lane.tabulated_seconds > 0.0) {
        row["tabulated_seconds"] = lane.tabulated_seconds;
        row["tabulated_trials_per_sec"] =
            static_cast<double>(n) / lane.tabulated_seconds;
        row["tabulated_speedup"] = lane.tabulated_speedup();
      }
      row["bit_identical"] = lane.bit_identical;
      systems_json.emplace_back(std::move(row));
    }
  }

  Json::Object doc;
  doc["benchmark"] = "simulation_engine_batch_vs_reference";
  doc["trials"] = trials;
  doc["repeats"] = repeats;
  doc["threads"] = threads;
  doc["smoke"] = smoke;
  doc["systems"] = std::move(systems_json);
  doc["max_exponential_speedup"] = best_exponential;
  doc["max_nonexponential_speedup"] = best_nonexponential;
  doc["meets_2x_exponential"] = best_exponential >= 2.0;
  doc["meets_5x_nonexponential"] = best_nonexponential >= 5.0;
  doc["bit_identical"] = all_identical;
  mlck::core::write_file(out, Json(std::move(doc)).dump(2) + "\n");

  if (registry != nullptr && !metrics_path.empty()) {
    std::ofstream sidecar(metrics_path);
    sidecar << registry->to_json().dump(2) << "\n";
    std::cerr << "[mlck] wrote metrics sidecar " << metrics_path << "\n";
  }

  std::cout << "Simulation benchmark: batch engine vs frozen reference "
               "engine (identical run_trials output, == on every field)\n";
  table.print(std::cout);
  std::cout << "\nwrote " << out << "\n";
  if (!all_identical) return 1;
  return best_exponential > 1.0 && best_nonexponential > 1.0 ? 0 : 3;
}

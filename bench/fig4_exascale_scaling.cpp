// Reproduces paper Figure 4: a 1440-minute application on the four-level
// system B scaled to exascale-like conditions — system MTBF in
// {26, 20, 15, 9, 3} minutes crossed with PFS checkpoint/restart costs in
// {10, 20, 30, 40} minutes (sections a-d) — optimized by Dauwe, Di, and
// Moody.
#include <iostream>

#include "bench_common.h"
#include "exp/report.h"
#include "models/registry.h"
#include "systems/scaling.h"

int main(int argc, char** argv) {
  const mlck::util::Cli cli(argc, argv);
  mlck::bench::BenchConfig cfg(cli, /*default_trials=*/200);
  const double base_time = cli.get_double("base-time", 1440.0);
  mlck::bench::reject_unknown_flags(cli);

  const auto techniques = mlck::models::multilevel_techniques();
  const auto grid = mlck::exp::scaled_b_grid(
      base_time, mlck::systems::figure4_pfs_cost_grid());

  std::vector<mlck::exp::ScenarioResult> rows;
  for (const auto& sc : grid) {
    mlck::bench::progress("figure 4: " + sc.label);
    std::unique_ptr<const mlck::math::FailureDistribution> law;
    rows.push_back(
        mlck::exp::run_scenario(sc.system, sc.label, techniques,
                                cfg.options_for(sc.system, law)));
  }

  mlck::exp::print_efficiency_table(
      std::cout,
      "Figure 4: " + std::to_string(static_cast<int>(base_time)) +
          "-minute application at exascale-like difficulty (" +
          std::to_string(cfg.options.trials) + " trials per bar)",
      rows);

  cfg.emit_efficiency_plot(rows, "Figure 4");

  if (cfg.csv) {
    std::cout << "\n";
    mlck::exp::write_efficiency_csv(std::cout, rows);
  }
  return 0;
}

// Extension experiment generalizing paper Sec. IV-F: instead of deciding
// once per run whether the top level is worth using, the adaptive
// schedule stops taking a level's checkpoints when the *remaining* work
// drops below that level's break-even horizon (its Young interval). The
// driver compares, across application lengths, the static Dauwe-optimized
// plan against its adaptive wrapper.
#include <iostream>

#include "bench_common.h"
#include "core/adaptive.h"
#include "core/technique.h"
#include "sim/trial_runner.h"
#include "systems/scaling.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const mlck::util::Cli cli(argc, argv);
  mlck::bench::BenchConfig cfg(cli, /*default_trials=*/400);
  const double mtbf = cli.get_double("mtbf", 15.0);
  const double pfs = cli.get_double("pfs", 20.0);
  mlck::bench::reject_unknown_flags(cli);

  using mlck::util::Table;
  const mlck::core::DauweTechnique technique;

  std::cout << "Extension: horizon-aware adaptive scheduling on scaled "
               "system B (MTBF "
            << mtbf << "m, PFS " << pfs << "m)\n";
  Table table({"T_B (min)", "static plan", "static eff", "sd",
               "adaptive eff", "sd", "gain"});
  for (const double base_time : {30.0, 60.0, 120.0, 240.0, 480.0, 1440.0}) {
    const auto sys = mlck::systems::scaled_system_b(mtbf, pfs, base_time);
    mlck::bench::progress("ablation adaptive: T_B=" +
                          std::to_string(static_cast<int>(base_time)));
    const auto selected = technique.select_plan(sys, cfg.options.pool);
    const auto adaptive = mlck::core::make_adaptive(sys, selected.plan);
    const auto static_stats =
        mlck::sim::run_trials(sys, selected.plan, cfg.options.trials,
                              cfg.options.seed, cfg.options.sim,
                              cfg.options.pool);
    const auto adaptive_stats =
        mlck::sim::run_trials(sys, adaptive, cfg.options.trials,
                              cfg.options.seed, cfg.options.sim,
                              cfg.options.pool);
    table.add_row(
        {Table::num(base_time, 0), selected.plan.to_string(),
         Table::pct(static_stats.efficiency.mean),
         Table::pct(static_stats.efficiency.stddev),
         Table::pct(adaptive_stats.efficiency.mean),
         Table::pct(adaptive_stats.efficiency.stddev),
         Table::pct(adaptive_stats.efficiency.mean -
                        static_stats.efficiency.mean, 2)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: where the static optimizer already drops "
               "the PFS level (short runs) the adaptive rule adds little; "
               "the gain peaks at the first length that brings the PFS "
               "level back (its expensive tail checkpoints get trimmed) "
               "and fades as the run grows and the tail becomes a "
               "vanishing fraction of it.\n";
  return 0;
}

// Reproduces paper Figure 3: how application wall-clock time splits
// across baseline execution, successful/failed checkpoints,
// successful/failed restarts, and recomputation, for the three best
// techniques on the Table I systems.
#include <iostream>

#include "bench_common.h"
#include "exp/report.h"
#include "models/registry.h"
#include "systems/test_systems.h"

int main(int argc, char** argv) {
  const mlck::util::Cli cli(argc, argv);
  mlck::bench::BenchConfig cfg(cli, /*default_trials=*/200);
  mlck::bench::reject_unknown_flags(cli);

  const auto techniques = mlck::models::multilevel_techniques();
  std::vector<mlck::exp::ScenarioResult> rows;
  for (const auto& sys : mlck::systems::table1_systems()) {
    mlck::bench::progress("figure 3: system " + sys.name);
    std::unique_ptr<const mlck::math::FailureDistribution> law;
    rows.push_back(mlck::exp::run_scenario(sys, sys.name, techniques,
                                           cfg.options_for(sys, law)));
  }

  mlck::exp::print_breakdown_table(
      std::cout,
      "Figure 3: time breakdown per technique and test system (" +
          std::to_string(cfg.options.trials) + " trials each)",
      rows);
  return 0;
}

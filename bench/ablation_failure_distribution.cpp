// Extension ablation: how robust is the exponential failure assumption —
// shared by every model the paper compares — when reality is not
// exponential? The same Dauwe-selected plans are simulated under renewal
// failure processes with identical MTBF but different inter-arrival laws:
// exponential (the modeling assumption), bursty Weibull (shape 0.7, the
// regime reported for production HPC logs), mild Weibull (shape 1.5), and
// log-normal. Each law is a declarative engine::DistributionSpec, so the
// whole study is four scenario variants per system.
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "systems/test_systems.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const mlck::util::Cli cli(argc, argv);
  mlck::bench::BenchConfig cfg(cli, /*default_trials=*/200);
  mlck::bench::reject_unknown_flags(cli);

  using mlck::engine::DistributionSpec;
  using mlck::util::Table;

  DistributionSpec exponential;
  DistributionSpec weibull_07;
  weibull_07.kind = DistributionSpec::Kind::kWeibull;
  weibull_07.shape = 0.7;
  DistributionSpec weibull_15;
  weibull_15.kind = DistributionSpec::Kind::kWeibull;
  weibull_15.shape = 1.5;
  DistributionSpec lognormal;
  lognormal.kind = DistributionSpec::Kind::kLogNormal;
  lognormal.sigma = 1.0;

  Table table({"system", "distribution", "sim eff", "sd", "pred eff",
               "pred err"});
  for (const char* name : {"D1", "D3", "D5", "D7", "D8"}) {
    mlck::bench::progress("ablation failure-distribution: " +
                          std::string(name));
    mlck::engine::ScenarioSpec scenario = cfg.spec;
    scenario.system = mlck::systems::table1_system(name);
    scenario.system_ref = name;

    // One plan per system (selected under the exponential model), then
    // re-simulated under each law with the same seed.
    const auto selected =
        scenario.make_engine().optimize(scenario.optimizer, cfg.pool.get());

    // All four laws — including the exponential control — run through the
    // same renewal-source machinery so the rows differ only in the law.
    for (const DistributionSpec& law :
         {exponential, weibull_07, weibull_15, lognormal}) {
      scenario.distribution = law;
      const auto dist = law.make(scenario.system);
      const auto stats = mlck::sim::run_trials_with_distribution(
          scenario.system, selected.plan, *dist, scenario.trials,
          scenario.seed, scenario.sim, cfg.pool.get());
      table.add_row({name, dist->describe(),
                     Table::pct(stats.efficiency.mean),
                     Table::pct(stats.efficiency.stddev),
                     Table::pct(selected.efficiency),
                     Table::pct(selected.efficiency -
                                    stats.efficiency.mean, 2)});
    }
  }
  std::cout << "Ablation (extension): sensitivity of the exponential "
               "failure assumption, Dauwe-selected plans\n";
  table.print(std::cout);
  std::cout << "\nExpected shape: the exponential rows track the model "
               "prediction; same-mean non-exponential laws move the "
               "realized efficiency away from it (bursty Weibull slightly "
               "up — failure clusters re-lose already-lost work while the "
               "long gaps between bursts run clean; log-normal similarly). "
               "The exponential assumption is a real model limitation, but "
               "a conservative one on these systems.\n";
  return 0;
}

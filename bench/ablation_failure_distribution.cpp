// Extension ablation: how robust is the exponential failure assumption —
// shared by every model the paper compares — when reality is not
// exponential? The same Dauwe-selected plans are simulated under renewal
// failure processes with identical MTBF but different inter-arrival laws:
// exponential (the modeling assumption), bursty Weibull (shape 0.7, the
// regime reported for production HPC logs), mild Weibull (shape 1.5), and
// log-normal.
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "core/technique.h"
#include "math/distribution.h"
#include "sim/trial_runner.h"
#include "systems/test_systems.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const mlck::util::Cli cli(argc, argv);
  mlck::bench::BenchConfig cfg(cli, /*default_trials=*/200);
  mlck::bench::reject_unknown_flags(cli);

  using mlck::util::Table;
  const mlck::core::DauweTechnique technique;

  Table table({"system", "distribution", "sim eff", "sd", "pred eff",
               "pred err"});
  for (const char* name : {"D1", "D3", "D5", "D7", "D8"}) {
    const auto sys = mlck::systems::table1_system(name);
    mlck::bench::progress("ablation failure-distribution: " +
                          std::string(name));
    const auto selected = technique.select_plan(sys, cfg.options.pool);

    const mlck::math::Exponential expo(sys.lambda_total());
    const auto weibull_07 = mlck::math::Weibull::with_mean(sys.mtbf, 0.7);
    const auto weibull_15 = mlck::math::Weibull::with_mean(sys.mtbf, 1.5);
    const auto lognormal = mlck::math::LogNormal::with_mean(sys.mtbf, 1.0);
    const mlck::math::FailureDistribution* laws[] = {&expo, &weibull_07,
                                                     &weibull_15, &lognormal};
    for (const auto* law : laws) {
      const auto stats = mlck::sim::run_trials_with_distribution(
          sys, selected.plan, *law, cfg.options.trials, cfg.options.seed,
          cfg.options.sim, cfg.options.pool);
      table.add_row({name, law->describe(),
                     Table::pct(stats.efficiency.mean),
                     Table::pct(stats.efficiency.stddev),
                     Table::pct(selected.predicted_efficiency),
                     Table::pct(selected.predicted_efficiency -
                                    stats.efficiency.mean, 2)});
    }
  }
  std::cout << "Ablation (extension): sensitivity of the exponential "
               "failure assumption, Dauwe-selected plans\n";
  table.print(std::cout);
  std::cout << "\nExpected shape: the exponential rows track the model "
               "prediction; same-mean non-exponential laws move the "
               "realized efficiency away from it (bursty Weibull slightly "
               "up — failure clusters re-lose already-lost work while the "
               "long gaps between bursts run clean; log-normal similarly). "
               "The exponential assumption is a real model limitation, but "
               "a conservative one on these systems.\n";
  return 0;
}

// Reproduces paper Figure 5: a *30-minute* application on the scaled
// system B (PFS cost 10 and 20 minutes), 400 trials per bar. Dauwe and Di
// account for the application's base time and drop the expensive PFS
// checkpoints; Moody cannot. The driver also reports the Welch test
// behind the paper's "significant at 95% confidence" claim.
#include <iostream>

#include "bench_common.h"
#include "exp/report.h"
#include "models/registry.h"
#include "stats/hypothesis.h"
#include "systems/scaling.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const mlck::util::Cli cli(argc, argv);
  mlck::bench::BenchConfig cfg(cli, /*default_trials=*/400);
  const double base_time = cli.get_double("base-time", 30.0);
  mlck::bench::reject_unknown_flags(cli);

  const auto techniques = mlck::models::multilevel_techniques();
  const auto grid = mlck::exp::scaled_b_grid(
      base_time, mlck::systems::figure5_pfs_cost_grid());

  std::vector<mlck::exp::ScenarioResult> rows;
  for (const auto& sc : grid) {
    mlck::bench::progress("figure 5: " + sc.label);
    std::unique_ptr<const mlck::math::FailureDistribution> law;
    rows.push_back(mlck::exp::run_scenario(sc.system, sc.label, techniques,
                                           cfg.options_for(sc.system, law)));
  }

  mlck::exp::print_efficiency_table(
      std::cout,
      "Figure 5: " + std::to_string(static_cast<int>(base_time)) +
          "-minute application (" + std::to_string(cfg.options.trials) +
          " trials per bar)",
      rows);

  std::cout << "\nLevel selection and Dauwe-vs-Moody significance\n";
  mlck::util::Table detail({"scenario", "Dauwe top level", "Moody top level",
                            "eff. gain", "Welch z", "p (2-sided)",
                            "significant@95%"});
  for (const auto& row : rows) {
    const auto& dauwe = row.outcome("Dauwe et al.");
    const auto& moody = row.outcome("Moody et al.");
    const auto welch = mlck::stats::welch_test(dauwe.sim.efficiency,
                                               moody.sim.efficiency);
    detail.add_row(
        {row.label, std::to_string(dauwe.plan.top_system_level() + 1),
         std::to_string(moody.plan.top_system_level() + 1),
         mlck::util::Table::pct(dauwe.sim.efficiency.mean -
                                moody.sim.efficiency.mean),
         mlck::util::Table::num(welch.statistic, 2),
         mlck::util::Table::num(welch.p_two_sided, 4),
         welch.significant() ? "yes" : "no"});
  }
  detail.print(std::cout);

  cfg.emit_efficiency_plot(rows, "Figure 5");

  if (cfg.csv) {
    std::cout << "\n";
    mlck::exp::write_efficiency_csv(std::cout, rows);
  }
  return 0;
}

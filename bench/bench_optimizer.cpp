// Optimizer sweep kernel trajectory, three tiers over the same search:
//
//   cached  — the PR-1 baseline: per-(system, level-subset) DauweKernel
//             behind a per-subset cost std::function, the full Eqns. 4-14
//             recursion per enumerated plan.
//   staged  — the PR-3 prefix-incremental cursor (lane_batch and prune
//             off): a leaf only pays for the top stage and the scratch
//             wrap. Structurally identical search, exact-equal results
//             including the evaluation count.
//   pruned  — the lane-batched sweep with admissible subtree pruning
//             (8 tau0 lanes per task + the Benoit-style lower bound
//             against a per-subset incumbent). Same winner bit for bit;
//             far fewer evaluated leaves. The sweep itself is not
//             bit-identical, so the check here is winner equality plus
//             the lattice accounting identity
//             coarse_evaluations + pruned_feasibility + pruned_bound
//             == tau_points x ladder^dims summed over level subsets,
//             which must agree with the unpruned tiers' lattice.
//
// Writes BENCH_optimizer.json (deterministic key order via util::Json) so
// the speedups and the bit_identical flag are tracked artifacts. --smoke
// shrinks the tau grid for CI; --metrics=file.json writes the engine /
// optimizer / pool counter sidecar (docs/OBSERVABILITY.md).
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/optimizer.h"
#include "core/serialize.h"
#include "engine/evaluation.h"
#include "engine/scenario.h"
#include "obs/registry.h"
#include "systems/test_systems.h"
#include "util/cli.h"
#include "util/json.h"
#include "util/table.h"

namespace {

using mlck::util::Json;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Best-of-repeats wall time of one optimizer run.
template <typename Fn>
double time_best(int repeats, const Fn& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    best = std::min(best, seconds_since(start));
  }
  return best;
}

/// The winner contract every tier must honor: identical plan, expected
/// time, and efficiency. Evaluation counts are deliberately excluded —
/// the pruned tier evaluates fewer leaves by design.
bool same_winner(const mlck::core::OptimizationResult& a,
                 const mlck::core::OptimizationResult& b) {
  return a.plan.tau0 == b.plan.tau0 && a.plan.counts == b.plan.counts &&
         a.plan.levels == b.plan.levels &&
         a.expected_time == b.expected_time && a.efficiency == b.efficiency;
}

/// The stricter PR-3 contract between the structurally-identical tiers.
bool exact_match(const mlck::core::OptimizationResult& a,
                 const mlck::core::OptimizationResult& b) {
  return same_winner(a, b) && a.evaluations == b.evaluations;
}

/// Coarse lattice size the accounting identity must tile: tau points x
/// ladder^dims, summed over the level subsets the default search visits
/// (full hierarchy plus each skipped suffix).
std::size_t lattice_size(const mlck::systems::SystemConfig& sys,
                         const mlck::core::OptimizerOptions& opts) {
  const std::size_t rungs =
      mlck::core::count_ladder(opts.max_count).size();
  std::size_t lattice = 0;
  for (int dims = 0; dims < sys.levels(); ++dims) {
    std::size_t leaves = 1;
    for (int d = 0; d < dims; ++d) leaves *= rungs;
    lattice += static_cast<std::size_t>(opts.coarse_tau_points) * leaves;
  }
  return lattice;
}

std::size_t accounted(const mlck::core::OptimizationResult& r) {
  return r.coarse_evaluations + r.pruned_feasibility + r.pruned_bound;
}

}  // namespace

int main(int argc, char** argv) {
  const mlck::util::Cli cli(argc, argv);
  const bool smoke = cli.get_bool("smoke", false);
  const int repeats = cli.get_int("repeats", smoke ? 1 : 5);
  const std::string out = cli.get_string("out", "BENCH_optimizer.json");
  const std::string metrics_path = cli.get_string("metrics", "");
  const int threads = cli.get_int("threads", 0);
  mlck::bench::reject_unknown_flags(cli);
  mlck::util::ThreadPool pool(
      static_cast<std::size_t>(std::max(threads, 0)));

  std::unique_ptr<mlck::obs::MetricsRegistry> registry;
  std::unique_ptr<mlck::engine::ScenarioMetrics> wiring;
  if (!metrics_path.empty()) {
    registry = std::make_unique<mlck::obs::MetricsRegistry>();
    wiring = std::make_unique<mlck::engine::ScenarioMetrics>(*registry);
    pool.attach_metrics(mlck::engine::pool_metrics(*registry));
  }

  mlck::core::OptimizerOptions base;
  if (smoke) base.coarse_tau_points = 24;  // CI-sized grid, same code paths
  if (wiring != nullptr) base.metrics = &wiring->optimizer;

  // PR-3 tier: the same staged cursor, but no lane batching and no
  // bound pruning — structurally identical to the cached sweep.
  mlck::core::OptimizerOptions staged_opts = base;
  staged_opts.lane_batch = false;
  staged_opts.prune = false;
  // This PR's tier: 8-lane batched walk + admissible subtree pruning.
  const mlck::core::OptimizerOptions& pruned_opts = base;

  mlck::util::Table table({"system", "evals", "pruned evals", "cached s",
                           "staged s", "pruned s", "staged x", "total x",
                           "identical"});
  Json::Array systems_json;
  double worst_staged = std::numeric_limits<double>::infinity();
  double worst_total = std::numeric_limits<double>::infinity();
  bool all_identical = true;
  bool all_accounted = true;

  for (const char* name : {"B", "M", "D1", "D3", "D5", "D7", "D9"}) {
    mlck::bench::progress("bench optimizer: " + std::string(name));
    const auto sys = mlck::systems::table1_system(name);
    mlck::engine::EvaluationEngine engine(sys);
    if (wiring != nullptr) engine.attach_metrics(wiring->engine);

    // The PR-1 baseline: the same cached per-subset kernels, evaluated
    // one whole plan at a time behind a cost std::function (exactly what
    // EvaluationEngine::optimize compiled to before the staged sweep).
    const auto cached_factory =
        [&engine](const std::vector<int>& levels) -> mlck::core::PlanCostFn {
      const mlck::engine::EvaluationContext& ctx = engine.context(levels);
      return [&ctx](const mlck::core::CheckpointPlan& plan) {
        return ctx.kernel.expected_time(plan.tau0, plan.counts);
      };
    };

    // One untimed run per tier: warms the context cache and code/data
    // paths, and supplies the results for the equality checks.
    const auto cached = mlck::core::optimize_intervals_with(
        cached_factory, sys, base, &pool);
    const auto staged = engine.optimize(staged_opts, &pool);
    const auto pruned = engine.optimize(pruned_opts, &pool);

    bool bit_identical = true;
    if (!exact_match(cached, staged)) {
      bit_identical = false;
      std::cerr << "FATAL: staged sweep diverges from per-plan path on "
                << name << "\n";
    }
    if (!same_winner(cached, pruned)) {
      bit_identical = false;
      std::cerr << "FATAL: pruned sweep selects a different winner on "
                << name << "\n";
    }
    all_identical = all_identical && bit_identical;

    const std::size_t lattice = lattice_size(sys, base);
    const bool accounting_ok = accounted(cached) == lattice &&
                               accounted(staged) == lattice &&
                               accounted(pruned) == lattice;
    if (!accounting_ok) {
      all_accounted = false;
      std::cerr << "FATAL: lattice accounting broken on " << name
                << ": lattice " << lattice << " cached "
                << accounted(cached) << " staged " << accounted(staged)
                << " pruned " << accounted(pruned) << "\n";
    }

    const double cached_s = time_best(repeats, [&] {
      mlck::core::optimize_intervals_with(cached_factory, sys, base, &pool);
    });
    const double staged_s =
        time_best(repeats, [&] { engine.optimize(staged_opts, &pool); });
    const double pruned_s =
        time_best(repeats, [&] { engine.optimize(pruned_opts, &pool); });

    const auto evals = static_cast<double>(cached.evaluations);
    const double staged_speedup = cached_s / staged_s;
    const double total_speedup = cached_s / pruned_s;
    worst_staged = std::min(worst_staged, staged_speedup);
    worst_total = std::min(worst_total, total_speedup);
    table.add_row({name, std::to_string(cached.evaluations),
                   std::to_string(pruned.evaluations),
                   mlck::util::Table::num(cached_s, 4),
                   mlck::util::Table::num(staged_s, 4),
                   mlck::util::Table::num(pruned_s, 4),
                   mlck::util::Table::num(staged_speedup, 2) + "x",
                   mlck::util::Table::num(total_speedup, 2) + "x",
                   bit_identical && accounting_ok ? "yes" : "NO"});

    Json::Object row;
    row["system"] = name;
    row["levels"] = sys.levels();
    row["evaluations"] = evals;
    row["pruned_evaluations"] = static_cast<double>(pruned.evaluations);
    row["pruned_feasibility"] =
        static_cast<double>(pruned.pruned_feasibility);
    row["pruned_bound"] = static_cast<double>(pruned.pruned_bound);
    row["lattice"] = static_cast<double>(lattice);
    row["cached_seconds"] = cached_s;
    row["staged_seconds"] = staged_s;
    row["pruned_seconds"] = pruned_s;
    row["cached_evals_per_sec"] = evals / cached_s;
    row["staged_evals_per_sec"] = evals / staged_s;
    row["staged_speedup"] = staged_speedup;
    row["total_speedup"] = total_speedup;
    row["bit_identical"] = bit_identical;
    row["accounting_ok"] = accounting_ok;
    systems_json.emplace_back(std::move(row));
  }

  Json::Object doc;
  doc["benchmark"] = "optimizer_sweep_tiers_cached_staged_pruned";
  doc["optimizer"] = smoke ? "optimize_intervals, coarse_tau_points=24"
                           : "optimize_intervals default options";
  doc["repeats"] = repeats;
  doc["threads"] = threads;
  doc["smoke"] = smoke;
  doc["systems"] = std::move(systems_json);
  doc["min_staged_speedup"] = worst_staged;
  doc["min_speedup"] = worst_total;
  doc["bit_identical"] = all_identical;
  doc["accounting_ok"] = all_accounted;
  mlck::core::write_file(out, Json(std::move(doc)).dump(2) + "\n");

  if (registry != nullptr && !metrics_path.empty()) {
    std::ofstream sidecar(metrics_path);
    sidecar << registry->to_json().dump(2) << "\n";
    std::cerr << "[mlck] wrote metrics sidecar " << metrics_path << "\n";
  }

  std::cout << "Optimizer benchmark: cached per-plan vs staged cursor vs "
               "lane-batched pruned sweep (identical winner, accounted "
               "lattice)\n";
  table.print(std::cout);
  std::cout << "\nwrote " << out << "\n";
  if (!all_identical || !all_accounted) return 1;
  return worst_total > 1.0 ? 0 : 3;
}

// Optimizer sweep kernel: prefix-incremental staged cursor vs the PR-1
// cached-evaluator path. Both paths reuse the per-(system, level-subset)
// DauweKernel; the cached path still runs the full Eqns. 4-14 recursion
// per enumerated plan through a per-subset cost std::function, while the
// staged path keeps a cursor over the count prefix so a leaf only pays
// for the top stage and the scratch wrap. The search itself (grid,
// ladder, pruning, refinement, tie-breaking) is shared code, so the
// result check below is exact equality — identical plan, expected time,
// and evaluation count — not a tolerance.
//
// Writes BENCH_optimizer.json (deterministic key order via util::Json) so
// the speedup and the bit_identical flag are tracked artifacts. --smoke
// shrinks the tau grid for CI; --metrics=file.json writes the engine /
// optimizer / pool counter sidecar (docs/OBSERVABILITY.md).
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/optimizer.h"
#include "core/serialize.h"
#include "engine/evaluation.h"
#include "engine/scenario.h"
#include "obs/registry.h"
#include "systems/test_systems.h"
#include "util/cli.h"
#include "util/json.h"
#include "util/table.h"

namespace {

using mlck::util::Json;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Best-of-repeats wall time of one optimizer run.
template <typename Fn>
double time_best(int repeats, const Fn& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    best = std::min(best, seconds_since(start));
  }
  return best;
}

bool identical(const mlck::core::OptimizationResult& a,
               const mlck::core::OptimizationResult& b) {
  return a.plan.tau0 == b.plan.tau0 && a.plan.counts == b.plan.counts &&
         a.plan.levels == b.plan.levels &&
         a.expected_time == b.expected_time &&
         a.evaluations == b.evaluations;
}

}  // namespace

int main(int argc, char** argv) {
  const mlck::util::Cli cli(argc, argv);
  const bool smoke = cli.get_bool("smoke", false);
  const int repeats = cli.get_int("repeats", smoke ? 1 : 5);
  const std::string out = cli.get_string("out", "BENCH_optimizer.json");
  const std::string metrics_path = cli.get_string("metrics", "");
  const int threads = cli.get_int("threads", 0);
  mlck::bench::reject_unknown_flags(cli);
  mlck::util::ThreadPool pool(
      static_cast<std::size_t>(std::max(threads, 0)));

  std::unique_ptr<mlck::obs::MetricsRegistry> registry;
  std::unique_ptr<mlck::engine::ScenarioMetrics> wiring;
  if (!metrics_path.empty()) {
    registry = std::make_unique<mlck::obs::MetricsRegistry>();
    wiring = std::make_unique<mlck::engine::ScenarioMetrics>(*registry);
    pool.attach_metrics(mlck::engine::pool_metrics(*registry));
  }

  mlck::core::OptimizerOptions opts;
  if (smoke) opts.coarse_tau_points = 24;  // CI-sized grid, same code paths
  if (wiring != nullptr) opts.metrics = &wiring->optimizer;

  mlck::util::Table table({"system", "evals", "cached s", "staged s",
                           "cached evals/s", "staged evals/s", "speedup",
                           "identical"});
  Json::Array systems_json;
  double worst_speedup = std::numeric_limits<double>::infinity();
  bool all_identical = true;

  for (const char* name : {"B", "M", "D5", "D9"}) {
    mlck::bench::progress("bench optimizer: " + std::string(name));
    const auto sys = mlck::systems::table1_system(name);
    mlck::engine::EvaluationEngine engine(sys);
    if (wiring != nullptr) engine.attach_metrics(wiring->engine);

    // The PR-1 baseline: the same cached per-subset kernels, evaluated
    // one whole plan at a time behind a cost std::function (exactly what
    // EvaluationEngine::optimize compiled to before the staged sweep).
    const auto cached_factory =
        [&engine](const std::vector<int>& levels) -> mlck::core::PlanCostFn {
      const mlck::engine::EvaluationContext& ctx = engine.context(levels);
      return [&ctx](const mlck::core::CheckpointPlan& plan) {
        return ctx.kernel.expected_time(plan.tau0, plan.counts);
      };
    };

    // One untimed run each: warms the context cache and code/data paths,
    // and supplies the results for the exact-equality check.
    const auto cached = mlck::core::optimize_intervals_with(
        cached_factory, sys, opts, &pool);
    const auto staged = engine.optimize(opts, &pool);
    const bool bit_identical = identical(cached, staged);
    if (!bit_identical) {
      all_identical = false;
      std::cerr << "FATAL: staged sweep diverges from per-plan path on "
                << name << "\n";
    }

    const double cached_s = time_best(repeats, [&] {
      mlck::core::optimize_intervals_with(cached_factory, sys, opts, &pool);
    });
    const double staged_s =
        time_best(repeats, [&] { engine.optimize(opts, &pool); });

    const auto evals = static_cast<double>(cached.evaluations);
    const double speedup = cached_s / staged_s;
    worst_speedup = std::min(worst_speedup, speedup);
    table.add_row({name, std::to_string(cached.evaluations),
                   mlck::util::Table::num(cached_s, 4),
                   mlck::util::Table::num(staged_s, 4),
                   mlck::util::Table::num(evals / cached_s, 0),
                   mlck::util::Table::num(evals / staged_s, 0),
                   mlck::util::Table::num(speedup, 2) + "x",
                   bit_identical ? "yes" : "NO"});

    Json::Object row;
    row["system"] = name;
    row["levels"] = sys.levels();
    row["evaluations"] = evals;
    row["cached_seconds"] = cached_s;
    row["staged_seconds"] = staged_s;
    row["cached_evals_per_sec"] = evals / cached_s;
    row["staged_evals_per_sec"] = evals / staged_s;
    row["speedup"] = speedup;
    row["bit_identical"] = bit_identical;
    systems_json.emplace_back(std::move(row));
  }

  Json::Object doc;
  doc["benchmark"] = "optimizer_staged_cursor_vs_cached_per_plan";
  doc["optimizer"] = smoke ? "optimize_intervals, coarse_tau_points=24"
                           : "optimize_intervals default options";
  doc["repeats"] = repeats;
  doc["threads"] = threads;
  doc["smoke"] = smoke;
  doc["systems"] = std::move(systems_json);
  doc["min_speedup"] = worst_speedup;
  doc["bit_identical"] = all_identical;
  mlck::core::write_file(out, Json(std::move(doc)).dump(2) + "\n");

  if (registry != nullptr && !metrics_path.empty()) {
    std::ofstream sidecar(metrics_path);
    sidecar << registry->to_json().dump(2) << "\n";
    std::cerr << "[mlck] wrote metrics sidecar " << metrics_path << "\n";
  }

  std::cout << "Optimizer benchmark: prefix-incremental staged cursor vs "
               "cached per-plan evaluation (identical search, exact-equal "
               "results)\n";
  table.print(std::cout);
  std::cout << "\nwrote " << out << "\n";
  if (!all_identical) return 1;
  return worst_speedup > 1.0 ? 0 : 3;
}

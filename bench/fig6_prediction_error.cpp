// Reproduces paper Figure 6: prediction error (each model's predicted
// efficiency minus the simulated efficiency) for the twenty Figure 4
// scenarios, sorted by increasing magnitude of the Moody et al. error.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "exp/report.h"
#include "models/registry.h"
#include "systems/scaling.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const mlck::util::Cli cli(argc, argv);
  mlck::bench::BenchConfig cfg(cli, /*default_trials=*/200);
  mlck::bench::reject_unknown_flags(cli);

  const auto techniques = mlck::models::multilevel_techniques();
  const auto grid = mlck::exp::scaled_b_grid(
      1440.0, mlck::systems::figure4_pfs_cost_grid());

  std::vector<mlck::exp::ScenarioResult> rows;
  for (const auto& sc : grid) {
    mlck::bench::progress("figure 6: " + sc.label);
    std::unique_ptr<const mlck::math::FailureDistribution> law;
    rows.push_back(mlck::exp::run_scenario(sc.system, sc.label, techniques,
                                           cfg.options_for(sc.system, law)));
  }

  mlck::exp::print_prediction_error_table(
      std::cout,
      "Figure 6: prediction error (predicted - simulated efficiency) for "
      "the 20 Figure 4 scenarios, sorted by |Moody error|",
      rows, "Moody et al.");

  if (!cfg.plot_prefix.empty() && !rows.empty()) {
    std::vector<std::string> names;
    for (const auto& o : rows.front().outcomes) names.push_back(o.technique);
    std::ofstream dat(cfg.plot_prefix + ".dat");
    mlck::exp::write_prediction_error_dat(dat, rows, "Moody et al.");
    std::ofstream gp(cfg.plot_prefix + ".gp");
    mlck::exp::write_prediction_error_gp(gp, cfg.plot_prefix + ".dat",
                                         "Figure 6", names,
                                         cfg.plot_prefix + ".png");
  }

  // Summary statistics in the shape of the paper's Sec. IV-G discussion.
  double moody_min = 0.0, di_max = 0.0, dauwe_worst = 0.0;
  for (const auto& row : rows) {
    moody_min = std::min(moody_min,
                         row.outcome("Moody et al.").prediction_error());
    di_max = std::max(di_max, row.outcome("Di et al.").prediction_error());
    dauwe_worst = std::max(
        dauwe_worst,
        std::abs(row.outcome("Dauwe et al.").prediction_error()));
  }
  std::cout << "\nMoody et al. worst under-estimate: "
            << mlck::util::Table::pct(moody_min, 2)
            << "\nDi et al. worst over-estimate:     "
            << mlck::util::Table::pct(di_max, 2)
            << "\nDauwe et al. worst |error|:        "
            << mlck::util::Table::pct(dauwe_worst, 2) << "\n";
  return 0;
}

// mlckd serving benchmark: N concurrent thin clients drive an in-process
// advisory daemon over its Unix socket with a mixed request stream
// (optimize / predict / scenario across the Table I systems and all
// three failure laws), in two phases:
//
//   cold — every distinct request computed for the first time (optimizer
//          runs dominate; duplicates coalesce);
//   warm — sustained passes over the same mix against a full plan cache
//          (protocol + cache round-trips dominate).
//
// Latencies are measured client-side around each call, so they include
// admission, queueing, and the wire; the same distribution is visible
// server-side through the serve.request_latency_ns histogram.
//
// Two gates, mirroring the daemon's contract tests:
//   * identity — every response (cold, coalesced, or warm) must be
//     byte-identical to the direct serve::evaluate path; exit 1.
//   * liveness — after the storm a fresh client's ping must answer and
//     the daemon must drain cleanly; exit 4.
// Throughput (QPS, p50/p99) is reported but never gating.
//
// Writes BENCH_serve.json. --smoke shrinks clients and passes for CI.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/serialize.h"
#include "obs/registry.h"
#include "serve/client.h"
#include "serve/request.h"
#include "serve/server.h"
#include "util/cli.h"
#include "util/json.h"
#include "util/table.h"

namespace {

using mlck::util::Json;

/// The request mix: one op per (system, law) cell, cycled so each of
/// optimize/predict/scenario covers every law. No "id" members — every
/// client must receive the exact same bytes for the same request.
std::vector<std::string> request_mix() {
  const char* systems[] = {"B", "M", "D1", "D3", "D5", "D7", "D9"};
  const char* optimizer =
      "{\"coarse_tau_points\":16,\"max_count\":8,\"refine_rounds\":8}";
  std::vector<std::string> mix;
  for (std::size_t s = 0; s < std::size(systems); ++s) {
    for (int law = 0; law < 3; ++law) {
      const std::string system = systems[s];
      std::string failure;
      switch (law) {
        case 0: failure = "{\"law\":\"exponential\"}"; break;
        case 1: failure = "{\"law\":\"weibull\",\"shape\":0.7}"; break;
        default: failure = "{\"law\":\"lognormal\",\"sigma\":1.0}"; break;
      }
      switch ((static_cast<int>(s) + law) % 3) {
        case 0:
          mix.push_back("{\"op\":\"optimize\",\"system\":\"" + system +
                        "\",\"failure\":" + failure +
                        ",\"optimizer\":" + optimizer + "}");
          break;
        case 1:
          mix.push_back("{\"op\":\"predict\",\"system\":\"" + system +
                        "\",\"failure\":" + failure +
                        ",\"plan\":{\"tau0\":60.0,\"levels\":[0],"
                        "\"counts\":[]}}");
          break;
        default:
          mix.push_back("{\"op\":\"scenario\",\"spec\":{\"system\":\"" +
                        system + "\",\"failure\":" + failure +
                        ",\"optimizer\":" + optimizer +
                        ",\"trials\":40,\"seed\":7}}");
          break;
      }
    }
  }
  return mix;
}

/// The identity gate's right-hand side, computed without the daemon.
std::string direct_response(const std::string& request_text) {
  const mlck::serve::Request request =
      mlck::serve::Request::parse(Json::parse(request_text));
  return mlck::serve::ok_response(request.id,
                                  mlck::serve::evaluate(request));
}

double percentile(std::vector<double>& samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

struct Phase {
  std::string name;
  std::size_t requests = 0;
  double seconds = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double qps() const {
    return seconds > 0.0 ? static_cast<double>(requests) / seconds : 0.0;
  }
};

struct Verdict {
  std::atomic<bool> identical{true};
  std::mutex mutex;
  std::string first_mismatch;  ///< guarded by mutex

  void check(const std::string& got, const std::string& want,
             const std::string& request) {
    if (got == want) return;
    identical.store(false, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(mutex);
    if (first_mismatch.empty()) {
      first_mismatch = "request " + request + "\n  want " + want +
                       "\n  got  " + got;
    }
  }
};

/// Runs @p tasks request indices through @p clients concurrent
/// connections, byte-checking every response, and reduces the client-side
/// latencies into phase stats.
Phase run_phase(const std::string& name, const std::string& socket,
                std::size_t clients, const std::vector<std::size_t>& tasks,
                const std::vector<std::string>& mix,
                const std::vector<std::string>& expected, Verdict& verdict) {
  std::vector<std::vector<double>> latencies_ms(clients);
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      mlck::serve::Client client(socket);
      latencies_ms[c].reserve(tasks.size() / clients + 1);
      for (std::size_t task = next.fetch_add(1); task < tasks.size();
           task = next.fetch_add(1)) {
        const std::size_t i = tasks[task];
        const auto sent = std::chrono::steady_clock::now();
        const std::string response = client.call_raw(mix[i]);
        latencies_ms[c].push_back(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - sent)
                .count());
        verdict.check(response, expected[i], mix[i]);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  Phase phase;
  phase.name = name;
  phase.requests = tasks.size();
  phase.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::vector<double> all;
  for (auto& per_client : latencies_ms) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  phase.p50_ms = percentile(all, 0.50);
  phase.p99_ms = percentile(all, 0.99);
  return phase;
}

Json phase_json(const Phase& phase) {
  Json::Object doc;
  doc["requests"] = static_cast<double>(phase.requests);
  doc["seconds"] = phase.seconds;
  doc["qps"] = phase.qps();
  doc["p50_ms"] = phase.p50_ms;
  doc["p99_ms"] = phase.p99_ms;
  return Json(std::move(doc));
}

}  // namespace

int main(int argc, char** argv) {
  const mlck::util::Cli cli(argc, argv);
  const bool smoke = cli.get_bool("smoke", false);
  const auto clients = static_cast<std::size_t>(
      std::max(2, cli.get_int("clients", smoke ? 4 : 8)));
  // Warm passes over the whole mix, per benchmark (not per client).
  const int passes = cli.get_int("passes", smoke ? 8 : 64);
  const int threads = cli.get_int("threads", 0);
  const std::string out = cli.get_string("out", "BENCH_serve.json");
  mlck::bench::reject_unknown_flags(cli);

  const std::vector<std::string> mix = request_mix();
  mlck::bench::progress("bench serve: computing direct baselines (" +
                        std::to_string(mix.size()) + " requests)");
  std::vector<std::string> expected(mix.size());
  for (std::size_t i = 0; i < mix.size(); ++i) {
    expected[i] = direct_response(mix[i]);
  }

  mlck::obs::MetricsRegistry registry;
  mlck::serve::ServerOptions options;
  options.socket_path =
      "/tmp/mlck_" + std::to_string(::getpid()) + "_bench.sock";
  options.threads = static_cast<std::size_t>(std::max(threads, 0));
  options.registry = &registry;
  mlck::serve::Server server(options);
  Verdict verdict;

  // Cold phase: every request twice, so first-timers and their coalesced
  // or cache-hit duplicates are both on the clock.
  mlck::bench::progress("bench serve: cold phase (" +
                        std::to_string(clients) + " clients)");
  std::vector<std::size_t> cold_tasks;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    cold_tasks.push_back(i);
    cold_tasks.push_back(i);
  }
  const Phase cold = run_phase("cold", options.socket_path, clients,
                               cold_tasks, mix, expected, verdict);

  mlck::bench::progress("bench serve: warm phase (" +
                        std::to_string(passes) + " passes)");
  std::vector<std::size_t> warm_tasks;
  for (int pass = 0; pass < passes; ++pass) {
    for (std::size_t i = 0; i < mix.size(); ++i) warm_tasks.push_back(i);
  }
  const Phase warm = run_phase("warm", options.socket_path, clients,
                               warm_tasks, mix, expected, verdict);

  // Liveness: a fresh client after the storm, then a clean drain.
  bool live = false;
  try {
    mlck::serve::Client probe(options.socket_path);
    const Json pong = Json::parse(probe.call_raw("{\"op\":\"ping\"}"));
    live = pong.at("ok").as_bool() &&
           pong.at("result").at("pong").as_bool();
  } catch (const std::exception& error) {
    std::cerr << "FATAL: liveness probe failed: " << error.what() << "\n";
  }
  server.stop();

  const bool identical = verdict.identical.load();
  mlck::util::Table table(
      {"phase", "requests", "seconds", "qps", "p50 ms", "p99 ms"});
  for (const Phase* phase : {&cold, &warm}) {
    table.add_row({phase->name, std::to_string(phase->requests),
                   mlck::util::Table::num(phase->seconds, 3),
                   mlck::util::Table::num(phase->qps(), 1),
                   mlck::util::Table::num(phase->p50_ms, 3),
                   mlck::util::Table::num(phase->p99_ms, 3)});
  }

  Json::Object serve_counters;
  for (const char* name :
       {"serve.requests", "serve.errors", "serve.jobs_executed",
        "serve.coalesced", "serve.plan_cache.hits",
        "serve.plan_cache.misses"}) {
    serve_counters[name] = static_cast<double>(registry.counter(name).value());
  }

  Json::Object doc;
  doc["benchmark"] = "serve";
  doc["smoke"] = smoke;
  doc["clients"] = static_cast<double>(clients);
  doc["passes"] = passes;
  doc["threads"] = threads;
  doc["mix_size"] = static_cast<double>(mix.size());
  doc["cold"] = phase_json(cold);
  doc["warm"] = phase_json(warm);
  doc["sustained_qps"] = warm.qps();
  doc["bit_identical"] = identical;
  doc["liveness"] = live;
  doc["serve"] = Json(std::move(serve_counters));
  mlck::core::write_file(out, Json(std::move(doc)).dump(2) + "\n");

  std::cout << "mlckd serving throughput: " << clients
            << " concurrent clients, " << mix.size()
            << "-request mix (7 systems x 3 failure laws x "
               "optimize/predict/scenario)\n";
  table.print(std::cout);
  std::cout << "identity: " << (identical ? "byte-identical" : "DIVERGED")
            << ", liveness: " << (live ? "ok" : "DEAD") << "\n";
  std::cout << "\nwrote " << out << "\n";

  if (!identical) {
    std::lock_guard<std::mutex> lock(verdict.mutex);
    std::cerr << "FATAL: daemon response diverged from direct evaluation\n"
              << verdict.first_mismatch << "\n";
    return 1;
  }
  if (!live) return 4;
  return 0;
}

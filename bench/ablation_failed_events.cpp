// Ablation for paper Sec. IV-D: what happens to interval selection and
// prediction accuracy when the model *ignores* failures during checkpoint
// and restart events (as Di et al. and Benoit et al. do). For each D-series
// system, intervals are selected twice — with the full Dauwe model and with
// the failed-event terms zeroed — and both plans are simulated.
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "core/technique.h"
#include "models/di.h"
#include "systems/test_systems.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const mlck::util::Cli cli(argc, argv);
  mlck::bench::BenchConfig cfg(cli, /*default_trials=*/200);
  mlck::bench::reject_unknown_flags(cli);

  using mlck::util::Table;
  const mlck::core::DauweTechnique full_technique;
  const mlck::core::DauweTechnique ablated_technique(
      mlck::models::di_model_options());

  Table table({"system", "variant", "tau0", "sim eff", "pred eff",
               "pred err"});
  for (const auto& sys : mlck::systems::table1_systems()) {
    if (sys.name == "M" || sys.name == "B") continue;  // D-series focus
    mlck::bench::progress("ablation failed-events: " + sys.name);
    std::unique_ptr<const mlck::math::FailureDistribution> law;
    const auto options = cfg.options_for(sys, law);
    for (const bool ablated : {false, true}) {
      const auto& technique =
          ablated ? ablated_technique : full_technique;
      const auto out =
          mlck::exp::evaluate_technique(technique, sys, options);
      table.add_row({sys.name,
                     ablated ? "no failed C/R terms" : "full model",
                     Table::num(out.plan.tau0, 3),
                     Table::pct(out.sim.efficiency.mean),
                     Table::pct(out.predicted_efficiency),
                     Table::pct(out.prediction_error(), 2)});
    }
  }
  std::cout << "Ablation (Sec. IV-D): modeling failures during checkpoint "
               "and restart events\n";
  table.print(std::cout);
  std::cout << "\nExpected shape: the ablated model chooses longer "
               "intervals and over-predicts efficiency, increasingly so "
               "toward D8/D9 where MTBF approaches the PFS cost.\n";
  return 0;
}

// Ablation for paper Sec. IV-F: the value of letting the optimizer drop
// expensive top checkpoint levels for short applications. For each
// Figure 5 scenario (30-minute application) the Dauwe model selects
// intervals twice — once free to skip levels, once forced to use all
// four — and both plans are simulated.
#include <iostream>

#include "bench_common.h"
#include "core/technique.h"
#include "systems/scaling.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const mlck::util::Cli cli(argc, argv);
  mlck::bench::BenchConfig cfg(cli, /*default_trials=*/400);
  const double base_time = cli.get_double("base-time", 30.0);
  mlck::bench::reject_unknown_flags(cli);

  using mlck::util::Table;
  mlck::core::OptimizerOptions forced;
  forced.allow_suffix_skipping = false;
  const mlck::core::DauweTechnique free_technique;
  const mlck::core::DauweTechnique forced_technique({}, forced);

  Table table({"scenario", "free top level", "free eff", "forced eff",
               "gain", "free sd", "forced sd"});
  const auto grid = mlck::exp::scaled_b_grid(
      base_time, mlck::systems::figure5_pfs_cost_grid());
  for (const auto& sc : grid) {
    mlck::bench::progress("ablation level-skipping: " + sc.label);
    std::unique_ptr<const mlck::math::FailureDistribution> law;
    const auto options = cfg.options_for(sc.system, law);
    const auto skip =
        mlck::exp::evaluate_technique(free_technique, sc.system, options);
    const auto all =
        mlck::exp::evaluate_technique(forced_technique, sc.system, options);
    table.add_row(
        {sc.label, std::to_string(skip.plan.top_system_level() + 1),
         Table::pct(skip.sim.efficiency.mean),
         Table::pct(all.sim.efficiency.mean),
         Table::pct(skip.sim.efficiency.mean - all.sim.efficiency.mean, 2),
         Table::pct(skip.sim.efficiency.stddev),
         Table::pct(all.sim.efficiency.stddev)});
  }
  std::cout << "Ablation (Sec. IV-F): level skipping for a "
            << static_cast<int>(base_time) << "-minute application\n";
  table.print(std::cout);
  std::cout << "\nExpected shape: skipping the PFS level raises mean "
               "efficiency (up to ~20%) at slightly higher variance.\n";
  return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/test_effective.dir/test_effective.cpp.o"
  "CMakeFiles/test_effective.dir/test_effective.cpp.o.d"
  "test_effective"
  "test_effective.pdb"
  "test_effective[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_effective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_effective.
# This may be replaced when dependencies are built.

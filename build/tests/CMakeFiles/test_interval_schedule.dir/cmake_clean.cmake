file(REMOVE_RECURSE
  "CMakeFiles/test_interval_schedule.dir/test_interval_schedule.cpp.o"
  "CMakeFiles/test_interval_schedule.dir/test_interval_schedule.cpp.o.d"
  "test_interval_schedule"
  "test_interval_schedule.pdb"
  "test_interval_schedule[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interval_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_interval_schedule.
# This may be replaced when dependencies are built.

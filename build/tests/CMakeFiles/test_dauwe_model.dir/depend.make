# Empty dependencies file for test_dauwe_model.
# This may be replaced when dependencies are built.

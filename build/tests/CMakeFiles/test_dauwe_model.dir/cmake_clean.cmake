file(REMOVE_RECURSE
  "CMakeFiles/test_dauwe_model.dir/test_dauwe_model.cpp.o"
  "CMakeFiles/test_dauwe_model.dir/test_dauwe_model.cpp.o.d"
  "test_dauwe_model"
  "test_dauwe_model.pdb"
  "test_dauwe_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dauwe_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

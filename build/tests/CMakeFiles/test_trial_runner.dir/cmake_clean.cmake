file(REMOVE_RECURSE
  "CMakeFiles/test_trial_runner.dir/test_trial_runner.cpp.o"
  "CMakeFiles/test_trial_runner.dir/test_trial_runner.cpp.o.d"
  "test_trial_runner"
  "test_trial_runner.pdb"
  "test_trial_runner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trial_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

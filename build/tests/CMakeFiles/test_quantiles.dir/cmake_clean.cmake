file(REMOVE_RECURSE
  "CMakeFiles/test_quantiles.dir/test_quantiles.cpp.o"
  "CMakeFiles/test_quantiles.dir/test_quantiles.cpp.o.d"
  "test_quantiles"
  "test_quantiles.pdb"
  "test_quantiles[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quantiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_moody.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_moody.dir/test_moody.cpp.o"
  "CMakeFiles/test_moody.dir/test_moody.cpp.o.d"
  "test_moody"
  "test_moody.pdb"
  "test_moody[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_moody.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

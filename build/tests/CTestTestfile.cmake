# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_math[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_system_config[1]_include.cmake")
include("/root/repo/build/tests/test_plan[1]_include.cmake")
include("/root/repo/build/tests/test_effective[1]_include.cmake")
include("/root/repo/build/tests/test_dauwe_model[1]_include.cmake")
include("/root/repo/build/tests/test_optimizer[1]_include.cmake")
include("/root/repo/build/tests/test_models[1]_include.cmake")
include("/root/repo/build/tests/test_moody[1]_include.cmake")
include("/root/repo/build/tests/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_trial_runner[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_distribution[1]_include.cmake")
include("/root/repo/build/tests/test_interval_schedule[1]_include.cmake")
include("/root/repo/build/tests/test_json[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_commands[1]_include.cmake")
include("/root/repo/build/tests/test_energy[1]_include.cmake")
include("/root/repo/build/tests/test_adaptive[1]_include.cmake")
include("/root/repo/build/tests/test_quantiles[1]_include.cmake")
include("/root/repo/build/tests/test_plot[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz_invariants[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_advisor[1]_include.cmake")

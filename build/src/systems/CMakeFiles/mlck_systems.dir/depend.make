# Empty dependencies file for mlck_systems.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libmlck_systems.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/systems/scaling.cpp" "src/systems/CMakeFiles/mlck_systems.dir/scaling.cpp.o" "gcc" "src/systems/CMakeFiles/mlck_systems.dir/scaling.cpp.o.d"
  "/root/repo/src/systems/system_config.cpp" "src/systems/CMakeFiles/mlck_systems.dir/system_config.cpp.o" "gcc" "src/systems/CMakeFiles/mlck_systems.dir/system_config.cpp.o.d"
  "/root/repo/src/systems/test_systems.cpp" "src/systems/CMakeFiles/mlck_systems.dir/test_systems.cpp.o" "gcc" "src/systems/CMakeFiles/mlck_systems.dir/test_systems.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/mlck_systems.dir/scaling.cpp.o"
  "CMakeFiles/mlck_systems.dir/scaling.cpp.o.d"
  "CMakeFiles/mlck_systems.dir/system_config.cpp.o"
  "CMakeFiles/mlck_systems.dir/system_config.cpp.o.d"
  "CMakeFiles/mlck_systems.dir/test_systems.cpp.o"
  "CMakeFiles/mlck_systems.dir/test_systems.cpp.o.d"
  "libmlck_systems.a"
  "libmlck_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlck_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

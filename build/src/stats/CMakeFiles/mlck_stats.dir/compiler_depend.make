# Empty compiler generated dependencies file for mlck_stats.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mlck_stats.dir/hypothesis.cpp.o"
  "CMakeFiles/mlck_stats.dir/hypothesis.cpp.o.d"
  "CMakeFiles/mlck_stats.dir/quantiles.cpp.o"
  "CMakeFiles/mlck_stats.dir/quantiles.cpp.o.d"
  "CMakeFiles/mlck_stats.dir/summary.cpp.o"
  "CMakeFiles/mlck_stats.dir/summary.cpp.o.d"
  "CMakeFiles/mlck_stats.dir/welford.cpp.o"
  "CMakeFiles/mlck_stats.dir/welford.cpp.o.d"
  "libmlck_stats.a"
  "libmlck_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlck_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libmlck_stats.a"
)

file(REMOVE_RECURSE
  "libmlck_runtime.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/mlck_runtime.dir/advisor.cpp.o"
  "CMakeFiles/mlck_runtime.dir/advisor.cpp.o.d"
  "libmlck_runtime.a"
  "libmlck_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlck_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for mlck_runtime.
# This may be replaced when dependencies are built.

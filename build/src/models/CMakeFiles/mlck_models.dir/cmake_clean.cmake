file(REMOVE_RECURSE
  "CMakeFiles/mlck_models.dir/benoit.cpp.o"
  "CMakeFiles/mlck_models.dir/benoit.cpp.o.d"
  "CMakeFiles/mlck_models.dir/daly.cpp.o"
  "CMakeFiles/mlck_models.dir/daly.cpp.o.d"
  "CMakeFiles/mlck_models.dir/di.cpp.o"
  "CMakeFiles/mlck_models.dir/di.cpp.o.d"
  "CMakeFiles/mlck_models.dir/interval_baseline.cpp.o"
  "CMakeFiles/mlck_models.dir/interval_baseline.cpp.o.d"
  "CMakeFiles/mlck_models.dir/interval_tuner.cpp.o"
  "CMakeFiles/mlck_models.dir/interval_tuner.cpp.o.d"
  "CMakeFiles/mlck_models.dir/moody.cpp.o"
  "CMakeFiles/mlck_models.dir/moody.cpp.o.d"
  "CMakeFiles/mlck_models.dir/registry.cpp.o"
  "CMakeFiles/mlck_models.dir/registry.cpp.o.d"
  "CMakeFiles/mlck_models.dir/young.cpp.o"
  "CMakeFiles/mlck_models.dir/young.cpp.o.d"
  "libmlck_models.a"
  "libmlck_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlck_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libmlck_models.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/benoit.cpp" "src/models/CMakeFiles/mlck_models.dir/benoit.cpp.o" "gcc" "src/models/CMakeFiles/mlck_models.dir/benoit.cpp.o.d"
  "/root/repo/src/models/daly.cpp" "src/models/CMakeFiles/mlck_models.dir/daly.cpp.o" "gcc" "src/models/CMakeFiles/mlck_models.dir/daly.cpp.o.d"
  "/root/repo/src/models/di.cpp" "src/models/CMakeFiles/mlck_models.dir/di.cpp.o" "gcc" "src/models/CMakeFiles/mlck_models.dir/di.cpp.o.d"
  "/root/repo/src/models/interval_baseline.cpp" "src/models/CMakeFiles/mlck_models.dir/interval_baseline.cpp.o" "gcc" "src/models/CMakeFiles/mlck_models.dir/interval_baseline.cpp.o.d"
  "/root/repo/src/models/interval_tuner.cpp" "src/models/CMakeFiles/mlck_models.dir/interval_tuner.cpp.o" "gcc" "src/models/CMakeFiles/mlck_models.dir/interval_tuner.cpp.o.d"
  "/root/repo/src/models/moody.cpp" "src/models/CMakeFiles/mlck_models.dir/moody.cpp.o" "gcc" "src/models/CMakeFiles/mlck_models.dir/moody.cpp.o.d"
  "/root/repo/src/models/registry.cpp" "src/models/CMakeFiles/mlck_models.dir/registry.cpp.o" "gcc" "src/models/CMakeFiles/mlck_models.dir/registry.cpp.o.d"
  "/root/repo/src/models/young.cpp" "src/models/CMakeFiles/mlck_models.dir/young.cpp.o" "gcc" "src/models/CMakeFiles/mlck_models.dir/young.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mlck_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mlck_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/systems/CMakeFiles/mlck_systems.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/mlck_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mlck_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mlck_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for mlck_models.
# This may be replaced when dependencies are built.

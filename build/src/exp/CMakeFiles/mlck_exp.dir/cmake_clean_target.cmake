file(REMOVE_RECURSE
  "libmlck_exp.a"
)

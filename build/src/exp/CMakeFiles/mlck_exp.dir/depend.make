# Empty dependencies file for mlck_exp.
# This may be replaced when dependencies are built.

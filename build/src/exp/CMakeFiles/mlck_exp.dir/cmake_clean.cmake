file(REMOVE_RECURSE
  "CMakeFiles/mlck_exp.dir/experiments.cpp.o"
  "CMakeFiles/mlck_exp.dir/experiments.cpp.o.d"
  "CMakeFiles/mlck_exp.dir/plot.cpp.o"
  "CMakeFiles/mlck_exp.dir/plot.cpp.o.d"
  "CMakeFiles/mlck_exp.dir/report.cpp.o"
  "CMakeFiles/mlck_exp.dir/report.cpp.o.d"
  "libmlck_exp.a"
  "libmlck_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlck_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libmlck_math.a"
)

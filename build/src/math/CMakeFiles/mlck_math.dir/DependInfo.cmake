
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/distribution.cpp" "src/math/CMakeFiles/mlck_math.dir/distribution.cpp.o" "gcc" "src/math/CMakeFiles/mlck_math.dir/distribution.cpp.o.d"
  "/root/repo/src/math/exponential.cpp" "src/math/CMakeFiles/mlck_math.dir/exponential.cpp.o" "gcc" "src/math/CMakeFiles/mlck_math.dir/exponential.cpp.o.d"
  "/root/repo/src/math/integrate.cpp" "src/math/CMakeFiles/mlck_math.dir/integrate.cpp.o" "gcc" "src/math/CMakeFiles/mlck_math.dir/integrate.cpp.o.d"
  "/root/repo/src/math/retry.cpp" "src/math/CMakeFiles/mlck_math.dir/retry.cpp.o" "gcc" "src/math/CMakeFiles/mlck_math.dir/retry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mlck_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

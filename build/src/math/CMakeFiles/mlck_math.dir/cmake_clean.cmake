file(REMOVE_RECURSE
  "CMakeFiles/mlck_math.dir/distribution.cpp.o"
  "CMakeFiles/mlck_math.dir/distribution.cpp.o.d"
  "CMakeFiles/mlck_math.dir/exponential.cpp.o"
  "CMakeFiles/mlck_math.dir/exponential.cpp.o.d"
  "CMakeFiles/mlck_math.dir/integrate.cpp.o"
  "CMakeFiles/mlck_math.dir/integrate.cpp.o.d"
  "CMakeFiles/mlck_math.dir/retry.cpp.o"
  "CMakeFiles/mlck_math.dir/retry.cpp.o.d"
  "libmlck_math.a"
  "libmlck_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlck_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

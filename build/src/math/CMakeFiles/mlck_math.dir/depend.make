# Empty dependencies file for mlck_math.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mlck_core.dir/adaptive.cpp.o"
  "CMakeFiles/mlck_core.dir/adaptive.cpp.o.d"
  "CMakeFiles/mlck_core.dir/dauwe_model.cpp.o"
  "CMakeFiles/mlck_core.dir/dauwe_model.cpp.o.d"
  "CMakeFiles/mlck_core.dir/effective.cpp.o"
  "CMakeFiles/mlck_core.dir/effective.cpp.o.d"
  "CMakeFiles/mlck_core.dir/interval_schedule.cpp.o"
  "CMakeFiles/mlck_core.dir/interval_schedule.cpp.o.d"
  "CMakeFiles/mlck_core.dir/optimizer.cpp.o"
  "CMakeFiles/mlck_core.dir/optimizer.cpp.o.d"
  "CMakeFiles/mlck_core.dir/plan.cpp.o"
  "CMakeFiles/mlck_core.dir/plan.cpp.o.d"
  "CMakeFiles/mlck_core.dir/serialize.cpp.o"
  "CMakeFiles/mlck_core.dir/serialize.cpp.o.d"
  "CMakeFiles/mlck_core.dir/technique.cpp.o"
  "CMakeFiles/mlck_core.dir/technique.cpp.o.d"
  "libmlck_core.a"
  "libmlck_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlck_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive.cpp" "src/core/CMakeFiles/mlck_core.dir/adaptive.cpp.o" "gcc" "src/core/CMakeFiles/mlck_core.dir/adaptive.cpp.o.d"
  "/root/repo/src/core/dauwe_model.cpp" "src/core/CMakeFiles/mlck_core.dir/dauwe_model.cpp.o" "gcc" "src/core/CMakeFiles/mlck_core.dir/dauwe_model.cpp.o.d"
  "/root/repo/src/core/effective.cpp" "src/core/CMakeFiles/mlck_core.dir/effective.cpp.o" "gcc" "src/core/CMakeFiles/mlck_core.dir/effective.cpp.o.d"
  "/root/repo/src/core/interval_schedule.cpp" "src/core/CMakeFiles/mlck_core.dir/interval_schedule.cpp.o" "gcc" "src/core/CMakeFiles/mlck_core.dir/interval_schedule.cpp.o.d"
  "/root/repo/src/core/optimizer.cpp" "src/core/CMakeFiles/mlck_core.dir/optimizer.cpp.o" "gcc" "src/core/CMakeFiles/mlck_core.dir/optimizer.cpp.o.d"
  "/root/repo/src/core/plan.cpp" "src/core/CMakeFiles/mlck_core.dir/plan.cpp.o" "gcc" "src/core/CMakeFiles/mlck_core.dir/plan.cpp.o.d"
  "/root/repo/src/core/serialize.cpp" "src/core/CMakeFiles/mlck_core.dir/serialize.cpp.o" "gcc" "src/core/CMakeFiles/mlck_core.dir/serialize.cpp.o.d"
  "/root/repo/src/core/technique.cpp" "src/core/CMakeFiles/mlck_core.dir/technique.cpp.o" "gcc" "src/core/CMakeFiles/mlck_core.dir/technique.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/systems/CMakeFiles/mlck_systems.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/mlck_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mlck_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for mlck_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libmlck_core.a"
)

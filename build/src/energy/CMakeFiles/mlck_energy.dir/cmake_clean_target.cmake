file(REMOVE_RECURSE
  "libmlck_energy.a"
)

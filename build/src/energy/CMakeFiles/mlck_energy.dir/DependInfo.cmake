
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/energy/power_model.cpp" "src/energy/CMakeFiles/mlck_energy.dir/power_model.cpp.o" "gcc" "src/energy/CMakeFiles/mlck_energy.dir/power_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mlck_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mlck_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/systems/CMakeFiles/mlck_systems.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/mlck_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mlck_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mlck_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for mlck_energy.
# This may be replaced when dependencies are built.

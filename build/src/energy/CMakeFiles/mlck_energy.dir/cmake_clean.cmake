file(REMOVE_RECURSE
  "CMakeFiles/mlck_energy.dir/power_model.cpp.o"
  "CMakeFiles/mlck_energy.dir/power_model.cpp.o.d"
  "libmlck_energy.a"
  "libmlck_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlck_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

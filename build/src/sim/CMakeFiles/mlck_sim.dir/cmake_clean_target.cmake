file(REMOVE_RECURSE
  "libmlck_sim.a"
)

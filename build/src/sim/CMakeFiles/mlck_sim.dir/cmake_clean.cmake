file(REMOVE_RECURSE
  "CMakeFiles/mlck_sim.dir/accounting.cpp.o"
  "CMakeFiles/mlck_sim.dir/accounting.cpp.o.d"
  "CMakeFiles/mlck_sim.dir/failure_source.cpp.o"
  "CMakeFiles/mlck_sim.dir/failure_source.cpp.o.d"
  "CMakeFiles/mlck_sim.dir/simulator.cpp.o"
  "CMakeFiles/mlck_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/mlck_sim.dir/trial_runner.cpp.o"
  "CMakeFiles/mlck_sim.dir/trial_runner.cpp.o.d"
  "libmlck_sim.a"
  "libmlck_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlck_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

src/sim/CMakeFiles/mlck_sim.dir/accounting.cpp.o: \
 /root/repo/src/sim/accounting.cpp /usr/include/stdc-predef.h \
 /root/repo/src/sim/accounting.h

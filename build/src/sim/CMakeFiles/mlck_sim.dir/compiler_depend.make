# Empty compiler generated dependencies file for mlck_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mlck_app.dir/commands.cpp.o"
  "CMakeFiles/mlck_app.dir/commands.cpp.o.d"
  "libmlck_app.a"
  "libmlck_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlck_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libmlck_app.a"
)

# Empty dependencies file for mlck_app.
# This may be replaced when dependencies are built.

# Empty dependencies file for mlck_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libmlck_util.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/mlck_util.dir/cli.cpp.o"
  "CMakeFiles/mlck_util.dir/cli.cpp.o.d"
  "CMakeFiles/mlck_util.dir/csv.cpp.o"
  "CMakeFiles/mlck_util.dir/csv.cpp.o.d"
  "CMakeFiles/mlck_util.dir/json.cpp.o"
  "CMakeFiles/mlck_util.dir/json.cpp.o.d"
  "CMakeFiles/mlck_util.dir/parallel.cpp.o"
  "CMakeFiles/mlck_util.dir/parallel.cpp.o.d"
  "CMakeFiles/mlck_util.dir/rng.cpp.o"
  "CMakeFiles/mlck_util.dir/rng.cpp.o.d"
  "CMakeFiles/mlck_util.dir/table.cpp.o"
  "CMakeFiles/mlck_util.dir/table.cpp.o.d"
  "CMakeFiles/mlck_util.dir/thread_pool.cpp.o"
  "CMakeFiles/mlck_util.dir/thread_pool.cpp.o.d"
  "libmlck_util.a"
  "libmlck_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlck_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for mlck.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mlck.dir/mlck.cpp.o"
  "CMakeFiles/mlck.dir/mlck.cpp.o.d"
  "mlck"
  "mlck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

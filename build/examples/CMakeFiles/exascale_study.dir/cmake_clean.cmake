file(REMOVE_RECURSE
  "CMakeFiles/exascale_study.dir/exascale_study.cpp.o"
  "CMakeFiles/exascale_study.dir/exascale_study.cpp.o.d"
  "exascale_study"
  "exascale_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exascale_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

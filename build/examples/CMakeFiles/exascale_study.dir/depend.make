# Empty dependencies file for exascale_study.
# This may be replaced when dependencies are built.

# Empty dependencies file for short_app_tuning.
# This may be replaced when dependencies are built.

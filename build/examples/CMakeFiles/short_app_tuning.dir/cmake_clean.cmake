file(REMOVE_RECURSE
  "CMakeFiles/short_app_tuning.dir/short_app_tuning.cpp.o"
  "CMakeFiles/short_app_tuning.dir/short_app_tuning.cpp.o.d"
  "short_app_tuning"
  "short_app_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/short_app_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/embedded_runtime.dir/embedded_runtime.cpp.o"
  "CMakeFiles/embedded_runtime.dir/embedded_runtime.cpp.o.d"
  "embedded_runtime"
  "embedded_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedded_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

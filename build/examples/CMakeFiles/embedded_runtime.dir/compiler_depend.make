# Empty compiler generated dependencies file for embedded_runtime.
# This may be replaced when dependencies are built.

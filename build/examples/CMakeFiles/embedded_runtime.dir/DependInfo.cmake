
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/embedded_runtime.cpp" "examples/CMakeFiles/embedded_runtime.dir/embedded_runtime.cpp.o" "gcc" "examples/CMakeFiles/embedded_runtime.dir/embedded_runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/mlck_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/mlck_models.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/mlck_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mlck_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mlck_core.dir/DependInfo.cmake"
  "/root/repo/build/src/systems/CMakeFiles/mlck_systems.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mlck_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/mlck_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mlck_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

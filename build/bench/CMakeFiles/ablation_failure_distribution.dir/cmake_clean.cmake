file(REMOVE_RECURSE
  "CMakeFiles/ablation_failure_distribution.dir/ablation_failure_distribution.cpp.o"
  "CMakeFiles/ablation_failure_distribution.dir/ablation_failure_distribution.cpp.o.d"
  "ablation_failure_distribution"
  "ablation_failure_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_failure_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_failure_distribution.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for ablation_restart_semantics.
# This may be replaced when dependencies are built.

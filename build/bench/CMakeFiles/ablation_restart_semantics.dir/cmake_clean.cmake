file(REMOVE_RECURSE
  "CMakeFiles/ablation_restart_semantics.dir/ablation_restart_semantics.cpp.o"
  "CMakeFiles/ablation_restart_semantics.dir/ablation_restart_semantics.cpp.o.d"
  "ablation_restart_semantics"
  "ablation_restart_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_restart_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablation_failed_events.
# This may be replaced when dependencies are built.

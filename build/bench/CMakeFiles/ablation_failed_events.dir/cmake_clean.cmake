file(REMOVE_RECURSE
  "CMakeFiles/ablation_failed_events.dir/ablation_failed_events.cpp.o"
  "CMakeFiles/ablation_failed_events.dir/ablation_failed_events.cpp.o.d"
  "ablation_failed_events"
  "ablation_failed_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_failed_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ablation_energy_objective.dir/ablation_energy_objective.cpp.o"
  "CMakeFiles/ablation_energy_objective.dir/ablation_energy_objective.cpp.o.d"
  "ablation_energy_objective"
  "ablation_energy_objective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_energy_objective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablation_energy_objective.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig4_exascale_scaling.dir/fig4_exascale_scaling.cpp.o"
  "CMakeFiles/fig4_exascale_scaling.dir/fig4_exascale_scaling.cpp.o.d"
  "fig4_exascale_scaling"
  "fig4_exascale_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_exascale_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

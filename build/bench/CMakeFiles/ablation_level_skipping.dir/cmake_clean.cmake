file(REMOVE_RECURSE
  "CMakeFiles/ablation_level_skipping.dir/ablation_level_skipping.cpp.o"
  "CMakeFiles/ablation_level_skipping.dir/ablation_level_skipping.cpp.o.d"
  "ablation_level_skipping"
  "ablation_level_skipping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_level_skipping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

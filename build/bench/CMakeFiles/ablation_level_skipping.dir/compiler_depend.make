# Empty compiler generated dependencies file for ablation_level_skipping.
# This may be replaced when dependencies are built.

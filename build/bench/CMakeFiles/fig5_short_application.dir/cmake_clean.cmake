file(REMOVE_RECURSE
  "CMakeFiles/fig5_short_application.dir/fig5_short_application.cpp.o"
  "CMakeFiles/fig5_short_application.dir/fig5_short_application.cpp.o.d"
  "fig5_short_application"
  "fig5_short_application.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_short_application.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

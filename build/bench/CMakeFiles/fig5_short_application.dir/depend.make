# Empty dependencies file for fig5_short_application.
# This may be replaced when dependencies are built.

# Empty dependencies file for ablation_adaptive_horizon.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_adaptive_horizon.dir/ablation_adaptive_horizon.cpp.o"
  "CMakeFiles/ablation_adaptive_horizon.dir/ablation_adaptive_horizon.cpp.o.d"
  "ablation_adaptive_horizon"
  "ablation_adaptive_horizon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adaptive_horizon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig6_prediction_error.
# This may be replaced when dependencies are built.

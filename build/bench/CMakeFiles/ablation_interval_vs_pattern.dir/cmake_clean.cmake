file(REMOVE_RECURSE
  "CMakeFiles/ablation_interval_vs_pattern.dir/ablation_interval_vs_pattern.cpp.o"
  "CMakeFiles/ablation_interval_vs_pattern.dir/ablation_interval_vs_pattern.cpp.o.d"
  "ablation_interval_vs_pattern"
  "ablation_interval_vs_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_interval_vs_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablation_interval_vs_pattern.
# This may be replaced when dependencies are built.

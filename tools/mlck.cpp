// The `mlck` command-line tool: optimize, predict, simulate, and compare
// multilevel checkpoint schedules without writing C++. All logic lives in
// src/app/commands.cpp so it is unit-testable; this file only adapts
// argv.
#include <iostream>
#include <string>
#include <vector>

#include "app/commands.h"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return mlck::app::run_command(args, std::cout, std::cerr);
}

// Quickstart: describe your platform, let the library pick checkpoint
// intervals, and validate the choice against the failure simulator.
//
//   $ ./quickstart
//
// Walks through the three core API calls:
//   1. systems::SystemConfig      — what the machine and app look like
//   2. core::DauweTechnique       — model-driven interval selection
//   3. sim::run_trials            — Monte-Carlo validation
#include <iostream>

#include "core/technique.h"
#include "sim/trial_runner.h"
#include "systems/system_config.h"
#include "util/table.h"

int main() {
  using mlck::util::Table;

  // A mid-size cluster: three checkpoint levels (local RAM, partner-node
  // XOR, parallel file system), an 8-hour application, one failure every
  // two hours. 60% of failures are recoverable from local RAM, 30% need
  // the partner copy, 10% need the PFS. All times in minutes.
  const auto system = mlck::systems::SystemConfig::from_table_row(
      "demo-cluster", /*levels=*/3, /*mtbf=*/120.0,
      /*severity=*/{0.6, 0.3, 0.1},
      /*checkpoint=restart cost=*/{0.05, 0.6, 6.0},
      /*base_time=*/480.0);

  // Select checkpoint intervals with the paper's execution-time model.
  const mlck::core::DauweTechnique technique;
  const auto selected = technique.select_plan(system);

  std::cout << "System: " << system.name << " (MTBF " << system.mtbf
            << " min, " << system.levels() << " checkpoint levels)\n"
            << "Selected plan: " << selected.plan.to_string() << "\n"
            << "  computation interval tau0 = " << selected.plan.tau0
            << " min\n"
            << "Predicted efficiency: "
            << Table::pct(selected.predicted_efficiency) << "\n\n";

  // Validate with 200 simulated runs under random failures.
  const auto stats =
      mlck::sim::run_trials(system, selected.plan, 200, /*seed=*/1);

  Table table({"metric", "value"});
  table.add_row({"simulated efficiency (mean)",
                 Table::pct(stats.efficiency.mean)});
  table.add_row({"simulated efficiency (stddev)",
                 Table::pct(stats.efficiency.stddev)});
  table.add_row({"95% CI half-width",
                 Table::pct(stats.efficiency.ci95_halfwidth(), 2)});
  table.add_row({"mean wall-clock (min)", Table::num(stats.total_time.mean, 1)});
  table.add_row({"mean failures per run", Table::num(stats.mean_failures, 1)});
  table.add_row({"time in useful work", Table::pct(stats.time_shares.useful)});
  table.add_row({"time in checkpoints",
                 Table::pct(stats.time_shares.checkpoint_ok +
                            stats.time_shares.checkpoint_failed)});
  table.print(std::cout);

  std::cout << "\nPrediction error: "
            << Table::pct(selected.predicted_efficiency -
                              stats.efficiency.mean, 2)
            << " (model vs simulation)\n";
  return 0;
}

// Quickstart: describe your platform as a scenario, let the engine pick
// checkpoint intervals, and validate the choice against the failure
// simulator.
//
//   $ ./quickstart
//
// Walks through the two calls of the scenario API:
//   1. engine::ScenarioSpec  — machine + app + evaluation settings, one
//                              JSON-round-trippable value
//   2. engine::run_scenario  — cached model-driven interval selection
//                              plus Monte-Carlo validation
#include <iostream>

#include "engine/scenario.h"
#include "systems/system_config.h"
#include "util/table.h"

int main() {
  using mlck::util::Table;

  // A mid-size cluster: three checkpoint levels (local RAM, partner-node
  // XOR, parallel file system), an 8-hour application, one failure every
  // two hours. 60% of failures are recoverable from local RAM, 30% need
  // the partner copy, 10% need the PFS. All times in minutes.
  mlck::engine::ScenarioSpec scenario;
  scenario.system = mlck::systems::SystemConfig::from_table_row(
      "demo-cluster", /*levels=*/3, /*mtbf=*/120.0,
      /*severity=*/{0.6, 0.3, 0.1},
      /*checkpoint=restart cost=*/{0.05, 0.6, 6.0},
      /*base_time=*/480.0);
  scenario.trials = 200;
  scenario.seed = 1;

  // The same document the mlck CLI consumes (`mlck scenario --spec=...`).
  std::cout << "Scenario document:\n"
            << scenario.to_json().dump(2) << "\n\n";

  // Select intervals with the paper's execution-time model (through the
  // cached evaluation engine) and validate with simulated runs under
  // random failures — one call does both.
  const auto outcome = mlck::engine::run_scenario(scenario);
  const auto& selected = outcome.selected;
  const auto& stats = outcome.stats;

  std::cout << "System: " << scenario.system.name << " (MTBF "
            << scenario.system.mtbf << " min, " << scenario.system.levels()
            << " checkpoint levels)\n"
            << "Selected plan: " << selected.plan.to_string() << "\n"
            << "  computation interval tau0 = " << selected.plan.tau0
            << " min\n"
            << "Predicted efficiency: "
            << Table::pct(selected.predicted_efficiency) << "\n\n";

  Table table({"metric", "value"});
  table.add_row({"simulated efficiency (mean)",
                 Table::pct(stats.efficiency.mean)});
  table.add_row({"simulated efficiency (stddev)",
                 Table::pct(stats.efficiency.stddev)});
  table.add_row({"95% CI half-width",
                 Table::pct(stats.efficiency.ci95_halfwidth(), 2)});
  table.add_row({"mean wall-clock (min)", Table::num(stats.total_time.mean, 1)});
  table.add_row({"mean failures per run", Table::num(stats.mean_failures, 1)});
  table.add_row({"time in useful work", Table::pct(stats.time_shares.useful)});
  table.add_row({"time in checkpoints",
                 Table::pct(stats.time_shares.checkpoint_ok +
                            stats.time_shares.checkpoint_failed)});
  table.print(std::cout);

  std::cout << "\nPrediction error: "
            << Table::pct(selected.predicted_efficiency -
                              stats.efficiency.mean, 2)
            << " (model vs simulation)\n";
  return 0;
}

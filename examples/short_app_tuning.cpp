// Short-application tuning: why a 30-minute job should often *skip* the
// parallel-file-system checkpoint level entirely (paper Sec. IV-F).
//
//   $ ./short_app_tuning [--mtbf=9] [--pfs=20] [--base-time=30]
//
// Compares the paper's technique (which weighs the app's total runtime
// and drops unprofitable levels) against Moody et al.'s steady-state
// optimizer (which always uses every level), and tests the efficiency
// difference for statistical significance. The two runs are the same
// ScenarioSpec with only the model name changed.
#include <iostream>
#include <string>

#include "engine/scenario.h"
#include "stats/hypothesis.h"
#include "systems/scaling.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using mlck::util::Table;
  const mlck::util::Cli cli(argc, argv);
  const double mtbf = cli.get_double("mtbf", 9.0);
  const double pfs = cli.get_double("pfs", 20.0);
  const double base_time = cli.get_double("base-time", 30.0);

  mlck::engine::ScenarioSpec scenario;
  scenario.system = mlck::systems::scaled_system_b(mtbf, pfs, base_time);
  scenario.trials = 400;
  scenario.seed = 7;
  std::cout << "Scenario: " << base_time << "-minute application, MTBF "
            << mtbf << " min, PFS checkpoint/restart " << pfs << " min\n\n";

  Table table({"technique", "plan", "uses PFS level", "sim eff", "sd",
               "predicted"});
  mlck::stats::Summary dauwe_eff, moody_eff;
  for (const std::string model : {"dauwe", "moody"}) {
    scenario.model = model;
    const auto outcome = mlck::engine::run_scenario(scenario);
    const auto& selected = outcome.selected;
    const bool uses_pfs = selected.plan.top_system_level() ==
                          scenario.system.levels() - 1;
    table.add_row({selected.technique, selected.plan.to_string(),
                   uses_pfs ? "yes" : "no",
                   Table::pct(outcome.stats.efficiency.mean),
                   Table::pct(outcome.stats.efficiency.stddev),
                   Table::pct(selected.predicted_efficiency)});
    (model == "dauwe" ? dauwe_eff : moody_eff) = outcome.stats.efficiency;
  }
  table.print(std::cout);

  const auto welch = mlck::stats::welch_test(dauwe_eff, moody_eff);
  std::cout << "\nEfficiency gain from weighing application length: "
            << Table::pct(dauwe_eff.mean - moody_eff.mean, 2)
            << " (Welch z = " << Table::num(welch.statistic, 2)
            << ", p = " << Table::num(welch.p_two_sided, 4) << ", "
            << (welch.significant() ? "significant" : "not significant")
            << " at 95%)\n";
  std::cout << "Note the variance trade-off: skipping the PFS level risks "
               "occasional full restarts, so the winning plan has the "
               "larger standard deviation.\n";
  return 0;
}

// Custom protocol comparison: build an FTI-like four-level checkpoint
// hierarchy (local SSD, partner copy, Reed-Solomon encoded group, PFS —
// paper Sec. II-B) and compare every interval-selection technique the
// library ships, including the historical Young baseline.
//
//   $ ./custom_protocol [--trials=100]
#include <iostream>

#include "models/registry.h"
#include "sim/trial_runner.h"
#include "systems/system_config.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using mlck::util::Table;
  const mlck::util::Cli cli(argc, argv);
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 100));

  // FTI-style hierarchy: the Reed-Solomon level (3rd) is costlier than the
  // partner copy but far cheaper than the PFS, and covers rarer failures.
  const auto system = mlck::systems::SystemConfig::from_table_row(
      "fti-like", /*levels=*/4, /*mtbf=*/45.0,
      /*severity=*/{0.55, 0.25, 0.15, 0.05},
      /*checkpoint=restart cost=*/{0.1, 0.4, 1.2, 8.0},
      /*base_time=*/720.0);

  std::cout << "FTI-like four-level protocol, 12-hour application, MTBF "
            << system.mtbf << " min\n\n";

  Table table({"technique", "plan", "sim eff", "sd", "predicted",
               "pred err"});
  for (const char* name :
       {"dauwe", "di", "moody", "benoit", "daly", "young"}) {
    const auto technique = mlck::models::make_technique(name);
    const auto selected = technique->select_plan(system);
    const auto stats = mlck::sim::run_trials(system, selected.plan, trials,
                                             /*seed=*/23);
    table.add_row({selected.technique, selected.plan.to_string(),
                   Table::pct(stats.efficiency.mean),
                   Table::pct(stats.efficiency.stddev),
                   Table::pct(selected.predicted_efficiency),
                   Table::pct(selected.predicted_efficiency -
                                  stats.efficiency.mean, 2)});
  }
  table.print(std::cout);

  std::cout << "\nWhat to look for: the multilevel techniques cluster well "
               "above the single-level baselines, and the models that "
               "account for failures during checkpoints and restarts "
               "(Dauwe, Moody) predict their own performance much more "
               "accurately than those that do not (Di, Benoit, Young).\n";
  return 0;
}

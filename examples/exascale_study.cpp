// Exascale viability study: where multilevel checkpointing stops working
// (the paper's headline systems conclusion). Sweeps the system MTBF for a
// fixed PFS cost and reports the best achievable efficiency, reproducing
// the "a 15-minute MTBF with >10-minute PFS checkpoints drops below 50%
// efficiency" observation.
//
// The sweep is one ScenarioSpec template with the system swapped per
// point; everything else (trials, seed, model options) stays declared in
// one place.
//
//   $ ./exascale_study [--pfs=20] [--trials=100]
#include <iostream>

#include "engine/scenario.h"
#include "systems/scaling.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using mlck::util::Table;
  const mlck::util::Cli cli(argc, argv);
  const double pfs = cli.get_double("pfs", 20.0);

  mlck::engine::ScenarioSpec scenario;
  scenario.trials = static_cast<std::size_t>(cli.get_int("trials", 100));
  scenario.seed = 11;

  std::cout << "Multilevel checkpointing viability, 1440-minute "
               "application, PFS cost "
            << pfs << " min (paper Sec. IV-E)\n\n";

  Table table({"MTBF (min)", "plan", "sim eff", "sd", "useful work",
               "failed C/R time"});
  for (const double mtbf : {60.0, 26.0, 20.0, 15.0, 9.0, 6.0, 3.0}) {
    scenario.system = mlck::systems::scaled_system_b(mtbf, pfs, 1440.0);
    const auto outcome = mlck::engine::run_scenario(scenario);
    table.add_row(
        {Table::num(mtbf, 0), outcome.selected.plan.to_string(),
         Table::pct(outcome.stats.efficiency.mean),
         Table::pct(outcome.stats.efficiency.stddev),
         Table::pct(outcome.stats.time_shares.useful),
         Table::pct(outcome.stats.time_shares.checkpoint_failed +
                    outcome.stats.time_shares.restart_failed)});
  }
  table.print(std::cout);

  std::cout << "\nReading the table: once the MTBF approaches the PFS "
               "checkpoint time, failed checkpoint/restart events consume "
               "a rapidly growing share of the machine and no interval "
               "tuning can recover it — the paper's argument that exascale "
               "systems need complementary resilience mechanisms.\n";
  return 0;
}

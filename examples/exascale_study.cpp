// Exascale viability study: where multilevel checkpointing stops working
// (the paper's headline systems conclusion). Sweeps the system MTBF for a
// fixed PFS cost and reports the best achievable efficiency, reproducing
// the "a 15-minute MTBF with >10-minute PFS checkpoints drops below 50%
// efficiency" observation.
//
//   $ ./exascale_study [--pfs=20] [--trials=100]
#include <iostream>

#include "core/technique.h"
#include "sim/trial_runner.h"
#include "systems/scaling.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using mlck::util::Table;
  const mlck::util::Cli cli(argc, argv);
  const double pfs = cli.get_double("pfs", 20.0);
  const auto trials =
      static_cast<std::size_t>(cli.get_int("trials", 100));

  std::cout << "Multilevel checkpointing viability, 1440-minute "
               "application, PFS cost "
            << pfs << " min (paper Sec. IV-E)\n\n";

  const mlck::core::DauweTechnique technique;
  Table table({"MTBF (min)", "plan", "sim eff", "sd", "useful work",
               "failed C/R time"});
  for (const double mtbf : {60.0, 26.0, 20.0, 15.0, 9.0, 6.0, 3.0}) {
    const auto system = mlck::systems::scaled_system_b(mtbf, pfs, 1440.0);
    const auto selected = technique.select_plan(system);
    const auto stats =
        mlck::sim::run_trials(system, selected.plan, trials, /*seed=*/11);
    table.add_row(
        {Table::num(mtbf, 0), selected.plan.to_string(),
         Table::pct(stats.efficiency.mean),
         Table::pct(stats.efficiency.stddev),
         Table::pct(stats.time_shares.useful),
         Table::pct(stats.time_shares.checkpoint_failed +
                    stats.time_shares.restart_failed)});
  }
  table.print(std::cout);

  std::cout << "\nReading the table: once the MTBF approaches the PFS "
               "checkpoint time, failed checkpoint/restart events consume "
               "a rapidly growing share of the machine and no interval "
               "tuning can recover it — the paper's argument that exascale "
               "systems need complementary resilience mechanisms.\n";
  return 0;
}

// Embedded-runtime demo: how an application (or a checkpoint library)
// consults the CheckpointAdvisor at run time. The "application" here is a
// loop over work units with injected failures; every decision — when to
// checkpoint, at which level, what to reload after a crash — comes from
// the advisor.
//
//   $ ./embedded_runtime [--system=D2] [--seed=8]
#include <algorithm>
#include <iostream>

#include "core/technique.h"
#include "runtime/advisor.h"
#include "sim/failure_source.h"
#include "systems/test_systems.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using mlck::util::Table;
  const mlck::util::Cli cli(argc, argv);
  const auto system =
      mlck::systems::table1_system(cli.get_string("system", "D2"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 8));

  // Plan once (e.g. at job-submission time)...
  const mlck::core::DauweTechnique technique;
  const auto selected = technique.select_plan(system);
  std::cout << "plan: " << selected.plan.to_string() << "\n\n";

  // ...then embed the advisor in the run loop.
  mlck::runtime::CheckpointAdvisor advisor(system, selected.plan);
  mlck::sim::RandomFailureSource failures(system, mlck::util::Rng(seed));

  double now = 0.0, work = 0.0, next_failure = 0.0;
  int pending_severity = -1;
  const auto arm = [&] {
    const auto ev = failures.next();
    next_failure += ev.interarrival;
    pending_severity = ev.severity;
  };
  arm();
  // Runs a phase; returns interrupting severity or -1.
  const auto run_phase = [&](double duration) {
    if (now + duration <= next_failure) {
      now += duration;
      return -1;
    }
    now = next_failure;
    const int s = pending_severity;
    arm();
    return s;
  };

  Table log({"t (min)", "decision"});
  int shown = 0;
  const auto note = [&](const std::string& what) {
    if (shown < 25) log.add_row({Table::num(now, 1), what});
    ++shown;
  };

  long long checkpoints = 0, restarts = 0, scratches = 0;
  while (work < system.base_time) {
    const auto next = advisor.next_checkpoint(work);
    const double target =
        next ? std::min(next->work, system.base_time) : system.base_time;
    int s = run_phase(target - work);
    if (s < 0) {
      work = target;
      if (work >= system.base_time - 1e-9) break;
      s = run_phase(
          system.checkpoint_cost[std::size_t(next->system_level)]);
      if (s < 0) {
        advisor.record_checkpoint(work, next->system_level);
        ++checkpoints;
        note("checkpoint L" + std::to_string(next->system_level + 1) +
             " at work " + Table::num(work, 0));
        continue;
      }
    }
    // A failure interrupted computation or the checkpoint.
    auto recovery = advisor.on_failure(s);
    note("failure severity " + std::to_string(s + 1));
    for (;;) {
      if (recovery.from_scratch) {
        work = 0.0;
        ++scratches;
        note("no usable checkpoint: restart from scratch");
        break;
      }
      const int s2 = run_phase(
          system.restart_cost[std::size_t(recovery.system_level)]);
      if (s2 < 0) {
        work = recovery.restored_work;
        ++restarts;
        note("restored from L" +
             std::to_string(recovery.system_level + 1) + " (work " +
             Table::num(work, 0) + ")");
        break;
      }
      recovery = advisor.on_restart_failure(recovery, s2);
      note("restart interrupted (severity " + std::to_string(s2 + 1) +
           "), target now L" + std::to_string(recovery.system_level + 1));
    }
  }

  log.print(std::cout);
  if (shown > 25) std::cout << "... " << shown - 25 << " more decisions\n";
  std::cout << "\nfinished " << system.base_time << " min of work in "
            << Table::num(now, 1) << " min (efficiency "
            << Table::pct(system.base_time / now) << "); " << checkpoints
            << " checkpoints, " << restarts << " restarts, " << scratches
            << " scratch restarts\n";
  return 0;
}

// Trace viewer: simulate a single run with event tracing enabled and
// print the full wall-clock timeline — what the application was doing at
// every moment, which failures hit, and what each one cost.
//
//   $ ./trace_viewer [--system=D3] [--seed=4] [--max-events=60]
//
// Useful for building intuition about multilevel recovery (and for
// debugging protocol changes).
#include <iostream>

#include "core/technique.h"
#include "sim/simulator.h"
#include "systems/test_systems.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

const char* kind_name(mlck::sim::TraceEvent::Kind kind) {
  using Kind = mlck::sim::TraceEvent::Kind;
  switch (kind) {
    case Kind::kCompute: return "compute";
    case Kind::kCheckpoint: return "checkpoint";
    case Kind::kRestart: return "restart";
    case Kind::kScratchRestart: return "scratch-restart";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  using mlck::util::Table;
  const mlck::util::Cli cli(argc, argv);
  const auto system =
      mlck::systems::table1_system(cli.get_string("system", "D3"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 4));
  const auto max_events =
      static_cast<std::size_t>(cli.get_int("max-events", 60));

  const mlck::core::DauweTechnique technique;
  const auto selected = technique.select_plan(system);
  std::cout << "System " << system.name << ", plan "
            << selected.plan.to_string() << "\n\n";

  std::vector<mlck::sim::TraceEvent> trace;
  mlck::sim::SimOptions opts;
  opts.trace = &trace;
  mlck::sim::RandomFailureSource failures(system, mlck::util::Rng(seed));
  const auto result =
      mlck::sim::simulate(system, selected.plan, failures, opts);

  Table table({"t (min)", "event", "level", "duration", "outcome"});
  for (std::size_t i = 0; i < trace.size() && i < max_events; ++i) {
    const auto& ev = trace[i];
    std::string outcome = "ok";
    if (!ev.completed) {
      // Built with += to sidestep a GCC 12 -Wrestrict false positive on
      // std::string operator+ chains.
      outcome = "failed (severity ";
      outcome += std::to_string(ev.failure_severity + 1);
      outcome += ")";
    }
    std::string level_cell = "-";
    if (ev.system_level >= 0) {
      level_cell = "L";
      level_cell += std::to_string(ev.system_level + 1);
    }
    table.add_row({Table::num(ev.start, 2), kind_name(ev.kind), level_cell,
                   Table::num(ev.end - ev.start, 2), outcome});
  }
  table.print(std::cout);
  if (trace.size() > max_events) {
    std::cout << "... " << trace.size() - max_events
              << " more events (raise --max-events)\n";
  }

  std::cout << "\nRun summary: " << Table::num(result.total_time, 1)
            << " min total, efficiency "
            << Table::pct(result.efficiency()) << ", " << result.failures
            << " failures, " << result.checkpoints_completed
            << " checkpoints, " << result.restarts_completed
            << " restarts (" << result.restarts_failed << " failed, "
            << result.scratch_restarts << " from scratch)\n";
  return 0;
}

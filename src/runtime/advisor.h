#pragma once

#include <optional>
#include <vector>

#include "core/adaptive.h"
#include "core/plan.h"
#include "systems/system_config.h"

namespace mlck::runtime {

/// The embeddable decision engine of the protocol — what a checkpoint
/// library (SCR, FTI) would consult at run time. The simulator exercises
/// exactly this logic internally; the advisor packages it behind a public
/// API for real applications, and a cross-validation test drives both
/// with identical failure schedules and asserts identical behaviour.
///
/// The application owns time and I/O; the advisor owns decisions:
///  * when the next checkpoint is due and at which level,
///  * which checkpoint to restore after a failure (tracking which
///    levels' storage that failure destroyed),
///  * what to do when a restart attempt itself fails.
///
/// Work positions are minutes of useful progress since application
/// start, exactly as everywhere else in the library.
class CheckpointAdvisor {
 public:
  /// Plain pattern plan.
  CheckpointAdvisor(const systems::SystemConfig& system,
                    core::CheckpointPlan plan);

  /// Horizon-aware plan (see core::AdaptiveSchedule): checkpoints of a
  /// level stop once the remaining work no longer justifies them.
  CheckpointAdvisor(const systems::SystemConfig& system,
                    core::AdaptiveSchedule schedule);

  /// The next scheduled checkpoint strictly after @p current_work:
  /// its trigger work position and system level. nullopt when no further
  /// checkpoint is due before the application completes.
  struct NextCheckpoint {
    double work = 0.0;
    int system_level = 0;
  };
  std::optional<NextCheckpoint> next_checkpoint(double current_work) const;

  /// The application finished writing a level-`system_level` checkpoint
  /// at progress @p work. Refreshes that level and every lower used
  /// level (SCR flushes downward).
  void record_checkpoint(double work, int system_level);

  /// A failure of the given severity struck (during computation or
  /// checkpointing). Storage below the severity is wiped and a recovery
  /// target chosen.
  struct Recovery {
    bool from_scratch = false;
    int system_level = -1;    ///< level to load (when !from_scratch)
    double restored_work = 0.0;
  };
  Recovery on_failure(int severity);

  /// A further failure struck *while restarting* from the given recovery
  /// target. Applies the retry-same-level semantics (paper Sec. IV-G):
  /// severities at or below the loading level retry it; higher severities
  /// re-target. Returns the (possibly new) recovery.
  Recovery on_restart_failure(const Recovery& current, int severity);

  /// Progress currently protected at each used level (for monitoring).
  /// Entries are nullopt when a level holds no checkpoint.
  std::vector<std::optional<double>> protected_work() const;

 private:
  Recovery pick_recovery(int severity);

  struct Slot {
    double work = 0.0;
    bool valid = false;
  };

  const systems::SystemConfig& system_;
  core::CheckpointPlan plan_;                       // pattern mode
  std::optional<core::AdaptiveSchedule> adaptive_;  // adaptive mode
  std::vector<int> levels_;
  std::vector<Slot> slots_;
};

}  // namespace mlck::runtime

#include "runtime/advisor.h"

#include <cmath>

#include "core/interval_schedule.h"

namespace mlck::runtime {

CheckpointAdvisor::CheckpointAdvisor(const systems::SystemConfig& system,
                                     core::CheckpointPlan plan)
    : system_(system), plan_(std::move(plan)) {
  plan_.validate(system_);
  levels_ = plan_.levels;
  slots_.resize(levels_.size());
}

CheckpointAdvisor::CheckpointAdvisor(const systems::SystemConfig& system,
                                     core::AdaptiveSchedule schedule)
    : system_(system),
      plan_(schedule.base),
      adaptive_(std::move(schedule)) {
  plan_.validate(system_);
  levels_ = plan_.levels;
  slots_.resize(levels_.size());
}

std::optional<CheckpointAdvisor::NextCheckpoint>
CheckpointAdvisor::next_checkpoint(double current_work) const {
  std::optional<core::CheckpointPoint> point;
  if (adaptive_) {
    point = adaptive_->next_checkpoint(current_work);
  } else {
    // Pattern grid: the same rule the simulator applies.
    const double j =
        std::floor((current_work + core::IntervalSchedule::kWorkEpsilon) /
                   plan_.tau0) +
        1.0;
    const double work = j * plan_.tau0;
    if (work < system_.base_time - core::IntervalSchedule::kWorkEpsilon) {
      point = core::CheckpointPoint{
          work, plan_.checkpoint_after_interval(static_cast<long long>(j))};
    }
  }
  if (!point) return std::nullopt;
  return NextCheckpoint{
      point->work, levels_[static_cast<std::size_t>(point->used_index)]};
}

void CheckpointAdvisor::record_checkpoint(double work, int system_level) {
  for (std::size_t k = 0; k < levels_.size(); ++k) {
    if (levels_[k] <= system_level) slots_[k] = Slot{work, true};
  }
}

CheckpointAdvisor::Recovery CheckpointAdvisor::pick_recovery(int severity) {
  // Storage below the severity is gone.
  for (std::size_t k = 0; k < levels_.size(); ++k) {
    if (levels_[k] < severity) slots_[k].valid = false;
  }
  // Lowest surviving used level that covers the severity.
  for (std::size_t k = 0; k < levels_.size(); ++k) {
    if (levels_[k] >= severity && slots_[k].valid) {
      return Recovery{false, levels_[k], slots_[k].work};
    }
  }
  // Nothing covers it: restart from scratch, all storage is void.
  for (auto& slot : slots_) slot.valid = false;
  return Recovery{true, -1, 0.0};
}

CheckpointAdvisor::Recovery CheckpointAdvisor::on_failure(int severity) {
  return pick_recovery(severity);
}

CheckpointAdvisor::Recovery CheckpointAdvisor::on_restart_failure(
    const Recovery& current, int severity) {
  if (!current.from_scratch && severity <= current.system_level) {
    // The checkpoint being loaded survives (its level >= severity):
    // retry it. Lower-level storage is still wiped.
    for (std::size_t k = 0; k < levels_.size(); ++k) {
      if (levels_[k] < severity) slots_[k].valid = false;
    }
    return current;
  }
  return pick_recovery(severity);
}

std::vector<std::optional<double>> CheckpointAdvisor::protected_work() const {
  std::vector<std::optional<double>> out(slots_.size());
  for (std::size_t k = 0; k < slots_.size(); ++k) {
    if (slots_[k].valid) out[k] = slots_[k].work;
  }
  return out;
}

}  // namespace mlck::runtime

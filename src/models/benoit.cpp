#include "models/benoit.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/effective.h"

namespace mlck::models {

double benoit_optimal_frequency(double lambda, double delta) noexcept {
  if (delta <= 0.0) return std::numeric_limits<double>::infinity();
  return std::sqrt(lambda / (2.0 * delta));
}

double benoit_waste_rate(const systems::SystemConfig& system,
                         const core::CheckpointPlan& plan) {
  const core::EffectiveSystem eff = core::make_effective(system, plan);
  double waste = 0.0;
  for (int k = 0; k < plan.used_levels(); ++k) {
    const auto& lvl = eff.level[static_cast<std::size_t>(k)];
    // Work between consecutive level-k checkpoints under the pattern.
    const double interval =
        plan.tau0 * static_cast<double>(plan.interval_period(k));
    waste += lvl.checkpoint_cost / interval;
    waste += lvl.lambda * (interval / 2.0 + lvl.restart_cost);
  }
  // First-order cost of severities with no covering level: each such
  // failure loses (on average) half the run and a scratch restart is free.
  waste += eff.scratch_lambda * system.base_time / 2.0;
  return waste;
}

double BenoitModel::expected_time(const systems::SystemConfig& system,
                                  const core::CheckpointPlan& plan) const {
  const double pattern_work = plan.work_per_top_period();
  if (pattern_work > system.base_time) {
    return std::numeric_limits<double>::infinity();
  }
  return system.base_time * (1.0 + benoit_waste_rate(system, plan));
}

core::TechniqueResult BenoitTechnique::do_select_plan(
    const systems::SystemConfig& system, util::ThreadPool* /*pool*/) const {
  const int L = system.levels();

  // Relaxed per-level optimal inter-checkpoint work intervals.
  std::vector<double> interval(static_cast<std::size_t>(L));
  for (int l = 0; l < L; ++l) {
    const double x = benoit_optimal_frequency(
        system.lambda(l), system.checkpoint_cost[static_cast<std::size_t>(l)]);
    interval[static_cast<std::size_t>(l)] =
        (x > 0.0) ? 1.0 / x : system.base_time;
  }

  // Round onto a nested pattern bottom-up: tau0 is the level-1 interval;
  // each higher level's count makes its period the nearest multiple of
  // the current one. A relaxed interval shorter than the level below's
  // rounds to count 0 (the level rides along with the one above).
  core::CheckpointPlan plan;
  plan.tau0 = std::min(interval[0], system.base_time / 2.0);
  plan.levels.resize(static_cast<std::size_t>(L));
  for (int l = 0; l < L; ++l) plan.levels[static_cast<std::size_t>(l)] = l;
  plan.counts.assign(static_cast<std::size_t>(L - 1), 0);
  double period = plan.tau0;
  for (int l = 1; l < L; ++l) {
    const double ratio = interval[static_cast<std::size_t>(l)] / period;
    const int count = std::max(0, static_cast<int>(std::lround(ratio)) - 1);
    plan.counts[static_cast<std::size_t>(l - 1)] = count;
    period *= static_cast<double>(count + 1);
  }

  core::TechniqueResult result;
  result.technique = name();
  result.plan = plan;
  result.predicted_time = BenoitModel{}.expected_time(system, plan);
  result.predicted_efficiency = system.base_time / result.predicted_time;
  return result;
}

}  // namespace mlck::models

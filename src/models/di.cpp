#include "models/di.h"

#include <limits>
#include <vector>

namespace mlck::models {

core::DauweOptions di_model_options() noexcept {
  core::DauweOptions opts;
  opts.checkpoint_failures = false;
  opts.restart_failures = false;
  return opts;
}

double DiModel::expected_time(const systems::SystemConfig& system,
                              const core::CheckpointPlan& plan) const {
  return inner_.expected_time(system, plan);
}

core::Prediction DiModel::predict(const systems::SystemConfig& system,
                                  const core::CheckpointPlan& plan) const {
  return inner_.predict(system, plan);
}

DiTechnique::DiTechnique(core::OptimizerOptions optimizer_options)
    : optimizer_options_(optimizer_options) {}

core::TechniqueResult DiTechnique::do_select_plan(
    const systems::SystemConfig& system, util::ThreadPool* pool) const {
  const int top = system.levels() - 1;

  // Candidate level sets: the top two levels, or — for short applications
  // where the expected cost of level-L checkpoints outweighs the risk of a
  // scratch restart — only the penultimate level.
  std::vector<std::vector<int>> candidates;
  if (system.levels() >= 2) {
    candidates.push_back({top - 1, top});
    candidates.push_back({top - 1});
  } else {
    candidates.push_back({top});
  }

  core::TechniqueResult best;
  best.technique = name();
  best.predicted_time = std::numeric_limits<double>::infinity();
  for (const auto& levels : candidates) {
    core::OptimizerOptions opts = optimizer_options_;
    opts.restrict_levels = levels;
    const auto result = core::optimize_intervals(model_, system, opts, pool);
    if (result.expected_time < best.predicted_time) {
      best.plan = result.plan;
      best.predicted_time = result.expected_time;
      best.predicted_efficiency = result.efficiency;
    }
  }
  return best;
}

}  // namespace mlck::models

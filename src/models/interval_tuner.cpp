#include "models/interval_tuner.h"

#include <algorithm>

#include "models/interval_baseline.h"
#include "sim/trial_runner.h"

namespace mlck::models {

namespace {

double score(const systems::SystemConfig& system,
             const core::IntervalSchedule& schedule,
             const IntervalTunerOptions& options, util::ThreadPool* pool,
             std::size_t& evaluations) {
  ++evaluations;
  // Same seed for every candidate: common random numbers.
  const auto stats = sim::run_trials(system, schedule, options.trials,
                                     options.seed, {}, pool);
  return stats.efficiency.mean;
}

}  // namespace

IntervalTuneResult tune_interval_schedule(
    const systems::SystemConfig& system, const IntervalTunerOptions& options,
    util::ThreadPool* pool) {
  IntervalTuneResult result;
  result.schedule = relaxed_interval_schedule(system);
  result.efficiency =
      score(system, result.schedule, options, pool, result.evaluations);

  double step = options.step;
  for (int round = 0; round < options.max_rounds; ++round) {
    bool improved = false;
    for (std::size_t k = 0; k < result.schedule.periods.size(); ++k) {
      for (const double factor : {1.0 + step, 1.0 / (1.0 + step)}) {
        core::IntervalSchedule candidate = result.schedule;
        candidate.periods[k] =
            std::clamp(candidate.periods[k] * factor,
                       system.base_time * 1e-4, system.base_time / 2.0);
        const double eff =
            score(system, candidate, options, pool, result.evaluations);
        if (eff > result.efficiency) {
          result.efficiency = eff;
          result.schedule = std::move(candidate);
          improved = true;
        }
      }
    }
    if (!improved) {
      step /= 2.0;
      if (step < options.min_step) break;
    }
  }
  return result;
}

}  // namespace mlck::models

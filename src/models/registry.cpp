#include "models/registry.h"

#include <stdexcept>

#include "models/benoit.h"
#include "models/daly.h"
#include "models/di.h"
#include "models/moody.h"
#include "models/young.h"

namespace mlck::models {

std::vector<std::unique_ptr<core::Technique>> figure2_techniques() {
  std::vector<std::unique_ptr<core::Technique>> out;
  out.push_back(std::make_unique<core::DauweTechnique>());
  out.push_back(std::make_unique<DiTechnique>());
  out.push_back(std::make_unique<MoodyTechnique>());
  out.push_back(std::make_unique<BenoitTechnique>());
  out.push_back(std::make_unique<DalyTechnique>());
  return out;
}

std::vector<std::unique_ptr<core::Technique>> multilevel_techniques() {
  std::vector<std::unique_ptr<core::Technique>> out;
  out.push_back(std::make_unique<core::DauweTechnique>());
  out.push_back(std::make_unique<DiTechnique>());
  out.push_back(std::make_unique<MoodyTechnique>());
  return out;
}

std::unique_ptr<core::Technique> make_technique(const std::string& name) {
  if (name == "dauwe") return std::make_unique<core::DauweTechnique>();
  if (name == "di") return std::make_unique<DiTechnique>();
  if (name == "moody") return std::make_unique<MoodyTechnique>();
  if (name == "benoit") return std::make_unique<BenoitTechnique>();
  if (name == "daly") return std::make_unique<DalyTechnique>();
  if (name == "young") return std::make_unique<YoungTechnique>();
  throw std::out_of_range("unknown technique: " + name);
}

}  // namespace mlck::models

#pragma once

#include "core/model.h"
#include "core/technique.h"

namespace mlck::models {

/// Young's first-order optimum checkpoint interval tau* = sqrt(2 delta M)
/// (Young 1974). The historical root of the field; kept as a reference
/// baseline and as a sanity anchor for the optimizers (every technique
/// should beat or match it on single-level problems).
double young_optimal_interval(double delta, double mtbf) noexcept;

/// Young's first-order expected-time model: overhead fraction
/// h = delta/tau + lambda (tau/2 + R), T = T_B (1 + h). Accurate only when
/// tau + delta << MTBF; degrades exactly where Daly's formula keeps
/// working, which the tests demonstrate.
double young_expected_time(double base_time, double tau, double delta,
                           double restart, double mtbf) noexcept;

/// ExecutionTimeModel adapter for single-level plans (see DalyModel).
class YoungModel : public core::ExecutionTimeModel {
 public:
  double expected_time(const systems::SystemConfig& system,
                       const core::CheckpointPlan& plan) const override;
};

/// Traditional C/R tuned with Young's interval; predictions from Young's
/// first-order model.
class YoungTechnique : public core::Technique {
 public:
  std::string name() const override { return "Young"; }

 protected:
  core::TechniqueResult do_select_plan(const systems::SystemConfig& system,
                                       util::ThreadPool* pool)
      const override;
};

}  // namespace mlck::models

#pragma once

#include "core/model.h"
#include "core/technique.h"

namespace mlck::models {

/// Benoit et al.'s first-order waste rate for a pattern with per-level
/// checkpoint frequencies x_l (checkpoints per minute of work):
///
///   H = sum_l x_l delta_l  +  sum_l lambda_l (1 / (2 x_l) + R_l)
///
/// i.e. checkpoint overhead plus, per failure, half the level-l
/// inter-checkpoint interval of lost work and one restart. First order in
/// lambda: failures during checkpoints and restarts are ignored — the
/// assumption the paper identifies as the source of the technique's
/// optimism (Sec. IV-C).
double benoit_waste_rate(const systems::SystemConfig& system,
                         const core::CheckpointPlan& plan);

/// Closed-form relaxed optimum frequency for level l:
/// x_l* = sqrt(lambda_l / (2 delta_l)); the resulting first-order optimal
/// waste is H* = sum_l sqrt(2 lambda_l delta_l) + sum_l lambda_l R_l
/// (Benoit et al. 2017, Theorem 1 shape).
double benoit_optimal_frequency(double lambda, double delta) noexcept;

/// ExecutionTimeModel adapter: T = T_B (1 + H(plan)). Used for tests and
/// for optimizer-driven ablations of the closed-form pattern rounding.
class BenoitModel : public core::ExecutionTimeModel {
 public:
  double expected_time(const systems::SystemConfig& system,
                       const core::CheckpointPlan& plan) const override;
};

/// The paper's "Benoit et al." technique: closed-form per-level optimal
/// frequencies rounded onto a nested pattern (all L levels, no
/// base-time consideration), with the first-order model providing the
/// (optimistic) prediction.
class BenoitTechnique : public core::Technique {
 public:
  std::string name() const override { return "Benoit et al."; }

 protected:
  core::TechniqueResult do_select_plan(const systems::SystemConfig& system,
                                       util::ThreadPool* pool)
      const override;
};

}  // namespace mlck::models

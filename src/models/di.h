#pragma once

#include "core/dauwe_model.h"
#include "core/technique.h"

namespace mlck::models {

/// The DauweOptions configuration that expresses the Di et al. model
/// assumptions the paper compares against (Sec. II-C / IV-G): checkpoint
/// and restart events are failure-free, while failures during computation
/// and the application's finite base time are modeled.
core::DauweOptions di_model_options() noexcept;

/// Di et al. two-level expected-time model [17], expressed as the shared
/// hierarchical recursion with the failed-checkpoint (alpha) and
/// failed-restart (zeta) terms switched off. This is a behaviour-faithful
/// reimplementation of the published model's assumptions, not a port of
/// its exact algebra (see DESIGN.md); its signature property — predicted
/// time below the simulated time, i.e. *over*-estimated efficiency, by a
/// margin that grows as MTBF approaches the C/R costs — is what Figure 6
/// exercises.
class DiModel : public core::ExecutionTimeModel {
 public:
  double expected_time(const systems::SystemConfig& system,
                       const core::CheckpointPlan& plan) const override;

  core::Prediction predict(const systems::SystemConfig& system,
                           const core::CheckpointPlan& plan) const override;

 private:
  core::DauweModel inner_{di_model_options()};
};

/// The paper's "Di et al." technique: offline pattern-based optimization
/// restricted to *two* checkpoint levels. On systems with more levels only
/// the top two (L-1, L) are used, lower severities all restarting from the
/// level-(L-1) checkpoint (Sec. IV-C). Because the model accounts for the
/// application's base time, the search also considers dropping the
/// expensive top level (Sec. IV-F).
class DiTechnique : public core::Technique {
 public:
  explicit DiTechnique(core::OptimizerOptions optimizer_options = {});

  std::string name() const override { return "Di et al."; }

 protected:
  core::TechniqueResult do_select_plan(const systems::SystemConfig& system,
                                       util::ThreadPool* pool)
      const override;

 private:
  core::OptimizerOptions optimizer_options_;
  DiModel model_;
};

}  // namespace mlck::models

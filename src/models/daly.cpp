#include "models/daly.h"

#include <cmath>
#include <limits>

namespace mlck::models {

double daly_expected_time(double base_time, double tau, double delta,
                          double restart, double mtbf) noexcept {
  if (tau <= 0.0 || mtbf <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return mtbf * std::exp(restart / mtbf) *
         std::expm1((tau + delta) / mtbf) * base_time / tau;
}

double daly_optimal_interval(double delta, double mtbf) noexcept {
  if (delta >= 2.0 * mtbf) return mtbf;
  const double x = std::sqrt(delta / (2.0 * mtbf));
  return std::sqrt(2.0 * delta * mtbf) *
             (1.0 + x / 3.0 + x * x / 9.0) -
         delta;
}

double DalyModel::expected_time(const systems::SystemConfig& system,
                                const core::CheckpointPlan& plan) const {
  if (plan.used_levels() != 1) {
    return std::numeric_limits<double>::infinity();
  }
  const auto level = static_cast<std::size_t>(plan.levels.front());
  return daly_expected_time(system.base_time, plan.tau0,
                            system.checkpoint_cost[level],
                            system.restart_cost[level], system.mtbf);
}

core::TechniqueResult DalyTechnique::do_select_plan(
    const systems::SystemConfig& system, util::ThreadPool* /*pool*/) const {
  const int pfs = system.levels() - 1;
  const auto level = static_cast<std::size_t>(pfs);
  const double tau =
      daly_optimal_interval(system.checkpoint_cost[level], system.mtbf);

  core::TechniqueResult result;
  result.technique = name();
  result.plan = core::CheckpointPlan::single_level(tau, pfs);
  result.predicted_time =
      daly_expected_time(system.base_time, tau, system.checkpoint_cost[level],
                         system.restart_cost[level], system.mtbf);
  result.predicted_efficiency = system.base_time / result.predicted_time;
  return result;
}

}  // namespace mlck::models

#pragma once

#include "core/effective.h"
#include "core/model.h"
#include "core/technique.h"

namespace mlck::models {

/// Moody et al. (SCR) Markov-style expected-time model [5].
///
/// Behaviour-faithful reimplementation of the three properties the paper
/// attributes to the SCR model (the SC'10 Markov chain itself is not
/// published in reusable form; see DESIGN.md):
///
///  1. failures during checkpoints and restarts are modeled (like Dauwe);
///  2. *pessimistic escalation*: a second failure of severity i while
///     restarting from a level-i checkpoint forces the subsequent restart
///     to come from a level-(i+1) checkpoint, losing the level-(i+1)
///     period's progress (paper Sec. IV-G — the source of SCR's
///     efficiency under-estimation at extreme scale);
///  3. steady-state optimization: efficiency is computed per checkpoint
///     pattern, independent of the application's base time, so the model
///     never proposes dropping the top level for short applications
///     (paper Sec. IV-F).
///
/// expected_time() returns T_B divided by the steady-state pattern
/// efficiency; plans that leave any severity without a covering
/// checkpoint level are infeasible (+inf), encoding property 3.
class MoodyModel : public core::ExecutionTimeModel {
 public:
  double expected_time(const systems::SystemConfig& system,
                       const core::CheckpointPlan& plan) const override;

  /// Steady-state efficiency of the pattern (work per period divided by
  /// expected period duration).
  double steady_state_efficiency(const systems::SystemConfig& system,
                                 const core::CheckpointPlan& plan) const;

  /// Expected duration of the full recovery process triggered by a
  /// severity-k failure (used-level index), including retries and
  /// escalations. Exposed for tests.
  static double recovery_cost(const core::EffectiveSystem& eff,
                              const core::CheckpointPlan& plan, int k);
};

/// The paper's "Moody et al." technique: brute-force pattern search driven
/// by the SCR model, all levels always in use.
class MoodyTechnique : public core::Technique {
 public:
  explicit MoodyTechnique(core::OptimizerOptions optimizer_options = {});

  std::string name() const override { return "Moody et al."; }

 protected:
  core::TechniqueResult do_select_plan(const systems::SystemConfig& system,
                                       util::ThreadPool* pool)
      const override;

 private:
  core::OptimizerOptions optimizer_options_;
  MoodyModel model_;
};

}  // namespace mlck::models

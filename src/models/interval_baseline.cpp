#include "models/interval_baseline.h"

#include <algorithm>
#include <cmath>

namespace mlck::models {

core::IntervalSchedule relaxed_interval_schedule(
    const systems::SystemConfig& system) {
  core::IntervalSchedule schedule;
  const int L = system.levels();
  schedule.levels.reserve(static_cast<std::size_t>(L));
  schedule.periods.reserve(static_cast<std::size_t>(L));
  for (int l = 0; l < L; ++l) {
    const double delta =
        system.checkpoint_cost[static_cast<std::size_t>(l)];
    const double lambda = system.lambda(l);
    double period;
    if (lambda <= 0.0 || delta <= 0.0) {
      // Free checkpoints piggyback on every minute; failure-free levels
      // checkpoint as rarely as the clamp allows.
      period = (delta <= 0.0) ? 1.0 : system.base_time / 2.0;
    } else {
      period = std::sqrt(2.0 * delta / lambda);
    }
    schedule.levels.push_back(l);
    schedule.periods.push_back(
        std::min(period, system.base_time / 2.0));
  }
  return schedule;
}

}  // namespace mlck::models

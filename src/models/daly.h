#pragma once

#include "core/model.h"
#include "core/technique.h"

namespace mlck::models {

/// Daly's exact expected runtime for traditional single-level
/// checkpoint/restart under exponential failures (Daly 2006, the model the
/// paper uses for its "traditional C/R" baseline):
///
///   T = M e^{R/M} (e^{(tau + delta)/M} - 1) * T_B / tau
///
/// where M is the MTBF over *all* failures (every failure restarts from
/// the single checkpoint level). The formula already accounts for failures
/// during checkpoints and restarts, which is why the paper finds Daly's
/// predictions "highly accurate".
double daly_expected_time(double base_time, double tau, double delta,
                          double restart, double mtbf) noexcept;

/// Daly's higher-order optimum checkpoint interval:
///
///   tau* = sqrt(2 delta M) [1 + (1/3) sqrt(delta / 2M)
///                             + (1/9)(delta / 2M)] - delta   if delta < 2M
///   tau* = M                                                 otherwise
double daly_optimal_interval(double delta, double mtbf) noexcept;

/// ExecutionTimeModel adapter: evaluates daly_expected_time for
/// single-level plans. Plans using more than one level are rejected as
/// infeasible (+inf) — traditional C/R has no notion of them.
class DalyModel : public core::ExecutionTimeModel {
 public:
  double expected_time(const systems::SystemConfig& system,
                       const core::CheckpointPlan& plan) const override;
};

/// The paper's "Daly" bars: checkpoint only to the PFS (highest level)
/// with Daly's closed-form interval; predictions from the exact formula.
class DalyTechnique : public core::Technique {
 public:
  std::string name() const override { return "Daly"; }

 protected:
  core::TechniqueResult do_select_plan(const systems::SystemConfig& system,
                                       util::ThreadPool* pool)
      const override;
};

}  // namespace mlck::models

#pragma once

#include "core/interval_schedule.h"
#include "systems/system_config.h"

namespace mlck::models {

/// First-order *interval-based* multilevel schedule: each level k
/// checkpoints every sqrt(2 delta_k / lambda_k) minutes of work — the
/// relaxed per-level optimum with no nesting constraint. This is the
/// schedule family Di et al. show can beat pattern-based optimization
/// (paper Sec. II-C); the paper itself sticks to patterns because no
/// production protocol supports free-running intervals. Implemented here
/// as the library's extension experiment (see
/// bench/ablation_interval_vs_pattern).
///
/// Periods are clamped to at most half the application base time so even
/// rare-severity levels checkpoint at least once in short runs.
core::IntervalSchedule relaxed_interval_schedule(
    const systems::SystemConfig& system);

}  // namespace mlck::models

#pragma once

#include <cstdint>

#include "core/interval_schedule.h"
#include "systems/system_config.h"
#include "util/thread_pool.h"

namespace mlck::models {

/// Controls for the simulation-based interval tuner.
struct IntervalTunerOptions {
  std::size_t trials = 48;      ///< Monte-Carlo trials per candidate
  std::uint64_t seed = 1;       ///< base seed; *shared* across candidates
  int max_rounds = 12;          ///< coordinate-descent rounds
  double step = 0.30;           ///< initial relative period step
  double min_step = 0.02;       ///< stop once the step shrinks below this
};

/// Result of tuning: the schedule plus its estimated efficiency.
struct IntervalTuneResult {
  core::IntervalSchedule schedule;
  double efficiency = 0.0;      ///< mean simulated efficiency at `seed`
  std::size_t evaluations = 0;  ///< candidate schedules simulated
};

/// Tunes an interval-based schedule by direct simulation.
///
/// Interval schedules have no closed-form execution-time model here (the
/// paper's models are pattern-based), so the tuner optimizes the
/// Monte-Carlo estimate itself: coordinate descent over the per-level
/// periods, multiplying each by (1 ± step) and keeping improvements,
/// halving the step when a round stalls. All candidates are scored on
/// the *same* failure streams (common random numbers), which turns the
/// noisy comparison between neighbouring schedules into a low-variance
/// paired one — without it the descent direction would be noise below a
/// few hundred trials.
///
/// Starts from the relaxed closed-form schedule (interval_baseline.h).
IntervalTuneResult tune_interval_schedule(
    const systems::SystemConfig& system,
    const IntervalTunerOptions& options = {},
    util::ThreadPool* pool = nullptr);

}  // namespace mlck::models

#include "models/moody.h"

#include <array>
#include <cassert>
#include <cmath>
#include <limits>

#include "math/exponential.h"
#include "math/retry.h"

namespace mlck::models {

namespace {
constexpr int kMaxLevels = 16;
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

namespace {

/// Shared shape of the per-period recursion: evaluates the expected
/// duration of one full checkpoint pattern, charging @p rho[k] for each
/// severity-k recovery. Records the duration between level-k checkpoints
/// (the value of tau entering stage k) in @p tau_entering when non-null.
double period_duration(const core::EffectiveSystem& eff,
                       const core::CheckpointPlan& plan,
                       const double* rho, double* tau_entering) {
  const int K = plan.used_levels();
  assert(K <= kMaxLevels);
  std::array<double, kMaxLevels> tau_hist{};
  std::array<double, kMaxLevels> gamma_e_hist{};
  double tau = plan.tau0;
  double lambda_c = 0.0;
  for (int k = 0; k < K; ++k) {
    const auto& lvl = eff.level[static_cast<std::size_t>(k)];
    lambda_c += lvl.lambda;
    const bool top = (k == K - 1);
    const double m =
        top ? 1.0
            : static_cast<double>(plan.counts[static_cast<std::size_t>(k)] + 1);
    const double c =
        top ? 1.0
            : static_cast<double>(plan.counts[static_cast<std::size_t>(k)]);

    const double gamma = math::expected_retries(tau, lvl.lambda);
    const double e_tau = math::truncated_mean(tau, lvl.lambda);
    tau_hist[static_cast<std::size_t>(k)] = tau;
    gamma_e_hist[static_cast<std::size_t>(k)] = gamma * e_tau;
    if (tau_entering != nullptr) tau_entering[k] = tau;
    const double t_w_tau = gamma * e_tau * m;

    const double t_ck_ok = c * lvl.checkpoint_cost;
    const double alpha =
        math::expected_retries(lvl.checkpoint_cost, lambda_c, c);
    const double t_ck_fail =
        alpha * math::truncated_mean(lvl.checkpoint_cost, lambda_c);
    double lost_intervals = 0.0;
    for (int j = 0; j <= k; ++j) {
      lost_intervals += (tau_hist[static_cast<std::size_t>(j)] +
                         gamma_e_hist[static_cast<std::size_t>(j)]) *
                        eff.level[static_cast<std::size_t>(j)].severity_share;
    }
    const double t_w_ck = alpha * lost_intervals;

    const double s_k = lvl.severity_share;
    const double beta = s_k * alpha + gamma * (s_k * alpha + m);
    const double t_recover = beta * rho[k];

    tau = m * tau + t_ck_ok + t_ck_fail + t_w_tau + t_w_ck + t_recover;
    if (!std::isfinite(tau)) return kInf;
  }
  return tau;
}

/// Plain geometric-retry recovery cost (the Dauwe semantics), used to
/// bootstrap the escalation pass with overhead-inclusive period lengths.
double retry_recovery_cost(const core::EffectiveSystem& eff, int k) {
  double lambda_c = 0.0;
  for (int j = 0; j <= k; ++j) {
    lambda_c += eff.level[static_cast<std::size_t>(j)].lambda;
  }
  const double restart =
      eff.level[static_cast<std::size_t>(k)].restart_cost;
  const double p = math::failure_probability(restart, lambda_c);
  const double q = 1.0 - p;
  if (q <= 0.0) return kInf;
  return restart + (p / q) * math::truncated_mean(restart, lambda_c);
}

}  // namespace

namespace {

/// Fills rho[0..K) with the escalation-aware recovery cost per level.
void escalation_recovery_costs(const core::EffectiveSystem& eff,
                               const core::CheckpointPlan& plan,
                               double* rho) {
  const int K = static_cast<int>(eff.level.size());

  // Bootstrap pass: period durations (with all overheads, restarts priced
  // at plain retry) so escalations can charge realistic lost work.
  std::array<double, kMaxLevels> rho_retry{};
  for (int j = 0; j < K; ++j) {
    rho_retry[static_cast<std::size_t>(j)] = retry_recovery_cost(eff, j);
  }
  std::array<double, kMaxLevels> tau_entering{};
  period_duration(eff, plan, rho_retry.data(), tau_entering.data());

  // Escalation pass, top-down: a repeated same-severity failure while
  // restarting level j escalates to level j+1, paying that level's full
  // recovery plus (on average) half of the overhead-inclusive duration
  // between level-(j+1) checkpoints of re-executed progress.
  for (int j = K - 1; j >= 0; --j) {
    const auto& lvl = eff.level[static_cast<std::size_t>(j)];
    double lambda_c = 0.0;
    for (int i = 0; i <= j; ++i) {
      lambda_c += eff.level[static_cast<std::size_t>(i)].lambda;
    }
    const double restart = lvl.restart_cost;
    const double p = math::failure_probability(restart, lambda_c);
    const double q = 1.0 - p;
    if (q <= 0.0 || lambda_c <= 0.0) {
      rho[j] = (q <= 0.0) ? kInf : restart;
      continue;
    }
    const double e_fail = math::truncated_mean(restart, lambda_c);
    const double s = lvl.lambda / lambda_c;
    if (j == K - 1) {
      // Top level: nowhere to escalate, failed restarts retry.
      rho[j] = restart + (p / q) * e_fail;
      continue;
    }
    const double rho_up = rho[j + 1];
    const double lost_up = 0.5 * tau_entering[static_cast<std::size_t>(j) + 1];
    const double denom = 1.0 - p * (1.0 - s);
    rho[j] = (denom <= 0.0)
                 ? kInf
                 : (q * restart + p * e_fail + p * s * (rho_up + lost_up)) /
                       denom;
  }
}

}  // namespace

double MoodyModel::recovery_cost(const core::EffectiveSystem& eff,
                                 const core::CheckpointPlan& plan, int k) {
  assert(k >= 0 && k < static_cast<int>(eff.level.size()));
  std::array<double, kMaxLevels> rho{};
  escalation_recovery_costs(eff, plan, rho.data());
  return rho[static_cast<std::size_t>(k)];
}

double MoodyModel::steady_state_efficiency(
    const systems::SystemConfig& system,
    const core::CheckpointPlan& plan) const {
  const core::EffectiveSystem eff = core::make_effective(system, plan);
  // Property 3: SCR always covers every severity; a plan that cannot
  // recover some failures is outside the model.
  if (eff.scratch_lambda > 0.0) return 0.0;

  assert(plan.used_levels() <= kMaxLevels);
  std::array<double, kMaxLevels> rho{};
  escalation_recovery_costs(eff, plan, rho.data());
  const double period = period_duration(eff, plan, rho.data(), nullptr);
  if (!std::isfinite(period) || period <= 0.0) return 0.0;
  return plan.work_per_top_period() / period;
}

double MoodyModel::expected_time(const systems::SystemConfig& system,
                                 const core::CheckpointPlan& plan) const {
  // Keep the paper's feasibility bound: at least one full pattern must fit.
  if (plan.work_per_top_period() > system.base_time) return kInf;
  const double eff = steady_state_efficiency(system, plan);
  if (eff <= 0.0) return kInf;
  return system.base_time / eff;
}

MoodyTechnique::MoodyTechnique(core::OptimizerOptions optimizer_options)
    : optimizer_options_(optimizer_options) {
  optimizer_options_.allow_suffix_skipping = false;
}

core::TechniqueResult MoodyTechnique::do_select_plan(
    const systems::SystemConfig& system, util::ThreadPool* pool) const {
  const auto result =
      core::optimize_intervals(model_, system, optimizer_options_, pool);
  core::TechniqueResult out;
  out.technique = name();
  out.plan = result.plan;
  out.predicted_time = result.expected_time;
  out.predicted_efficiency = result.efficiency;
  return out;
}

}  // namespace mlck::models

#pragma once

#include <memory>
#include <vector>

#include "core/technique.h"

namespace mlck::models {

/// The five techniques compared in paper Figure 2, in the paper's legend
/// order: Dauwe et al., Di et al., Moody et al., Benoit et al., Daly.
std::vector<std::unique_ptr<core::Technique>> figure2_techniques();

/// The three best techniques of Figures 3-6: Dauwe, Di, Moody.
std::vector<std::unique_ptr<core::Technique>> multilevel_techniques();

/// Creates a technique by short name: "dauwe", "di", "moody", "benoit",
/// "daly", "young". Throws std::out_of_range for unknown names.
std::unique_ptr<core::Technique> make_technique(const std::string& name);

}  // namespace mlck::models

#include "models/young.h"

#include <cmath>
#include <limits>

namespace mlck::models {

double young_optimal_interval(double delta, double mtbf) noexcept {
  return std::sqrt(2.0 * delta * mtbf);
}

double young_expected_time(double base_time, double tau, double delta,
                           double restart, double mtbf) noexcept {
  if (tau <= 0.0 || mtbf <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  const double lambda = 1.0 / mtbf;
  const double overhead = delta / tau + lambda * (tau / 2.0 + restart);
  return base_time * (1.0 + overhead);
}

double YoungModel::expected_time(const systems::SystemConfig& system,
                                 const core::CheckpointPlan& plan) const {
  if (plan.used_levels() != 1) {
    return std::numeric_limits<double>::infinity();
  }
  const auto level = static_cast<std::size_t>(plan.levels.front());
  return young_expected_time(system.base_time, plan.tau0,
                             system.checkpoint_cost[level],
                             system.restart_cost[level], system.mtbf);
}

core::TechniqueResult YoungTechnique::do_select_plan(
    const systems::SystemConfig& system, util::ThreadPool* /*pool*/) const {
  const int pfs = system.levels() - 1;
  const auto level = static_cast<std::size_t>(pfs);
  const double tau =
      young_optimal_interval(system.checkpoint_cost[level], system.mtbf);

  core::TechniqueResult result;
  result.technique = name();
  result.plan = core::CheckpointPlan::single_level(tau, pfs);
  result.predicted_time =
      young_expected_time(system.base_time, tau, system.checkpoint_cost[level],
                          system.restart_cost[level], system.mtbf);
  result.predicted_efficiency = system.base_time / result.predicted_time;
  return result;
}

}  // namespace mlck::models

#include "verify/selftest.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/dauwe_model.h"
#include "engine/evaluation.h"
#include "sim/trial_runner.h"
#include "stats/hypothesis.h"
#include "util/rng.h"

namespace mlck::verify {

namespace {

/// Stream offset separating Welch-system seeds from invariant-case seeds
/// in the derive_stream_seed(base_seed, stream) space.
constexpr std::uint64_t kWelchStreamBase = 1ull << 32;

std::string hex_seed(std::uint64_t seed) {
  std::ostringstream out;
  out << "0x" << std::hex << seed;
  return out.str();
}

std::string repro_command(const SelftestOptions& options, std::size_t index) {
  std::ostringstream out;
  out << "mlck selftest --seed=" << options.seed
      << " --cases=" << options.cases << " --case=" << index;
  // A law pool changes what each case *is* (the law is part of the draw),
  // so the replay must carry the same pool.
  if (!options.laws_flag.empty()) out << " --laws=" << options.laws_flag;
  return out.str();
}

void record(SelftestReport& report, const SelftestOptions& options,
            const VerifyCase& c, const char* phase, CheckResult result,
            std::ostream* log) {
  report.max_oracle_error = std::max(report.max_oracle_error, result.max_error);
  for (auto& failure : result.failures) {
    SelftestFailure f;
    f.phase = phase;
    f.case_index = c.index;
    f.case_seed = c.seed;
    f.check = std::move(failure.check);
    f.detail = std::move(failure.detail);
    f.repro = repro_command(options, c.index);
    if (log != nullptr) {
      *log << "FAIL [" << f.phase << "] case " << f.case_index << " seed "
           << hex_seed(f.case_seed) << ": " << f.check << " — " << f.detail
           << "\n  replay: " << f.repro << "\n";
    }
    report.failures.push_back(std::move(f));
  }
}

void run_invariant_cases(const SelftestOptions& options, SelftestReport& report,
                         std::ostream* log) {
  const std::size_t first =
      options.only_case >= 0 ? static_cast<std::size_t>(options.only_case) : 0;
  const std::size_t last = options.only_case >= 0 ? first + 1 : options.cases;
  for (std::size_t i = first; i < last && i < options.cases; ++i) {
    const VerifyCase c = make_case(options.seed, i, options.generator);
    ++report.cases_run;

    record(report, options, c, "oracle",
           check_oracle_agreement(c, options.tolerance), log);
    ++report.oracle_checked;
    record(report, options, c, "bit_identity", check_bit_identity(c), log);
    ++report.bit_identity_checked;
    record(report, options, c, "metamorphic", check_metamorphic(c), log);
    ++report.metamorphic_checked;
    if (options.dominance_stride > 0 && i % options.dominance_stride == 0) {
      core::OptimizerOptions grid;
      grid.coarse_tau_points = 12;
      grid.max_count = 8;
      grid.refine_rounds = 3;
      record(report, options, c, "dominance",
             check_optimizer_dominance(c, grid), log);
      ++report.dominance_checked;
    }
  }
}

void run_welch_validation(const SelftestOptions& options,
                          SelftestReport& report, util::ThreadPool* pool,
                          std::ostream* log) {
  // Gentler bounds than the invariant stream: the simulator walks every
  // failure event, so systems with minutes-scale MTBF and hours-scale
  // runs would dominate wall-clock without sharpening the test.
  GeneratorOptions gen = options.generator;
  gen.mtbf_min = std::max(gen.mtbf_min, 200.0);
  gen.cost_min = std::max(gen.cost_min, 0.05);
  gen.base_max = std::min(gen.base_max, 2000.0);

  // Every system is validated under every law of the pool: the model
  // re-optimizes per law, and the simulator draws the matching renewal
  // inter-arrivals. The exponential arm runs the exact pre-pool code path
  // (native Poisson source, same seeds), so default reports are stable.
  std::vector<VerifyLaw> laws = options.generator.laws;
  if (laws.empty()) laws.push_back(exponential_verify_law());
  for (const VerifyLaw& law : laws) report.welch_rejections_by_law[law.name];

  for (std::size_t i = 0; i < options.welch_systems; ++i) {
    const std::uint64_t seed =
        util::derive_stream_seed(options.seed, kWelchStreamBase + i);
    util::Rng rng(seed);
    const systems::SystemConfig system = random_system(rng, gen);

    for (const VerifyLaw& law : laws) {
      WelchValidation v;
      v.index = i;
      v.seed = seed;
      v.law = law.name;
      v.rel_tolerance = law.welch_rel_tolerance;
      v.levels = system.levels();
      v.mtbf = system.mtbf;
      v.base_time = system.base_time;

      const engine::EvaluationEngine engine(system, {}, law.family);
      core::OptimizerOptions opt;
      opt.coarse_tau_points = 24;
      opt.max_count = 16;
      opt.refine_rounds = 8;
      core::OptimizationResult best;
      try {
        best = engine.optimize(opt, pool);
      } catch (const std::runtime_error&) {
        v.skipped = true;
        v.skip_reason = "no feasible plan under the search grid";
        report.welch.push_back(std::move(v));
        continue;
      }
      v.plan = best.plan.to_string();
      v.predicted_time = best.expected_time;
      if (best.efficiency < 0.05) {
        v.skipped = true;
        v.skip_reason = "predicted efficiency below 0.05 (cap regime)";
        report.welch.push_back(std::move(v));
        continue;
      }

      sim::SimOptions sim_options;
      sim_options.max_time_factor = 50.0;
      const std::uint64_t sim_seed = util::derive_stream_seed(seed, 1);
      sim::TrialStats stats;
      if (law.family == nullptr) {
        stats = sim::run_trials(system, best.plan, options.trials, sim_seed,
                                sim_options, pool);
      } else {
        const auto interarrival = law.family->distribution(system.mtbf);
        stats = sim::run_trials_with_distribution(system, best.plan,
                                                  *interarrival,
                                                  options.trials, sim_seed,
                                                  sim_options, pool);
      }
      v.sim_mean = stats.total_time.mean;
      v.sim_stddev = stats.total_time.stddev;
      v.trials = stats.trials;
      v.capped_trials = stats.capped_trials;
      if (stats.capped_trials > 0) {
        v.skipped = true;
        v.skip_reason = "capped trials would bias the sample mean";
        report.welch.push_back(std::move(v));
        continue;
      }

      // One-sample z test in Welch clothing: the model arm is a
      // zero-variance "sample" at the predicted mean, so the pooled
      // standard error reduces to the simulator's.
      stats::Summary model_arm;
      model_arm.count = stats.trials;
      model_arm.mean = v.predicted_time;
      model_arm.min = v.predicted_time;
      model_arm.max = v.predicted_time;
      const stats::WelchResult welch =
          stats::welch_test(model_arm, stats.total_time);
      v.statistic = welch.statistic;
      v.p_two_sided = welch.p_two_sided;
      v.significant = welch.significant(options.alpha);
      v.rel_gap = v.sim_mean > 0.0
                      ? std::abs(v.predicted_time - v.sim_mean) / v.sim_mean
                      : 0.0;
      // Non-exponential laws: the simulator thins one renewal process by
      // severity while the model composes per-severity family members, so
      // a statistically resolvable (trials grow, band shrinks) yet small
      // gap is expected of a correct implementation. The law's equivalence
      // margin absorbs it; docs/MODELS.md documents the measured gaps.
      v.rejected = v.significant && v.rel_gap > v.rel_tolerance;
      if (v.rejected) {
        ++report.welch_rejections;
        ++report.welch_rejections_by_law[law.name];
        if (log != nullptr) {
          *log << (options.welch_gating ? "FAIL" : "NOTE")
               << " [welch] system " << i << " law " << law.name << " seed "
               << hex_seed(seed) << ": model " << v.predicted_time
               << " vs sim " << v.sim_mean << " +- " << v.sim_stddev
               << " (p=" << v.p_two_sided << ", gap "
               << 100.0 * v.rel_gap << "%)\n";
        }
      }
      report.welch.push_back(std::move(v));
    }
  }
}

}  // namespace

bool SelftestReport::passed() const noexcept {
  if (!failures.empty()) return false;
  if (options.welch_gating && welch_rejections > 0) return false;
  return true;
}

util::Json SelftestReport::to_json() const {
  util::Json::Object root;
  root["cases"] = util::Json(static_cast<long long>(options.cases));
  root["seed"] = util::Json(hex_seed(options.seed));
  root["trials"] = util::Json(static_cast<long long>(options.trials));
  root["alpha"] = util::Json(options.alpha);
  root["welch_gating"] = util::Json(options.welch_gating);
  root["cases_run"] = util::Json(static_cast<long long>(cases_run));

  util::Json::Object phases;
  phases["oracle"] = util::Json(static_cast<long long>(oracle_checked));
  phases["bit_identity"] =
      util::Json(static_cast<long long>(bit_identity_checked));
  phases["metamorphic"] =
      util::Json(static_cast<long long>(metamorphic_checked));
  phases["dominance"] = util::Json(static_cast<long long>(dominance_checked));
  root["checked"] = util::Json(std::move(phases));

  root["max_oracle_error"] = util::Json(max_oracle_error);

  util::Json::Array failure_list;
  for (const auto& f : failures) {
    util::Json::Object entry;
    entry["phase"] = util::Json(f.phase);
    entry["case"] = util::Json(static_cast<long long>(f.case_index));
    entry["case_seed"] = util::Json(hex_seed(f.case_seed));
    entry["check"] = util::Json(f.check);
    entry["detail"] = util::Json(f.detail);
    entry["repro"] = util::Json(f.repro);
    failure_list.push_back(util::Json(std::move(entry)));
  }
  root["failures"] = util::Json(std::move(failure_list));

  util::Json::Array welch_list;
  for (const auto& v : welch) {
    util::Json::Object entry;
    entry["index"] = util::Json(static_cast<long long>(v.index));
    entry["seed"] = util::Json(hex_seed(v.seed));
    entry["law"] = util::Json(v.law);
    entry["levels"] = util::Json(v.levels);
    entry["mtbf"] = util::Json(v.mtbf);
    entry["base_time"] = util::Json(v.base_time);
    entry["skipped"] = util::Json(v.skipped);
    if (v.skipped) {
      entry["skip_reason"] = util::Json(v.skip_reason);
    }
    if (!v.plan.empty()) {
      entry["plan"] = util::Json(v.plan);
      entry["predicted_time"] = util::Json(v.predicted_time);
    }
    if (v.trials > 0) {
      entry["sim_mean"] = util::Json(v.sim_mean);
      entry["sim_stddev"] = util::Json(v.sim_stddev);
      entry["trials"] = util::Json(static_cast<long long>(v.trials));
      entry["capped_trials"] =
          util::Json(static_cast<long long>(v.capped_trials));
    }
    if (!v.skipped) {
      entry["statistic"] = util::Json(v.statistic);
      entry["p_two_sided"] = util::Json(v.p_two_sided);
      entry["significant"] = util::Json(v.significant);
      entry["rel_gap"] = util::Json(v.rel_gap);
      entry["rel_tolerance"] = util::Json(v.rel_tolerance);
      entry["rejected"] = util::Json(v.rejected);
    }
    welch_list.push_back(util::Json(std::move(entry)));
  }
  root["welch"] = util::Json(std::move(welch_list));
  root["welch_rejections"] =
      util::Json(static_cast<long long>(welch_rejections));
  util::Json::Object by_law;
  for (const auto& [name, count] : welch_rejections_by_law) {
    by_law[name] = util::Json(static_cast<long long>(count));
  }
  root["welch_rejections_by_law"] = util::Json(std::move(by_law));
  root["passed"] = util::Json(passed());
  return util::Json(std::move(root));
}

SelftestReport run_selftest(const SelftestOptions& options,
                            util::ThreadPool* pool, std::ostream* log) {
  SelftestReport report;
  report.options = options;
  if (log != nullptr) {
    *log << "selftest: " << options.cases << " cases, seed "
         << hex_seed(options.seed) << "\n";
  }
  run_invariant_cases(options, report, log);
  if (log != nullptr) {
    *log << "invariants: " << report.cases_run << " cases, "
         << report.failures.size() << " failure(s), max oracle error "
         << report.max_oracle_error << " of band\n";
  }
  if (options.only_case < 0 && options.welch_systems > 0) {
    run_welch_validation(options, report, pool, log);
    if (log != nullptr) {
      *log << "welch: " << report.welch.size() << " system(s), "
           << report.welch_rejections << " rejection(s) at alpha "
           << options.alpha << (options.welch_gating ? " (gating)" : "")
           << "\n";
      if (report.welch_rejections_by_law.size() > 1) {
        for (const auto& [name, count] : report.welch_rejections_by_law) {
          *log << "  " << name << ": " << count << " rejection(s)\n";
        }
      }
    }
  }
  return report;
}

}  // namespace mlck::verify

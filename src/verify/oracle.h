#pragma once

#include "core/dauwe_model.h"
#include "core/plan.h"
#include "systems/system_config.h"

namespace mlck::verify {

/// Acceptance band for oracle-vs-implementation comparisons.
///
/// The quadrature primitives are accurate to ~1e-11 relative, but the
/// Eqns. 4-14 recursion *amplifies* input error: a relative perturbation
/// of tau_k moves gamma_k = e^{lambda tau_k} - 1 by a factor of roughly
/// max(1, lambda tau_k), and stages chain. The oracle therefore reports a
/// condition estimate (the product of those per-stage factors) and the
/// policy widens its relative band by it, up to `rel_cap`. Beyond the cap
/// the comparison still catches structural bugs (wrong term, wrong sign,
/// wrong binning) — just not last-digit ones.
struct TolerancePolicy {
  double rel = 1e-9;      ///< relative band for condition == 1
  double abs = 1e-9;      ///< absolute floor (minutes)
  double rel_cap = 1e-2;  ///< widest allowed relative band

  /// The relative band after widening by @p condition (>= 1).
  double effective_rel(double condition) const noexcept;

  /// True when @p value agrees with @p reference within the band. Two
  /// non-finite values agree iff they are the same infinity; NaN never
  /// agrees with anything.
  bool within(double value, double reference,
              double condition = 1.0) const noexcept;
};

/// Numeric-quadrature oracle for the model's transcendental primitives.
///
/// Every function below evaluates its quantity from the *definition* — an
/// adaptive-Simpson integral of the exponential failure density
/// lambda e^{-lambda x} — rather than from the closed forms in src/math
/// (expm1 rearrangements, series limits). The two derivations share no
/// code beyond libm, so agreement pins down both implementations.

/// P(t, X) of paper Eqn. 1: integral of the density over [0, t].
double oracle_failure_probability(double t, double rate);

/// e^{-Xt} via the tail integral over [t, t + 60/X]; the truncation error
/// is ~e^{-60} relative. Returns exactly 0 once the value underflows.
double oracle_survival(double t, double rate);

/// E(t, X) of paper Eqn. 2 as the conditional-mean quotient
/// (integral of x * density over [0, t]) / P(t, X).
double oracle_truncated_mean(double t, double rate);

/// Expected failed attempts before one success: the geometric mean
/// P / (1 - P) with both terms from quadrature.
double oracle_expected_retries(double t, double rate);

/// Failure-law selector for the law-aware oracle overloads below. `rate`
/// keeps the meaning it has throughout the model layer: the law is the
/// matching family member with mean 1 / rate (math::FailureLaw). The
/// non-exponential oracles integrate *substituted* densities — Weibull
/// through u = (x / lambda)^shape, log-normal through the standard-normal
/// z — so they share no tabulation or closed forms with src/math beyond
/// libm, which is what makes the agreement checks meaningful.
struct OracleLaw {
  enum class Kind { kExponential, kWeibull, kLogNormal };
  Kind kind = Kind::kExponential;
  double shape = 1.0;  ///< Weibull shape (ignored otherwise)
  double sigma = 1.0;  ///< LogNormal sigma (ignored otherwise)
};

/// Law-aware quadrature primitives; with an exponential @p law each
/// forwards to the function of the same name above (numerically
/// identical, not merely close).
double oracle_failure_probability(double t, double rate,
                                  const OracleLaw& law);
double oracle_survival(double t, double rate, const OracleLaw& law);
double oracle_truncated_mean(double t, double rate, const OracleLaw& law);
double oracle_expected_retries(double t, double rate, const OracleLaw& law);

/// Independent evaluation of the full Dauwe recursion (Eqns. 4-14
/// including the restart-from-scratch wrap) for one plan, built on the
/// quadrature primitives with its own severity binning and naive
/// per-stage accumulation. Returns +inf for infeasible plans, exactly as
/// the production paths do.
///
/// When @p condition is non-null it receives the error-amplification
/// estimate described on TolerancePolicy (>= 1; meaningful only for
/// finite results).
double oracle_expected_time(const systems::SystemConfig& system,
                            const core::CheckpointPlan& plan,
                            const core::DauweOptions& options = {},
                            double* condition = nullptr);

/// Law-aware recursion: every per-level rate is interpreted through
/// @p law's family, matching DauweModel with the corresponding
/// math::FailureLaw. The exponential @p law runs the exact code path of
/// the overload above.
double oracle_expected_time(const systems::SystemConfig& system,
                            const core::CheckpointPlan& plan,
                            const core::DauweOptions& options,
                            double* condition, const OracleLaw& law);

}  // namespace mlck::verify

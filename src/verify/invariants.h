#pragma once

#include <string>
#include <vector>

#include "core/optimizer.h"
#include "verify/generators.h"
#include "verify/oracle.h"

namespace mlck::verify {

/// One failed check: which invariant broke and the concrete numbers.
struct CheckFailure {
  std::string check;
  std::string detail;
};

/// Outcome of one invariant family on one case.
struct CheckResult {
  std::vector<CheckFailure> failures;
  /// Largest scaled oracle error observed (oracle checks only; 0 elsewhere).
  double max_error = 0.0;

  bool ok() const noexcept { return failures.empty(); }
  void fail(std::string check, std::string detail);
  void merge(CheckResult other);
};

/// Oracle agreement: DauweModel::expected_time (under the case's failure
/// law) against the quadrature oracle within the (condition-widened)
/// tolerance policy, on the case's plan and on a handful of tau0 variants
/// around it. Non-exponential cases pre-widen the band to the tabulated
/// law's documented accuracy (docs/MODELS.md).
CheckResult check_oracle_agreement(const VerifyCase& c,
                                   const TolerancePolicy& policy = {});

/// Cross-implementation bit-identity: DauweModel, DauweKernel's per-plan
/// entry points, the staged Cursor drive, and the cached EvaluationEngine
/// — all built with the case's failure law — must produce *bit-equal*
/// expected times and predictions on the case. Every comparison is ==,
/// never a tolerance.
CheckResult check_bit_identity(const VerifyCase& c);

/// Metamorphic properties of the closed-form model on the case:
///   * doubling every failure rate (halving MTBF) never decreases the
///     expected time;
///   * scaling every checkpoint cost up never decreases it;
///   * scaling T_B up never decreases it (checked when the base plan is
///     feasible; a longer application can only add work);
///   * expected time is never below T_B, and never NaN.
CheckResult check_metamorphic(const VerifyCase& c);

/// Level-skip dominance (paper Sec. IV-F generalized): the optimizer with
/// suffix skipping enabled searches a superset of the plans available
/// without it, so its selected expected time can never be worse. Runs two
/// small-grid searches on the case's system.
CheckResult check_optimizer_dominance(
    const VerifyCase& c, const core::OptimizerOptions& grid = {});

}  // namespace mlck::verify

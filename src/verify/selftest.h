#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/thread_pool.h"
#include "verify/generators.h"
#include "verify/invariants.h"
#include "verify/oracle.h"

namespace mlck::verify {

/// Configuration for one randomized self-verification run.
struct SelftestOptions {
  std::size_t cases = 200;    ///< generated invariant cases
  std::uint64_t seed = 42;    ///< base seed of the case stream
  /// Replay exactly one case of the stream (the value printed in a
  /// failure's repro line); negative runs the whole stream.
  long long only_case = -1;

  /// Every stride-th case additionally runs the (much more expensive)
  /// optimizer-dominance check.
  std::size_t dominance_stride = 8;

  /// Model-vs-simulator statistical validation: number of systems, trials
  /// per system, and the two-sided rejection level. 600 trials per system
  /// since the batch simulation engine (docs/PERFORMANCE.md, simulation
  /// tier) made them cheaper than 200 were before it: the tighter
  /// Monte-Carlo band is what lets the non-exponential equivalence
  /// margins sit at 0.10 instead of 0.15 (docs/MODELS.md).
  std::size_t welch_systems = 8;
  std::size_t trials = 600;
  double alpha = 0.01;
  /// When true, Welch rejections fail the run. Off by default: the model
  /// is a *mean-field approximation*, so on harsh systems a correct
  /// implementation still rejects (see docs/TESTING.md).
  bool welch_gating = false;

  /// The exact `--laws=` text the run was invoked with (empty for the
  /// default exponential-only stream). Replay commands must carry it:
  /// with a law pool active each case additionally draws its law.
  std::string laws_flag;

  TolerancePolicy tolerance;
  GeneratorOptions generator;
};

/// One invariant violation, with everything needed to replay it.
struct SelftestFailure {
  std::string phase;       ///< oracle | bit_identity | metamorphic | dominance
  std::size_t case_index = 0;
  std::uint64_t case_seed = 0;  ///< the case's own stream seed
  std::string check;
  std::string detail;
  std::string repro;       ///< one-line CLI command replaying this case
};

/// One model-vs-simulator comparison (one system under one failure law).
struct WelchValidation {
  std::size_t index = 0;
  std::uint64_t seed = 0;
  std::string law = "exponential";
  int levels = 0;
  double mtbf = 0.0;
  double base_time = 0.0;
  std::string plan;
  double predicted_time = 0.0;
  double sim_mean = 0.0;
  double sim_stddev = 0.0;
  std::size_t trials = 0;
  std::size_t capped_trials = 0;
  double statistic = 0.0;
  double p_two_sided = 1.0;
  /// |predicted - sim_mean| / sim_mean, and the law's equivalence margin.
  double rel_gap = 0.0;
  double rel_tolerance = 0.0;
  bool significant = false;  ///< Welch p below alpha
  /// Final verdict: significant AND the gap exceeds the law's margin.
  /// (Exponential margin is 0, so rejected == significant there.)
  bool rejected = false;
  bool skipped = false;
  std::string skip_reason;
};

/// Aggregate outcome of a selftest run.
struct SelftestReport {
  SelftestOptions options;
  std::size_t cases_run = 0;
  std::size_t oracle_checked = 0;
  std::size_t bit_identity_checked = 0;
  std::size_t metamorphic_checked = 0;
  std::size_t dominance_checked = 0;
  /// Largest oracle deviation observed, as a fraction of the acceptance
  /// band (1.0 == right at the tolerance edge).
  double max_oracle_error = 0.0;
  std::vector<SelftestFailure> failures;
  std::vector<WelchValidation> welch;
  std::size_t welch_rejections = 0;
  /// Per-law rejection counts over the Welch phase (every law of the pool
  /// appears, zero or not); keyed by VerifyLaw::name.
  std::map<std::string, std::size_t> welch_rejections_by_law;

  /// Invariants all held, and (only when gating is on) no Welch rejection.
  bool passed() const noexcept;

  /// Machine-readable report (the CI artifact). Seeds are hex strings so
  /// no 64-bit value is squeezed through a double.
  util::Json to_json() const;
};

/// Runs the full harness: generated invariant cases (oracle agreement,
/// bit-identity, metamorphic properties, periodic optimizer dominance)
/// followed by the model-vs-simulator Welch validation. @p log, when
/// non-null, receives one progress line per phase and per failure.
SelftestReport run_selftest(const SelftestOptions& options,
                            util::ThreadPool* pool = nullptr,
                            std::ostream* log = nullptr);

}  // namespace mlck::verify

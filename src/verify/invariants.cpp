#include "verify/invariants.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/dauwe_kernel.h"
#include "core/dauwe_model.h"
#include "engine/evaluation.h"

namespace mlck::verify {

namespace {

std::string fmt(double v) {
  std::ostringstream out;
  out << std::setprecision(17) << v << " (" << std::hexfloat << v << ")";
  return out.str();
}

/// Bit-level equality: the only comparison bit-identity checks may use.
/// Treats -0.0 != +0.0 and NaN == same-payload NaN, which is exactly the
/// "same arithmetic executed" claim being tested.
bool bits_equal(double a, double b) noexcept {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

void expect_bits(CheckResult& result, const char* check, const char* what,
                 double a, double b) {
  if (bits_equal(a, b)) return;
  std::ostringstream detail;
  detail << what << ": " << fmt(a) << " vs " << fmt(b);
  result.fail(check, detail.str());
}

double pattern_of(const core::CheckpointPlan& plan) noexcept {
  double pattern = 1.0;
  for (std::size_t k = 0; k + 1 < plan.levels.size(); ++k) {
    pattern *= static_cast<double>(plan.counts[k] + 1);
  }
  return pattern;
}

/// Non-strict ordering with a tiny multiplicative slack for the last-bit
/// noise of re-deriving effective rates from a mutated system. Infinities
/// order naturally (inf >= anything, inf >= inf).
bool non_decreasing(double base, double worse) noexcept {
  if (std::isnan(base) || std::isnan(worse)) return false;
  if (std::isinf(base)) return std::isinf(worse) && worse > 0.0;
  return worse >= base * (1.0 - 1e-12);
}

void expect_non_decreasing(CheckResult& result, const char* check,
                           const char* what, double base, double worse) {
  if (non_decreasing(base, worse)) return;
  std::ostringstream detail;
  detail << what << ": base " << fmt(base) << " -> " << fmt(worse);
  result.fail(check, detail.str());
}

}  // namespace

void CheckResult::fail(std::string check, std::string detail) {
  failures.push_back({std::move(check), std::move(detail)});
}

void CheckResult::merge(CheckResult other) {
  for (auto& f : other.failures) failures.push_back(std::move(f));
  max_error = std::max(max_error, other.max_error);
}

CheckResult check_oracle_agreement(const VerifyCase& c,
                                   const TolerancePolicy& base_policy) {
  CheckResult result;
  const core::DauweModel model(c.options, c.law.family);
  // Non-exponential laws answer from the tabulated interpolant, whose
  // documented accuracy (docs/MODELS.md) is ~1e-4 on cdf/truncated mean
  // and ~1e-3 on the retry factor — far above quadrature noise. Widen the
  // pre-condition band accordingly, and let the cap reach 100%: the
  // recursion amplifies the tabulation error by the condition estimate,
  // so past condition ~1e3 a *correct* implementation drifts by tens of
  // percent and only order-of-magnitude divergence (a structural bug)
  // remains meaningful. The exponential stream keeps its tight policy —
  // there both sides run correlated closed forms.
  TolerancePolicy policy = base_policy;
  if (c.law.family != nullptr) {
    policy.rel = std::max(policy.rel, 1e-3);
    policy.abs = std::max(policy.abs, 1e-6);
    policy.rel_cap = std::max(policy.rel_cap, 1.0);
  }
  // The case's plan plus tau0 variants on both sides of it, so the oracle
  // also sees the neighboring feasibility regime.
  const double factors[] = {0.6, 1.0, 1.7};
  for (const double f : factors) {
    core::CheckpointPlan plan = c.plan;
    plan.tau0 *= f;
    double condition = 1.0;
    const double reference =
        oracle_expected_time(c.system, plan, c.options, &condition,
                             c.law.oracle);
    const double value = model.expected_time(c.system, plan);
    // Cap-regime saturation: deep in the infeasible regime the retry
    // factors are ~e^{hundreds} and the derivations saturate to inf at
    // different spots (closed forms overflow, tabulated survival
    // underflows, the oracle cuts its substitution windows). Beyond any
    // physical scale "absurdly large" and "infinite" are the same
    // verdict, so compare nothing there.
    constexpr double kSaturated = 1e50;
    if (value > kSaturated && reference > kSaturated) continue;
    if (std::isfinite(value) && std::isfinite(reference)) {
      const double band =
          policy.abs + policy.effective_rel(condition) *
                           std::max(std::abs(value), std::abs(reference));
      result.max_error =
          std::max(result.max_error, std::abs(value - reference) / band);
    }
    if (policy.within(value, reference, condition)) continue;
    std::ostringstream detail;
    detail << "tau0=" << fmt(plan.tau0) << " model=" << fmt(value)
           << " oracle=" << fmt(reference) << " condition=" << condition
           << " rel_band=" << policy.effective_rel(condition);
    result.fail("oracle_agreement", detail.str());
  }
  return result;
}

CheckResult check_bit_identity(const VerifyCase& c) {
  CheckResult result;
  const core::DauweModel model(c.options, c.law.family);
  const core::DauweKernel kernel(c.system, c.plan.levels, c.options,
                                 c.law.family);
  const engine::EvaluationEngine engine(c.system, c.options, c.law.family);

  const double t_model = model.expected_time(c.system, c.plan);
  const double t_kernel = kernel.expected_time(c.plan.tau0, c.plan.counts);
  const double t_engine = engine.expected_time(c.plan);

  // Drive the staged cursor by hand, the way the optimizer sweep does.
  auto cursor = kernel.cursor();
  cursor.begin(c.plan.tau0);
  for (std::size_t k = 0; k + 1 < c.plan.levels.size(); ++k) {
    cursor.push_stage(static_cast<int>(k), c.plan.counts[k]);
  }
  const double t_cursor = cursor.finish_expected_time(pattern_of(c.plan));

  expect_bits(result, "bit_identity", "model vs kernel", t_model, t_kernel);
  expect_bits(result, "bit_identity", "model vs cursor", t_model, t_cursor);
  expect_bits(result, "bit_identity", "model vs engine", t_model, t_engine);

  const core::Prediction p_model = model.predict(c.system, c.plan);
  const core::Prediction p_kernel = kernel.predict(c.plan);
  const core::Prediction p_engine = engine.predict(c.plan);
  const auto compare_prediction = [&](const char* pair,
                                      const core::Prediction& a,
                                      const core::Prediction& b) {
    const std::pair<const char*, std::pair<double, double>> fields[] = {
        {"expected_time", {a.expected_time, b.expected_time}},
        {"efficiency", {a.efficiency, b.efficiency}},
        {"compute", {a.breakdown.compute, b.breakdown.compute}},
        {"checkpoint_ok", {a.breakdown.checkpoint_ok, b.breakdown.checkpoint_ok}},
        {"checkpoint_failed",
         {a.breakdown.checkpoint_failed, b.breakdown.checkpoint_failed}},
        {"restart_ok", {a.breakdown.restart_ok, b.breakdown.restart_ok}},
        {"restart_failed",
         {a.breakdown.restart_failed, b.breakdown.restart_failed}},
        {"rework_compute",
         {a.breakdown.rework_compute, b.breakdown.rework_compute}},
        {"rework_checkpoint",
         {a.breakdown.rework_checkpoint, b.breakdown.rework_checkpoint}},
        {"scratch_rework",
         {a.breakdown.scratch_rework, b.breakdown.scratch_rework}},
    };
    for (const auto& [name, values] : fields) {
      std::ostringstream what;
      what << pair << " predict." << name;
      expect_bits(result, "bit_identity", what.str().c_str(), values.first,
                  values.second);
    }
  };
  compare_prediction("model vs kernel", p_model, p_kernel);
  compare_prediction("model vs engine", p_model, p_engine);
  return result;
}

CheckResult check_metamorphic(const VerifyCase& c) {
  CheckResult result;
  const core::DauweModel model(c.options, c.law.family);
  const double base = model.expected_time(c.system, c.plan);
  if (std::isnan(base)) {
    result.fail("metamorphic", "expected_time is NaN on the base case");
    return result;
  }
  if (std::isfinite(base) && base < c.system.base_time * (1.0 - 1e-12)) {
    std::ostringstream detail;
    detail << "expected_time " << fmt(base) << " below T_B "
           << fmt(c.system.base_time);
    result.fail("metamorphic", detail.str());
  }

  {
    // Halving the MTBF doubles every severity rate; more failures can
    // never speed the application up. Feasibility is rate-independent.
    systems::SystemConfig harsher = c.system;
    harsher.mtbf *= 0.5;
    expect_non_decreasing(result, "metamorphic", "mtbf x0.5", base,
                          model.expected_time(harsher, c.plan));
  }
  {
    // Costlier checkpoints (and restarts) can never speed it up either.
    systems::SystemConfig costlier = c.system;
    for (double& d : costlier.checkpoint_cost) d *= 2.0;
    for (double& r : costlier.restart_cost) r *= 2.0;
    expect_non_decreasing(result, "metamorphic", "costs x2", base,
                          model.expected_time(costlier, c.plan));
  }
  if (std::isfinite(base)) {
    // A longer application only adds top-level periods; checked only from
    // a feasible base because scaling T_B can turn infeasible feasible.
    systems::SystemConfig longer = c.system;
    longer.base_time *= 2.0;
    expect_non_decreasing(result, "metamorphic", "base_time x2", base,
                          model.expected_time(longer, c.plan));
  }
  return result;
}

CheckResult check_optimizer_dominance(const VerifyCase& c,
                                      const core::OptimizerOptions& grid) {
  CheckResult result;
  const core::DauweModel model(c.options, c.law.family);
  core::OptimizerOptions with = grid;
  with.allow_suffix_skipping = true;
  core::OptimizerOptions without = grid;
  without.allow_suffix_skipping = false;

  const auto best = [&](const core::OptimizerOptions& opt,
                        bool& feasible) -> double {
    try {
      feasible = true;
      return core::optimize_intervals(model, c.system, opt).expected_time;
    } catch (const std::runtime_error&) {
      feasible = false;
      return 0.0;
    }
  };
  bool with_feasible = false;
  bool without_feasible = false;
  const double t_with = best(with, with_feasible);
  const double t_without = best(without, without_feasible);

  if (!without_feasible) return result;  // nothing to dominate
  if (!with_feasible) {
    result.fail("optimizer_dominance",
                "suffix-skipping search found no feasible plan but the "
                "restricted search did");
    return result;
  }
  // The skipping search enumerates a superset of the non-skipping plan
  // space on the identical grid, so its minimum cannot be worse.
  if (t_with <= t_without) return result;
  std::ostringstream detail;
  detail << "best with skipping " << fmt(t_with) << " > best without "
         << fmt(t_without);
  result.fail("optimizer_dominance", detail.str());
  return result;
}

}  // namespace mlck::verify

#include "verify/oracle.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "math/integrate.h"

namespace mlck::verify {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Quadrature tolerances are absolute, so they must scale with the
/// integral's magnitude: P(t, X) ~ min(1, Xt) for small windows.
double probability_scale(double u) noexcept { return std::min(1.0, u); }

// ---- Weibull via the u = (x / lambda)^shape substitution ----
//
// With u substituted, the density becomes the *unit exponential* e^{-u}:
//   P(t)            = integral_0^{u_t} e^{-u} du,  u_t = (t / lambda)^shape
//   int_0^t x f dx  = lambda * integral_0^{u_t} u^{1/shape} e^{-u} du
// so the unit-mean domain policy (cap 60, split 8 — integration_domain
// with mean 1) applies verbatim in u-space, and nothing here touches the
// Weibull closed forms or tabulation in src/math.

double weibull_scale_for(double rate, double shape) {
  return (1.0 / rate) / std::tgamma(1.0 + 1.0 / shape);
}

double weibull_p(double t, double rate, double shape) {
  if (t <= 0.0 || rate <= 0.0) return 0.0;
  const double u_t = std::pow(t / weibull_scale_for(rate, shape), shape);
  const auto density = [](double u) { return std::exp(-u); };
  const double b = math::integration_domain(u_t, 1.0).cap;
  const double tol = std::max(1e-300, 1e-13 * probability_scale(u_t));
  return std::min(1.0, math::integrate(density, 0.0, b, tol));
}

double weibull_s(double t, double rate, double shape) {
  if (t <= 0.0 || rate <= 0.0) return 1.0;
  const double u_t = std::pow(t / weibull_scale_for(rate, shape), shape);
  if (u_t >= 745.0) return 0.0;  // e^{-u_t} underflows double
  const auto density = [](double u) { return std::exp(-u); };
  const double tol = std::max(1e-300, 1e-13 * std::exp(-u_t));
  return math::integrate(density, u_t, u_t + 60.0, tol);
}

double weibull_tmean(double t, double rate, double shape) {
  if (t <= 0.0) return 0.0;
  if (rate <= 0.0) return 0.5 * t;
  const double p = weibull_p(t, rate, shape);
  if (p <= 0.0) return 0.5 * t;
  const double lambda = weibull_scale_for(rate, shape);
  const double u_t = std::pow(t / lambda, shape);
  const double inv = 1.0 / shape;
  const auto weighted = [inv](double u) {
    return std::pow(u, inv) * std::exp(-u);
  };
  const math::IntegrationDomain dom = math::integration_domain(u_t, 1.0);
  // Small windows: integral ~ u_t^{1 + 1/shape} / (1 + 1/shape); large
  // windows: Gamma(1 + 1/shape) (the full first moment in u-space).
  const double tol = std::max(
      1e-300, 0.5e-13 * std::min(std::pow(u_t, 1.0 + inv) / (1.0 + inv),
                                 std::tgamma(1.0 + inv)));
  double mass = math::integrate(weighted, 0.0, dom.split, tol);
  if (dom.cap > dom.split) {
    mass += math::integrate(weighted, dom.split, dom.cap, tol);
  }
  return lambda * mass / p;
}

// ---- Log-normal via the z = (ln x - mu) / sigma substitution ----
//
// With z substituted the density becomes the standard normal phi(z), and
// the partial first moment integrand e^{mu + sigma z} phi(z) — a shifted
// Gaussian bump peaked at z = sigma. |z| beyond ~38 underflows phi, so
// the window [-40, 40] (shifted by sigma for the moment) loses nothing
// representable. Landmarks at the peak and +-8 sigmas keep the adaptive
// subdivision from terminating on an apparent-zero first estimate when
// the bump hides between the initial Simpson samples.

constexpr double kZLimit = 40.0;
constexpr double kSqrt2 = 1.4142135623730951;

double phi(double z) {
  constexpr double kSqrt2Pi = 2.5066282746310002;
  return std::exp(-0.5 * z * z) / kSqrt2Pi;
}

/// Integral of @p f over [a, b] split at every landmark inside (a, b).
template <typename F>
double integrate_marked(const F& f, double a, double b, double tol,
                        std::initializer_list<double> marks) {
  if (!(b > a)) return 0.0;
  double total = 0.0;
  double lo = a;
  for (const double m : marks) {  // marks must be ascending
    if (m <= lo || m >= b) continue;
    total += math::integrate(f, lo, m, tol);
    lo = m;
  }
  total += math::integrate(f, lo, b, tol);
  return total;
}

double lognormal_mu_for(double rate, double sigma) {
  return std::log(1.0 / rate) - 0.5 * sigma * sigma;
}

double lognormal_p(double t, double rate, double sigma) {
  if (t <= 0.0 || rate <= 0.0) return 0.0;
  const double z_t = (std::log(t) - lognormal_mu_for(rate, sigma)) / sigma;
  // Deeper than z = -8 the window mass (< 1e-15) is beneath anything the
  // recursion can resolve — every use multiplies it into a same-order
  // retry factor — while the tolerance needed to resolve it from
  // quadrature explodes the subdivision (tens of seconds per call).
  // Treat it like underflowed exponential survival: exactly zero, which
  // also routes lognormal_tmean to its t/2 convention.
  if (z_t <= -8.0) return 0.0;
  const double zc = std::min(z_t, kZLimit);
  // The closed-form erfc scales the *tolerance* only; the value still
  // comes from quadrature.
  const double scale = 0.5 * std::erfc(-zc / kSqrt2);
  const double tol = std::max(1e-300, 1e-13 * scale);
  return std::min(
      1.0, integrate_marked(phi, -kZLimit, zc, tol, {-8.0, 0.0, 8.0}));
}

double lognormal_s(double t, double rate, double sigma) {
  if (t <= 0.0 || rate <= 0.0) return 1.0;
  const double z_t = (std::log(t) - lognormal_mu_for(rate, sigma)) / sigma;
  if (z_t >= kZLimit) return 0.0;
  const double za = std::max(z_t, -kZLimit);
  const double scale = 0.5 * std::erfc(z_t / kSqrt2);
  const double tol = std::max(1e-300, 1e-13 * scale);
  return std::min(
      1.0, integrate_marked(phi, za, kZLimit, tol, {-8.0, 0.0, 8.0}));
}

double lognormal_tmean(double t, double rate, double sigma) {
  if (t <= 0.0) return 0.0;
  if (rate <= 0.0) return 0.5 * t;
  const double p = lognormal_p(t, rate, sigma);
  if (p <= 0.0) return 0.5 * t;
  const double mu = lognormal_mu_for(rate, sigma);
  const double z_t = (std::log(t) - mu) / sigma;
  const auto weighted = [mu, sigma](double z) {
    return std::exp(mu + sigma * z) * phi(z);
  };
  const double lo = sigma - kZLimit;
  const double zc = std::min(z_t, sigma + kZLimit);
  const double scale = std::exp(mu + 0.5 * sigma * sigma) *  // the mean
                       0.5 * std::erfc(-(zc - sigma) / kSqrt2);
  const double tol = std::max(1e-300, 0.5e-13 * scale);
  const double mass = integrate_marked(
      weighted, lo, zc, tol, {sigma - 8.0, sigma, sigma + 8.0});
  return mass / p;
}

}  // namespace

double TolerancePolicy::effective_rel(double condition) const noexcept {
  return std::min(rel_cap, rel * std::max(1.0, condition));
}

bool TolerancePolicy::within(double value, double reference,
                             double condition) const noexcept {
  if (std::isnan(value) || std::isnan(reference)) return false;
  if (std::isinf(value) || std::isinf(reference)) return value == reference;
  const double band =
      abs + effective_rel(condition) *
                std::max(std::abs(value), std::abs(reference));
  return std::abs(value - reference) <= band;
}

double oracle_failure_probability(double t, double rate) {
  if (t <= 0.0 || rate <= 0.0) return 0.0;
  const auto density = [rate](double x) { return rate * std::exp(-rate * x); };
  const double tol = 1e-13 * probability_scale(rate * t);
  // Beyond the shared cap (math::integration_domain, 60 means) the
  // remaining mass is ~e^{-60}, far below the tolerance; capping there
  // keeps the decay scale a visible fraction of the integration interval
  // however large t grows.
  const double b = math::integration_domain(t, 1.0 / rate).cap;
  return std::min(1.0, math::integrate(density, 0.0, b, tol));
}

double oracle_survival(double t, double rate) {
  if (t <= 0.0 || rate <= 0.0) return 1.0;
  const double u = rate * t;
  if (u >= 745.0) return 0.0;  // e^{-u} underflows double
  const auto density = [rate](double x) { return rate * std::exp(-rate * x); };
  // The tail integral's magnitude is e^{-u}; use that only to *scale the
  // tolerance* (the value itself still comes from quadrature).
  const double scale = std::exp(-u);
  const double tol = std::max(1e-300, 1e-13 * scale);
  return math::integrate(density, t, t + 60.0 / rate, tol);
}

double oracle_truncated_mean(double t, double rate) {
  if (t <= 0.0) return 0.0;
  if (rate <= 0.0) return 0.5 * t;  // uniform limit, as in math/exponential
  const double p = oracle_failure_probability(t, rate);
  if (p <= 0.0) return 0.5 * t;
  const auto weighted = [rate](double x) {
    return x * rate * std::exp(-rate * x);
  };
  // The integrand peaks at x = 1/rate and f(0) = f(inf) = 0, so on a long
  // interval the whole mass can hide between the first Simpson samples
  // and the subdivision would terminate on an apparent-zero estimate.
  // The shared domain policy (math::integration_domain) caps the domain
  // at the effective support (mass beyond 60 means is ~e^{-60}) and
  // splits bulk from tail so the peak always sits within a factor of 8 of
  // an integration endpoint.
  const math::IntegrationDomain dom = math::integration_domain(t, 1.0 / rate);
  const double tol =
      0.5e-13 * probability_scale(rate * t) * std::min(t, 1.0 / rate);
  double mass = math::integrate(weighted, 0.0, dom.split, tol);
  if (dom.cap > dom.split) {
    mass += math::integrate(weighted, dom.split, dom.cap, tol);
  }
  return mass / p;
}

double oracle_expected_retries(double t, double rate) {
  if (t <= 0.0 || rate <= 0.0) return 0.0;
  const double s = oracle_survival(t, rate);
  if (s <= 0.0) return kInf;
  return oracle_failure_probability(t, rate) / s;
}

double oracle_failure_probability(double t, double rate,
                                  const OracleLaw& law) {
  switch (law.kind) {
    case OracleLaw::Kind::kExponential:
      return oracle_failure_probability(t, rate);
    case OracleLaw::Kind::kWeibull: return weibull_p(t, rate, law.shape);
    case OracleLaw::Kind::kLogNormal: return lognormal_p(t, rate, law.sigma);
  }
  return oracle_failure_probability(t, rate);
}

double oracle_survival(double t, double rate, const OracleLaw& law) {
  switch (law.kind) {
    case OracleLaw::Kind::kExponential: return oracle_survival(t, rate);
    case OracleLaw::Kind::kWeibull: return weibull_s(t, rate, law.shape);
    case OracleLaw::Kind::kLogNormal: return lognormal_s(t, rate, law.sigma);
  }
  return oracle_survival(t, rate);
}

double oracle_truncated_mean(double t, double rate, const OracleLaw& law) {
  switch (law.kind) {
    case OracleLaw::Kind::kExponential:
      return oracle_truncated_mean(t, rate);
    case OracleLaw::Kind::kWeibull: return weibull_tmean(t, rate, law.shape);
    case OracleLaw::Kind::kLogNormal:
      return lognormal_tmean(t, rate, law.sigma);
  }
  return oracle_truncated_mean(t, rate);
}

double oracle_expected_retries(double t, double rate, const OracleLaw& law) {
  if (law.kind == OracleLaw::Kind::kExponential) {
    return oracle_expected_retries(t, rate);
  }
  if (t <= 0.0 || rate <= 0.0) return 0.0;
  const double s = oracle_survival(t, rate, law);
  if (s <= 0.0) return kInf;
  return oracle_failure_probability(t, rate, law) / s;
}

double oracle_expected_time(const systems::SystemConfig& system,
                            const core::CheckpointPlan& plan,
                            const core::DauweOptions& options,
                            double* condition) {
  return oracle_expected_time(system, plan, options, condition, OracleLaw{});
}

double oracle_expected_time(const systems::SystemConfig& system,
                            const core::CheckpointPlan& plan,
                            const core::DauweOptions& options,
                            double* condition, const OracleLaw& law) {
  plan.validate(system);
  if (condition != nullptr) *condition = 1.0;
  const int K = plan.used_levels();

  // Independent severity binning: a severity-s failure restarts from the
  // lowest used level >= s; severities above the top used level restart
  // the application from scratch (paper Sec. III-B).
  std::vector<double> lambda(static_cast<std::size_t>(K), 0.0);
  double scratch_lambda = 0.0;
  for (int s = 0; s < system.levels(); ++s) {
    bool binned = false;
    for (int k = 0; k < K; ++k) {
      if (plan.levels[static_cast<std::size_t>(k)] >= s) {
        lambda[static_cast<std::size_t>(k)] += system.lambda(s);
        binned = true;
        break;
      }
    }
    if (!binned) scratch_lambda += system.lambda(s);
  }
  const double lambda_total = system.lambda_total();

  // The Eqns. 4-14 recursion, one stage per used level, every
  // transcendental from quadrature.
  std::vector<double> tau(static_cast<std::size_t>(K));
  std::vector<double> gamma(static_cast<std::size_t>(K));
  std::vector<double> lost_share(static_cast<std::size_t>(K));
  tau[0] = plan.tau0;
  double pattern = 1.0;
  for (std::size_t k = 0; k + 1 < static_cast<std::size_t>(K); ++k) {
    pattern *= static_cast<double>(plan.counts[k] + 1);
  }
  const double top_periods = system.base_time / (plan.tau0 * pattern);
  if (!(top_periods >= 1.0)) return kInf;  // Eqn. 3 solution-space bound

  double amplification = 1.0;
  double lambda_c = 0.0;
  double total = kInf;
  for (int k = 0; k < K; ++k) {
    const auto ki = static_cast<std::size_t>(k);
    if (!std::isfinite(tau[ki])) return kInf;  // a stage overflowed
    lambda_c += lambda[ki];
    gamma[ki] = oracle_expected_retries(tau[ki], lambda[ki], law);  // Eqn. 5
    const double e_tau = oracle_truncated_mean(tau[ki], lambda[ki], law);
    lost_share[ki] = tau[ki] + gamma[ki] * e_tau;
    amplification *= std::max(1.0, lambda[ki] * tau[ki]);

    double m, c;
    if (k + 1 < K) {
      m = static_cast<double>(plan.counts[ki] + 1);
      c = static_cast<double>(plan.counts[ki]);
    } else {
      // Top level: N_L periods, one fewer checkpoint (Eqn. 3 convention).
      m = top_periods;
      c = top_periods - 1.0;
    }
    const auto level = static_cast<std::size_t>(plan.levels[ki]);
    const double delta = system.checkpoint_cost[level];
    const double restart = system.restart_cost[level];
    const auto share = [&](std::size_t j) {
      return options.renormalize_severity_shares ? lambda[j] / lambda_c
                                                 : lambda[j] / lambda_total;
    };

    const double t_ck_ok = c * delta;  // Eqn. 7
    const double alpha =               // Eqn. 8
        options.checkpoint_failures
            ? c * oracle_expected_retries(delta, lambda_c, law)
            : 0.0;
    const double t_ck_fail =
        alpha * oracle_truncated_mean(delta, lambda_c, law);
    double lost = 0.0;  // Eqn. 10
    for (std::size_t j = 0; j <= ki; ++j) lost += lost_share[j] * share(j);
    const double t_w_ck = alpha * lost;
    const double t_w_tau = m * gamma[ki] * e_tau;  // Eqn. 6
    const double beta =                            // Eqn. 11
        share(ki) * alpha + gamma[ki] * (share(ki) * alpha + m);
    const double t_r_ok = beta * restart;
    const double zeta =  // Eqn. 12
        options.restart_failures
            ? beta * oracle_expected_retries(restart, lambda_c, law)
            : 0.0;
    const double t_r_fail =
        zeta * oracle_truncated_mean(restart, lambda_c, law);

    const double out =  // Eqn. 4
        m * tau[ki] + t_ck_ok + t_ck_fail + t_r_ok + t_r_fail + t_w_tau +
        t_w_ck;
    if (k + 1 < K) {
      tau[ki + 1] = out;
    } else {
      total = out;
    }
  }
  if (!std::isfinite(total)) return kInf;

  // Restart-from-scratch wrap for unrecoverable severities.
  if (scratch_lambda > 0.0) {
    total += oracle_expected_retries(total, scratch_lambda, law) *
             oracle_truncated_mean(total, scratch_lambda, law);
    amplification *= std::max(1.0, scratch_lambda * total);
  }
  if (!std::isfinite(total)) return kInf;
  if (condition != nullptr) *condition = amplification;
  return total;
}

}  // namespace mlck::verify

#include "verify/oracle.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "math/integrate.h"

namespace mlck::verify {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Quadrature tolerances are absolute, so they must scale with the
/// integral's magnitude: P(t, X) ~ min(1, Xt) for small windows.
double probability_scale(double u) noexcept { return std::min(1.0, u); }

}  // namespace

double TolerancePolicy::effective_rel(double condition) const noexcept {
  return std::min(rel_cap, rel * std::max(1.0, condition));
}

bool TolerancePolicy::within(double value, double reference,
                             double condition) const noexcept {
  if (std::isnan(value) || std::isnan(reference)) return false;
  if (std::isinf(value) || std::isinf(reference)) return value == reference;
  const double band =
      abs + effective_rel(condition) *
                std::max(std::abs(value), std::abs(reference));
  return std::abs(value - reference) <= band;
}

double oracle_failure_probability(double t, double rate) {
  if (t <= 0.0 || rate <= 0.0) return 0.0;
  const auto density = [rate](double x) { return rate * std::exp(-rate * x); };
  const double tol = 1e-13 * probability_scale(rate * t);
  // Beyond 60/rate the remaining mass is ~e^{-60}, far below the
  // tolerance; capping there keeps the decay scale a visible fraction of
  // the integration interval however large t grows.
  const double b = std::min(t, 60.0 / rate);
  return std::min(1.0, math::integrate(density, 0.0, b, tol));
}

double oracle_survival(double t, double rate) {
  if (t <= 0.0 || rate <= 0.0) return 1.0;
  const double u = rate * t;
  if (u >= 745.0) return 0.0;  // e^{-u} underflows double
  const auto density = [rate](double x) { return rate * std::exp(-rate * x); };
  // The tail integral's magnitude is e^{-u}; use that only to *scale the
  // tolerance* (the value itself still comes from quadrature).
  const double scale = std::exp(-u);
  const double tol = std::max(1e-300, 1e-13 * scale);
  return math::integrate(density, t, t + 60.0 / rate, tol);
}

double oracle_truncated_mean(double t, double rate) {
  if (t <= 0.0) return 0.0;
  if (rate <= 0.0) return 0.5 * t;  // uniform limit, as in math/exponential
  const double p = oracle_failure_probability(t, rate);
  if (p <= 0.0) return 0.5 * t;
  const auto weighted = [rate](double x) {
    return x * rate * std::exp(-rate * x);
  };
  // The integrand peaks at x = 1/rate and f(0) = f(inf) = 0, so on a long
  // interval the whole mass can hide between the first Simpson samples
  // and the subdivision would terminate on an apparent-zero estimate.
  // Cap the domain at the effective support (mass beyond 60/rate is
  // ~e^{-60}) and split bulk from tail so the peak always sits within a
  // factor of 8 of an integration endpoint.
  const double b = std::min(t, 60.0 / rate);
  const double split = std::min(b, 8.0 / rate);
  const double tol =
      0.5e-13 * probability_scale(rate * t) * std::min(t, 1.0 / rate);
  double mass = math::integrate(weighted, 0.0, split, tol);
  if (b > split) mass += math::integrate(weighted, split, b, tol);
  return mass / p;
}

double oracle_expected_retries(double t, double rate) {
  if (t <= 0.0 || rate <= 0.0) return 0.0;
  const double s = oracle_survival(t, rate);
  if (s <= 0.0) return kInf;
  return oracle_failure_probability(t, rate) / s;
}

double oracle_expected_time(const systems::SystemConfig& system,
                            const core::CheckpointPlan& plan,
                            const core::DauweOptions& options,
                            double* condition) {
  plan.validate(system);
  if (condition != nullptr) *condition = 1.0;
  const int K = plan.used_levels();

  // Independent severity binning: a severity-s failure restarts from the
  // lowest used level >= s; severities above the top used level restart
  // the application from scratch (paper Sec. III-B).
  std::vector<double> lambda(static_cast<std::size_t>(K), 0.0);
  double scratch_lambda = 0.0;
  for (int s = 0; s < system.levels(); ++s) {
    bool binned = false;
    for (int k = 0; k < K; ++k) {
      if (plan.levels[static_cast<std::size_t>(k)] >= s) {
        lambda[static_cast<std::size_t>(k)] += system.lambda(s);
        binned = true;
        break;
      }
    }
    if (!binned) scratch_lambda += system.lambda(s);
  }
  const double lambda_total = system.lambda_total();

  // The Eqns. 4-14 recursion, one stage per used level, every
  // transcendental from quadrature.
  std::vector<double> tau(static_cast<std::size_t>(K));
  std::vector<double> gamma(static_cast<std::size_t>(K));
  std::vector<double> lost_share(static_cast<std::size_t>(K));
  tau[0] = plan.tau0;
  double pattern = 1.0;
  for (std::size_t k = 0; k + 1 < static_cast<std::size_t>(K); ++k) {
    pattern *= static_cast<double>(plan.counts[k] + 1);
  }
  const double top_periods = system.base_time / (plan.tau0 * pattern);
  if (!(top_periods >= 1.0)) return kInf;  // Eqn. 3 solution-space bound

  double amplification = 1.0;
  double lambda_c = 0.0;
  double total = kInf;
  for (int k = 0; k < K; ++k) {
    const auto ki = static_cast<std::size_t>(k);
    if (!std::isfinite(tau[ki])) return kInf;  // a stage overflowed
    lambda_c += lambda[ki];
    gamma[ki] = oracle_expected_retries(tau[ki], lambda[ki]);  // Eqn. 5
    const double e_tau = oracle_truncated_mean(tau[ki], lambda[ki]);
    lost_share[ki] = tau[ki] + gamma[ki] * e_tau;
    amplification *= std::max(1.0, lambda[ki] * tau[ki]);

    double m, c;
    if (k + 1 < K) {
      m = static_cast<double>(plan.counts[ki] + 1);
      c = static_cast<double>(plan.counts[ki]);
    } else {
      // Top level: N_L periods, one fewer checkpoint (Eqn. 3 convention).
      m = top_periods;
      c = top_periods - 1.0;
    }
    const auto level = static_cast<std::size_t>(plan.levels[ki]);
    const double delta = system.checkpoint_cost[level];
    const double restart = system.restart_cost[level];
    const auto share = [&](std::size_t j) {
      return options.renormalize_severity_shares ? lambda[j] / lambda_c
                                                 : lambda[j] / lambda_total;
    };

    const double t_ck_ok = c * delta;  // Eqn. 7
    const double alpha =               // Eqn. 8
        options.checkpoint_failures
            ? c * oracle_expected_retries(delta, lambda_c)
            : 0.0;
    const double t_ck_fail = alpha * oracle_truncated_mean(delta, lambda_c);
    double lost = 0.0;  // Eqn. 10
    for (std::size_t j = 0; j <= ki; ++j) lost += lost_share[j] * share(j);
    const double t_w_ck = alpha * lost;
    const double t_w_tau = m * gamma[ki] * e_tau;  // Eqn. 6
    const double beta =                            // Eqn. 11
        share(ki) * alpha + gamma[ki] * (share(ki) * alpha + m);
    const double t_r_ok = beta * restart;
    const double zeta =  // Eqn. 12
        options.restart_failures
            ? beta * oracle_expected_retries(restart, lambda_c)
            : 0.0;
    const double t_r_fail = zeta * oracle_truncated_mean(restart, lambda_c);

    const double out =  // Eqn. 4
        m * tau[ki] + t_ck_ok + t_ck_fail + t_r_ok + t_r_fail + t_w_tau +
        t_w_ck;
    if (k + 1 < K) {
      tau[ki + 1] = out;
    } else {
      total = out;
    }
  }
  if (!std::isfinite(total)) return kInf;

  // Restart-from-scratch wrap for unrecoverable severities.
  if (scratch_lambda > 0.0) {
    total += oracle_expected_retries(total, scratch_lambda) *
             oracle_truncated_mean(total, scratch_lambda);
    amplification *= std::max(1.0, scratch_lambda * total);
  }
  if (!std::isfinite(total)) return kInf;
  if (condition != nullptr) *condition = amplification;
  return total;
}

}  // namespace mlck::verify

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/dauwe_model.h"
#include "core/plan.h"
#include "math/failure_law.h"
#include "systems/system_config.h"
#include "util/rng.h"
#include "verify/oracle.h"

namespace mlck::verify {

/// One failure law as the verification harness sees it: the quadrature
/// oracle's selector, the model-side family (null for the exponential
/// closed-form fast path), and a stable display name for reports. Build
/// these through the factories below — each Weibull/log-normal family
/// tabulates its unit-mean law once at construction, so a pool entry is
/// cheap to copy into every generated case.
struct VerifyLaw {
  OracleLaw oracle;
  std::shared_ptr<const math::FailureLaw> family;  ///< null == exponential
  std::string name = "exponential";
  /// Relative model-vs-simulator equivalence margin for the Welch
  /// validation. Non-exponential scenarios drive the simulator through a
  /// *thinned renewal* process that the per-severity analytic model only
  /// approximates, so plain statistical significance would flag a correct
  /// implementation; a Welch rejection is counted only when the relative
  /// gap also exceeds this margin (docs/MODELS.md). 0 keeps the pure
  /// Welch criterion of the exponential arm.
  double welch_rel_tolerance = 0.0;
};

VerifyLaw exponential_verify_law();
VerifyLaw weibull_verify_law(double shape);
VerifyLaw lognormal_verify_law(double sigma);

/// Distribution bounds for the randomized verification generators. The
/// defaults span the paper's Table I regimes (MTBF 3 min .. 7000 min,
/// costs 0.008 .. 30 min) with extra headroom on both sides, so the
/// harness exercises configurations well outside the hand-picked golden
/// points. All ranges are log-uniform unless noted.
struct GeneratorOptions {
  int min_levels = 1;
  int max_levels = 5;
  double mtbf_min = 20.0;       ///< minutes
  double mtbf_max = 20000.0;
  double cost_min = 0.005;      ///< minutes, per level
  double cost_max = 30.0;
  double base_min = 100.0;      ///< minutes
  double base_max = 5000.0;
  int max_count = 12;           ///< pattern counts drawn uniformly 0..max
  /// Probability that a generated plan's tau0 is drawn from the feasible
  /// band (at least one top-level period fits in T_B); the remainder is
  /// drawn past the bound so the +inf paths stay covered.
  double feasible_fraction = 0.85;
  /// Failure-law pool for the stream. Empty (the default) keeps every
  /// case exponential and makes NO law draw, so the random streams — and
  /// with them every existing seed's cases — are unchanged. A non-empty
  /// pool draws one entry per case, after all other fields.
  std::vector<VerifyLaw> laws;
};

/// Random structurally-valid system: severity shares normalized to 1,
/// costs mostly (but not always) ascending, restart costs usually equal
/// to checkpoint costs as in Table I but sometimes independently scaled.
systems::SystemConfig random_system(util::Rng& rng,
                                    const GeneratorOptions& options = {});

/// Random non-empty ascending subset of {0..levels-1}.
std::vector<int> random_subset(util::Rng& rng, int levels);

/// Random valid plan over a random subset of the system's levels. The
/// plan validates against @p system; tau0 lands in the feasible band with
/// probability options.feasible_fraction.
core::CheckpointPlan random_plan(util::Rng& rng,
                                 const systems::SystemConfig& system,
                                 const GeneratorOptions& options = {});

/// Random model-option flags, biased toward the paper's full model.
core::DauweOptions random_dauwe_options(util::Rng& rng);

/// One self-describing verification case. `seed` is the *stream* seed the
/// case was generated from (derive_stream_seed(base_seed, index)), so any
/// failing case replays exactly from its report line regardless of how
/// many cases ran before it.
struct VerifyCase {
  std::size_t index = 0;
  std::uint64_t seed = 0;
  systems::SystemConfig system;
  core::CheckpointPlan plan;
  core::DauweOptions options;
  /// The case's failure law (exponential unless GeneratorOptions::laws is
  /// non-empty); checks thread law.family into the model side and
  /// law.oracle into the quadrature side.
  VerifyLaw law;
};

/// Deterministically generates case @p index of the stream rooted at
/// @p base_seed. Case k never depends on cases < k.
VerifyCase make_case(std::uint64_t base_seed, std::size_t index,
                     const GeneratorOptions& options = {});

}  // namespace mlck::verify

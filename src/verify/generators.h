#pragma once

#include <cstdint>
#include <vector>

#include "core/dauwe_model.h"
#include "core/plan.h"
#include "systems/system_config.h"
#include "util/rng.h"

namespace mlck::verify {

/// Distribution bounds for the randomized verification generators. The
/// defaults span the paper's Table I regimes (MTBF 3 min .. 7000 min,
/// costs 0.008 .. 30 min) with extra headroom on both sides, so the
/// harness exercises configurations well outside the hand-picked golden
/// points. All ranges are log-uniform unless noted.
struct GeneratorOptions {
  int min_levels = 1;
  int max_levels = 5;
  double mtbf_min = 20.0;       ///< minutes
  double mtbf_max = 20000.0;
  double cost_min = 0.005;      ///< minutes, per level
  double cost_max = 30.0;
  double base_min = 100.0;      ///< minutes
  double base_max = 5000.0;
  int max_count = 12;           ///< pattern counts drawn uniformly 0..max
  /// Probability that a generated plan's tau0 is drawn from the feasible
  /// band (at least one top-level period fits in T_B); the remainder is
  /// drawn past the bound so the +inf paths stay covered.
  double feasible_fraction = 0.85;
};

/// Random structurally-valid system: severity shares normalized to 1,
/// costs mostly (but not always) ascending, restart costs usually equal
/// to checkpoint costs as in Table I but sometimes independently scaled.
systems::SystemConfig random_system(util::Rng& rng,
                                    const GeneratorOptions& options = {});

/// Random non-empty ascending subset of {0..levels-1}.
std::vector<int> random_subset(util::Rng& rng, int levels);

/// Random valid plan over a random subset of the system's levels. The
/// plan validates against @p system; tau0 lands in the feasible band with
/// probability options.feasible_fraction.
core::CheckpointPlan random_plan(util::Rng& rng,
                                 const systems::SystemConfig& system,
                                 const GeneratorOptions& options = {});

/// Random model-option flags, biased toward the paper's full model.
core::DauweOptions random_dauwe_options(util::Rng& rng);

/// One self-describing verification case. `seed` is the *stream* seed the
/// case was generated from (derive_stream_seed(base_seed, index)), so any
/// failing case replays exactly from its report line regardless of how
/// many cases ran before it.
struct VerifyCase {
  std::size_t index = 0;
  std::uint64_t seed = 0;
  systems::SystemConfig system;
  core::CheckpointPlan plan;
  core::DauweOptions options;
};

/// Deterministically generates case @p index of the stream rooted at
/// @p base_seed. Case k never depends on cases < k.
VerifyCase make_case(std::uint64_t base_seed, std::size_t index,
                     const GeneratorOptions& options = {});

}  // namespace mlck::verify

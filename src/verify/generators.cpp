#include "verify/generators.h"

#include <algorithm>
#include <cmath>

namespace mlck::verify {

namespace {

/// Log-uniform sample in [lo, hi].
double log_uniform(util::Rng& rng, double lo, double hi) {
  return lo * std::pow(hi / lo, rng.uniform());
}

}  // namespace

VerifyLaw exponential_verify_law() { return {}; }

VerifyLaw weibull_verify_law(double shape) {
  VerifyLaw law;
  law.oracle.kind = OracleLaw::Kind::kWeibull;
  law.oracle.shape = shape;
  law.family = math::FailureLaw::weibull(shape);
  law.name = law.family->describe();
  // Tightened from 0.15 when the batch engine made 600-trial Welch runs
  // the default; measured worst-case gaps per law in docs/MODELS.md.
  law.welch_rel_tolerance = 0.10;
  return law;
}

VerifyLaw lognormal_verify_law(double sigma) {
  VerifyLaw law;
  law.oracle.kind = OracleLaw::Kind::kLogNormal;
  law.oracle.sigma = sigma;
  law.family = math::FailureLaw::lognormal(sigma);
  law.name = law.family->describe();
  // Slightly wider than Weibull's: the thinning approximation bites
  // harder on the log-normal's light left tail (docs/MODELS.md).
  law.welch_rel_tolerance = 0.12;
  return law;
}

systems::SystemConfig random_system(util::Rng& rng,
                                    const GeneratorOptions& options) {
  const int span = options.max_levels - options.min_levels + 1;
  const int levels =
      options.min_levels +
      static_cast<int>(rng.below(static_cast<std::uint64_t>(span)));

  systems::SystemConfig sys;
  sys.name = "verify";
  sys.mtbf = log_uniform(rng, options.mtbf_min, options.mtbf_max);
  double total = 0.0;
  for (int l = 0; l < levels; ++l) {
    // A floor of 0.05 keeps every severity live (zero-rate levels are
    // covered by dedicated boundary tests, not the random sweep).
    const double weight = 0.05 + rng.uniform();
    sys.severity_probability.push_back(weight);
    total += weight;
  }
  for (double& s : sys.severity_probability) s /= total;

  for (int l = 0; l < levels; ++l) {
    sys.checkpoint_cost.push_back(
        log_uniform(rng, options.cost_min, options.cost_max));
  }
  // Real hierarchies are usually cost-ascending, but the model does not
  // require it; keep a minority of unsorted hierarchies in the stream.
  if (rng.uniform() < 0.8) {
    std::sort(sys.checkpoint_cost.begin(), sys.checkpoint_cost.end());
  }
  sys.restart_cost = sys.checkpoint_cost;
  if (rng.uniform() < 0.25) {
    for (double& r : sys.restart_cost) r *= 0.5 + 1.5 * rng.uniform();
  }
  sys.base_time = log_uniform(rng, options.base_min, options.base_max);
  sys.validate();
  return sys;
}

std::vector<int> random_subset(util::Rng& rng, int levels) {
  std::vector<int> subset;
  while (subset.empty()) {
    for (int l = 0; l < levels; ++l) {
      if (rng.uniform() < 0.65) subset.push_back(l);
    }
  }
  return subset;
}

core::CheckpointPlan random_plan(util::Rng& rng,
                                 const systems::SystemConfig& system,
                                 const GeneratorOptions& options) {
  core::CheckpointPlan plan;
  plan.levels = random_subset(rng, system.levels());
  for (std::size_t k = 0; k + 1 < plan.levels.size(); ++k) {
    plan.counts.push_back(static_cast<int>(
        rng.below(static_cast<std::uint64_t>(options.max_count + 1))));
  }
  const double pattern = static_cast<double>(plan.pattern_period());
  const double bound = system.base_time / pattern;  // feasibility edge
  if (rng.uniform() < options.feasible_fraction) {
    plan.tau0 = bound * (0.02 + 0.93 * rng.uniform());
  } else {
    plan.tau0 = bound * (1.0 + 2.0 * rng.uniform());
  }
  plan.validate(system);
  return plan;
}

core::DauweOptions random_dauwe_options(util::Rng& rng) {
  core::DauweOptions opt;
  opt.checkpoint_failures = rng.uniform() < 0.8;
  opt.restart_failures = rng.uniform() < 0.8;
  opt.renormalize_severity_shares = rng.uniform() < 0.3;
  return opt;
}

VerifyCase make_case(std::uint64_t base_seed, std::size_t index,
                     const GeneratorOptions& options) {
  VerifyCase c;
  c.index = index;
  c.seed = util::derive_stream_seed(base_seed, index);
  util::Rng rng(c.seed);
  c.system = random_system(rng, options);
  c.plan = random_plan(rng, c.system, options);
  c.options = random_dauwe_options(rng);
  // Drawn last so a law pool extends, rather than reshuffles, the
  // system/plan/options stream of an established seed.
  if (!options.laws.empty()) {
    c.law = options.laws[rng.below(options.laws.size())];
  }
  return c;
}

}  // namespace mlck::verify

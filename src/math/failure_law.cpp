#include "math/failure_law.h"

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "math/exponential.h"
#include "math/retry.h"

namespace mlck::math {

namespace {

void require_positive_rate(double rate) {
  if (!(rate > 0.0) || !std::isfinite(rate)) {
    throw std::invalid_argument(
        "FailureLaw::primitive: rate must be positive and finite");
  }
}

/// Scaled view of a shared unit-mean table: the law of s * T for the
/// tabulated T, i.e. the family member with mean s. Exact scaling
/// relations, no re-tabulation:
///   P(t) = P_u(t / s),  E(t) = s * E_u(t / s),  retries(t) = r_u(t / s).
class ScaledTabulatedPrimitive final : public LawPrimitive {
 public:
  ScaledTabulatedPrimitive(std::shared_ptr<const TabulatedLaw> unit,
                           double scale) noexcept
      : unit_(std::move(unit)), scale_(scale) {}

  double failure_probability(double t) const noexcept override {
    return unit_->cdf(t / scale_);
  }
  double survival(double t) const noexcept override {
    return unit_->survival(t / scale_);
  }
  double truncated_mean(double t) const noexcept override {
    return scale_ * unit_->truncated_mean(t / scale_);
  }
  double expected_retries(double t) const noexcept override {
    return unit_->expected_retries(t / scale_);
  }
  std::string describe() const override {
    std::ostringstream os;
    os << unit_->describe() << " scaled to mean " << scale_ * unit_->mean();
    return os.str();
  }

 private:
  std::shared_ptr<const TabulatedLaw> unit_;
  double scale_;
};

class ExponentialLaw final : public FailureLaw {
 public:
  Kind kind() const noexcept override { return Kind::kExponential; }

  std::shared_ptr<const LawPrimitive> primitive(double rate) const override {
    require_positive_rate(rate);
    return std::make_shared<ExponentialPrimitive>(rate);
  }

  std::unique_ptr<FailureDistribution> distribution(
      double mean) const override {
    return std::make_unique<Exponential>(1.0 / mean);
  }

  std::string describe() const override { return "exponential"; }
};

class WeibullLaw final : public FailureLaw {
 public:
  explicit WeibullLaw(double shape)
      : shape_(shape),
        unit_(std::make_shared<TabulatedLaw>(Weibull::with_mean(1.0, shape))) {
  }

  Kind kind() const noexcept override { return Kind::kWeibull; }

  std::shared_ptr<const LawPrimitive> primitive(double rate) const override {
    require_positive_rate(rate);
    return std::make_shared<ScaledTabulatedPrimitive>(unit_, 1.0 / rate);
  }

  std::unique_ptr<FailureDistribution> distribution(
      double mean) const override {
    return std::make_unique<Weibull>(Weibull::with_mean(mean, shape_));
  }

  std::unique_ptr<FailureDistribution> sampling_distribution(
      double mean) const override {
    // The unit-mean table scales to any mean; one uniform per draw.
    return std::make_unique<TabulatedDistribution>(unit_, mean);
  }

  std::string describe() const override {
    std::ostringstream os;
    os << "weibull(shape=" << shape_ << ")";
    return os.str();
  }

 private:
  double shape_;
  std::shared_ptr<const TabulatedLaw> unit_;
};

class LogNormalLaw final : public FailureLaw {
 public:
  explicit LogNormalLaw(double sigma)
      : sigma_(sigma),
        unit_(std::make_shared<TabulatedLaw>(
            LogNormal::with_mean(1.0, sigma))) {}

  Kind kind() const noexcept override { return Kind::kLogNormal; }

  std::shared_ptr<const LawPrimitive> primitive(double rate) const override {
    require_positive_rate(rate);
    return std::make_shared<ScaledTabulatedPrimitive>(unit_, 1.0 / rate);
  }

  std::unique_ptr<FailureDistribution> distribution(
      double mean) const override {
    return std::make_unique<LogNormal>(LogNormal::with_mean(mean, sigma_));
  }

  std::unique_ptr<FailureDistribution> sampling_distribution(
      double mean) const override {
    // Replaces the Box-Muller pair (log+sqrt+cos per draw, two uniforms)
    // with one table lookup on one uniform.
    return std::make_unique<TabulatedDistribution>(unit_, mean);
  }

  std::string describe() const override {
    std::ostringstream os;
    os << "lognormal(sigma=" << sigma_ << ")";
    return os.str();
  }

 private:
  double sigma_;
  std::shared_ptr<const TabulatedLaw> unit_;
};

}  // namespace

double ExponentialPrimitive::failure_probability(double t) const noexcept {
  return math::failure_probability(t, rate_);
}

double ExponentialPrimitive::survival(double t) const noexcept {
  return math::survival(t, rate_);
}

double ExponentialPrimitive::truncated_mean(double t) const noexcept {
  return math::truncated_mean(t, rate_);
}

double ExponentialPrimitive::expected_retries(double t) const noexcept {
  return math::expected_retries(t, rate_);
}

std::string ExponentialPrimitive::describe() const {
  std::ostringstream os;
  os << "exponential(mean=" << 1.0 / rate_ << ")";
  return os.str();
}

std::shared_ptr<const FailureLaw> FailureLaw::exponential() {
  return std::make_shared<ExponentialLaw>();
}

std::shared_ptr<const FailureLaw> FailureLaw::weibull(double shape) {
  return std::make_shared<WeibullLaw>(shape);
}

std::shared_ptr<const FailureLaw> FailureLaw::lognormal(double sigma) {
  return std::make_shared<LogNormalLaw>(sigma);
}

}  // namespace mlck::math

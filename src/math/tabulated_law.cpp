#include "math/tabulated_law.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "math/integrate.h"

namespace mlck::math {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Floor for the stored logs: exp(-745) is the smallest positive double,
/// so a value at the floor reads back as "underflowed to zero".
constexpr double kLogFloor = -745.0;

double floored_log(double v) noexcept {
  if (!(v > 0.0)) return kLogFloor;
  return std::max(std::log(v), kLogFloor);
}

/// Fritsch-Carlson monotone slopes for uniformly spaced data: secant
/// harmonic means in the interior, clamped one-sided estimates at the
/// ends. The resulting cubic Hermite interpolant preserves monotone runs
/// of the data exactly (no overshoot between knots).
std::vector<double> monotone_slopes(const std::vector<double>& y, double h) {
  const std::size_t n = y.size();
  std::vector<double> slope(n, 0.0);
  if (n < 2) return slope;
  std::vector<double> secant(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) secant[i] = (y[i + 1] - y[i]) / h;
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const double a = secant[i - 1];
    const double b = secant[i];
    slope[i] = (a * b <= 0.0) ? 0.0 : 2.0 * a * b / (a + b);
  }
  const auto end_slope = [](double d0, double d1) {
    double m = 1.5 * d0 - 0.5 * d1;
    if (m * d0 <= 0.0) return 0.0;
    if (std::abs(m) > 3.0 * std::abs(d0)) m = 3.0 * d0;
    return m;
  };
  slope[0] = n > 2 ? end_slope(secant[0], secant[1]) : secant[0];
  slope[n - 1] =
      n > 2 ? end_slope(secant[n - 2], secant[n - 3]) : secant[n - 2];
  return slope;
}

/// Fritsch-Carlson monotone slopes for *non-uniform* knots @p z — the
/// inverse tables' abscissae are the forward grid's log-probabilities,
/// which cluster near the median and stretch in the tails. Weighted
/// harmonic means in the interior, clamped one-sided estimates at the
/// ends; preserves strict monotonicity of the data.
std::vector<double> monotone_slopes_nonuniform(const std::vector<double>& z,
                                               const std::vector<double>& y) {
  const std::size_t n = z.size();
  std::vector<double> slope(n, 0.0);
  if (n < 2) return slope;
  std::vector<double> h(n - 1);
  std::vector<double> secant(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    h[i] = z[i + 1] - z[i];
    secant[i] = (y[i + 1] - y[i]) / h[i];
  }
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const double a = secant[i - 1];
    const double b = secant[i];
    if (a * b <= 0.0) {
      slope[i] = 0.0;
    } else {
      const double w1 = 2.0 * h[i] + h[i - 1];
      const double w2 = h[i] + 2.0 * h[i - 1];
      slope[i] = (w1 + w2) / (w1 / a + w2 / b);
    }
  }
  const auto end_slope = [](double h0, double h1, double d0, double d1) {
    double m = ((2.0 * h0 + h1) * d0 - h0 * d1) / (h0 + h1);
    if (m * d0 <= 0.0) return 0.0;
    if (std::abs(m) > 3.0 * std::abs(d0)) m = 3.0 * d0;
    return m;
  };
  slope[0] = n > 2 ? end_slope(h[0], h[1], secant[0], secant[1]) : secant[0];
  slope[n - 1] = n > 2 ? end_slope(h[n - 2], h[n - 3], secant[n - 2],
                                   secant[n - 3])
                       : secant[n - 2];
  return slope;
}

/// Cubic Hermite evaluation over non-uniform knots @p z (strictly
/// increasing), extending the end slopes linearly outside the knot range.
double hermite_nonuniform(const std::vector<double>& z,
                          const std::vector<double>& y,
                          const std::vector<double>& m, double q) noexcept {
  if (q <= z.front()) return y.front() + m.front() * (q - z.front());
  if (q >= z.back()) return y.back() + m.back() * (q - z.back());
  const auto it = std::upper_bound(z.begin(), z.end(), q);
  std::size_t i = static_cast<std::size_t>(it - z.begin()) - 1;
  i = std::min(i, z.size() - 2);
  const double h = z[i + 1] - z[i];
  const double t = (q - z[i]) / h;
  const double h00 = (1.0 + 2.0 * t) * (1.0 - t) * (1.0 - t);
  const double h10 = t * (1.0 - t) * (1.0 - t);
  const double h01 = t * t * (3.0 - 2.0 * t);
  const double h11 = t * t * (t - 1.0);
  return h00 * y[i] + h10 * h * m[i] + h01 * y[i + 1] + h11 * h * m[i + 1];
}

}  // namespace

TabulatedLaw::TabulatedLaw(const FailureDistribution& law, Options options) {
  mean_ = law.mean();
  describe_ = law.describe();
  if (!(mean_ > 0.0) || !std::isfinite(mean_)) {
    throw std::invalid_argument("TabulatedLaw: law must have a finite mean");
  }
  if (!(options.lo_fraction > 0.0) || options.points_per_decade < 4) {
    throw std::invalid_argument("TabulatedLaw: invalid grid options");
  }

  const double step = std::log(10.0) / options.points_per_decade;
  const double lo = options.lo_fraction * mean_;
  // The grid always covers the shared oracle cap; heavy tails extend it
  // until the remaining mass is negligible at every tolerance in the tree.
  const double cap_start = kDomainCapMultiple * mean_;
  const double hi_stop = options.hi_cap_multiple * mean_;

  log_x_.push_back(std::log(lo));
  for (;;) {
    const double next = log_x_.back() + step;
    const double x = std::exp(next);
    log_x_.push_back(next);
    if (x >= cap_start && law.survival(x) <= options.tail_survival) break;
    if (x >= hi_stop) break;
  }

  const std::size_t n = log_x_.size();
  log_f_.resize(n);
  log_s_.resize(n);
  log_m_.resize(n);

  // One pass accumulates the partial first moment per segment via
  // integration by parts, switching between the CDF form
  //   dM = b F(b) - a F(a) - integral_a^b F dx
  // and the survival form
  //   dM = a S(a) - b S(b) + integral_a^b S dx
  // at the median so the subtracted terms never catastrophically cancel.
  double moment = 0.0;
  double prev_x = 0.0;
  double prev_f = 0.0;
  double prev_s = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = std::exp(log_x_[i]);
    const double f = law.cdf(x);
    const double s = law.survival(x);
    const double width = x - prev_x;
    if (f <= 0.5) {
      const double tol = std::max(1e-300, 1e-14 * width * std::max(f, prev_f));
      const double area = integrate([&law](double v) { return law.cdf(v); },
                                    prev_x, x, tol);
      moment += x * f - prev_x * prev_f - area;
    } else {
      const double tol = std::max(1e-300, 1e-14 * width * prev_s);
      const double area =
          integrate([&law](double v) { return law.survival(v); }, prev_x, x,
                    tol);
      moment += prev_x * prev_s - x * s + area;
    }
    moment = std::max(moment, 0.0);  // quadrature noise must not go negative
    log_f_[i] = floored_log(f);
    log_s_[i] = floored_log(s);
    log_m_[i] = floored_log(moment);
    prev_x = x;
    prev_f = f;
    prev_s = s;
  }

  slope_f_ = monotone_slopes(log_f_, step);
  slope_s_ = monotone_slopes(log_s_, step);
  slope_m_ = monotone_slopes(log_m_, step);

  build_inverse_tables();
  build_central_table();
}

void TabulatedLaw::build_central_table() {
  // Resample the log-space inverse onto a uniform u lattice over
  // [1/N, 1 - 1/N]. Nodes come from the exact path quantile() would take
  // for each u, so the fast lane agrees with the slow lane at every node
  // and deviates between nodes only by the Hermite interpolation error of
  // an already-smooth quantile function (see docs/MODELS.md accuracy
  // notes).
  const double n = static_cast<double>(kCentralIntervals);
  const auto slow_quantile = [this](double u) {
    return std::exp(u < 0.5 ? x_from_log_cdf(std::log(u))
                            : x_from_log_survival(std::log1p(-u)));
  };
  std::vector<double> xs;
  xs.reserve(kCentralIntervals - 1);
  for (std::size_t i = 1; i < kCentralIntervals; ++i) {
    const double x = slow_quantile(static_cast<double>(i) / n);
    // Degenerate tables (point-mass-like laws) can produce flat or
    // non-finite quantiles; those laws keep the slow path everywhere.
    if (!std::isfinite(x) || (!xs.empty() && !(x > xs.back()))) return;
    xs.push_back(x);
  }
  const std::vector<double> ms = monotone_slopes(xs, 1.0 / n);

  // Self-validate at interval midpoints and trim to the contiguous window
  // around the median where the direct cubic matches the log-space path to
  // kAgree — the quantile's curvature in linear u explodes toward u -> 0
  // for heavy shapes, and the lattice must not pretend to resolve it.
  // Draws outside the trimmed window (a few per mille of uniforms at
  // worst) take the slow lane, so the lane split never costs accuracy.
  // kAgree sits well inside the table's documented ~1e-4 accuracy but
  // above the log-space lane's own ~1e-6 interpolation noise (the lanes
  // cannot be asked to agree more tightly than the reference lane's
  // error).
  constexpr double kAgree = 2e-5;
  const auto interval_ok = [&](std::size_t i) {
    const double u = (static_cast<double>(i) + 1.5) / n;
    const double t = 0.5;
    const double h00 = (1.0 + 2.0 * t) * (1.0 - t) * (1.0 - t);
    const double h10 = t * (1.0 - t) * (1.0 - t);
    const double h01 = t * t * (3.0 - 2.0 * t);
    const double h11 = t * t * (t - 1.0);
    const double step = 1.0 / n;
    const double fast = h00 * xs[i] + h10 * step * ms[i] + h01 * xs[i + 1] +
                        h11 * step * ms[i + 1];
    const double slow = slow_quantile(u);
    return std::abs(fast - slow) <= kAgree * slow;
  };
  const std::size_t intervals = xs.size() - 1;
  std::size_t lo = intervals / 2;
  std::size_t hi = lo;  // [lo, hi): validated interval run around the median
  if (!interval_ok(lo)) return;
  while (lo > 0 && interval_ok(lo - 1)) --lo;
  while (hi + 1 <= intervals && interval_ok(hi)) ++hi;
  if (hi - lo < 16) return;  // not worth a lane that narrow

  central_step_ = 1.0 / n;
  central_inv_step_ = n;
  central_lo_ = static_cast<double>(lo + 1) / n;
  central_hi_ = static_cast<double>(hi + 1) / n;
  central_x_.assign(xs.begin() + static_cast<std::ptrdiff_t>(lo),
                    xs.begin() + static_cast<std::ptrdiff_t>(hi + 1));
  // Interior slopes from the untrimmed lattice: every kept node keeps the
  // slope computed with its true neighbors.
  central_m_.assign(ms.begin() + static_cast<std::ptrdiff_t>(lo),
                    ms.begin() + static_cast<std::ptrdiff_t>(hi + 1));
}

double TabulatedLaw::central_inverse(double u) const noexcept {
  const double pos = (u - central_lo_) * central_inv_step_;
  auto i = static_cast<std::size_t>(pos);
  i = std::min(i, central_x_.size() - 2);
  const double t = pos - static_cast<double>(i);
  const double h00 = (1.0 + 2.0 * t) * (1.0 - t) * (1.0 - t);
  const double h10 = t * (1.0 - t) * (1.0 - t);
  const double h01 = t * t * (3.0 - 2.0 * t);
  const double h11 = t * t * (t - 1.0);
  return h00 * central_x_[i] + h10 * central_step_ * central_m_[i] +
         h01 * central_x_[i + 1] + h11 * central_step_ * central_m_[i + 1];
}

void TabulatedLaw::build_inverse_tables() {
  const std::size_t n = log_x_.size();
  // CDF side: the strictly increasing, non-underflowed, non-saturated run
  // of (log F_i, log x_i). Serves quantiles below the median; kept up to
  // F ~= 0.9 so the sides overlap comfortably around 0.5.
  const double kLogPointNine = std::log(0.9);
  for (std::size_t i = 0; i < n; ++i) {
    const double lf = log_f_[i];
    if (lf <= kLogFloor || lf >= 0.0) continue;
    if (!inv_f_z_.empty() && lf <= inv_f_z_.back()) continue;
    if (lf > kLogPointNine && !inv_f_z_.empty()) break;
    inv_f_z_.push_back(lf);
    inv_f_x_.push_back(log_x_[i]);
  }
  inv_f_m_ = monotone_slopes_nonuniform(inv_f_z_, inv_f_x_);

  // Survival side: the strictly decreasing, non-underflowed run of
  // (log S_i, log x_i), reversed so the knots ascend in log S (deep tail
  // first). Starts once F has reached ~0.1 so the bulk knots near the
  // median are dense on this side too.
  const double kLogPointOne = std::log(0.1);
  std::vector<double> sz;
  std::vector<double> sx;
  bool started = false;
  for (std::size_t i = 0; i < n; ++i) {
    const double ls = log_s_[i];
    if (!started) {
      if (log_f_[i] < kLogPointOne) continue;  // F < 0.1: CDF side's job
      started = true;
    }
    if (ls <= kLogFloor || ls >= 0.0) continue;
    if (!sz.empty() && ls >= sz.back()) continue;
    sz.push_back(ls);
    sx.push_back(log_x_[i]);
  }
  inv_s_z_.assign(sz.rbegin(), sz.rend());
  inv_s_x_.assign(sx.rbegin(), sx.rend());
  inv_s_m_ = monotone_slopes_nonuniform(inv_s_z_, inv_s_x_);
}

double TabulatedLaw::x_from_log_cdf(double lf) const noexcept {
  if (inv_f_z_.size() < 2) {
    // Degenerate table (nearly-point-mass law): bisect the forward
    // interpolant instead. Never hit by the production families.
    double lo = log_x_.front() - 100.0;
    double hi = log_x_.back() + 100.0;
    for (int iter = 0; iter < 200; ++iter) {
      const double mid = 0.5 * (lo + hi);
      (eval(log_f_, slope_f_, mid, true) < lf ? lo : hi) = mid;
    }
    return 0.5 * (lo + hi);
  }
  return hermite_nonuniform(inv_f_z_, inv_f_x_, inv_f_m_, lf);
}

double TabulatedLaw::x_from_log_survival(double ls) const noexcept {
  if (inv_s_z_.size() < 2) {
    double lo = log_x_.front() - 100.0;
    double hi = log_x_.back() + 100.0;
    for (int iter = 0; iter < 200; ++iter) {
      const double mid = 0.5 * (lo + hi);
      (eval(log_s_, slope_s_, mid, false) > ls ? lo : hi) = mid;
    }
    return 0.5 * (lo + hi);
  }
  return hermite_nonuniform(inv_s_z_, inv_s_x_, inv_s_m_, ls);
}

double TabulatedLaw::quantile(double u) const noexcept {
  if (!(u > 0.0)) return 0.0;
  if (u >= 1.0) return kInf;
  // Central lane: ~99.8% of uniform draws land on the direct grid and
  // resolve with one multiply and one cubic.
  if (u >= central_lo_ && u <= central_hi_ && !central_x_.empty()) {
    return central_inverse(u);
  }
  // Below the median invert the CDF table with log u; at or above it,
  // the survival table with log(1 - u) — each side queries the log that
  // carries the precision there.
  const double lx =
      u < 0.5 ? x_from_log_cdf(std::log(u)) : x_from_log_survival(std::log1p(-u));
  return std::exp(lx);
}

double TabulatedLaw::inverse_survival(double s) const noexcept {
  if (s >= 1.0) return 0.0;
  if (!(s > 0.0)) return kInf;
  if (!central_x_.empty()) {
    const double u = 1.0 - s;
    if (u >= central_lo_ && u <= central_hi_) return central_inverse(u);
  }
  const double lx = s > 0.5 ? x_from_log_cdf(std::log1p(-s))
                            : x_from_log_survival(std::log(s));
  return std::exp(lx);
}

double TabulatedLaw::eval(const std::vector<double>& y,
                          const std::vector<double>& slope, double lx,
                          bool saturate_above) const noexcept {
  const double lo = log_x_.front();
  const double hi = log_x_.back();
  if (lx <= lo) return y.front() + slope.front() * (lx - lo);
  if (lx >= hi) {
    return saturate_above ? y.back() : y.back() + slope.back() * (lx - hi);
  }
  const double step = (hi - lo) / static_cast<double>(log_x_.size() - 1);
  auto i = static_cast<std::size_t>((lx - lo) / step);
  i = std::min(i, log_x_.size() - 2);
  const double t = (lx - log_x_[i]) / step;
  const double h00 = (1.0 + 2.0 * t) * (1.0 - t) * (1.0 - t);
  const double h10 = t * (1.0 - t) * (1.0 - t);
  const double h01 = t * t * (3.0 - 2.0 * t);
  const double h11 = t * t * (t - 1.0);
  return h00 * y[i] + h10 * step * slope[i] + h01 * y[i + 1] +
         h11 * step * slope[i + 1];
}

double TabulatedLaw::cdf(double t) const noexcept {
  if (t <= 0.0) return 0.0;
  const double lf = eval(log_f_, slope_f_, std::log(t), true);
  if (lf <= kLogFloor) return 0.0;
  return std::min(1.0, std::exp(lf));
}

double TabulatedLaw::survival(double t) const noexcept {
  if (t <= 0.0) return 1.0;
  const double ls = eval(log_s_, slope_s_, std::log(t), false);
  if (ls <= kLogFloor) return 0.0;
  return std::min(1.0, std::exp(ls));
}

double TabulatedLaw::truncated_mean(double t) const noexcept {
  if (t <= 0.0) return 0.0;
  const double lx = std::log(t);
  const double lf = eval(log_f_, slope_f_, lx, true);
  // A window with no representable mass: fall back to the uniform limit,
  // the same convention as the exponential closed form at rate -> 0.
  if (lf <= kLogFloor) return 0.5 * t;
  const double lm = eval(log_m_, slope_m_, lx, true);
  return std::min(std::exp(lm - lf), t);
}

double TabulatedLaw::expected_retries(double t) const noexcept {
  if (t <= 0.0) return 0.0;
  const double lx = std::log(t);
  const double lf = eval(log_f_, slope_f_, lx, true);
  if (lf <= kLogFloor) return 0.0;
  const double ls = eval(log_s_, slope_s_, lx, false);
  if (ls <= kLogFloor) return kInf;  // survival underflowed: certain failure
  return std::exp(lf - ls);
}

TabulatedDistribution::TabulatedDistribution(
    std::shared_ptr<const TabulatedLaw> table, double scale)
    : table_(std::move(table)), scale_(scale) {
  if (table_ == nullptr) {
    throw std::invalid_argument("TabulatedDistribution: table must be non-null");
  }
  if (!(scale_ > 0.0) || !std::isfinite(scale_)) {
    throw std::invalid_argument(
        "TabulatedDistribution: scale must be positive and finite");
  }
}

std::string TabulatedDistribution::describe() const {
  std::ostringstream os;
  os << "tabulated[" << table_->describe() << "] scaled to mean " << mean();
  return os.str();
}

}  // namespace mlck::math

#include "math/tabulated_law.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "math/integrate.h"

namespace mlck::math {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Floor for the stored logs: exp(-745) is the smallest positive double,
/// so a value at the floor reads back as "underflowed to zero".
constexpr double kLogFloor = -745.0;

double floored_log(double v) noexcept {
  if (!(v > 0.0)) return kLogFloor;
  return std::max(std::log(v), kLogFloor);
}

/// Fritsch-Carlson monotone slopes for uniformly spaced data: secant
/// harmonic means in the interior, clamped one-sided estimates at the
/// ends. The resulting cubic Hermite interpolant preserves monotone runs
/// of the data exactly (no overshoot between knots).
std::vector<double> monotone_slopes(const std::vector<double>& y, double h) {
  const std::size_t n = y.size();
  std::vector<double> slope(n, 0.0);
  if (n < 2) return slope;
  std::vector<double> secant(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) secant[i] = (y[i + 1] - y[i]) / h;
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const double a = secant[i - 1];
    const double b = secant[i];
    slope[i] = (a * b <= 0.0) ? 0.0 : 2.0 * a * b / (a + b);
  }
  const auto end_slope = [](double d0, double d1) {
    double m = 1.5 * d0 - 0.5 * d1;
    if (m * d0 <= 0.0) return 0.0;
    if (std::abs(m) > 3.0 * std::abs(d0)) m = 3.0 * d0;
    return m;
  };
  slope[0] = n > 2 ? end_slope(secant[0], secant[1]) : secant[0];
  slope[n - 1] =
      n > 2 ? end_slope(secant[n - 2], secant[n - 3]) : secant[n - 2];
  return slope;
}

}  // namespace

TabulatedLaw::TabulatedLaw(const FailureDistribution& law, Options options) {
  mean_ = law.mean();
  describe_ = law.describe();
  if (!(mean_ > 0.0) || !std::isfinite(mean_)) {
    throw std::invalid_argument("TabulatedLaw: law must have a finite mean");
  }
  if (!(options.lo_fraction > 0.0) || options.points_per_decade < 4) {
    throw std::invalid_argument("TabulatedLaw: invalid grid options");
  }

  const double step = std::log(10.0) / options.points_per_decade;
  const double lo = options.lo_fraction * mean_;
  // The grid always covers the shared oracle cap; heavy tails extend it
  // until the remaining mass is negligible at every tolerance in the tree.
  const double cap_start = kDomainCapMultiple * mean_;
  const double hi_stop = options.hi_cap_multiple * mean_;

  log_x_.push_back(std::log(lo));
  for (;;) {
    const double next = log_x_.back() + step;
    const double x = std::exp(next);
    log_x_.push_back(next);
    if (x >= cap_start && law.survival(x) <= options.tail_survival) break;
    if (x >= hi_stop) break;
  }

  const std::size_t n = log_x_.size();
  log_f_.resize(n);
  log_s_.resize(n);
  log_m_.resize(n);

  // One pass accumulates the partial first moment per segment via
  // integration by parts, switching between the CDF form
  //   dM = b F(b) - a F(a) - integral_a^b F dx
  // and the survival form
  //   dM = a S(a) - b S(b) + integral_a^b S dx
  // at the median so the subtracted terms never catastrophically cancel.
  double moment = 0.0;
  double prev_x = 0.0;
  double prev_f = 0.0;
  double prev_s = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = std::exp(log_x_[i]);
    const double f = law.cdf(x);
    const double s = law.survival(x);
    const double width = x - prev_x;
    if (f <= 0.5) {
      const double tol = std::max(1e-300, 1e-14 * width * std::max(f, prev_f));
      const double area = integrate([&law](double v) { return law.cdf(v); },
                                    prev_x, x, tol);
      moment += x * f - prev_x * prev_f - area;
    } else {
      const double tol = std::max(1e-300, 1e-14 * width * prev_s);
      const double area =
          integrate([&law](double v) { return law.survival(v); }, prev_x, x,
                    tol);
      moment += prev_x * prev_s - x * s + area;
    }
    moment = std::max(moment, 0.0);  // quadrature noise must not go negative
    log_f_[i] = floored_log(f);
    log_s_[i] = floored_log(s);
    log_m_[i] = floored_log(moment);
    prev_x = x;
    prev_f = f;
    prev_s = s;
  }

  slope_f_ = monotone_slopes(log_f_, step);
  slope_s_ = monotone_slopes(log_s_, step);
  slope_m_ = monotone_slopes(log_m_, step);
}

double TabulatedLaw::eval(const std::vector<double>& y,
                          const std::vector<double>& slope, double lx,
                          bool saturate_above) const noexcept {
  const double lo = log_x_.front();
  const double hi = log_x_.back();
  if (lx <= lo) return y.front() + slope.front() * (lx - lo);
  if (lx >= hi) {
    return saturate_above ? y.back() : y.back() + slope.back() * (lx - hi);
  }
  const double step = (hi - lo) / static_cast<double>(log_x_.size() - 1);
  auto i = static_cast<std::size_t>((lx - lo) / step);
  i = std::min(i, log_x_.size() - 2);
  const double t = (lx - log_x_[i]) / step;
  const double h00 = (1.0 + 2.0 * t) * (1.0 - t) * (1.0 - t);
  const double h10 = t * (1.0 - t) * (1.0 - t);
  const double h01 = t * t * (3.0 - 2.0 * t);
  const double h11 = t * t * (t - 1.0);
  return h00 * y[i] + h10 * step * slope[i] + h01 * y[i + 1] +
         h11 * step * slope[i + 1];
}

double TabulatedLaw::cdf(double t) const noexcept {
  if (t <= 0.0) return 0.0;
  const double lf = eval(log_f_, slope_f_, std::log(t), true);
  if (lf <= kLogFloor) return 0.0;
  return std::min(1.0, std::exp(lf));
}

double TabulatedLaw::survival(double t) const noexcept {
  if (t <= 0.0) return 1.0;
  const double ls = eval(log_s_, slope_s_, std::log(t), false);
  if (ls <= kLogFloor) return 0.0;
  return std::min(1.0, std::exp(ls));
}

double TabulatedLaw::truncated_mean(double t) const noexcept {
  if (t <= 0.0) return 0.0;
  const double lx = std::log(t);
  const double lf = eval(log_f_, slope_f_, lx, true);
  // A window with no representable mass: fall back to the uniform limit,
  // the same convention as the exponential closed form at rate -> 0.
  if (lf <= kLogFloor) return 0.5 * t;
  const double lm = eval(log_m_, slope_m_, lx, true);
  return std::min(std::exp(lm - lf), t);
}

double TabulatedLaw::expected_retries(double t) const noexcept {
  if (t <= 0.0) return 0.0;
  const double lx = std::log(t);
  const double lf = eval(log_f_, slope_f_, lx, true);
  if (lf <= kLogFloor) return 0.0;
  const double ls = eval(log_s_, slope_s_, lx, false);
  if (ls <= kLogFloor) return kInf;  // survival underflowed: certain failure
  return std::exp(lf - ls);
}

}  // namespace mlck::math

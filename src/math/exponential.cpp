#include "math/exponential.h"

#include <cmath>

namespace mlck::math {

double failure_probability(double t, double rate) noexcept {
  if (t <= 0.0 || rate <= 0.0) return 0.0;
  return -std::expm1(-rate * t);
}

double survival(double t, double rate) noexcept {
  if (t <= 0.0 || rate <= 0.0) return 1.0;
  return std::exp(-rate * t);
}

double truncated_mean(double t, double rate) noexcept {
  if (t <= 0.0) return 0.0;
  if (rate <= 0.0) return 0.5 * t;
  const double u = rate * t;
  if (u < 1e-4) {
    // E(t,X)/t = 1/u - 1/(e^u - 1) = 1/2 - u/12 + u^3/720 - ... (Bernoulli
    // series); the leading terms keep full double precision where the
    // closed form would cancel catastrophically.
    return t * (0.5 - u / 12.0 + u * u * u / 720.0);
  }
  const double p = -std::expm1(-u);          // 1 - e^{-u}
  const double num = p - u * std::exp(-u);   // 1 - e^{-u}(1 + u)
  return t * num / (u * p);
}

}  // namespace mlck::math

#pragma once

namespace mlck::math {

/// Expected number of *failed* attempts before an operation of duration t
/// completes without being hit by an exponential failure process of the
/// given rate.
///
/// The attempt count is geometric with success probability e^{-Xt}, so the
/// expected number of failures is P/(1-P) = e^{Xt} - 1 = expm1(Xt). This is
/// the negative-binomial estimator the paper uses for failed checkpoints
/// (alpha_i, Eqn. 8), failed restarts (zeta_i, Eqn. 12) and failures per
/// computation interval (gamma_i, Eqn. 5), evaluated exactly instead of via
/// the P/(1-P) quotient, which loses precision as P -> 1.
///
/// Returns 0 for non-positive t or rate; +inf is possible (and meaningful:
/// an operation longer than a few MTBFs essentially never completes).
double expected_retries(double t, double rate) noexcept;

/// expected_retries for n independent operations of duration t each.
double expected_retries(double t, double rate, double n) noexcept;

}  // namespace mlck::math

#pragma once

// Fixed-width double lanes for the optimizer's batched sweep kernel:
// eight tau0 grid points travel together through the count-lattice walk,
// and the admissible-bound arithmetic over them runs on this wrapper.
//
// Three backends behind one interface: AVX2 (two 256-bit halves), NEON
// (four 128-bit quarters), and a plain 8-wide scalar unroll that modern
// compilers auto-vectorize where profitable. The backend only affects
// *bound* and *mask* math — quantities with no bit-identity contract.
// Model evaluation itself always runs through the scalar DauweKernel
// arithmetic (see docs/PERFORMANCE.md, "why winner-bit-identity holds"),
// so switching backends can change which subtrees are pruned by at most
// an ulp-scale margin, never which plan wins.

#include <cstdint>

#if defined(__AVX2__)
#include <immintrin.h>
#define MLCK_SIMD_AVX2 1
#elif defined(__aarch64__) && defined(__ARM_NEON)
#include <arm_neon.h>
#define MLCK_SIMD_NEON 1
#endif

namespace mlck::math {

/// Lane count of the batched sweep. Fixed at 8 independent of backend so
/// accounting (slots, masks, block shapes) is identical everywhere.
inline constexpr int kSimdLanes = 8;

/// Lane mask: bit l set means lane l participates.
using LaneMask = std::uint8_t;

inline constexpr LaneMask kAllLanes = 0xFF;

/// Eight doubles. Keep it a plain aggregate so scalar code can fill or
/// read single lanes without ceremony; the operators below dispatch to
/// the best available backend.
struct alignas(64) Vec8d {
  double lane[kSimdLanes];
};

inline Vec8d v8_splat(double x) noexcept {
  Vec8d r;
  for (double& l : r.lane) l = x;
  return r;
}

inline Vec8d v8_load(const double* p) noexcept {
  Vec8d r;
  for (int l = 0; l < kSimdLanes; ++l) r.lane[l] = p[l];
  return r;
}

#if defined(MLCK_SIMD_AVX2)

inline Vec8d v8_add(const Vec8d& a, const Vec8d& b) noexcept {
  Vec8d r;
  _mm256_store_pd(r.lane,
                  _mm256_add_pd(_mm256_load_pd(a.lane),
                                _mm256_load_pd(b.lane)));
  _mm256_store_pd(r.lane + 4,
                  _mm256_add_pd(_mm256_load_pd(a.lane + 4),
                                _mm256_load_pd(b.lane + 4)));
  return r;
}

inline Vec8d v8_mul(const Vec8d& a, const Vec8d& b) noexcept {
  Vec8d r;
  _mm256_store_pd(r.lane,
                  _mm256_mul_pd(_mm256_load_pd(a.lane),
                                _mm256_load_pd(b.lane)));
  _mm256_store_pd(r.lane + 4,
                  _mm256_mul_pd(_mm256_load_pd(a.lane + 4),
                                _mm256_load_pd(b.lane + 4)));
  return r;
}

inline Vec8d v8_div(const Vec8d& a, const Vec8d& b) noexcept {
  Vec8d r;
  _mm256_store_pd(r.lane,
                  _mm256_div_pd(_mm256_load_pd(a.lane),
                                _mm256_load_pd(b.lane)));
  _mm256_store_pd(r.lane + 4,
                  _mm256_div_pd(_mm256_load_pd(a.lane + 4),
                                _mm256_load_pd(b.lane + 4)));
  return r;
}

/// a * b + c per lane (backends may fuse; bound math tolerates either
/// rounding).
inline Vec8d v8_fma(const Vec8d& a, const Vec8d& b, const Vec8d& c) noexcept {
  Vec8d r;
  _mm256_store_pd(r.lane,
                  _mm256_fmadd_pd(_mm256_load_pd(a.lane),
                                  _mm256_load_pd(b.lane),
                                  _mm256_load_pd(c.lane)));
  _mm256_store_pd(r.lane + 4,
                  _mm256_fmadd_pd(_mm256_load_pd(a.lane + 4),
                                  _mm256_load_pd(b.lane + 4),
                                  _mm256_load_pd(c.lane + 4)));
  return r;
}

/// Bit l set when a.lane[l] > b.lane[l]. Ordered, quiet: NaN lanes
/// compare false, so garbage in masked-off lanes never sets a bit.
inline LaneMask v8_gt(const Vec8d& a, const Vec8d& b) noexcept {
  const int lo = _mm256_movemask_pd(_mm256_cmp_pd(
      _mm256_load_pd(a.lane), _mm256_load_pd(b.lane), _CMP_GT_OQ));
  const int hi = _mm256_movemask_pd(_mm256_cmp_pd(
      _mm256_load_pd(a.lane + 4), _mm256_load_pd(b.lane + 4), _CMP_GT_OQ));
  return static_cast<LaneMask>(lo | (hi << 4));
}

#elif defined(MLCK_SIMD_NEON)

inline Vec8d v8_add(const Vec8d& a, const Vec8d& b) noexcept {
  Vec8d r;
  for (int q = 0; q < 8; q += 2) {
    vst1q_f64(r.lane + q,
              vaddq_f64(vld1q_f64(a.lane + q), vld1q_f64(b.lane + q)));
  }
  return r;
}

inline Vec8d v8_mul(const Vec8d& a, const Vec8d& b) noexcept {
  Vec8d r;
  for (int q = 0; q < 8; q += 2) {
    vst1q_f64(r.lane + q,
              vmulq_f64(vld1q_f64(a.lane + q), vld1q_f64(b.lane + q)));
  }
  return r;
}

inline Vec8d v8_div(const Vec8d& a, const Vec8d& b) noexcept {
  Vec8d r;
  for (int q = 0; q < 8; q += 2) {
    vst1q_f64(r.lane + q,
              vdivq_f64(vld1q_f64(a.lane + q), vld1q_f64(b.lane + q)));
  }
  return r;
}

inline Vec8d v8_fma(const Vec8d& a, const Vec8d& b, const Vec8d& c) noexcept {
  Vec8d r;
  for (int q = 0; q < 8; q += 2) {
    vst1q_f64(r.lane + q,
              vfmaq_f64(vld1q_f64(c.lane + q), vld1q_f64(a.lane + q),
                        vld1q_f64(b.lane + q)));
  }
  return r;
}

inline LaneMask v8_gt(const Vec8d& a, const Vec8d& b) noexcept {
  LaneMask m = 0;
  for (int q = 0; q < 8; q += 2) {
    const uint64x2_t gt =
        vcgtq_f64(vld1q_f64(a.lane + q), vld1q_f64(b.lane + q));
    if (vgetq_lane_u64(gt, 0)) m |= static_cast<LaneMask>(1u << q);
    if (vgetq_lane_u64(gt, 1)) m |= static_cast<LaneMask>(1u << (q + 1));
  }
  return m;
}

#else  // 8-wide scalar unroll

inline Vec8d v8_add(const Vec8d& a, const Vec8d& b) noexcept {
  Vec8d r;
  for (int l = 0; l < kSimdLanes; ++l) r.lane[l] = a.lane[l] + b.lane[l];
  return r;
}

inline Vec8d v8_mul(const Vec8d& a, const Vec8d& b) noexcept {
  Vec8d r;
  for (int l = 0; l < kSimdLanes; ++l) r.lane[l] = a.lane[l] * b.lane[l];
  return r;
}

inline Vec8d v8_div(const Vec8d& a, const Vec8d& b) noexcept {
  Vec8d r;
  for (int l = 0; l < kSimdLanes; ++l) r.lane[l] = a.lane[l] / b.lane[l];
  return r;
}

inline Vec8d v8_fma(const Vec8d& a, const Vec8d& b, const Vec8d& c) noexcept {
  Vec8d r;
  for (int l = 0; l < kSimdLanes; ++l) {
    r.lane[l] = a.lane[l] * b.lane[l] + c.lane[l];
  }
  return r;
}

inline LaneMask v8_gt(const Vec8d& a, const Vec8d& b) noexcept {
  LaneMask m = 0;
  for (int l = 0; l < kSimdLanes; ++l) {
    // NaN compares false, matching the vector backends' quiet predicate.
    if (a.lane[l] > b.lane[l]) m |= static_cast<LaneMask>(1u << l);
  }
  return m;
}

#endif

/// Lanes of @p a exceeding the scalar @p threshold.
inline LaneMask v8_gt(const Vec8d& a, double threshold) noexcept {
  return v8_gt(a, v8_splat(threshold));
}

}  // namespace mlck::math

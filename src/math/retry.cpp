#include "math/retry.h"

#include <cmath>

namespace mlck::math {

double expected_retries(double t, double rate) noexcept {
  if (t <= 0.0 || rate <= 0.0) return 0.0;
  return std::expm1(rate * t);
}

double expected_retries(double t, double rate, double n) noexcept {
  return expected_retries(t, rate) * n;
}

}  // namespace mlck::math

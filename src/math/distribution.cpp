#include "math/distribution.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "math/exponential.h"
#include "math/integrate.h"

namespace mlck::math {

double FailureDistribution::truncated_mean(double t) const {
  if (t <= 0.0) return 0.0;
  const double ft = cdf(t);
  if (ft <= 0.0) return 0.5 * t;  // no mass in window: uniform limit
  // Shared domain policy (math/integrate.h): cap the by-parts integral at
  // 60 means — beyond the cap F == 1 to every tolerance here, so the
  // remaining area contributes (t - cap) and cancels the same term of
  // t * F(t), leaving cap * F(cap) - area — and split bulk from tail so
  // the CDF transition always sits near an integration endpoint.
  const IntegrationDomain dom = integration_domain(t, mean());
  const auto f = [this](double x) { return cdf(x); };
  const double tol = 1e-12 * std::min(t, mean());
  double area = integrate(f, 0.0, dom.split, tol);
  if (dom.cap > dom.split) area += integrate(f, dom.split, dom.cap, tol);
  return (dom.cap * cdf(dom.cap) - area) / ft;
}

// ---------------------------------------------------------------- Exponential

Exponential::Exponential(double rate) : rate_(rate) {
  if (!(rate > 0.0)) {
    throw std::invalid_argument("Exponential: rate must be > 0");
  }
}

double Exponential::cdf(double t) const {
  return failure_probability(t, rate_);
}

double Exponential::survival(double t) const {
  return math::survival(t, rate_);
}

double Exponential::truncated_mean(double t) const {
  return math::truncated_mean(t, rate_);
}

double Exponential::sample(util::Rng& rng) const {
  return rng.exponential(rate_);
}

std::string Exponential::describe() const {
  std::ostringstream os;
  os << "exponential(mean=" << 1.0 / rate_ << ")";
  return os.str();
}

// -------------------------------------------------------------------- Weibull

Weibull::Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
  if (!(shape > 0.0) || !(scale > 0.0)) {
    throw std::invalid_argument("Weibull: shape and scale must be > 0");
  }
}

Weibull Weibull::with_mean(double mean, double shape) {
  if (!(mean > 0.0)) throw std::invalid_argument("Weibull: mean must be > 0");
  const double scale = mean / std::exp(std::lgamma(1.0 + 1.0 / shape));
  return Weibull(shape, scale);
}

double Weibull::cdf(double t) const {
  if (t <= 0.0) return 0.0;
  return -std::expm1(-std::pow(t / scale_, shape_));
}

double Weibull::survival(double t) const {
  if (t <= 0.0) return 1.0;
  return std::exp(-std::pow(t / scale_, shape_));
}

double Weibull::mean() const {
  return scale_ * std::exp(std::lgamma(1.0 + 1.0 / shape_));
}

double Weibull::sample(util::Rng& rng) const {
  // Inverse CDF: t = scale * (-ln U)^(1/shape).
  return scale_ * std::pow(-std::log(rng.uniform_pos()), 1.0 / shape_);
}

std::string Weibull::describe() const {
  std::ostringstream os;
  os << "weibull(shape=" << shape_ << ", scale=" << scale_ << ")";
  return os.str();
}

// ------------------------------------------------------------------ LogNormal

LogNormal::LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  if (!(sigma > 0.0)) {
    throw std::invalid_argument("LogNormal: sigma must be > 0");
  }
}

LogNormal LogNormal::with_mean(double mean, double sigma) {
  if (!(mean > 0.0)) {
    throw std::invalid_argument("LogNormal: mean must be > 0");
  }
  return LogNormal(std::log(mean) - 0.5 * sigma * sigma, sigma);
}

double LogNormal::cdf(double t) const {
  if (t <= 0.0) return 0.0;
  const double z = (std::log(t) - mu_) / sigma_;
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double LogNormal::survival(double t) const {
  if (t <= 0.0) return 1.0;
  const double z = (std::log(t) - mu_) / sigma_;
  return 0.5 * std::erfc(z / std::sqrt(2.0));
}

double LogNormal::mean() const {
  return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

double LogNormal::sample(util::Rng& rng) const {
  // Box-Muller on the library RNG keeps trials reproducible across
  // platforms (std::normal_distribution is implementation-defined).
  constexpr double kTwoPi = 6.283185307179586;
  const double u1 = rng.uniform_pos();
  const double u2 = rng.uniform();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
  return std::exp(mu_ + sigma_ * z);
}

std::string LogNormal::describe() const {
  std::ostringstream os;
  os << "lognormal(mu=" << mu_ << ", sigma=" << sigma_ << ")";
  return os.str();
}

}  // namespace mlck::math

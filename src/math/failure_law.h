#pragma once

#include <memory>
#include <string>

#include "math/distribution.h"
#include "math/tabulated_law.h"

namespace mlck::math {

/// The failure-law quantities the analytic model consumes for one
/// effective failure process, behind one small interface: the paper
/// derives its recursion (Sec. III-B) "for a chosen probability density
/// function", and every place the model previously inlined exponential
/// math now goes through these four calls.
///
///   failure_probability(t)  P(t)       — paper Eqn. 1 generalized
///   truncated_mean(t)       E(t)       — paper Eqn. 2 generalized
///   expected_retries(t)     P/(1 - P)  — the geometric retry factor of
///                                        Eqns. 5/8/12
///
/// Implementations are immutable after construction and safe to share
/// across threads.
class LawPrimitive {
 public:
  virtual ~LawPrimitive() = default;

  virtual double failure_probability(double t) const noexcept = 0;
  virtual double survival(double t) const noexcept = 0;
  virtual double truncated_mean(double t) const noexcept = 0;
  virtual double expected_retries(double t) const noexcept = 0;
  virtual std::string describe() const = 0;
};

/// Closed-form exponential primitive (the paper's assumption): thin
/// virtual shims over math/exponential.h and math/retry.h, bit-identical
/// to calling those free functions directly.
class ExponentialPrimitive final : public LawPrimitive {
 public:
  explicit ExponentialPrimitive(double rate) noexcept : rate_(rate) {}

  double failure_probability(double t) const noexcept override;
  double survival(double t) const noexcept override;
  double truncated_mean(double t) const noexcept override;
  double expected_retries(double t) const noexcept override;
  std::string describe() const override;

  double rate() const noexcept { return rate_; }

 private:
  double rate_;
};

/// A failure-law *family*: the shape of the law with the time scale left
/// free. The model asks the family for a primitive per effective rate
/// (severity-binned lambda_k, cumulative lambda_c, scratch lambda), each
/// meaning "this family scaled to mean 1/rate"; the simulator asks it for
/// a sampling distribution with a concrete mean. Both sides of a scenario
/// therefore share one declaration of the law.
///
/// Weibull (fixed shape) and log-normal (fixed sigma) are closed under
/// time scaling, so each family instance tabulates ONE unit-mean
/// TabulatedLaw at construction and serves every rate through scaled
/// views — primitive() is cheap and allocation-light however many rates a
/// kernel build requests.
class FailureLaw {
 public:
  enum class Kind { kExponential, kWeibull, kLogNormal };

  virtual ~FailureLaw() = default;

  virtual Kind kind() const noexcept = 0;

  /// The primitive for an effective process with the given @p rate (the
  /// family law with mean 1/rate). Throws std::invalid_argument for
  /// rate <= 0 — callers gate zero-rate levels to the closed-form
  /// conventions instead (expected_retries == 0, truncated_mean == t/2).
  virtual std::shared_ptr<const LawPrimitive> primitive(double rate) const = 0;

  /// The sampling distribution with the given @p mean, for the simulator.
  virtual std::unique_ptr<FailureDistribution> distribution(
      double mean) const = 0;

  /// The *fast* sampling distribution with the given @p mean: draws
  /// through the family's shared unit-mean inverse-CDF table (one uniform
  /// per draw, O(1), no per-draw transcendentals) where the family has
  /// one, falling back to distribution() where the closed form is already
  /// a single cheap uniform (exponential). Sampled values agree with
  /// distribution() in law to table accuracy but are NOT the same stream
  /// of bits — LogNormal's Box-Muller sampler even consumes a different
  /// number of uniforms — so validation paths that pin seeded results
  /// keep using distribution(); throughput paths (bench_sim's tabulated
  /// lanes) opt in here.
  virtual std::unique_ptr<FailureDistribution> sampling_distribution(
      double mean) const {
    return distribution(mean);
  }

  /// Family description without a time scale, e.g. "weibull(shape=0.7)".
  virtual std::string describe() const = 0;

  static std::shared_ptr<const FailureLaw> exponential();
  static std::shared_ptr<const FailureLaw> weibull(double shape);
  static std::shared_ptr<const FailureLaw> lognormal(double sigma);
};

/// True when @p law is absent or the exponential family — the cases the
/// model serves through its bit-identical closed-form fast path.
inline bool is_exponential_family(const FailureLaw* law) noexcept {
  return law == nullptr || law->kind() == FailureLaw::Kind::kExponential;
}

}  // namespace mlck::math

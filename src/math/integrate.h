#pragma once

#include <functional>

namespace mlck::math {

/// Adaptive Simpson quadrature of @p f over [a, b] to absolute tolerance
/// @p tol. Deterministic; recursion depth capped (the result of the last
/// refinement is returned if the cap is hit).
///
/// Used for truncated means of non-exponential failure laws, where no
/// closed form exists. The integrands are smooth CDFs, so convergence is
/// fast; tests compare against closed forms where those exist.
double integrate(const std::function<double(double)>& f, double a, double b,
                 double tol = 1e-10);

}  // namespace mlck::math

#pragma once

#include <functional>

namespace mlck::math {

/// Adaptive Simpson quadrature of @p f over [a, b] to absolute tolerance
/// @p tol. Deterministic; recursion depth capped (the result of the last
/// refinement is returned if the cap is hit).
///
/// Used for truncated means of non-exponential failure laws, where no
/// closed form exists. The integrands are smooth CDFs, so convergence is
/// fast; tests compare against closed forms where those exist.
double integrate(const std::function<double(double)>& f, double a, double b,
                 double tol = 1e-10);

/// The quadrature domain policy for failure-law integrands, shared by the
/// verify oracle, the generic FailureDistribution::truncated_mean, and the
/// TabulatedLaw builder (one definition so a policy fix lands everywhere).
///
/// Failure densities peak near the mean and adaptive Simpson terminates on
/// an apparent-zero estimate when the whole mass hides between the first
/// samples of a long interval. The policy therefore (a) caps the domain at
/// kDomainCapMultiple means — beyond which the exponential's remaining
/// mass is ~e^{-60}, far below every quadrature tolerance in the tree —
/// and (b) splits bulk from tail at kBulkSplitMultiple means so the peak
/// always sits within a small factor of an integration endpoint.
inline constexpr double kDomainCapMultiple = 60.0;
inline constexpr double kBulkSplitMultiple = 8.0;

struct IntegrationDomain {
  double cap = 0.0;    ///< upper integration limit: min(t, 60 * mean)
  double split = 0.0;  ///< bulk/tail boundary: min(cap, 8 * mean)
};

/// The capped, split integration domain for a window of length @p t over a
/// law with the given @p mean (<= 0 degenerates to {t, t}: no cap).
IntegrationDomain integration_domain(double t, double mean) noexcept;

}  // namespace mlck::math

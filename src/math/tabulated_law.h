#pragma once

#include <memory>
#include <string>
#include <vector>

#include "math/distribution.h"
#include "util/rng.h"

namespace mlck::math {

/// Production-grade tabulation of one failure law: the adaptive-Simpson
/// machinery that previously lived only in the verify oracle, promoted to
/// a reusable primitive. Build-time quadrature populates a log-spaced grid
/// with the law's log-CDF, log-survival, and log partial first moment
/// M(t) = integral_0^t x dF; queries interpolate with a monotone cubic
/// (Fritsch-Carlson) in log-log space, so every derived quantity the model
/// needs —
///
///   P(t)                (interval failure probability)
///   E(t) = M(t) / P(t)  (truncated mean, paper Eqn. 2 generalized)
///   P / (1 - P)         (the geometric retry factor)
///
/// — is one table lookup instead of one adaptive integral. Storing *logs*
/// keeps the retry factor exp(logF - logS) numerically meaningful at both
/// extremes: tiny windows (P ~ 1e-300) and windows deep past the cap
/// (S underflows and retries saturate to +inf) both behave like the
/// exponential closed forms do.
///
/// Domain policy: the grid spans [lo_fraction * mean, cap], where the cap
/// starts at the shared math::kDomainCapMultiple means (the verify
/// oracle's 60/rate rule) and extends until the tail mass drops below
/// Options::tail_survival — heavy-tailed Weibull shapes keep real mass
/// past 60 means, so a fixed cap would bias E(t) there. Below the grid the
/// tables extrapolate linearly in log-log (exact for Weibull, conservative
/// otherwise — the probabilities there are negligible either way); above
/// it F and M saturate (E(t) -> mean) and log-survival keeps its end
/// slope.
///
/// Immutable after construction; shared freely across threads.
class TabulatedLaw {
 public:
  struct Options {
    double lo_fraction = 1e-4;     ///< grid start as a fraction of the mean
    int points_per_decade = 64;    ///< log-grid density
    double tail_survival = 1e-14;  ///< grid extends until S(x) <= this
    /// Hard stop for the tail extension, as a multiple of the mean (a
    /// pathological law cannot grow the table without bound).
    double hi_cap_multiple = 1e9;
  };

  /// Tabulates @p law (used during construction only; not retained).
  explicit TabulatedLaw(const FailureDistribution& law)
      : TabulatedLaw(law, Options()) {}
  TabulatedLaw(const FailureDistribution& law, Options options);

  double cdf(double t) const noexcept;
  double survival(double t) const noexcept;
  double truncated_mean(double t) const noexcept;
  double expected_retries(double t) const noexcept;

  /// F^{-1}(u): the smallest t with cdf(t) >= u, via the inverse-CDF
  /// tables built at construction (monotone Hermite over the same log-log
  /// grid, knots at the forward table's (log F_i, log x_i) pairs). O(1)
  /// amortized: a bounded Hermite cell search instead of per-draw numeric
  /// inversion. quantile(u) for u <= 0 is 0; for u >= 1 it is +infinity.
  /// Outside the tabulated probability range the inverse extends its end
  /// slopes in log-log space, matching the forward tables' extrapolation
  /// convention (exact power-law/exponential-like tails; the mass there
  /// is below Options::tail_survival by construction).
  double quantile(double u) const noexcept;

  /// S^{-1}(s) == quantile(1 - s), computed on the survival-side table so
  /// deep-tail draws (s near 0) keep full precision where 1 - s would
  /// round. inverse_survival(s) for s >= 1 is 0; for s <= 0, +infinity.
  double inverse_survival(double s) const noexcept;

  /// Draws one sample by inverse transform: inverse_survival(u) with
  /// u = rng.uniform_pos(). Consumes exactly ONE uniform and uses the
  /// survival convention — the same stream shape as Weibull::sample — so
  /// a per-trial draw stream stays aligned draw-for-draw when a table
  /// replaces a closed-form single-uniform sampler. The drawn *values*
  /// match the tabulated law to table accuracy, not bit-for-bit with any
  /// closed form (see TabulatedDistribution).
  double sample(util::Rng& rng) const noexcept {
    return inverse_survival(rng.uniform_pos());
  }

  double mean() const noexcept { return mean_; }
  const std::string& describe() const noexcept { return describe_; }
  std::size_t grid_points() const noexcept { return log_x_.size(); }

 private:
  /// Interval count of the direct central inverse grid (see
  /// build_central_table).
  static constexpr std::size_t kCentralIntervals = 1024;

  /// Builds the two inverse interpolants (CDF side for u below the
  /// median, survival side at and past it) from the forward tables.
  void build_inverse_tables();

  /// Builds the direct central sampling grid: quantile values on a
  /// UNIFORM u lattice over [1/N, 1 - 1/N] with monotone Hermite slopes,
  /// resampled from the log-space inverse tables. A central draw is then
  /// one multiply to find its cell and one cubic — no binary search, no
  /// log, no exp — which is what makes table sampling cheaper than the
  /// closed forms it replaces. Tail draws (u outside the lattice,
  /// ~0.2% of uniforms) keep the full-precision log-space path. Skipped
  /// (empty grid) for degenerate tables whose quantiles are not finite
  /// and strictly increasing on the lattice.
  void build_central_table();

  /// Hermite evaluation on the central grid; @p u must lie in
  /// [central_lo_, central_hi_].
  double central_inverse(double u) const noexcept;

  /// Inverse lookup on the CDF side: log x such that log F(x) = lf.
  double x_from_log_cdf(double lf) const noexcept;

  /// Inverse lookup on the survival side: log x such that log S(x) = ls.
  double x_from_log_survival(double ls) const noexcept;

  /// Monotone-cubic evaluation of table @p y at log-abscissa @p lx,
  /// linearly extrapolating below the grid and, when @p saturate_above,
  /// clamping to the last knot above it (otherwise extending the end
  /// slope).
  double eval(const std::vector<double>& y, const std::vector<double>& slope,
              double lx, bool saturate_above) const noexcept;

  double mean_ = 0.0;
  std::string describe_;
  std::vector<double> log_x_;   ///< log-spaced abscissae (log x)
  std::vector<double> log_f_;   ///< log CDF, floored at the underflow edge
  std::vector<double> log_s_;   ///< log survival, floored likewise
  std::vector<double> log_m_;   ///< log partial first moment
  std::vector<double> slope_f_, slope_s_, slope_m_;  ///< monotone slopes

  /// Inverse tables: strictly monotone (log prob, log x) knot pairs
  /// extracted from the forward grid, with Fritsch-Carlson slopes for the
  /// non-uniform spacing. The CDF side ascends in log F; the survival
  /// side ascends in log S (deep tail first).
  std::vector<double> inv_f_z_, inv_f_x_, inv_f_m_;
  std::vector<double> inv_s_z_, inv_s_x_, inv_s_m_;

  /// Direct central inverse: quantile values (linear scale) on a uniform
  /// u grid, the O(1) lane sample() rides for ~99.8% of draws.
  std::vector<double> central_x_, central_m_;
  double central_lo_ = 0.0, central_hi_ = 0.0, central_step_ = 0.0;
  double central_inv_step_ = 0.0;
};

/// FailureDistribution view over a shared TabulatedLaw scaled to an
/// arbitrary mean (the table is closed under time scaling, like
/// ScaledTabulatedPrimitive on the model side). Its sample() is the O(1)
/// inverse-CDF fast lane for the simulator: one uniform per draw through
/// the tables, no per-draw transcendental inversion or Box-Muller pair.
///
/// Opt-in by design: sampled *values* agree with the law only to table
/// accuracy (docs/MODELS.md), so the default simulation paths keep the
/// closed-form samplers and their bit-pinned draw streams; callers choose
/// the table lane explicitly (FailureLaw::sampling_distribution,
/// bench_sim's tabulated lanes).
class TabulatedDistribution final : public FailureDistribution {
 public:
  /// The law of scale * T for the tabulated T. @p table must be non-null;
  /// @p scale must be positive and finite.
  TabulatedDistribution(std::shared_ptr<const TabulatedLaw> table,
                        double scale);

  double cdf(double t) const override { return table_->cdf(t / scale_); }
  double survival(double t) const override {
    return table_->survival(t / scale_);
  }
  double mean() const override { return scale_ * table_->mean(); }
  double truncated_mean(double t) const override {
    return scale_ * table_->truncated_mean(t / scale_);
  }
  /// One uniform_pos per draw, survival convention (see
  /// TabulatedLaw::sample).
  double sample(util::Rng& rng) const override {
    return scale_ * table_->sample(rng);
  }
  std::string describe() const override;

 private:
  std::shared_ptr<const TabulatedLaw> table_;
  double scale_;
};

}  // namespace mlck::math

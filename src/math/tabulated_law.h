#pragma once

#include <string>
#include <vector>

#include "math/distribution.h"

namespace mlck::math {

/// Production-grade tabulation of one failure law: the adaptive-Simpson
/// machinery that previously lived only in the verify oracle, promoted to
/// a reusable primitive. Build-time quadrature populates a log-spaced grid
/// with the law's log-CDF, log-survival, and log partial first moment
/// M(t) = integral_0^t x dF; queries interpolate with a monotone cubic
/// (Fritsch-Carlson) in log-log space, so every derived quantity the model
/// needs —
///
///   P(t)                (interval failure probability)
///   E(t) = M(t) / P(t)  (truncated mean, paper Eqn. 2 generalized)
///   P / (1 - P)         (the geometric retry factor)
///
/// — is one table lookup instead of one adaptive integral. Storing *logs*
/// keeps the retry factor exp(logF - logS) numerically meaningful at both
/// extremes: tiny windows (P ~ 1e-300) and windows deep past the cap
/// (S underflows and retries saturate to +inf) both behave like the
/// exponential closed forms do.
///
/// Domain policy: the grid spans [lo_fraction * mean, cap], where the cap
/// starts at the shared math::kDomainCapMultiple means (the verify
/// oracle's 60/rate rule) and extends until the tail mass drops below
/// Options::tail_survival — heavy-tailed Weibull shapes keep real mass
/// past 60 means, so a fixed cap would bias E(t) there. Below the grid the
/// tables extrapolate linearly in log-log (exact for Weibull, conservative
/// otherwise — the probabilities there are negligible either way); above
/// it F and M saturate (E(t) -> mean) and log-survival keeps its end
/// slope.
///
/// Immutable after construction; shared freely across threads.
class TabulatedLaw {
 public:
  struct Options {
    double lo_fraction = 1e-4;     ///< grid start as a fraction of the mean
    int points_per_decade = 64;    ///< log-grid density
    double tail_survival = 1e-14;  ///< grid extends until S(x) <= this
    /// Hard stop for the tail extension, as a multiple of the mean (a
    /// pathological law cannot grow the table without bound).
    double hi_cap_multiple = 1e9;
  };

  /// Tabulates @p law (used during construction only; not retained).
  explicit TabulatedLaw(const FailureDistribution& law)
      : TabulatedLaw(law, Options()) {}
  TabulatedLaw(const FailureDistribution& law, Options options);

  double cdf(double t) const noexcept;
  double survival(double t) const noexcept;
  double truncated_mean(double t) const noexcept;
  double expected_retries(double t) const noexcept;

  double mean() const noexcept { return mean_; }
  const std::string& describe() const noexcept { return describe_; }
  std::size_t grid_points() const noexcept { return log_x_.size(); }

 private:
  /// Monotone-cubic evaluation of table @p y at log-abscissa @p lx,
  /// linearly extrapolating below the grid and, when @p saturate_above,
  /// clamping to the last knot above it (otherwise extending the end
  /// slope).
  double eval(const std::vector<double>& y, const std::vector<double>& slope,
              double lx, bool saturate_above) const noexcept;

  double mean_ = 0.0;
  std::string describe_;
  std::vector<double> log_x_;   ///< log-spaced abscissae (log x)
  std::vector<double> log_f_;   ///< log CDF, floored at the underflow edge
  std::vector<double> log_s_;   ///< log survival, floored likewise
  std::vector<double> log_m_;   ///< log partial first moment
  std::vector<double> slope_f_, slope_s_, slope_m_;  ///< monotone slopes
};

}  // namespace mlck::math

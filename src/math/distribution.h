#pragma once

#include <memory>
#include <string>

#include "util/rng.h"

namespace mlck::math {

/// A failure inter-arrival law. The paper's model (Sec. III-B) is derived
/// "for a chosen probability density function" but evaluated only for the
/// exponential; the library keeps that generality so the simulator can
/// stress the exponential modeling assumption against heavier- or
/// lighter-tailed reality (Weibull shape < 1 is the empirically reported
/// regime for HPC failures).
///
/// All times in minutes. Implementations must be immutable after
/// construction (shared freely across threads).
class FailureDistribution {
 public:
  virtual ~FailureDistribution() = default;

  /// P(T <= t).
  virtual double cdf(double t) const = 0;

  /// P(T > t). The default computes 1 - cdf(t), which loses all precision
  /// once cdf(t) rounds to 1; laws with a closed-form tail override it so
  /// survival stays meaningful deep into the tail (the retry factor
  /// P/(1-P) needs it there).
  virtual double survival(double t) const { return 1.0 - cdf(t); }

  /// E[T].
  virtual double mean() const = 0;

  /// E[T | T <= t]: expected failure position within a window of length
  /// t, given a failure occurred inside it. Default implementation
  /// integrates t*F(t) by parts with adaptive quadrature:
  ///   E[T | T <= t] = (t F(t) - integral_0^t F(x) dx) / F(t)
  /// over the shared capped domain (math::integration_domain), so windows
  /// many means long cannot hide the CDF transition between the first
  /// Simpson samples. Overridden with the closed form where one exists.
  virtual double truncated_mean(double t) const;

  /// Draws one inter-arrival sample.
  virtual double sample(util::Rng& rng) const = 0;

  /// Human-readable description, e.g. "weibull(shape=0.7, scale=12.3)".
  virtual std::string describe() const = 0;
};

/// Exponential law with the given rate (the paper's assumption).
/// Memoryless: a renewal process of these inter-arrivals is Poisson, so
/// this reproduces RandomFailureSource exactly in distribution.
class Exponential final : public FailureDistribution {
 public:
  explicit Exponential(double rate);

  double cdf(double t) const override;
  double survival(double t) const override;
  double mean() const override { return 1.0 / rate_; }
  double truncated_mean(double t) const override;
  double sample(util::Rng& rng) const override;
  std::string describe() const override;

  double rate() const noexcept { return rate_; }

 private:
  double rate_;
};

/// Weibull law, F(t) = 1 - exp(-(t/scale)^shape). Shape < 1 gives the
/// heavy-tailed, burst-prone behaviour reported for production HPC
/// failure logs; shape = 1 degenerates to the exponential.
class Weibull final : public FailureDistribution {
 public:
  Weibull(double shape, double scale);

  /// Weibull with the given mean: scale = mean / Gamma(1 + 1/shape).
  static Weibull with_mean(double mean, double shape);

  double cdf(double t) const override;
  double survival(double t) const override;
  double mean() const override;
  double sample(util::Rng& rng) const override;
  std::string describe() const override;

  double shape() const noexcept { return shape_; }
  double scale() const noexcept { return scale_; }

 private:
  double shape_;
  double scale_;
};

/// Log-normal law: log T ~ N(mu, sigma^2). Right-skewed with a light
/// left tail — failures rarely arrive immediately after a repair.
class LogNormal final : public FailureDistribution {
 public:
  LogNormal(double mu, double sigma);

  /// Log-normal with the given mean and sigma:
  /// mu = log(mean) - sigma^2/2.
  static LogNormal with_mean(double mean, double sigma);

  double cdf(double t) const override;
  double survival(double t) const override;
  double mean() const override;
  double sample(util::Rng& rng) const override;
  std::string describe() const override;

  double mu() const noexcept { return mu_; }
  double sigma() const noexcept { return sigma_; }

 private:
  double mu_;
  double sigma_;
};

}  // namespace mlck::math

#include "math/integrate.h"

#include <algorithm>
#include <cmath>

namespace mlck::math {

namespace {

double simpson(double fa, double fm, double fb, double h) {
  return h / 6.0 * (fa + 4.0 * fm + fb);
}

double adaptive(const std::function<double(double)>& f, double a, double b,
                double fa, double fm, double fb, double whole, double tol,
                int depth) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = simpson(fa, flm, fm, m - a);
  const double right = simpson(fm, frm, fb, b - m);
  const double delta = left + right - whole;
  if (depth <= 0 || std::abs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;  // Richardson correction
  }
  return adaptive(f, a, m, fa, flm, fm, left, tol / 2.0, depth - 1) +
         adaptive(f, m, b, fm, frm, fb, right, tol / 2.0, depth - 1);
}

}  // namespace

double integrate(const std::function<double(double)>& f, double a, double b,
                 double tol) {
  if (!(b > a)) return 0.0;
  const double fa = f(a);
  const double fb = f(b);
  const double m = 0.5 * (a + b);
  const double fm = f(m);
  const double whole = simpson(fa, fm, fb, b - a);
  return adaptive(f, a, b, fa, fm, fb, whole, tol, /*depth=*/48);
}

IntegrationDomain integration_domain(double t, double mean) noexcept {
  IntegrationDomain d;
  if (mean <= 0.0) {
    d.cap = t;
    d.split = t;
    return d;
  }
  d.cap = std::min(t, kDomainCapMultiple * mean);
  d.split = std::min(d.cap, kBulkSplitMultiple * mean);
  return d;
}

}  // namespace mlck::math

#pragma once

namespace mlck::math {

/// P(t, X) = 1 - e^{-Xt}: probability that an exponential failure process
/// with rate X produces at least one failure within a window of length t
/// (paper Eqn. 1). Returns 0 for non-positive t or rate.
double failure_probability(double t, double rate) noexcept;

/// e^{-Xt}: probability the window of length t completes failure-free.
double survival(double t, double rate) noexcept;

/// E(t, X): expected failure position within a window of length t, given
/// that a failure occurred in the window — the mean of the exponential
/// distribution truncated to [0, t] (paper Eqn. 2):
///
///   E(t, X) = (1/X - e^{-Xt} (1/X + t)) / (1 - e^{-Xt})
///
/// Evaluated in the numerically stable form
///
///   E(t, X) = t * (-expm1(-u) - u e^{-u}) / (u * -expm1(-u)),   u = X t,
///
/// with the series limit t * (1/2 - u/12 + u^2/720) for tiny u. Degenerate
/// inputs take the distribution limits: rate <= 0 behaves as the uniform
/// limit t/2; t <= 0 yields 0.
double truncated_mean(double t, double rate) noexcept;

}  // namespace mlck::math

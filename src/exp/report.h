#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "exp/experiments.h"

namespace mlck::exp {

/// Prints an efficiency-comparison table (one row per scenario, one
/// column group per technique) in the shape of paper Figures 2, 4, 5:
/// simulated mean, standard deviation, and each technique's own
/// prediction.
void print_efficiency_table(std::ostream& os, const std::string& title,
                            const std::vector<ScenarioResult>& rows);

/// Prints the Figure 3 time-breakdown table: per scenario and technique,
/// the share of wall-clock time spent in each event class.
void print_breakdown_table(std::ostream& os, const std::string& title,
                           const std::vector<ScenarioResult>& rows);

/// Prints the Figure 6 prediction-error table: predicted minus simulated
/// efficiency per technique, rows sorted by the |error| of
/// @p sort_technique (the paper sorts by Moody et al.).
void print_prediction_error_table(std::ostream& os, const std::string& title,
                                  const std::vector<ScenarioResult>& rows,
                                  const std::string& sort_technique);

/// Writes the efficiency comparison as CSV (one line per scenario x
/// technique) for downstream plotting.
void write_efficiency_csv(std::ostream& os,
                          const std::vector<ScenarioResult>& rows);

}  // namespace mlck::exp

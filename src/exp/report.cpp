#include "exp/report.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "util/csv.h"
#include "util/table.h"

namespace mlck::exp {

using util::Table;

void print_efficiency_table(std::ostream& os, const std::string& title,
                            const std::vector<ScenarioResult>& rows) {
  os << title << '\n';
  if (rows.empty()) return;
  std::vector<std::string> header{"scenario"};
  for (const auto& o : rows.front().outcomes) {
    header.push_back(o.technique + " sim");
    header.push_back("sd");
    header.push_back("pred");
  }
  Table table(std::move(header));
  for (const auto& row : rows) {
    std::vector<std::string> cells{row.label};
    for (const auto& o : row.outcomes) {
      cells.push_back(Table::pct(o.sim.efficiency.mean));
      cells.push_back(Table::pct(o.sim.efficiency.stddev));
      cells.push_back(Table::pct(o.predicted_efficiency));
    }
    table.add_row(std::move(cells));
  }
  table.print(os);
}

void print_breakdown_table(std::ostream& os, const std::string& title,
                           const std::vector<ScenarioResult>& rows) {
  os << title << '\n';
  Table table({"scenario", "technique", "useful", "ckpt ok", "ckpt fail",
               "restart ok", "restart fail", "rework comp", "rework ckpt",
               "rework rst"});
  for (const auto& row : rows) {
    for (const auto& o : row.outcomes) {
      const auto& s = o.sim.time_shares;
      table.add_row({row.label, o.technique, Table::pct(s.useful),
                     Table::pct(s.checkpoint_ok),
                     Table::pct(s.checkpoint_failed),
                     Table::pct(s.restart_ok), Table::pct(s.restart_failed),
                     Table::pct(s.rework_compute),
                     Table::pct(s.rework_checkpoint),
                     Table::pct(s.rework_restart)});
    }
  }
  table.print(os);
}

void print_prediction_error_table(std::ostream& os, const std::string& title,
                                  const std::vector<ScenarioResult>& rows,
                                  const std::string& sort_technique) {
  os << title << '\n';
  std::vector<const ScenarioResult*> order;
  order.reserve(rows.size());
  for (const auto& row : rows) order.push_back(&row);
  std::stable_sort(order.begin(), order.end(),
                   [&](const ScenarioResult* a, const ScenarioResult* b) {
                     return std::abs(a->outcome(sort_technique)
                                         .prediction_error()) <
                            std::abs(b->outcome(sort_technique)
                                         .prediction_error());
                   });

  if (rows.empty()) return;
  std::vector<std::string> header{"#", "scenario"};
  for (const auto& o : rows.front().outcomes) {
    header.push_back(o.technique + " err");
  }
  Table table(std::move(header));
  int index = 1;
  for (const ScenarioResult* row : order) {
    std::vector<std::string> cells{std::to_string(index++), row->label};
    for (const auto& o : row->outcomes) {
      cells.push_back(Table::pct(o.prediction_error(), 2));
    }
    table.add_row(std::move(cells));
  }
  table.print(os);
}

void write_efficiency_csv(std::ostream& os,
                          const std::vector<ScenarioResult>& rows) {
  util::CsvWriter csv(os);
  csv.row({"scenario", "technique", "plan", "sim_efficiency_mean",
           "sim_efficiency_stddev", "predicted_efficiency", "trials",
           "capped_trials"});
  for (const auto& row : rows) {
    for (const auto& o : row.outcomes) {
      csv.row({row.label, o.technique, o.plan.to_string(),
               std::to_string(o.sim.efficiency.mean),
               std::to_string(o.sim.efficiency.stddev),
               std::to_string(o.predicted_efficiency),
               std::to_string(o.sim.trials),
               std::to_string(o.sim.capped_trials)});
    }
  }
}

}  // namespace mlck::exp

#include "exp/experiments.h"

#include <stdexcept>

#include "systems/scaling.h"

namespace mlck::exp {

const TechniqueOutcome& ScenarioResult::outcome(
    const std::string& technique) const {
  for (const auto& o : outcomes) {
    if (o.technique == technique) return o;
  }
  throw std::out_of_range("no outcome for technique: " + technique);
}

ExperimentOptions options_from(
    const engine::ScenarioSpec& spec, util::ThreadPool* pool,
    std::unique_ptr<const math::FailureDistribution>& distribution_storage) {
  ExperimentOptions options;
  options.trials = spec.trials;
  options.seed = spec.seed;
  options.sim = spec.sim;
  options.pool = pool;
  if (!spec.distribution.is_default_exponential()) {
    distribution_storage = spec.distribution.make(spec.system);
    options.failure_distribution = distribution_storage.get();
  }
  return options;
}

TechniqueOutcome evaluate_technique(const core::Technique& technique,
                                    const systems::SystemConfig& system,
                                    const ExperimentOptions& options) {
  TechniqueOutcome out;
  const core::TechniqueResult selected =
      technique.select_plan(system, options.pool);
  out.technique = selected.technique;
  out.plan = selected.plan;
  out.predicted_time = selected.predicted_time;
  out.predicted_efficiency = selected.predicted_efficiency;
  if (options.failure_distribution != nullptr) {
    out.sim = sim::run_trials_with_distribution(
        system, selected.plan, *options.failure_distribution, options.trials,
        options.seed, options.sim, options.pool);
  } else {
    out.sim = sim::run_trials(system, selected.plan, options.trials,
                              options.seed, options.sim, options.pool);
  }
  return out;
}

ScenarioResult run_scenario(
    const systems::SystemConfig& system, const std::string& label,
    const std::vector<std::unique_ptr<core::Technique>>& techniques,
    const ExperimentOptions& options) {
  ScenarioResult result;
  result.label = label;
  result.system = system;
  result.outcomes.reserve(techniques.size());
  for (const auto& technique : techniques) {
    result.outcomes.push_back(
        evaluate_technique(*technique, system, options));
  }
  return result;
}

std::vector<ScaledScenario> scaled_b_grid(
    double base_time, const std::vector<double>& pfs_costs) {
  std::vector<ScaledScenario> grid;
  for (const double pfs : pfs_costs) {
    for (const double mtbf : systems::figure4_mtbf_grid()) {
      ScaledScenario sc;
      sc.mtbf = mtbf;
      sc.pfs_cost = pfs;
      sc.system = systems::scaled_system_b(mtbf, pfs, base_time);
      sc.label = "PFS=" + std::to_string(static_cast<int>(pfs)) +
                 "m MTBF=" + std::to_string(static_cast<int>(mtbf)) + "m";
      grid.push_back(std::move(sc));
    }
  }
  return grid;
}

}  // namespace mlck::exp

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/technique.h"
#include "engine/scenario.h"
#include "sim/trial_runner.h"
#include "systems/system_config.h"
#include "util/thread_pool.h"

namespace mlck::exp {

/// Shared controls for every experiment driver. Defaults reproduce the
/// paper's settings (200 trials; Fig. 5 raises trials to 400); tests dial
/// the trial count down.
struct ExperimentOptions {
  std::size_t trials = 200;
  std::uint64_t seed = 0x5eed2018c0ffeeULL;
  sim::SimOptions sim;
  util::ThreadPool* pool = nullptr;

  /// Failure inter-arrival law for the validation simulations. When null
  /// the simulator's native exponential source is used (the paper's
  /// assumption, bit-compatible with historical seeds); when set, trials
  /// draw from this renewal law instead. Non-owning; must outlive use.
  const math::FailureDistribution* failure_distribution = nullptr;
};

/// Experiment controls from a declarative scenario: trials, seed, and sim
/// options are copied from @p spec; a non-default distribution in the
/// spec materializes into @p distribution_storage (owned by the caller)
/// and is wired into the returned options.
ExperimentOptions options_from(
    const engine::ScenarioSpec& spec, util::ThreadPool* pool,
    std::unique_ptr<const math::FailureDistribution>& distribution_storage);

/// One technique's bar in a figure: its selected plan, its own forecast
/// (the diamond), and the simulated outcome (the bar and error whiskers).
struct TechniqueOutcome {
  std::string technique;
  core::CheckpointPlan plan;
  double predicted_efficiency = 0.0;
  double predicted_time = 0.0;
  sim::TrialStats sim;

  /// Prediction error as plotted in Figure 6: predicted minus simulated
  /// efficiency.
  double prediction_error() const noexcept {
    return predicted_efficiency - sim.efficiency.mean;
  }
};

/// One x-axis position of a figure: a system/scenario and every
/// technique's outcome on it.
struct ScenarioResult {
  std::string label;
  systems::SystemConfig system;
  std::vector<TechniqueOutcome> outcomes;

  /// Outcome of the named technique; throws std::out_of_range if absent.
  const TechniqueOutcome& outcome(const std::string& technique) const;
};

/// Selects intervals with @p technique and validates them with the
/// simulator (@p options.trials independent runs).
TechniqueOutcome evaluate_technique(const core::Technique& technique,
                                    const systems::SystemConfig& system,
                                    const ExperimentOptions& options);

/// Runs every technique on one system.
ScenarioResult run_scenario(
    const systems::SystemConfig& system, const std::string& label,
    const std::vector<std::unique_ptr<core::Technique>>& techniques,
    const ExperimentOptions& options);

/// The Figure 4 / Figure 5 scenario grid: Table I system B with the MTBF
/// and PFS-cost sweeps applied, at the given application base time.
struct ScaledScenario {
  double mtbf = 0.0;
  double pfs_cost = 0.0;
  systems::SystemConfig system;
  std::string label;
};
std::vector<ScaledScenario> scaled_b_grid(double base_time,
                                          const std::vector<double>& pfs_costs);

}  // namespace mlck::exp

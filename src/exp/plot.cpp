#include "exp/plot.h"

#include <algorithm>
#include <cmath>
#include <ostream>

namespace mlck::exp {

namespace {

/// Gnuplot labels with spaces need quoting; embedded quotes are dropped
/// (labels here are system names and MTBF/PFS tags, never free text).
std::string quoted(const std::string& label) {
  std::string out = "\"";
  for (const char c : label) {
    if (c != '"') out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void write_efficiency_dat(std::ostream& os,
                          const std::vector<ScenarioResult>& rows) {
  os << "# scenario";
  if (!rows.empty()) {
    for (const auto& o : rows.front().outcomes) {
      os << " \"" << o.technique << " sim\" sd pred";
    }
  }
  os << "\n";
  int index = 0;
  for (const auto& row : rows) {
    os << index++ << ' ' << quoted(row.label);
    for (const auto& o : row.outcomes) {
      os << ' ' << o.sim.efficiency.mean << ' ' << o.sim.efficiency.stddev
         << ' ' << o.predicted_efficiency;
    }
    os << "\n";
  }
}

void write_efficiency_gp(std::ostream& os, const std::string& dat_path,
                         const std::string& title,
                         const std::vector<std::string>& technique_names,
                         const std::string& output_png) {
  os << "set terminal pngcairo size 1400,700\n"
     << "set output " << quoted(output_png) << "\n"
     << "set title " << quoted(title) << "\n"
     << "set ylabel \"efficiency\"\n"
     << "set yrange [0:1.05]\n"
     << "set style data histogram\n"
     << "set style histogram errorbars gap 1 lw 1\n"
     << "set style fill solid 0.7 border -1\n"
     << "set boxwidth 0.9\n"
     << "set xtics rotate by -30\n"
     << "set key outside\n"
     << "plot ";
  // Bars with whiskers per technique, then the prediction diamonds.
  for (std::size_t t = 0; t < technique_names.size(); ++t) {
    const std::size_t sim_col = 3 + 3 * t;
    if (t) os << ", \\\n     ";
    os << quoted(dat_path) << " using " << sim_col << ":" << sim_col + 1
       << ":xtic(2) title " << quoted(technique_names[t]);
  }
  for (std::size_t t = 0; t < technique_names.size(); ++t) {
    const std::size_t pred_col = 5 + 3 * t;
    os << ", \\\n     " << quoted(dat_path) << " using :" << pred_col
       << " with points pt 12 ps 1.5 title "
       << quoted(technique_names[t] + " predicted");
  }
  os << "\n";
}

void write_prediction_error_dat(std::ostream& os,
                                const std::vector<ScenarioResult>& rows,
                                const std::string& sort_technique) {
  std::vector<const ScenarioResult*> order;
  order.reserve(rows.size());
  for (const auto& row : rows) order.push_back(&row);
  std::stable_sort(order.begin(), order.end(),
                   [&](const ScenarioResult* a, const ScenarioResult* b) {
                     return std::abs(
                                a->outcome(sort_technique).prediction_error()) <
                            std::abs(
                                b->outcome(sort_technique).prediction_error());
                   });
  os << "# test scenario";
  if (!rows.empty()) {
    for (const auto& o : rows.front().outcomes) {
      os << " \"" << o.technique << " error\"";
    }
  }
  os << "\n";
  int index = 1;
  for (const ScenarioResult* row : order) {
    os << index++ << ' ' << quoted(row->label);
    for (const auto& o : row->outcomes) {
      os << ' ' << o.prediction_error();
    }
    os << "\n";
  }
}

void write_prediction_error_gp(
    std::ostream& os, const std::string& dat_path, const std::string& title,
    const std::vector<std::string>& technique_names,
    const std::string& output_png) {
  os << "set terminal pngcairo size 1400,600\n"
     << "set output " << quoted(output_png) << "\n"
     << "set title " << quoted(title) << "\n"
     << "set ylabel \"prediction error (predicted - simulated)\"\n"
     << "set xlabel \"test number (sorted by |" << technique_names.back()
     << " error|)\"\n"
     << "set key outside\n"
     << "set grid ytics\n"
     << "zero(x) = 0\n"
     << "plot zero(x) with lines lt rgb \"red\" notitle";
  for (std::size_t t = 0; t < technique_names.size(); ++t) {
    os << ", \\\n     " << quoted(dat_path) << " using 1:" << 3 + t
       << " with linespoints pt " << 5 + t << " title "
       << quoted(technique_names[t]);
  }
  os << "\n";
}

}  // namespace mlck::exp

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "exp/experiments.h"

namespace mlck::exp {

/// Gnuplot emitters: each writes a whitespace-separated .dat stream and a
/// matching .gp script so every reproduced figure can be rendered as an
/// actual plot (bars + error whiskers + prediction diamonds, like the
/// paper's). The emitters only format data the experiment harness already
/// produced; they never recompute anything.
///
/// Typical use from a driver:
///   write_efficiency_dat(dat_file, rows);
///   write_efficiency_gp(gp_file, "fig2.dat", "Figure 2", techniques);
/// then `gnuplot fig2.gp` renders fig2.png.

/// Columns: index label, then per technique: sim mean, stddev, prediction.
void write_efficiency_dat(std::ostream& os,
                          const std::vector<ScenarioResult>& rows);

/// Clustered-bar script with error bars and prediction markers for a .dat
/// produced by write_efficiency_dat. @p technique_names must match the
/// row outcomes' order.
void write_efficiency_gp(std::ostream& os, const std::string& dat_path,
                         const std::string& title,
                         const std::vector<std::string>& technique_names,
                         const std::string& output_png = "figure.png");

/// Columns: index label, then per technique the prediction error
/// (predicted - simulated), rows sorted by |error| of @p sort_technique.
void write_prediction_error_dat(std::ostream& os,
                                const std::vector<ScenarioResult>& rows,
                                const std::string& sort_technique);

/// Scatter/line script for the Figure 6 error plot.
void write_prediction_error_gp(
    std::ostream& os, const std::string& dat_path, const std::string& title,
    const std::vector<std::string>& technique_names,
    const std::string& output_png = "errors.png");

}  // namespace mlck::exp

#pragma once

#include <optional>
#include <vector>

#include "core/interval_schedule.h"
#include "core/plan.h"
#include "systems/system_config.h"

namespace mlck::core {

/// Horizon-aware refinement of a pattern plan (the library's
/// generalization of paper Sec. IV-F).
///
/// The paper observes that a *whole run* shorter than the mean time
/// between severity-L failures should not take level-L checkpoints at
/// all. The same logic applies to the *tail* of any run: once the
/// remaining work drops below a level's break-even horizon, one more
/// checkpoint of that level costs more than the failure loss it can
/// avert. To first order a level-k checkpoint taken with W minutes of
/// work remaining averts an expected lambda_k * W * (W/2) of re-execution
/// at a price of delta_k, so the break-even horizon is
///
///   cutoff_k = sqrt(2 delta_k / lambda_k)
///
/// — the Young interval of the level. The adaptive schedule runs the base
/// pattern unchanged until a level's remaining-work horizon passes its
/// cutoff, then *downgrades* that pattern point to the highest still
/// profitable lower level (which is due there anyway, since SCR grids
/// nest), or skips the point entirely when none remains.
struct AdaptiveSchedule {
  CheckpointPlan base;
  double base_time = 0.0;

  /// Per used level: skip further checkpoints of this level once
  /// base_time - work < cutoff_remaining[k].
  std::vector<double> cutoff_remaining;

  /// Next trigger after @p work under the horizon rule, or nullopt when
  /// every remaining pattern point is skipped.
  std::optional<CheckpointPoint> next_checkpoint(double work) const;
};

/// Builds the adaptive wrapper for @p plan on @p system with the
/// first-order cutoffs above (severities binned onto used levels exactly
/// as the models bin them).
AdaptiveSchedule make_adaptive(const systems::SystemConfig& system,
                               const CheckpointPlan& plan);

}  // namespace mlck::core

#pragma once

#include <memory>
#include <utility>

#include "core/effective.h"
#include "core/model.h"
#include "math/failure_law.h"

namespace mlck::core {

/// Feature switches for the Dauwe recursion. The defaults implement the
/// paper's full model; the flags exist for the ablation studies of
/// Sec. IV-D (what breaks when failures during checkpoint/restart events
/// are ignored) and for expressing the Di et al. baseline, whose model
/// assumes checkpoints and restarts are failure-free.
struct DauweOptions {
  /// Model failures *during checkpoints* (alpha_i terms, Eqns. 8-10).
  bool checkpoint_failures = true;

  /// Model failures *during restarts* (zeta_i terms, Eqns. 12/14).
  bool restart_failures = true;

  /// Eqn. 10 weights lost intervals by S_k = lambda_k / lambda (share of
  /// *all* failures) exactly as printed. Setting this renormalizes over
  /// the severities <= i that can actually interrupt a level-i checkpoint
  /// (lambda_k / lambda_c); exposed as an ablation of the printed
  /// equation, off by default for fidelity.
  bool renormalize_severity_shares = false;
};

/// The paper's contribution (Sec. III): a hierarchical continuous model of
/// expected application execution time under pattern-based multilevel
/// checkpointing, accounting for failures during computation, checkpoints
/// *and* restarts, plus the application's finite baseline time.
///
/// The recursion evaluates, per used level k (paper Eqns. 4-14):
///
///   gamma_k = expected severity-k failures per tau_k interval  (Eqn. 5)
///   alpha_k = expected failed level-k checkpoints               (Eqn. 8)
///   beta_k  = expected successful level-k restarts              (Eqn. 11)
///   zeta_k  = expected failed level-k restarts                  (Eqn. 12)
///   tau_{k+1} = m_k tau_k + T_delta + T_delta' + T_R + T_R'
///             + T_W_tau + T_W_delta                             (Eqn. 4)
///
/// Conventions pinned down where the paper is ambiguous (see DESIGN.md):
/// the recursion base is tau_1 = tau0; interior levels contain N_k + 1
/// sub-intervals and N_k standalone checkpoints; the top level contains
/// N_L intervals and N_L checkpoints (Eqn. 3), so that with zero overhead
/// T_ML == T_B exactly. Severities above the top *used* level wrap the
/// whole execution in one more retry stage (restart-from-scratch).
///
/// Plans with fewer than one top-level period (tau0 * prod(N+1) > T_B) are
/// reported as infeasible (+inf), matching the paper's solution-space
/// bound.
class DauweModel : public ExecutionTimeModel {
 public:
  /// @p law generalizes the failure process beyond the paper's
  /// exponential assumption (Sec. III derives the recursion "for a chosen
  /// probability density function"): per-severity rates from the system
  /// config pick each level's family member (mean 1 / rate). Null or an
  /// explicit exponential family keeps the closed-form fast path,
  /// bit-identical to the law-less model.
  explicit DauweModel(DauweOptions options = {},
                      std::shared_ptr<const math::FailureLaw> law =
                          nullptr) noexcept
      : options_(options), law_(std::move(law)) {}

  double expected_time(const systems::SystemConfig& system,
                       const CheckpointPlan& plan) const override;

  Prediction predict(const systems::SystemConfig& system,
                     const CheckpointPlan& plan) const override;

  const DauweOptions& options() const noexcept { return options_; }
  const std::shared_ptr<const math::FailureLaw>& law() const noexcept {
    return law_;
  }

 private:
  DauweOptions options_;
  std::shared_ptr<const math::FailureLaw> law_;
};

}  // namespace mlck::core

#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "core/model.h"
#include "core/plan.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace mlck::core {

class DauweKernel;

/// Optional search observability. Null members are skipped; counts are
/// accumulated per subset in locals and flushed once per sweep, so the
/// hot enumeration loop is untouched and results are unaffected.
struct OptimizerMetrics {
  obs::Counter* plans_swept = nullptr;    ///< coarse-pass cost evaluations
  /// Leaf plans eliminated by the feasibility bound tau0 * prod(N+1) <= T_B
  /// before being evaluated: a cut at enumeration depth d skips
  /// ladder^(remaining dims) candidate plans per skipped rung, so
  /// plans_swept + plans_pruned + plans_pruned_bound always equals the full
  /// coarse lattice (tau points x ladder^dims, summed over level subsets).
  obs::Counter* plans_pruned = nullptr;
  /// Leaf plans eliminated because an admissible lower bound on their
  /// subtree exceeded the best expected time already found for the same
  /// level subset (staged sweep with OptimizerOptions::prune only; the
  /// other term of the lattice accounting identity above).
  obs::Counter* plans_pruned_bound = nullptr;
  obs::Counter* plans_refined = nullptr;  ///< refinement cost evaluations
  obs::Counter* subsets_searched = nullptr;  ///< level subsets swept
};

/// Controls for the brute-force interval search of paper Sec. III-C.
///
/// The paper sweeps every point of a bounded region; we keep that
/// guarantee-by-coverage spirit but split the sweep into a coarse pass
/// (log-spaced tau0 grid x a geometric ladder of integer counts) followed
/// by deterministic coordinate-descent refinement around the best coarse
/// point. Tests verify the two-pass search matches an exhaustive sweep on
/// systems small enough to brute-force densely.
struct OptimizerOptions {
  int coarse_tau_points = 96;   ///< log-spaced tau0 samples in (tau_min, T_B)
  double tau_min = 1e-3;        ///< minutes; lower edge of the tau0 grid
  int max_count = 128;          ///< upper bound on each pattern count N_k
  int refine_rounds = 64;       ///< cap on coordinate-descent iterations

  /// Additionally search plans that drop the most expensive suffix of
  /// levels (Sec. IV-F: short applications skip level L and risk a scratch
  /// restart). Disable to reproduce techniques that always use all levels
  /// (Moody et al.).
  bool allow_suffix_skipping = true;

  /// When set, restrict every candidate plan to exactly these system
  /// levels (e.g. {L-2, L-1} for the Di et al. two-level technique, or
  /// {L-1} for traditional checkpoint/restart). Overrides suffix skipping.
  std::vector<int> restrict_levels;

  /// Batch the staged coarse sweep: eight tau0 grid points advance through
  /// one shared count-lattice walk as lanes of scalar kernel cursors
  /// (math/simd.h backends serve only the bound/mask arithmetic). Winner,
  /// expected time, and the lattice accounting are identical to the
  /// unbatched sweep; only wall-clock changes. Ignored by the per-plan
  /// (non-staged) overloads, which cannot share stage state across plans.
  bool lane_batch = true;

  /// Skip count-lattice subtrees whose admissible first-order lower bound
  /// (Benoit-style single-level relaxation; docs/PERFORMANCE.md) exceeds
  /// the best expected time already found for the same level subset. The
  /// selected plan and its expected time are unchanged — a subtree
  /// containing a subset's optimum can never satisfy the cut — but
  /// OptimizationResult::evaluations shrinks and, under a thread pool,
  /// varies run to run with incumbent propagation timing. Requires
  /// lane_batch and the staged path; ignored elsewhere.
  bool prune = true;

  /// Observe-only counters for the search (docs/OBSERVABILITY.md).
  /// Non-owning; ignored by JSON (de)serialization and by comparisons.
  OptimizerMetrics* metrics = nullptr;

  /// Observe-only span sink for the search phases ("optimizer.coarse_sweep",
  /// "optimizer.sweep_slice" / "optimizer.sweep_block", "optimizer.refine";
  /// docs/OBSERVABILITY.md). Same contract as metrics: non-owning, null
  /// skips all instrumentation, results are bit-identical either way.
  obs::TraceSink* trace = nullptr;

  /// Rejects option combinations the search cannot serve, naming the
  /// offending fields: non-positive grid sizes/rounds, and a tau_min at or
  /// above system.base_time * (1 - 1e-9) — the upper edge of the tau0
  /// grid — which would silently yield a descending or duplicate-point
  /// log grid. Called by every optimize_intervals* entry point; throws
  /// std::invalid_argument.
  void validate(const systems::SystemConfig& system) const;
};

/// Outcome of an interval search.
struct OptimizationResult {
  CheckpointPlan plan;
  double expected_time = 0.0;
  double efficiency = 0.0;       ///< T_B / expected_time per the model
  std::size_t evaluations = 0;   ///< model evaluations performed
  /// Coarse-pass leaf evaluations (evaluations minus refinement), and the
  /// leaf plans eliminated without evaluation by the two cuts. Together
  /// they tile the coarse lattice exactly:
  ///   coarse_evaluations + pruned_feasibility + pruned_bound
  ///     == tau points x ladder^dims, summed over level subsets.
  std::size_t coarse_evaluations = 0;
  std::size_t pruned_feasibility = 0;  ///< tau0 * prod(N+1) > T_B cuts
  std::size_t pruned_bound = 0;        ///< admissible lower-bound cuts
};

/// Minimizes model.expected_time over the bounded plan space for
/// @p system. The returned plan is feasible (finite expected time);
/// throws std::runtime_error if no candidate is feasible.
///
/// @p pool parallelizes the coarse sweep jointly across (level subset,
/// tau0) slices — so even 2-level systems expose subsets x tau-points
/// units of work; results are identical with or without a pool.
OptimizationResult optimize_intervals(const ExecutionTimeModel& model,
                                      const systems::SystemConfig& system,
                                      const OptimizerOptions& options = {},
                                      util::ThreadPool* pool = nullptr);

/// Expected-time cost of one candidate plan. The plan's level subset is
/// fixed by the factory call that produced the function; tau0 and counts
/// vary per call. Must be thread-safe: the coarse sweep invokes it
/// concurrently from every tau0 slice.
using PlanCostFn = std::function<double(const CheckpointPlan& plan)>;

/// Called once per candidate level subset before its sweep begins; the
/// returned cost function is then used for every coarse-sweep and
/// refinement evaluation over that subset. This is the hook that lets the
/// engine layer precompute per-(system, level-subset) invariants once and
/// reuse them across the whole search instead of rebuilding them per plan.
using SubsetEvaluatorFactory =
    std::function<PlanCostFn(const std::vector<int>& levels)>;

/// optimize_intervals with per-subset evaluators. Sweep order, pruning,
/// refinement, and tie-breaking are identical to the model overload, so
/// two factories whose cost functions agree bit-for-bit select identical
/// plans with identical evaluation counts.
OptimizationResult optimize_intervals_with(
    const SubsetEvaluatorFactory& factory,
    const systems::SystemConfig& system, const OptimizerOptions& options = {},
    util::ThreadPool* pool = nullptr);

/// The precomputed kernel for one candidate level subset. Called once per
/// subset, serially, in search order; the returned reference must stay
/// valid until the search ends (the caller owns the kernels, e.g. the
/// engine's context cache or a per-search arena).
using SubsetKernelFactory =
    std::function<const DauweKernel&(const std::vector<int>& levels)>;

/// optimize_intervals driven by the prefix-incremental kernel cursor
/// (DauweKernel::Cursor): entering enumeration depth k computes stage k's
/// transcendental terms once per count prefix instead of once per leaf
/// plan, so only the top stage and the scratch wrap run per candidate.
/// Every leaf value is bit-identical to kernel.expected_time (the cursor
/// *is* the per-plan path's arithmetic), so the selected plan and its
/// expected time match the per-plan overloads exactly — under every
/// lane_batch/prune setting. With lane_batch and prune disabled the sweep
/// is additionally *structurally* identical: same enumeration order and
/// the same evaluation counts as the per-plan overloads. With the default
/// lane-batched pruned sweep only the winner contract holds; evaluation
/// counts shrink (and vary run to run under a thread pool), while the
/// lattice accounting identity on OptimizationResult stays exact.
OptimizationResult optimize_intervals_staged(
    const SubsetKernelFactory& factory, const systems::SystemConfig& system,
    const OptimizerOptions& options = {}, util::ThreadPool* pool = nullptr);

/// The geometric candidate ladder for pattern counts used by the coarse
/// pass: 0,1,2,... then ~1.25x steps up to @p max_count. Exposed for
/// tests.
std::vector<int> count_ladder(int max_count);

}  // namespace mlck::core

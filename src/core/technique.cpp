#include "core/technique.h"

namespace mlck::core {

DauweTechnique::DauweTechnique(DauweOptions model_options,
                               OptimizerOptions optimizer_options)
    : model_(model_options), optimizer_options_(optimizer_options) {}

TechniqueResult DauweTechnique::do_select_plan(
    const systems::SystemConfig& system, util::ThreadPool* pool) const {
  const OptimizationResult best =
      optimize_intervals(model_, system, optimizer_options_, pool);
  TechniqueResult result;
  result.technique = name();
  result.plan = best.plan;
  result.predicted_time = best.expected_time;
  result.predicted_efficiency = best.efficiency;
  return result;
}

}  // namespace mlck::core

#include "core/technique.h"

#include <memory>

#include "core/dauwe_kernel.h"

namespace mlck::core {

DauweTechnique::DauweTechnique(DauweOptions model_options,
                               OptimizerOptions optimizer_options)
    : model_(model_options), optimizer_options_(optimizer_options) {}

TechniqueResult DauweTechnique::do_select_plan(
    const systems::SystemConfig& system, util::ThreadPool* pool) const {
  // Precompute the tau-independent per-level terms once per level subset;
  // every coarse-sweep and refinement evaluation over the subset then
  // reuses them. Bit-identical to sweeping DauweModel directly (the
  // kernel runs the same recursion), just without the per-plan rebuild.
  const auto factory = [&](const std::vector<int>& levels) -> PlanCostFn {
    auto kernel =
        std::make_shared<const DauweKernel>(system, levels, model_.options());
    return [kernel](const CheckpointPlan& plan) {
      return kernel->expected_time(plan.tau0, plan.counts);
    };
  };
  const OptimizationResult best =
      optimize_intervals_with(factory, system, optimizer_options_, pool);
  TechniqueResult result;
  result.technique = name();
  result.plan = best.plan;
  result.predicted_time = best.expected_time;
  result.predicted_efficiency = best.efficiency;
  return result;
}

}  // namespace mlck::core

#include "core/technique.h"

#include <memory>

#include "core/dauwe_kernel.h"

namespace mlck::core {

DauweTechnique::DauweTechnique(DauweOptions model_options,
                               OptimizerOptions optimizer_options)
    : model_(model_options), optimizer_options_(optimizer_options) {}

TechniqueResult DauweTechnique::do_select_plan(
    const systems::SystemConfig& system, util::ThreadPool* pool) const {
  // Precompute the tau-independent per-level terms once per level subset
  // and drive the prefix-incremental sweep over them. Bit-identical to
  // sweeping DauweModel directly (the staged cursor runs the same
  // recursion), just without the per-plan rebuild or per-leaf stage work.
  std::vector<std::unique_ptr<const DauweKernel>> kernels;
  const auto factory =
      [&](const std::vector<int>& levels) -> const DauweKernel& {
    kernels.push_back(
        std::make_unique<const DauweKernel>(system, levels, model_.options()));
    return *kernels.back();
  };
  const OptimizationResult best =
      optimize_intervals_staged(factory, system, optimizer_options_, pool);
  TechniqueResult result;
  result.technique = name();
  result.plan = best.plan;
  result.predicted_time = best.expected_time;
  result.predicted_efficiency = best.efficiency;
  return result;
}

}  // namespace mlck::core

#include "core/plan.h"

#include <sstream>
#include <stdexcept>
#include <utility>

namespace mlck::core {

long long CheckpointPlan::interval_period(int k) const noexcept {
  long long period = 1;
  for (int j = 0; j < k; ++j) period *= counts[static_cast<std::size_t>(j)] + 1;
  return period;
}

long long CheckpointPlan::pattern_period() const noexcept {
  return interval_period(used_levels() - 1);
}

double CheckpointPlan::work_per_top_period() const noexcept {
  return tau0 * static_cast<double>(pattern_period());
}

double CheckpointPlan::top_periods(double base_time) const noexcept {
  return base_time / work_per_top_period();
}

int CheckpointPlan::checkpoint_after_interval(long long j) const noexcept {
  int best = 0;  // P_0 == 1 divides everything
  for (int k = 1; k < used_levels(); ++k) {
    if (j % interval_period(k) == 0) best = k;
  }
  return best;
}

std::optional<int> CheckpointPlan::restart_level_for_severity(
    int severity) const noexcept {
  for (const int level : levels) {
    if (level >= severity) return level;
  }
  return std::nullopt;
}

void CheckpointPlan::validate(const systems::SystemConfig& system) const {
  if (!(tau0 > 0.0)) throw std::invalid_argument("plan: tau0 must be > 0");
  if (levels.empty()) throw std::invalid_argument("plan: no levels in use");
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (levels[i] < 0 || levels[i] >= system.levels()) {
      throw std::invalid_argument("plan: level index out of range");
    }
    if (i > 0 && levels[i] <= levels[i - 1]) {
      throw std::invalid_argument("plan: levels must be strictly ascending");
    }
  }
  if (counts.size() + 1 != levels.size()) {
    throw std::invalid_argument("plan: counts must have size levels-1");
  }
  for (const int n : counts) {
    if (n < 0) throw std::invalid_argument("plan: negative pattern count");
  }
}

std::string CheckpointPlan::to_string() const {
  std::ostringstream os;
  os << "tau0=" << tau0 << " levels=[";
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (i) os << ',';
    os << levels[i];
  }
  os << "] counts=[";
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (i) os << ',';
    os << counts[i];
  }
  os << ']';
  return os.str();
}

CheckpointPlan CheckpointPlan::full_hierarchy(double tau0,
                                              std::vector<int> counts) {
  CheckpointPlan plan;
  plan.tau0 = tau0;
  plan.levels.resize(counts.size() + 1);
  for (std::size_t i = 0; i < plan.levels.size(); ++i) {
    plan.levels[i] = static_cast<int>(i);
  }
  plan.counts = std::move(counts);
  return plan;
}

CheckpointPlan CheckpointPlan::single_level(double tau0, int system_level) {
  CheckpointPlan plan;
  plan.tau0 = tau0;
  plan.levels = {system_level};
  return plan;
}

}  // namespace mlck::core

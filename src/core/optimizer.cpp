#include "core/optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/parallel.h"

namespace mlck::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Candidate {
  double time = kInf;
  double tau0 = 0.0;
  std::vector<int> counts;
};

std::vector<double> log_grid(double lo, double hi, int points) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(points));
  const double ratio = std::log(hi / lo);
  for (int i = 0; i < points; ++i) {
    const double f = (points == 1)
                         ? 0.5
                         : static_cast<double>(i) / (points - 1);
    out.push_back(lo * std::exp(ratio * f));
  }
  return out;
}

/// Enumerates ladder^(K-1) count combinations for one tau0, pruning
/// combinations whose pattern already exceeds the feasibility bound
/// tau0 * prod(N+1) <= T_B. Templated on the cost callable so the direct
/// model path pays no extra indirection and the cached-evaluator path
/// shares the identical enumeration order.
template <typename CostFn>
void sweep_counts(const CostFn& cost, const systems::SystemConfig& system,
                  CheckpointPlan& plan, const std::vector<int>& ladder,
                  std::size_t dim, double pattern_so_far, Candidate& best,
                  std::size_t& evals, std::size_t& pruned) {
  if (dim == plan.counts.size()) {
    ++evals;
    const double t = cost(plan);
    if (t < best.time) {
      best.time = t;
      best.tau0 = plan.tau0;
      best.counts = plan.counts;
    }
    return;
  }
  for (std::size_t li = 0; li < ladder.size(); ++li) {
    const int n = ladder[li];
    const double pattern = pattern_so_far * (n + 1);
    if (plan.tau0 * pattern > system.base_time) {  // ladder ascends
      pruned += ladder.size() - li;  // branches cut, one per skipped rung
      break;
    }
    plan.counts[dim] = n;
    sweep_counts(cost, system, plan, ladder, dim + 1, pattern, best, evals,
                 pruned);
  }
}

/// Shared search skeleton. @p make_cost is invoked once per level subset
/// and must return a thread-safe cost callable for plans over that subset.
template <typename MakeCost>
OptimizationResult optimize_impl(const MakeCost& make_cost,
                                 const systems::SystemConfig& system,
                                 const OptimizerOptions& options,
                                 util::ThreadPool* pool) {
  system.validate();

  // Candidate level subsets.
  std::vector<std::vector<int>> subsets;
  if (!options.restrict_levels.empty()) {
    subsets.push_back(options.restrict_levels);
  } else {
    const int L = system.levels();
    const int min_k = options.allow_suffix_skipping ? 1 : L;
    for (int K = L; K >= min_k; --K) {
      std::vector<int> levels(static_cast<std::size_t>(K));
      for (int i = 0; i < K; ++i) levels[static_cast<std::size_t>(i)] = i;
      subsets.push_back(std::move(levels));
    }
  }

  const std::vector<int> ladder = count_ladder(options.max_count);
  const std::vector<double> taus = log_grid(
      options.tau_min, system.base_time * (1.0 - 1e-9),
      options.coarse_tau_points);

  Candidate global;
  std::vector<int> global_levels;
  std::size_t total_evals = 0;
  std::size_t total_pruned = 0;
  std::size_t refine_evals = 0;

  for (const auto& levels : subsets) {
    const std::size_t dims = levels.size() - 1;
    const auto cost = make_cost(levels);

    // Coarse pass: each tau0 slice finds its own best, written to a
    // private slot; the reduction below is serial and deterministic.
    std::vector<Candidate> slice(taus.size());
    std::vector<std::size_t> slice_evals(taus.size(), 0);
    std::vector<std::size_t> slice_pruned(taus.size(), 0);
    util::parallel_for(pool, taus.size(), [&](std::size_t ti) {
      CheckpointPlan plan;
      plan.tau0 = taus[ti];
      plan.levels = levels;
      plan.counts.assign(dims, 0);
      sweep_counts(cost, system, plan, ladder, 0, 1.0, slice[ti],
                   slice_evals[ti], slice_pruned[ti]);
    });

    Candidate best;
    for (const auto& c : slice) {
      if (c.time < best.time) best = c;
    }
    for (const auto e : slice_evals) total_evals += e;
    for (const auto p : slice_pruned) total_pruned += p;
    if (!std::isfinite(best.time)) continue;

    // Refinement: coordinate descent over tau0 and each count, evaluated
    // against the same per-subset cost function as the coarse pass.
    static constexpr double kTauFactors[] = {0.80, 0.90, 0.95, 0.98,
                                             1.02, 1.05, 1.10, 1.25};
    static constexpr int kCountSteps[] = {-4, -2, -1, 1, 2, 4};
    CheckpointPlan plan;
    plan.levels = levels;
    for (int round = 0; round < options.refine_rounds; ++round) {
      Candidate improved = best;
      for (const double f : kTauFactors) {
        const double tau = best.tau0 * f;
        if (tau <= 0.0 || tau >= system.base_time) continue;
        plan.tau0 = tau;
        plan.counts = best.counts;
        ++total_evals;
        ++refine_evals;
        const double t = cost(plan);
        if (t < improved.time) {
          improved = Candidate{t, tau, best.counts};
        }
      }
      for (std::size_t d = 0; d < dims; ++d) {
        for (const int step : kCountSteps) {
          const int n = best.counts[d] + step;
          if (n < 0 || n > options.max_count) continue;
          plan.tau0 = best.tau0;
          plan.counts = best.counts;
          plan.counts[d] = n;
          ++total_evals;
          ++refine_evals;
          const double t = cost(plan);
          if (t < improved.time) {
            improved = Candidate{t, best.tau0, plan.counts};
          }
        }
      }
      if (improved.time >= best.time) break;  // converged
      best = std::move(improved);
    }

    if (best.time < global.time) {
      global = std::move(best);
      global_levels = levels;
    }
  }

  // Flush observe-only counters once, after the whole search, so the
  // enumeration itself stays free of atomic traffic.
  if (const OptimizerMetrics* m = options.metrics; m != nullptr) {
    if (m->plans_swept) m->plans_swept->add(total_evals - refine_evals);
    if (m->plans_pruned) m->plans_pruned->add(total_pruned);
    if (m->plans_refined) m->plans_refined->add(refine_evals);
    if (m->subsets_searched) m->subsets_searched->add(subsets.size());
  }

  if (!std::isfinite(global.time)) {
    throw std::runtime_error("optimize_intervals: no feasible plan for " +
                             system.name);
  }

  OptimizationResult result;
  result.plan.tau0 = global.tau0;
  result.plan.levels = std::move(global_levels);
  result.plan.counts = std::move(global.counts);
  result.expected_time = global.time;
  result.efficiency = system.base_time / global.time;
  result.evaluations = total_evals;
  return result;
}

/// Direct-model cost: no per-subset state, one virtual call per plan.
struct ModelCost {
  const ExecutionTimeModel& model;
  const systems::SystemConfig& system;
  double operator()(const CheckpointPlan& plan) const {
    return model.expected_time(system, plan);
  }
};

}  // namespace

std::vector<int> count_ladder(int max_count) {
  std::vector<int> out;
  int v = 0;
  while (v <= max_count) {
    out.push_back(v);
    v = std::max(v + 1, (v * 5) / 4);
  }
  return out;
}

OptimizationResult optimize_intervals(const ExecutionTimeModel& model,
                                      const systems::SystemConfig& system,
                                      const OptimizerOptions& options,
                                      util::ThreadPool* pool) {
  const auto make_cost = [&](const std::vector<int>&) {
    return ModelCost{model, system};
  };
  return optimize_impl(make_cost, system, options, pool);
}

OptimizationResult optimize_intervals_with(
    const SubsetEvaluatorFactory& factory,
    const systems::SystemConfig& system, const OptimizerOptions& options,
    util::ThreadPool* pool) {
  return optimize_impl(factory, system, options, pool);
}

}  // namespace mlck::core

#include "core/optimizer.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>

#include "core/dauwe_kernel.h"
#include "math/simd.h"
#include "obs/trace.h"
#include "util/parallel.h"

namespace mlck::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

using math::kSimdLanes;
using math::LaneMask;
using math::Vec8d;

struct Candidate {
  double time = kInf;
  double tau0 = 0.0;
  std::vector<int> counts;
};

double pattern_of(const std::vector<int>& counts) noexcept {
  double p = 1.0;
  for (const int n : counts) p *= static_cast<double>(n + 1);
  return p;
}

std::vector<double> log_grid(double lo, double hi, int points) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(points));
  const double ratio = std::log(hi / lo);
  for (int i = 0; i < points; ++i) {
    const double f = (points == 1)
                         ? 0.5
                         : static_cast<double>(i) / (points - 1);
    out.push_back(lo * std::exp(ratio * f));
  }
  return out;
}

/// Per-plan evaluator: one shared thread-safe cost callable per subset;
/// each sweep slice assembles candidate plans and invokes it at the
/// leaves. This is the path for arbitrary ExecutionTimeModels and the
/// reference the staged evaluator is tested against.
template <typename CostFn>
struct CostEvaluator {
  CostFn cost;             ///< shared across slices; must be thread-safe
  std::vector<int> levels;

  struct Slice {
    const CostFn* cost;
    CheckpointPlan plan;
    void begin(double tau0) { plan.tau0 = tau0; }
    void set_count(std::size_t dim, int n) { plan.counts[dim] = n; }
    double leaf(double /*pattern*/) { return (*cost)(plan); }
  };

  Slice slice() const {
    Slice s;
    s.cost = &cost;
    s.plan.levels = levels;
    s.plan.counts.assign(levels.size() - 1, 0);
    return s;
  }

  double plan_cost(const CheckpointPlan& plan) const { return cost(plan); }
};

/// Prefix-incremental evaluator over a DauweKernel cursor: set_count(d, n)
/// completes stage d once per prefix node, so a leaf only pays for the
/// top stage and the scratch wrap. Bit-identical to CostEvaluator over
/// kernel.expected_time — the cursor is the per-plan path's arithmetic.
struct StagedEvaluator {
  const DauweKernel* kernel;

  struct Slice {
    DauweKernel::Cursor cursor;
    void begin(double tau0) noexcept { cursor.begin(tau0); }
    void set_count(std::size_t dim, int n) noexcept {
      cursor.push_stage(static_cast<int>(dim), n);
    }
    double leaf(double pattern) noexcept {
      return cursor.finish_expected_time(pattern);
    }
  };

  Slice slice() const { return Slice{kernel->cursor()}; }

  double plan_cost(const CheckpointPlan& plan) const {
    return kernel->expected_time(plan.tau0, plan.counts);
  }
};

/// Enumerates the ladder^dims count lattice for one tau0 slice — the old
/// recursive sweep flattened into an explicit rung stack so evaluators
/// can reuse per-prefix state across siblings. Visit order, the
/// feasibility prune (the ladder ascends, so the first infeasible rung
/// cuts the rest of the depth), and best-candidate tie-breaking are
/// identical to the recursive formulation. @p pruned counts *leaf plans*
/// eliminated: each rung cut at depth d hides ladder^(dims-1-d) leaves,
/// so evals + pruned == ladder^dims for every slice.
template <typename Slice>
void sweep_slice(Slice& slice, double tau0, double base_time,
                 const std::vector<int>& ladder, std::vector<int>& counts,
                 Candidate& best, std::size_t& evals, std::size_t& pruned) {
  const std::size_t dims = counts.size();
  slice.begin(tau0);
  const auto consider = [&](double t) {
    if (t < best.time) {
      best.time = t;
      best.tau0 = tau0;
      best.counts = counts;
    }
  };
  if (dims == 0) {
    ++evals;
    consider(slice.leaf(1.0));
    return;
  }

  // leaves_below[d]: leaf plans under one chosen rung at depth d.
  std::vector<std::size_t> leaves_below(dims);
  {
    std::size_t p = 1;
    for (std::size_t d = dims; d-- > 0;) {
      leaves_below[d] = p;
      p *= ladder.size();
    }
  }

  std::vector<std::size_t> rung(dims, 0);
  std::vector<double> pattern(dims + 1, 1.0);  // prefix prod (N_j + 1)
  std::size_t d = 0;
  while (true) {
    if (rung[d] == ladder.size()) {  // depth exhausted: ascend
      if (d == 0) return;
      --d;
      ++rung[d];
      continue;
    }
    const int n = ladder[rung[d]];
    const double p = pattern[d] * (n + 1);
    if (tau0 * p > base_time) {  // ladder ascends: cut the remaining rungs
      pruned += (ladder.size() - rung[d]) * leaves_below[d];
      if (d == 0) return;
      --d;
      ++rung[d];
      continue;
    }
    counts[d] = n;
    slice.set_count(d, n);
    pattern[d + 1] = p;
    if (d + 1 == dims) {
      ++evals;
      consider(slice.leaf(p));
      ++rung[d];
    } else {
      ++d;
      rung[d] = 0;
    }
  }
}

/// Per-(subset, tau0) coarse-pass output. One slot per tau0 point keeps
/// the reduction serial and deterministic regardless of how slices are
/// grouped into tasks (scalar: one task per slot; lane-batched: one task
/// per 8 slots).
struct Slot {
  Candidate best;
  std::size_t evals = 0;
  std::size_t pruned_feas = 0;   ///< leaves cut by tau0 * prod(N+1) > T_B
  std::size_t pruned_bound = 0;  ///< leaves cut by the admissible bound
};

/// Tau-independent constants of the admissible subtree lower bound for one
/// kernel. Index k is the *stack* index: the stage just entered after
/// pushing interior stage k - 1 (or stage 0 at begin()).
///
/// Derivation (docs/PERFORMANCE.md has the prose version). Unrolling
/// Eqn. 4, tau_{k+1} = m_k tau_k + A_k with A_k >= 0 the stage's overhead
/// terms, and the run contains occ_k = T_B / (tau0 P_k) intervals of
/// tau_k, P_k = prod_{j<k}(N_j + 1) — exact and independent of counts
/// deeper than k. Hence for a prefix that has entered stage k:
///
///   T_before_scratch = occ_k tau_k + sum_{j>=k} occ_{j+1} A_j
///
/// where occ_k tau_k is the *exact* accumulated prefix (it telescopes
/// T_B + the pushed stages' overheads). Every future stage j >= k obeys
/// A_j >= m_j gamma_j (E_j + R_j) (the rework and successful-restart
/// terms survive every DauweOptions ablation and beta >= gamma m), so
/// stage k itself contributes occ_k (gamma_k E_k + gamma_k R_k) — exact
/// from the cursor stack. Deeper exponential stages are bounded by the
/// Benoit/Young first-order waste: gamma E = (e^u - 1 - u)/lambda >=
/// lambda t^2 / 2, and with occ_j tau_j >= T_B, tau_j >= tau_k this
/// yields occ_{j+1} A_j >= (lambda_j / 2) T_B tau_k per level — the
/// single-level relaxation that justifies bounding whole subtrees.
/// Non-exponential levels are gated out of the tail (their quadratic
/// identity does not hold); their contribution is simply dropped, which
/// keeps the bound admissible under every FailureLaw.
struct BoundTerms {
  /// R_k of the level at stack index k (restart cost behind the
  /// gamma_k R_k term).
  std::array<double, kDauweMaxLevels> restart_cost{};
  /// 0.5 * sum of lambda_j over exponential levels deeper than k.
  std::array<double, kDauweMaxLevels> tail_half{};
};

BoundTerms bound_terms(const DauweKernel& kernel) {
  BoundTerms bt;
  const auto& levels = kernel.levels();
  double tail = 0.0;
  for (std::size_t k = levels.size(); k-- > 0;) {
    bt.restart_cost[k] = levels[k].restart_cost;
    bt.tail_half[k] = tail;
    if (levels[k].law == nullptr) tail += 0.5 * levels[k].lambda;
  }
  return bt;
}

/// Inputs of one lane-batched sweep task: up to kSimdLanes consecutive
/// tau0 grid points of one level subset, walked through the count lattice
/// together.
struct LaneSweepArgs {
  const DauweKernel* kernel = nullptr;
  const double* taus = nullptr;  ///< ascending lane tau0 values
  int nlanes = 0;                ///< 1..kSimdLanes
  double base_time = 0.0;
  const std::vector<int>* ladder = nullptr;
  bool prune = false;
  /// Best expected time found so far for this level subset, shared across
  /// all of its sweep tasks. Monotone non-increasing, so relaxed loads are
  /// safe: a stale value can only prune less, never a surviving candidate.
  std::atomic<double>* incumbent = nullptr;
  Slot* slots = nullptr;  ///< nlanes entries, one per tau0 point
};

/// The lane-batched counterpart of sweep_slice: eight scalar cursors
/// advance in lockstep through one shared rung-stack walk, so the lattice
/// bookkeeping (rungs, pattern prefix, leaves_below) is paid once per
/// block instead of once per tau0 point, while every model value still
/// comes out of the scalar DauweKernel::Cursor arithmetic — the lanes
/// change which subtrees are *visited*, never what a visited leaf is
/// worth. Per-lane accounting matches the scalar walk exactly:
/// evals + pruned_feas + pruned_bound == ladder^dims for every lane.
void lane_sweep(const LaneSweepArgs& a, std::vector<int>& counts) {
  const std::vector<int>& ladder = *a.ladder;
  const std::size_t dims = counts.size();

  DauweKernel::Cursor cursors[kSimdLanes] = {
      a.kernel->cursor(), a.kernel->cursor(), a.kernel->cursor(),
      a.kernel->cursor(), a.kernel->cursor(), a.kernel->cursor(),
      a.kernel->cursor(), a.kernel->cursor()};
  Vec8d tau0v = math::v8_splat(std::numeric_limits<double>::quiet_NaN());
  for (int l = 0; l < a.nlanes; ++l) {
    cursors[l].begin(a.taus[l]);
    tau0v.lane[l] = a.taus[l];
  }

  const auto consider = [&](int l, double t) {
    Slot& s = a.slots[l];
    ++s.evals;
    if (t < s.best.time) {
      s.best.time = t;
      s.best.tau0 = a.taus[l];
      s.best.counts = counts;
      if (a.prune) {
        double cur = a.incumbent->load(std::memory_order_relaxed);
        while (t < cur && !a.incumbent->compare_exchange_weak(
                              cur, t, std::memory_order_relaxed)) {
        }
      }
    }
  };

  if (dims == 0) {
    for (int l = 0; l < a.nlanes; ++l) {
      consider(l, cursors[l].finish_expected_time(1.0));
    }
    return;
  }

  std::vector<std::size_t> leaves_below(dims);
  {
    std::size_t p = 1;
    for (std::size_t d = dims; d-- > 0;) {
      leaves_below[d] = p;
      p *= ladder.size();
    }
  }

  const BoundTerms bt = bound_terms(*a.kernel);
  const double safety = 1.0 - 1e-12;  // absorbs bound-side rounding

  std::vector<std::size_t> rung(dims, 0);
  std::vector<double> pattern(dims + 1, 1.0);
  // alive[d]: lanes still feasible at the current depth-d prefix. Lane
  // taus ascend, so a lane cut at rung r is infeasible for every deeper
  // rung too — it leaves depth d for good, credited for all remaining
  // rungs exactly as its own scalar walk would have been.
  std::vector<LaneMask> alive(dims + 1, 0);
  alive[0] = static_cast<LaneMask>((1u << a.nlanes) - 1u);
  std::size_t d = 0;
  while (true) {
    if (rung[d] == ladder.size()) {  // depth exhausted: ascend
      if (d == 0) return;
      --d;
      ++rung[d];
      continue;
    }
    const int n = ladder[rung[d]];
    const double p = pattern[d] * (n + 1);
    LaneMask feas = alive[d];
    for (int l = 0; l < a.nlanes; ++l) {
      const auto bit = static_cast<LaneMask>(1u << l);
      if ((feas & bit) != 0 && a.taus[l] * p > a.base_time) {
        a.slots[l].pruned_feas +=
            (ladder.size() - rung[d]) * leaves_below[d];
        feas = static_cast<LaneMask>(feas & ~bit);
      }
    }
    alive[d] = feas;
    if (feas == 0) {  // every lane exhausted this depth: ascend
      if (d == 0) return;
      --d;
      ++rung[d];
      continue;
    }
    counts[d] = n;
    for (int l = 0; l < a.nlanes; ++l) {
      if ((feas & (1u << l)) != 0) {
        cursors[l].push_stage(static_cast<int>(d), n);
      }
    }
    pattern[d + 1] = p;

    // Admissible bound at the just-entered stage e: lanes whose whole
    // subtree provably cannot beat the incumbent skip it. A dead lane's
    // stage tau is +inf, so its bound is +inf (or NaN, which the quiet
    // v8_gt leaves unpruned) — either way no finite-valued subtree is
    // ever cut incorrectly.
    LaneMask next = feas;
    if (a.prune) {
      const double inc = a.incumbent->load(std::memory_order_relaxed);
      if (inc < kInf) {
        const int e = static_cast<int>(d) + 1;
        Vec8d tau_e = math::v8_splat(0.0);
        Vec8d gamma = math::v8_splat(0.0);
        Vec8d gamma_e = math::v8_splat(0.0);
        for (int l = 0; l < a.nlanes; ++l) {
          if ((feas & (1u << l)) != 0) {
            tau_e.lane[l] = cursors[l].stage_tau(e);
            gamma.lane[l] = cursors[l].stage_gamma(e);
            gamma_e.lane[l] = cursors[l].stage_gamma_e(e);
          }
        }
        // occ_e = T_B / (tau0 * P_e); LB = occ_e * (tau_e + gamma_e E_e
        // + gamma_e R_e) + T_B * tail_half[e] * tau_e.
        const Vec8d occ =
            math::v8_div(math::v8_splat(a.base_time / p), tau0v);
        const Vec8d core =
            math::v8_fma(gamma, math::v8_splat(bt.restart_cost[e]),
                         math::v8_add(tau_e, gamma_e));
        const Vec8d lb = math::v8_fma(
            occ, core,
            math::v8_mul(math::v8_splat(a.base_time * bt.tail_half[e]),
                         tau_e));
        const LaneMask cut = static_cast<LaneMask>(
            math::v8_gt(math::v8_mul(lb, math::v8_splat(safety)), inc) &
            feas);
        if (cut != 0) {
          for (int l = 0; l < a.nlanes; ++l) {
            if ((cut & (1u << l)) != 0) {
              a.slots[l].pruned_bound += leaves_below[d];
            }
          }
          next = static_cast<LaneMask>(feas & ~cut);
        }
      }
    }

    if (d + 1 == dims) {
      for (int l = 0; l < a.nlanes; ++l) {
        if ((next & (1u << l)) != 0) {
          consider(l, cursors[l].finish_expected_time(p));
        }
      }
      ++rung[d];
    } else {
      if (next == 0) {
        ++rung[d];
        continue;
      }
      alive[d + 1] = next;
      ++d;
      rung[d] = 0;
    }
  }
}

/// Shared search skeleton. @p make_evaluator is invoked once per level
/// subset — serially, in search order — and returns the per-subset
/// evaluator (CostEvaluator or StagedEvaluator). The coarse pass then
/// runs one independent task per (subset, tau0) pair — or per
/// (subset, 8-wide tau0 block) on the lane-batched staged path — so
/// systems with few interior dims still expose many units of
/// parallelism; reduction and refinement stay serial and deterministic.
template <typename MakeEvaluator>
OptimizationResult optimize_impl(const MakeEvaluator& make_evaluator,
                                 const systems::SystemConfig& system,
                                 const OptimizerOptions& options,
                                 util::ThreadPool* pool) {
  system.validate();
  options.validate(system);

  // Candidate level subsets.
  std::vector<std::vector<int>> subsets;
  if (!options.restrict_levels.empty()) {
    subsets.push_back(options.restrict_levels);
  } else {
    const int L = system.levels();
    const int min_k = options.allow_suffix_skipping ? 1 : L;
    for (int K = L; K >= min_k; --K) {
      std::vector<int> levels(static_cast<std::size_t>(K));
      for (int i = 0; i < K; ++i) levels[static_cast<std::size_t>(i)] = i;
      subsets.push_back(std::move(levels));
    }
  }

  const std::vector<int> ladder = count_ladder(options.max_count);
  const std::vector<double> taus = log_grid(
      options.tau_min, system.base_time * (1.0 - 1e-9),
      options.coarse_tau_points);

  using Evaluator = std::decay_t<decltype(make_evaluator(subsets.front()))>;
  std::vector<Evaluator> evaluator;
  evaluator.reserve(subsets.size());
  for (const auto& levels : subsets) {
    evaluator.push_back(make_evaluator(levels));
  }

  // Coarse pass: every (subset, tau0) slice finds its own best, written
  // to a private slot; the reduction below is serial and deterministic.
  // The staged path batches eight consecutive tau0 slices into one
  // lane-sweep task (still one slot per slice), and shares a per-subset
  // incumbent so the admissible bound can cut subtrees across tasks. The
  // incumbent is per *subset*, not global: a globally-pruned subset could
  // otherwise hand refinement a different starting candidate and change
  // the returned winner; per-subset, the subset's own optimum can never
  // be cut, so every refinement start — and hence the winner — is
  // preserved exactly.
  const std::size_t nt = taus.size();
  std::vector<Slot> slot(subsets.size() * nt);
  {
    obs::Span coarse(options.trace, "optimizer.coarse_sweep", "optimizer");
    bool lane_batched = false;
    if constexpr (std::is_same_v<Evaluator, StagedEvaluator>) {
      if (options.lane_batch) {
        lane_batched = true;
        std::vector<std::atomic<double>> incumbent(subsets.size());
        for (auto& inc : incumbent) {
          inc.store(kInf, std::memory_order_relaxed);
        }
        const std::size_t blocks =
            (nt + kSimdLanes - 1) / static_cast<std::size_t>(kSimdLanes);
        // Strided block order: early tasks sample tau0 blocks spread
        // across the whole grid, so each subset owns a near-optimal
        // incumbent after ~sqrt(blocks) tasks instead of only once the
        // ascending sweep reaches the optimum's neighborhood. Execution
        // order only — slots, accounting, and the winner are
        // order-independent.
        std::vector<std::size_t> order;
        order.reserve(blocks);
        const auto stride = std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   std::lround(std::sqrt(static_cast<double>(blocks)))));
        for (std::size_t s = 0; s < stride; ++s) {
          for (std::size_t b = s; b < blocks; b += stride) {
            order.push_back(b);
          }
        }
        util::parallel_for(pool, subsets.size() * blocks,
                           [&](std::size_t idx) {
          obs::Span span(options.trace, "optimizer.sweep_block",
                         "optimizer");
          const std::size_t si = idx / blocks;
          const std::size_t t0 = order[idx % blocks] * kSimdLanes;
          std::vector<int> counts(subsets[si].size() - 1, 0);
          LaneSweepArgs args;
          args.kernel = evaluator[si].kernel;
          args.taus = taus.data() + t0;
          args.nlanes = static_cast<int>(
              std::min<std::size_t>(kSimdLanes, nt - t0));
          args.base_time = system.base_time;
          args.ladder = &ladder;
          args.prune = options.prune;
          args.incumbent = &incumbent[si];
          args.slots = slot.data() + si * nt + t0;
          lane_sweep(args, counts);
        });
      }
    }
    if (!lane_batched) {
      util::parallel_for(pool, slot.size(), [&](std::size_t idx) {
        obs::Span span(options.trace, "optimizer.sweep_slice", "optimizer");
        const std::size_t si = idx / nt;
        auto slice = evaluator[si].slice();
        std::vector<int> counts(subsets[si].size() - 1, 0);
        Slot& s = slot[idx];
        sweep_slice(slice, taus[idx % nt], system.base_time, ladder, counts,
                    s.best, s.evals, s.pruned_feas);
      });
    }
  }

  Candidate global;
  std::vector<int> global_levels;
  std::size_t total_evals = 0;
  std::size_t total_pruned_feas = 0;
  std::size_t total_pruned_bound = 0;
  std::size_t refine_evals = 0;

  for (std::size_t si = 0; si < subsets.size(); ++si) {
    const auto& levels = subsets[si];
    const std::size_t dims = levels.size() - 1;

    Candidate best;
    for (std::size_t ti = 0; ti < nt; ++ti) {
      Slot& s = slot[si * nt + ti];
      if (s.best.time < best.time) best = std::move(s.best);
      total_evals += s.evals;
      total_pruned_feas += s.pruned_feas;
      total_pruned_bound += s.pruned_bound;
    }
    if (!std::isfinite(best.time)) continue;

    // Refinement: coordinate descent over tau0 and each count, evaluated
    // against the same per-subset evaluator as the coarse pass.
    obs::Span refine_span(options.trace, "optimizer.refine", "optimizer");
    static constexpr double kTauFactors[] = {0.80, 0.90, 0.95, 0.98,
                                             1.02, 1.05, 1.10, 1.25};
    static constexpr int kCountSteps[] = {-4, -2, -1, 1, 2, 4};
    CheckpointPlan plan;
    plan.levels = levels;
    for (int round = 0; round < options.refine_rounds; ++round) {
      Candidate improved = best;
      // Every stepped candidate passes the same feasibility bound the
      // coarse sweep enforces (tau0 * prod(N_j + 1) <= T_B, Sec. III-C).
      // Dauwe-family evaluators return +inf past it anyway, but the
      // generic overloads accept arbitrary models, and one that returns a
      // finite time for an infeasible plan would otherwise be able to
      // step refinement onto — and return — an infeasible winner.
      for (const double f : kTauFactors) {
        const double tau = best.tau0 * f;
        if (tau <= 0.0 || tau >= system.base_time) continue;
        if (tau * pattern_of(best.counts) > system.base_time) continue;
        plan.tau0 = tau;
        plan.counts = best.counts;
        ++total_evals;
        ++refine_evals;
        const double t = evaluator[si].plan_cost(plan);
        if (t < improved.time) {
          improved = Candidate{t, tau, best.counts};
        }
      }
      for (std::size_t d = 0; d < dims; ++d) {
        for (const int step : kCountSteps) {
          const int n = best.counts[d] + step;
          if (n < 0 || n > options.max_count) continue;
          plan.tau0 = best.tau0;
          plan.counts = best.counts;
          plan.counts[d] = n;
          if (best.tau0 * pattern_of(plan.counts) > system.base_time) {
            continue;
          }
          ++total_evals;
          ++refine_evals;
          const double t = evaluator[si].plan_cost(plan);
          if (t < improved.time) {
            improved = Candidate{t, best.tau0, plan.counts};
          }
        }
      }
      if (improved.time >= best.time) break;  // converged
      best = std::move(improved);
    }

    if (best.time < global.time) {
      global = std::move(best);
      global_levels = levels;
    }
  }

  // Flush observe-only counters once, after the whole search, so the
  // enumeration itself stays free of atomic traffic.
  if (const OptimizerMetrics* m = options.metrics; m != nullptr) {
    if (m->plans_swept) m->plans_swept->add(total_evals - refine_evals);
    if (m->plans_pruned) m->plans_pruned->add(total_pruned_feas);
    if (m->plans_pruned_bound) {
      m->plans_pruned_bound->add(total_pruned_bound);
    }
    if (m->plans_refined) m->plans_refined->add(refine_evals);
    if (m->subsets_searched) m->subsets_searched->add(subsets.size());
  }

  if (!std::isfinite(global.time)) {
    throw std::runtime_error("optimize_intervals: no feasible plan for " +
                             system.name);
  }

  OptimizationResult result;
  result.plan.tau0 = global.tau0;
  result.plan.levels = std::move(global_levels);
  result.plan.counts = std::move(global.counts);
  result.expected_time = global.time;
  result.efficiency = system.base_time / global.time;
  result.evaluations = total_evals;
  result.coarse_evaluations = total_evals - refine_evals;
  result.pruned_feasibility = total_pruned_feas;
  result.pruned_bound = total_pruned_bound;
  return result;
}

/// Direct-model cost: no per-subset state, one virtual call per plan.
struct ModelCost {
  const ExecutionTimeModel& model;
  const systems::SystemConfig& system;
  double operator()(const CheckpointPlan& plan) const {
    return model.expected_time(system, plan);
  }
};

}  // namespace

void OptimizerOptions::validate(const systems::SystemConfig& system) const {
  const auto bad = [](const std::string& what) {
    throw std::invalid_argument("OptimizerOptions: " + what);
  };
  if (coarse_tau_points < 1) {
    bad("coarse_tau_points must be >= 1 (got " +
        std::to_string(coarse_tau_points) + ")");
  }
  if (max_count < 0) {
    bad("max_count must be >= 0 (got " + std::to_string(max_count) + ")");
  }
  if (refine_rounds < 0) {
    bad("refine_rounds must be >= 0 (got " + std::to_string(refine_rounds) +
        ")");
  }
  if (!(tau_min > 0.0)) {
    bad("tau_min must be > 0 (got " + std::to_string(tau_min) + ")");
  }
  // The coarse grid is log-spaced from tau_min up to this edge; a tau_min
  // at or past it would silently produce a descending or duplicate-point
  // grid instead of a sweep.
  const double tau_max = system.base_time * (1.0 - 1e-9);
  if (!(tau_min < tau_max)) {
    bad("tau_min (" + std::to_string(tau_min) +
        ") must be below system.base_time * (1 - 1e-9) = " +
        std::to_string(tau_max) + " for system \"" + system.name +
        "\"; the log-spaced tau0 grid is empty above that edge");
  }
}

std::vector<int> count_ladder(int max_count) {
  std::vector<int> out;
  int v = 0;
  while (v <= max_count) {
    out.push_back(v);
    v = std::max(v + 1, (v * 5) / 4);
  }
  return out;
}

OptimizationResult optimize_intervals(const ExecutionTimeModel& model,
                                      const systems::SystemConfig& system,
                                      const OptimizerOptions& options,
                                      util::ThreadPool* pool) {
  const auto make_evaluator = [&](const std::vector<int>& levels) {
    return CostEvaluator<ModelCost>{ModelCost{model, system}, levels};
  };
  return optimize_impl(make_evaluator, system, options, pool);
}

OptimizationResult optimize_intervals_with(
    const SubsetEvaluatorFactory& factory,
    const systems::SystemConfig& system, const OptimizerOptions& options,
    util::ThreadPool* pool) {
  const auto make_evaluator = [&](const std::vector<int>& levels) {
    return CostEvaluator<PlanCostFn>{factory(levels), levels};
  };
  return optimize_impl(make_evaluator, system, options, pool);
}

OptimizationResult optimize_intervals_staged(
    const SubsetKernelFactory& factory, const systems::SystemConfig& system,
    const OptimizerOptions& options, util::ThreadPool* pool) {
  const auto make_evaluator = [&](const std::vector<int>& levels) {
    return StagedEvaluator{&factory(levels)};
  };
  return optimize_impl(make_evaluator, system, options, pool);
}

}  // namespace mlck::core

#include "core/optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include "core/dauwe_kernel.h"
#include "obs/trace.h"
#include "util/parallel.h"

namespace mlck::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Candidate {
  double time = kInf;
  double tau0 = 0.0;
  std::vector<int> counts;
};

std::vector<double> log_grid(double lo, double hi, int points) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(points));
  const double ratio = std::log(hi / lo);
  for (int i = 0; i < points; ++i) {
    const double f = (points == 1)
                         ? 0.5
                         : static_cast<double>(i) / (points - 1);
    out.push_back(lo * std::exp(ratio * f));
  }
  return out;
}

/// Per-plan evaluator: one shared thread-safe cost callable per subset;
/// each sweep slice assembles candidate plans and invokes it at the
/// leaves. This is the path for arbitrary ExecutionTimeModels and the
/// reference the staged evaluator is tested against.
template <typename CostFn>
struct CostEvaluator {
  CostFn cost;             ///< shared across slices; must be thread-safe
  std::vector<int> levels;

  struct Slice {
    const CostFn* cost;
    CheckpointPlan plan;
    void begin(double tau0) { plan.tau0 = tau0; }
    void set_count(std::size_t dim, int n) { plan.counts[dim] = n; }
    double leaf(double /*pattern*/) { return (*cost)(plan); }
  };

  Slice slice() const {
    Slice s;
    s.cost = &cost;
    s.plan.levels = levels;
    s.plan.counts.assign(levels.size() - 1, 0);
    return s;
  }

  double plan_cost(const CheckpointPlan& plan) const { return cost(plan); }
};

/// Prefix-incremental evaluator over a DauweKernel cursor: set_count(d, n)
/// completes stage d once per prefix node, so a leaf only pays for the
/// top stage and the scratch wrap. Bit-identical to CostEvaluator over
/// kernel.expected_time — the cursor is the per-plan path's arithmetic.
struct StagedEvaluator {
  const DauweKernel* kernel;

  struct Slice {
    DauweKernel::Cursor cursor;
    void begin(double tau0) noexcept { cursor.begin(tau0); }
    void set_count(std::size_t dim, int n) noexcept {
      cursor.push_stage(static_cast<int>(dim), n);
    }
    double leaf(double pattern) noexcept {
      return cursor.finish_expected_time(pattern);
    }
  };

  Slice slice() const { return Slice{kernel->cursor()}; }

  double plan_cost(const CheckpointPlan& plan) const {
    return kernel->expected_time(plan.tau0, plan.counts);
  }
};

/// Enumerates the ladder^dims count lattice for one tau0 slice — the old
/// recursive sweep flattened into an explicit rung stack so evaluators
/// can reuse per-prefix state across siblings. Visit order, the
/// feasibility prune (the ladder ascends, so the first infeasible rung
/// cuts the rest of the depth), and best-candidate tie-breaking are
/// identical to the recursive formulation. @p pruned counts *leaf plans*
/// eliminated: each rung cut at depth d hides ladder^(dims-1-d) leaves,
/// so evals + pruned == ladder^dims for every slice.
template <typename Slice>
void sweep_slice(Slice& slice, double tau0, double base_time,
                 const std::vector<int>& ladder, std::vector<int>& counts,
                 Candidate& best, std::size_t& evals, std::size_t& pruned) {
  const std::size_t dims = counts.size();
  slice.begin(tau0);
  const auto consider = [&](double t) {
    if (t < best.time) {
      best.time = t;
      best.tau0 = tau0;
      best.counts = counts;
    }
  };
  if (dims == 0) {
    ++evals;
    consider(slice.leaf(1.0));
    return;
  }

  // leaves_below[d]: leaf plans under one chosen rung at depth d.
  std::vector<std::size_t> leaves_below(dims);
  {
    std::size_t p = 1;
    for (std::size_t d = dims; d-- > 0;) {
      leaves_below[d] = p;
      p *= ladder.size();
    }
  }

  std::vector<std::size_t> rung(dims, 0);
  std::vector<double> pattern(dims + 1, 1.0);  // prefix prod (N_j + 1)
  std::size_t d = 0;
  while (true) {
    if (rung[d] == ladder.size()) {  // depth exhausted: ascend
      if (d == 0) return;
      --d;
      ++rung[d];
      continue;
    }
    const int n = ladder[rung[d]];
    const double p = pattern[d] * (n + 1);
    if (tau0 * p > base_time) {  // ladder ascends: cut the remaining rungs
      pruned += (ladder.size() - rung[d]) * leaves_below[d];
      if (d == 0) return;
      --d;
      ++rung[d];
      continue;
    }
    counts[d] = n;
    slice.set_count(d, n);
    pattern[d + 1] = p;
    if (d + 1 == dims) {
      ++evals;
      consider(slice.leaf(p));
      ++rung[d];
    } else {
      ++d;
      rung[d] = 0;
    }
  }
}

/// Shared search skeleton. @p make_evaluator is invoked once per level
/// subset — serially, in search order — and returns the per-subset
/// evaluator (CostEvaluator or StagedEvaluator). The coarse pass then
/// runs one independent task per (subset, tau0) pair, so systems with
/// few interior dims still expose subsets x tau-points units of
/// parallelism; reduction and refinement stay serial and deterministic.
template <typename MakeEvaluator>
OptimizationResult optimize_impl(const MakeEvaluator& make_evaluator,
                                 const systems::SystemConfig& system,
                                 const OptimizerOptions& options,
                                 util::ThreadPool* pool) {
  system.validate();

  // Candidate level subsets.
  std::vector<std::vector<int>> subsets;
  if (!options.restrict_levels.empty()) {
    subsets.push_back(options.restrict_levels);
  } else {
    const int L = system.levels();
    const int min_k = options.allow_suffix_skipping ? 1 : L;
    for (int K = L; K >= min_k; --K) {
      std::vector<int> levels(static_cast<std::size_t>(K));
      for (int i = 0; i < K; ++i) levels[static_cast<std::size_t>(i)] = i;
      subsets.push_back(std::move(levels));
    }
  }

  const std::vector<int> ladder = count_ladder(options.max_count);
  const std::vector<double> taus = log_grid(
      options.tau_min, system.base_time * (1.0 - 1e-9),
      options.coarse_tau_points);

  using Evaluator = std::decay_t<decltype(make_evaluator(subsets.front()))>;
  std::vector<Evaluator> evaluator;
  evaluator.reserve(subsets.size());
  for (const auto& levels : subsets) {
    evaluator.push_back(make_evaluator(levels));
  }

  // Coarse pass: every (subset, tau0) slice finds its own best, written
  // to a private slot; the reduction below is serial and deterministic.
  struct Slot {
    Candidate best;
    std::size_t evals = 0;
    std::size_t pruned = 0;
  };
  const std::size_t nt = taus.size();
  std::vector<Slot> slot(subsets.size() * nt);
  {
    obs::Span coarse(options.trace, "optimizer.coarse_sweep", "optimizer");
    util::parallel_for(pool, slot.size(), [&](std::size_t idx) {
      obs::Span span(options.trace, "optimizer.sweep_slice", "optimizer");
      const std::size_t si = idx / nt;
      auto slice = evaluator[si].slice();
      std::vector<int> counts(subsets[si].size() - 1, 0);
      Slot& s = slot[idx];
      sweep_slice(slice, taus[idx % nt], system.base_time, ladder, counts,
                  s.best, s.evals, s.pruned);
    });
  }

  Candidate global;
  std::vector<int> global_levels;
  std::size_t total_evals = 0;
  std::size_t total_pruned = 0;
  std::size_t refine_evals = 0;

  for (std::size_t si = 0; si < subsets.size(); ++si) {
    const auto& levels = subsets[si];
    const std::size_t dims = levels.size() - 1;

    Candidate best;
    for (std::size_t ti = 0; ti < nt; ++ti) {
      Slot& s = slot[si * nt + ti];
      if (s.best.time < best.time) best = std::move(s.best);
      total_evals += s.evals;
      total_pruned += s.pruned;
    }
    if (!std::isfinite(best.time)) continue;

    // Refinement: coordinate descent over tau0 and each count, evaluated
    // against the same per-subset evaluator as the coarse pass.
    obs::Span refine_span(options.trace, "optimizer.refine", "optimizer");
    static constexpr double kTauFactors[] = {0.80, 0.90, 0.95, 0.98,
                                             1.02, 1.05, 1.10, 1.25};
    static constexpr int kCountSteps[] = {-4, -2, -1, 1, 2, 4};
    CheckpointPlan plan;
    plan.levels = levels;
    for (int round = 0; round < options.refine_rounds; ++round) {
      Candidate improved = best;
      for (const double f : kTauFactors) {
        const double tau = best.tau0 * f;
        if (tau <= 0.0 || tau >= system.base_time) continue;
        plan.tau0 = tau;
        plan.counts = best.counts;
        ++total_evals;
        ++refine_evals;
        const double t = evaluator[si].plan_cost(plan);
        if (t < improved.time) {
          improved = Candidate{t, tau, best.counts};
        }
      }
      for (std::size_t d = 0; d < dims; ++d) {
        for (const int step : kCountSteps) {
          const int n = best.counts[d] + step;
          if (n < 0 || n > options.max_count) continue;
          plan.tau0 = best.tau0;
          plan.counts = best.counts;
          plan.counts[d] = n;
          ++total_evals;
          ++refine_evals;
          const double t = evaluator[si].plan_cost(plan);
          if (t < improved.time) {
            improved = Candidate{t, best.tau0, plan.counts};
          }
        }
      }
      if (improved.time >= best.time) break;  // converged
      best = std::move(improved);
    }

    if (best.time < global.time) {
      global = std::move(best);
      global_levels = levels;
    }
  }

  // Flush observe-only counters once, after the whole search, so the
  // enumeration itself stays free of atomic traffic.
  if (const OptimizerMetrics* m = options.metrics; m != nullptr) {
    if (m->plans_swept) m->plans_swept->add(total_evals - refine_evals);
    if (m->plans_pruned) m->plans_pruned->add(total_pruned);
    if (m->plans_refined) m->plans_refined->add(refine_evals);
    if (m->subsets_searched) m->subsets_searched->add(subsets.size());
  }

  if (!std::isfinite(global.time)) {
    throw std::runtime_error("optimize_intervals: no feasible plan for " +
                             system.name);
  }

  OptimizationResult result;
  result.plan.tau0 = global.tau0;
  result.plan.levels = std::move(global_levels);
  result.plan.counts = std::move(global.counts);
  result.expected_time = global.time;
  result.efficiency = system.base_time / global.time;
  result.evaluations = total_evals;
  return result;
}

/// Direct-model cost: no per-subset state, one virtual call per plan.
struct ModelCost {
  const ExecutionTimeModel& model;
  const systems::SystemConfig& system;
  double operator()(const CheckpointPlan& plan) const {
    return model.expected_time(system, plan);
  }
};

}  // namespace

std::vector<int> count_ladder(int max_count) {
  std::vector<int> out;
  int v = 0;
  while (v <= max_count) {
    out.push_back(v);
    v = std::max(v + 1, (v * 5) / 4);
  }
  return out;
}

OptimizationResult optimize_intervals(const ExecutionTimeModel& model,
                                      const systems::SystemConfig& system,
                                      const OptimizerOptions& options,
                                      util::ThreadPool* pool) {
  const auto make_evaluator = [&](const std::vector<int>& levels) {
    return CostEvaluator<ModelCost>{ModelCost{model, system}, levels};
  };
  return optimize_impl(make_evaluator, system, options, pool);
}

OptimizationResult optimize_intervals_with(
    const SubsetEvaluatorFactory& factory,
    const systems::SystemConfig& system, const OptimizerOptions& options,
    util::ThreadPool* pool) {
  const auto make_evaluator = [&](const std::vector<int>& levels) {
    return CostEvaluator<PlanCostFn>{factory(levels), levels};
  };
  return optimize_impl(make_evaluator, system, options, pool);
}

OptimizationResult optimize_intervals_staged(
    const SubsetKernelFactory& factory, const systems::SystemConfig& system,
    const OptimizerOptions& options, util::ThreadPool* pool) {
  const auto make_evaluator = [&](const std::vector<int>& levels) {
    return StagedEvaluator{&factory(levels)};
  };
  return optimize_impl(make_evaluator, system, options, pool);
}

}  // namespace mlck::core

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "systems/system_config.h"

namespace mlck::core {

/// A pattern-based multilevel checkpoint schedule (paper Fig. 1).
///
/// The application computes in intervals of tau0 minutes. After every
/// interval a checkpoint is taken; its level follows the SCR pattern given
/// by `counts`: counts[k] checkpoints of used-level k precede each
/// checkpoint of used-level k+1. A higher-level checkpoint subsumes all
/// lower used levels (SCR flushes downward), so the level taken after the
/// j-th interval is the *highest* used level whose period divides j.
///
/// `levels` lists the system checkpoint levels the plan actually uses, in
/// ascending order. This generalizes the paper's two schedule families:
///   * Dauwe/Moody/Benoit plans use levels {0..L-1} (counts may be 0,
///     which merges a level into the one above, exactly as N_i = 0 does in
///     the paper's equations);
///   * traditional checkpoint/restart (Daly/Young) uses only the PFS,
///     levels {L-1};
///   * short-application plans omit a suffix of expensive levels
///     (paper Sec. IV-F); severities above the top used level then force a
///     restart of the application from scratch.
struct CheckpointPlan {
  /// Computation interval tau0 in minutes. Must be > 0.
  double tau0 = 0.0;

  /// Ascending, unique system level indices in use (0-based; paper levels
  /// are 1-based). Non-empty.
  std::vector<int> levels;

  /// counts[k] = N_{k+1} of the paper: how many used-level-k checkpoints
  /// occur before each used-level-(k+1) checkpoint. Size levels.size()-1,
  /// entries >= 0.
  std::vector<int> counts;

  /// Number of used levels K.
  int used_levels() const noexcept { return static_cast<int>(levels.size()); }

  /// Period, in tau0-intervals, between consecutive checkpoints of used
  /// level k: P_0 = 1, P_k = prod_{j<k} (counts[j]+1).
  long long interval_period(int k) const noexcept;

  /// Period of the full pattern in tau0-intervals (= interval_period of
  /// the top used level).
  long long pattern_period() const noexcept;

  /// Useful work accomplished per top-level period, minutes.
  double work_per_top_period() const noexcept;

  /// The paper's N_L: (real-valued) number of top-used-level checkpoint
  /// periods in an application of the given baseline time.
  double top_periods(double base_time) const noexcept;

  /// Used-level index (0-based position in `levels`) of the checkpoint
  /// taken after the j-th completed interval (j >= 1): the largest k whose
  /// period divides j.
  int checkpoint_after_interval(long long j) const noexcept;

  /// Highest used *system* level.
  int top_system_level() const noexcept { return levels.back(); }

  /// Lowest used system level >= severity, or nullopt when the severity
  /// exceeds every used level (restart from scratch).
  std::optional<int> restart_level_for_severity(int severity) const noexcept;

  /// Throws std::invalid_argument when malformed or inconsistent with the
  /// system (levels out of range, counts size mismatch, tau0 <= 0).
  void validate(const systems::SystemConfig& system) const;

  /// Human-readable form, e.g. "tau0=3.25 levels=[0,1,3] counts=[4,2]".
  std::string to_string() const;

  /// Plan using every level of an L-level system.
  static CheckpointPlan full_hierarchy(double tau0, std::vector<int> counts);

  /// Traditional single-level plan checkpointing only @p system_level.
  static CheckpointPlan single_level(double tau0, int system_level);
};

}  // namespace mlck::core

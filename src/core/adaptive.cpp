#include "core/adaptive.h"

#include <cmath>

#include "core/effective.h"

namespace mlck::core {

std::optional<CheckpointPoint> AdaptiveSchedule::next_checkpoint(
    double work) const {
  double position = work;
  for (;;) {
    // Next base pattern point strictly after `position`.
    const double j =
        std::floor((position + IntervalSchedule::kWorkEpsilon) / base.tau0) +
        1.0;
    const double point = j * base.tau0;
    if (point >= base_time - IntervalSchedule::kWorkEpsilon) {
      return std::nullopt;  // the run finishes first
    }
    const int pattern_level =
        base.checkpoint_after_interval(static_cast<long long>(j));
    const double remaining = base_time - point;
    // Downgrade to the highest used level still worth its cost here. SCR
    // grids nest, so every lower used level is also due at this point.
    for (int k = pattern_level; k >= 0; --k) {
      if (remaining >= cutoff_remaining[static_cast<std::size_t>(k)]) {
        return CheckpointPoint{point, k};
      }
    }
    position = point;  // everything skipped; look at the next point
  }
}

AdaptiveSchedule make_adaptive(const systems::SystemConfig& system,
                               const CheckpointPlan& plan) {
  plan.validate(system);
  AdaptiveSchedule schedule;
  schedule.base = plan;
  schedule.base_time = system.base_time;
  const EffectiveSystem eff = make_effective(system, plan);
  schedule.cutoff_remaining.reserve(eff.level.size());
  for (const auto& level : eff.level) {
    double cutoff = 0.0;
    if (level.lambda > 0.0 && level.checkpoint_cost > 0.0) {
      cutoff = std::sqrt(2.0 * level.checkpoint_cost / level.lambda);
    }
    schedule.cutoff_remaining.push_back(cutoff);
  }
  return schedule;
}

}  // namespace mlck::core

#pragma once

#include <vector>

#include "core/plan.h"
#include "systems/system_config.h"

namespace mlck::core {

/// One level of the reduced hierarchy seen by the analytic models.
struct EffectiveLevel {
  double lambda = 0.0;         ///< failure rate handled by this level
  double checkpoint_cost = 0.0;
  double restart_cost = 0.0;
  double severity_share = 0.0; ///< S_k = lambda / full-system lambda
};

/// The plan-induced reduction of a system: severities are re-binned onto
/// the plan's used levels.
///
/// A severity-s failure restarts from the lowest used level >= s, so for
/// used levels e_0 < e_1 < ... < e_{K-1} the effective rate of used level
/// k is the sum of lambda_s over severities s in (e_{k-1}, e_k] (with
/// e_{-1} = -1). Severities above e_{K-1} cannot be recovered from any
/// checkpoint and restart the application from scratch; their combined
/// rate is `scratch_lambda`.
struct EffectiveSystem {
  std::vector<EffectiveLevel> level;
  double scratch_lambda = 0.0;
  double lambda_total = 0.0;  ///< full-system failure rate (all severities)
};

/// Builds the effective hierarchy for @p plan. @p plan must be valid for
/// @p system (see CheckpointPlan::validate).
EffectiveSystem make_effective(const systems::SystemConfig& system,
                               const CheckpointPlan& plan);

/// Same reduction from the used-level subset alone — the effective
/// hierarchy depends only on (system, levels), never on tau0 or the
/// pattern counts, which is what makes it cacheable across sweeps.
EffectiveSystem make_effective(const systems::SystemConfig& system,
                               const std::vector<int>& levels);

}  // namespace mlck::core

#include "core/dauwe_kernel.h"

#include <array>
#include <cassert>
#include <cmath>
#include <limits>

#include "math/exponential.h"
#include "math/retry.h"

namespace mlck::core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

DauweKernel::DauweKernel(const systems::SystemConfig& system,
                         const std::vector<int>& levels,
                         const DauweOptions& options,
                         std::shared_ptr<const math::FailureLaw> law)
    : base_time_(system.base_time), options_(options) {
  // Null or explicit-exponential law selects the closed-form fast path:
  // no primitive is ever built and every term below computes through the
  // exact same math/exponential.h calls as the law-less kernel, so the
  // default model stays bit-identical.
  const bool generalized = !math::is_exponential_family(law.get());
  const EffectiveSystem eff = make_effective(system, levels);
  scratch_lambda_ = eff.scratch_lambda;
  level_.reserve(eff.level.size());
  double lambda_c = 0.0;
  for (const EffectiveLevel& lvl : eff.level) {
    lambda_c += lvl.lambda;
    DauweLevelTerms terms;
    terms.lambda = lvl.lambda;
    terms.checkpoint_cost = lvl.checkpoint_cost;
    terms.restart_cost = lvl.restart_cost;
    terms.severity_share = lvl.severity_share;
    terms.lambda_c = lambda_c;
    if (generalized && lambda_c > 0.0) {
      const auto prim_c = law->primitive(lambda_c);
      terms.ck_retry = prim_c->expected_retries(lvl.checkpoint_cost);
      terms.ck_trunc = prim_c->truncated_mean(lvl.checkpoint_cost);
      terms.r_retry = prim_c->expected_retries(lvl.restart_cost);
      terms.r_trunc = prim_c->truncated_mean(lvl.restart_cost);
    } else {
      // Zero-rate levels stay on the closed forms under every law: the
      // conventions there (no retries, uniform-limit truncated mean) are
      // rate-independent.
      terms.ck_retry = math::expected_retries(lvl.checkpoint_cost, lambda_c);
      terms.ck_trunc = math::truncated_mean(lvl.checkpoint_cost, lambda_c);
      terms.r_retry = math::expected_retries(lvl.restart_cost, lambda_c);
      terms.r_trunc = math::truncated_mean(lvl.restart_cost, lambda_c);
    }
    if (generalized && lvl.lambda > 0.0) {
      terms.law = law->primitive(lvl.lambda);
    }
    level_.push_back(terms);
  }
  if (generalized && scratch_lambda_ > 0.0) {
    scratch_law_ = law->primitive(scratch_lambda_);
  }
}

double DauweKernel::stage_output(int k, double m, double c, double gamma,
                                 const double* tau_hist,
                                 const double* gamma_e_hist,
                                 DauweStageTerms* term) const noexcept {
  const DauweLevelTerms& lvl = level_[static_cast<std::size_t>(k)];

  // Severity share used by Eqns. 10 and 11: the printed S_k (share of
  // all failures) or, under the ablation flag, the share of failures a
  // level-k event can actually see (renormalized over lambda_c of the
  // *current* stage, which is why it cannot be folded into the kernel).
  const auto share = [&](int j) noexcept {
    const DauweLevelTerms& lj = level_[static_cast<std::size_t>(j)];
    return options_.renormalize_severity_shares ? lj.lambda / lvl.lambda_c
                                                : lj.severity_share;
  };

  // Eqn. 5 / 6: severity-k failures during computation intervals (the
  // gamma_k E(tau_k) product is part of the cursor's prefix state).
  const double t_w_tau = gamma_e_hist[k] * m;

  // Eqn. 7: successful checkpoints.
  const double t_ck_ok = c * lvl.checkpoint_cost;

  // Eqns. 8-10: failed checkpoints and the work they strand.
  const double alpha = options_.checkpoint_failures ? lvl.ck_retry * c : 0.0;
  const double t_ck_fail = alpha * lvl.ck_trunc;
  double lost_intervals = 0.0;
  for (int j = 0; j <= k; ++j) {
    lost_intervals += (tau_hist[j] + gamma_e_hist[j]) * share(j);
  }
  const double t_w_ck = alpha * lost_intervals;

  // Eqns. 11-14: restarts and failed restarts.
  const double s_k = share(k);
  const double beta = s_k * alpha + gamma * (s_k * alpha + m);
  const double t_r_ok = beta * lvl.restart_cost;
  const double zeta = options_.restart_failures ? lvl.r_retry * beta : 0.0;
  const double t_r_fail = zeta * lvl.r_trunc;

  if (term != nullptr) {
    *term = DauweStageTerms{t_ck_ok, t_ck_fail,  t_r_ok, t_r_fail,
                            t_w_tau, t_w_ck, m};
  }

  // Eqn. 4.
  return m * tau_hist[k] + t_ck_ok + t_ck_fail + t_r_ok + t_r_fail +
         t_w_tau + t_w_ck;
}

void DauweKernel::Cursor::enter(int k, double tau) noexcept {
  tau_[static_cast<std::size_t>(k)] = tau;
  if (!std::isfinite(tau)) {
    // The recursion reports the whole plan as +inf the moment any stage
    // overflows; remember the depth so every leaf under it stays +inf and
    // no transcendental is evaluated on garbage.
    if (dead_from_ > k) dead_from_ = k;
    return;
  }
  // Overwriting the stage that carried a stale dead marker revives the
  // prefix (ancestors are live by construction: push_stage never enters
  // below a dead stage).
  if (dead_from_ >= k) dead_from_ = kDauweMaxLevels + 1;
  const DauweLevelTerms& lvl = kernel_->level_[static_cast<std::size_t>(k)];
  double gamma;
  double e_tau;
  if (lvl.law != nullptr) {
    gamma = lvl.law->expected_retries(tau);
    e_tau = lvl.law->truncated_mean(tau);
  } else {
    gamma = math::expected_retries(tau, lvl.lambda);
    e_tau = math::truncated_mean(tau, lvl.lambda);
  }
  gamma_[static_cast<std::size_t>(k)] = gamma;
  gamma_e_[static_cast<std::size_t>(k)] = gamma * e_tau;
}

void DauweKernel::Cursor::begin(double tau0) noexcept {
  dead_from_ = kDauweMaxLevels + 1;
  enter(0, tau0);
}

void DauweKernel::Cursor::push_stage(int k, int n,
                                     DauweStageTerms* term) noexcept {
  assert(k >= 0 && k + 1 < static_cast<int>(kernel_->level_.size()));
  if (dead_from_ <= k) return;  // subtree is already +inf
  const double m = static_cast<double>(n + 1);
  const double c = static_cast<double>(n);
  enter(k + 1,
        kernel_->stage_output(k, m, c, gamma_[static_cast<std::size_t>(k)],
                              tau_.data(), gamma_e_.data(), term));
}

double DauweKernel::Cursor::finish_top(double pattern,
                                       DauweStageTerms* term) const noexcept {
  const int K = static_cast<int>(kernel_->level_.size());
  const double top_periods =
      kernel_->base_time_ / (tau_[0] * pattern);  // Eqn. 3
  if (!(top_periods >= 1.0)) return kInf;  // paper's solution-space bound
  if (dead_from_ < K) return kInf;         // an entered stage overflowed
  // The top level runs N_L periods but needs one fewer checkpoint: the
  // run ends after the last period instead of checkpointing it (the
  // simulator skips that trailing checkpoint too; see DESIGN.md on the
  // paper's Eqn. 7 convention).
  const double total = kernel_->stage_output(
      K - 1, top_periods, top_periods - 1.0,
      gamma_[static_cast<std::size_t>(K - 1)], tau_.data(), gamma_e_.data(),
      term);
  return std::isfinite(total) ? total : kInf;
}

double DauweKernel::Cursor::finish_expected_time(
    double pattern) const noexcept {
  const double before_scratch = finish_top(pattern, nullptr);
  if (!std::isfinite(before_scratch)) return kInf;
  return kernel_->wrap_scratch(before_scratch);
}

double DauweKernel::recursion(double tau0, std::span<const int> counts,
                              DauweStageTerms* stages) const noexcept {
  const int K = static_cast<int>(level_.size());
  assert(K >= 1 && K <= kDauweMaxLevels);
  assert(static_cast<int>(counts.size()) == K - 1);

  // One cursor driven straight to the leaf: the per-plan path and the
  // optimizer's prefix-incremental sweep share every instruction.
  Cursor cur(*this);
  cur.begin(tau0);
  double pattern = 1.0;  // prod (N_k + 1) over interior levels
  for (int k = 0; k + 1 < K; ++k) {
    const int n = counts[static_cast<std::size_t>(k)];
    pattern *= static_cast<double>(n + 1);
    cur.push_stage(k, n, stages != nullptr ? stages + k : nullptr);
  }
  return cur.finish_top(pattern,
                        stages != nullptr ? stages + (K - 1) : nullptr);
}

double DauweKernel::wrap_scratch(double before_scratch) const noexcept {
  if (scratch_lambda_ <= 0.0) return before_scratch;
  if (scratch_law_ != nullptr) {
    const double reruns = scratch_law_->expected_retries(before_scratch);
    return before_scratch +
           reruns * scratch_law_->truncated_mean(before_scratch);
  }
  const double reruns = math::expected_retries(before_scratch, scratch_lambda_);
  return before_scratch +
         reruns * math::truncated_mean(before_scratch, scratch_lambda_);
}

double DauweKernel::expected_time(double tau0,
                                  std::span<const int> counts) const noexcept {
  const double before_scratch = recursion(tau0, counts, nullptr);
  if (!std::isfinite(before_scratch)) return kInf;
  return wrap_scratch(before_scratch);
}

Prediction DauweKernel::predict(const CheckpointPlan& plan) const {
  assert(plan.levels.size() == level_.size());
  const int K = plan.used_levels();
  std::array<DauweStageTerms, kDauweMaxLevels> stages{};
  const double before_scratch =
      recursion(plan.tau0, plan.counts, stages.data());

  Prediction p;
  if (!std::isfinite(before_scratch)) {
    p.expected_time = kInf;
    p.efficiency = 0.0;
    return p;
  }

  // Stage-k terms occur once per tau_{k+1} period; multiply by how many
  // such periods the run contains to total them.
  double occurrences = 1.0;  // periods of tau_{K} (the whole run): one
  ModelBreakdown& b = p.breakdown;
  b.compute = base_time_;
  for (int k = K - 1; k >= 0; --k) {
    const DauweStageTerms& t = stages[static_cast<std::size_t>(k)];
    b.checkpoint_ok += t.checkpoint_ok * occurrences;
    b.checkpoint_failed += t.checkpoint_failed * occurrences;
    b.restart_ok += t.restart_ok * occurrences;
    b.restart_failed += t.restart_failed * occurrences;
    b.rework_compute += t.rework_compute * occurrences;
    b.rework_checkpoint += t.rework_checkpoint * occurrences;
    occurrences *= t.multiplicity;
  }

  double total = before_scratch;
  if (scratch_lambda_ > 0.0) {
    if (scratch_law_ != nullptr) {
      b.scratch_rework = scratch_law_->expected_retries(before_scratch) *
                         scratch_law_->truncated_mean(before_scratch);
    } else {
      b.scratch_rework =
          math::expected_retries(before_scratch, scratch_lambda_) *
          math::truncated_mean(before_scratch, scratch_lambda_);
    }
    total += b.scratch_rework;
  }
  p.expected_time = total;
  p.efficiency = base_time_ / total;
  return p;
}

}  // namespace mlck::core

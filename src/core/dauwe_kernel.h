#pragma once

#include <span>
#include <vector>

#include "core/dauwe_model.h"
#include "core/effective.h"
#include "core/model.h"
#include "core/plan.h"
#include "systems/system_config.h"

namespace mlck::core {

/// Hard cap on checkpoint hierarchy depth accepted by the recursion; keeps
/// the per-evaluation stage scratch on the stack.
inline constexpr int kDauweMaxLevels = 16;

/// Everything the Dauwe recursion produces for one used level, per
/// enclosing tau_{k+1} period. Exposed so predict() can total the
/// per-event breakdown.
struct DauweStageTerms {
  double checkpoint_ok = 0.0;
  double checkpoint_failed = 0.0;
  double restart_ok = 0.0;
  double restart_failed = 0.0;
  double rework_compute = 0.0;
  double rework_checkpoint = 0.0;
  double multiplicity = 0.0;  ///< m_k: tau_k intervals per tau_{k+1} period
};

/// The tau-independent quantities of one used level: the effective-rate
/// re-binning of core/effective plus the checkpoint/restart retry terms of
/// Eqns. 8/10/12/14, which depend only on (system, level subset) — never
/// on tau0 or the pattern counts.
struct DauweLevelTerms {
  double lambda = 0.0;          ///< effective severity rate of this level
  double checkpoint_cost = 0.0;
  double restart_cost = 0.0;
  double severity_share = 0.0;  ///< S_k = lambda / full-system lambda
  double lambda_c = 0.0;        ///< cumulative rate through this level
  double ck_retry = 0.0;        ///< expected_retries(delta_k, lambda_c)
  double ck_trunc = 0.0;        ///< truncated_mean(delta_k, lambda_c)
  double r_retry = 0.0;         ///< expected_retries(R_k, lambda_c)
  double r_trunc = 0.0;         ///< truncated_mean(R_k, lambda_c)
};

/// The hot core of the paper's model, split into a build step and an
/// evaluation step. Building precomputes every tau-independent per-level
/// quantity for one (system, level-subset) pair; evaluating runs the
/// Eqns. 4-14 recursion over those terms for a concrete (tau0, counts).
///
/// The factoring is exact: expected_retries(t, rate, n) is defined as
/// expected_retries(t, rate) * n, so caching the unit term and multiplying
/// by the per-plan count reproduces DauweModel's arithmetic bit for bit.
/// The optimizer's coarse sweep and refinement evaluate ~10^5..10^6 plans
/// per level subset against one kernel, skipping the per-plan effective-
/// system rebuild and two thirds of the expm1/exp calls.
class DauweKernel {
 public:
  DauweKernel() = default;

  /// Precomputes the invariants for plans over @p levels (ascending,
  /// unique, valid system level indices, size 1..kDauweMaxLevels).
  DauweKernel(const systems::SystemConfig& system,
              const std::vector<int>& levels, const DauweOptions& options);

  /// Expected execution time for (tau0, counts) over the kernel's level
  /// subset, including the restart-from-scratch wrap; +inf for infeasible
  /// plans. counts.size() must equal levels().size() - 1.
  double expected_time(double tau0, std::span<const int> counts) const noexcept;

  /// Full forecast with the per-event breakdown; bit-identical to
  /// DauweModel::predict on the same plan. @p plan.levels must equal the
  /// kernel's subset (checked by assert only; callers route by subset).
  Prediction predict(const CheckpointPlan& plan) const;

  /// The recursion before the scratch-severity wrap; +inf when infeasible.
  /// When @p stages is non-null it receives levels().size() entries.
  double recursion(double tau0, std::span<const int> counts,
                   DauweStageTerms* stages) const noexcept;

  const std::vector<DauweLevelTerms>& levels() const noexcept {
    return level_;
  }
  double scratch_lambda() const noexcept { return scratch_lambda_; }
  double base_time() const noexcept { return base_time_; }
  const DauweOptions& options() const noexcept { return options_; }

 private:
  std::vector<DauweLevelTerms> level_;
  double scratch_lambda_ = 0.0;
  double base_time_ = 0.0;
  DauweOptions options_;
};

}  // namespace mlck::core

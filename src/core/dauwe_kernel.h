#pragma once

#include <array>
#include <memory>
#include <span>
#include <vector>

#include "core/dauwe_model.h"
#include "core/effective.h"
#include "core/model.h"
#include "core/plan.h"
#include "math/failure_law.h"
#include "systems/system_config.h"

namespace mlck::core {

/// Hard cap on checkpoint hierarchy depth accepted by the recursion; keeps
/// the per-evaluation stage scratch on the stack.
inline constexpr int kDauweMaxLevels = 16;

/// Everything the Dauwe recursion produces for one used level, per
/// enclosing tau_{k+1} period. Exposed so predict() can total the
/// per-event breakdown.
struct DauweStageTerms {
  double checkpoint_ok = 0.0;
  double checkpoint_failed = 0.0;
  double restart_ok = 0.0;
  double restart_failed = 0.0;
  double rework_compute = 0.0;
  double rework_checkpoint = 0.0;
  double multiplicity = 0.0;  ///< m_k: tau_k intervals per tau_{k+1} period
};

/// The tau-independent quantities of one used level: the effective-rate
/// re-binning of core/effective plus the checkpoint/restart retry terms of
/// Eqns. 8/10/12/14, which depend only on (system, level subset) — never
/// on tau0 or the pattern counts.
struct DauweLevelTerms {
  double lambda = 0.0;          ///< effective severity rate of this level
  double checkpoint_cost = 0.0;
  double restart_cost = 0.0;
  double severity_share = 0.0;  ///< S_k = lambda / full-system lambda
  double lambda_c = 0.0;        ///< cumulative rate through this level
  double ck_retry = 0.0;        ///< expected_retries(delta_k, lambda_c)
  double ck_trunc = 0.0;        ///< truncated_mean(delta_k, lambda_c)
  double r_retry = 0.0;         ///< expected_retries(R_k, lambda_c)
  double r_trunc = 0.0;         ///< truncated_mean(R_k, lambda_c)
  /// Failure-law primitive at this level's severity rate (mean 1 / lambda),
  /// for the cursor's per-interval gamma_k / E(tau_k) pair. Null on the
  /// exponential fast path (and for zero-rate levels), where the cursor
  /// calls the closed forms of math/exponential.h directly — that branch
  /// is what keeps the default model bit-identical to the pre-primitive
  /// code.
  std::shared_ptr<const math::LawPrimitive> law;
};

/// The hot core of the paper's model, split into a build step and an
/// evaluation step. Building precomputes every tau-independent per-level
/// quantity for one (system, level-subset) pair; evaluating runs the
/// Eqns. 4-14 recursion over those terms for a concrete (tau0, counts).
///
/// The factoring is exact: expected_retries(t, rate, n) is defined as
/// expected_retries(t, rate) * n, so caching the unit term and multiplying
/// by the per-plan count reproduces DauweModel's arithmetic bit for bit.
/// The optimizer's coarse sweep and refinement evaluate ~10^5..10^6 plans
/// per level subset against one kernel, skipping the per-plan effective-
/// system rebuild and two thirds of the expm1/exp calls.
class DauweKernel {
 public:
  DauweKernel() = default;

  /// Precomputes the invariants for plans over @p levels (ascending,
  /// unique, valid system level indices, size 1..kDauweMaxLevels). When
  /// @p law names a non-exponential family, every per-level retry /
  /// truncated-mean term is served by that family's primitives at the
  /// corresponding effective rate; a null or exponential @p law selects
  /// the closed-form fast path, bit-identical to the law-less kernel.
  DauweKernel(const systems::SystemConfig& system,
              const std::vector<int>& levels, const DauweOptions& options,
              std::shared_ptr<const math::FailureLaw> law = nullptr);

  /// Prefix-incremental cursor over the Eqns. 4-14 recursion.
  ///
  /// Stage k's per-interval failure terms — gamma_k (Eqn. 5) and the
  /// truncated mean E(tau_k) (Eqn. 6), the only transcendental work of
  /// the stage — depend solely on the (tau0, counts[0..k-1]) prefix, so a
  /// sweep that enumerates counts depth-first can compute them once per
  /// prefix node instead of once per leaf. The cursor keeps that prefix
  /// as an explicit stage-state stack {tau_k, gamma_k, gamma_k E(tau_k)}:
  ///
  ///   cursor.begin(tau0);                 // enters stage 0
  ///   cursor.push_stage(0, counts[0]);    // completes stage 0, enters 1
  ///   ...                                 // one push per interior stage
  ///   cursor.finish_expected_time(prod);  // top stage + scratch wrap
  ///
  /// Re-pushing at depth k simply overwrites stages > k, so siblings in
  /// an enumeration share every shallower stage. The per-plan entry
  /// points (expected_time / recursion) drive a fresh cursor through the
  /// same member functions, so staged and per-plan evaluation execute
  /// literally the same arithmetic and agree bit for bit.
  class Cursor {
   public:
    explicit Cursor(const DauweKernel& kernel) noexcept : kernel_(&kernel) {}

    /// Starts a fresh prefix: enters stage 0 with computation interval
    /// @p tau0 (computing its gamma/E pair, the slice-invariant work).
    void begin(double tau0) noexcept;

    /// Completes interior stage @p k (0-based, k < levels().size() - 1)
    /// with pattern count @p n using the cached entering state, and
    /// enters stage k + 1. Stages deeper than k + 1 become stale and
    /// must be re-pushed before the next finish. @p term optionally
    /// receives the stage's per-period breakdown.
    void push_stage(int k, int n, DauweStageTerms* term = nullptr) noexcept;

    /// Completes the top stage for the current prefix: the expected time
    /// of one full execution *before* the restart-from-scratch wrap,
    /// where @p pattern = prod(counts[k] + 1) over the pushed interior
    /// stages. +inf when the plan is infeasible (fewer than one
    /// top-level period, Eqn. 3) or any entered stage overflowed. Leaves
    /// the prefix untouched, so the enumeration can continue pushing
    /// from any shallower depth.
    double finish_top(double pattern,
                      DauweStageTerms* term = nullptr) const noexcept;

    /// finish_top plus the scratch wrap: exactly
    /// DauweKernel::expected_time of the pushed plan.
    double finish_expected_time(double pattern) const noexcept;

    /// Read-only views of the prefix stack for stage @p k (0 <= k <=
    /// deepest entered stage): the entering interval tau_k, gamma_k, and
    /// gamma_k * E(tau_k). The optimizer's admissible subtree bound is
    /// built from these (docs/PERFORMANCE.md); they are exactly the
    /// values the recursion itself uses, so a bound assembled from them
    /// inherits the cursor's arithmetic. When dead_at(k) the tau is
    /// non-finite and the gamma pair is stale — callers must treat the
    /// subtree as +inf rather than consume the values.
    double stage_tau(int k) const noexcept {
      return tau_[static_cast<std::size_t>(k)];
    }
    double stage_gamma(int k) const noexcept {
      return gamma_[static_cast<std::size_t>(k)];
    }
    double stage_gamma_e(int k) const noexcept {
      return gamma_e_[static_cast<std::size_t>(k)];
    }
    /// True when some stage <= @p k overflowed: every leaf under the
    /// current prefix evaluates to +inf.
    bool dead_at(int k) const noexcept { return dead_from_ <= k; }

   private:
    /// Enters stage @p k with interval @p tau: records tau_k and the
    /// stage's gamma/E pair, or marks the prefix dead on overflow.
    void enter(int k, double tau) noexcept;

    const DauweKernel* kernel_;
    std::array<double, kDauweMaxLevels> tau_;      ///< tau_k entering stage k
    std::array<double, kDauweMaxLevels> gamma_;    ///< gamma_k (Eqn. 5)
    std::array<double, kDauweMaxLevels> gamma_e_;  ///< gamma_k * E(tau_k)
    /// Shallowest stage whose entering tau is non-finite (its whole
    /// subtree evaluates to +inf); kDauweMaxLevels + 1 when clean.
    int dead_from_ = kDauweMaxLevels + 1;
  };

  /// Fresh cursor; call begin() before pushing stages.
  Cursor cursor() const noexcept { return Cursor(*this); }

  /// Expected execution time for (tau0, counts) over the kernel's level
  /// subset, including the restart-from-scratch wrap; +inf for infeasible
  /// plans. counts.size() must equal levels().size() - 1.
  double expected_time(double tau0, std::span<const int> counts) const noexcept;

  /// Full forecast with the per-event breakdown; bit-identical to
  /// DauweModel::predict on the same plan. @p plan.levels must equal the
  /// kernel's subset (checked by assert only; callers route by subset).
  Prediction predict(const CheckpointPlan& plan) const;

  /// The recursion before the scratch-severity wrap; +inf when infeasible.
  /// When @p stages is non-null it receives levels().size() entries.
  double recursion(double tau0, std::span<const int> counts,
                   DauweStageTerms* stages) const noexcept;

  /// Applies the restart-from-scratch wrap (severities above the top used
  /// level re-run the whole execution) to a finite before-scratch time.
  double wrap_scratch(double before_scratch) const noexcept;

  const std::vector<DauweLevelTerms>& levels() const noexcept {
    return level_;
  }
  double scratch_lambda() const noexcept { return scratch_lambda_; }
  double base_time() const noexcept { return base_time_; }
  const DauweOptions& options() const noexcept { return options_; }
  /// Primitive driving the restart-from-scratch wrap; null on the
  /// exponential fast path.
  const math::LawPrimitive* scratch_law() const noexcept {
    return scratch_law_.get();
  }

 private:
  /// All terms of stage k (Eqns. 4-14) given its entering state: the
  /// multiplicity @p m, checkpoint count @p c, the stage's gamma, and the
  /// prefix histories (entries 0..k valid). Returns tau_{k+1}.
  double stage_output(int k, double m, double c, double gamma,
                      const double* tau_hist, const double* gamma_e_hist,
                      DauweStageTerms* term) const noexcept;

  std::vector<DauweLevelTerms> level_;
  double scratch_lambda_ = 0.0;
  double base_time_ = 0.0;
  DauweOptions options_;
  /// Family primitive at scratch_lambda_ for wrap_scratch / predict; null
  /// on the exponential fast path or when no severity restarts from
  /// scratch.
  std::shared_ptr<const math::LawPrimitive> scratch_law_;
};

}  // namespace mlck::core

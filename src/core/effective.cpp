#include "core/effective.h"

namespace mlck::core {

EffectiveSystem make_effective(const systems::SystemConfig& system,
                               const CheckpointPlan& plan) {
  return make_effective(system, plan.levels);
}

EffectiveSystem make_effective(const systems::SystemConfig& system,
                               const std::vector<int>& levels) {
  EffectiveSystem eff;
  eff.lambda_total = system.lambda_total();
  eff.level.reserve(levels.size());
  int severity = 0;  // next system severity to assign
  for (const int used : levels) {
    EffectiveLevel lvl;
    lvl.checkpoint_cost =
        system.checkpoint_cost[static_cast<std::size_t>(used)];
    lvl.restart_cost = system.restart_cost[static_cast<std::size_t>(used)];
    for (; severity <= used; ++severity) lvl.lambda += system.lambda(severity);
    lvl.severity_share = lvl.lambda / eff.lambda_total;
    eff.level.push_back(lvl);
  }
  for (; severity < system.levels(); ++severity) {
    eff.scratch_lambda += system.lambda(severity);
  }
  return eff;
}

}  // namespace mlck::core

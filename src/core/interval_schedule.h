#pragma once

#include <optional>
#include <string>
#include <vector>

#include "systems/system_config.h"

namespace mlck::core {

struct CheckpointPlan;

/// A checkpoint trigger: after `work` minutes of useful progress, take a
/// checkpoint of used level `used_index`.
struct CheckpointPoint {
  double work = 0.0;
  int used_index = 0;
};

/// Interval-based multilevel checkpoint schedule (the alternative to SCR
/// patterns analyzed by Di et al. and discussed in paper Sec. II-C): each
/// used level k checkpoints every `periods[k]` minutes of *work*,
/// independently of the other levels — periods need not nest or even be
/// ordered.
///
/// Collision rule (the paper notes this is the open practical question
/// for interval-based protocols): when several levels' grids coincide at
/// the same work point, a single checkpoint of the *highest* such level
/// is taken — it subsumes the lower levels exactly as in the SCR
/// protocol, so nothing is lost and nothing is written twice.
struct IntervalSchedule {
  /// Ascending, unique system level indices in use. Non-empty.
  std::vector<int> levels;

  /// Work minutes between level-k checkpoints; same size as `levels`,
  /// entries > 0.
  std::vector<double> periods;

  int used_levels() const noexcept { return static_cast<int>(levels.size()); }

  /// The next checkpoint trigger strictly after @p work, or nullopt when
  /// every remaining grid point lies at or beyond @p base_time (a
  /// completed application takes no further checkpoints).
  ///
  /// Grid points are absolute work positions j * periods[k]; a position
  /// within kWorkEpsilon of a grid point counts as already on it, so a
  /// rollback to a checkpointed position never re-triggers that same
  /// checkpoint.
  std::optional<CheckpointPoint> next_checkpoint(double work,
                                                 double base_time) const;

  /// Tolerance for matching work positions to grid points (minutes).
  static constexpr double kWorkEpsilon = 1e-9;

  /// Throws std::invalid_argument on malformed schedules (empty, size
  /// mismatch, non-positive periods, bad level indices).
  void validate(const systems::SystemConfig& system) const;

  std::string to_string() const;

  /// The interval schedule equivalent to an SCR pattern plan: level k
  /// checkpoints every tau0 * P_k of work. Produces the exact same
  /// checkpoint grid (points and levels), so simulations of the two
  /// representations coincide trajectory-for-trajectory — a property the
  /// tests exploit to cross-validate both engine paths.
  static IntervalSchedule from_plan(const CheckpointPlan& plan);
};

}  // namespace mlck::core

#pragma once

#include "core/plan.h"
#include "systems/system_config.h"

namespace mlck::core {

/// Expected time attributed to each execution event class of paper
/// Sec. III-B, totaled over the whole application run (minutes).
struct ModelBreakdown {
  double compute = 0.0;           ///< first-time useful computation (= T_B)
  double checkpoint_ok = 0.0;     ///< successful checkpoints, T_delta
  double checkpoint_failed = 0.0; ///< failed checkpoints, T_delta'
  double restart_ok = 0.0;        ///< successful restarts, T_R
  double restart_failed = 0.0;    ///< failed restarts, T_R'
  double rework_compute = 0.0;    ///< recomputation after failures during
                                  ///< computation intervals, T_W_tau
  double rework_checkpoint = 0.0; ///< recomputation after failures during
                                  ///< checkpoints, T_W_delta
  double scratch_rework = 0.0;    ///< whole-run reruns when a severity has
                                  ///< no covering checkpoint level

  double total() const noexcept {
    return compute + checkpoint_ok + checkpoint_failed + restart_ok +
           restart_failed + rework_compute + rework_checkpoint +
           scratch_rework;
  }
};

/// A model's forecast for one (system, plan) pair.
struct Prediction {
  double expected_time = 0.0;  ///< T_ML
  double efficiency = 0.0;     ///< T_B / T_ML
  ModelBreakdown breakdown;
};

/// Interface for execution-time prediction models; the optimizer minimizes
/// expected_time over the plan space, so any model plugged in here can
/// drive checkpoint-interval selection.
///
/// Implementations must return +infinity for plans they consider
/// infeasible (e.g. fewer than one top-level period) rather than throwing,
/// so optimizer sweeps stay branch-free.
class ExecutionTimeModel {
 public:
  virtual ~ExecutionTimeModel() = default;

  /// Expected wall-clock minutes to complete the application under @p plan.
  virtual double expected_time(const systems::SystemConfig& system,
                               const CheckpointPlan& plan) const = 0;

  /// Full forecast with per-event breakdown. The default implementation
  /// fills only the totals.
  virtual Prediction predict(const systems::SystemConfig& system,
                             const CheckpointPlan& plan) const {
    Prediction p;
    p.expected_time = expected_time(system, plan);
    p.efficiency = system.base_time / p.expected_time;
    return p;
  }
};

}  // namespace mlck::core

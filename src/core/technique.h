#pragma once

#include <memory>
#include <string>

#include "core/dauwe_model.h"
#include "core/model.h"
#include "core/optimizer.h"
#include "core/plan.h"
#include "util/thread_pool.h"

namespace mlck::core {

/// What a checkpoint-interval selection technique hands to the runtime: a
/// concrete plan plus the technique's own forecast of how it will perform
/// (the "diamond" values in the paper's figures).
struct TechniqueResult {
  std::string technique;
  CheckpointPlan plan;
  double predicted_time = 0.0;
  double predicted_efficiency = 0.0;
};

/// A complete checkpoint-interval selection strategy: a performance model
/// plus a policy for searching the plan space with it. One implementation
/// exists per compared technique (Dauwe, Moody, Di, Benoit, Daly, Young).
class Technique {
 public:
  virtual ~Technique() = default;

  /// Display name used in tables ("Dauwe et al.", ...).
  virtual std::string name() const = 0;

  /// Chooses checkpoint intervals for @p system and predicts their
  /// performance. @p pool, when given, parallelizes internal sweeps.
  TechniqueResult select_plan(const systems::SystemConfig& system,
                              util::ThreadPool* pool = nullptr) const {
    return do_select_plan(system, pool);
  }

 protected:
  /// Implementation hook (non-virtual interface keeps the defaulted pool
  /// argument in one place).
  virtual TechniqueResult do_select_plan(const systems::SystemConfig& system,
                                         util::ThreadPool* pool) const = 0;
};

/// The paper's technique: the Dauwe execution-time model driving the
/// bounded brute-force sweep of Sec. III-C, including the Sec. IV-F
/// option of omitting expensive top levels for short applications.
class DauweTechnique : public Technique {
 public:
  explicit DauweTechnique(DauweOptions model_options = {},
                          OptimizerOptions optimizer_options = {});

  std::string name() const override { return "Dauwe et al."; }

  const DauweModel& model() const noexcept { return model_; }

 protected:
  TechniqueResult do_select_plan(const systems::SystemConfig& system,
                                 util::ThreadPool* pool) const override;

 private:
  DauweModel model_;
  OptimizerOptions optimizer_options_;
};

}  // namespace mlck::core

#include "core/dauwe_model.h"

#include "core/dauwe_kernel.h"

namespace mlck::core {

// The model is a thin facade over DauweKernel: each call builds the
// tau-independent per-level terms for the plan's level subset and runs the
// Eqns. 4-14 recursion once. Sweep-heavy callers (the optimizer, the
// engine layer) build the kernel once per (system, level-subset) instead
// and evaluate it for every candidate plan; both paths execute the same
// recursion and agree bit for bit.

double DauweModel::expected_time(const systems::SystemConfig& system,
                                 const CheckpointPlan& plan) const {
  const DauweKernel kernel(system, plan.levels, options_, law_);
  return kernel.expected_time(plan.tau0, plan.counts);
}

Prediction DauweModel::predict(const systems::SystemConfig& system,
                               const CheckpointPlan& plan) const {
  plan.validate(system);
  const DauweKernel kernel(system, plan.levels, options_, law_);
  return kernel.predict(plan);
}

}  // namespace mlck::core

#include "core/dauwe_model.h"

#include <array>
#include <cassert>
#include <cmath>
#include <limits>
#include <span>

#include "math/exponential.h"
#include "math/retry.h"

namespace mlck::core {

namespace {

constexpr int kMaxLevels = 16;
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Everything the recursion produces for one used level, per enclosing
/// tau_{k+1} period.
struct StageTerms {
  double checkpoint_ok = 0.0;
  double checkpoint_failed = 0.0;
  double restart_ok = 0.0;
  double restart_failed = 0.0;
  double rework_compute = 0.0;
  double rework_checkpoint = 0.0;
  double multiplicity = 0.0;  ///< m_k: tau_k intervals per tau_{k+1} period

  double sum() const noexcept {
    return checkpoint_ok + checkpoint_failed + restart_ok + restart_failed +
           rework_compute + rework_checkpoint;
  }
};

/// Core of the hierarchical recursion (Eqns. 4-14). Returns the expected
/// time of the run *before* the scratch-severity wrap, or +inf for
/// infeasible plans. When @p stages is non-null, per-stage terms are
/// recorded for the breakdown.
double run_recursion(const EffectiveSystem& eff, double base_time,
                     double tau0, std::span<const int> counts,
                     const DauweOptions& opts, StageTerms* stages) noexcept {
  const int K = static_cast<int>(eff.level.size());
  assert(K >= 1 && K <= kMaxLevels);
  assert(static_cast<int>(counts.size()) == K - 1);

  double pattern = 1.0;  // prod (N_k + 1) over interior levels
  for (const int n : counts) pattern *= static_cast<double>(n + 1);
  const double top_periods = base_time / (tau0 * pattern);  // Eqn. 3
  if (!(top_periods >= 1.0)) return kInf;  // paper's solution-space bound

  std::array<double, kMaxLevels> tau_hist{};     // tau_k entering stage k
  std::array<double, kMaxLevels> gamma_e_hist{}; // gamma_k * E(tau_k)
  double tau = tau0;
  double lambda_c = 0.0;

  for (int k = 0; k < K; ++k) {
    const EffectiveLevel& lvl = eff.level[static_cast<std::size_t>(k)];
    lambda_c += lvl.lambda;
    const bool top = (k == K - 1);
    // The top level runs N_L periods but needs one fewer checkpoint: the
    // run ends after the last period instead of checkpointing it (the
    // simulator skips that trailing checkpoint too; see DESIGN.md on the
    // paper's Eqn. 7 convention).
    const double m =
        top ? top_periods : static_cast<double>(counts[static_cast<std::size_t>(k)] + 1);
    const double c =
        top ? top_periods - 1.0
            : static_cast<double>(counts[static_cast<std::size_t>(k)]);

    // Severity share used by Eqns. 10 and 11: the printed S_k (share of
    // all failures) or, under the ablation flag, the share of failures a
    // level-k event can actually see.
    const auto share = [&](int j) noexcept {
      const EffectiveLevel& lj = eff.level[static_cast<std::size_t>(j)];
      return opts.renormalize_severity_shares ? lj.lambda / lambda_c
                                              : lj.severity_share;
    };

    // Eqn. 5 / 6: severity-k failures during computation intervals.
    const double gamma = math::expected_retries(tau, lvl.lambda);
    const double e_tau = math::truncated_mean(tau, lvl.lambda);
    tau_hist[static_cast<std::size_t>(k)] = tau;
    gamma_e_hist[static_cast<std::size_t>(k)] = gamma * e_tau;
    const double t_w_tau = gamma * e_tau * m;

    // Eqn. 7: successful checkpoints.
    const double t_ck_ok = c * lvl.checkpoint_cost;

    // Eqns. 8-10: failed checkpoints and the work they strand.
    const double alpha =
        opts.checkpoint_failures
            ? math::expected_retries(lvl.checkpoint_cost, lambda_c, c)
            : 0.0;
    const double t_ck_fail =
        alpha * math::truncated_mean(lvl.checkpoint_cost, lambda_c);
    double lost_intervals = 0.0;
    for (int j = 0; j <= k; ++j) {
      lost_intervals += (tau_hist[static_cast<std::size_t>(j)] +
                         gamma_e_hist[static_cast<std::size_t>(j)]) *
                        share(j);
    }
    const double t_w_ck = alpha * lost_intervals;

    // Eqns. 11-14: restarts and failed restarts.
    const double s_k = share(k);
    const double beta = s_k * alpha + gamma * (s_k * alpha + m);
    const double t_r_ok = beta * lvl.restart_cost;
    const double zeta =
        opts.restart_failures
            ? math::expected_retries(lvl.restart_cost, lambda_c, beta)
            : 0.0;
    const double t_r_fail =
        zeta * math::truncated_mean(lvl.restart_cost, lambda_c);

    if (stages != nullptr) {
      stages[k] = StageTerms{t_ck_ok, t_ck_fail,  t_r_ok, t_r_fail,
                             t_w_tau, t_w_ck, m};
    }

    // Eqn. 4.
    tau = m * tau + t_ck_ok + t_ck_fail + t_r_ok + t_r_fail + t_w_tau + t_w_ck;
    if (!std::isfinite(tau)) return kInf;
  }
  return tau;
}

}  // namespace

double DauweModel::expected_time(const systems::SystemConfig& system,
                                 const CheckpointPlan& plan) const {
  const EffectiveSystem eff = make_effective(system, plan);
  const double before_scratch = run_recursion(
      eff, system.base_time, plan.tau0, plan.counts, options_, nullptr);
  if (!std::isfinite(before_scratch)) return kInf;
  if (eff.scratch_lambda <= 0.0) return before_scratch;
  const double reruns =
      math::expected_retries(before_scratch, eff.scratch_lambda);
  return before_scratch +
         reruns * math::truncated_mean(before_scratch, eff.scratch_lambda);
}

Prediction DauweModel::predict(const systems::SystemConfig& system,
                               const CheckpointPlan& plan) const {
  plan.validate(system);
  const EffectiveSystem eff = make_effective(system, plan);
  const int K = plan.used_levels();
  std::array<StageTerms, kMaxLevels> stages{};
  const double before_scratch =
      run_recursion(eff, system.base_time, plan.tau0, plan.counts, options_,
                    stages.data());

  Prediction p;
  if (!std::isfinite(before_scratch)) {
    p.expected_time = kInf;
    p.efficiency = 0.0;
    return p;
  }

  // Stage-k terms occur once per tau_{k+1} period; multiply by how many
  // such periods the run contains to total them.
  double occurrences = 1.0;  // periods of tau_{K} (the whole run): one
  ModelBreakdown& b = p.breakdown;
  b.compute = system.base_time;
  for (int k = K - 1; k >= 0; --k) {
    const StageTerms& t = stages[static_cast<std::size_t>(k)];
    b.checkpoint_ok += t.checkpoint_ok * occurrences;
    b.checkpoint_failed += t.checkpoint_failed * occurrences;
    b.restart_ok += t.restart_ok * occurrences;
    b.restart_failed += t.restart_failed * occurrences;
    b.rework_compute += t.rework_compute * occurrences;
    b.rework_checkpoint += t.rework_checkpoint * occurrences;
    occurrences *= t.multiplicity;
  }

  double total = before_scratch;
  if (eff.scratch_lambda > 0.0) {
    const double reruns =
        math::expected_retries(before_scratch, eff.scratch_lambda);
    b.scratch_rework =
        reruns * math::truncated_mean(before_scratch, eff.scratch_lambda);
    total += b.scratch_rework;
  }
  p.expected_time = total;
  p.efficiency = system.base_time / total;
  return p;
}

}  // namespace mlck::core

#include "core/serialize.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "systems/test_systems.h"

namespace mlck::core {

using util::Json;

namespace {

Json::Array to_number_array(const std::vector<double>& values) {
  Json::Array out;
  out.reserve(values.size());
  for (const double v : values) out.emplace_back(v);
  return out;
}

Json::Array to_number_array(const std::vector<int>& values) {
  Json::Array out;
  out.reserve(values.size());
  for (const int v : values) out.emplace_back(v);
  return out;
}

std::vector<double> doubles_from(const Json& doc, const std::string& key) {
  std::vector<double> out;
  for (const auto& item : doc.at(key).as_array()) {
    out.push_back(item.as_number());
  }
  return out;
}

std::vector<int> ints_from(const Json& doc, const std::string& key) {
  std::vector<int> out;
  for (const auto& item : doc.at(key).as_array()) {
    out.push_back(static_cast<int>(item.as_number()));
  }
  return out;
}

}  // namespace

Json to_json(const systems::SystemConfig& system) {
  Json::Object doc;
  doc["name"] = Json(system.name);
  doc["mtbf"] = Json(system.mtbf);
  doc["severity_probability"] =
      Json(to_number_array(system.severity_probability));
  doc["checkpoint_cost"] = Json(to_number_array(system.checkpoint_cost));
  doc["restart_cost"] = Json(to_number_array(system.restart_cost));
  doc["base_time"] = Json(system.base_time);
  return Json(std::move(doc));
}

systems::SystemConfig system_from_json(const Json& doc) {
  systems::SystemConfig system;
  if (const Json* name = doc.find("name")) system.name = name->as_string();
  else system.name = "unnamed";
  system.mtbf = doc.at("mtbf").as_number();
  system.severity_probability = doubles_from(doc, "severity_probability");
  system.checkpoint_cost = doubles_from(doc, "checkpoint_cost");
  system.restart_cost = doc.find("restart_cost") != nullptr
                            ? doubles_from(doc, "restart_cost")
                            : system.checkpoint_cost;
  system.base_time = doc.at("base_time").as_number();
  system.validate();
  return system;
}

Json to_json(const CheckpointPlan& plan) {
  Json::Object doc;
  doc["tau0"] = Json(plan.tau0);
  doc["levels"] = Json(to_number_array(plan.levels));
  doc["counts"] = Json(to_number_array(plan.counts));
  return Json(std::move(doc));
}

CheckpointPlan plan_from_json(const Json& doc) {
  CheckpointPlan plan;
  plan.tau0 = doc.at("tau0").as_number();
  plan.levels = ints_from(doc, "levels");
  plan.counts = doc.find("counts") != nullptr ? ints_from(doc, "counts")
                                              : std::vector<int>{};
  return plan;
}

Json to_json(const IntervalSchedule& schedule) {
  Json::Object doc;
  doc["levels"] = Json(to_number_array(schedule.levels));
  doc["periods"] = Json(to_number_array(schedule.periods));
  return Json(std::move(doc));
}

IntervalSchedule interval_schedule_from_json(const Json& doc) {
  IntervalSchedule schedule;
  schedule.levels = ints_from(doc, "levels");
  schedule.periods = doubles_from(doc, "periods");
  return schedule;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out << contents;
  if (!out) throw std::runtime_error("write failed: " + path);
}

systems::SystemConfig load_system(const std::string& name_or_path) {
  for (auto& sys : systems::table1_systems()) {
    if (sys.name == name_or_path) return sys;
  }
  return system_from_json(Json::parse(read_file(name_or_path)));
}

}  // namespace mlck::core

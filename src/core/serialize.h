#pragma once

#include <string>

#include "core/interval_schedule.h"
#include "core/plan.h"
#include "systems/system_config.h"
#include "util/json.h"

namespace mlck::core {

/// JSON round-tripping for the configuration types, used by the `mlck`
/// command-line tool and for archiving experiment inputs next to their
/// outputs.
///
/// System document shape (times in minutes, as everywhere):
/// {
///   "name": "demo",
///   "mtbf": 120.0,
///   "severity_probability": [0.6, 0.3, 0.1],
///   "checkpoint_cost": [0.05, 0.6, 6.0],
///   "restart_cost": [0.05, 0.6, 6.0],     // optional: = checkpoint_cost
///   "base_time": 480.0
/// }
///
/// Plan document shape:
/// { "tau0": 3.5, "levels": [0, 1, 2], "counts": [2, 1] }
///
/// Interval-schedule document shape:
/// { "levels": [0, 1], "periods": [4.4, 15.5] }
util::Json to_json(const systems::SystemConfig& system);
systems::SystemConfig system_from_json(const util::Json& doc);

util::Json to_json(const CheckpointPlan& plan);
CheckpointPlan plan_from_json(const util::Json& doc);

util::Json to_json(const IntervalSchedule& schedule);
IntervalSchedule interval_schedule_from_json(const util::Json& doc);

/// Reads a whole file; throws std::runtime_error naming the path on I/O
/// failure.
std::string read_file(const std::string& path);

/// Writes a whole file (overwrite); throws std::runtime_error on failure.
void write_file(const std::string& path, const std::string& contents);

/// Resolves a "--system=" argument: a Table I name ("M", "B", "D1"..)
/// or a path to a JSON system document.
systems::SystemConfig load_system(const std::string& name_or_path);

}  // namespace mlck::core

#include "core/interval_schedule.h"

#include "core/plan.h"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace mlck::core {

std::optional<CheckpointPoint> IntervalSchedule::next_checkpoint(
    double work, double base_time) const {
  double best = std::numeric_limits<double>::infinity();
  int best_index = -1;
  for (std::size_t k = 0; k < periods.size(); ++k) {
    const double p = periods[k];
    // First multiple of p strictly greater than `work` (tolerating being
    // exactly on a grid point).
    const double steps = std::floor((work + kWorkEpsilon) / p) + 1.0;
    const double point = steps * p;
    if (point < best - kWorkEpsilon) {
      best = point;
      best_index = static_cast<int>(k);
    } else if (point <= best + kWorkEpsilon) {
      // Collision: the higher level subsumes the lower ones.
      best_index = std::max(best_index, static_cast<int>(k));
    }
  }
  if (best_index < 0 || best >= base_time - kWorkEpsilon) return std::nullopt;
  return CheckpointPoint{best, best_index};
}

void IntervalSchedule::validate(const systems::SystemConfig& system) const {
  if (levels.empty()) {
    throw std::invalid_argument("interval schedule: no levels in use");
  }
  if (periods.size() != levels.size()) {
    throw std::invalid_argument(
        "interval schedule: periods/levels size mismatch");
  }
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (levels[i] < 0 || levels[i] >= system.levels()) {
      throw std::invalid_argument("interval schedule: level out of range");
    }
    if (i > 0 && levels[i] <= levels[i - 1]) {
      throw std::invalid_argument(
          "interval schedule: levels must be strictly ascending");
    }
    if (!(periods[i] > 0.0)) {
      throw std::invalid_argument("interval schedule: period must be > 0");
    }
  }
}

std::string IntervalSchedule::to_string() const {
  std::ostringstream os;
  os << "intervals{";
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (i) os << ", ";
    os << "L" << levels[i] + 1 << ":" << periods[i];
  }
  os << "}";
  return os.str();
}

IntervalSchedule IntervalSchedule::from_plan(const CheckpointPlan& plan) {
  IntervalSchedule schedule;
  schedule.levels = plan.levels;
  schedule.periods.reserve(plan.levels.size());
  for (int k = 0; k < plan.used_levels(); ++k) {
    schedule.periods.push_back(
        plan.tau0 * static_cast<double>(plan.interval_period(k)));
  }
  return schedule;
}

}  // namespace mlck::core

#pragma once

#include <cstdint>

#include "sim/simulator.h"
#include "stats/quantiles.h"
#include "stats/summary.h"
#include "util/thread_pool.h"

namespace mlck::sim {

/// Aggregate of a Monte-Carlo batch of simulated trials for one
/// (system, plan) pair — the quantity behind every bar of the paper's
/// figures.
struct TrialStats {
  stats::Summary efficiency;      ///< per-trial efficiency distribution
  stats::Quantiles efficiency_quantiles;  ///< tails of that distribution
  stats::Summary total_time;      ///< per-trial wall-clock minutes
  SimBreakdown time_shares;       ///< aggregate breakdown normalized so
                                  ///< total() == 1 (time-weighted across
                                  ///< trials; Figure 3's percentages)
  double mean_failures = 0.0;
  std::size_t trials = 0;
  std::size_t capped_trials = 0;
};

/// Runs @p trials independent simulations. Trial k draws its failures
/// from a RandomFailureSource seeded with derive_stream_seed(seed, k), so
/// results are reproducible and independent of both thread count and
/// execution order. @p pool, when provided, runs trials concurrently.
/// options.capture, when set, records the event streams of the first
/// capture->max_trials trials by index (deterministic under any pool
/// scheduling); options.trace is ignored for the batch in that case, as a
/// single shared event vector cannot be written concurrently.
TrialStats run_trials(const systems::SystemConfig& system,
                      const core::CheckpointPlan& plan, std::size_t trials,
                      std::uint64_t seed, const SimOptions& options = {},
                      util::ThreadPool* pool = nullptr);

/// Interval-based schedules through the same Monte-Carlo machinery.
TrialStats run_trials(const systems::SystemConfig& system,
                      const core::IntervalSchedule& schedule,
                      std::size_t trials, std::uint64_t seed,
                      const SimOptions& options = {},
                      util::ThreadPool* pool = nullptr);

/// Adaptive horizon-aware schedules through the same machinery.
TrialStats run_trials(const systems::SystemConfig& system,
                      const core::AdaptiveSchedule& schedule,
                      std::size_t trials, std::uint64_t seed,
                      const SimOptions& options = {},
                      util::ThreadPool* pool = nullptr);

/// Monte-Carlo batch with failures drawn from an arbitrary inter-arrival
/// law (renewal process) instead of the exponential default; used by the
/// failure-distribution ablation.
TrialStats run_trials_with_distribution(
    const systems::SystemConfig& system, const core::CheckpointPlan& plan,
    const math::FailureDistribution& interarrival, std::size_t trials,
    std::uint64_t seed, const SimOptions& options = {},
    util::ThreadPool* pool = nullptr);

}  // namespace mlck::sim

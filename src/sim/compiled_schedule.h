#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "core/adaptive.h"
#include "core/interval_schedule.h"
#include "core/plan.h"
#include "systems/system_config.h"

namespace mlck::sim {

/// A checkpoint schedule precompiled for the simulator's segment loop.
///
/// The simulator only ever asks "what is the next trigger after work
/// position w?" from w = 0 or from the work position of a previously
/// returned trigger (every committed checkpoint sits at a trigger, and
/// every rollback restores one of those positions or scratch). That makes
/// the full trigger sequence of any *deterministic* schedule enumerable up
/// front by replaying its query function from 0: next(0) = T0,
/// next(T0) = T1, ... until it returns nullopt. Pattern plans and interval
/// schedules compile this way into a flat array with O(1) amortized
/// next-trigger lookup (a cursor hint plus a binary-search fallback for
/// rollbacks), replacing the per-segment std::function dispatch and
/// per-query grid arithmetic of the previous engine.
///
/// The compiled triggers are bit-identical to the dynamic responses by
/// construction — the replay *is* the dynamic query sequence — so
/// simulated trajectories are unchanged. Compilation falls back to
/// callback mode (keeping the schedule's query as a slow-path
/// std::function) when the trigger sequence is unbounded in practice
/// (more than kMaxTriggers points) or fails the strict-advance check that
/// the cursor's lookup relies on. Adaptive schedules always use callback
/// mode: their horizon rule is the designated slow path and keeps the
/// fallback exercised.
///
/// A CompiledSchedule is immutable after construction and safe to share
/// across threads; each runner carries its own Cursor.
class CompiledSchedule {
 public:
  using Fallback =
      std::function<std::optional<core::CheckpointPoint>(double work)>;

  /// Compilation cap: a schedule emitting more triggers than this for one
  /// run stays in callback mode (bounded memory; such schedules are
  /// pathological — sub-second checkpoint periods on week-long runs).
  static constexpr std::size_t kMaxTriggers = std::size_t{1} << 18;

  /// Compiles an SCR pattern plan (validates it against @p system first).
  static CompiledSchedule from_plan(const systems::SystemConfig& system,
                                    const core::CheckpointPlan& plan);

  /// Compiles an interval schedule (validates it against @p system first).
  static CompiledSchedule from_schedule(const systems::SystemConfig& system,
                                        const core::IntervalSchedule& schedule);

  /// Wraps an adaptive schedule in callback mode (validates the base plan).
  static CompiledSchedule from_adaptive(const systems::SystemConfig& system,
                                        const core::AdaptiveSchedule& schedule);

  /// Ascending, unique system level indices in use.
  const std::vector<int>& levels() const noexcept { return levels_; }

  /// True when the trigger array is in use (false = callback mode).
  bool compiled() const noexcept { return use_triggers_; }

  /// Number of precompiled triggers (0 in callback mode).
  std::size_t trigger_count() const noexcept { return triggers_.size(); }

  /// The precompiled trigger array (empty in callback mode). Exposed for
  /// the batch fast-forward precompute (sim/fast_forward.h), which walks
  /// the same triggers the cursor serves.
  const std::vector<core::CheckpointPoint>& triggers() const noexcept {
    return triggers_;
  }

  /// Per-runner lookup state. Copyable and cheap; create one per trial via
  /// cursor(). Not thread-safe (use one per runner), but any number of
  /// cursors may read the same CompiledSchedule concurrently.
  class Cursor {
   public:
    explicit Cursor(const CompiledSchedule* schedule) noexcept
        : schedule_(schedule) {}

    /// Next trigger strictly after @p work (kWorkEpsilon tolerance), or
    /// nullopt when the application would finish first. O(1) on the
    /// forward path (committed checkpoint -> next trigger) and, for
    /// uniform grids (every plan), O(1) after a rollback too — the index
    /// is recomputed arithmetically, the same floor the dynamic engine
    /// did per query. Non-uniform grids fall back to O(log n).
    std::optional<core::CheckpointPoint> next(double work) {
      if (!schedule_->use_triggers_) return schedule_->fallback_(work);
      const auto& trig = schedule_->triggers_;
      const double limit = work + core::IntervalSchedule::kWorkEpsilon;
      std::size_t i = hint_;
      if (!index_valid(i, limit)) {
        if (const double tau0 = schedule_->uniform_tau0_; tau0 > 0.0) {
          // Triggers sit at (i + 1) * tau0; rollbacks restore one of those
          // works (or scratch), so the quotient lands on the index
          // directly. Validated, with the search as the safety net for
          // any floating-point edge.
          i = static_cast<std::size_t>(limit / tau0);
          if (!index_valid(i, limit)) i = schedule_->lower_index(limit);
        } else {
          i = schedule_->lower_index(limit);
        }
      }
      if (i == trig.size()) {
        hint_ = i;
        return std::nullopt;
      }
      hint_ = i + 1;
      return trig[i];
    }

   private:
    /// True when @p i is exactly the first index with work > @p limit.
    bool index_valid(std::size_t i, double limit) const noexcept {
      const auto& trig = schedule_->triggers_;
      return i <= trig.size() && (i == 0 || trig[i - 1].work <= limit) &&
             (i == trig.size() || trig[i].work > limit);
    }

    const CompiledSchedule* schedule_;
    std::size_t hint_ = 0;
  };

  Cursor cursor() const noexcept { return Cursor(this); }

 private:
  CompiledSchedule() = default;

  /// Replays @p next from work 0 into the trigger array; on overflow or a
  /// non-advancing sequence leaves the schedule in callback mode.
  void compile(const Fallback& next);

  /// Sets uniform_tau0_ when every trigger sits bitwise at
  /// (i + 1) * triggers_[0].work.
  void detect_uniform_grid();

  /// First trigger index with work > @p limit (binary search).
  std::size_t lower_index(double limit) const noexcept;

  std::vector<core::CheckpointPoint> triggers_;
  std::vector<int> levels_;
  Fallback fallback_;
  bool use_triggers_ = false;
  /// Grid period when trigger i sits exactly at (i + 1) * uniform_tau0_
  /// (bitwise, checked at compile time); 0 otherwise. Enables the
  /// cursor's O(1) arithmetic rollback recovery.
  double uniform_tau0_ = 0.0;
};

}  // namespace mlck::sim

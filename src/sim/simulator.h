#pragma once

#include <cstddef>
#include <vector>

#include "core/adaptive.h"
#include "core/interval_schedule.h"
#include "core/plan.h"
#include "obs/metrics.h"
#include "sim/accounting.h"
#include "sim/compiled_schedule.h"
#include "sim/failure_source.h"
#include "systems/system_config.h"

namespace mlck::sim {

/// Optional Monte-Carlo observability, recorded serially by the trial
/// runner's aggregation loop (never inside the per-trial state machine,
/// so simulation results are bit-identical with or without it). Null
/// members are skipped.
struct SimMetrics {
  obs::Counter* trials = nullptr;
  obs::Counter* failures = nullptr;
  obs::Counter* checkpoints_completed = nullptr;
  obs::Counter* restarts_completed = nullptr;
  obs::Counter* restarts_failed = nullptr;
  obs::Counter* scratch_restarts = nullptr;
  obs::Counter* capped_trials = nullptr;
  /// Simulated wall-clock minutes per trial (deterministic, unlike host
  /// wall time — see pool.task_latency_ns for the latter).
  obs::Histogram* trial_time_minutes = nullptr;
};

/// How the simulated system reacts to a failure that strikes *during a
/// restart* (the semantics the paper identifies as the key modeling
/// difference between techniques, Sec. IV-G).
enum class RestartPolicy {
  /// A second failure of severity <= the restarting level retries the same
  /// checkpoint (its storage survives). This is the behaviour the paper
  /// argues is realistic, and is what its simulator assumes "for all
  /// techniques". Default.
  kRetrySameLevel,

  /// Moody et al.'s pessimistic assumption: a second failure of the *same*
  /// severity escalates recovery to the next higher checkpoint level.
  /// Provided for the ablation study of that assumption's impact.
  kMoodyEscalate,
};

/// One recorded simulator event, in wall-clock order. Tracing is opt-in
/// (SimOptions::trace / SimOptions::capture) and observe-only: it never
/// affects simulation results. The stream is a complete account of the
/// trial — obs::audit_trial_trace checks that it tiles [0, total_time]
/// and reconstructs the trial's SimBreakdown from it bit-for-bit.
struct TraceEvent {
  enum class Kind {
    kCompute,         ///< a computation segment (possibly interrupted)
    kCheckpoint,      ///< a checkpoint attempt
    kRestart,         ///< a restart attempt
    kScratchRestart,  ///< instantaneous restart-from-scratch
  };
  Kind kind = Kind::kCompute;
  double start = 0.0;  ///< wall-clock minutes
  double end = 0.0;
  int system_level = -1;  ///< checkpoint/restart level; -1 for compute
  bool completed = true;  ///< false when a failure cut the phase short
  int failure_severity = -1;  ///< severity of the interrupting failure
  /// True when the phase was cut short by the wall-clock cap rather than
  /// a failure (completed == false, failure_severity == -1, and the trial
  /// is reported capped). Explicit so auditors and exporters classify
  /// truncation without severity heuristics.
  bool truncated_by_cap = false;
  /// Committed useful work (minutes) after this event *and* its failure
  /// handling: a failed phase records the post-rollback position, a
  /// completed restart the restored checkpoint's position. Makes the
  /// stream self-contained for exact replay (obs::audit_trial_trace).
  double work = 0.0;
};

/// One captured trial from a Monte-Carlo batch: its index, result, and
/// full event stream.
struct TrialTrace {
  std::size_t trial = 0;
  TrialResult result;
  std::vector<TraceEvent> events;
};

/// Bounded, deterministic multi-trial trace capture for sim::run_trials:
/// the first max_trials trials *by trial index* record their event
/// streams into trials[index]. Each trial writes only its own
/// preallocated slot, so the capture is stable regardless of thread count
/// or pool scheduling, and results are bit-identical with or without it.
struct TrialTraceCapture {
  std::size_t max_trials = 8;
  /// Resized by run_trials to min(max_trials, trials) and filled in
  /// trial-index order.
  std::vector<TrialTrace> trials;
};

/// Simulation controls.
struct SimOptions {
  RestartPolicy restart_policy = RestartPolicy::kRetrySameLevel;

  /// Take a checkpoint after the final interval. Off by default (a real
  /// run has nothing left to protect); the analytic models' top-level
  /// count convention matches this (see DESIGN.md).
  bool take_final_checkpoint = false;

  /// Wall-clock cap as a multiple of the application base time; a trial
  /// that has not completed by then is reported with capped = true (its
  /// efficiency metric remains meaningful: useful work over elapsed time).
  /// The cap is a hard bound: a phase in flight when the cap strikes is
  /// truncated at exactly max_time_factor * base_time, so total_time
  /// never exceeds the cap. A truncated phase appears in the trace as
  /// completed = false with failure_severity = -1 (no failure occurred);
  /// its elapsed time is attributed to the breakdown as useful work for
  /// computation (the work was performed, merely never checkpointed) and
  /// to the corresponding failed-attempt bucket for checkpoints/restarts.
  double max_time_factor = 2000.0;

  /// When non-null, every phase is appended here as a TraceEvent.
  /// Non-owning; must outlive the simulate() call.
  std::vector<TraceEvent>* trace = nullptr;

  /// Multi-trial capture consumed by sim::run_trials (simulate() ignores
  /// it): when non-null, run_trials routes each captured trial's trace
  /// into its own slot, overriding `trace` for those trials. Non-owning;
  /// ignored by JSON (de)serialization, never read by the simulation.
  TrialTraceCapture* capture = nullptr;

  /// Observe-only Monte-Carlo counters (docs/OBSERVABILITY.md). Non-owning;
  /// ignored by JSON (de)serialization, never read by the simulation.
  SimMetrics* metrics = nullptr;
};

/// Event-driven simulation of one application run under multilevel
/// checkpointing with randomly (or scripted-ly) occurring failures — the
/// substrate the paper validates every model against (Sec. IV-B).
///
/// Protocol semantics (paper Secs. II-B, III-B, IV-G):
///  * computation proceeds between work points at which the schedule
///    triggers checkpoints; a level-h checkpoint refreshes every used
///    level <= h (SCR flushes downward);
///  * a severity-s failure destroys checkpoint data below level s and is
///    recovered from the lowest used level >= s holding a checkpoint; if
///    none exists the application restarts from scratch (all progress
///    lost, no restart cost);
///  * failures interrupt computation, checkpoints, and restarts alike;
///    interrupted checkpoints leave the previous checkpoint of that level
///    intact (double buffering);
///  * work rolled back is re-executed, and every second of wall-clock time
///    is attributed to exactly one SimBreakdown bucket.
///
/// This overload runs an SCR-style pattern plan (checkpoints after every
/// tau0 of work, levels following the pattern counts).
TrialResult simulate(const systems::SystemConfig& system,
                     const core::CheckpointPlan& plan, FailureSource& failures,
                     const SimOptions& options = {});

/// Same engine driven by an interval-based schedule (independent per-level
/// checkpoint periods; see core::IntervalSchedule for the collision rule).
TrialResult simulate(const systems::SystemConfig& system,
                     const core::IntervalSchedule& schedule,
                     FailureSource& failures, const SimOptions& options = {});

/// Same engine driven by a horizon-aware adaptive schedule (Sec. IV-F
/// generalized; see core::AdaptiveSchedule).
TrialResult simulate(const systems::SystemConfig& system,
                     const core::AdaptiveSchedule& schedule,
                     FailureSource& failures, const SimOptions& options = {});

class NoFailureTrajectory;

/// Batch fast paths: run one trial against a schedule compiled once (see
/// CompiledSchedule) with the failure source devirtualized — the segment
/// loop is instantiated directly against the concrete source type, so the
/// per-event draw inlines. Results are bit-identical to the
/// plan/interval/adaptive overloads above, which are now thin wrappers
/// that compile the schedule per call; callers running many trials
/// against one schedule (sim::run_trials, bench_sim) compile once and use
/// these.
///
/// @p fast, when non-null and applicable (see sim/fast_forward.h), lets
/// the trial jump over the uninterrupted prefix before its first failure
/// using the batch's precomputed no-failure trajectory — same bits,
/// O(failures) instead of O(segments) per trial. Null runs the plain
/// loop.
TrialResult simulate(const systems::SystemConfig& system,
                     const CompiledSchedule& schedule,
                     RandomFailureSource& failures,
                     const SimOptions& options = {},
                     const NoFailureTrajectory* fast = nullptr);

/// Devirtualized renewal-process fast path (see above).
TrialResult simulate(const systems::SystemConfig& system,
                     const CompiledSchedule& schedule,
                     RenewalFailureSource& failures,
                     const SimOptions& options = {},
                     const NoFailureTrajectory* fast = nullptr);

/// Generic compiled-schedule path for custom FailureSource
/// implementations (one virtual call per event, schedule still compiled).
TrialResult simulate(const systems::SystemConfig& system,
                     const CompiledSchedule& schedule, FailureSource& failures,
                     const SimOptions& options = {},
                     const NoFailureTrajectory* fast = nullptr);

}  // namespace mlck::sim

#include "sim/accounting.h"

namespace mlck::sim {

SimBreakdown& SimBreakdown::operator+=(const SimBreakdown& other) noexcept {
  useful += other.useful;
  checkpoint_ok += other.checkpoint_ok;
  checkpoint_failed += other.checkpoint_failed;
  restart_ok += other.restart_ok;
  restart_failed += other.restart_failed;
  rework_compute += other.rework_compute;
  rework_checkpoint += other.rework_checkpoint;
  rework_restart += other.rework_restart;
  return *this;
}

}  // namespace mlck::sim

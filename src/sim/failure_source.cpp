#include "sim/failure_source.h"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace mlck::sim {

std::vector<double> severity_cdf(const systems::SystemConfig& system) {
  const auto& p = system.severity_probability;
  if (p.empty()) {
    throw std::invalid_argument(
        "severity_probability: empty (need at least one severity class)");
  }
  std::vector<double> cdf;
  cdf.reserve(p.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (!(p[i] >= 0.0)) {
      std::ostringstream msg;
      msg << "severity_probability[" << i << "]: " << p[i]
          << " (must be non-negative and finite)";
      throw std::invalid_argument(msg.str());
    }
    acc += p[i];
    cdf.push_back(acc);
  }
  if (std::abs(acc - 1.0) > 1e-3) {
    std::ostringstream msg;
    msg << "severity_probability: sums to " << acc
        << " (must be normalized to 1 within 1e-3)";
    throw std::invalid_argument(msg.str());
  }
  // Pin the top bucket so the table is exactly a CDF even after
  // floating-point shortfall in the running sum.
  cdf.back() = 1.0;
  return cdf;
}

RandomFailureSource::RandomFailureSource(const systems::SystemConfig& system,
                                         util::Rng rng)
    : lambda_total_(system.lambda_total()),
      severity_cdf_(severity_cdf(system)),
      rng_(rng) {}

RenewalFailureSource::RenewalFailureSource(
    const systems::SystemConfig& system,
    const math::FailureDistribution& interarrival, util::Rng rng)
    : interarrival_(interarrival),
      severity_cdf_(severity_cdf(system)),
      rng_(rng) {}

ScriptedFailureSource::ScriptedFailureSource(
    std::vector<AbsoluteFailure> script)
    : script_(std::move(script)) {
  for (std::size_t i = 0; i < script_.size(); ++i) {
    const double prev = (i == 0) ? 0.0 : script_[i - 1].time;
    if (!(script_[i].time > prev) || !std::isfinite(script_[i].time)) {
      std::ostringstream msg;
      msg << "ScriptedFailureSource: script[" << i
          << "].time = " << script_[i].time
          << " must be finite and strictly greater than "
          << (i == 0 ? "0" : "the previous failure time") << " (" << prev
          << ")";
      throw std::invalid_argument(msg.str());
    }
  }
}

FailureEvent ScriptedFailureSource::next() {
  FailureEvent ev;
  if (index_ >= script_.size()) {
    ev.interarrival = std::numeric_limits<double>::infinity();
    return ev;
  }
  ev.interarrival = script_[index_].time - previous_time_;
  ev.severity = script_[index_].severity;
  previous_time_ = script_[index_].time;
  ++index_;
  return ev;
}

}  // namespace mlck::sim

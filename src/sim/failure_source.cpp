#include "sim/failure_source.h"

#include <cassert>
#include <limits>
#include <utility>

namespace mlck::sim {

RandomFailureSource::RandomFailureSource(const systems::SystemConfig& system,
                                         util::Rng rng)
    : lambda_total_(system.lambda_total()), rng_(rng) {
  severity_cdf_.reserve(system.severity_probability.size());
  double acc = 0.0;
  for (const double s : system.severity_probability) {
    acc += s;
    severity_cdf_.push_back(acc);
  }
}

FailureEvent RandomFailureSource::next() {
  FailureEvent ev;
  ev.interarrival = rng_.exponential(lambda_total_);
  ev.severity = static_cast<int>(rng_.discrete_from_cdf(severity_cdf_));
  return ev;
}

RenewalFailureSource::RenewalFailureSource(
    const systems::SystemConfig& system,
    const math::FailureDistribution& interarrival, util::Rng rng)
    : interarrival_(interarrival), rng_(rng) {
  severity_cdf_.reserve(system.severity_probability.size());
  double acc = 0.0;
  for (const double s : system.severity_probability) {
    acc += s;
    severity_cdf_.push_back(acc);
  }
}

FailureEvent RenewalFailureSource::next() {
  FailureEvent ev;
  ev.interarrival = interarrival_.sample(rng_);
  ev.severity = static_cast<int>(rng_.discrete_from_cdf(severity_cdf_));
  return ev;
}

ScriptedFailureSource::ScriptedFailureSource(
    std::vector<AbsoluteFailure> script)
    : script_(std::move(script)) {
  for (std::size_t i = 1; i < script_.size(); ++i) {
    assert(script_[i].time > script_[i - 1].time);
  }
}

FailureEvent ScriptedFailureSource::next() {
  FailureEvent ev;
  if (index_ >= script_.size()) {
    ev.interarrival = std::numeric_limits<double>::infinity();
    return ev;
  }
  ev.interarrival = script_[index_].time - previous_time_;
  ev.severity = script_[index_].severity;
  previous_time_ = script_[index_].time;
  ++index_;
  return ev;
}

}  // namespace mlck::sim

#pragma once

#include <vector>

#include "math/distribution.h"
#include "systems/system_config.h"
#include "util/rng.h"

namespace mlck::sim {

/// One failure: how long after the previous failure it strikes (wall-clock
/// minutes — failures hit computation, checkpoints, and restarts alike)
/// and its severity class (0-based system level required to recover).
struct FailureEvent {
  double interarrival = 0.0;
  int severity = 0;
};

/// Produces the failure process driving one simulated trial. Pluggable so
/// tests can script exact failure times while experiments draw from the
/// exponential model.
class FailureSource {
 public:
  virtual ~FailureSource() = default;

  /// Next failure, relative to the previous one (the first is relative to
  /// time zero). An interarrival of +infinity means "no more failures".
  virtual FailureEvent next() = 0;
};

/// Exponential failure process matching the paper's assumptions:
/// interarrivals ~ Exp(lambda_total); severities drawn independently from
/// the system's severity distribution.
class RandomFailureSource : public FailureSource {
 public:
  RandomFailureSource(const systems::SystemConfig& system, util::Rng rng);

  FailureEvent next() override;

 private:
  double lambda_total_;
  std::vector<double> severity_cdf_;
  util::Rng rng_;
};

/// Renewal failure process: inter-arrivals drawn i.i.d. from an arbitrary
/// FailureDistribution, severities from the system's severity mix. With an
/// Exponential distribution this coincides (in distribution) with
/// RandomFailureSource; with Weibull shape < 1 it produces the bursty
/// failure clustering reported for production HPC systems. The analytic
/// model approximates this as one tabulated law per severity class
/// (docs/MODELS.md) — close, but not the same process, since thinning a
/// renewal process by severity does not yield independent renewal
/// processes; `mlck selftest --laws=...` bounds the gap with per-law
/// Welch margins. Used by `mlck scenario` and the distribution ablation.
class RenewalFailureSource : public FailureSource {
 public:
  /// @p interarrival must outlive this source (not owned).
  RenewalFailureSource(const systems::SystemConfig& system,
                       const math::FailureDistribution& interarrival,
                       util::Rng rng);

  FailureEvent next() override;

 private:
  const math::FailureDistribution& interarrival_;
  std::vector<double> severity_cdf_;
  util::Rng rng_;
};

/// Fixed failure schedule for deterministic tests: events are given as
/// *absolute* failure times (converted to interarrivals internally); after
/// the script is exhausted no further failures occur.
class ScriptedFailureSource : public FailureSource {
 public:
  struct AbsoluteFailure {
    double time = 0.0;
    int severity = 0;
  };

  /// @pre times strictly increasing.
  explicit ScriptedFailureSource(std::vector<AbsoluteFailure> script);

  FailureEvent next() override;

 private:
  std::vector<AbsoluteFailure> script_;
  std::size_t index_ = 0;
  double previous_time_ = 0.0;
};

}  // namespace mlck::sim

#pragma once

#include <vector>

#include "math/distribution.h"
#include "systems/system_config.h"
#include "util/rng.h"

namespace mlck::sim {

/// One failure: how long after the previous failure it strikes (wall-clock
/// minutes — failures hit computation, checkpoints, and restarts alike)
/// and its severity class (0-based system level required to recover).
struct FailureEvent {
  double interarrival = 0.0;
  int severity = 0;
};

/// Builds the cumulative severity distribution for @p system.
///
/// Validates the severity mix in every build type: entries must be
/// non-negative and sum to 1 within 1e-3 (the same tolerance
/// systems::SystemConfig::validate uses), otherwise a
/// std::invalid_argument naming `severity_probability` is thrown. The
/// final CDF entry is pinned to exactly 1.0 so a floating-point shortfall
/// in the accumulated sum (0.999...) can never leave the top bucket
/// unreachable in code that, unlike util::Rng::discrete_from_cdf, compares
/// against the last entry. Pinning is behaviour-neutral for
/// discrete_from_cdf itself, which never reads the final entry.
std::vector<double> severity_cdf(const systems::SystemConfig& system);

/// Produces the failure process driving one simulated trial. Pluggable so
/// tests can script exact failure times while experiments draw from the
/// exponential model.
class FailureSource {
 public:
  virtual ~FailureSource() = default;

  /// Next failure, relative to the previous one (the first is relative to
  /// time zero). An interarrival of +infinity means "no more failures".
  virtual FailureEvent next() = 0;
};

/// Exponential failure process matching the paper's assumptions:
/// interarrivals ~ Exp(lambda_total); severities drawn independently from
/// the system's severity distribution.
///
/// `final` on purpose: the batch trial runner instantiates the simulator
/// loop directly against this type (no virtual dispatch per event), and
/// reuses one source across a whole chunk of trials via reset() so the
/// severity CDF is built once, not once per trial.
class RandomFailureSource final : public FailureSource {
 public:
  RandomFailureSource(const systems::SystemConfig& system, util::Rng rng);

  FailureEvent next() override { return draw(); }

  /// Hot-path draw, callable without virtual dispatch. Consumes exactly
  /// two uniforms: one for the interarrival, one for the severity.
  FailureEvent draw() noexcept {
    FailureEvent ev;
    ev.interarrival = rng_.exponential(lambda_total_);
    ev.severity = static_cast<int>(rng_.discrete_from_cdf(severity_cdf_));
    return ev;
  }

  /// Rewinds the source onto a fresh per-trial stream, keeping the
  /// severity table. Equivalent to constructing a new source with the
  /// same system and @p rng.
  void reset(util::Rng rng) noexcept { rng_ = rng; }

 private:
  double lambda_total_;
  std::vector<double> severity_cdf_;
  util::Rng rng_;
};

/// Renewal failure process: inter-arrivals drawn i.i.d. from an arbitrary
/// FailureDistribution, severities from the system's severity mix. With an
/// Exponential distribution this coincides (in distribution) with
/// RandomFailureSource; with Weibull shape < 1 it produces the bursty
/// failure clustering reported for production HPC systems. The analytic
/// model approximates this as one tabulated law per severity class
/// (docs/MODELS.md) — close, but not the same process, since thinning a
/// renewal process by severity does not yield independent renewal
/// processes; `mlck selftest --laws=...` bounds the gap with per-law
/// Welch margins. Used by `mlck scenario` and the distribution ablation.
class RenewalFailureSource final : public FailureSource {
 public:
  /// @p interarrival must outlive this source (not owned).
  RenewalFailureSource(const systems::SystemConfig& system,
                       const math::FailureDistribution& interarrival,
                       util::Rng rng);

  FailureEvent next() override { return draw(); }

  /// Hot-path draw, callable without virtual dispatch. Consumes the
  /// distribution's documented uniform budget plus one severity uniform.
  FailureEvent draw() {
    FailureEvent ev;
    ev.interarrival = interarrival_.sample(rng_);
    ev.severity = static_cast<int>(rng_.discrete_from_cdf(severity_cdf_));
    return ev;
  }

  /// Rewinds onto a fresh per-trial stream, keeping the severity table.
  void reset(util::Rng rng) noexcept { rng_ = rng; }

 private:
  const math::FailureDistribution& interarrival_;
  std::vector<double> severity_cdf_;
  util::Rng rng_;
};

/// Fixed failure schedule for deterministic tests: events are given as
/// *absolute* failure times (converted to interarrivals internally); after
/// the script is exhausted no further failures occur.
class ScriptedFailureSource final : public FailureSource {
 public:
  struct AbsoluteFailure {
    double time = 0.0;
    int severity = 0;
  };

  /// Failure times must be strictly increasing; otherwise throws
  /// std::invalid_argument naming the offending script index, in every
  /// build type (a silently-reordered script makes the replayed trial
  /// nonsense, which release builds used to accept).
  explicit ScriptedFailureSource(std::vector<AbsoluteFailure> script);

  FailureEvent next() override;

 private:
  std::vector<AbsoluteFailure> script_;
  std::size_t index_ = 0;
  double previous_time_ = 0.0;
};

}  // namespace mlck::sim

#pragma once

#include <cstddef>
#include <vector>

#include "sim/compiled_schedule.h"
#include "sim/simulator.h"
#include "systems/system_config.h"

namespace mlck::sim {

/// The no-failure trajectory of one (system, compiled schedule, options)
/// triple, precomputed once per Monte-Carlo batch so each trial can jump
/// straight to the segment its first failure lands in.
///
/// Between trial start and the first failure the engine's path is fully
/// deterministic: the same compute/checkpoint phases, the same sequential
/// floating-point accumulations, for every trial. This class replays that
/// op sequence ONCE — the identical additions in the identical order the
/// Runner performs them — and records, after each completed segment
/// (compute phase + its checkpoint), the exact machine state: wall-clock,
/// committed work, cumulative compute time, the checkpoint_ok bucket.
/// Because the recorded doubles are produced by the same instructions the
/// sequential engine executes, restoring them is bitwise equivalent to
/// having simulated every skipped segment, and batch results stay
/// byte-identical to the reference engine.
///
/// A trial then costs O(log segments + work after first failure) instead
/// of O(segments): trials whose first failure falls past the end of the
/// run — the common case on the paper's failure-light systems — return
/// the precomputed full result outright after their single interarrival
/// draw.
///
/// The fast path cannot reproduce per-phase side effects, so the Runner
/// only engages it when options.trace is null and the options the
/// trajectory was built for match (applicable()). Callback-mode schedules
/// (adaptive) and runs whose no-failure trajectory would hit the time cap
/// are never valid; trials then run the plain loop, which is the same
/// bits by definition.
///
/// Immutable after construction; shared read-only across worker threads.
class NoFailureTrajectory {
 public:
  NoFailureTrajectory(const systems::SystemConfig& system,
                      const CompiledSchedule& schedule,
                      const SimOptions& options);

  /// False when no fast path exists for this schedule/options pair
  /// (callback mode, or the cap strikes before the no-failure run ends).
  bool valid() const noexcept { return valid_; }

  /// True when trials running under @p options may take the fast path.
  bool applicable(const SimOptions& options) const noexcept {
    return valid_ && options.trace == nullptr &&
           options.take_final_checkpoint == take_final_checkpoint_ &&
           options.max_time_factor == max_time_factor_;
  }

  /// Wall-clock at the completion of each full segment, ascending; entry
  /// s covers the segment ending with trigger s's checkpoint. The binary
  /// search target for "which segment does the first failure interrupt".
  const std::vector<double>& segment_end() const noexcept {
    return seg_end_;
  }

  /// Wall-clock at the very end of the no-failure run (after the tail
  /// compute and, when configured, the final checkpoint). A first failure
  /// at or past this time interrupts nothing.
  double final_end() const noexcept { return final_end_; }

  /// The complete no-failure trial, byte-for-byte what the plain loop
  /// produces when no phase is ever interrupted.
  const TrialResult& full_result() const noexcept { return full_result_; }

  /// Exact machine state after segment @p s completed.
  double end_now(std::size_t s) const noexcept { return seg_end_[s]; }
  double end_work(std::size_t s) const noexcept { return seg_work_[s]; }
  double end_compute_time(std::size_t s) const noexcept {
    return seg_compute_[s];
  }
  double end_checkpoint_ok(std::size_t s) const noexcept {
    return seg_ckpt_ok_[s];
  }

 private:
  bool valid_ = false;
  bool take_final_checkpoint_ = false;
  double max_time_factor_ = 0.0;
  double final_end_ = 0.0;
  TrialResult full_result_;
  std::vector<double> seg_end_;      ///< now_ after segment s
  std::vector<double> seg_work_;     ///< work_ after segment s
  std::vector<double> seg_compute_;  ///< compute_time_ after segment s
  std::vector<double> seg_ckpt_ok_;  ///< breakdown.checkpoint_ok after s
};

}  // namespace mlck::sim

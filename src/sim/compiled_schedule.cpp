#include "sim/compiled_schedule.h"

#include <algorithm>
#include <cmath>

namespace mlck::sim {

void CompiledSchedule::compile(const Fallback& next) {
  triggers_.clear();
  double work = 0.0;
  for (;;) {
    const auto point = next(work);
    if (!point) {
      use_triggers_ = true;
      return;
    }
    // The cursor's lookup needs every trigger strictly beyond the previous
    // one's epsilon neighbourhood; a schedule violating that (periods at
    // or below kWorkEpsilon) stays on the callback, which reproduces the
    // dynamic engine's behaviour for it exactly.
    if (point->work <= work + core::IntervalSchedule::kWorkEpsilon ||
        triggers_.size() >= kMaxTriggers) {
      triggers_.clear();
      use_triggers_ = false;
      return;
    }
    triggers_.push_back(*point);
    work = point->work;
  }
}

void CompiledSchedule::detect_uniform_grid() {
  uniform_tau0_ = 0.0;
  if (!use_triggers_ || triggers_.empty()) return;
  const double tau0 = triggers_.front().work;
  if (!(tau0 > 0.0)) return;
  for (std::size_t i = 0; i < triggers_.size(); ++i) {
    // Bitwise equality on purpose: the cursor's arithmetic recovery
    // reproduces exactly (i + 1) * tau0, so any grid that is merely
    // *close* to uniform must keep the binary-search path.
    if (triggers_[i].work != static_cast<double>(i + 1) * tau0) return;
  }
  uniform_tau0_ = tau0;
}

std::size_t CompiledSchedule::lower_index(double limit) const noexcept {
  const auto it = std::upper_bound(
      triggers_.begin(), triggers_.end(), limit,
      [](double value, const core::CheckpointPoint& t) {
        return value < t.work;
      });
  return static_cast<std::size_t>(it - triggers_.begin());
}

CompiledSchedule CompiledSchedule::from_plan(
    const systems::SystemConfig& system, const core::CheckpointPlan& plan) {
  plan.validate(system);
  CompiledSchedule out;
  out.levels_ = plan.levels;
  const double base_time = system.base_time;
  // Same arithmetic the dynamic engine used per query: checkpoints sit at
  // integer multiples of tau0, the pattern decides the level, and no
  // checkpoint is taken at or beyond completion.
  out.fallback_ = [plan, base_time](
                      double work) -> std::optional<core::CheckpointPoint> {
    const double j =
        std::floor((work + core::IntervalSchedule::kWorkEpsilon) / plan.tau0) +
        1.0;
    const double point = j * plan.tau0;
    if (point >= base_time - core::IntervalSchedule::kWorkEpsilon) {
      return std::nullopt;
    }
    return core::CheckpointPoint{
        point, plan.checkpoint_after_interval(static_cast<long long>(j))};
  };
  out.compile(out.fallback_);
  out.detect_uniform_grid();
  return out;
}

CompiledSchedule CompiledSchedule::from_schedule(
    const systems::SystemConfig& system,
    const core::IntervalSchedule& schedule) {
  schedule.validate(system);
  CompiledSchedule out;
  out.levels_ = schedule.levels;
  const double base_time = system.base_time;
  out.fallback_ = [schedule, base_time](double work) {
    return schedule.next_checkpoint(work, base_time);
  };
  out.compile(out.fallback_);
  out.detect_uniform_grid();
  return out;
}

CompiledSchedule CompiledSchedule::from_adaptive(
    const systems::SystemConfig& system,
    const core::AdaptiveSchedule& schedule) {
  schedule.base.validate(system);
  CompiledSchedule out;
  out.levels_ = schedule.base.levels;
  // Callback mode by design: the horizon rule is the designated slow path
  // and keeps the fallback branch exercised by every adaptive test.
  out.fallback_ = [schedule](double work) {
    return schedule.next_checkpoint(work);
  };
  return out;
}

}  // namespace mlck::sim

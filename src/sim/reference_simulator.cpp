#include "sim/reference_simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "util/parallel.h"
#include "util/rng.h"

// This file intentionally duplicates the pre-rewrite engine rather than
// sharing code with simulator.cpp/trial_runner.cpp: a baseline that
// drifted with the production engine could not catch a regression in it.
namespace mlck::sim::reference {

namespace {

enum class Cause { kCompute, kCheckpoint, kRestart };

/// What the engine needs from a checkpoint schedule: the used system
/// levels and the next trigger strictly after a given work position.
struct ScheduleView {
  std::vector<int> levels;
  std::function<std::optional<core::CheckpointPoint>(double work)> next;
};

/// Single-trial state machine, generic over the schedule. Time and work
/// are both in minutes; work maps 1:1 onto computation time.
class Runner {
 public:
  Runner(const systems::SystemConfig& system, const ScheduleView& schedule,
         FailureSource& failures, const SimOptions& options)
      : sys_(system),
        schedule_(schedule),
        opts_(options),
        failures_(failures),
        cap_(options.max_time_factor * system.base_time),
        ckpt_(schedule.levels.size()) {}

  TrialResult run() {
    advance_failure_clock();
    const double base = sys_.base_time;

    while (!capped_) {
      if (now_ >= cap_) {
        capped_ = true;
        break;
      }
      // Run computation to the next checkpoint trigger, or to completion.
      const auto trigger = schedule_.next(work_);
      const double target = trigger ? std::min(trigger->work, base) : base;
      const Phase ph = run_phase(target - work_, TraceEvent::Kind::kCompute,
                                 /*level=*/-1);
      compute_time_ += ph.elapsed;
      if (truncated_by_cap(ph)) {
        // The partial segment was real computation, merely never
        // checkpointed; counting it useful keeps the accounting identity
        // and the efficiency metric consistent for capped trials.
        work_ += ph.elapsed;
        annotate_trace_work();
        break;
      }
      if (!ph.completed) {
        handle_failure(ph.severity, Cause::kCompute, ph.elapsed);
        continue;
      }
      work_ = target;
      const bool at_end = work_ >= base - 1e-9;
      if (at_end) work_ = base;
      annotate_trace_work();
      if (at_end) {
        if (!opts_.take_final_checkpoint) break;
        if (do_checkpoint(used_count() - 1)) break;
        continue;  // final checkpoint failed; some work was rolled back
      }
      do_checkpoint(trigger->used_index);
    }

    result_.total_time = now_;
    result_.capped = capped_;
    result_.breakdown.useful = work_;
    // Exact accounting identity: every computed minute either survived or
    // was attributed to a rework bucket when it was rolled back.
    assert(std::abs(compute_time_ -
                    (work_ + result_.breakdown.rework_total())) <
           1e-6 * (1.0 + compute_time_));
    return result_;
  }

 private:
  struct Phase {
    bool completed = false;
    double elapsed = 0.0;
    int severity = -1;
  };

  /// True when run_phase cut the phase short at the time cap (no failure
  /// involved; capped_ is already set).
  static bool truncated_by_cap(const Phase& ph) noexcept {
    return !ph.completed && ph.severity < 0;
  }

  struct CheckpointSlot {
    double work = 0.0;
    bool valid = false;
  };

  int used_count() const noexcept {
    return static_cast<int>(schedule_.levels.size());
  }

  int system_level(int used_index) const noexcept {
    return schedule_.levels[static_cast<std::size_t>(used_index)];
  }

  void advance_failure_clock() {
    const FailureEvent ev = failures_.next();
    next_failure_ += ev.interarrival;
    next_severity_ = ev.severity;
  }

  /// Runs an interruptible phase of the given duration, recording a trace
  /// event when tracing is enabled. The phase is clamped at the time cap.
  Phase run_phase(double duration, TraceEvent::Kind kind, int level) {
    Phase ph;
    const double start = now_;
    const double phase_end = now_ + duration;
    const bool fails = phase_end > next_failure_;
    if (const double end = fails ? next_failure_ : phase_end; end > cap_) {
      capped_ = true;
      ph.completed = false;
      ph.elapsed = cap_ - now_;
      ph.severity = -1;  // truncated by the cap, not by a failure
      now_ = cap_;
    } else if (!fails) {
      now_ = phase_end;
      ph = Phase{true, duration, -1};
    } else {
      ph.completed = false;
      ph.elapsed = next_failure_ - now_;
      ph.severity = next_severity_;
      now_ = next_failure_;
      ++result_.failures;
      advance_failure_clock();
    }
    if (opts_.trace != nullptr) {
      TraceEvent ev{kind, start, now_, level, ph.completed, ph.severity};
      ev.truncated_by_cap = truncated_by_cap(ph);
      // Provisional; sites that change work_ while handling this phase
      // re-annotate via annotate_trace_work before the next event.
      ev.work = work_;
      last_trace_index_ = opts_.trace->size();
      opts_.trace->push_back(ev);
    }
    return ph;
  }

  /// Stamps the most recent trace event with the current committed work,
  /// once the phase's failure handling (rollback, restore) has settled.
  void annotate_trace_work() {
    if (opts_.trace != nullptr) {
      (*opts_.trace)[last_trace_index_].work = work_;
    }
  }

  /// Attempts the checkpoint of used-level @p h; on success refreshes all
  /// used levels <= h. Returns false when a failure interrupted it (the
  /// failure is fully handled before returning).
  bool do_checkpoint(int h) {
    const double cost =
        sys_.checkpoint_cost[static_cast<std::size_t>(system_level(h))];
    const Phase ph =
        run_phase(cost, TraceEvent::Kind::kCheckpoint, system_level(h));
    if (truncated_by_cap(ph)) {
      // Attempt cut short by the cap: its time is a checkpoint attempt
      // that never paid off, same bucket as a failure-interrupted one.
      result_.breakdown.checkpoint_failed += ph.elapsed;
      return false;
    }
    if (ph.completed) {
      result_.breakdown.checkpoint_ok += cost;
      ++result_.checkpoints_completed;
      for (int k = 0; k <= h; ++k) {
        ckpt_[static_cast<std::size_t>(k)] = CheckpointSlot{work_, true};
      }
      return true;
    }
    result_.breakdown.checkpoint_failed += ph.elapsed;
    handle_failure(ph.severity, Cause::kCheckpoint, 0.0);
    return false;
  }

  /// Severity-s failures wipe checkpoint storage below level s.
  void invalidate_below(int severity) {
    for (std::size_t k = 0; k < ckpt_.size(); ++k) {
      if (schedule_.levels[k] < severity) ckpt_[k].valid = false;
    }
  }

  /// Lowest used level >= severity holding a checkpoint.
  std::optional<int> find_restore(int severity) const {
    for (std::size_t k = 0; k < ckpt_.size(); ++k) {
      if (schedule_.levels[k] >= severity && ckpt_[k].valid) {
        return static_cast<int>(k);
      }
    }
    return std::nullopt;
  }

  /// Lowest used level strictly above used-index e holding a checkpoint
  /// (Moody escalation target).
  std::optional<int> find_restore_above(int e) const {
    for (std::size_t k = static_cast<std::size_t>(e) + 1; k < ckpt_.size();
         ++k) {
      if (ckpt_[k].valid) return static_cast<int>(k);
    }
    return std::nullopt;
  }

  void add_rework(Cause cause, double lost_work) {
    if (lost_work <= 0.0) return;
    switch (cause) {
      case Cause::kCompute:
        result_.breakdown.rework_compute += lost_work;
        break;
      case Cause::kCheckpoint:
        result_.breakdown.rework_checkpoint += lost_work;
        break;
      case Cause::kRestart:
        result_.breakdown.rework_restart += lost_work;
        break;
    }
  }

  /// Full failure handling: destroy storage, charge the rolled-back work
  /// to the failing phase, then drive recovery to completion.
  void handle_failure(int severity, Cause cause, double partial_work) {
    invalidate_below(severity);
    std::optional<int> target = find_restore(severity);
    const double attempted = work_ + partial_work;
    const double restore_work =
        target ? ckpt_[static_cast<std::size_t>(*target)].work : 0.0;
    add_rework(cause, attempted - restore_work);
    // Roll the committed-work counter back immediately so a trial capped
    // mid-recovery does not count the discarded work as useful *and* as
    // rework.
    work_ = restore_work;
    annotate_trace_work();
    perform_recovery(target);
  }

  /// Runs restart attempts (with retries/escalations per policy) until the
  /// application is back in a runnable state.
  void perform_recovery(std::optional<int> target) {
    for (;;) {
      if (now_ >= cap_) {
        capped_ = true;
        return;
      }
      if (!target) {
        // Restart from scratch: relaunch is free, all progress is gone,
        // and no checkpoint storage holds data (or we would restore it).
        ++result_.scratch_restarts;
        work_ = 0.0;
        for (auto& slot : ckpt_) slot.valid = false;
        if (opts_.trace != nullptr) {
          opts_.trace->push_back(TraceEvent{
              TraceEvent::Kind::kScratchRestart, now_, now_, -1, true, -1});
        }
        return;
      }
      const int e = *target;
      const int e_level = system_level(e);
      const double cost = sys_.restart_cost[static_cast<std::size_t>(e_level)];
      const Phase ph = run_phase(cost, TraceEvent::Kind::kRestart, e_level);
      if (truncated_by_cap(ph)) {
        // Time attribution only; this was not a failed restart event, so
        // the restarts_failed counter is untouched.
        result_.breakdown.restart_failed += ph.elapsed;
        return;
      }
      if (ph.completed) {
        result_.breakdown.restart_ok += cost;
        ++result_.restarts_completed;
        work_ = ckpt_[static_cast<std::size_t>(e)].work;
        annotate_trace_work();
        return;
      }
      result_.breakdown.restart_failed += ph.elapsed;
      ++result_.restarts_failed;
      const int s2 = ph.severity;
      invalidate_below(s2);

      std::optional<int> next;
      if (opts_.restart_policy == RestartPolicy::kRetrySameLevel) {
        // The checkpoint being loaded survives any failure of severity
        // <= its level, so the realistic response is to try again.
        next = (s2 <= e_level) ? std::optional<int>(e) : find_restore(s2);
      } else {
        if (s2 < e_level) {
          next = e;
        } else if (s2 == e_level) {
          // Pessimistic escalation; the top level has nowhere to go and
          // retries. The abandoned checkpoint is presumed unusable — it
          // must not serve later restores, which would hold work newer
          // than the rolled-back state.
          next = find_restore_above(e);
          if (next) {
            ckpt_[static_cast<std::size_t>(e)].valid = false;
          } else if (e == used_count() - 1) {
            next = e;
          }
        } else {
          next = find_restore(s2);
        }
      }

      const double old_work = ckpt_[static_cast<std::size_t>(e)].work;
      const double new_work =
          next ? ckpt_[static_cast<std::size_t>(*next)].work : 0.0;
      add_rework(Cause::kRestart, old_work - new_work);
      work_ = new_work;
      annotate_trace_work();
      target = next;
    }
  }

  const systems::SystemConfig& sys_;
  const ScheduleView& schedule_;
  const SimOptions& opts_;
  FailureSource& failures_;

  double now_ = 0.0;
  double next_failure_ = 0.0;
  int next_severity_ = -1;
  double cap_ = std::numeric_limits<double>::infinity();
  bool capped_ = false;

  double work_ = 0.0;  ///< committed useful work (minutes)
  double compute_time_ = 0.0;
  /// Index of the most recent run_phase trace event (valid only while
  /// opts_.trace is non-null; see annotate_trace_work).
  std::size_t last_trace_index_ = 0;

  std::vector<CheckpointSlot> ckpt_;  ///< per used level
  TrialResult result_;
};

/// Pre-rewrite Monte-Carlo skeleton: per-trial options copy, per-index
/// parallel_for, serial deterministic aggregation.
TrialStats aggregate_trials(
    std::size_t trials, util::ThreadPool* pool, const SimOptions& options,
    const std::function<TrialResult(std::size_t, const SimOptions&)>&
        run_one) {
  const SimMetrics* metrics = options.metrics;
  TrialTraceCapture* capture = options.capture;
  if (capture != nullptr) {
    capture->trials.assign(std::min(capture->max_trials, trials),
                           TrialTrace{});
    for (std::size_t k = 0; k < capture->trials.size(); ++k) {
      capture->trials[k].trial = k;
    }
  }
  std::vector<TrialResult> results(trials);
  util::parallel_for(pool, trials, [&](std::size_t k) {
    if (capture == nullptr) {
      results[k] = run_one(k, options);
      return;
    }
    SimOptions opts = options;
    opts.capture = nullptr;
    opts.trace =
        k < capture->trials.size() ? &capture->trials[k].events : nullptr;
    results[k] = run_one(k, opts);
  });
  if (capture != nullptr) {
    for (std::size_t k = 0; k < capture->trials.size(); ++k) {
      capture->trials[k].result = results[k];
    }
  }

  TrialStats stats;
  stats.trials = trials;
  stats::Welford eff;
  stats::Welford time;
  SimBreakdown sum;
  std::vector<double> efficiencies;
  efficiencies.reserve(trials);
  double failures_total = 0.0;
  long long checkpoints_total = 0;
  long long restarts_ok_total = 0;
  long long restarts_failed_total = 0;
  long long scratch_total = 0;
  for (const TrialResult& r : results) {
    eff.add(r.efficiency());
    efficiencies.push_back(r.efficiency());
    time.add(r.total_time);
    sum += r.breakdown;
    failures_total += static_cast<double>(r.failures);
    checkpoints_total += r.checkpoints_completed;
    restarts_ok_total += r.restarts_completed;
    restarts_failed_total += r.restarts_failed;
    scratch_total += r.scratch_restarts;
    if (r.capped) ++stats.capped_trials;
    if (metrics != nullptr && metrics->trial_time_minutes != nullptr) {
      metrics->trial_time_minutes->record(r.total_time);
    }
  }
  if (metrics != nullptr) {
    const auto bump = [](obs::Counter* c, auto n) {
      if (c != nullptr && n > 0) c->add(static_cast<std::uint64_t>(n));
    };
    bump(metrics->trials, trials);
    bump(metrics->failures, static_cast<long long>(failures_total));
    bump(metrics->checkpoints_completed, checkpoints_total);
    bump(metrics->restarts_completed, restarts_ok_total);
    bump(metrics->restarts_failed, restarts_failed_total);
    bump(metrics->scratch_restarts, scratch_total);
    bump(metrics->capped_trials, stats.capped_trials);
  }
  stats.efficiency = stats::summarize(eff);
  stats.efficiency_quantiles = stats::summary_quantiles(efficiencies);
  stats.total_time = stats::summarize(time);
  if (trials > 0) {
    stats.mean_failures = failures_total / static_cast<double>(trials);
    const double total = sum.total();
    if (total > 0.0) {
      stats.time_shares = sum;
      stats.time_shares.useful /= total;
      stats.time_shares.checkpoint_ok /= total;
      stats.time_shares.checkpoint_failed /= total;
      stats.time_shares.restart_ok /= total;
      stats.time_shares.restart_failed /= total;
      stats.time_shares.rework_compute /= total;
      stats.time_shares.rework_checkpoint /= total;
      stats.time_shares.rework_restart /= total;
    }
  }
  return stats;
}

}  // namespace

TrialResult simulate(const systems::SystemConfig& system,
                     const core::CheckpointPlan& plan, FailureSource& failures,
                     const SimOptions& options) {
  plan.validate(system);
  ScheduleView view;
  view.levels = plan.levels;
  view.next = [&plan,
               &system](double work) -> std::optional<core::CheckpointPoint> {
    // Checkpoints sit at integer multiples of tau0; the pattern decides
    // the level. No checkpoint at or beyond completion.
    const double j =
        std::floor((work + core::IntervalSchedule::kWorkEpsilon) / plan.tau0) +
        1.0;
    const double point = j * plan.tau0;
    if (point >= system.base_time - core::IntervalSchedule::kWorkEpsilon) {
      return std::nullopt;
    }
    return core::CheckpointPoint{
        point, plan.checkpoint_after_interval(static_cast<long long>(j))};
  };
  Runner runner(system, view, failures, options);
  return runner.run();
}

TrialResult simulate(const systems::SystemConfig& system,
                     const core::IntervalSchedule& schedule,
                     FailureSource& failures, const SimOptions& options) {
  schedule.validate(system);
  ScheduleView view;
  view.levels = schedule.levels;
  view.next = [&schedule, &system](double work) {
    return schedule.next_checkpoint(work, system.base_time);
  };
  Runner runner(system, view, failures, options);
  return runner.run();
}

TrialResult simulate(const systems::SystemConfig& system,
                     const core::AdaptiveSchedule& schedule,
                     FailureSource& failures, const SimOptions& options) {
  schedule.base.validate(system);
  ScheduleView view;
  view.levels = schedule.base.levels;
  view.next = [&schedule](double work) {
    return schedule.next_checkpoint(work);
  };
  Runner runner(system, view, failures, options);
  return runner.run();
}

TrialStats run_trials(const systems::SystemConfig& system,
                      const core::CheckpointPlan& plan, std::size_t trials,
                      std::uint64_t seed, const SimOptions& options,
                      util::ThreadPool* pool) {
  return aggregate_trials(
      trials, pool, options, [&](std::size_t k, const SimOptions& opts) {
        RandomFailureSource failures(
            system, util::Rng(util::derive_stream_seed(seed, k)));
        return reference::simulate(system, plan, failures, opts);
      });
}

TrialStats run_trials_with_distribution(
    const systems::SystemConfig& system, const core::CheckpointPlan& plan,
    const math::FailureDistribution& interarrival, std::size_t trials,
    std::uint64_t seed, const SimOptions& options, util::ThreadPool* pool) {
  return aggregate_trials(
      trials, pool, options, [&](std::size_t k, const SimOptions& opts) {
        RenewalFailureSource failures(
            system, interarrival, util::Rng(util::derive_stream_seed(seed, k)));
        return reference::simulate(system, plan, failures, opts);
      });
}

}  // namespace mlck::sim::reference

#include "sim/trial_runner.h"

#include <functional>
#include <vector>

#include "util/parallel.h"
#include "util/rng.h"

namespace mlck::sim {

namespace {

/// Shared Monte-Carlo skeleton: @p run_one executes trial k with its own
/// derived RNG stream; aggregation is serial and deterministic.
/// @p metrics (from SimOptions) is recorded here, after the parallel
/// phase, so instrumentation never touches the trial state machines.
TrialStats aggregate_trials(
    std::size_t trials, util::ThreadPool* pool, const SimMetrics* metrics,
    const std::function<TrialResult(std::size_t)>& run_one) {
  std::vector<TrialResult> results(trials);
  util::parallel_for(pool, trials,
                     [&](std::size_t k) { results[k] = run_one(k); });

  TrialStats stats;
  stats.trials = trials;
  stats::Welford eff;
  stats::Welford time;
  SimBreakdown sum;
  std::vector<double> efficiencies;
  efficiencies.reserve(trials);
  double failures_total = 0.0;
  long long checkpoints_total = 0;
  long long restarts_ok_total = 0;
  long long restarts_failed_total = 0;
  long long scratch_total = 0;
  for (const TrialResult& r : results) {
    eff.add(r.efficiency());
    efficiencies.push_back(r.efficiency());
    time.add(r.total_time);
    sum += r.breakdown;
    failures_total += static_cast<double>(r.failures);
    checkpoints_total += r.checkpoints_completed;
    restarts_ok_total += r.restarts_completed;
    restarts_failed_total += r.restarts_failed;
    scratch_total += r.scratch_restarts;
    if (r.capped) ++stats.capped_trials;
    if (metrics != nullptr && metrics->trial_time_minutes != nullptr) {
      metrics->trial_time_minutes->record(r.total_time);
    }
  }
  if (metrics != nullptr) {
    const auto bump = [](obs::Counter* c, auto n) {
      if (c != nullptr && n > 0) c->add(static_cast<std::uint64_t>(n));
    };
    bump(metrics->trials, trials);
    bump(metrics->failures, static_cast<long long>(failures_total));
    bump(metrics->checkpoints_completed, checkpoints_total);
    bump(metrics->restarts_completed, restarts_ok_total);
    bump(metrics->restarts_failed, restarts_failed_total);
    bump(metrics->scratch_restarts, scratch_total);
    bump(metrics->capped_trials, stats.capped_trials);
  }
  stats.efficiency = stats::summarize(eff);
  stats.efficiency_quantiles = stats::summary_quantiles(efficiencies);
  stats.total_time = stats::summarize(time);
  if (trials > 0) {
    stats.mean_failures = failures_total / static_cast<double>(trials);
    const double total = sum.total();
    if (total > 0.0) {
      stats.time_shares = sum;
      stats.time_shares.useful /= total;
      stats.time_shares.checkpoint_ok /= total;
      stats.time_shares.checkpoint_failed /= total;
      stats.time_shares.restart_ok /= total;
      stats.time_shares.restart_failed /= total;
      stats.time_shares.rework_compute /= total;
      stats.time_shares.rework_checkpoint /= total;
      stats.time_shares.rework_restart /= total;
    }
  }
  return stats;
}

}  // namespace

TrialStats run_trials(const systems::SystemConfig& system,
                      const core::CheckpointPlan& plan, std::size_t trials,
                      std::uint64_t seed, const SimOptions& options,
                      util::ThreadPool* pool) {
  return aggregate_trials(trials, pool, options.metrics, [&](std::size_t k) {
    RandomFailureSource failures(
        system, util::Rng(util::derive_stream_seed(seed, k)));
    return simulate(system, plan, failures, options);
  });
}

TrialStats run_trials(const systems::SystemConfig& system,
                      const core::IntervalSchedule& schedule,
                      std::size_t trials, std::uint64_t seed,
                      const SimOptions& options, util::ThreadPool* pool) {
  return aggregate_trials(trials, pool, options.metrics, [&](std::size_t k) {
    RandomFailureSource failures(
        system, util::Rng(util::derive_stream_seed(seed, k)));
    return simulate(system, schedule, failures, options);
  });
}

TrialStats run_trials(const systems::SystemConfig& system,
                      const core::AdaptiveSchedule& schedule,
                      std::size_t trials, std::uint64_t seed,
                      const SimOptions& options, util::ThreadPool* pool) {
  return aggregate_trials(trials, pool, options.metrics, [&](std::size_t k) {
    RandomFailureSource failures(
        system, util::Rng(util::derive_stream_seed(seed, k)));
    return simulate(system, schedule, failures, options);
  });
}

TrialStats run_trials_with_distribution(
    const systems::SystemConfig& system, const core::CheckpointPlan& plan,
    const math::FailureDistribution& interarrival, std::size_t trials,
    std::uint64_t seed, const SimOptions& options, util::ThreadPool* pool) {
  return aggregate_trials(trials, pool, options.metrics, [&](std::size_t k) {
    RenewalFailureSource failures(
        system, interarrival, util::Rng(util::derive_stream_seed(seed, k)));
    return simulate(system, plan, failures, options);
  });
}

}  // namespace mlck::sim

#include "sim/trial_runner.h"

#include <algorithm>
#include <mutex>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "sim/compiled_schedule.h"
#include "sim/fast_forward.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace mlck::sim {

namespace {

/// Readies the capture slots for a batch of @p trials. resize + clear
/// instead of assign so a capture object reused across batches (the trace
/// CLI's pattern) keeps each slot's TraceEvent capacity — the arenas — and
/// the per-trial streams append without reallocating.
void prepare_capture(TrialTraceCapture& capture, std::size_t trials) {
  capture.trials.resize(std::min(capture.max_trials, trials));
  for (std::size_t k = 0; k < capture.trials.size(); ++k) {
    capture.trials[k].trial = k;
    capture.trials[k].result = TrialResult{};
    capture.trials[k].events.clear();
  }
}

/// Serial, index-ordered reduction of per-trial results — deterministic
/// and independent of pool size by construction (Welford accumulation
/// order is the trial order, never the completion order). Metrics are
/// recorded here, after the parallel phase, so instrumentation never
/// touches the trial state machines.
TrialStats aggregate_results(const std::vector<TrialResult>& results,
                             const SimOptions& options) {
  const SimMetrics* metrics = options.metrics;
  const std::size_t trials = results.size();
  TrialStats stats;
  stats.trials = trials;
  stats::Welford eff;
  stats::Welford time;
  SimBreakdown sum;
  std::vector<double> efficiencies;
  efficiencies.reserve(trials);
  double failures_total = 0.0;
  long long checkpoints_total = 0;
  long long restarts_ok_total = 0;
  long long restarts_failed_total = 0;
  long long scratch_total = 0;
  for (const TrialResult& r : results) {
    eff.add(r.efficiency());
    efficiencies.push_back(r.efficiency());
    time.add(r.total_time);
    sum += r.breakdown;
    failures_total += static_cast<double>(r.failures);
    checkpoints_total += r.checkpoints_completed;
    restarts_ok_total += r.restarts_completed;
    restarts_failed_total += r.restarts_failed;
    scratch_total += r.scratch_restarts;
    if (r.capped) ++stats.capped_trials;
  }
  if (metrics != nullptr) {
    const auto bump = [](obs::Counter* c, auto n) {
      if (c != nullptr && n > 0) c->add(static_cast<std::uint64_t>(n));
    };
    bump(metrics->trials, trials);
    bump(metrics->failures, static_cast<long long>(failures_total));
    bump(metrics->checkpoints_completed, checkpoints_total);
    bump(metrics->restarts_completed, restarts_ok_total);
    bump(metrics->restarts_failed, restarts_failed_total);
    bump(metrics->scratch_restarts, scratch_total);
    bump(metrics->capped_trials, stats.capped_trials);
  }
  stats.efficiency = stats::summarize(eff);
  stats.efficiency_quantiles = stats::summary_quantiles(efficiencies);
  stats.total_time = stats::summarize(time);
  if (trials > 0) {
    stats.mean_failures = failures_total / static_cast<double>(trials);
    const double total = sum.total();
    if (total > 0.0) {
      stats.time_shares = sum;
      stats.time_shares.useful /= total;
      stats.time_shares.checkpoint_ok /= total;
      stats.time_shares.checkpoint_failed /= total;
      stats.time_shares.restart_ok /= total;
      stats.time_shares.restart_failed /= total;
      stats.time_shares.rework_compute /= total;
      stats.time_shares.rework_checkpoint /= total;
      stats.time_shares.rework_restart /= total;
    }
  }
  return stats;
}

/// Batch Monte-Carlo skeleton over a schedule compiled once. Per-chunk
/// state — the failure source (severity CDF built once per chunk, rewound
/// per trial via reset()) and the options copy — is hoisted out of the
/// trial loop; per-trial results land in their own slots, so chunk
/// boundaries cannot affect them. Trial k always draws from stream
/// derive_stream_seed(seed, k), making the output byte-identical to the
/// pre-batch engine (sim::reference) and independent of pool size.
template <class Source, class MakeSource>
TrialStats batch_trials(const systems::SystemConfig& system,
                        const CompiledSchedule& schedule, std::size_t trials,
                        std::uint64_t seed, const SimOptions& options,
                        util::ThreadPool* pool,
                        const MakeSource& make_source) {
  TrialTraceCapture* capture = options.capture;
  if (capture != nullptr) prepare_capture(*capture, trials);
  const std::size_t captured =
      capture != nullptr ? capture->trials.size() : 0;

  // One no-failure trajectory for the whole batch (one dry pass over the
  // segments, shared read-only by every chunk): trials jump past their
  // uninterrupted prefix instead of re-simulating it. Captured/traced
  // trials skip it per trial inside the runner.
  const NoFailureTrajectory trajectory(system, schedule, options);
  const NoFailureTrajectory* fast =
      trajectory.valid() ? &trajectory : nullptr;

  // Per-trial time histogram, recorded inside the parallel phase: each
  // chunk fills a private non-atomic HistogramBatch alongside its trial
  // loop, and the batches merge serially afterwards, sorted by chunk
  // start. Recording in the serial reduction instead would put the whole
  // per-sample cost on the critical path — with many workers that alone
  // blew the bench_obs <= 2% attached-overhead budget. Counts, buckets,
  // min, and max are exact integers/extrema, so they stay independent of
  // the pool size; only the histogram's floating-point sum adopts the
  // chunk layout's addition order (deterministic for a fixed pool size,
  // like every other chunk-granular quantity here).
  obs::Histogram* trial_times =
      options.metrics != nullptr ? options.metrics->trial_time_minutes
                                 : nullptr;
  std::mutex batches_mutex;
  std::vector<std::pair<std::size_t, obs::HistogramBatch>> batches;

  std::vector<TrialResult> results(trials);
  util::parallel_for_chunks(pool, trials, [&](std::size_t begin,
                                              std::size_t end) {
    Source source =
        make_source(util::Rng(util::derive_stream_seed(seed, begin)));
    SimOptions opts = options;
    opts.capture = nullptr;
    obs::HistogramBatch chunk_times;
    for (std::size_t k = begin; k < end; ++k) {
      source.reset(util::Rng(util::derive_stream_seed(seed, k)));
      if (capture != nullptr) {
        // Each captured trial traces into its own preallocated slot; the
        // shared options.trace pointer, racy across concurrent trials, is
        // suppressed for the batch.
        opts.trace = k < captured ? &capture->trials[k].events : nullptr;
      }
      results[k] = simulate(system, schedule, source, opts, fast);
      if (trial_times != nullptr) {
        chunk_times.record(results[k].total_time);
      }
    }
    if (trial_times != nullptr && chunk_times.count() > 0) {
      std::lock_guard<std::mutex> lock(batches_mutex);
      batches.emplace_back(begin, std::move(chunk_times));
    }
  });
  if (trial_times != nullptr) {
    std::sort(batches.begin(), batches.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (auto& [begin, batch] : batches) batch.flush(trial_times);
  }
  if (capture != nullptr) {
    for (std::size_t k = 0; k < captured; ++k) {
      capture->trials[k].result = results[k];
    }
  }
  return aggregate_results(results, options);
}

}  // namespace

TrialStats run_trials(const systems::SystemConfig& system,
                      const core::CheckpointPlan& plan, std::size_t trials,
                      std::uint64_t seed, const SimOptions& options,
                      util::ThreadPool* pool) {
  const CompiledSchedule schedule = CompiledSchedule::from_plan(system, plan);
  return batch_trials<RandomFailureSource>(
      system, schedule, trials, seed, options, pool,
      [&](util::Rng rng) { return RandomFailureSource(system, rng); });
}

TrialStats run_trials(const systems::SystemConfig& system,
                      const core::IntervalSchedule& schedule,
                      std::size_t trials, std::uint64_t seed,
                      const SimOptions& options, util::ThreadPool* pool) {
  const CompiledSchedule compiled =
      CompiledSchedule::from_schedule(system, schedule);
  return batch_trials<RandomFailureSource>(
      system, compiled, trials, seed, options, pool,
      [&](util::Rng rng) { return RandomFailureSource(system, rng); });
}

TrialStats run_trials(const systems::SystemConfig& system,
                      const core::AdaptiveSchedule& schedule,
                      std::size_t trials, std::uint64_t seed,
                      const SimOptions& options, util::ThreadPool* pool) {
  const CompiledSchedule compiled =
      CompiledSchedule::from_adaptive(system, schedule);
  return batch_trials<RandomFailureSource>(
      system, compiled, trials, seed, options, pool,
      [&](util::Rng rng) { return RandomFailureSource(system, rng); });
}

TrialStats run_trials_with_distribution(
    const systems::SystemConfig& system, const core::CheckpointPlan& plan,
    const math::FailureDistribution& interarrival, std::size_t trials,
    std::uint64_t seed, const SimOptions& options, util::ThreadPool* pool) {
  const CompiledSchedule schedule = CompiledSchedule::from_plan(system, plan);
  return batch_trials<RenewalFailureSource>(
      system, schedule, trials, seed, options, pool, [&](util::Rng rng) {
        return RenewalFailureSource(system, interarrival, rng);
      });
}

}  // namespace mlck::sim

#include "sim/trial_runner.h"

#include <algorithm>
#include <functional>
#include <vector>

#include "util/parallel.h"
#include "util/rng.h"

namespace mlck::sim {

namespace {

/// Shared Monte-Carlo skeleton: @p run_one executes trial k with its own
/// derived RNG stream and an options copy prepared here; aggregation is
/// serial and deterministic. Metrics (from SimOptions) are recorded after
/// the parallel phase, so instrumentation never touches the trial state
/// machines. When options.capture is set, the first
/// min(capture->max_trials, trials) trials *by index* trace into their
/// own preallocated slots — each trial writes only capture->trials[k], so
/// the capture is identical regardless of pool size or scheduling (and
/// the shared options.trace pointer, racy across concurrent trials, is
/// suppressed for the batch).
TrialStats aggregate_trials(
    std::size_t trials, util::ThreadPool* pool, const SimOptions& options,
    const std::function<TrialResult(std::size_t, const SimOptions&)>&
        run_one) {
  const SimMetrics* metrics = options.metrics;
  TrialTraceCapture* capture = options.capture;
  if (capture != nullptr) {
    capture->trials.assign(std::min(capture->max_trials, trials),
                           TrialTrace{});
    for (std::size_t k = 0; k < capture->trials.size(); ++k) {
      capture->trials[k].trial = k;
    }
  }
  std::vector<TrialResult> results(trials);
  util::parallel_for(pool, trials, [&](std::size_t k) {
    if (capture == nullptr) {
      results[k] = run_one(k, options);
      return;
    }
    SimOptions opts = options;
    opts.capture = nullptr;
    opts.trace =
        k < capture->trials.size() ? &capture->trials[k].events : nullptr;
    results[k] = run_one(k, opts);
  });
  if (capture != nullptr) {
    for (std::size_t k = 0; k < capture->trials.size(); ++k) {
      capture->trials[k].result = results[k];
    }
  }

  TrialStats stats;
  stats.trials = trials;
  stats::Welford eff;
  stats::Welford time;
  SimBreakdown sum;
  std::vector<double> efficiencies;
  efficiencies.reserve(trials);
  double failures_total = 0.0;
  long long checkpoints_total = 0;
  long long restarts_ok_total = 0;
  long long restarts_failed_total = 0;
  long long scratch_total = 0;
  for (const TrialResult& r : results) {
    eff.add(r.efficiency());
    efficiencies.push_back(r.efficiency());
    time.add(r.total_time);
    sum += r.breakdown;
    failures_total += static_cast<double>(r.failures);
    checkpoints_total += r.checkpoints_completed;
    restarts_ok_total += r.restarts_completed;
    restarts_failed_total += r.restarts_failed;
    scratch_total += r.scratch_restarts;
    if (r.capped) ++stats.capped_trials;
    if (metrics != nullptr && metrics->trial_time_minutes != nullptr) {
      metrics->trial_time_minutes->record(r.total_time);
    }
  }
  if (metrics != nullptr) {
    const auto bump = [](obs::Counter* c, auto n) {
      if (c != nullptr && n > 0) c->add(static_cast<std::uint64_t>(n));
    };
    bump(metrics->trials, trials);
    bump(metrics->failures, static_cast<long long>(failures_total));
    bump(metrics->checkpoints_completed, checkpoints_total);
    bump(metrics->restarts_completed, restarts_ok_total);
    bump(metrics->restarts_failed, restarts_failed_total);
    bump(metrics->scratch_restarts, scratch_total);
    bump(metrics->capped_trials, stats.capped_trials);
  }
  stats.efficiency = stats::summarize(eff);
  stats.efficiency_quantiles = stats::summary_quantiles(efficiencies);
  stats.total_time = stats::summarize(time);
  if (trials > 0) {
    stats.mean_failures = failures_total / static_cast<double>(trials);
    const double total = sum.total();
    if (total > 0.0) {
      stats.time_shares = sum;
      stats.time_shares.useful /= total;
      stats.time_shares.checkpoint_ok /= total;
      stats.time_shares.checkpoint_failed /= total;
      stats.time_shares.restart_ok /= total;
      stats.time_shares.restart_failed /= total;
      stats.time_shares.rework_compute /= total;
      stats.time_shares.rework_checkpoint /= total;
      stats.time_shares.rework_restart /= total;
    }
  }
  return stats;
}

}  // namespace

TrialStats run_trials(const systems::SystemConfig& system,
                      const core::CheckpointPlan& plan, std::size_t trials,
                      std::uint64_t seed, const SimOptions& options,
                      util::ThreadPool* pool) {
  return aggregate_trials(
      trials, pool, options, [&](std::size_t k, const SimOptions& opts) {
        RandomFailureSource failures(
            system, util::Rng(util::derive_stream_seed(seed, k)));
        return simulate(system, plan, failures, opts);
      });
}

TrialStats run_trials(const systems::SystemConfig& system,
                      const core::IntervalSchedule& schedule,
                      std::size_t trials, std::uint64_t seed,
                      const SimOptions& options, util::ThreadPool* pool) {
  return aggregate_trials(
      trials, pool, options, [&](std::size_t k, const SimOptions& opts) {
        RandomFailureSource failures(
            system, util::Rng(util::derive_stream_seed(seed, k)));
        return simulate(system, schedule, failures, opts);
      });
}

TrialStats run_trials(const systems::SystemConfig& system,
                      const core::AdaptiveSchedule& schedule,
                      std::size_t trials, std::uint64_t seed,
                      const SimOptions& options, util::ThreadPool* pool) {
  return aggregate_trials(
      trials, pool, options, [&](std::size_t k, const SimOptions& opts) {
        RandomFailureSource failures(
            system, util::Rng(util::derive_stream_seed(seed, k)));
        return simulate(system, schedule, failures, opts);
      });
}

TrialStats run_trials_with_distribution(
    const systems::SystemConfig& system, const core::CheckpointPlan& plan,
    const math::FailureDistribution& interarrival, std::size_t trials,
    std::uint64_t seed, const SimOptions& options, util::ThreadPool* pool) {
  return aggregate_trials(
      trials, pool, options, [&](std::size_t k, const SimOptions& opts) {
        RenewalFailureSource failures(
            system, interarrival,
            util::Rng(util::derive_stream_seed(seed, k)));
        return simulate(system, plan, failures, opts);
      });
}

}  // namespace mlck::sim

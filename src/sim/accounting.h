#pragma once

namespace mlck::sim {

/// Where a simulated trial's wall-clock time went, in minutes. The
/// categories mirror the event classes of paper Sec. III-B / Figure 3.
///
/// Invariant (asserted by tests): total() equals the trial's elapsed time,
/// and useful + the three rework buckets equal all time spent computing.
struct SimBreakdown {
  double useful = 0.0;            ///< computation that survived to the end
  double checkpoint_ok = 0.0;     ///< completed checkpoints
  double checkpoint_failed = 0.0; ///< checkpoint attempts cut short by a failure
  double restart_ok = 0.0;        ///< completed restarts
  double restart_failed = 0.0;    ///< restart attempts cut short by a failure
  double rework_compute = 0.0;    ///< work discarded by failures during computation
  double rework_checkpoint = 0.0; ///< work discarded by failures during checkpoints
  double rework_restart = 0.0;    ///< extra work discarded when a failure during a
                                  ///< restart forces recovery from an older level

  double total() const noexcept {
    return useful + checkpoint_ok + checkpoint_failed + restart_ok +
           restart_failed + rework_compute + rework_checkpoint +
           rework_restart;
  }

  /// All discarded computation.
  double rework_total() const noexcept {
    return rework_compute + rework_checkpoint + rework_restart;
  }

  /// Element-wise accumulation (used when aggregating trials).
  SimBreakdown& operator+=(const SimBreakdown& other) noexcept;
};

/// Result of simulating a single application run.
struct TrialResult {
  double total_time = 0.0;    ///< wall-clock minutes until completion (or cap)
  SimBreakdown breakdown;
  bool capped = false;        ///< hit SimOptions::max_time before completing
  long long failures = 0;     ///< failures of any severity, any phase
  long long checkpoints_completed = 0;
  long long restarts_completed = 0;
  long long restarts_failed = 0;
  long long scratch_restarts = 0;

  /// Useful work per unit wall-clock time: the paper's efficiency metric
  /// (equals T_B / total_time for completed runs).
  double efficiency() const noexcept {
    return total_time > 0.0 ? breakdown.useful / total_time : 1.0;
  }
};

}  // namespace mlck::sim

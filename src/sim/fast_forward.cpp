#include "sim/fast_forward.h"

#include <algorithm>
#include <cmath>

namespace mlck::sim {

// Mirrors Runner::run / run_phase / do_checkpoint for the uninterrupted
// case, operation for operation. Any change to the engine's no-failure
// arithmetic (phase ordering, the at_end tolerance, the accumulation
// order) must be reflected here; the batch-vs-reference identity tests
// and bench_sim's gate catch a divergence on the first trial.
NoFailureTrajectory::NoFailureTrajectory(const systems::SystemConfig& system,
                                         const CompiledSchedule& schedule,
                                         const SimOptions& options) {
  take_final_checkpoint_ = options.take_final_checkpoint;
  max_time_factor_ = options.max_time_factor;
  if (!schedule.compiled()) return;
  const auto& trig = schedule.triggers();
  const auto& levels = schedule.levels();
  const double base = system.base_time;
  const double cap = options.max_time_factor * system.base_time;
  const int top = static_cast<int>(levels.size()) - 1;

  double now = 0.0;
  double work = 0.0;
  double compute_time = 0.0;
  double ckpt_ok = 0.0;
  long long checkpoints = 0;
  seg_end_.reserve(trig.size());
  seg_work_.reserve(trig.size());
  seg_compute_.reserve(trig.size());
  seg_ckpt_ok_.reserve(trig.size());

  // One iteration per trigger segment, exactly the Runner's loop with
  // every `fails` branch false. A cap strike anywhere disqualifies the
  // fast path (valid_ stays false): capped trials must run the plain
  // loop, which truncates phases with the cap's own arithmetic.
  bool at_end = false;
  for (std::size_t i = 0; i < trig.size() && !at_end; ++i) {
    if (now >= cap) return;
    const double target = std::min(trig[i].work, base);
    const double duration = target - work;
    double phase_end = now + duration;  // compute phase
    if (phase_end > cap) return;
    now = phase_end;
    compute_time += duration;
    work = target;
    at_end = work >= base - 1e-9;
    if (at_end) {
      work = base;
      if (!take_final_checkpoint_) break;
    }
    const int h = at_end ? top : trig[i].used_index;
    const double cost =
        system.checkpoint_cost[static_cast<std::size_t>(
            levels[static_cast<std::size_t>(h)])];
    phase_end = now + cost;  // checkpoint phase
    if (phase_end > cap) return;
    now = phase_end;
    ckpt_ok += cost;
    ++checkpoints;
    if (!at_end) {
      // Only a full mid-run segment is a resume point; the at_end case
      // above ends the trial and belongs to the tail.
      seg_end_.push_back(now);
      seg_work_.push_back(work);
      seg_compute_.push_back(compute_time);
      seg_ckpt_ok_.push_back(ckpt_ok);
    }
  }

  if (!at_end) {
    // Tail: the final partial segment past the last trigger.
    if (now >= cap) return;
    const double duration = base - work;
    double phase_end = now + duration;
    if (phase_end > cap) return;
    now = phase_end;
    compute_time += duration;
    work = base;
    if (take_final_checkpoint_) {
      const double cost =
          system.checkpoint_cost[static_cast<std::size_t>(
              levels[static_cast<std::size_t>(top)])];
      phase_end = now + cost;
      if (phase_end > cap) return;
      now = phase_end;
      ckpt_ok += cost;
      ++checkpoints;
    }
  }

  final_end_ = now;
  full_result_.total_time = now;
  full_result_.capped = false;
  full_result_.failures = 0;
  full_result_.checkpoints_completed = checkpoints;
  full_result_.breakdown.useful = work;
  full_result_.breakdown.checkpoint_ok = ckpt_ok;
  valid_ = true;
}

}  // namespace mlck::sim

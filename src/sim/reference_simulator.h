#pragma once

#include <cstdint>

#include "core/adaptive.h"
#include "core/interval_schedule.h"
#include "core/plan.h"
#include "sim/failure_source.h"
#include "sim/simulator.h"
#include "sim/trial_runner.h"
#include "util/thread_pool.h"

/// The simulation engine as it stood before the batch-oriented rewrite,
/// preserved verbatim: per-segment std::function schedule dispatch, a
/// virtual FailureSource::next() per event, per-trial severity-CDF and
/// checkpoint-slot allocations. It is the timing baseline for
/// bench_sim.cpp and the oracle for the bit-identity gate — the batch
/// engine must reproduce this engine's run_trials output byte for byte on
/// equal seeds. Mirrors the cached tier kept in bench_optimizer for the
/// sweep. Not for production use; deliberately never optimized.
namespace mlck::sim::reference {

/// Pre-rewrite single-trial engine, pattern-plan schedule.
TrialResult simulate(const systems::SystemConfig& system,
                     const core::CheckpointPlan& plan, FailureSource& failures,
                     const SimOptions& options = {});

/// Pre-rewrite single-trial engine, interval schedule.
TrialResult simulate(const systems::SystemConfig& system,
                     const core::IntervalSchedule& schedule,
                     FailureSource& failures, const SimOptions& options = {});

/// Pre-rewrite single-trial engine, adaptive schedule.
TrialResult simulate(const systems::SystemConfig& system,
                     const core::AdaptiveSchedule& schedule,
                     FailureSource& failures, const SimOptions& options = {});

/// Pre-rewrite Monte-Carlo batch (exponential failures): one
/// RandomFailureSource constructed per trial on stream
/// derive_stream_seed(seed, k), serial deterministic aggregation.
TrialStats run_trials(const systems::SystemConfig& system,
                      const core::CheckpointPlan& plan, std::size_t trials,
                      std::uint64_t seed, const SimOptions& options = {},
                      util::ThreadPool* pool = nullptr);

/// Pre-rewrite Monte-Carlo batch with renewal inter-arrivals.
TrialStats run_trials_with_distribution(
    const systems::SystemConfig& system, const core::CheckpointPlan& plan,
    const math::FailureDistribution& interarrival, std::size_t trials,
    std::uint64_t seed, const SimOptions& options = {},
    util::ThreadPool* pool = nullptr);

}  // namespace mlck::sim::reference

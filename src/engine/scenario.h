#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/dauwe_model.h"
#include "core/optimizer.h"
#include "core/technique.h"
#include "engine/evaluation.h"
#include "math/distribution.h"
#include "obs/registry.h"
#include "sim/simulator.h"
#include "sim/trial_runner.h"
#include "systems/system_config.h"
#include "util/json.h"
#include "util/thread_pool.h"

namespace mlck::engine {

/// Declarative choice of failure inter-arrival law for a scenario. The
/// default is the paper's exponential assumption at the system MTBF;
/// Weibull/LogNormal select the matching law *family* for both sides of a
/// scenario: the model threads it through math::FailureLaw primitives
/// (per-severity rates from the system config pick each level's family
/// member), and the simulator draws renewal inter-arrivals from the
/// resolved sampling distribution (math/distribution.h).
struct DistributionSpec {
  enum class Kind { kExponential, kWeibull, kLogNormal };

  Kind kind = Kind::kExponential;
  double shape = 0.7;   ///< Weibull shape (ignored otherwise)
  double sigma = 1.0;   ///< LogNormal sigma (ignored otherwise)
  /// Mean inter-arrival in minutes; <= 0 means "the system's MTBF"
  /// (unless @ref scale sets the time scale instead).
  double mean = 0.0;
  /// Alternative time-scale parameter, mutually exclusive with @ref mean:
  /// the Weibull scale lambda (mean = lambda * Gamma(1 + 1/shape)), the
  /// log-normal median exp(mu) (mean = median * exp(sigma^2 / 2)), or the
  /// exponential mean itself. <= 0 means "not set".
  double scale = 0.0;

  /// True for the exponential law at the system MTBF — the case where the
  /// simulator's native Poisson source applies and trial results stay
  /// bit-compatible with seeds from the pre-scenario API.
  bool is_default_exponential() const noexcept {
    return kind == Kind::kExponential && mean <= 0.0 && scale <= 0.0;
  }

  /// The mean inter-arrival this spec denotes for @p system_mtbf: the
  /// explicit mean, else the mean implied by scale, else the MTBF.
  double resolved_mean(double system_mtbf) const;

  /// Instantiates the sampling law for @p system (resolves the mean).
  std::unique_ptr<math::FailureDistribution> make(
      const systems::SystemConfig& system) const;

  /// The law family for the analytic model: null for exponential (the
  /// closed-form fast path), a shared math::FailureLaw otherwise. Note
  /// the model takes per-severity rates from the system config — mean and
  /// scale apply to the simulator side only (docs/MODELS.md).
  std::shared_ptr<const math::FailureLaw> family() const;

  /// Parses the CLI grammar: "<law>[:key=value[,key=value...]]" with law
  /// one of exponential|weibull|lognormal and keys shape (Weibull), sigma
  /// (log-normal), mean, scale — e.g. "weibull:shape=0.7,scale=120".
  /// Strict: unknown keys, non-positive parameters, or mean and scale
  /// together throw std::invalid_argument.
  static DistributionSpec parse(const std::string& text);
  /// Round-trips through parse(): parse(to_string()) == *this.
  std::string to_string() const;

  /// Canonical JSON form, the scenario "failure" section:
  ///   {"law": "weibull", "shape": 0.7, "scale": 120}
  /// (keys law, shape, sigma, mean, scale; same strictness as parse()).
  static DistributionSpec from_json(const util::Json& doc);
  /// Legacy "distribution" section ({kind, shape, sigma, mean}), still
  /// accepted on input; to_json() always emits the "failure" form.
  static DistributionSpec from_legacy_json(const util::Json& doc);
  util::Json to_json() const;
};

/// One fully-declared evaluation scenario: everything the CLI, the
/// experiment drivers, the benches, and the examples previously assembled
/// by hand — system, model choice and options, failure law, optimizer
/// controls, and simulation controls — in one JSON-round-trippable value.
struct ScenarioSpec {
  systems::SystemConfig system;
  /// Non-empty when the system came from a Table I name; to_json then
  /// emits the name instead of the inline document.
  std::string system_ref;

  /// Technique registry name: "dauwe", "di", "moody", "benoit", "daly",
  /// "young". model_options applies to the Dauwe model only.
  std::string model = "dauwe";
  core::DauweOptions model_options;

  DistributionSpec distribution;
  core::OptimizerOptions optimizer;

  std::size_t trials = 200;
  std::uint64_t seed = 20180521;
  sim::SimOptions sim;

  /// Throws std::invalid_argument when the spec is unusable (no system,
  /// unknown model name checked lazily by run_scenario).
  void validate() const;

  /// The cached evaluation engine for this scenario's system + options,
  /// with the scenario's failure-law family threaded into every kernel
  /// (null for exponential — the bit-identical fast path).
  EvaluationEngine make_engine() const {
    return EvaluationEngine(system, model_options, distribution.family());
  }

  /// Round-trip: from_json(to_json(spec)) == spec (compared as JSON).
  /// Every field except "system" is optional and defaults as above.
  /// Parsing is strict: an unknown key anywhere in the document (a typo'd
  /// field, a section in the wrong place) throws std::invalid_argument
  /// naming the key and its section rather than being silently ignored.
  static ScenarioSpec from_json(const util::Json& doc);
  util::Json to_json() const;

  /// Convenience: parse/serialize whole files.
  static ScenarioSpec load(const std::string& path);
};

/// Result of driving one scenario end to end.
struct ScenarioOutcome {
  core::TechniqueResult selected;  ///< chosen plan + the model's forecast
  sim::TrialStats stats;           ///< Monte-Carlo validation under the
                                   ///< scenario's failure distribution
};

/// The standard metric wiring for a scenario run, resolved once against a
/// registry (every name is listed in docs/OBSERVABILITY.md). The bundle
/// only holds pointers into @p registry, which must outlive it; pass the
/// sub-structs to the components they instrument.
struct ScenarioMetrics {
  explicit ScenarioMetrics(obs::MetricsRegistry& registry);

  EngineMetrics engine;
  core::OptimizerMetrics optimizer;
  sim::SimMetrics sim;
};

/// The conventional pool metric set ("pool.*"), for callers that own the
/// ThreadPool (the CLI and bench drivers attach this to theirs).
util::ThreadPoolMetrics pool_metrics(obs::MetricsRegistry& registry);

/// Runs @p spec end to end: selects a plan (through the cached
/// EvaluationEngine for the Dauwe model, through the technique registry
/// otherwise) and validates it with spec.trials simulated runs drawn from
/// spec.distribution. With the default exponential distribution the
/// simulation is bit-identical to sim::run_trials on the same seed.
///
/// When @p metrics is non-null the run is instrumented under the standard
/// ScenarioMetrics names; results are bit-identical either way
/// (instrumentation is observe-only).
///
/// When @p trace is non-null the selection stages emit host-side spans
/// ("scenario.select_plan", "scenario.simulate", plus the optimizer and
/// engine spans; docs/OBSERVABILITY.md) into it — also observe-only. To
/// capture simulator event streams, point spec.sim.capture at a
/// sim::TrialTraceCapture; the caller owns both.
ScenarioOutcome run_scenario(const ScenarioSpec& spec,
                             util::ThreadPool* pool = nullptr,
                             obs::MetricsRegistry* metrics = nullptr,
                             obs::TraceSink* trace = nullptr);

}  // namespace mlck::engine

#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "core/dauwe_kernel.h"
#include "core/optimizer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "systems/system_config.h"
#include "util/thread_pool.h"

namespace mlck::engine {

/// Optional engine observability: context-cache effectiveness and the
/// number of model evaluations served. Null members are skipped; the
/// per-evaluation cost with metrics attached is one relaxed atomic
/// increment, and zero extra work when detached.
struct EngineMetrics {
  obs::Counter* context_hits = nullptr;    ///< cache hit in context()
  obs::Counter* context_misses = nullptr;  ///< context built on demand
  obs::Counter* evaluations = nullptr;     ///< expected_time/predict calls
};

/// The cached tau-independent invariants for one (system, level-subset)
/// pair: the effective per-level failure rates, severity shares, and
/// checkpoint/restart retry terms that every model evaluation over the
/// subset would otherwise re-derive. Immutable after construction, so it
/// is shared freely across sweep threads.
struct EvaluationContext {
  std::vector<int> levels;    ///< the subset this context covers
  core::DauweKernel kernel;   ///< precomputed terms + recursion

  EvaluationContext(const systems::SystemConfig& system,
                    std::vector<int> subset, const core::DauweOptions& options,
                    std::shared_ptr<const math::FailureLaw> law = nullptr)
      : levels(std::move(subset)),
        kernel(system, levels, options, std::move(law)) {}
};

/// Cached evaluation front-end for one (system, model-options) pair — the
/// hot path of every optimizer sweep, figure, and ablation. Contexts are
/// built lazily per level subset and reused for the lifetime of the
/// engine, so repeated optimize()/expected_time() calls over the same
/// subsets skip all tau-independent work.
///
/// Every result is bit-identical to the direct DauweModel path: the
/// context precomputation is an exact factoring of the same arithmetic
/// (see core::DauweKernel), and optimize() drives the same search code as
/// core::optimize_intervals.
///
/// Thread-safety: all const members may be called concurrently. Context
/// *lookups* are lock-free (an acquire walk of an append-only list), so
/// concurrent expected_time/predict callers never serialize on the cache
/// once their subset is built; only first-build of a subset takes the
/// mutex, and contexts are immutable afterwards.
class EvaluationEngine {
 public:
  /// @p law threads a failure-law family into every cached kernel (see
  /// DauweKernel); null or exponential keeps the bit-identical fast path.
  explicit EvaluationEngine(systems::SystemConfig system,
                            core::DauweOptions options = {},
                            std::shared_ptr<const math::FailureLaw> law =
                                nullptr);
  ~EvaluationEngine();
  EvaluationEngine(const EvaluationEngine&) = delete;
  EvaluationEngine& operator=(const EvaluationEngine&) = delete;

  const systems::SystemConfig& system() const noexcept { return system_; }
  const core::DauweOptions& options() const noexcept { return options_; }
  const std::shared_ptr<const math::FailureLaw>& law() const noexcept {
    return law_;
  }

  /// The cached context for @p levels, building it on first use.
  const EvaluationContext& context(const std::vector<int>& levels) const;

  /// Expected execution time of @p plan; bit-identical to
  /// DauweModel(options).expected_time(system, plan).
  double expected_time(const core::CheckpointPlan& plan) const;

  /// Full forecast with breakdown; bit-identical to DauweModel::predict.
  core::Prediction predict(const core::CheckpointPlan& plan) const;

  /// Interval search over the cached contexts, driven by the
  /// prefix-incremental kernel cursor (core::optimize_intervals_staged):
  /// same sweep, pruning, and refinement as core::optimize_intervals on a
  /// DauweModel — identical plans, expected times, and evaluation counts
  /// — but stage terms are computed once per count prefix instead of once
  /// per enumerated plan.
  core::OptimizationResult optimize(const core::OptimizerOptions& options = {},
                                    util::ThreadPool* pool = nullptr) const;

  /// Batched sweep: expected time of every plan, evaluated over the
  /// cached contexts in deterministic contiguous chunks on @p pool.
  /// Results are independent of thread count and identical to calling
  /// expected_time per plan.
  std::vector<double> expected_times(std::span<const core::CheckpointPlan> plans,
                                     util::ThreadPool* pool = nullptr) const;

  /// Number of level subsets cached so far (observability for tests and
  /// benchmarks).
  std::size_t cached_contexts() const;

  /// Installs the metric set (copied; pointed-to metrics must outlive the
  /// engine). Call before sharing the engine across threads.
  void attach_metrics(const EngineMetrics& metrics) { metrics_ = metrics; }

  /// Attaches a span sink: each on-demand context build is recorded as an
  /// "engine.context_build" span (docs/OBSERVABILITY.md). Observe-only;
  /// null detaches; the sink must outlive the engine. Call before sharing
  /// the engine across threads.
  void attach_trace(obs::TraceSink* sink) { trace_ = sink; }

 private:
  /// One cache entry. Nodes are heap-allocated, published once with a
  /// release store of head_, and never modified or freed before the
  /// engine dies — which is what makes the read path lock- and wait-free.
  struct ContextNode {
    ContextNode(const systems::SystemConfig& system, std::vector<int> subset,
                const core::DauweOptions& options,
                std::shared_ptr<const math::FailureLaw> law,
                const ContextNode* tail)
        : context(system, std::move(subset), options, std::move(law)),
          next(tail) {}
    EvaluationContext context;
    const ContextNode* next;
  };

  /// Lock-free lookup; nullptr when @p levels has no context yet.
  const EvaluationContext* find_context(
      const std::vector<int>& levels) const noexcept;

  systems::SystemConfig system_;
  core::DauweOptions options_;
  std::shared_ptr<const math::FailureLaw> law_;
  EngineMetrics metrics_;
  obs::TraceSink* trace_ = nullptr;
  mutable std::mutex mutex_;  ///< serializes context *builds* only
  /// Append-only singly-linked list of every built context; the few-entry
  /// linear walk (one node per level subset, <= levels of the system)
  /// beats a map lookup and needs no reader-side synchronization.
  mutable std::atomic<const ContextNode*> head_{nullptr};
};

}  // namespace mlck::engine
